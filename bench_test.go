// Benchmarks mirroring the paper's evaluation (§7): one benchmark family
// per table/figure, plus ablations for the design choices DESIGN.md calls
// out. `go test -bench=. -benchmem` runs them all; cmd/aerie-bench prints
// the full formatted tables instead.
package aerie_test

import (
	"fmt"
	"testing"
	"time"

	aerie "github.com/aerie-fs/aerie"
	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/scalesim"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// benchTargets builds the comparison set once per benchmark.
func benchPXFS(b *testing.B) *pxfs.FS {
	b.Helper()
	sys, err := core.New(core.Options{ArenaSize: 256 << 20, AcquireTimeout: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		b.Fatal(err)
	}
	return pxfs.New(sess, pxfs.Options{NameCache: true})
}

func benchVFS(b *testing.B, kind string) *vfs.VFS {
	b.Helper()
	switch kind {
	case "ramfs":
		return vfs.New(ramfs.New(), vfs.Config{})
	case "ext3", "ext4":
		mode := extfs.Ext3
		if kind == "ext4" {
			mode = extfs.Ext4
		}
		fs, err := extfs.Mkfs(blockdev.New(64<<10, nil, false), mode)
		if err != nil {
			b.Fatal(err)
		}
		return vfs.New(fs, vfs.Config{})
	}
	b.Fatalf("unknown kind %s", kind)
	return nil
}

// ---- Table 1: microbenchmark latencies ----

func BenchmarkTable1(b *testing.B) {
	buf := make([]byte, 4096)
	b.Run("Create/PXFS", func(b *testing.B) {
		fs := benchPXFS(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := fs.Create(fmt.Sprintf("/f%08d", i), 0644)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Write(buf); err != nil {
				b.Fatal(err)
			}
			_ = f.Close()
		}
	})
	for _, kind := range []string{"ramfs", "ext4"} {
		kind := kind
		b.Run("Create/"+kind, func(b *testing.B) {
			v := benchVFS(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd, err := v.Open(fmt.Sprintf("/f%08d", i), vfs.O_RDWR|vfs.O_CREATE, 0644)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := v.Write(fd, buf); err != nil {
					b.Fatal(err)
				}
				_ = v.Close(fd)
			}
		})
	}
	b.Run("OpenClose/PXFS", func(b *testing.B) {
		fs := benchPXFS(b)
		f, _ := fs.Create("/target", 0644)
		_, _ = f.Write(buf)
		_ = f.Close()
		_ = fs.Sync()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := fs.Open("/target", pxfs.O_RDONLY)
			if err != nil {
				b.Fatal(err)
			}
			_ = g.Close()
		}
	})
	b.Run("RandomRead4K/PXFS", func(b *testing.B) {
		fs := benchPXFS(b)
		f, _ := fs.Create("/big", 0644)
		big := make([]byte, 1<<20)
		_, _ = f.Write(big)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(buf, int64(i%256)*4096); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_ = f.Close()
	})
	b.Run("RandomWrite4K/PXFS", func(b *testing.B) {
		fs := benchPXFS(b)
		f, _ := fs.Create("/big", 0644)
		big := make([]byte, 1<<20)
		_, _ = f.Write(big)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.WriteAt(buf, int64(i%256)*4096); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_ = f.Close()
	})
	b.Run("DeleteCreate/PXFS", func(b *testing.B) {
		fs := benchPXFS(b)
		f, _ := fs.Create("/victim", 0644)
		_, _ = f.Write(buf)
		_ = f.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.Unlink("/victim"); err != nil {
				b.Fatal(err)
			}
			g, err := fs.Create("/victim", 0644)
			if err != nil {
				b.Fatal(err)
			}
			_ = g.Close()
		}
	})
}

// ---- Table 2: FileBench profiles ----

func BenchmarkTable2(b *testing.B) {
	const scale = 0.02
	profiles := map[string]filebench.Profile{
		"fileserver": filebench.Fileserver(scale),
		"webserver":  filebench.Webserver(scale),
		"webproxy":   filebench.Webproxy(scale * 2),
	}
	for name, p := range profiles {
		p := p
		b.Run(name+"/PXFS", func(b *testing.B) {
			fb := filebench.PXFSAdapter{FS: benchPXFS(b)}
			if err := filebench.Setup(fb, p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := filebench.Run(fb, p, filebench.RunOpts{Iterations: b.N}); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(name+"/ext4", func(b *testing.B) {
			fb := filebench.VFSAdapter{V: benchVFS(b, "ext4")}
			if err := filebench.Setup(fb, p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := filebench.Run(fb, p, filebench.RunOpts{Iterations: b.N}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---- Table 3 / Figure 5: scaling simulations over a synthetic trace ----

func BenchmarkFigure5Simulation(b *testing.B) {
	ops := []costmodel.OpTrace{{
		Name: "op",
		Phases: []costmodel.Phase{
			{Dur: 2 * time.Microsecond},
			{Resource: "lock:dir", Mode: costmodel.Exclusive, Dur: 3 * time.Microsecond},
			{Resource: "tfs", Mode: costmodel.Exclusive, Dur: time.Microsecond},
		},
	}}
	for i := 0; i < b.N; i++ {
		scalesim.Sweep(ops, []int{1, 2, 4, 6, 8, 10}, scalesim.Config{OpsPerThread: 200})
	}
}

// ---- Figure 6: write-latency sensitivity (one point) ----

func BenchmarkFigure6WriteLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, time.Microsecond} {
		lat := lat
		b.Run(fmt.Sprintf("scmline=%v", lat), func(b *testing.B) {
			costs := costmodel.Costs{SCMWriteLine: lat}
			sys, err := core.New(core.Options{ArenaSize: 128 << 20, Costs: costs, AcquireTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := sys.NewSession(libfs.Config{UID: 1})
			if err != nil {
				b.Fatal(err)
			}
			fs := pxfs.New(sess, pxfs.Options{NameCache: true})
			f, _ := fs.Create("/f", 0644)
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.WriteAt(buf, int64(i%1024)*4096); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablations (DESIGN.md §4) ----

// BenchmarkAblationBatching compares batched metadata shipping against a
// ship-every-op configuration (the paper's core latency optimization).
func BenchmarkAblationBatching(b *testing.B) {
	for _, limit := range []int{1, 8 << 20} {
		limit := limit
		name := "per-op"
		if limit > 1 {
			name = "8MB-batch"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := core.New(core.Options{ArenaSize: 128 << 20, AcquireTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: limit})
			if err != nil {
				b.Fatal(err)
			}
			fs := pxfs.New(sess, pxfs.Options{NameCache: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fs.Create(fmt.Sprintf("/f%08d", i), 0644)
				if err != nil {
					b.Fatal(err)
				}
				_ = f.Close()
			}
		})
	}
}

// BenchmarkAblationPrealloc compares the client pre-allocation pool against
// one-extent-per-RPC allocation (§5.3.7).
func BenchmarkAblationPrealloc(b *testing.B) {
	for _, refill := range []uint32{1, 64} {
		refill := refill
		b.Run(fmt.Sprintf("refill=%d", refill), func(b *testing.B) {
			// The pool's value is amortizing the RPC round trip, so this
			// ablation runs with the calibrated RPC cost.
			sys, err := core.New(core.Options{ArenaSize: 256 << 20, AcquireTimeout: time.Minute,
				Costs: costmodel.DefaultCosts()})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := sys.NewSession(libfs.Config{UID: 1, PoolRefill: refill})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.AllocStaged(4096); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHierarchicalLocks compares FlatFS's fine-grained bucket
// locking against forcing every write through the whole-collection lock
// (GrowHeadroom so large that every op escalates), under intra-process
// concurrency — the §6.2 scalability mechanism.
func BenchmarkAblationHierarchicalLocks(b *testing.B) {
	run := func(b *testing.B, headroom uint32, threads int) {
		sys, err := core.New(core.Options{ArenaSize: 256 << 20, AcquireTimeout: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := sys.NewSession(libfs.Config{UID: 1})
		if err != nil {
			b.Fatal(err)
		}
		fs := flatfs.New(sess, flatfs.Options{GrowHeadroom: headroom})
		for i := 0; i < 256; i++ {
			if err := fs.Put(fmt.Sprintf("k%04d", i), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.SetParallelism(threads)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			buf := make([]byte, 64)
			for pb.Next() {
				if _, err := fs.GetInto(fmt.Sprintf("k%04d", i%256), buf); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	}
	b.Run("bucket-locks", func(b *testing.B) { run(b, 8, 4) })
	// A huge headroom forces the single-collection-lock path on writes;
	// reads still use IS+bucket S, so stress the write path instead.
	b.Run("single-lock", func(b *testing.B) {
		sys, err := core.New(core.Options{ArenaSize: 256 << 20, AcquireTimeout: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := sys.NewSession(libfs.Config{UID: 1})
		if err != nil {
			b.Fatal(err)
		}
		fs := flatfs.New(sess, flatfs.Options{GrowHeadroom: 1 << 30})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.Put(fmt.Sprintf("k%04d", i%256), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI exercises the README quickstart path end to end.
func BenchmarkPublicAPI(b *testing.B) {
	sys, err := aerie.New(aerie.Options{ArenaSize: 128 << 20})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := sys.NewFlatFS(1000, aerie.FlatFSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("benchmark payload")
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key-%06d", i%1000)
		if err := fs.Put(key, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.GetInto(key, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExtentSize measures the paper's suggested extent-layout
// optimization (§7.2.2: "an extent file layout could similarly improve
// performance of PXFS"): sequential writes into files built from 4 KB
// page extents vs. 64 KB extents.
func BenchmarkAblationExtentSize(b *testing.B) {
	for _, lg := range []uint32{12, 16} {
		lg := lg
		b.Run(fmt.Sprintf("extent=%dKB", 1<<(lg-10)), func(b *testing.B) {
			sys, err := core.New(core.Options{ArenaSize: 512 << 20, AcquireTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			sess, err := sys.NewSession(libfs.Config{UID: 1})
			if err != nil {
				b.Fatal(err)
			}
			fs := pxfs.New(sess, pxfs.Options{NameCache: true, ExtentLog: lg})
			buf := make([]byte, 128<<10)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fs.Create(fmt.Sprintf("/f%06d", i%64), 0644)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Write(buf); err != nil {
					b.Fatal(err)
				}
				_ = f.Close()
			}
		})
	}
}
