# Verification tiers. tier1 is the gate every change must keep green; it
# now also vets the tree and race-tests the fault-injection and locking
# packages, whose tests are specifically about interleavings. tier2 adds
# race-enabled runs of the packages on the zero-copy read path; tier2-crash
# runs the exhaustive crash sweep (every ordinal of every fault point) plus
# race-enabled RPC/libFS fault-injection tests.

TIER2_PKGS := ./internal/scm ./internal/scmmgr ./internal/sobj ./internal/lockservice
RACE_FAULT_PKGS := ./internal/faultinject ./internal/lockservice

.PHONY: all tier1 tier2 tier2-crash bench-readpath

all: tier1

tier1:
	go build ./...
	go vet ./...
	go test ./...
	go test -race $(RACE_FAULT_PKGS)

tier2:
	go vet ./...
	go test -race $(TIER2_PKGS)

tier2-crash:
	AERIE_CRASHSWEEP_ORDINALS=-1 go test -v -timeout 60m -run TestSweepAllPoints ./internal/crashsweep
	go test -race ./internal/rpc ./internal/libfs ./internal/crashsweep

bench-readpath:
	go test -run xxx -bench BenchmarkReadPath -benchmem .
