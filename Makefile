# Verification tiers. tier1 is the gate every change must keep green; it
# now also vets the tree and race-tests the fault-injection and locking
# packages, whose tests are specifically about interleavings. tier2 adds
# race-enabled runs of the packages on the zero-copy read path plus a short
# fuzz pass over the wire/protocol decoders; tier2-crash runs the exhaustive
# crash sweep (every ordinal of every fault point) plus race-enabled
# RPC/libFS fault-injection tests; tier2-exhaust runs the full
# resource-exhaustion sweep (natural fill + every sampled ordinal of every
# allocation/journal failure point); tier2-writepipe race-tests the
# pipelined write path — the client completion window, the TFS sequence
# gate and group commit, the crash sweep over the group-commit fault
# points, and the pipelined differential conformance trace; tier2-linearize
# runs the concurrent linearizability tier — the clean 8-client checker
# run, the injected-violation detections, and the kill -9 crash-prefix
# sweep under the randomized concurrent workload; tier2-shard runs the
# sharded trusted set's tier — multi-shard conformance with the
# cross-shard-rename-biased generator under -race, and the kill -9 sweep
# over every ordinal of the 2PC protocol's crash windows.

TIER2_PKGS := ./internal/scm ./internal/scmmgr ./internal/sobj ./internal/lockservice ./internal/alloc
RACE_FAULT_PKGS := ./internal/faultinject ./internal/lockservice
FUZZTIME ?= 10s

.PHONY: all tier1 tier2 tier2-crash tier2-exhaust tier2-writepipe tier2-persist tier2-linearize tier2-shard tier2-aging tier2-tenant bench-readpath bench-writepath bench-recovery bench-shard bench-aging fuzz-short

all: tier1

tier1:
	go build ./...
	go vet ./...
	go test ./...
	go test -race $(RACE_FAULT_PKGS)

tier2: fuzz-short
	go vet ./...
	go test -race $(TIER2_PKGS)

# Short fuzz pass over every decoder that parses client-controlled bytes
# (untrusted input crossing the libFS -> TFS boundary) and the PXFS path
# normalizer. Each target gets $(FUZZTIME); seed corpora live in each
# package's testdata/fuzz/.
fuzz-short:
	go test -fuzz='^FuzzDecodeOps$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fsproto
	go test -fuzz='^FuzzDecodeReplies$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fsproto
	go test -fuzz='^FuzzSeqHeader$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fsproto
	go test -fuzz='^FuzzShardHeader$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fsproto
	go test -fuzz='^FuzzTenantHeader$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fsproto
	go test -fuzz='^FuzzReader$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/wire
	go test -fuzz='^FuzzWriterReaderRoundTrip$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/wire
	go test -fuzz='^FuzzSplitPath$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/pxfs
	go test -fuzz='^FuzzDecodeActions$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/tfs

tier2-crash:
	AERIE_CRASHSWEEP_ORDINALS=-1 go test -v -timeout 60m -run TestSweepAllPoints ./internal/crashsweep
	go test -race ./internal/rpc ./internal/libfs ./internal/crashsweep

# Full exhaustion sweep: natural fill of a tiny volume plus an injected
# failure at every sampled ordinal of alloc.alloc / alloc.reserve /
# journal.append, asserting typed errors, clean volumes, and forward
# progress after frees.
tier2-exhaust:
	go test -v -timeout 30m -run TestSweepFull ./internal/exhaustsweep

# Race-enabled sweep of the pipelined write path: window protocol and
# sequence-gate tests, crash prefix-consistency at every group-commit
# fault point, and the pipelined write conformance trace (PXFS and FlatFS
# with batches in flight vs RamFS and ext4).
tier2-writepipe:
	go test -race -run 'TestPipelined|TestParkedWindow|TestWindowSeqGate|TestWritePipeStress' ./internal/libfs
	go test -race -run 'TestWindowPrefixConsistency' ./internal/crashsweep
	go test -race -run 'TestPipelinedWriteConformance' ./internal/conformance

# Persistence tier: the real-process kill -9 sweep over the full point set
# (children SIGKILLed mid-write-burst, parent recovers the volume file),
# the volume-file corruption matrix, and the persistence wiring in scm /
# core / crashsweep.
tier2-persist:
	AERIE_PROCSWEEP_FULL=1 go test -v -timeout 10m -run 'TestProcessKill9Sweep' ./internal/crashsweep
	go test -run 'TestVolume|TestNextMapSize' ./internal/scm
	go test -run 'TestVolume|TestOpen|TestNew|TestReopen' ./internal/core

# Linearizability tier: the concurrent differential harness (8 pipelined
# PXFS clients, randomized scripts, Wing-Gong check of the recorded
# history), the five injected-violation detections, the checker's own unit
# suite under -race, and the kill -9 crash-prefix sweep (children killed
# mid-concurrent-run; the surviving volume must linearize to a prefix of
# every client's script). Randomized pieces honor AERIE_SEED for replay.
tier2-linearize:
	go test -race -count=1 ./internal/linearize
	go test -race -count=1 -timeout 10m -run 'TestConcurrent' -v ./internal/conformance
	go test -count=1 -timeout 10m -run 'TestLinearCrashPrefixSweep' -v ./internal/crashsweep

# Sharding tier: the multi-shard machine's unit tests, the sharded
# concurrent conformance runs (4-shard and 2-shard, scripts biased toward
# cross-shard renames, Wing-Gong linearizability check) under -race, and
# the real-process kill -9 sweep at every ordinal of the three 2PC crash
# windows (tfs.2pc.prepare must abort, tfs.2pc.commit and tfs.2pc.resolve
# must complete — exactly one outcome, asserted per victim transaction).
tier2-shard:
	go test -race -count=1 -run 'TestSharded|TestStatfsReplyShardRows' ./internal/core ./internal/fsproto
	go test -race -count=1 -timeout 10m -run 'TestConcurrentSharded|TestConcurrentTwoShard' -v ./internal/conformance
	AERIE_2PCSWEEP_FULL=1 go test -count=1 -timeout 10m -run 'TestShard2PCKill9Sweep' -v ./internal/crashsweep

# Aging tier: the short-mode long-haul sweep (log-rotate + varmail churn
# rounds with per-round fragmentation, probe-read-latency, journal-idle and
# fsck checks, bounded by an absolute fragmentation-index ceiling and a
# generous read-slowdown ratio) plus the unlink-of-buffered-appends leak
# regression the harness first exposed.
tier2-aging:
	go test -count=1 -timeout 10m -run 'TestAging|TestCheckBounds|TestUnlinkBufferedAppends' -v ./internal/agesweep

# Tenancy tier: race-enabled multi-tenant isolation tests — weighted-fair
# scheduling under an aggressor flood (victim p99 bound), the quota
# exhaustion sweep (typed errors, batch atomicity, delete-to-recover), and
# per-shard tenant accounting including mid-2PC reservation attribution.
tier2-tenant:
	go test -race -count=1 -timeout 10m -run 'TestTenant|TestQuota|TestFair' -v ./internal/tfs ./internal/core
	go test -race -count=1 -run 'TestBackoffHonorsRetryAfterHint|TestRetryableShed' ./internal/libfs

bench-readpath:
	go test -run xxx -bench BenchmarkReadPath -benchmem .

bench-writepath:
	go test -run xxx -bench BenchmarkWritePath -benchtime 1x .

bench-recovery:
	go test -run xxx -bench BenchmarkRecovery -benchtime 1x .

bench-shard:
	go test -run xxx -bench BenchmarkShardScale -benchtime 1x .

bench-aging:
	go test -run xxx -bench BenchmarkAging -benchtime 1x -timeout 30m .
