# Verification tiers. tier1 is the gate every change must keep green;
# tier2 adds vet plus race-enabled runs of the packages on the zero-copy
# read path (arena, SCM manager, storage objects, lock service).

TIER2_PKGS := ./internal/scm ./internal/scmmgr ./internal/sobj ./internal/lockservice

.PHONY: all tier1 tier2 bench-readpath

all: tier1

tier1:
	go build ./...
	go test ./...

tier2:
	go vet ./...
	go test -race $(TIER2_PKGS)

bench-readpath:
	go test -run xxx -bench BenchmarkReadPath -benchmem .
