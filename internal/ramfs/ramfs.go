// Package ramfs is the best-case kernel baseline (§7.1): a purely in-memory
// file system under the simulated VFS, with no crash-consistency work at
// all — the role Linux RamFS plays in the paper's comparisons.
package ramfs

import (
	"sort"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/vfs"
)

type node struct {
	attr     vfs.Attr
	data     []byte
	children map[string]vfs.Ino
}

// FS is an in-memory vfs.FileSystem.
type FS struct {
	mu    sync.Mutex
	nodes map[vfs.Ino]*node
	next  vfs.Ino
}

// New creates an empty RamFS with a root directory.
func New() *FS {
	fs := &FS{nodes: make(map[vfs.Ino]*node), next: 2}
	fs.nodes[1] = &node{
		attr:     vfs.Attr{Mode: 0755, Nlink: 1, IsDir: true},
		children: make(map[string]vfs.Ino),
	}
	return fs
}

// Root implements vfs.FileSystem.
func (fs *FS) Root() vfs.Ino { return 1 }

// Clone returns a deep, fully independent copy of the file system. The
// linearize model-equivalence tests snapshot RamFS mid-sequence with this
// to prove divergent continuations stay independent — the same property
// the checker's copy-on-write State relies on.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := &FS{nodes: make(map[vfs.Ino]*node, len(fs.nodes)), next: fs.next}
	for ino, n := range fs.nodes {
		nn := &node{attr: n.attr}
		if n.data != nil {
			nn.data = append([]byte(nil), n.data...)
		}
		if n.children != nil {
			nn.children = make(map[string]vfs.Ino, len(n.children))
			for name, c := range n.children {
				nn.children[name] = c
			}
		}
		cp.nodes[ino] = nn
	}
	return cp
}

func (fs *FS) dir(ino vfs.Ino) (*node, error) {
	n := fs.nodes[ino]
	if n == nil {
		return nil, vfs.ErrNotExist
	}
	if !n.attr.IsDir {
		return nil, vfs.ErrNotDir
	}
	return n, nil
}

// Lookup implements vfs.FileSystem.
func (fs *FS) Lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dir(dir)
	if err != nil {
		return 0, err
	}
	ino, ok := d.children[name]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return ino, nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(dir vfs.Ino, name string, mode uint32, isDir bool) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dir(dir)
	if err != nil {
		return 0, err
	}
	if _, ok := d.children[name]; ok {
		return 0, vfs.ErrExist
	}
	ino := fs.next
	fs.next++
	n := &node{attr: vfs.Attr{Mode: mode, Nlink: 1, Mtime: time.Now().UnixNano(), IsDir: isDir}}
	if isDir {
		n.children = make(map[string]vfs.Ino)
	}
	fs.nodes[ino] = n
	d.children[name] = ino
	return ino, nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(dir vfs.Ino, name string, rmdir bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dir(dir)
	if err != nil {
		return err
	}
	ino, ok := d.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := fs.nodes[ino]
	if rmdir {
		if !n.attr.IsDir {
			return vfs.ErrNotDir
		}
		if len(n.children) > 0 {
			return vfs.ErrNotEmpty
		}
	} else if n.attr.IsDir {
		return vfs.ErrIsDir
	}
	delete(d.children, name)
	delete(fs.nodes, ino)
	return nil
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sd, err := fs.dir(sdir)
	if err != nil {
		return err
	}
	dd, err := fs.dir(ddir)
	if err != nil {
		return err
	}
	ino, ok := sd.children[sname]
	if !ok {
		return vfs.ErrNotExist
	}
	if old, ok := dd.children[dname]; ok {
		delete(fs.nodes, old)
	}
	delete(sd.children, sname)
	dd.children[dname] = ino
	return nil
}

// GetAttr implements vfs.FileSystem.
func (fs *FS) GetAttr(ino vfs.Ino) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.nodes[ino]
	if n == nil {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	return n.attr, nil
}

// SetMode implements vfs.FileSystem.
func (fs *FS) SetMode(ino vfs.Ino, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.nodes[ino]
	if n == nil {
		return vfs.ErrNotExist
	}
	n.attr.Mode = mode
	return nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(dir vfs.Ino) ([]vfs.NameIno, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]vfs.NameIno, 0, len(d.children))
	for name, ino := range d.children {
		out = append(out, vfs.NameIno{Name: name, Ino: ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadAt implements vfs.FileSystem.
func (fs *FS) ReadAt(ino vfs.Ino, p []byte, off uint64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.nodes[ino]
	if n == nil {
		return 0, vfs.ErrNotExist
	}
	if off >= uint64(len(n.data)) {
		return 0, nil
	}
	return copy(p, n.data[off:]), nil
}

// WriteAt implements vfs.FileSystem.
func (fs *FS) WriteAt(ino vfs.Ino, p []byte, off uint64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.nodes[ino]
	if n == nil {
		return 0, vfs.ErrNotExist
	}
	end := off + uint64(len(p))
	if end > uint64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[off:end], p)
	n.attr.Size = uint64(len(n.data))
	n.attr.Mtime = time.Now().UnixNano()
	return len(p), nil
}

// Truncate implements vfs.FileSystem.
func (fs *FS) Truncate(ino vfs.Ino, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.nodes[ino]
	if n == nil {
		return vfs.ErrNotExist
	}
	if size <= uint64(len(n.data)) {
		n.data = n.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.attr.Size = size
	return nil
}

// Sync implements vfs.FileSystem: RamFS provides no persistence.
func (fs *FS) Sync() error { return nil }
