package conformance

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates trace operations.
type OpKind int

const (
	OpMkdir OpKind = iota
	OpPut
	OpWriteAt
	OpAppend
	OpTruncate
	OpDelete
	OpRename
	OpSync
)

func (k OpKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpPut:
		return "put"
	case OpWriteAt:
		return "writeat"
	case OpAppend:
		return "append"
	case OpTruncate:
		return "truncate"
	case OpDelete:
		return "delete"
	case OpRename:
		return "rename"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one trace operation. Only the fields the kind needs are set.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Off   int64  // writeat offset
	Size  int64  // truncate size
	Data  []byte
}

// GenerateTrace builds a deterministic operation trace in the FileBench
// style (create/whole-write, append, partial overwrite, truncate, delete,
// rename, periodic sync). The same seed always yields the same trace. The
// generator tracks live file sizes so every op is valid on every target:
// partial writes and truncates only hit existing files, truncates only
// shrink (grow-with-zero-fill semantics differ between put/get stores and
// byte-addressed files), and renames never collide.
func GenerateTrace(seed int64, nOps int) []Op {
	rng := rand.New(rand.NewSource(seed))
	var ops []Op

	dirs := []string{"/ct", "/ct/d0", "/ct/d1", "/ct/d2"}
	for _, d := range dirs {
		ops = append(ops, Op{Kind: OpMkdir, Path: d})
	}

	sizes := map[string]int64{} // live files -> size
	var live []string           // deterministic iteration order
	nextFile := 0

	pick := func() string { return live[rng.Intn(len(live))] }
	remove := func(path string) {
		delete(sizes, path)
		for i, p := range live {
			if p == path {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}
	randData := func(max int) []byte {
		n := 1 + rng.Intn(max)
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	sinceSync := 0
	for len(ops) < nOps {
		sinceSync++
		if sinceSync >= 12 {
			ops = append(ops, Op{Kind: OpSync})
			sinceSync = 0
			continue
		}
		r := rng.Intn(100)
		switch {
		case r < 30 || len(live) == 0: // create or replace whole file
			var path string
			if len(live) > 0 && rng.Intn(4) == 0 {
				path = pick() // replace
			} else {
				path = fmt.Sprintf("%s/f%04d", dirs[1+rng.Intn(len(dirs)-1)], nextFile)
				nextFile++
				live = append(live, path)
			}
			data := randData(8 << 10)
			sizes[path] = int64(len(data))
			ops = append(ops, Op{Kind: OpPut, Path: path, Data: data})
		case r < 50: // append
			path := pick()
			data := randData(2 << 10)
			sizes[path] += int64(len(data))
			ops = append(ops, Op{Kind: OpAppend, Path: path, Data: data})
		case r < 68: // partial overwrite (may extend past EOF)
			path := pick()
			size := sizes[path]
			off := rng.Int63n(size + 1)
			data := randData(2 << 10)
			if end := off + int64(len(data)); end > size {
				sizes[path] = end
			}
			ops = append(ops, Op{Kind: OpWriteAt, Path: path, Off: off, Data: data})
		case r < 78: // shrink
			path := pick()
			to := rng.Int63n(sizes[path] + 1)
			sizes[path] = to
			ops = append(ops, Op{Kind: OpTruncate, Path: path, Size: to})
		case r < 90: // delete
			path := pick()
			remove(path)
			ops = append(ops, Op{Kind: OpDelete, Path: path})
		default: // rename to a fresh name (possibly another directory)
			path := pick()
			dst := fmt.Sprintf("%s/f%04d", dirs[1+rng.Intn(len(dirs)-1)], nextFile)
			nextFile++
			sizes[dst] = sizes[path]
			remove(path)
			live = append(live, dst)
			ops = append(ops, Op{Kind: OpRename, Path: path, Path2: dst})
		}
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}
