package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// TestENOSPCSyncEpochs drives PXFS on a nearly-too-small volume against an
// in-memory model with sync-epoch granularity: mutations buffer in an
// overlay until Sync. A Sync that returns typed ENOSPC must reject the
// whole epoch atomically — the session rolls back to committed state, so
// the model drops its overlay — while a successful Sync commits it. After
// every sync (either outcome) the volume must byte-match the model. Once
// space runs out, deleting files must still succeed (the degraded-remove
// guarantee) and writes must make progress again.
func TestENOSPCSyncEpochs(t *testing.T) {
	sys, err := core.New(core.Options{
		ArenaSize:        8 << 20,
		JournalSize:      256 << 10,
		TrackPersistence: true,
		Lease:            time.Hour,
		AcquireTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sess, err := sys.NewSession(libfs.Config{
		UID:        1000,
		BatchLimit: 1 << 20,
		PoolRefill: 8,
		RenewEvery: time.Hour,
	})
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	const dir = "/ep"
	if err := fs.Mkdir(dir, 0755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync mkdir: %v", err)
	}

	// Model: committed state plus the pending epoch's overlay
	// (nil value = deleted in this epoch).
	committed := map[string][]byte{}
	overlay := map[string]*[]byte{}
	visible := func(p string) ([]byte, bool) {
		if v, ok := overlay[p]; ok {
			if v == nil {
				return nil, false
			}
			return *v, true
		}
		v, ok := committed[p]
		return v, ok
	}

	putWhole := func(p string, data []byte) error {
		f, err := fs.OpenFile(p, pxfs.O_RDWR|pxfs.O_CREATE|pxfs.O_TRUNC, 0644)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write(data)
		return err
	}
	enospc := func(err error) bool {
		return errors.Is(err, fsproto.ErrNoSpace)
	}
	// A mid-op ENOSPC (extent staging failed partway through a write)
	// can leave a prefix of the op's sub-ops in the pending batch, so
	// the path's pending state is unknown. Deleting it needs no space
	// and supersedes whatever was logged, restoring a known state.
	poison := func(p string) {
		err := fs.Unlink(p)
		if err != nil && !errors.Is(err, pxfs.ErrNotExist) {
			t.Fatalf("poison unlink %s: %v", p, err)
		}
		if err == nil || visibleHas(committed, overlay, p) {
			null := (*[]byte)(nil)
			overlay[p] = null
		}
	}

	verify := func(tag string) {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: readdir: %v", tag, err)
		}
		var got []string
		for _, e := range ents {
			got = append(got, dir+"/"+e.Name)
		}
		sort.Strings(got)
		var want []string
		for p := range committed {
			want = append(want, p)
		}
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: listing mismatch\n got %v\nwant %v", tag, got, want)
		}
		for p, data := range committed {
			fi, err := fs.Stat(p)
			if err != nil {
				t.Fatalf("%s: stat %s: %v", tag, p, err)
			}
			if fi.Size != uint64(len(data)) {
				t.Fatalf("%s: %s size %d, model %d", tag, p, fi.Size, len(data))
			}
			f, err := fs.Open(p, pxfs.O_RDONLY)
			if err != nil {
				t.Fatalf("%s: open %s: %v", tag, p, err)
			}
			buf := make([]byte, len(data))
			if len(buf) > 0 {
				if _, err := f.ReadAt(buf, 0); err != nil {
					f.Close()
					t.Fatalf("%s: read %s: %v", tag, p, err)
				}
			}
			f.Close()
			if !bytes.Equal(buf, data) {
				t.Fatalf("%s: %s content diverged from model", tag, p)
			}
		}
	}

	sync := func(tag string) (rejected bool) {
		err := fs.Sync()
		switch {
		case err == nil:
			for p, v := range overlay {
				if v == nil {
					delete(committed, p)
				} else {
					committed[p] = *v
				}
			}
		case enospc(err):
			if !errors.Is(err, libfs.ErrStaleBatch) {
				t.Fatalf("%s: ENOSPC not typed as a rejected batch: %v", tag, err)
			}
			rejected = true
		default:
			t.Fatalf("%s: sync: %v", tag, err)
		}
		overlay = map[string]*[]byte{}
		verify(tag)
		return rejected
	}

	rng := rand.New(rand.NewSource(11))
	content := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Int())
		}
		return b
	}
	path := func(i int) string { return fmt.Sprintf("%s/f%02d", dir, i) }

	sawENOSPC := false
	progressAfter := false
	for step := 0; step < 120; step++ {
		// One epoch: a few mutations, then a sync point.
		for op := 0; op < 3; op++ {
			p := path(rng.Intn(14))
			switch k := rng.Intn(10); {
			case k < 6: // write/overwrite; sizes grow until the volume fills
				data := content((1+step)*(16<<10) + rng.Intn(16<<10))
				if err := putWhole(p, data); err != nil {
					if !enospc(err) {
						t.Fatalf("put %s: %v", p, err)
					}
					sawENOSPC = true
					poison(p)
					continue
				}
				d := data
				overlay[p] = &d
				// Stat the staged file: this caches its path→OID mapping,
				// which must not survive a later batch rejection (the
				// discard hook flushes it).
				fi, err := fs.Stat(p)
				if err != nil {
					t.Fatalf("stat staged %s: %v", p, err)
				}
				if fi.Size != uint64(len(data)) {
					t.Fatalf("staged %s size %d, wrote %d", p, fi.Size, len(data))
				}
			case k < 8: // delete
				err := fs.Unlink(p)
				if err != nil {
					if errors.Is(err, pxfs.ErrNotExist) {
						continue
					}
					t.Fatalf("unlink %s: %v", p, err)
				}
				overlay[p] = nil
			default: // rename
				q := path(rng.Intn(14))
				if p == q {
					continue
				}
				err := fs.Rename(p, q)
				if err != nil {
					if errors.Is(err, pxfs.ErrNotExist) {
						continue
					}
					t.Fatalf("rename %s %s: %v", p, q, err)
				}
				v, ok := visible(p)
				if !ok {
					t.Fatalf("rename %s succeeded but model has no source", p)
				}
				d := v
				overlay[q] = &d
				overlay[p] = nil
			}
		}
		rejected := sync(fmt.Sprintf("epoch %d", step))
		if rejected {
			sawENOSPC = true
			// Degrade gracefully: delete half the files — removes must
			// commit even on a full volume — then keep writing.
			var names []string
			for p := range committed {
				names = append(names, p)
			}
			sort.Strings(names)
			for i, p := range names {
				if i%2 == 0 {
					if err := fs.Unlink(p); err != nil {
						t.Fatalf("degrade unlink %s: %v", p, err)
					}
					overlay[p] = nil
				}
			}
			if fs.Sync() != nil {
				t.Fatalf("delete-only epoch must commit on a full volume")
			}
			for p, v := range overlay {
				if v == nil {
					delete(committed, p)
				}
			}
			overlay = map[string]*[]byte{}
			verify(fmt.Sprintf("epoch %d degrade", step))
		} else if sawENOSPC {
			progressAfter = true
		}
	}
	if !sawENOSPC {
		t.Fatalf("volume never filled; shrink the arena or grow the writes")
	}
	if !progressAfter {
		t.Fatalf("no committed epoch after space was freed")
	}
}

func visibleHas(committed map[string][]byte, overlay map[string]*[]byte, p string) bool {
	if v, ok := overlay[p]; ok {
		return v != nil
	}
	_, ok := committed[p]
	return ok
}
