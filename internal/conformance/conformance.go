// Package conformance checks that every file-system implementation in the
// repository agrees on observable state. A deterministic FileBench-flavored
// operation trace is replayed against PXFS, FlatFS, RamFS, and the ext-like
// file system; after every sync point the harness captures each system's
// visible state (paths, sizes, content hashes) and demands that all four
// match. The paper's claim that one storage layout serves both a POSIX and
// a key-value interface (§6.2) only holds if the interfaces agree on what
// the data is — this package is that claim as a test.
//
// FlatFS has no directories and whole-file put/get/erase semantics, so the
// adapter maps paths to flat keys and synthesizes partial writes with
// read-modify-write; the harness compares files across all systems but
// directory trees only among the hierarchical ones (HasDirs).
package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// FileState is one file's observable state.
type FileState struct {
	Path string
	Size int64
	// Hash is the hex SHA-256 of the content.
	Hash string
}

// FS is the surface the differential harness drives. Adapters translate
// these calls into each implementation's native API.
type FS interface {
	Name() string
	// HasDirs reports whether the implementation has a real directory
	// tree (false for FlatFS).
	HasDirs() bool
	Mkdir(path string) error
	// PutWhole creates or fully replaces a file.
	PutWhole(path string, data []byte) error
	// WriteAt overwrites/extends an existing file at off.
	WriteAt(path string, off int64, data []byte) error
	Append(path string, data []byte) error
	Truncate(path string, size int64) error
	Delete(path string) error
	Rename(oldPath, newPath string) error
	Sync() error
	// Files returns every file's state, sorted by path.
	Files() ([]FileState, error)
	// Dirs returns every directory path, sorted (nil when !HasDirs).
	Dirs() ([]string, error)
}

func hashBytes(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// DivergenceError describes the first observed disagreement between two
// file systems.
type DivergenceError struct {
	A, B   string // FS names
	AtOp   int    // index of the sync op where the divergence was seen
	Detail string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("conformance: %s and %s diverged at op %d: %s", e.A, e.B, e.AtOp, e.Detail)
}

// compareFiles diffs two sorted file listings.
func compareFiles(a, b []FileState) string {
	av := map[string]FileState{}
	for _, f := range a {
		av[f.Path] = f
	}
	bv := map[string]FileState{}
	for _, f := range b {
		bv[f.Path] = f
	}
	var paths []string
	for p := range av {
		paths = append(paths, p)
	}
	for p := range bv {
		if _, ok := av[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		fa, oka := av[p]
		fb, okb := bv[p]
		switch {
		case !oka:
			return fmt.Sprintf("file %q missing from first", p)
		case !okb:
			return fmt.Sprintf("file %q missing from second", p)
		case fa.Size != fb.Size:
			return fmt.Sprintf("file %q size %d vs %d", p, fa.Size, fb.Size)
		case fa.Hash != fb.Hash:
			return fmt.Sprintf("file %q content differs (size %d)", p, fa.Size)
		}
	}
	return ""
}

func compareDirs(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d dirs vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("dir %q vs %q", a[i], b[i])
		}
	}
	return ""
}

// checkAgreement syncs every FS and compares observable state against the
// first one. atOp annotates errors with the trace position.
func checkAgreement(fses []FS, atOp int) error {
	type capture struct {
		files []FileState
		dirs  []string
	}
	caps := make([]capture, len(fses))
	for i, f := range fses {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("%s sync at op %d: %w", f.Name(), atOp, err)
		}
		files, err := f.Files()
		if err != nil {
			return fmt.Errorf("%s capture at op %d: %w", f.Name(), atOp, err)
		}
		caps[i].files = files
		if f.HasDirs() {
			dirs, err := f.Dirs()
			if err != nil {
				return fmt.Errorf("%s dirs at op %d: %w", f.Name(), atOp, err)
			}
			caps[i].dirs = dirs
		}
	}
	// Baseline is the first FS; dir baseline is the first hierarchical one.
	dirBase := -1
	for i, f := range fses {
		if f.HasDirs() {
			dirBase = i
			break
		}
	}
	for i := 1; i < len(fses); i++ {
		if d := compareFiles(caps[0].files, caps[i].files); d != "" {
			return &DivergenceError{A: fses[0].Name(), B: fses[i].Name(), AtOp: atOp, Detail: d}
		}
	}
	if dirBase >= 0 {
		for i := dirBase + 1; i < len(fses); i++ {
			if !fses[i].HasDirs() {
				continue
			}
			if d := compareDirs(caps[dirBase].dirs, caps[i].dirs); d != "" {
				return &DivergenceError{A: fses[dirBase].Name(), B: fses[i].Name(), AtOp: atOp, Detail: d}
			}
		}
	}
	return nil
}

// RunDifferential replays the trace against every FS in lockstep, checking
// agreement at each sync point and once more at the end.
func RunDifferential(fses []FS, ops []Op) error {
	if len(fses) < 2 {
		return fmt.Errorf("conformance: need at least two file systems, got %d", len(fses))
	}
	for i, op := range ops {
		if op.Kind == OpSync {
			if err := checkAgreement(fses, i); err != nil {
				return err
			}
			continue
		}
		for _, f := range fses {
			if err := applyOp(f, op); err != nil {
				return fmt.Errorf("%s op %d (%s %s): %w", f.Name(), i, op.Kind, op.Path, err)
			}
		}
	}
	return checkAgreement(fses, len(ops))
}

// applyOp translates one trace op into adapter calls.
func applyOp(f FS, op Op) error {
	switch op.Kind {
	case OpMkdir:
		return f.Mkdir(op.Path)
	case OpPut:
		return f.PutWhole(op.Path, op.Data)
	case OpWriteAt:
		return f.WriteAt(op.Path, op.Off, op.Data)
	case OpAppend:
		return f.Append(op.Path, op.Data)
	case OpTruncate:
		return f.Truncate(op.Path, op.Size)
	case OpDelete:
		return f.Delete(op.Path)
	case OpRename:
		return f.Rename(op.Path, op.Path2)
	default:
		return fmt.Errorf("conformance: unknown op kind %d", op.Kind)
	}
}
