package conformance

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// newAerieFS boots a fresh machine and mounts one client session.
func newAerieSession(t *testing.T) *libfs.Session {
	t.Helper()
	return newAerieSessionCfg(t, libfs.Config{UID: 1000})
}

// newAerieSessionCfg boots a fresh machine and mounts one client session
// with the given libfs configuration (the pipelined-write trace uses a
// deep window and a tiny batch limit).
func newAerieSessionCfg(t *testing.T, cfg libfs.Config) *libfs.Session {
	t.Helper()
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func newPXFS(t *testing.T) FS {
	return PXFSAdapter{FS: pxfs.New(newAerieSession(t), pxfs.Options{NameCache: true})}
}

func newFlat(t *testing.T) FS {
	return FlatAdapter{FS: flatfs.New(newAerieSession(t), flatfs.Options{})}
}

func newKernel(t *testing.T, name string) FS {
	t.Helper()
	costs := &costmodel.Costs{}
	var inner vfs.FileSystem
	switch name {
	case "RamFS":
		inner = ramfs.New()
	default:
		fs, err := extfs.Mkfs(blockdev.New(32<<10, costs, false), extfs.Ext4)
		if err != nil {
			t.Fatal(err)
		}
		inner = fs
	}
	return VFSAdapter{FSName: name, V: vfs.New(inner, vfs.Config{Costs: costs})}
}

func allTargets(t *testing.T) []FS {
	return []FS{newPXFS(t), newFlat(t), newKernel(t, "RamFS"), newKernel(t, "ext4")}
}

// TestTraceDeterministic pins the generator: the same seed must produce
// byte-identical traces (the differential test is only meaningful if every
// target replays the very same operations).
func TestTraceDeterministic(t *testing.T) {
	a := GenerateTrace(42, 300)
	b := GenerateTrace(42, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := GenerateTrace(43, 300)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	syncs := 0
	for _, op := range a {
		if op.Kind == OpSync {
			syncs++
		}
	}
	if syncs < 10 {
		t.Fatalf("only %d sync points in %d ops", syncs, len(a))
	}
}

// TestDifferentialConformance replays one deterministic trace against all
// four file systems and demands identical observable state at every sync
// point: same files, same sizes, same contents; same directory trees among
// the hierarchical systems.
func TestDifferentialConformance(t *testing.T) {
	ops := GenerateTrace(42, 400)
	if err := RunDifferential(allTargets(t), ops); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialConformanceSeeds runs shorter traces under other seeds,
// covering different op interleavings.
func TestDifferentialConformanceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{1, 7, 1337} {
		ops := GenerateTrace(seed, 200)
		if err := RunDifferential(allTargets(t), ops); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// rotatingFS wraps an Aerie-backed target so every trace operation seals
// its ops into their own window batch (Session.RotateBatch). Trace-op
// boundaries are always safe batch boundaries — unlike a byte threshold,
// which can split FlatFS's create/write/insert sequence so the keyed write
// validates before the insert that links the key has applied.
type rotatingFS struct {
	FS
	sess *libfs.Session
}

func (r rotatingFS) rot(err error) error {
	if err != nil {
		return err
	}
	return r.sess.RotateBatch()
}

func (r rotatingFS) Mkdir(path string) error  { return r.rot(r.FS.Mkdir(path)) }
func (r rotatingFS) Delete(path string) error { return r.rot(r.FS.Delete(path)) }
func (r rotatingFS) PutWhole(path string, data []byte) error {
	return r.rot(r.FS.PutWhole(path, data))
}
func (r rotatingFS) WriteAt(path string, off int64, data []byte) error {
	return r.rot(r.FS.WriteAt(path, off, data))
}
func (r rotatingFS) Append(path string, data []byte) error {
	return r.rot(r.FS.Append(path, data))
}
func (r rotatingFS) Truncate(path string, size int64) error {
	return r.rot(r.FS.Truncate(path, size))
}
func (r rotatingFS) Rename(oldPath, newPath string) error {
	return r.rot(r.FS.Rename(oldPath, newPath))
}

// TestPipelinedWriteConformance replays the differential trace with the
// Aerie targets running the pipelined write path: an 8-deep completion
// window with every trace operation rotating its own batch, so several
// unsynced batches are in flight whenever the trace hits a sync point.
// PXFS additionally runs a one-byte batch limit (each logged op its own
// batch — safe under directory/file covers); FlatFS rotates at trace-op
// boundaries, the finest split its keyed-cover validation admits. Sync
// semantics must be byte-identical to the synchronous path — the
// kernel-backed targets (RamFS, ext4) replay the same trace synchronously
// and every sync-point comparison must agree on files, sizes, contents,
// and directory trees.
func TestPipelinedWriteConformance(t *testing.T) {
	pxSess := newAerieSessionCfg(t, libfs.Config{UID: 1000, BatchLimit: 1, Window: 8})
	flatSess := newAerieSessionCfg(t, libfs.Config{UID: 1000, Window: 8})
	targets := []FS{
		rotatingFS{FS: PXFSAdapter{FS: pxfs.New(pxSess, pxfs.Options{NameCache: true})}, sess: pxSess},
		rotatingFS{FS: FlatAdapter{FS: flatfs.New(flatSess, flatfs.Options{})}, sess: flatSess},
		newKernel(t, "RamFS"),
		newKernel(t, "ext4"),
	}
	ops := GenerateTrace(42, 400)
	if err := RunDifferential(targets, ops); err != nil {
		t.Fatal(err)
	}
}

// shortAppend injects an off-by-one into one target: every append drops its
// final byte.
type shortAppend struct{ FS }

func (s shortAppend) Append(path string, data []byte) error {
	if len(data) > 0 {
		data = data[:len(data)-1]
	}
	return s.FS.Append(path, data)
}

// TestInjectedDivergence proves the harness has teeth: an off-by-one in a
// single implementation must surface as a divergence, not pass silently.
func TestInjectedDivergence(t *testing.T) {
	targets := allTargets(t)
	targets[2] = shortAppend{targets[2]} // corrupt RamFS
	err := RunDifferential(targets, GenerateTrace(42, 200))
	if err == nil {
		t.Fatal("off-by-one append went undetected")
	}
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("got %v, want a DivergenceError", err)
	}
	t.Logf("detected as expected: %v", div)
}
