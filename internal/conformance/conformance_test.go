package conformance

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// newAerieFS boots a fresh machine and mounts one client session.
func newAerieSession(t *testing.T) *libfs.Session {
	t.Helper()
	return newAerieSessionCfg(t, libfs.Config{UID: 1000})
}

// newAerieSessionCfg boots a fresh machine and mounts one client session
// with the given libfs configuration (the pipelined-write trace uses a
// deep window and a tiny batch limit).
func newAerieSessionCfg(t *testing.T, cfg libfs.Config) *libfs.Session {
	t.Helper()
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func newPXFS(t *testing.T) FS {
	return PXFSAdapter{FS: pxfs.New(newAerieSession(t), pxfs.Options{NameCache: true})}
}

func newFlat(t *testing.T) FS {
	return FlatAdapter{FS: flatfs.New(newAerieSession(t), flatfs.Options{})}
}

func newKernel(t *testing.T, name string) FS {
	t.Helper()
	costs := &costmodel.Costs{}
	var inner vfs.FileSystem
	switch name {
	case "RamFS":
		inner = ramfs.New()
	default:
		fs, err := extfs.Mkfs(blockdev.New(32<<10, costs, false), extfs.Ext4)
		if err != nil {
			t.Fatal(err)
		}
		inner = fs
	}
	return VFSAdapter{FSName: name, V: vfs.New(inner, vfs.Config{Costs: costs})}
}

func allTargets(t *testing.T) []FS {
	return []FS{newPXFS(t), newFlat(t), newKernel(t, "RamFS"), newKernel(t, "ext4")}
}

// TestTraceDeterministic pins the generator: the same seed must produce
// byte-identical traces (the differential test is only meaningful if every
// target replays the very same operations).
func TestTraceDeterministic(t *testing.T) {
	a := GenerateTrace(42, 300)
	b := GenerateTrace(42, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := GenerateTrace(43, 300)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	syncs := 0
	for _, op := range a {
		if op.Kind == OpSync {
			syncs++
		}
	}
	if syncs < 10 {
		t.Fatalf("only %d sync points in %d ops", syncs, len(a))
	}
}

// TestDifferentialConformance replays one deterministic trace against all
// four file systems and demands identical observable state at every sync
// point: same files, same sizes, same contents; same directory trees among
// the hierarchical systems.
func TestDifferentialConformance(t *testing.T) {
	seed := linearize.Seed(42)
	t.Logf("trace seed %d (replay with AERIE_SEED=%d)", seed, seed)
	ops := GenerateTrace(seed, 400)
	if err := RunDifferential(allTargets(t), ops); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// TestDifferentialConformanceSeeds runs shorter traces under other seeds,
// covering different op interleavings. AERIE_SEED narrows the run to that
// one seed for replay.
func TestDifferentialConformanceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seeds := []int64{1, 7, 1337}
	if s := linearize.Seed(0); s != 0 {
		seeds = []int64{s}
	}
	for _, seed := range seeds {
		ops := GenerateTrace(seed, 200)
		if err := RunDifferential(allTargets(t), ops); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// volumeCycler is a PXFS target on a VolumePath-backed machine that closes
// the whole system — session, TFS, mmap — at a chosen sync point and
// reopens the volume file before continuing the trace. What the lockstep
// comparison demands, then, is that a clean shutdown and recovery is
// invisible: the reopened system must serve exactly the state every other
// target carried across the same sync point in memory.
type volumeCycler struct {
	t        *testing.T
	vol      string
	sys      *core.System
	sess     *libfs.Session
	cur      FS
	syncs    int
	reopenAt int
	reopened bool
}

func newVolumeCycler(t *testing.T, reopenAt int) *volumeCycler {
	t.Helper()
	c := &volumeCycler{t: t, vol: filepath.Join(t.TempDir(), "lockstep.aerie"), reopenAt: reopenAt}
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		VolumePath:     c.vol,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Degraded(); err != nil {
		t.Fatalf("volume degraded to volatile: %v", err)
	}
	c.mount(sys)
	t.Cleanup(func() { c.sys.Close() })
	return c
}

func (c *volumeCycler) mount(sys *core.System) {
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		c.t.Fatal(err)
	}
	c.sys, c.sess = sys, sess
	c.cur = PXFSAdapter{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}
}

func (c *volumeCycler) Sync() error {
	if err := c.cur.Sync(); err != nil {
		return err
	}
	c.syncs++
	if c.syncs != c.reopenAt {
		return nil
	}
	if err := c.sess.Close(); err != nil {
		return err
	}
	if err := c.sys.Close(); err != nil {
		return err
	}
	sys, err := core.Open(c.vol, core.Options{AcquireTimeout: 60 * time.Second})
	if err != nil {
		return err
	}
	if sys.Vol.WasDirty() {
		c.t.Error("cleanly closed volume reopened dirty mid-trace")
	}
	c.mount(sys)
	c.reopened = true
	return nil
}

func (c *volumeCycler) Name() string  { return "PXFS-volume" }
func (c *volumeCycler) HasDirs() bool { return true }
func (c *volumeCycler) Mkdir(path string) error {
	return c.cur.Mkdir(path)
}
func (c *volumeCycler) PutWhole(path string, data []byte) error {
	return c.cur.PutWhole(path, data)
}
func (c *volumeCycler) WriteAt(path string, off int64, data []byte) error {
	return c.cur.WriteAt(path, off, data)
}
func (c *volumeCycler) Append(path string, data []byte) error {
	return c.cur.Append(path, data)
}
func (c *volumeCycler) Truncate(path string, size int64) error {
	return c.cur.Truncate(path, size)
}
func (c *volumeCycler) Delete(path string) error             { return c.cur.Delete(path) }
func (c *volumeCycler) Rename(oldPath, newPath string) error { return c.cur.Rename(oldPath, newPath) }
func (c *volumeCycler) Files() ([]FileState, error)          { return c.cur.Files() }
func (c *volumeCycler) Dirs() ([]string, error)              { return c.cur.Dirs() }

// TestDifferentialVolumeConformance replays the lockstep trace with the
// PXFS target persistent (mmap-backed volume file) and cycled through a
// full close/core.Open midway: recovery must hand back byte-identical
// state, verified op-for-op against the in-memory targets for the rest of
// the trace.
func TestDifferentialVolumeConformance(t *testing.T) {
	seed := linearize.Seed(42)
	t.Logf("trace seed %d (replay with AERIE_SEED=%d)", seed, seed)
	ops := GenerateTrace(seed, 300)
	syncs := 0
	for _, op := range ops {
		if op.Kind == OpSync {
			syncs++
		}
	}
	if syncs < 4 {
		t.Fatalf("trace has only %d sync points", syncs)
	}
	cyc := newVolumeCycler(t, syncs/2)
	targets := []FS{cyc, newKernel(t, "RamFS"), newKernel(t, "ext4")}
	if err := RunDifferential(targets, ops); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !cyc.reopened {
		t.Fatal("trace finished without the mid-trace close/reopen firing")
	}
}

// rotatingFS wraps an Aerie-backed target so every trace operation seals
// its ops into their own window batch (Session.RotateBatch). Trace-op
// boundaries are always safe batch boundaries — unlike a byte threshold,
// which can split FlatFS's create/write/insert sequence so the keyed write
// validates before the insert that links the key has applied.
type rotatingFS struct {
	FS
	sess *libfs.Session
}

func (r rotatingFS) rot(err error) error {
	if err != nil {
		return err
	}
	return r.sess.RotateBatch()
}

func (r rotatingFS) Mkdir(path string) error  { return r.rot(r.FS.Mkdir(path)) }
func (r rotatingFS) Delete(path string) error { return r.rot(r.FS.Delete(path)) }
func (r rotatingFS) PutWhole(path string, data []byte) error {
	return r.rot(r.FS.PutWhole(path, data))
}
func (r rotatingFS) WriteAt(path string, off int64, data []byte) error {
	return r.rot(r.FS.WriteAt(path, off, data))
}
func (r rotatingFS) Append(path string, data []byte) error {
	return r.rot(r.FS.Append(path, data))
}
func (r rotatingFS) Truncate(path string, size int64) error {
	return r.rot(r.FS.Truncate(path, size))
}
func (r rotatingFS) Rename(oldPath, newPath string) error {
	return r.rot(r.FS.Rename(oldPath, newPath))
}

// TestPipelinedWriteConformance replays the differential trace with the
// Aerie targets running the pipelined write path: an 8-deep completion
// window with every trace operation rotating its own batch, so several
// unsynced batches are in flight whenever the trace hits a sync point.
// PXFS additionally runs a one-byte batch limit (each logged op its own
// batch — safe under directory/file covers); FlatFS rotates at trace-op
// boundaries, the finest split its keyed-cover validation admits. Sync
// semantics must be byte-identical to the synchronous path — the
// kernel-backed targets (RamFS, ext4) replay the same trace synchronously
// and every sync-point comparison must agree on files, sizes, contents,
// and directory trees.
func TestPipelinedWriteConformance(t *testing.T) {
	pxSess := newAerieSessionCfg(t, libfs.Config{UID: 1000, BatchLimit: 1, Window: 8})
	flatSess := newAerieSessionCfg(t, libfs.Config{UID: 1000, Window: 8})
	targets := []FS{
		rotatingFS{FS: PXFSAdapter{FS: pxfs.New(pxSess, pxfs.Options{NameCache: true})}, sess: pxSess},
		rotatingFS{FS: FlatAdapter{FS: flatfs.New(flatSess, flatfs.Options{})}, sess: flatSess},
		newKernel(t, "RamFS"),
		newKernel(t, "ext4"),
	}
	ops := GenerateTrace(42, 400)
	if err := RunDifferential(targets, ops); err != nil {
		t.Fatal(err)
	}
}

// shortAppend injects an off-by-one into one target: every append drops its
// final byte.
type shortAppend struct{ FS }

func (s shortAppend) Append(path string, data []byte) error {
	if len(data) > 0 {
		data = data[:len(data)-1]
	}
	return s.FS.Append(path, data)
}

// TestInjectedDivergence proves the harness has teeth: an off-by-one in a
// single implementation must surface as a divergence, not pass silently.
func TestInjectedDivergence(t *testing.T) {
	targets := allTargets(t)
	targets[2] = shortAppend{targets[2]} // corrupt RamFS
	err := RunDifferential(targets, GenerateTrace(42, 200))
	if err == nil {
		t.Fatal("off-by-one append went undetected")
	}
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("got %v, want a DivergenceError", err)
	}
	t.Logf("detected as expected: %v", div)
}
