package conformance

import (
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/obs"
)

// shardedGen is liveGen spread across directories with the cross-shard
// rename bias on: the path pool spans 8 top-level directories (hashed
// across the machine's shards), and a slice of every client's script
// renames a pool file into a different directory and reads it back — the
// operation that runs as a two-phase cross-shard transaction.
func shardedGen(seed int64, clients, ops int) linearize.GenConfig {
	g := liveGen(seed, clients, ops)
	g.Dirs = 8
	g.PathPrefix = "/sh"
	g.Paths = 16
	g.FreshRenames = 15
	return g
}

// runSharded drives the concurrent workload against an n-shard machine and
// returns the history plus the number of cross-shard transactions the
// trusted set committed.
func runSharded(t *testing.T, shards int, scripts [][]linearize.Op) (linearize.History, int64) {
	t.Helper()
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		Shards:         shards,
		AcquireTimeout: 60 * time.Second,
		Obs:            sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	h, err := RunConcurrent(sys, ConcurrentConfig{Scripts: scripts})
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return h, sink.Counter("tfs.2pc.txns").Load()
}

// TestConcurrentShardedLinearizable is the sharded tentpole check: 6
// concurrent pipelined PXFS clients against a 4-shard machine, scripts
// biased toward cross-shard renames. The recorded history must linearize —
// per-shard sequence windows, the cross-shard ordering barrier, and the
// two-phase transaction path all have to stay invisible behind the locks —
// and the run must actually have exercised the 2PC path.
func TestConcurrentShardedLinearizable(t *testing.T) {
	seed := linearize.Seed(23)
	t.Logf("sharded concurrent run seed %d (replay with AERIE_SEED=%d)", seed, seed)
	scripts := linearize.GenerateScripts(shardedGen(seed, 6, 250))
	h, txns := runSharded(t, 4, scripts)
	if txns == 0 {
		t.Fatal("no cross-shard transaction committed: the rename bias never spanned shards")
	}
	res := checkHistory(t, h, seed)
	t.Logf("linearized %d ops (%d cross-shard txns) in %d partitions, %d nodes",
		len(h.Entries), txns, res.Partitions, res.Nodes)
}

// TestConcurrentTwoShardLinearizable runs the same biased workload at the
// minimum sharded configuration (2 shards, every cross-directory pair
// either co-resident or split) to catch placement edge cases the 4-shard
// spread can mask.
func TestConcurrentTwoShardLinearizable(t *testing.T) {
	seed := linearize.Seed(29)
	t.Logf("2-shard concurrent run seed %d (replay with AERIE_SEED=%d)", seed, seed)
	scripts := linearize.GenerateScripts(shardedGen(seed, 4, 200))
	h, txns := runSharded(t, 2, scripts)
	if txns == 0 {
		t.Fatal("no cross-shard transaction committed: the rename bias never spanned shards")
	}
	res := checkHistory(t, h, seed)
	t.Logf("linearized %d ops (%d cross-shard txns) in %d partitions, %d nodes",
		len(h.Entries), txns, res.Partitions, res.Nodes)
}
