package conformance

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

func newConcurrentSystem(t *testing.T, volumePath string) *core.System {
	t.Helper()
	sys, err := core.New(core.Options{
		ArenaSize:      128 << 20,
		VolumePath:     volumePath,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// checkHistory runs the checker and fails the test on a violation or an
// undecided search.
func checkHistory(t *testing.T, h linearize.History, seed int64) linearize.Result {
	t.Helper()
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatalf("seed %d: checker undecided after %d nodes", seed, res.Nodes)
	}
	if !res.Ok {
		t.Fatalf("seed %d: history not linearizable:\n%s", seed, res.Failure)
	}
	return res
}

// liveGen is the generator configuration for live Aerie runs: no deletes
// or renames (cross-client unlink-while-open reclaims storage out from
// under a concurrent writer's open handle — TFS open-file tracking is
// client-local; see linearize.GenConfig.NoDeletes).
func liveGen(seed int64, clients, ops int) linearize.GenConfig {
	return linearize.GenConfig{
		Seed:         seed,
		Clients:      clients,
		OpsPerClient: ops,
		NoDeletes:    true,
	}
}

// TestConcurrentLinearizable is the tentpole clean run: 8 concurrent PXFS
// clients, 500 operations each, pipelined sessions (4-deep window, one-op
// batches) against one volatile machine. The recorded history must be
// linearizable — every reordering the window/group-commit/parallel-apply
// machinery performs has to stay invisible behind the locks.
func TestConcurrentLinearizable(t *testing.T) {
	seed := linearize.Seed(42)
	t.Logf("concurrent run seed %d (replay with AERIE_SEED=%d)", seed, seed)
	sys := newConcurrentSystem(t, "")
	scripts := linearize.GenerateScripts(liveGen(seed, 8, 500))
	h, err := RunConcurrent(sys, ConcurrentConfig{Scripts: scripts})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if got, want := len(h.Entries), 8*500; got != want {
		t.Fatalf("recorded %d entries, want %d", got, want)
	}
	res := checkHistory(t, h, seed)
	t.Logf("linearized %d ops in %d partitions, %d nodes", len(h.Entries), res.Partitions, res.Nodes)
}

// TestConcurrentVolumeLinearizable runs the concurrent workload against a
// VolumePath-backed (mmap-persistent) machine, then closes it and reopens
// the volume file: the history must be linearizable and the closed volume
// must come back clean with the data intact.
func TestConcurrentVolumeLinearizable(t *testing.T) {
	seed := linearize.Seed(7)
	t.Logf("concurrent volume run seed %d (replay with AERIE_SEED=%d)", seed, seed)
	vol := filepath.Join(t.TempDir(), "concurrent.aerie")
	sys, err := core.New(core.Options{
		ArenaSize:      64 << 20,
		VolumePath:     vol,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Degraded(); err != nil {
		sys.Close()
		t.Fatalf("volume degraded to volatile: %v", err)
	}
	scripts := linearize.GenerateScripts(liveGen(seed, 4, 150))
	h, err := RunConcurrent(sys, ConcurrentConfig{Scripts: scripts})
	if err != nil {
		sys.Close()
		t.Fatalf("seed %d: %v", seed, err)
	}
	checkHistory(t, h, seed)

	// Snapshot every script path through a quiesced session, close the
	// volume cleanly, reopen it, and demand the identical snapshot: what a
	// clean shutdown persisted is exactly what recovery must serve.
	pathSet := map[string]bool{}
	for _, e := range h.Entries {
		pathSet[e.Op.Path] = true
	}
	before := snapshotPaths(t, sys, pathSet)
	if err := sys.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := core.Open(vol, core.Options{AcquireTimeout: 60 * time.Second})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Vol.WasDirty() {
		t.Fatal("cleanly closed volume reopened dirty")
	}
	after := snapshotPaths(t, re, pathSet)
	files := 0
	for p, want := range before {
		if got, ok := after[p]; !ok || got != want {
			t.Errorf("reopened volume: %s changed across close/reopen (%d -> %d bytes)",
				p, len(want), len(after[p]))
		}
		if _, ok := after[p]; ok {
			files++
		}
	}
	if len(after) != len(before) {
		t.Errorf("reopened volume: %d paths survived, want %d", len(after), len(before))
	}
	if files == 0 {
		t.Fatal("no surviving files to verify")
	}
	t.Logf("verified %d files byte-identical across close/reopen", files)
}

// snapshotPaths reads every path through a fresh session; missing paths
// are simply absent from the returned map.
func snapshotPaths(t *testing.T, sys *core.System, paths map[string]bool) map[string]string {
	t.Helper()
	sess, err := sys.NewSession(libfs.Config{UID: 2000})
	if err != nil {
		t.Fatalf("snapshot session: %v", err)
	}
	defer sess.Close()
	client := PXClient{FS: pxfs.New(sess, pxfs.Options{})}
	out := map[string]string{}
	for p := range paths {
		data, err := client.Read(p)
		if err != nil {
			if errors.Is(err, linearize.ErrNotExist) {
				continue
			}
			t.Fatalf("snapshot read %s: %v", p, err)
		}
		out[p] = string(data)
	}
	return out
}

const mutLivePath = "/m/f"

func mutPut(data string) linearize.Op {
	return linearize.Op{Kind: linearize.KPut, Path: mutLivePath, Data: []byte(data)}
}

func mutRead() linearize.Op { return linearize.Op{Kind: linearize.KRead, Path: mutLivePath} }

func mutBar() linearize.Op { return linearize.Op{Kind: linearize.KBarrier} }

// runLiveMutation runs the scripts twice on fresh machines: once clean
// (must pass) and once with client 1's (or 0's, for single-client scripts)
// FS wrapped by the mutation under test (must fail). Returns the mutated
// run's checker result.
func runLiveMutation(t *testing.T, scripts [][]linearize.Op, target int,
	wrap func(fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS) linearize.Result {
	t.Helper()

	clean := newConcurrentSystem(t, "")
	h, err := RunConcurrent(clean, ConcurrentConfig{Scripts: scripts})
	if err != nil {
		t.Fatalf("clean control run: %v", err)
	}
	if res := linearize.Check(h, linearize.CheckConfig{}); !res.Ok || !res.Decided {
		t.Fatalf("clean control run flagged: ok=%v decided=%v %v", res.Ok, res.Decided, res.Failure)
	}

	sys := newConcurrentSystem(t, "")
	mh, err := RunConcurrent(sys, ConcurrentConfig{
		Scripts: scripts,
		Wrap: func(k int, fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS {
			if k == target {
				return wrap(fs, rec)
			}
			return fs
		},
	})
	if err != nil {
		t.Fatalf("mutated run: %v", err)
	}
	res := linearize.Check(mh, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatal("mutated run: checker undecided")
	}
	if res.Ok {
		t.Fatal("mutated run: checker accepted a corrupted history")
	}
	t.Logf("violation detected:\n%s", res.Failure)
	return res
}

// The four injected-mutation kinds, each against a live Aerie machine: the
// same barrier-scripted scenarios the linearize package proves against its
// reference store, here driven end-to-end through PXFS sessions.

func TestConcurrentStaleReadDetected(t *testing.T) {
	scripts := [][]linearize.Op{
		{mutPut("v0-stale"), mutBar(), mutPut("v1-fresh"), mutBar()},
		{mutBar(), mutBar(), mutRead()},
	}
	var mut *linearize.StaleRead
	runLiveMutation(t, scripts, 1, func(fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS {
		mut = linearize.NewStaleRead(fs, rec, mutLivePath)
		return mut
	})
	if mut.Fired == 0 {
		t.Fatal("stale-read mutation never fired")
	}
}

func TestConcurrentLostWriteDetected(t *testing.T) {
	scripts := [][]linearize.Op{
		{mutPut("v0-kept"), mutBar(), mutPut("v1-lost"), mutBar()},
		{mutBar(), mutBar(), mutRead()},
	}
	var mut *linearize.LostWrite
	runLiveMutation(t, scripts, 0, func(fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS {
		mut = linearize.NewLostWrite(fs, mutLivePath, 1)
		return mut
	})
	if !mut.Fired {
		t.Fatal("lost-write mutation never fired")
	}
}

func TestConcurrentDeferredWriteDetected(t *testing.T) {
	scripts := [][]linearize.Op{
		{mutPut("v0-old"), mutBar(), mutPut("v1-deferred"), mutBar(), mutBar(), mutRead()},
		{mutBar(), mutBar(), mutRead(), mutBar()},
	}
	var mut *linearize.DeferredWrite
	runLiveMutation(t, scripts, 0, func(fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS {
		mut = linearize.NewDeferredWrite(fs, mutLivePath, 1)
		return mut
	})
	if !mut.Fired {
		t.Fatal("deferred-write mutation never fired")
	}
}

func TestConcurrentDupAppendDetected(t *testing.T) {
	scripts := [][]linearize.Op{{
		mutPut("base."),
		{Kind: linearize.KAppend, Path: mutLivePath, Data: []byte("tail")},
		mutRead(),
	}}
	var mut *linearize.DupAppend
	runLiveMutation(t, scripts, 0, func(fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS {
		mut = linearize.NewDupAppend(fs, mutLivePath, 0)
		return mut
	})
	if !mut.Fired {
		t.Fatal("dup-append mutation never fired")
	}
}

// TestConcurrentWindowReorderDetected corrupts the recorded windows rather
// than the client: an honest live run whose history is rewritten so a
// read's window precedes the put whose value it observed.
func TestConcurrentWindowReorderDetected(t *testing.T) {
	sys := newConcurrentSystem(t, "")
	scripts := [][]linearize.Op{{mutPut("first-value"), mutPut("second-value"), mutRead()}}
	h, err := RunConcurrent(sys, ConcurrentConfig{Scripts: scripts})
	if err != nil {
		t.Fatal(err)
	}
	if res := linearize.Check(h, linearize.CheckConfig{}); !res.Ok || !res.Decided {
		t.Fatalf("honest run flagged: %v", res.Failure)
	}
	mutated, ok := linearize.MutateWindowReorder(h)
	if !ok {
		t.Fatal("no (read, put) pair qualified for window reordering")
	}
	res := linearize.Check(mutated, linearize.CheckConfig{})
	if !res.Decided || res.Ok {
		t.Fatalf("window-reordered history accepted: ok=%v decided=%v", res.Ok, res.Decided)
	}
	t.Logf("violation detected:\n%s", res.Failure)
}
