package conformance

// Concurrent differential conformance: where RunDifferential replays one
// trace in lockstep and compares final states, this file drives N truly
// concurrent PXFS clients against one live Aerie machine, records every
// operation's invocation/response window, and hands the history to the
// linearize checker. The lockstep differ certifies the sequential
// semantics; this harness certifies that the distributed machinery under
// them — per-client batched logs, the K-deep completion window, group
// commit, parallel apply, lock revocation with flush-on-release — composes
// into operations that still look atomic from the outside.

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// PXClient adapts one PXFS client to the linearize operation vocabulary.
// Every method is a whole operation: open, act, close within the recorded
// window, so the open-to-close file locking (§6.1) is what makes each call
// atomic — exactly the property the checker puts on trial.
//
// Stat is deliberately absent: it reads inode headers lock-free off raw
// SCM (ReadBarrier plus a direct header load), which is a different,
// weaker contract — it may tear against another client's in-flight apply.
// The linearizable surface is the lock-mediated one.
type PXClient struct {
	FS *pxfs.FS
}

func pxErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, pxfs.ErrNotExist) {
		return linearize.ErrNotExist
	}
	return err
}

// Put creates or fully replaces path.
func (c PXClient) Put(path string, data []byte) error {
	f, err := c.FS.OpenFile(path, pxfs.O_RDWR|pxfs.O_CREATE|pxfs.O_TRUNC, 0o644)
	if err != nil {
		return pxErr(err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Append extends an existing path.
func (c PXClient) Append(path string, data []byte) error {
	f, err := c.FS.OpenFile(path, pxfs.O_RDWR|pxfs.O_APPEND, 0o644)
	if err != nil {
		return pxErr(err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read returns the full contents, sized under the same shared lock that
// covers the data read — no lock-free header peeking.
func (c PXClient) Read(path string) ([]byte, error) {
	f, err := c.FS.Open(path, pxfs.O_RDONLY)
	if err != nil {
		return nil, pxErr(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && !(errors.Is(err, io.EOF) && uint64(n) == size) {
		return nil, err
	}
	if uint64(n) != size {
		return nil, fmt.Errorf("short read: %d of %d bytes of %s", n, size, path)
	}
	return buf, nil
}

// Truncate resizes an existing path.
func (c PXClient) Truncate(path string, size int64) error {
	f, err := c.FS.OpenFile(path, pxfs.O_RDWR, 0o644)
	if err != nil {
		return pxErr(err)
	}
	if err := f.Truncate(uint64(size)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Delete unlinks path.
func (c PXClient) Delete(path string) error { return pxErr(c.FS.Unlink(path)) }

// Rename moves src to dst.
func (c PXClient) Rename(src, dst string) error { return pxErr(c.FS.Rename(src, dst)) }

// ConcurrentConfig parameterizes a live concurrent run.
type ConcurrentConfig struct {
	// Scripts is one operation script per client (see linearize.GenerateScripts).
	Scripts [][]linearize.Op
	// Window and BatchLimit shape each client session's write pipeline
	// (defaults 4 and 1: every logged op its own batch, several in flight —
	// the most reordering-prone configuration the machinery allows).
	Window     int
	BatchLimit int
	// Roots lists the directories the script paths live under (default:
	// derived from the scripts' path prefixes). They are created before the
	// clients start.
	Roots []string
	// Wrap, when set, substitutes client k's ClientFS — the hook the
	// injected-mutation tests use to corrupt exactly one client.
	Wrap func(k int, fs linearize.ClientFS, rec *linearize.Recorder) linearize.ClientFS
}

// scriptRoots derives the set of parent directories the scripts touch.
func scriptRoots(scripts [][]linearize.Op) []string {
	seen := map[string]bool{}
	var roots []string
	add := func(p string) {
		if i := strings.LastIndex(p, "/"); i > 0 {
			d := p[:i]
			if !seen[d] {
				seen[d] = true
				roots = append(roots, d)
			}
		}
	}
	for _, script := range scripts {
		for _, op := range script {
			if op.Kind == linearize.KBarrier {
				continue
			}
			add(op.Path)
			if op.Kind == linearize.KRename {
				add(op.Path2)
			}
		}
	}
	return roots
}

// RunConcurrent mounts one pipelined session per script on sys, runs the
// scripts concurrently, and returns the recorded history. The caller
// checks it (the split keeps mutation tests able to corrupt the history
// before checking). Sessions are closed before returning so every client's
// outstanding batches are flushed and the system is quiescent.
func RunConcurrent(sys *core.System, cfg ConcurrentConfig) (linearize.History, error) {
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.BatchLimit == 0 {
		cfg.BatchLimit = 1
	}
	roots := cfg.Roots
	if roots == nil {
		roots = scriptRoots(cfg.Scripts)
	}

	// Set up the shared directories with a short-lived session; closing it
	// releases its directory grants, publishing the inserts before any
	// client resolves the paths.
	setup, err := sys.NewSession(libfs.Config{UID: 999})
	if err != nil {
		return linearize.History{}, fmt.Errorf("setup session: %w", err)
	}
	setupFS := pxfs.New(setup, pxfs.Options{})
	for _, root := range roots {
		if err := setupFS.Mkdir(root, 0o755); err != nil && !errors.Is(err, pxfs.ErrExist) {
			setup.Close()
			return linearize.History{}, fmt.Errorf("mkdir %s: %w", root, err)
		}
	}
	if err := setup.Close(); err != nil {
		return linearize.History{}, fmt.Errorf("setup close: %w", err)
	}

	rec := linearize.NewRecorder()
	clients := make([]linearize.ClientFS, len(cfg.Scripts))
	sessions := make([]*libfs.Session, len(cfg.Scripts))
	for k := range cfg.Scripts {
		// RenewEvery is left to NewSession's default (lease/3): a concurrent
		// run outlives the 2s lock-service lease, and a session that stops
		// renewing has its grants reaped and its prealloc state discarded
		// mid-run — a simulated crash, not the healthy client under test.
		sess, err := sys.NewSession(libfs.Config{
			UID:        uint32(1000 + k),
			Window:     cfg.Window,
			BatchLimit: cfg.BatchLimit,
		})
		if err != nil {
			return linearize.History{}, fmt.Errorf("client %d session: %w", k, err)
		}
		sessions[k] = sess
		var fs linearize.ClientFS = PXClient{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}
		if cfg.Wrap != nil {
			fs = cfg.Wrap(k, fs, rec)
		}
		clients[k] = fs
	}

	h, runErr := linearize.Run(rec, clients, cfg.Scripts)
	for k, sess := range sessions {
		if err := sess.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("client %d close: %w", k, err)
		}
	}
	return h, runErr
}
