package conformance

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// traceRoot is where every trace lives; captures walk from here.
const traceRoot = "/ct"

// ---- PXFS ----

// PXFSAdapter drives a PXFS client.
type PXFSAdapter struct{ FS *pxfs.FS }

func (a PXFSAdapter) Name() string  { return "PXFS" }
func (a PXFSAdapter) HasDirs() bool { return true }

func (a PXFSAdapter) Mkdir(path string) error { return a.FS.Mkdir(path, 0755) }

func (a PXFSAdapter) PutWhole(path string, data []byte) error {
	f, err := a.FS.OpenFile(path, pxfs.O_RDWR|pxfs.O_CREATE|pxfs.O_TRUNC, 0644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func (a PXFSAdapter) WriteAt(path string, off int64, data []byte) error {
	f, err := a.FS.OpenFile(path, pxfs.O_RDWR, 0644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, off)
	return err
}

func (a PXFSAdapter) Append(path string, data []byte) error {
	f, err := a.FS.OpenFile(path, pxfs.O_RDWR|pxfs.O_APPEND, 0644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func (a PXFSAdapter) Truncate(path string, size int64) error {
	f, err := a.FS.OpenFile(path, pxfs.O_RDWR, 0644)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(uint64(size))
}

func (a PXFSAdapter) Delete(path string) error          { return a.FS.Unlink(path) }
func (a PXFSAdapter) Rename(oldPath, newPath string) error { return a.FS.Rename(oldPath, newPath) }
func (a PXFSAdapter) Sync() error                       { return a.FS.Sync() }

func (a PXFSAdapter) readFile(path string, size int64) (string, error) {
	f, err := a.FS.Open(path, pxfs.O_RDONLY)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		n, err := f.ReadAt(buf, 0)
		if err != nil && !(err == io.EOF && int64(n) == size) {
			return "", err
		}
		if int64(n) != size {
			return "", fmt.Errorf("pxfs short read: %d of %d", n, size)
		}
	}
	return hashBytes(buf), nil
}

func (a PXFSAdapter) walk(dir string, files *[]FileState, dirs *[]string) error {
	*dirs = append(*dirs, dir)
	ents, err := a.FS.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		p := dir + "/" + e.Name
		if e.IsDir {
			if err := a.walk(p, files, dirs); err != nil {
				return err
			}
			continue
		}
		fi, err := a.FS.Stat(p)
		if err != nil {
			return err
		}
		h, err := a.readFile(p, int64(fi.Size))
		if err != nil {
			return err
		}
		*files = append(*files, FileState{Path: p, Size: int64(fi.Size), Hash: h})
	}
	return nil
}

func (a PXFSAdapter) capture() ([]FileState, []string, error) {
	var files []FileState
	var dirs []string
	if _, err := a.FS.Stat(traceRoot); err != nil {
		return nil, nil, nil // nothing traced yet
	}
	if err := a.walk(traceRoot, &files, &dirs); err != nil {
		return nil, nil, err
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	sort.Strings(dirs)
	return files, dirs, nil
}

func (a PXFSAdapter) Files() ([]FileState, error) {
	files, _, err := a.capture()
	return files, err
}

func (a PXFSAdapter) Dirs() ([]string, error) {
	_, dirs, err := a.capture()
	return dirs, err
}

// ---- FlatFS ----

// FlatAdapter drives a FlatFS client: paths become flat keys, partial
// writes become read-modify-write, and directories do not exist.
type FlatAdapter struct{ FS *flatfs.FS }

func (a FlatAdapter) Name() string  { return "FlatFS" }
func (a FlatAdapter) HasDirs() bool { return false }

func (a FlatAdapter) Mkdir(string) error { return nil }

func (a FlatAdapter) PutWhole(path string, data []byte) error {
	return a.FS.Put(path, data)
}

func (a FlatAdapter) WriteAt(path string, off int64, data []byte) error {
	cur, err := a.FS.Get(path)
	if err != nil {
		return err
	}
	end := off + int64(len(data))
	if end < int64(len(cur)) {
		end = int64(len(cur))
	}
	out := make([]byte, end)
	copy(out, cur)
	copy(out[off:], data)
	return a.FS.Put(path, out)
}

func (a FlatAdapter) Append(path string, data []byte) error {
	cur, err := a.FS.Get(path)
	if err != nil {
		return err
	}
	return a.FS.Put(path, append(cur, data...))
}

func (a FlatAdapter) Truncate(path string, size int64) error {
	cur, err := a.FS.Get(path)
	if err != nil {
		return err
	}
	out := make([]byte, size)
	copy(out, cur)
	return a.FS.Put(path, out)
}

func (a FlatAdapter) Delete(path string) error { return a.FS.Erase(path) }

func (a FlatAdapter) Rename(oldPath, newPath string) error {
	cur, err := a.FS.Get(oldPath)
	if err != nil {
		return err
	}
	if err := a.FS.Put(newPath, cur); err != nil {
		return err
	}
	return a.FS.Erase(oldPath)
}

func (a FlatAdapter) Sync() error { return a.FS.Sync() }

func (a FlatAdapter) Files() ([]FileState, error) {
	keys, err := a.FS.Keys()
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	var files []FileState
	var buf []byte
	for _, k := range keys {
		if !strings.HasPrefix(k, traceRoot+"/") {
			continue
		}
		buf, err = a.FS.GetInto(k, buf)
		if err != nil {
			return nil, err
		}
		files = append(files, FileState{Path: k, Size: int64(len(buf)), Hash: hashBytes(buf)})
	}
	return files, nil
}

func (a FlatAdapter) Dirs() ([]string, error) { return nil, nil }

// ---- VFS (RamFS / extfs) ----

// VFSAdapter drives a kernel-style file system behind the simulated VFS.
type VFSAdapter struct {
	FSName string
	V      *vfs.VFS
}

func (a VFSAdapter) Name() string  { return a.FSName }
func (a VFSAdapter) HasDirs() bool { return true }

func (a VFSAdapter) Mkdir(path string) error { return a.V.Mkdir(path, 0755) }

func (a VFSAdapter) withFD(path string, flags int, fn func(fd int) error) error {
	fd, err := a.V.Open(path, flags, 0644)
	if err != nil {
		return err
	}
	defer a.V.Close(fd)
	return fn(fd)
}

func (a VFSAdapter) PutWhole(path string, data []byte) error {
	return a.withFD(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, func(fd int) error {
		_, err := a.V.Pwrite(fd, data, 0)
		return err
	})
}

func (a VFSAdapter) WriteAt(path string, off int64, data []byte) error {
	return a.withFD(path, vfs.O_RDWR, func(fd int) error {
		_, err := a.V.Pwrite(fd, data, uint64(off))
		return err
	})
}

func (a VFSAdapter) Append(path string, data []byte) error {
	return a.withFD(path, vfs.O_RDWR|vfs.O_APPEND, func(fd int) error {
		_, err := a.V.Write(fd, data)
		return err
	})
}

func (a VFSAdapter) Truncate(path string, size int64) error {
	return a.withFD(path, vfs.O_RDWR, func(fd int) error {
		return a.V.Ftruncate(fd, uint64(size))
	})
}

func (a VFSAdapter) Delete(path string) error             { return a.V.Unlink(path) }
func (a VFSAdapter) Rename(oldPath, newPath string) error { return a.V.Rename(oldPath, newPath) }
func (a VFSAdapter) Sync() error                          { return a.V.Sync() }

func (a VFSAdapter) walk(dir string, files *[]FileState, dirs *[]string) error {
	*dirs = append(*dirs, dir)
	ents, err := a.V.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		p := dir + "/" + e.Name
		attr, err := a.V.Stat(p)
		if err != nil {
			return err
		}
		if attr.IsDir {
			if err := a.walk(p, files, dirs); err != nil {
				return err
			}
			continue
		}
		buf := make([]byte, attr.Size)
		err = a.withFD(p, vfs.O_RDONLY, func(fd int) error {
			if attr.Size == 0 {
				return nil
			}
			n, err := a.V.Pread(fd, buf, 0)
			if err != nil && !(err == io.EOF && uint64(n) == attr.Size) {
				return err
			}
			if uint64(n) != attr.Size {
				return fmt.Errorf("%s short read: %d of %d", a.FSName, n, attr.Size)
			}
			return nil
		})
		if err != nil {
			return err
		}
		*files = append(*files, FileState{Path: p, Size: int64(attr.Size), Hash: hashBytes(buf)})
	}
	return nil
}

func (a VFSAdapter) capture() ([]FileState, []string, error) {
	if _, err := a.V.Stat(traceRoot); err != nil {
		return nil, nil, nil
	}
	var files []FileState
	var dirs []string
	if err := a.walk(traceRoot, &files, &dirs); err != nil {
		return nil, nil, err
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	sort.Strings(dirs)
	return files, dirs, nil
}

func (a VFSAdapter) Files() ([]FileState, error) {
	files, _, err := a.capture()
	return files, err
}

func (a VFSAdapter) Dirs() ([]string, error) {
	_, dirs, err := a.capture()
	return dirs, err
}
