package agesweep

import (
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// Short-mode aging bounds for CI (`make tier2-aging`): a few churn rounds
// must keep the allocator's fragmentation index under an absolute ceiling
// and the fixed-probe read path within a generous slowdown ratio. The
// ratio is deliberately loose — shared runners are noisy — but a read path
// that degrades an order of magnitude after minutes of churn is a real
// aging bug, not noise.
const (
	shortMaxFragIndex = 0.75
	shortMaxSlowdown  = 10.0
)

func TestAgingShort(t *testing.T) {
	cfg := Config{Rounds: 3, Iters: 15, Threads: 2, Logf: t.Logf}
	if testing.Short() {
		cfg.Rounds = 2
		cfg.Iters = 8
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != cfg.Rounds+1 {
		t.Fatalf("trajectory has %d samples, want %d (baseline + %d rounds)",
			len(res.Rounds), cfg.Rounds+1, cfg.Rounds)
	}
	for _, rs := range res.Rounds {
		if rs.ReadNsPerOp <= 0 {
			t.Fatalf("round %d: degenerate probe latency %d", rs.Round, rs.ReadNsPerOp)
		}
		if rs.Round > 0 && rs.ChurnOps == 0 {
			t.Fatalf("round %d: no churn ops recorded", rs.Round)
		}
	}
	if v := res.CheckBounds(shortMaxFragIndex, shortMaxSlowdown); len(v) != 0 {
		for _, s := range v {
			t.Error(s)
		}
	}
}

// The bounds checker itself must catch violations — a harness whose
// acceptance test cannot fail proves nothing.
func TestCheckBoundsCatchesViolations(t *testing.T) {
	r := &Result{Rounds: []RoundStat{
		{Round: 0, ReadNsPerOp: 100, FragIndex: 0.1},
		{Round: 1, ReadNsPerOp: 5000, FragIndex: 0.95},
	}}
	v := r.CheckBounds(0.75, 10.0)
	if len(v) != 2 {
		t.Fatalf("want frag + slowdown violations, got %v", v)
	}
	r.fails = append(r.fails, "round 1: fsck leaked 3 blocks")
	if v := r.CheckBounds(1.0, 100.0); len(v) != 1 {
		t.Fatalf("invariant failures must surface through CheckBounds, got %v", v)
	}
}

// TestUnlinkBufferedAppendsNoLeak is the regression test for the leak the
// aging harness first exposed: growing a file by appends and unlinking it
// before the window flushes puts the attaches and the remove in one batch,
// and the unlink's plan-time extent walk cannot see extents the same batch
// attaches — every appended extent (and the tree nodes grown for them)
// leaked. The planner now defers the walk to apply time (jFreeObj) whenever
// the batch also changed the object's extent set.
func TestUnlinkBufferedAppendsNoLeak(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	buf := make([]byte, 64<<10)
	f, err := fs.Create("/log", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		f, err := fs.OpenFile("/log", pxfs.O_RDWR|pxfs.O_APPEND, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// No Sync: the appends are still buffered when the unlink ships, so
	// attaches and remove ride the same batch.
	if err := fs.Unlink("/log"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.TFS.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("unlink of append-grown file leaked %d blocks", rep.LeakedBlocks)
	}
}
