// Package agesweep is the long-haul aging harness: it subjects one volume to
// sustained allocate/free churn — the log-structured append+rotate profile
// shredding extents while the fsync-heavy varmail profile grinds metadata —
// and tracks two slow-degradation signals across rounds:
//
//   - Allocator fragmentation: after each churn round the buddy allocator's
//     free lists are sampled (alloc.FragStats). The fragmentation index is
//     1 − LargestFree/FreeBytes, so a healthy allocator that keeps coalescing
//     stays near 0 while one that shatters drifts toward 1 and eventually
//     fails large allocations despite ample total free space.
//   - Read-path slowdown: a fixed set of probe files written before any
//     churn is re-read after every round. Their layout never changes, so any
//     latency drift is the volume aging around them — scattered metadata,
//     longer lookup chains, degraded locality.
//
// Every round also re-proves the robustness invariants the exhaustion sweep
// establishes once: the journal is idle at quiescence and Fsck finds zero
// leaked blocks without repair. Aging must not become leaking.
//
// The sweep returns the full per-round trajectory (BENCH_aging.json records
// a snapshot; `make bench-aging` reproduces it) plus CheckBounds, which the
// short-mode CI test (`make tier2-aging`) uses to pin an absolute
// fragmentation ceiling and a generous read-slowdown ratio.
package agesweep

import (
	"fmt"
	"io"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/filebench"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

// Config controls a sweep.
type Config struct {
	// Rounds of churn (each round runs both profiles, then samples).
	Rounds int
	// Iters is the filebench iteration count per profile per round.
	Iters int
	// Threads per filebench run.
	Threads int
	// Scale shrinks the profile working sets (filebench scale).
	Scale float64
	// ArenaMB sizes the volume.
	ArenaMB int
	// Seed feeds workload randomness; rounds derive distinct seeds.
	Seed int64
	// Logf, when set, receives per-round progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Iters <= 0 {
		c.Iters = 30
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.ArenaMB <= 0 {
		c.ArenaMB = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RoundStat is one sample of the aging trajectory.
type RoundStat struct {
	Round int `json:"round"` // 0 = pre-churn baseline
	// Allocator shape after the round's churn settled.
	FreeBytes   uint64  `json:"free_bytes"`
	LargestFree uint64  `json:"largest_free"`
	Fragments   uint64  `json:"fragments"`
	FragIndex   float64 `json:"frag_index"`
	// Mean whole-file probe read latency, ns per open/read/close pass.
	ReadNsPerOp int64 `json:"read_ns_per_op"`
	// Churn volume this round (workload ops across both profiles).
	ChurnOps int64 `json:"churn_ops"`
}

// Result is the sweep's trajectory plus the invariant failures it found.
type Result struct {
	ArenaMB int         `json:"arena_mb"`
	Rounds  []RoundStat `json:"rounds"`
	fails   []string
}

// Failures lists every invariant violation observed during the sweep
// (stranded journal batches, leaked blocks, unreadable probe files).
func (r *Result) Failures() []string { return r.fails }

// FinalFragIndex is the fragmentation index after the last churn round.
func (r *Result) FinalFragIndex() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].FragIndex
}

// ReadSlowdown is the last round's probe read latency over the pre-churn
// baseline. 1.0 means no aging; the CI bound is deliberately generous
// because absolute latencies on shared runners are noisy.
func (r *Result) ReadSlowdown() float64 {
	if len(r.Rounds) < 2 || r.Rounds[0].ReadNsPerOp <= 0 {
		return 1
	}
	return float64(r.Rounds[len(r.Rounds)-1].ReadNsPerOp) / float64(r.Rounds[0].ReadNsPerOp)
}

// CheckBounds applies the CI acceptance bounds to the trajectory: the
// fragmentation index must stay at or below maxFragIndex on every round, the
// final read slowdown at or below maxSlowdown, and no invariant failure may
// have occurred. It returns human-readable violations, empty when clean.
func (r *Result) CheckBounds(maxFragIndex, maxSlowdown float64) []string {
	var v []string
	v = append(v, r.fails...)
	for _, rs := range r.Rounds {
		if rs.FragIndex > maxFragIndex {
			v = append(v, fmt.Sprintf("round %d: frag index %.3f exceeds bound %.3f (largest free %d of %d free bytes)",
				rs.Round, rs.FragIndex, maxFragIndex, rs.LargestFree, rs.FreeBytes))
		}
	}
	if sd := r.ReadSlowdown(); sd > maxSlowdown {
		v = append(v, fmt.Sprintf("probe read slowdown %.2fx exceeds bound %.2fx (baseline %dns, final %dns)",
			sd, maxSlowdown, r.Rounds[0].ReadNsPerOp, r.Rounds[len(r.Rounds)-1].ReadNsPerOp))
	}
	return v
}

const (
	probeFiles = 8
	probeSize  = 64 << 10
	probeReads = 4 // passes per probe per measurement; best pass wins
)

func probeName(i int) string { return fmt.Sprintf("/bench/probe%02d", i) }

// Run executes the sweep on a fresh volume.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sys, err := core.New(core.Options{
		ArenaSize:      uint64(cfg.ArenaMB) << 20,
		AcquireTimeout: 60 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	sess, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	fsys := filebench.PXFSAdapter{FS: pxfs.New(sess, pxfs.Options{NameCache: true})}

	churn := filebench.LogRotate(cfg.Scale)
	meta := filebench.Varmail(cfg.Scale)
	if err := filebench.Setup(fsys, meta); err != nil {
		return nil, fmt.Errorf("agesweep: varmail setup: %w", err)
	}
	if err := filebench.Setup(fsys, churn); err != nil {
		return nil, fmt.Errorf("agesweep: logrotate setup: %w", err)
	}
	// The probe set: fixed files whose layout never changes after this
	// point. Their read latency isolates aging of the volume around them.
	buf := make([]byte, probeSize)
	for i := range buf {
		buf[i] = byte(i*131 + 17)
	}
	for i := 0; i < probeFiles; i++ {
		f, err := fsys.Create(probeName(i))
		if err != nil {
			return nil, fmt.Errorf("agesweep: probe create: %w", err)
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return nil, fmt.Errorf("agesweep: probe write: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("agesweep: probe close: %w", err)
		}
	}
	if err := fsys.Sync(); err != nil {
		return nil, fmt.Errorf("agesweep: probe sync: %w", err)
	}

	res := &Result{ArenaMB: cfg.ArenaMB}
	sample := func(round int, churnOps int64) {
		st := sys.TFS.FragStats()
		ns, err := measureProbes(fsys, buf)
		if err != nil {
			res.fails = append(res.fails, fmt.Sprintf("round %d: probe read: %v", round, err))
		}
		if !sys.TFS.JournalIdle() {
			res.fails = append(res.fails, fmt.Sprintf("round %d: journal not idle at quiescence", round))
		}
		rep, err := sys.TFS.Fsck(false)
		if err != nil {
			res.fails = append(res.fails, fmt.Sprintf("round %d: fsck: %v", round, err))
		} else if rep.LeakedBlocks != 0 {
			res.fails = append(res.fails, fmt.Sprintf("round %d: fsck leaked %d blocks", round, rep.LeakedBlocks))
		}
		res.Rounds = append(res.Rounds, RoundStat{
			Round: round, FreeBytes: st.FreeBytes, LargestFree: st.LargestFree,
			Fragments: st.Fragments, FragIndex: st.Index,
			ReadNsPerOp: ns, ChurnOps: churnOps,
		})
		logf("agesweep round %d: frag=%.3f fragments=%d largest=%dKiB read=%dns ops=%d",
			round, st.Index, st.Fragments, st.LargestFree>>10, ns, churnOps)
	}
	sample(0, 0) // pre-churn baseline

	for round := 1; round <= cfg.Rounds; round++ {
		var ops int64
		cr, err := filebench.Run(fsys, churn, filebench.RunOpts{
			Threads: cfg.Threads, Iterations: cfg.Iters,
			Seed: cfg.Seed + int64(round)*7919,
		})
		if err != nil {
			return res, fmt.Errorf("agesweep: round %d logrotate: %w", round, err)
		}
		ops += cr.Ops
		mr, err := filebench.Run(fsys, meta, filebench.RunOpts{
			Threads: cfg.Threads, Iterations: cfg.Iters,
			Seed: cfg.Seed + int64(round)*104729,
		})
		if err != nil {
			return res, fmt.Errorf("agesweep: round %d varmail: %w", round, err)
		}
		ops += mr.Ops
		if err := fsys.Sync(); err != nil {
			return res, fmt.Errorf("agesweep: round %d sync: %w", round, err)
		}
		sample(round, ops)
	}
	return res, nil
}

// measureProbes reads every probe file whole probeReads times and returns
// the fastest full-pass latency in ns per file — min over passes filters
// scheduler noise, which on shared runners dwarfs the signal.
func measureProbes(fsys filebench.FS, buf []byte) (int64, error) {
	best := int64(0)
	for pass := 0; pass < probeReads; pass++ {
		t0 := time.Now()
		for i := 0; i < probeFiles; i++ {
			if err := readWhole(fsys, probeName(i), buf); err != nil {
				return 0, err
			}
		}
		ns := time.Since(t0).Nanoseconds() / probeFiles
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

func readWhole(fsys filebench.FS, path string, buf []byte) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	for {
		n, err := f.Read(buf)
		if err == io.EOF || (err == nil && n == 0) {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
