package tfs

import (
	"errors"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/rpc"
)

func newAdmitService(cfg Config) *Service {
	return &Service{cfg: cfg, admPerClient: make(map[uint64]int)}
}

// TestAdmitShedsOverByteLimit checks the backpressure byte bound — and its
// anti-wedge escape hatch: a batch over the limit is still admitted when
// nothing else is in flight, so a single huge batch cannot starve forever.
func TestAdmitShedsOverByteLimit(t *testing.T) {
	s := newAdmitService(Config{MaxInflightBytes: 1000, RetryAfterHint: 7 * time.Millisecond})
	if err := s.admit(1, 0, 900); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := s.admit(2, 0, 200)
	if !errors.Is(err, fsproto.ErrBusy) {
		t.Fatalf("over-limit admit: %v", err)
	}
	var h rpc.RetryAfterHinter
	if !errors.As(err, &h) || h.RetryAfterMs() != 7 {
		t.Fatalf("shed error retry hint: %v", err)
	}
	if s.BatchesShed.Load() != 1 {
		t.Fatalf("BatchesShed = %d", s.BatchesShed.Load())
	}
	s.admitDone(1, 0, 900)
	// Idle again: even a batch alone over the whole limit is admitted.
	if err := s.admit(2, 0, 5000); err != nil {
		t.Fatalf("anti-wedge admit: %v", err)
	}
	s.admitDone(2, 0, 5000)
}

// TestAdmitShedsOverClientDepth checks the per-client depth bound and that
// admitDone fully releases the debt.
func TestAdmitShedsOverClientDepth(t *testing.T) {
	s := newAdmitService(Config{MaxClientInflight: 2, RetryAfterHint: time.Millisecond})
	if err := s.admit(7, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.admit(7, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.admit(7, 0, 10); !errors.Is(err, fsproto.ErrBusy) {
		t.Fatalf("third in-flight request for one client: %v", err)
	}
	// Another client is not affected by the first one's depth.
	if err := s.admit(8, 0, 10); err != nil {
		t.Fatalf("other client shed by a neighbor's depth: %v", err)
	}
	s.admitDone(7, 0, 10)
	if err := s.admit(7, 0, 10); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	s.admitDone(7, 0, 10)
	s.admitDone(7, 0, 10)
	s.admitDone(8, 0, 10)
	if len(s.admPerClient) != 0 || s.admBytes != 0 {
		t.Fatalf("debt left after release: bytes=%d clients=%v", s.admBytes, s.admPerClient)
	}
}

// TestStatfsIdleVolume sanity-checks the accounting a fresh volume reports:
// the numbers libfs surfaces to df and to the admission heuristics.
func TestStatfsIdleVolume(t *testing.T) {
	svc, _ := newService(t)
	st, err := svc.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes == 0 || st.FreeBytes == 0 {
		t.Fatalf("empty statfs: %+v", st)
	}
	if st.FreeBytes > st.TotalBytes {
		t.Fatalf("free %d > total %d", st.FreeBytes, st.TotalBytes)
	}
	if st.ReservedBytes != 0 {
		t.Fatalf("idle volume holds %d reserved bytes", st.ReservedBytes)
	}
	if st.Objects == 0 {
		t.Fatalf("no objects on a formatted volume: %+v", st)
	}
	if st.BatchesApplied != 0 {
		t.Fatalf("fresh volume claims %d applied batches", st.BatchesApplied)
	}
}
