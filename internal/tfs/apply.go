package tfs

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// Journal actions: the low-level, idempotently re-appliable form that
// validated client operations are compiled into before being journaled
// (§5.3.6). Validation computes absolute values (reference counts, free
// lists) so replay after a crash is deterministic: re-applying any prefix
// or the whole batch yields the same state.
//
// The recovery invariant that makes replay safe: the journal is
// checkpointed after every applied commit GROUP (one record per batch,
// published together by a single fenced commit), so at most one group is
// ever replayed, and replay happens before any new allocation — a
// re-applied write can therefore never land in storage that was
// reallocated later. Replay is per record with the same idempotent-redo
// guards, so replaying several records of one group is no different from
// replaying one.
const (
	jInsert          uint8 = 1  // a collection insert: oid=col, key, child
	jRemove          uint8 = 2  // oid=col, key
	jSetRefcnt       uint8 = 3  // oid, a=count
	jSetParent       uint8 = 4  // oid, child=parent collection
	jAttach          uint8 = 5  // oid=mfile, a=blockIdx, b=extAddr
	jSetSize         uint8 = 6  // oid=mfile, a=size
	jTruncate        uint8 = 7  // oid=mfile, a=size
	jSetPerm         uint8 = 8  // oid, a=perm
	jSetAttrs        uint8 = 9  // oid, a=attrs
	jReplaceExt      uint8 = 10 // oid=mfile, a=newAddr, b=newCap
	jFree            uint8 = 11 // a=addr, b=size
	jPreallocAdd     uint8 = 12 // a=addr, b=size
	jPreallocConsume uint8 = 13 // a=addr
	// Cross-shard transaction markers (shardset.go). jTxCommit rides the
	// coordinator's batch: applying it records the transaction outcome in
	// the coordinator's side-log. jTxResolve rides each participant's
	// resolve batch: applying it tombstones the shard's prepare record.
	// Both are idempotent against the side-log state, so redo replay of the
	// batches they ride re-reaches the same decision.
	jTxCommit  uint8 = 14 // a=txid
	jTxResolve uint8 = 15 // a=txid, b=coordinator shard
	// jFreeObj frees every extent of an unlinked object by walking it at
	// APPLY time, after earlier actions in the batch have run. The planner
	// emits it instead of a plan-time jFree list when the same batch also
	// attached or replaced extents on the object: the plan-time walk reads
	// SCM state that does not show those yet, so it would both miss the new
	// extents (leak) and free a replaced extent twice. Redo replay re-walks
	// the object — safe because frees are quarantined until the checkpoint
	// erases the batch, so the header stays intact for the walk.
	jFreeObj uint8 = 16 // oid=unlinked object
)

type action struct {
	code  uint8
	oid   sobj.OID
	child sobj.OID
	key   []byte
	a, b  uint64
}

func encodeActions(acts []action) []byte {
	w := wire.NewWriter(48 * len(acts))
	w.U32(uint32(len(acts)))
	for i := range acts {
		ac := &acts[i]
		w.U8(ac.code)
		w.U64(uint64(ac.oid))
		w.U64(uint64(ac.child))
		w.Bytes32(ac.key)
		w.U64(ac.a)
		w.U64(ac.b)
	}
	return w.Bytes()
}

func decodeActions(p []byte) ([]action, error) {
	r := wire.NewReader(p)
	n := r.U32()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<22 {
		return nil, fmt.Errorf("tfs: implausible action count %d", n)
	}
	// Bound the preallocation by what the payload could possibly hold (an
	// encoded action is at least 37 bytes), so a corrupted count can't make
	// recovery allocate hundreds of megabytes before the first field read
	// fails.
	capHint := n
	if most := uint32(len(p)/37) + 1; most < capHint {
		capHint = most
	}
	acts := make([]action, 0, capHint)
	for i := uint32(0); i < n; i++ {
		var ac action
		ac.code = r.U8()
		ac.oid = sobj.OID(r.U64())
		ac.child = sobj.OID(r.U64())
		ac.key = append([]byte(nil), r.Bytes32()...)
		ac.a = r.U64()
		ac.b = r.U64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		acts = append(acts, ac)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return acts, nil
}

// tolerantAlloc skips double-free errors during journal replay.
type tolerantAlloc struct{ inner sobj.Allocator }

func (t tolerantAlloc) Alloc(size uint64) (uint64, error) { return t.inner.Alloc(size) }
func (t tolerantAlloc) Free(addr, size uint64) error {
	err := t.inner.Free(addr, size)
	if errors.Is(err, alloc.ErrBadFree) {
		return nil
	}
	return err
}

// deferFrees quarantines Free calls until after the journal checkpoint.
// Without it a batch that frees extent X while a later action in the same
// batch re-allocates X (a rehash table, an attached extent) makes the
// batch's jFree non-idempotent: a redo replay would see X's bitmap bit set
// and free a block that now holds live data. Deferral keeps freed blocks'
// bits set and off the volatile free lists until the checkpoint erases the
// batch, so a redo can only re-quarantine them. A crash between checkpoint
// and release leaks the quarantined blocks — the safe direction, which
// Fsck detects and repairs.
type deferFrees struct {
	inner sobj.Allocator
	ents  []struct{ addr, size uint64 }
}

func (d *deferFrees) Alloc(size uint64) (uint64, error) { return d.inner.Alloc(size) }

func (d *deferFrees) Free(addr, size uint64) error {
	d.ents = append(d.ents, struct{ addr, size uint64 }{addr, size})
	return nil
}

// freedBytes sums the quarantined frees' sizes — the space the batch gives
// back, credited to the batch's tenant once release performs the frees.
func (d *deferFrees) freedBytes() uint64 {
	var n uint64
	for _, e := range d.ents {
		n += e.size
	}
	return n
}

// release performs the quarantined frees. Double-frees are tolerated the
// same way replay tolerates them: the checkpointed batch is already
// durable, so a stale free must not fail the apply after the fact.
func (d *deferFrees) release() error {
	for _, e := range d.ents {
		if err := d.inner.Free(e.addr, e.size); err != nil && !errors.Is(err, alloc.ErrBadFree) {
			return err
		}
	}
	d.ents = nil
	return nil
}

// commitActions journals the batch and commits it. Callers hold s.mu.
// Payloads that could never fit — even into a freshly checkpointed journal —
// are rejected up front with typed fsproto.ErrBatchTooLarge, before any
// journal write or wasted checkpoint; the client must split the batch.
func (s *Service) commitActions(acts []action) error {
	if len(acts) == 0 {
		return nil
	}
	payload := encodeActions(acts)
	if max := s.jl.MaxPayload(); uint64(len(payload)) > max {
		return fmt.Errorf("%w: %d-byte batch, journal fits %d",
			fsproto.ErrBatchTooLarge, len(payload), max)
	}
	if err := s.jl.Append(payload); err != nil {
		if errors.Is(err, journalFull) {
			if cerr := s.jl.Checkpoint(); cerr != nil {
				return cerr
			}
			err = s.jl.Append(payload)
		}
		if err != nil {
			return err
		}
	}
	if err := s.jl.Commit(); err != nil {
		// Nothing published: drop the staged record so the journal does
		// not accumulate dead bytes across rejected batches.
		s.jl.Abort()
		return err
	}
	return nil
}

// journalFull aliases the journal's full error for the retry path.
var journalFull = journalErrFull()

// applyAll applies a committed batch to its home locations and checkpoints
// the journal (upholding the one-batch recovery invariant). Apply-time
// allocations are served from the batch's admission reservation, so they
// cannot fail on space. The batch's performed frees are credited to tenant
// (recovery paths pass 0 — boot-time accounting starts empty anyway).
// Callers hold s.mu.
func (s *Service) applyAll(acts []action, allocator sobj.Allocator, tenant uint32) error {
	// The batch is committed; a crash anywhere between here and the
	// checkpoint replays it from the journal.
	if err := s.faults.Hit("tfs.apply.postcommit"); err != nil {
		return err
	}
	df := &deferFrees{inner: allocator}
	for i := range acts {
		if err := s.faults.Hit("tfs.apply.action"); err != nil {
			return err
		}
		if err := s.applyAction(acts, i, df, false); err != nil {
			return err
		}
	}
	if err := s.faults.Hit("tfs.apply.checkpoint"); err != nil {
		return err
	}
	if err := s.jl.Checkpoint(); err != nil {
		return err
	}
	freed := df.freedBytes()
	if err := df.release(); err != nil {
		return err
	}
	s.tenantCredit(tenant, freed)
	return nil
}

// applyAction applies acts[i] with the given allocator. With replay set,
// already-applied effects are skipped rather than failed (redo semantics).
//
// Redo of a logical action is only safe when its effect is testable: apply
// is strictly sequential, so the applied actions always form a prefix of
// the batch. The replay guards exploit that — if any LATER action in the
// batch for the same object has verifiably taken effect, this earlier one
// must already have run and is skipped. Without the guards a replayed
// jTruncate would re-prune (and free) an extent that a later jAttach in
// the same batch had attached, leaving a reachable-but-free block, and a
// replayed jRemove would delete a later re-insert under the same key.
func (s *Service) applyAction(acts []action, i int, allocator sobj.Allocator, replay bool) error {
	ac := &acts[i]
	switch ac.code {
	case jInsert:
		col, err := sobj.OpenCollection(s.mem, ac.oid)
		if err != nil {
			return err
		}
		if replay {
			// Redo-replay must be allocation-idempotent. Insert grows
			// the table before it discovers a duplicate, so replaying
			// an already-applied insert could trigger a rehash the
			// original apply never performed; probe first and skip.
			switch val, lerr := col.Lookup(ac.key); {
			case lerr == nil && val == ac.child:
				return nil
			case lerr != nil && !errors.Is(lerr, sobj.ErrNotFound):
				return lerr
			}
		}
		if ac.a&1 != 0 {
			err = col.InsertNoGrow(allocator, ac.key, ac.child)
		} else {
			err = col.Insert(allocator, ac.key, ac.child)
		}
		if errors.Is(err, sobj.ErrExists) {
			return nil // idempotent redo
		}
		return err
	case jRemove:
		col, err := sobj.OpenCollection(s.mem, ac.oid)
		if err != nil {
			return err
		}
		if replay {
			skip, perr := laterInsertApplied(col, acts, i)
			if perr != nil {
				return perr
			}
			if skip {
				return nil
			}
		}
		if ac.a&1 != 0 {
			err = col.RemoveNoGC(allocator, ac.key)
		} else {
			err = col.Remove(allocator, ac.key)
		}
		if errors.Is(err, sobj.ErrNotFound) {
			return nil
		}
		return err
	case jSetRefcnt:
		if unlock := s.hdrExcl(ac.oid); unlock != nil {
			defer unlock()
		}
		return sobj.SetRefcnt(s.mem, ac.oid, uint32(ac.a))
	case jSetParent:
		if unlock := s.hdrExcl(ac.oid); unlock != nil {
			defer unlock()
		}
		return sobj.SetParent(s.mem, ac.oid, ac.child)
	case jAttach:
		m, err := sobj.OpenMFile(s.mem, ac.oid)
		if err != nil {
			return err
		}
		err = m.AttachExtent(allocator, ac.a, ac.b)
		if errors.Is(err, sobj.ErrExists) {
			return nil
		}
		return err
	case jSetSize:
		m, err := sobj.OpenMFile(s.mem, ac.oid)
		if err != nil {
			return err
		}
		return m.SetSize(ac.a)
	case jTruncate:
		m, err := sobj.OpenMFile(s.mem, ac.oid)
		if err != nil {
			return err
		}
		if replay {
			skip, perr := laterFileOpApplied(m, acts, i)
			if perr != nil {
				return perr
			}
			if skip {
				return nil
			}
		}
		return m.TruncatePruneOnly(allocator, ac.a)
	case jSetPerm:
		if unlock := s.hdrExcl(ac.oid); unlock != nil {
			defer unlock()
		}
		return sobj.SetPerm(s.mem, ac.oid, uint32(ac.a))
	case jSetAttrs:
		if unlock := s.hdrExcl(ac.oid); unlock != nil {
			defer unlock()
		}
		return sobj.SetAttrs(s.mem, ac.oid, ac.a)
	case jReplaceExt:
		m, err := sobj.OpenMFile(s.mem, ac.oid)
		if err != nil {
			return err
		}
		cur, err := m.ExtentFor(0)
		if err != nil {
			return err
		}
		if cur == ac.a {
			return nil // already swapped (redo)
		}
		return m.ReplaceSingleExtent(allocator, ac.a, ac.b)
	case jFree:
		err := allocator.Free(ac.a, ac.b)
		if errors.Is(err, alloc.ErrBadFree) {
			return nil
		}
		return err
	case jFreeObj:
		// Walk the unlinked object NOW — earlier actions in this batch
		// (attaches, extent replacements) have applied, so the walk sees
		// the final extent set the plan-time view could not.
		exts, err := s.objectExtents(ac.oid)
		if err != nil {
			return err
		}
		for _, e := range exts {
			if err := allocator.Free(e.Addr, e.Size); err != nil && !errors.Is(err, alloc.ErrBadFree) {
				return err
			}
		}
		return nil
	case jPreallocAdd:
		if replay {
			// Same allocation-idempotence probe as jInsert.
			switch val, lerr := s.preCol.Lookup(addrKey(ac.a)); {
			case lerr == nil && uint64(val) == ac.b:
				return nil
			case lerr != nil && !errors.Is(lerr, sobj.ErrNotFound):
				return lerr
			}
		}
		err := s.preCol.Insert(allocator, addrKey(ac.a), sobj.OID(ac.b))
		if errors.Is(err, sobj.ErrExists) {
			return nil
		}
		return err
	case jPreallocConsume:
		if replay {
			// Same later-action evidence as jRemove, against the
			// pre-allocation tracking collection.
			for j := i + 1; j < len(acts); j++ {
				if acts[j].code != jPreallocAdd || acts[j].a != ac.a {
					continue
				}
				switch val, lerr := s.preCol.Lookup(addrKey(ac.a)); {
				case lerr == nil && uint64(val) == acts[j].b:
					return nil
				case lerr != nil && !errors.Is(lerr, sobj.ErrNotFound):
					return lerr
				}
			}
		}
		err := s.preCol.Remove(allocator, addrKey(ac.a))
		if errors.Is(err, sobj.ErrNotFound) {
			return nil
		}
		return err
	case jTxCommit:
		return s.txOutcome(ac.a)
	case jTxResolve:
		return s.txTombstone(ac.a, uint32(ac.b))
	}
	return fmt.Errorf("tfs: unknown journal action %d", ac.code)
}

// laterInsertApplied reports whether a jInsert later in the batch with the
// same collection and key as acts[i] has already taken effect. Apply is
// strictly sequential, so a later applied action proves acts[i] ran too.
func laterInsertApplied(col *sobj.Collection, acts []action, i int) (bool, error) {
	for j := i + 1; j < len(acts); j++ {
		if acts[j].code != jInsert || acts[j].oid != acts[i].oid || !bytes.Equal(acts[j].key, acts[i].key) {
			continue
		}
		val, err := col.Lookup(acts[i].key)
		if err == nil && val == acts[j].child {
			return true, nil
		}
		if err != nil && !errors.Is(err, sobj.ErrNotFound) {
			return false, err
		}
	}
	return false, nil
}

// laterFileOpApplied reports whether a later extent-shaping action in the
// batch on the same file as acts[i] has already taken effect (see
// laterInsertApplied for why that proves acts[i] ran).
func laterFileOpApplied(m *sobj.MFile, acts []action, i int) (bool, error) {
	for j := i + 1; j < len(acts); j++ {
		if acts[j].oid != acts[i].oid {
			continue
		}
		switch acts[j].code {
		case jAttach:
			cur, err := m.ExtentAtBlock(acts[j].a)
			if err != nil {
				return false, err
			}
			if cur != 0 && cur == acts[j].b {
				return true, nil
			}
		case jReplaceExt:
			cur, err := m.ExtentFor(0)
			if err != nil {
				return false, err
			}
			if cur != 0 && cur == acts[j].a {
				return true, nil
			}
		}
	}
	return false, nil
}

// overlay tracks the state the batch will have produced so far, so later
// ops in the same batch validate against the effects of earlier ones.
type overlay struct {
	parents  map[sobj.OID]sobj.OID
	refcnts  map[sobj.OID]uint32
	created  map[sobj.OID]bool
	consumed map[uint64]bool
	// inserts/removes staged per collection (key presence).
	colIns map[sobj.OID]map[string]sobj.OID
	colDel map[sobj.OID]map[string]bool
	// attached marks objects whose extent set this batch changes (attach
	// or replace). An unlink later in the same batch cannot plan its frees
	// from SCM state — it does not show those changes yet — so it must
	// defer the walk to apply time (jFreeObj). Without the marker the
	// append-then-rotate pattern (grow a log, delete it, all one batch)
	// leaks every appended extent.
	attached map[sobj.OID]bool
}

func newOverlay() *overlay {
	return &overlay{
		parents:  make(map[sobj.OID]sobj.OID),
		refcnts:  make(map[sobj.OID]uint32),
		created:  make(map[sobj.OID]bool),
		consumed: make(map[uint64]bool),
		colIns:   make(map[sobj.OID]map[string]sobj.OID),
		colDel:   make(map[sobj.OID]map[string]bool),
		attached: make(map[sobj.OID]bool),
	}
}

func (ov *overlay) refcnt(s *Service, oid sobj.OID) (uint32, error) {
	if n, ok := ov.refcnts[oid]; ok {
		return n, nil
	}
	if ov.created[oid] {
		return 0, nil
	}
	unlock := s.hdrShared(oid)
	h, err := sobj.ReadHeader(s.mem, oid)
	if unlock != nil {
		unlock()
	}
	if err != nil {
		return 0, err
	}
	return h.Refcnt, nil
}

func (ov *overlay) parent(s *Service, oid sobj.OID) (sobj.OID, error) {
	if p, ok := ov.parents[oid]; ok {
		return p, nil
	}
	if ov.created[oid] {
		return 0, nil
	}
	unlock := s.hdrShared(oid)
	h, err := sobj.ReadHeader(s.mem, oid)
	if unlock != nil {
		unlock()
	}
	if err != nil {
		return 0, err
	}
	return h.Parent, nil
}

// lookup resolves key in a collection through the overlay.
func (ov *overlay) lookup(s *Service, dir sobj.OID, key []byte) (sobj.OID, bool, error) {
	if m := ov.colIns[dir]; m != nil {
		if v, ok := m[string(key)]; ok {
			return v, true, nil
		}
	}
	if m := ov.colDel[dir]; m != nil && m[string(key)] {
		return 0, false, nil
	}
	col, err := sobj.OpenCollection(s.mem, dir)
	if err != nil {
		return 0, false, err
	}
	v, err := col.Lookup(key)
	if errors.Is(err, sobj.ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

func (ov *overlay) noteInsert(dir sobj.OID, key []byte, val sobj.OID) {
	if ov.colIns[dir] == nil {
		ov.colIns[dir] = make(map[string]sobj.OID)
	}
	ov.colIns[dir][string(key)] = val
	if m := ov.colDel[dir]; m != nil {
		delete(m, string(key))
	}
}

func (ov *overlay) noteRemove(dir sobj.OID, key []byte) {
	if m := ov.colIns[dir]; m != nil {
		delete(m, string(key))
	}
	if ov.colDel[dir] == nil {
		ov.colDel[dir] = make(map[string]bool)
	}
	ov.colDel[dir][string(key)] = true
}

// holdsCover validates the paper's lock rule (§5.3.5): the client must hold
// a write lock covering the modified object — the object's own lock, or a
// hierarchical write lock on an ancestor. Objects linked into more than one
// collection (refcnt > 1) must be locked explicitly (§5.3.4's membership
// protocol). Objects created in this batch are covered implicitly: nothing
// else can reach them.
func (s *Service) holdsCover(client uint64, target sobj.OID, coverLock uint64, ov *overlay) error {
	return s.holdsCoverKeyed(client, target, nil, coverLock, ov)
}

// holdsCoverKeyed additionally accepts FlatFS's fine-grained bucket locks
// (§6.2): a TypeBucket cover is valid when the client holds it exclusively,
// holds the collection's intent-write lock, and the cover is exactly the
// bucket lock for key in that collection. For file objects, key must bind
// the target into the collection.
func (s *Service) holdsCoverKeyed(client uint64, target sobj.OID, key []byte, coverLock uint64, ov *overlay) error {
	if ov.created[target] {
		return nil
	}
	if sobj.OID(coverLock).Type() == sobj.TypeBucket {
		return s.holdsBucketCover(client, target, key, coverLock, ov)
	}
	if coverLock == target.Lock() {
		if held, _ := s.Locks.Holds(client, coverLock, lockX); held {
			return nil
		}
		return fmt.Errorf("%w: %v", ErrLockCover, target)
	}
	held, hier := s.Locks.Holds(client, coverLock, lockX)
	if !held || !hier {
		return fmt.Errorf("%w: cover %#x not held hierarchically", ErrLockCover, coverLock)
	}
	refcnt, err := ov.refcnt(s, target)
	if err != nil {
		return err
	}
	if refcnt > 1 {
		return fmt.Errorf("%w: %v has %d links, explicit lock required", ErrLockCover, target, refcnt)
	}
	// Walk ancestors looking for the cover.
	cur := target
	for depth := 0; depth < 64; depth++ {
		p, err := ov.parent(s, cur)
		if err != nil {
			return err
		}
		if p == 0 {
			break
		}
		if p.Lock() == coverLock {
			return nil
		}
		cur = p
	}
	return fmt.Errorf("%w: cover %#x is not an ancestor of %v", ErrLockCover, coverLock, target)
}

func (s *Service) holdsBucketCover(client uint64, target sobj.OID, key []byte, coverLock uint64, ov *overlay) error {
	var col sobj.OID
	if target.Type() == sobj.TypeCollection {
		col = target
	} else {
		p, err := ov.parent(s, target)
		if err != nil {
			return err
		}
		if p.Type() != sobj.TypeCollection {
			return fmt.Errorf("%w: %v has no collection parent", ErrLockCover, target)
		}
		col = p
		// key must bind the target into the collection.
		v, ok, err := ov.lookup(s, col, key)
		if err != nil {
			return err
		}
		if !ok || v != target {
			return fmt.Errorf("%w: key %q does not name %v", ErrLockCover, key, target)
		}
	}
	if held, _ := s.Locks.Holds(client, coverLock, lockX); !held {
		return fmt.Errorf("%w: bucket lock %#x not held", ErrLockCover, coverLock)
	}
	if held, _ := s.Locks.Holds(client, col.Lock(), lockIX); !held {
		return fmt.Errorf("%w: intent lock on %v not held", ErrLockCover, col)
	}
	c, err := sobj.OpenCollection(s.mem, col)
	if err != nil {
		return err
	}
	bl, err := c.BucketLock(key)
	if err != nil {
		return err
	}
	if bl != coverLock {
		return fmt.Errorf("%w: %#x is not the bucket lock for %q", ErrLockCover, coverLock, key)
	}
	return nil
}

// ApplyLog validates, journals, and applies a batch of client metadata
// updates (§5.3.5). Any validation failure rejects the whole batch with no
// effect.
//
// Resource exhaustion is handled in two phases before the journal is
// touched: admission control sheds the request with fsproto.ErrBusy when
// the service is over its in-flight limits, and the batch's worst-case
// space demand is reserved from the allocator — a reservation failure
// rejects the batch with typed fsproto.ErrNoSpace while the volume is still
// untouched. Once the batch commits, apply draws from the reservation and
// cannot fail on space; the unconsumed surplus is released afterwards.
//
// The batch rides the group-commit pipeline (groupcommit.go): batches
// arriving concurrently share one journal fence and disjoint batches
// apply in parallel behind it.
func (s *Service) ApplyLog(client uint64, payload []byte) error {
	ops, err := fsproto.DecodeOps(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	// The legacy frame carries no tenant; the batch bills to the tenant the
	// session mounted as.
	return s.submitBatch(client, s.clientTenant(client), fsproto.SeqHeader{}, ops, int64(len(payload)))
}

// plan validates ops sequentially and compiles them into journal actions
// plus volatile side effects (open-file bookkeeping, prealloc consumption).
func (s *Service) plan(client uint64, st *clientState, ops []fsproto.Op) ([]action, []func(), error) {
	ov := newOverlay()
	var acts []action
	var effects []func()

	consume := func(addr uint64, minSize uint64) error {
		size, ok := st.prealloc[addr]
		if !ok || ov.consumed[addr] {
			return fmt.Errorf("%w: %#x", ErrNotPrealloc, addr)
		}
		if size < minSize {
			return fmt.Errorf("%w: %#x is %d bytes, need %d", ErrNotPrealloc, addr, size, minSize)
		}
		ov.consumed[addr] = true
		acts = append(acts, action{code: jPreallocConsume, a: addr})
		// The tracking entry lives on the shard that allocated the extent —
		// under a cross-shard transaction st is a merged view, so the
		// deletion must route back to the owner (dropPrealloc).
		effects = append(effects, func() { s.dropPrealloc(client, addr) })
		return nil
	}

	// unlink handles the refcnt decrement of a removed/overwritten child.
	unlink := func(child sobj.OID) error {
		refcnt, err := ov.refcnt(s, child)
		if err != nil {
			return err
		}
		if refcnt > 0 {
			refcnt--
		}
		ov.refcnts[child] = refcnt
		if refcnt > 0 {
			acts = append(acts, action{code: jSetRefcnt, oid: child, a: uint64(refcnt)})
			return nil
		}
		// Last link gone. Open files survive until closed (§6.1). The
		// registration lives on the child's owning shard, which may not be
		// the planning shard inside a cross-shard transaction.
		osf, err := s.openStateFor(child)
		if err != nil {
			return err
		}
		if os := osf; os != nil && os.opens > 0 {
			effects = append(effects, func() { os.unlinked = true })
			acts = append(acts, action{code: jSetRefcnt, oid: child, a: 0})
			return nil
		}
		// Empty-directory invariant.
		if child.Type() == sobj.TypeCollection {
			col, err := sobj.OpenCollection(s.mem, child)
			if err != nil {
				return err
			}
			n, err := col.Count()
			if err != nil {
				return err
			}
			if n > 0 {
				return fmt.Errorf("%w: removing non-empty collection %v", ErrValidation, child)
			}
		}
		if ov.attached[child] {
			// This batch already changed the object's extent set; the
			// SCM walk below would miss (or double-free) those extents.
			acts = append(acts, action{code: jFreeObj, oid: child})
			return nil
		}
		exts, err := s.objectExtents(child)
		if err != nil {
			return err
		}
		for _, e := range exts {
			acts = append(acts, action{code: jFree, a: e.Addr, b: e.Size})
		}
		return nil
	}

	for i := range ops {
		op := &ops[i]
		switch op.Code {
		case fsproto.OpCreateObject:
			if err := s.planCreate(st, op, ov, consume); err != nil {
				return nil, nil, err
			}
		case fsproto.OpInsert:
			if err := s.requireCollection(op.Target, ov); err != nil {
				return nil, nil, err
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			if len(op.Key) == 0 || len(op.Key) > sobj.MaxKeyLen {
				return nil, nil, fmt.Errorf("%w: bad key length %d", ErrValidation, len(op.Key))
			}
			if _, err := s.validObject(op.Child, ov); err != nil {
				return nil, nil, err
			}
			if _, exists, err := ov.lookup(s, op.Target, op.Key); err != nil {
				return nil, nil, err
			} else if exists {
				return nil, nil, fmt.Errorf("%w: key %q exists", ErrValidation, op.Key)
			}
			refcnt, err := ov.refcnt(s, op.Child)
			if err != nil {
				return nil, nil, err
			}
			refcnt++
			ov.refcnts[op.Child] = refcnt
			acts = append(acts, action{code: jInsert, oid: op.Target, key: op.Key, child: op.Child, a: op.Val & 1})
			acts = append(acts, action{code: jSetRefcnt, oid: op.Child, a: uint64(refcnt)})
			if refcnt == 1 {
				acts = append(acts, action{code: jSetParent, oid: op.Child, child: op.Target})
				ov.parents[op.Child] = op.Target
			}
			ov.noteInsert(op.Target, op.Key, op.Child)
		case fsproto.OpRemove:
			if err := s.requireCollection(op.Target, ov); err != nil {
				return nil, nil, err
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			child, exists, err := ov.lookup(s, op.Target, op.Key)
			if err != nil {
				return nil, nil, err
			}
			if !exists {
				return nil, nil, fmt.Errorf("%w: key %q not found", ErrValidation, op.Key)
			}
			acts = append(acts, action{code: jRemove, oid: op.Target, key: op.Key, a: op.Val & 1})
			ov.noteRemove(op.Target, op.Key)
			if err := unlink(child); err != nil {
				return nil, nil, err
			}
		case fsproto.OpRename:
			if err := s.planRename(client, op, ov, &acts, unlink); err != nil {
				return nil, nil, err
			}
		case fsproto.OpAttachExtent:
			m, err := s.requireMFile(op.Target, ov)
			if err != nil {
				return nil, nil, err
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			bs, err := m.BlockSize()
			if err != nil {
				return nil, nil, err
			}
			if err := consume(op.Val2, bs); err != nil {
				return nil, nil, err
			}
			acts = append(acts, action{code: jAttach, oid: op.Target, a: op.Val, b: op.Val2})
			ov.attached[op.Target] = true
		case fsproto.OpSetSize:
			if _, err := s.requireMFile(op.Target, ov); err != nil {
				return nil, nil, err
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			acts = append(acts, action{code: jSetSize, oid: op.Target, a: op.Val})
		case fsproto.OpTruncate:
			if _, err := s.requireMFile(op.Target, ov); err != nil {
				return nil, nil, err
			}
			if err := s.holdsCover(client, op.Target, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			acts = append(acts, action{code: jTruncate, oid: op.Target, a: op.Val})
		case fsproto.OpSetAttr:
			if _, err := s.validObject(op.Target, ov); err != nil {
				return nil, nil, err
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			code := jSetPerm
			if op.Val2&1 != 0 {
				code = jSetAttrs
			}
			acts = append(acts, action{code: code, oid: op.Target, a: op.Val})
		case fsproto.OpReplaceExt:
			m, err := s.requireMFile(op.Target, ov)
			if err != nil {
				return nil, nil, err
			}
			if single, _ := m.IsSingle(); !single {
				return nil, nil, fmt.Errorf("%w: replace-extent on radix mFile", ErrValidation)
			}
			if err := s.holdsCoverKeyed(client, op.Target, op.Key, op.CoverLock, ov); err != nil {
				return nil, nil, err
			}
			if err := consume(op.Val, op.Val2); err != nil {
				return nil, nil, err
			}
			acts = append(acts, action{code: jReplaceExt, oid: op.Target, a: op.Val, b: op.Val2})
			ov.attached[op.Target] = true
		default:
			return nil, nil, fmt.Errorf("%w: op %d", ErrValidation, op.Code)
		}
	}
	return acts, effects, nil
}

// planCreate validates a client-staged object: its head (and structural
// extents) must come from the client's pre-allocated pool, and its header
// must already be a valid flushed object of the claimed type.
func (s *Service) planCreate(st *clientState, op *fsproto.Op, ov *overlay, consume func(addr, minSize uint64) error) error {
	oid := op.Target
	h, err := sobj.ReadHeader(s.mem, oid)
	if err != nil {
		return fmt.Errorf("%w: staged object invalid: %v", ErrValidation, err)
	}
	if h.Refcnt != 0 {
		return fmt.Errorf("%w: staged object has refcnt %d", ErrValidation, h.Refcnt)
	}
	if err := consume(oid.Addr(), 0); err != nil {
		return err
	}
	switch oid.Type() {
	case sobj.TypeCollection:
		col, err := sobj.OpenCollection(s.mem, oid)
		if err != nil {
			return err
		}
		exts, err := col.Extents()
		if err != nil {
			return err
		}
		for _, e := range exts[1:] { // head already consumed
			if err := consume(e.Addr, 0); err != nil {
				return err
			}
		}
	case sobj.TypeMFile:
		m, err := sobj.OpenMFile(s.mem, oid)
		if err != nil {
			return err
		}
		exts, err := m.Extents()
		if err != nil {
			return err
		}
		for _, e := range exts[1:] {
			if err := consume(e.Addr, 0); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: cannot create %v", ErrValidation, oid)
	}
	ov.created[oid] = true
	return nil
}

// planRename validates an atomic move (§6.1: write locks on both directory
// collections; rename must not create namespace cycles).
func (s *Service) planRename(client uint64, op *fsproto.Op, ov *overlay, acts *[]action, unlink func(sobj.OID) error) error {
	if err := s.requireCollection(op.Target, ov); err != nil {
		return err
	}
	if err := s.requireCollection(op.Dir2, ov); err != nil {
		return err
	}
	if err := s.holdsCover(client, op.Target, op.CoverLock, ov); err != nil {
		return err
	}
	if err := s.holdsCover(client, op.Dir2, op.Cover2, ov); err != nil {
		return err
	}
	child, exists, err := ov.lookup(s, op.Target, op.Key)
	if err != nil {
		return err
	}
	if !exists {
		return fmt.Errorf("%w: rename source %q not found", ErrValidation, op.Key)
	}
	if len(op.Key2) == 0 || len(op.Key2) > sobj.MaxKeyLen {
		return fmt.Errorf("%w: bad rename destination key", ErrValidation)
	}
	// Cycle check: moving a collection under one of its own descendants
	// would orphan the subtree (§5.3.5).
	if child.Type() == sobj.TypeCollection {
		cur := op.Dir2
		for depth := 0; depth < 64; depth++ {
			if cur == child {
				return ErrCycle
			}
			p, err := ov.parent(s, cur)
			if err != nil {
				return err
			}
			if p == 0 {
				break
			}
			cur = p
		}
	}
	// Overwrite semantics: an existing destination entry is unlinked.
	if old, exists, err := ov.lookup(s, op.Dir2, op.Key2); err != nil {
		return err
	} else if exists {
		if old == child {
			return fmt.Errorf("%w: rename onto the same object", ErrValidation)
		}
		*acts = append(*acts, action{code: jRemove, oid: op.Dir2, key: op.Key2})
		ov.noteRemove(op.Dir2, op.Key2)
		if err := unlink(old); err != nil {
			return err
		}
	}
	*acts = append(*acts, action{code: jRemove, oid: op.Target, key: op.Key})
	ov.noteRemove(op.Target, op.Key)
	*acts = append(*acts, action{code: jInsert, oid: op.Dir2, key: op.Key2, child: child})
	ov.noteInsert(op.Dir2, op.Key2, child)
	*acts = append(*acts, action{code: jSetParent, oid: child, child: op.Dir2})
	ov.parents[child] = op.Dir2
	return nil
}

func (s *Service) requireCollection(oid sobj.OID, ov *overlay) error {
	if oid.Type() != sobj.TypeCollection {
		return fmt.Errorf("%w: %v is not a collection", ErrValidation, oid)
	}
	_, err := sobj.ReadHeader(s.mem, oid)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	return nil
}

func (s *Service) requireMFile(oid sobj.OID, ov *overlay) (*sobj.MFile, error) {
	if oid.Type() != sobj.TypeMFile {
		return nil, fmt.Errorf("%w: %v is not an mFile", ErrValidation, oid)
	}
	m, err := sobj.OpenMFile(s.mem, oid)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrValidation, err)
	}
	return m, nil
}

func (s *Service) validObject(oid sobj.OID, ov *overlay) (sobj.Header, error) {
	h, err := sobj.ReadHeader(s.mem, oid)
	if err != nil {
		return sobj.Header{}, fmt.Errorf("%w: %v", ErrValidation, err)
	}
	return h, nil
}

// objectExtents enumerates an object's extents for deterministic frees.
func (s *Service) objectExtents(oid sobj.OID) ([]sobj.Extent, error) {
	switch oid.Type() {
	case sobj.TypeCollection:
		c, err := sobj.OpenCollection(s.mem, oid)
		if err != nil {
			return nil, err
		}
		return c.Extents()
	case sobj.TypeMFile:
		m, err := sobj.OpenMFile(s.mem, oid)
		if err != nil {
			return nil, err
		}
		return m.Extents()
	}
	return nil, fmt.Errorf("%w: extents of %v", ErrValidation, oid)
}
