package tfs

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Group commit and parallel apply: the write-path pipeline's trusted half.
//
// Every ApplyLog/ApplyLogSeq arrival queues a groupBatch and the first
// queuer becomes the group leader. The leader drains the queue into a
// commit group, and — under the service mutex — validates, reserves, and
// journals each batch as its own record, then publishes all of them with
// ONE fenced commit (the journal's chained-commit publish: N staged
// records, one tail update). That single fence is the dominant persist
// cost of a metadata batch, so coalescing amortizes it across every client
// whose batch arrived while the previous group was being processed.
// Batches that arrive mid-group wait on the queue and form the next group,
// which is exactly the classic group-commit cadence.
//
// Behind the fence, batches whose touched-object sets are disjoint apply
// concurrently on worker goroutines; conflicting batches keep commit
// order (a batch waits for every earlier conflicting batch before it
// starts). One checkpoint erases the whole group, after which each batch's
// quarantined frees are released and its volatile effects run.
//
// Group formation rules that keep validation sound:
//
//   - At most one batch per client per group. A session's later batches
//     can depend on the effects of its earlier ones (absolute refcnts,
//     staged-create-then-link), and plan validates against applied state,
//     so a client's next batch only joins a group formed after its
//     previous batch applied. Well-behaved sessions ship their window
//     serially and never have two batches in flight anyway; the rule
//     defends against the ones that don't.
//   - Cross-client batches in one group are independent by the lock
//     protocol (releasing a lock forces the releasing session to flush
//     first), and each batch is still fully validated on its own — a
//     hostile interleaving fails validation per batch, never corrupts.
//
// The recovery invariant relaxes from "at most one batch replayed" to "at
// most one GROUP replayed": the journal may hold several committed records
// after a crash, each replayed with the same per-batch idempotent-redo
// guards, and no allocation happens before replay finishes.

// maxGroupBatches caps how many batches one leader coalesces into a single
// fence, bounding the latency a waiter can be held behind the group.
const maxGroupBatches = 32

// groupBatch is one client batch staged into (or waiting for) a commit
// group.
type groupBatch struct {
	client uint64
	tenant uint32
	seq    uint64 // per-session window sequence (0: unsequenced ApplyLog)
	ops    []fsproto.Op
	bytes  int64   // encoded payload size (the WFQ cost measure)
	vft    float64 // virtual finish time, assigned at enqueue under gqMu
	t0     time.Time
	done   chan struct{}
	lead   chan struct{} // closed to hand this batch's handler leadership
	err    error

	// Populated by the leader under s.mu once the batch validates.
	acts    []action
	effects []func()
	res     *alloc.Reservation
	demand  uint64 // worst-case bytes charged against the tenant's quota
	df      *deferFrees
}

// ApplyLogSeq is ApplyLog for pipelined sessions: the payload carries the
// session's tenant frame and a completion-window header (sequence, epoch,
// fragment/opener flags) ahead of the encoded ops. The wire tenant is
// cross-checked against the session's Mount registration before anything
// else — a spoofed identity is rejected without touching the window gate.
func (s *Service) ApplyLogSeq(client uint64, payload []byte) error {
	th, rest, err := fsproto.DecodeTenantFramed(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	if err := s.checkTenant(client, th.Tenant); err != nil {
		return err
	}
	h, opsPayload, err := fsproto.DecodeApplyLogSeq(rest)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	ops, err := fsproto.DecodeOps(opsPayload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	return s.submitBatch(client, th.Tenant, h, ops, int64(len(payload)))
}

// submitBatch runs a decoded batch through the window sequence gate,
// admission control, and the group commit pipeline, blocking until the
// batch's group completes. Sequenced batches (Seq != 0) enter the gate
// BEFORE admission: a batch waiting for its in-flight predecessor must
// not hold admission slots — with the order reversed, a deep window could
// fill the per-client admission depth with gate waiters and starve the
// very predecessor they wait for into busy-shed retries until the gap
// timed out. A post-gate admission shed leaves the gate expecting the
// same sequence number (no outcome), so the client's busy retry re-enters
// cleanly; any post-admission outcome is recorded on exit so the
// session's next sequence number unblocks (or, after a rejection, so the
// rest of the epoch dies with ErrWindowStale).
func (s *Service) submitBatch(client uint64, tenant uint32, h fsproto.SeqHeader, ops []fsproto.Op, bytes int64) error {
	if h.Seq == 0 {
		if err := s.admit(client, tenant, bytes); err != nil {
			return err
		}
		defer s.admitDone(client, tenant, bytes)
		return s.runBatch(client, tenant, 0, ops, bytes)
	}
	g := s.gate(client)
	if err := g.enter(h); err != nil {
		return err
	}
	if err := s.admit(client, tenant, bytes); err != nil {
		return err
	}
	err := s.runBatch(client, tenant, h.Seq, ops, bytes)
	s.admitDone(client, tenant, bytes)
	g.exit(h, err)
	return err
}

// runBatch queues one admitted, sequenced-or-legacy batch for group commit
// and waits for its outcome. The batch's virtual finish time — the
// weighted-fair scheduler's ordering key — is assigned here, under gqMu:
// vft = max(scheduler vtime, tenant's last vft) + bytes/weight. Per-tenant
// vfts are strictly increasing, so vft order never reorders one session's
// batches (the sequence gates rely on per-client FIFO), while a flooding
// tenant's backlog pushes its own later batches ever further back relative
// to a light tenant's.
func (s *Service) runBatch(client uint64, tenant uint32, seq uint64, ops []fsproto.Op, bytes int64) error {
	gb := &groupBatch{client: client, tenant: tenant, seq: seq, ops: ops, bytes: bytes, t0: time.Now(), done: make(chan struct{}), lead: make(chan struct{})}
	w := float64(s.tenantWeight(tenant))
	s.gqMu.Lock()
	if s.tenVft == nil {
		s.tenVft = make(map[uint32]float64)
	}
	start := s.vtime
	if last := s.tenVft[tenant]; last > start {
		start = last
	}
	gb.vft = start + float64(bytes+1)/w
	s.tenVft[tenant] = gb.vft
	s.groupq = append(s.groupq, gb)
	lead := !s.leaderOn
	if lead {
		s.leaderOn = true
	}
	s.gqMu.Unlock()
	// A leader serves groups only until its own batch completes, then hands
	// leadership to a queued batch's waiting handler (see lead). Without the
	// handoff, whichever tenant's batch happened to arrive at a vacant-leader
	// moment was conscripted into serving the whole queue until a lull —
	// under a sustained flood, an unbounded latency tail for exactly the
	// light tenant the weighted-fair queue is meant to protect. Non-leaders
	// wait on their outcome but stand ready to inherit the duty.
	if lead {
		s.lead(gb)
	} else {
		select {
		case <-gb.done:
		case <-gb.lead:
			s.lead(gb)
		}
	}
	<-gb.done
	s.observeTenantLatency(tenant, time.Since(gb.t0))
	return gb.err
}

// seqGapTimeout bounds how long a batch waits for its missing predecessor
// in the window order. A healthy pipeline fills gaps in milliseconds (the
// predecessor is merely in flight); a gap that lasts this long means the
// client lied about its sequence numbers or lost a batch it will never
// re-ship, and the waiter is rejected rather than parked forever.
const seqGapTimeout = 10 * time.Second

// seqGate sequences one session's concurrently arriving window batches.
// State changes broadcast by closing and replacing ch; waiters reload state
// after each wakeup.
type seqGate struct {
	mu       sync.Mutex
	epoch    uint32 // current discard generation (0: nothing seen yet)
	next     uint64 // expected sequence number within epoch
	poisoned bool   // a batch of this epoch was rejected; suffix is dead
	ch       chan struct{}
}

// gate returns client's sequence gate, creating it on first use.
func (s *Service) gate(client uint64) *seqGate {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	g := s.gates[client]
	if g == nil {
		g = &seqGate{ch: make(chan struct{})}
		s.gates[client] = g
	}
	return g
}

func (g *seqGate) broadcast() {
	close(g.ch)
	g.ch = make(chan struct{})
}

// enter blocks until h is next in the session's window order, or fails it:
// ErrWindowStale for batches from a dead part of the window (an epoch the
// client already discarded past, a poisoned epoch, or a replayed sequence
// number), ErrValidation for a sequence gap that never fills.
func (g *seqGate) enter(h fsproto.SeqHeader) error {
	timeout := time.After(seqGapTimeout)
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		switch {
		case h.Epoch < g.epoch:
			return fmt.Errorf("%w: epoch %d, session is at %d", fsproto.ErrWindowStale, h.Epoch, g.epoch)
		case h.Epoch > g.epoch:
			if h.Opener {
				// First batch of a new epoch re-baselines the expected
				// sequence: the discarded suffix consumed numbers that
				// will never arrive.
				g.epoch = h.Epoch
				g.next = h.Seq
				g.poisoned = false
				g.broadcast()
				return nil
			}
			// A non-opener from a future epoch waits for its opener.
		default: // h.Epoch == g.epoch
			if g.poisoned {
				return fmt.Errorf("%w: epoch %d poisoned by an earlier rejection", fsproto.ErrWindowStale, h.Epoch)
			}
			switch {
			case g.next == 0:
				// Session's first sequenced batch (no opener flag —
				// legacy single-epoch pipelining): baseline here.
				g.next = h.Seq
				return nil
			case h.Seq == g.next:
				return nil
			case h.Seq < g.next:
				return fmt.Errorf("%w: sequence %d already completed (next %d)", fsproto.ErrWindowStale, h.Seq, g.next)
			}
			// h.Seq > g.next: the predecessor is still in flight; wait.
		}
		ch := g.ch
		g.mu.Unlock()
		select {
		case <-ch:
		case <-timeout:
			g.mu.Lock()
			return fmt.Errorf("%w: window gap: sequence %d waited %v for %d",
				ErrValidation, h.Seq, seqGapTimeout, g.next)
		}
		g.mu.Lock()
	}
}

// exit records a gated batch's final outcome. Success on a final (non-
// fragment) batch advances the expected sequence; a fragment keeps it (the
// next fragment reuses the number); any rejection poisons the epoch so the
// batches sequenced behind it — which the client discards on its side —
// fail typed instead of validating against a state they assumed wrong.
func (g *seqGate) exit(h fsproto.SeqHeader, err error) {
	if err != nil && errors.Is(err, fsproto.ErrBatchTooLarge) {
		// Not an outcome: the client splits the batch and re-ships the
		// halves under the same sequence number.
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if h.Epoch != g.epoch {
		// A newer epoch's opener superseded this batch while it ran.
		return
	}
	if err == nil {
		if !h.Frag {
			g.next = h.Seq + 1
		}
	} else {
		g.poisoned = true
	}
	g.broadcast()
}

// lead drains the batch queue group by group until it is empty, then
// retires. The leader may end up committing batches queued by other
// handler goroutines; they wait on their done channels.
// lead serves group commits until the queue drains or the leader's own
// batch (own) completes with more work still queued — then leadership is
// handed to a queued batch's handler (every queued batch has one, parked in
// runBatch's select) and this handler returns to its RPC. Bounding the
// stint to the leader's own batch keeps any one tenant's handler from
// serving another tenant's flood, while keeping the commit loop on handler
// stacks — a crash fault injected under s.mu must propagate through the
// RPC goroutine that asked for it, exactly as the crash sweeps expect.
func (s *Service) lead(own *groupBatch) {
	for {
		// Gather beat: yield once before sealing each group so handler
		// goroutines that are already runnable — a burst of batches whose
		// RPC waits expired on the same timer tick — get to enqueue and
		// share the fence. Without it a single-P runtime never preempts
		// the leader's spin-injected commit costs, and every group
		// degenerates to one batch.
		runtime.Gosched()
		s.gqMu.Lock()
		if len(s.groupq) == 0 {
			s.leaderOn = false
			s.gqMu.Unlock()
			return
		}
		if own != nil {
			select {
			case <-own.done:
				// The stint is over but the queue is not empty: pass the
				// duty. The successor is still queued, so its handler is
				// parked in runBatch's select and cannot have returned;
				// leaderOn stays true across the handoff, so no second
				// leader can be elected in the gap.
				successor := s.groupq[0]
				s.gqMu.Unlock()
				close(successor.lead)
				return
			default:
			}
		}
		// Weighted-fair pick: drain in virtual-finish-time order, so a hot
		// tenant's backlog (large, fast-growing vfts) queues behind a light
		// tenant's occasional batch. The sort is stable and per-tenant vfts
		// are strictly increasing, so per-client arrival order survives;
		// journal-overflow deferrals requeued from an earlier group carry
		// vfts below the advanced vtime and sort back to the front.
		sort.SliceStable(s.groupq, func(i, j int) bool { return s.groupq[i].vft < s.groupq[j].vft })
		var group, rest []*groupBatch
		seen := make(map[uint64]bool, len(s.groupq))
		for _, gb := range s.groupq {
			if !seen[gb.client] && len(group) < maxGroupBatches {
				seen[gb.client] = true
				group = append(group, gb)
				if gb.vft > s.vtime {
					s.vtime = gb.vft
				}
			} else {
				rest = append(rest, gb)
			}
		}
		s.groupq = rest
		s.gqMu.Unlock()
		s.runGroup(group)
	}
}

// requeueFront puts batches that did not fit the current group's journal
// window back at the front of the queue, preserving their arrival order.
func (s *Service) requeueFront(deferred []*groupBatch) {
	if len(deferred) == 0 {
		return
	}
	s.gqMu.Lock()
	s.groupq = append(append([]*groupBatch{}, deferred...), s.groupq...)
	s.gqMu.Unlock()
}

// runGroup validates, reserves, journals, fences, and applies one commit
// group, completing every batch (except journal-overflow deferrals, which
// requeue for the next group).
func (s *Service) runGroup(group []*groupBatch) {
	var deferred []*groupBatch
	s.mu.Lock()
	// Coalesce point: the group's membership is fixed; nothing is staged
	// in the journal yet, so a crash here loses only unshipped batches.
	if err := s.faults.Hit("tfs.groupcommit.coalesce"); err != nil {
		for _, gb := range group {
			gb.err = err
		}
		s.mu.Unlock()
		finishGroup(group)
		return
	}
	// Phase 1 — per batch, in arrival order: sequence gate, validation,
	// worst-case space reservation, one staged journal record. A failure
	// here is the batch's alone; the rest of the group proceeds.
	staged := make([]*groupBatch, 0, len(group))
	for _, gb := range group {
		if len(deferred) > 0 {
			// A journal-overflow deferral keeps everything behind it in
			// order: later batches (even other clients') wait for the next
			// group rather than jumping the overflowed one.
			deferred = append(deferred, gb)
			continue
		}
		st := s.client(gb.client)
		if gb.seq != 0 && gb.seq < st.lastSeq {
			gb.err = fmt.Errorf("%w: window sequence %d behind %d", ErrValidation, gb.seq, st.lastSeq)
			s.OpsRejected.Add(int64(len(gb.ops)))
			continue
		}
		acts, effects, err := s.plan(gb.client, st, gb.ops)
		if err == nil {
			// A single-shard batch must compile to actions on this shard's
			// own storage; anything else belongs in a cross-shard
			// transaction (TxApply) and is rejected with the owning shard.
			err = s.checkHomeActs(acts)
		}
		if err != nil {
			gb.err = err
			s.OpsRejected.Add(int64(len(gb.ops)))
			continue
		}
		res, demand, err := s.reserveForTenant(gb.tenant, acts)
		if err != nil &&
			(errors.Is(err, fsproto.ErrNoSpace) || errors.Is(err, fsproto.ErrQuotaExceeded)) &&
			degradeRemoves(acts) {
			// Graceful degradation on a full volume OR a full quota:
			// tombstone GC is an optimization, so pin every remove to its
			// NoGC variant and retry — deletes must keep working (and
			// freeing space) when the GC rehash's worst case can no longer
			// be reserved or charged. Without this a tenant sitting at its
			// quota could never delete its way back under it: the unlink
			// batch's transient rehash demand would itself be rejected,
			// exactly the delete-to-recover deadlock the ENOSPC path
			// already avoids.
			res, demand, err = s.reserveForTenant(gb.tenant, acts)
		}
		if err != nil {
			gb.err = err
			s.OpsRejected.Add(int64(len(gb.ops)))
			continue
		}
		s.obsReserveBytes.Observe(int64(res.HeldBytes()))
		s.obsReserveWait.Observe(time.Since(gb.t0).Nanoseconds())
		gb.acts, gb.effects, gb.res, gb.demand = acts, effects, res, demand
		if err := s.stageRecord(gb, len(staged) == 0); err != nil {
			if errors.Is(err, journalFull) {
				// The group outgrew the ring; this batch leads the next one.
				s.releaseReservation(gb)
				gb.acts, gb.effects = nil, nil
				deferred = append(deferred, gb)
				continue
			}
			gb.err = err
			s.releaseReservation(gb)
			continue
		}
		staged = append(staged, gb)
	}
	// Phase 2 — one fence for the whole group: chained-commit publish of
	// every staged record with a single BFlush + fence + tail update.
	if len(staged) > 0 {
		err := s.faults.Hit("tfs.groupcommit.fence")
		if err == nil {
			err = s.jl.Commit()
		}
		if err != nil {
			// Nothing published: drop the staged records so the journal
			// does not accumulate dead bytes across rejected groups.
			s.jl.Abort()
			for _, gb := range staged {
				gb.err = err
				s.releaseReservation(gb)
			}
			staged = staged[:0]
		} else {
			s.obsGroupFences.Inc()
			s.obsGroupBatches.Observe(int64(len(staged)))
			if len(staged) > 1 {
				s.obsGroupCoalesced.Add(int64(len(staged)))
			}
		}
	}
	// Phase 3 — apply behind the fence, checkpoint once, release.
	if len(staged) > 0 {
		s.applyGroup(staged)
		for _, gb := range staged {
			s.releaseReservation(gb)
		}
	}
	s.mu.Unlock()
	finishGroup(group, deferred...)
	s.requeueFront(deferred)
}

// stageRecord encodes and appends one batch's journal record. first marks
// the group's first record: leftover committed-and-applied records from an
// earlier apply failure may hold the space, so only the first record may
// checkpoint-and-retry (later records would erase the group's own staged
// predecessors' space accounting semantics — they just overflow).
func (s *Service) stageRecord(gb *groupBatch, first bool) error {
	payload := encodeActions(gb.acts)
	if max := s.jl.MaxPayload(); uint64(len(payload)) > max {
		return fmt.Errorf("%w: %d-byte batch, journal fits %d",
			fsproto.ErrBatchTooLarge, len(payload), max)
	}
	err := s.jl.Append(payload)
	if errors.Is(err, journalFull) && first {
		if cerr := s.jl.Checkpoint(); cerr != nil {
			return cerr
		}
		err = s.jl.Append(payload)
	}
	return err
}

// releaseReservation returns a batch's unconsumed reserved blocks, records
// estimator misses, and settles the tenant's quota reservation: worst-case
// demand comes off, actually consumed bytes become usage. Idempotent;
// callers hold s.mu.
func (s *Service) releaseReservation(gb *groupBatch) {
	if gb.res == nil {
		return
	}
	s.obsReserveFallbks.Add(int64(gb.res.Fallbacks()))
	gb.res.Release()
	s.tenantReserveDone(gb.tenant, gb.demand, gb.res.ConsumedBytes())
	gb.res, gb.demand = nil, 0
}

// finishGroup completes every batch in the group except the deferred ones.
func finishGroup(group []*groupBatch, deferred ...*groupBatch) {
	for _, gb := range group {
		requeued := false
		for _, d := range deferred {
			if d == gb {
				requeued = true
				break
			}
		}
		if !requeued {
			close(gb.done)
		}
	}
}

// applyGroup applies a committed group to its home locations and
// checkpoints the journal. Callers hold s.mu (plan and apply are mutually
// exclusive: validation reads arbitrary SCM that apply mutates).
func (s *Service) applyGroup(staged []*groupBatch) {
	// The group is committed; a crash anywhere between here and the
	// checkpoint replays every record from the journal (per-batch
	// idempotent redo).
	if err := s.faults.Hit("tfs.apply.postcommit"); err != nil {
		for _, gb := range staged {
			gb.err = err
		}
		return
	}
	// Parallel-apply start: after this point disjoint batches may be
	// mutating their home locations concurrently.
	if err := s.faults.Hit("tfs.apply.parallel"); err != nil {
		for _, gb := range staged {
			gb.err = err
		}
		return
	}
	s.scheduleApplies(staged)
	for _, gb := range staged {
		if gb.err != nil {
			// Leave the journal un-checkpointed: the failed batch's record
			// is still needed for redo, and the quarantined frees stay
			// quarantined (leaked until recovery — the safe direction,
			// which Fsck repairs).
			return
		}
	}
	if err := s.faults.Hit("tfs.apply.checkpoint"); err != nil {
		for _, gb := range staged {
			gb.err = err
		}
		return
	}
	if err := s.jl.Checkpoint(); err != nil {
		for _, gb := range staged {
			gb.err = err
		}
		return
	}
	for _, gb := range staged {
		freed := gb.df.freedBytes()
		if err := gb.df.release(); err != nil {
			gb.err = err
			continue
		}
		// The batch's deletes are performed: their bytes come back to the
		// batch's tenant (a failed release leaks the blocks until Fsck, so
		// it keeps the charge too — the safe direction).
		s.tenantCredit(gb.tenant, freed)
		for _, fn := range gb.effects {
			fn()
		}
		st := s.client(gb.client)
		if gb.seq > st.lastSeq {
			st.lastSeq = gb.seq
		}
		s.BatchesApplied.Add(1)
		s.OpsApplied.Add(int64(len(gb.ops)))
		s.obsBatchOps.Observe(int64(len(gb.ops)))
	}
}

// scheduleApplies is the conflict-tracking apply scheduler: batches run in
// commit order, but a batch only waits for earlier batches whose touched-
// object sets intersect its own; disjoint batches overlap on worker
// goroutines. A single-batch group applies inline on the leader — no
// goroutine — so fault-injected crash panics unwind on the calling
// goroutine exactly as the synchronous path did (the behavior the
// crash-sweep harness recovers).
func (s *Service) scheduleApplies(staged []*groupBatch) {
	if len(staged) == 1 {
		gb := staged[0]
		gb.df = &deferFrees{inner: gb.res}
		gb.err = s.applyBatchActions(gb)
		return
	}
	type worker struct {
		gb      *groupBatch
		touched map[sobj.OID]struct{}
		done    chan struct{}
		paniced any
	}
	var workers []*worker
	for _, gb := range staged {
		w := &worker{gb: gb, touched: s.touchedSet(gb.acts), done: make(chan struct{})}
		// Commit order for conflicts: wait for every earlier still-running
		// batch that touches any of the same objects. Waits only ever go
		// backward in commit order, so the chain cannot deadlock.
		for _, prev := range workers {
			if intersects(prev.touched, w.touched) {
				<-prev.done
			}
		}
		workers = append(workers, w)
		s.obsGroupParallel.Inc()
		go func(w *worker) {
			defer close(w.done)
			defer func() {
				// A crash-rule panic in a worker must not kill the process
				// from an untracked goroutine: capture it and let the
				// leader re-throw on its own stack.
				if r := recover(); r != nil {
					w.paniced = r
				}
			}()
			w.gb.df = &deferFrees{inner: w.gb.res}
			w.gb.err = s.applyBatchActions(w.gb)
		}(w)
	}
	for _, w := range workers {
		<-w.done
	}
	for _, w := range workers {
		if w.paniced != nil {
			panic(w.paniced)
		}
	}
}

// applyBatchActions applies one batch's actions with its own quarantined-
// free allocator. Workers for disjoint batches run this concurrently; the
// shared structures they reach (the buddy allocator, SCM persistence
// bookkeeping, metrics, fault counters) are internally synchronized, and
// object bytes are disjoint by the touched-set discipline.
func (s *Service) applyBatchActions(gb *groupBatch) error {
	for i := range gb.acts {
		if err := s.faults.Hit("tfs.apply.action"); err != nil {
			return err
		}
		if err := s.applyAction(gb.acts, i, gb.df, false); err != nil {
			return err
		}
	}
	return nil
}

// touchedSet computes the objects a validated action list writes at apply
// time. jInsert/jRemove write the collection; header actions write the
// object; prealloc tracking actions write the tracking collection. jFree
// touches only the (internally locked, deferred) allocator.
func (s *Service) touchedSet(acts []action) map[sobj.OID]struct{} {
	t := make(map[sobj.OID]struct{}, 2*len(acts))
	for i := range acts {
		ac := &acts[i]
		switch ac.code {
		case jPreallocAdd, jPreallocConsume:
			t[s.preCol.OID()] = struct{}{}
		case jFree:
		default:
			if ac.oid != 0 {
				t[ac.oid] = struct{}{}
			}
			if ac.child != 0 {
				t[ac.child] = struct{}{}
			}
		}
	}
	return t
}

func intersects(a, b map[sobj.OID]struct{}) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}
