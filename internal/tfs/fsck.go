package tfs

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// FsckReport summarizes an offline volume check.
type FsckReport struct {
	// Objects reachable from the root (collections + files).
	Objects int
	// ReachableBlocks is the number of minimum allocator blocks covered
	// by reachable extents (including tracked pre-allocations).
	ReachableBlocks int
	// AllocatedBlocks is the number marked allocated in the bitmap.
	AllocatedBlocks int
	// LeakedBlocks were allocated but unreachable (e.g. structural
	// maintenance interrupted by a crash between journal commit and
	// checkpoint; see internal/tfs/apply.go). Leaks waste space but are
	// harmless until repaired.
	LeakedBlocks int
	// LostBlocks are the dangerous inverse: reachable from the object
	// graph but marked free in the bitmap, so a future allocation could
	// hand live data to another owner. A correct volume never has any.
	LostBlocks int
	// LostAddrs lists the lost blocks' addresses (diagnostics).
	LostAddrs []uint64
	// RepairedBlocks were returned to the allocator (repair mode).
	RepairedBlocks int
}

func (r FsckReport) String() string {
	return fmt.Sprintf("fsck: %d objects, %d/%d blocks reachable, %d leaked, %d lost, %d repaired",
		r.Objects, r.ReachableBlocks, r.AllocatedBlocks, r.LeakedBlocks, r.LostBlocks, r.RepairedBlocks)
}

// Fsck runs a mark-and-sweep over the volume: every extent reachable from
// the root namespace (plus tracked pre-allocations and open-but-unlinked
// files) is marked, then the allocation bitmap is swept for unreachable
// blocks. With repair set, leaked blocks are freed. The service must be
// quiescent (no concurrent clients); run it right after recovery. On a
// sharded set reachability is a whole-volume property (directories
// reference children on any shard), so the check runs set-wide.
func (s *Service) Fsck(repair bool) (FsckReport, error) {
	if s.set != nil && len(s.set.shards) > 1 {
		return s.set.Fsck(repair)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep FsckReport
	reach := make(map[uint64]bool) // min-block addr -> reachable
	if err := s.fsckMarkLocked(&rep, reach); err != nil {
		return rep, err
	}
	rep.ReachableBlocks = len(reach)
	if err := s.fsckSweepLocked(&rep, reach, repair); err != nil {
		return rep, err
	}
	return rep, nil
}

// fsckMarkLocked marks every min-block reachable from this shard's root
// namespace, pre-allocation tracking, and open-file registrations into
// reach. The walk may cross into other shards' storage (a directory here
// can reference a child there); reach is shared set-wide for that reason.
// Callers hold s.mu.
func (s *Service) fsckMarkLocked(rep *FsckReport, reach map[uint64]bool) error {
	markExtent := func(addr, size uint64) {
		actual := alloc.BlockSize(alloc.OrderFor(size))
		for a := addr; a < addr+actual; a += alloc.MinBlock {
			reach[a&^uint64(alloc.MinBlock-1)] = true
		}
	}

	var markObject func(oid sobj.OID, depth int) error
	markObject = func(oid sobj.OID, depth int) error {
		if depth > 64 {
			return fmt.Errorf("tfs fsck: namespace deeper than 64 levels")
		}
		exts, err := s.objectExtents(oid)
		if err != nil {
			return err
		}
		rep.Objects++
		for _, e := range exts {
			markExtent(e.Addr, e.Size)
		}
		if oid.Type() == sobj.TypeCollection {
			col, err := sobj.OpenCollection(s.mem, oid)
			if err != nil {
				return err
			}
			var children []sobj.OID
			if err := col.Iterate(func(_ []byte, val sobj.OID) error {
				children = append(children, val)
				return nil
			}); err != nil {
				return err
			}
			for _, child := range children {
				if err := markObject(child, depth+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := markObject(s.root, 0); err != nil {
		return err
	}
	// The pre-allocation tracking collection (its values are extent sizes,
	// not object IDs, so mark only its own extents) and every extent it
	// tracks.
	preExts, err := s.preCol.Extents()
	if err != nil {
		return err
	}
	rep.Objects++
	for _, e := range preExts {
		markExtent(e.Addr, e.Size)
	}
	if err := s.preCol.Iterate(func(key []byte, val sobj.OID) error {
		if len(key) == 8 {
			addr := uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
				uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
			markExtent(addr, uint64(val))
		}
		return nil
	}); err != nil {
		return err
	}
	// Open-but-unlinked files are live until closed.
	for oid := range s.openFiles {
		if err := markObject(oid, 0); err != nil {
			return err
		}
	}
	return nil
}

// fsckSweepLocked sweeps this shard's allocation bitmap against the (shared)
// reach map: allocated-but-unreachable blocks are leaks (freed under
// repair); reachable addresses inside this shard's heap that its bitmap
// says are free are lost blocks. Callers hold s.mu.
func (s *Service) fsckSweepLocked(rep *FsckReport, reach map[uint64]bool, repair bool) error {
	var leaked []uint64
	allocated := make(map[uint64]bool)
	if err := s.bd.ForEachAllocated(func(addr uint64) error {
		rep.AllocatedBlocks++
		allocated[addr] = true
		if !reach[addr] {
			leaked = append(leaked, addr)
		}
		return nil
	}); err != nil {
		return err
	}
	rep.LeakedBlocks += len(leaked)
	heapEnd := s.heap[0] + s.heap[1]
	for addr := range reach {
		if addr >= s.heap[0] && addr < heapEnd && !allocated[addr] {
			rep.LostAddrs = append(rep.LostAddrs, addr)
		}
	}
	rep.LostBlocks = len(rep.LostAddrs)
	if repair {
		for _, addr := range leaked {
			if err := s.bd.Free(addr, alloc.MinBlock); err != nil {
				return err
			}
			rep.RepairedBlocks++
			s.obsFsckRepairs.Inc()
		}
	}
	return nil
}
