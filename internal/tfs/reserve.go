package tfs

import (
	"errors"
	"fmt"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Two-phase space admission (the reservation half of the exhaustion model):
// after plan validates a batch, batchDemand projects the worst-case byte
// demand of applying it — collection rehashes, overflow chaining, radix-node
// growth — and ApplyLog reserves concrete allocator blocks for all of it
// before the batch is journaled. Journal commit therefore implies the apply
// phase cannot fail on space, which is what keeps an ENOSPC from stranding
// a committed-but-half-applied batch that recovery would re-hit forever.
//
// The projection simulates per-collection geometry across the batch (an
// insert that triggers a rehash doubles the simulated bucket count for
// later inserts), so multi-op batches stay covered. Estimates are
// deliberately pessimistic; the surplus is released right after apply. If
// an estimate is ever still short, the reservation falls through to the
// shared pool and the fallback counter records the estimator bug.

// batchDemand returns the worst-case allocation sizes applying acts may
// request. Callers hold s.mu.
func (s *Service) batchDemand(acts []action) ([]uint64, error) {
	var sizes []uint64
	sims := make(map[sobj.OID]*sobj.ColGeometry)
	geom := func(oid sobj.OID) (*sobj.ColGeometry, error) {
		if g := sims[oid]; g != nil {
			return g, nil
		}
		col, err := sobj.OpenCollection(s.mem, oid)
		if err != nil {
			return nil, err
		}
		g, err := col.Geometry()
		if err != nil {
			return nil, err
		}
		sims[oid] = &g
		return &g, nil
	}
	rehash := func(g *sobj.ColGeometry, newNB uint32) {
		sizes = append(sizes, sobj.TableSizeFor(newNB))
		spill := g.RehashOverflowBound()
		for i := 0; i < spill; i++ {
			sizes = append(sizes, sobj.OverflowExtentSize)
		}
		g.Buckets = newNB
		g.TableSize = sobj.TableSizeFor(newNB)
		g.Overflow = spill
		g.Tombs = 0
	}
	insert := func(oid sobj.OID) error {
		g, err := geom(oid)
		if err != nil {
			return err
		}
		if g.GrowThreshold() {
			rehash(g, g.Buckets*2)
		}
		// The insert itself may chain one overflow extent.
		sizes = append(sizes, sobj.OverflowExtentSize)
		g.Overflow++
		g.Count++
		return nil
	}
	remove := func(oid sobj.OID) error {
		g, err := geom(oid)
		if err != nil {
			return err
		}
		if g.Count > 0 {
			g.Count--
		}
		g.Tombs++
		if g.Tombs > 16 && g.Tombs > g.Count/2 {
			// Tombstone GC rehashes at the current bucket count.
			rehash(g, g.Buckets)
		}
		return nil
	}
	for i := range acts {
		ac := &acts[i]
		switch ac.code {
		case jInsert:
			if err := insert(ac.oid); err != nil {
				return nil, err
			}
		case jRemove:
			if ac.a&1 == 0 { // NoGC removes never rehash
				if err := remove(ac.oid); err != nil {
					return nil, err
				}
			}
		case jAttach:
			m, err := sobj.OpenMFile(s.mem, ac.oid)
			if err != nil {
				return nil, err
			}
			need, err := m.AttachDemand(ac.a)
			if err != nil {
				return nil, err
			}
			sizes = append(sizes, need...)
		case jPreallocAdd:
			if err := insert(s.preCol.OID()); err != nil {
				return nil, err
			}
		case jPreallocConsume:
			if err := remove(s.preCol.OID()); err != nil {
				return nil, err
			}
		}
	}
	return sizes, nil
}

// reserveFor projects acts' worst-case demand and reserves it from the
// allocator, translating exhaustion into typed fsproto.ErrNoSpace. Callers
// hold s.mu and must Release the reservation (idempotent) when done. This
// is the quota-exempt form used by recovery (orphan resolution has no
// client to bill); client batches go through reserveForTenant.
func (s *Service) reserveFor(acts []action) (*alloc.Reservation, error) {
	demand, err := s.batchDemand(acts)
	if err != nil {
		return nil, err
	}
	res, err := s.bd.Reserve(demand)
	if err != nil {
		if errors.Is(err, alloc.ErrNoSpace) || errors.Is(err, alloc.ErrTooLarge) {
			return nil, fmt.Errorf("%w: cannot reserve worst-case demand: %v", fsproto.ErrNoSpace, err)
		}
		return nil, err
	}
	return res, nil
}

// reserveForTenant is reserveFor with quota enforcement: the worst-case
// demand (rounded to the block sizes the allocator would really serve) is
// charged against the tenant's quota BEFORE any block is reserved, so a
// quota rejection is batch-atomic exactly like the exhaustion path — typed
// fsproto.ErrQuotaExceeded, volume untouched. Returns the charged demand;
// the caller settles it with tenantReserveDone when the reservation
// releases. Callers hold s.mu.
func (s *Service) reserveForTenant(tenant uint32, acts []action) (*alloc.Reservation, uint64, error) {
	demand, err := s.batchDemand(acts)
	if err != nil {
		return nil, 0, err
	}
	var demandB uint64
	for _, sz := range demand {
		demandB += alloc.BlockSize(alloc.OrderFor(sz))
	}
	if err := s.tenantReserve(tenant, demandB); err != nil {
		return nil, 0, err
	}
	res, err := s.bd.Reserve(demand)
	if err != nil {
		s.tenantReserveDone(tenant, demandB, 0)
		if errors.Is(err, alloc.ErrNoSpace) || errors.Is(err, alloc.ErrTooLarge) {
			return nil, 0, fmt.Errorf("%w: cannot reserve worst-case demand: %v", fsproto.ErrNoSpace, err)
		}
		return nil, 0, err
	}
	return res, demandB, nil
}

// degradeRemoves switches every GC-eligible remove in acts to its NoGC
// variant (journaled that way, so replay matches). Returns whether anything
// changed.
func degradeRemoves(acts []action) bool {
	changed := false
	for i := range acts {
		if acts[i].code == jRemove && acts[i].a&1 == 0 {
			acts[i].a |= 1
			changed = true
		}
	}
	return changed
}

// busyError is the admission-control shed outcome: typed as
// fsproto.ErrBusy across the wire, carrying the retry-after hint.
type busyError struct{ retryMs uint32 }

func (e *busyError) Error() string {
	return fmt.Sprintf("%v (retry after %dms)", fsproto.ErrBusy, e.retryMs)
}
func (e *busyError) Unwrap() error        { return fsproto.ErrBusy }
func (e *busyError) RetryAfterMs() uint32 { return e.retryMs }

// quotaError is the quota-enforcement outcome: typed as
// fsproto.ErrQuotaExceeded (stable code, distinct from ErrNoSpace — the
// volume has room, this tenant does not), carrying a retry-after hint when
// the tenant's own in-flight reservations may release enough to admit a
// retry.
type quotaError struct {
	retryMs           uint32
	tenant            uint32
	need, held, quota uint64
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("%v: tenant %d needs %d bytes over %d used+reserved of %d quota",
		fsproto.ErrQuotaExceeded, e.tenant, e.need, e.held, e.quota)
}
func (e *quotaError) Unwrap() error        { return fsproto.ErrQuotaExceeded }
func (e *quotaError) RetryAfterMs() uint32 { return e.retryMs }

// admit applies backpressure before a request queues on s.mu: bounded total
// in-flight batch bytes and per-client depth. Returns a typed busyError
// when shedding. A request is always admitted when nothing is in flight so
// an over-limit batch cannot starve forever.
//
// Overload degradation is weight-aware: past the global byte budget, only
// tenants over their weight-proportional share of it are shed — the
// lowest-weight flood is pushed back first while an under-share tenant's
// request still goes through (the overshoot is bounded: at most one extra
// batch per under-share tenant). Shedding happens before admission, so
// nothing admitted can later fail for overload reasons.
func (s *Service) admit(client uint64, tenant uint32, bytes int64) error {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	if s.admTenBytes == nil {
		s.admTenBytes = make(map[uint32]int64)
	}
	overDepth := s.cfg.MaxClientInflight > 0 && s.admPerClient[client] >= s.cfg.MaxClientInflight
	overBytes := false
	var fair int64
	if s.cfg.MaxInflightBytes > 0 && s.admBytes > 0 && s.admBytes+bytes > s.cfg.MaxInflightBytes {
		fair = s.fairShareLocked(tenant)
		overBytes = s.admTenBytes[tenant]+bytes > fair
	}
	if overBytes || overDepth {
		s.BatchesShed.Add(1)
		s.obsSheds.Inc()
		s.tenantShed(tenant)
		return &busyError{retryMs: s.backlogHintLocked(tenant, fair)}
	}
	s.admBytes += bytes
	s.admTenBytes[tenant] += bytes
	s.admPerClient[client]++
	return nil
}

// fairShareLocked returns the tenant's weight-proportional slice of the
// in-flight byte budget, computed over the tenants currently holding
// admitted bytes plus the asker. Callers hold admMu.
func (s *Service) fairShareLocked(tenant uint32) int64 {
	w := int64(s.tenantWeight(tenant))
	totalW := w
	for id, b := range s.admTenBytes {
		if id != tenant && b > 0 {
			totalW += int64(s.tenantWeight(id))
		}
	}
	if totalW <= 0 {
		totalW = 1
	}
	return s.cfg.MaxInflightBytes * w / totalW
}

// backlogHintLocked shapes a shed's retry-after hint by the tenant's own
// backlog: a tenant N fair-shares deep is told to wait N+1 base intervals
// (capped at 250ms), so a flood spreads its retries out instead of
// hammering the admission gate in lockstep. Callers hold admMu.
func (s *Service) backlogHintLocked(tenant uint32, fair int64) uint32 {
	base := s.cfg.RetryAfterHint.Milliseconds()
	if base <= 0 {
		base = 1
	}
	ms := base
	if fair > 0 {
		ms = base * (1 + s.admTenBytes[tenant]/fair)
	}
	if ms > 250 {
		ms = 250
	}
	return uint32(ms)
}

// admitDone releases the admission debt taken by admit.
func (s *Service) admitDone(client uint64, tenant uint32, bytes int64) {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	s.admBytes -= bytes
	if s.admTenBytes[tenant] -= bytes; s.admTenBytes[tenant] <= 0 {
		delete(s.admTenBytes, tenant)
	}
	if s.admPerClient[client]--; s.admPerClient[client] <= 0 {
		delete(s.admPerClient, client)
	}
}
