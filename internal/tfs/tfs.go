// Package tfs implements Aerie's Trusted File System service (§4.2, §5.3):
// the user-mode process that enforces metadata integrity and concurrency
// control for mutually distrustful clients. It owns the volume's buddy
// allocator and redo journal, runs the distributed lock service, validates
// client metadata-update batches (structure, locks held, allocations
// legitimate, namespace invariants), applies them crash-consistently, and
// tracks open-but-unlinked files and per-client pre-allocated objects
// (WAFL-style leak prevention, §5.3.7).
package tfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/journal"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Volume superblock, at the start of the partition:
//
//	0x00 u64 magic
//	0x08 u64 root collection OID
//	0x10 u64 journal base   0x18 u64 journal size
//	0x20 u64 alloc bitmap address
//	0x28 u64 heap start     0x30 u64 heap size
//	0x38 u64 prealloc-tracking collection OID
//	0x40 u32 volume GID
//	0x48 u64 transaction side-log base   0x50 u64 transaction side-log size
//	0x58 u64 transaction generation (bumped once per attach; shard 0 only)
//
// txBase == 0 marks a volume formatted before cross-shard transactions; such
// a volume runs single-shard with no side-log.
const (
	sbMagic       = 0xae81ef5000000001
	offSBMagic    = 0x00
	offSBRoot     = 0x08
	offSBJBase    = 0x10
	offSBJSize    = 0x18
	offSBBitmap   = 0x20
	offSBHeap     = 0x28
	offSBHeapSize = 0x30
	offSBPrealloc = 0x38
	offSBGID      = 0x40
	offSBTxBase   = 0x48
	offSBTxSize   = 0x50
	offSBTxGen    = 0x58
)

// Errors.
var (
	ErrNotFormatted = errors.New("tfs: volume not formatted")
	ErrValidation   = errors.New("tfs: validation failed")
	ErrLockCover    = errors.New("tfs: required lock not held")
	ErrNotPrealloc  = errors.New("tfs: extent was not pre-allocated to client")
	ErrCycle        = errors.New("tfs: rename would create a namespace cycle")
)

// Config tunes the service.
type Config struct {
	// JournalSize is the redo-log region size (default 4 MiB).
	JournalSize uint64
	// Lease and AcquireTimeout configure the lock service.
	Lease          time.Duration
	AcquireTimeout time.Duration
	// VolumeGID is the extent ACL group for the whole volume (default 100).
	VolumeGID uint32
	// Costs injects modeled latencies (may be nil).
	Costs *costmodel.Costs
	// MaxInflightBytes bounds the total encoded batch bytes admitted into
	// the service at once; requests over the limit are shed with
	// fsproto.ErrBusy (default 64 MiB, -1 disables). A single batch is
	// always admitted when nothing else is in flight, so the limit can
	// never wedge a client.
	MaxInflightBytes int64
	// MaxClientInflight bounds the per-client admitted request depth
	// (default 4, -1 disables).
	MaxClientInflight int
	// RetryAfterHint is the backpressure hint attached to shed requests
	// (default 5ms); the client's jittered backoff uses it as a floor.
	// Weight-aware shedding scales it by the tenant's backlog depth, and
	// quota rejections reuse it when a same-tenant reservation in flight
	// could release enough to admit a retry.
	RetryAfterHint time.Duration
	// Tenants is the boot-time tenant policy (weights and quotas), applied
	// to every shard before the service starts accepting requests. Policy
	// is volatile — MethodTenantCtl changes live only until restart, when
	// this map is re-applied. Unlisted tenants default to weight 1 with no
	// quota.
	Tenants map[uint32]TenantConfig
	// Faults, when non-nil, arms fault points on the service's mutation
	// paths (tfs.*), its journal (journal.*), and its allocator (alloc.*).
	// Nil in production.
	Faults *faultinject.Injector
	// Obs, when non-nil, wires per-layer observability: the service's
	// tfs.batch.ops histogram and tfs.fsck.repairs counter, plus the
	// journal and lock-service metrics (the sink is shared down the
	// stack so the breakdown can relate them).
	Obs *obs.Sink
}

// Service is a running TFS instance for one volume.
type Service struct {
	mgr  *scmmgr.Manager
	proc *scmmgr.Process // the TFS's privileged identity (partition owner)
	part scmmgr.PartitionID
	mem  *scm.Memory // privileged access
	cfg  Config

	srv   *rpc.Server
	Locks *lockservice.Service

	// mu serializes metadata validation, journaling, and application.
	mu     sync.Mutex
	bd     *alloc.Buddy
	jl     *journal.Log
	root   sobj.OID
	preCol *sobj.Collection // persistent pre-allocation tracking
	gid    uint32
	heap   [2]uint64 // start, size

	clients map[uint64]*clientState
	// openFiles tracks files kept alive while unlinked (§6.1).
	openFiles map[sobj.OID]*openState

	faults *faultinject.Injector

	// Sharding (shardset.go). Every Service belongs to a ShardSet — the
	// single-shard case is a set of one — and shardID is its index there.
	// tx is the transaction side-log (nil on pre-sharding volumes), and
	// planAcrossShards widens plan's placement checks while a cross-shard
	// transaction holds every shard's mutex.
	set              *ShardSet
	shardID          int
	tx               *txState
	sbBase           uint64
	txBase, txSize   uint64
	planAcrossShards bool

	// Group commit (groupcommit.go): handler goroutines enqueue batches
	// under gqMu; the first enqueuer with no leader running becomes the
	// leader and drains the queue group by group under s.mu.
	gqMu     sync.Mutex
	groupq   []*groupBatch
	leaderOn bool

	// Per-client window sequence gates (groupcommit.go): pipelined sessions
	// ship several sequenced batches concurrently, and the gate makes their
	// server-side outcomes follow window order. Tracked outside mu so a
	// handler waiting for an out-of-order sibling never holds the service
	// mutex.
	gateMu sync.Mutex
	gates  map[uint64]*seqGate

	// Admission control (backpressure): tracked outside mu so shedding
	// happens before a request ever queues on the service mutex.
	// admTenBytes splits the admitted bytes by tenant for the weight-aware
	// overload degradation (reserve.go).
	admMu        sync.Mutex
	admBytes     int64
	admPerClient map[uint64]int
	admTenBytes  map[uint32]int64

	// Multi-tenancy (tenant.go): per-tenant policy (weight, quota), space
	// accounting, and the session -> tenant binding made at Mount. Guarded
	// by tenMu alone — never s.mu — so TenantRows stays readable while the
	// shard mutex is held, including mid-2PC.
	tenMu     sync.Mutex
	tenants   map[uint32]*tenantState
	clientTen map[uint64]uint32
	metric    func(string) string // shard-prefixed metric names

	// Weighted-fair queueing state, under gqMu: the scheduler's virtual
	// time and each tenant's last assigned virtual finish time
	// (groupcommit.go).
	vtime  float64
	tenVft map[uint32]float64

	// Stats.
	BatchesApplied costmodel.Counter
	OpsApplied     costmodel.Counter
	OpsRejected    costmodel.Counter
	BatchesShed    costmodel.Counter

	// Metrics resolved once in Serve; all nil when cfg.Obs is nil.
	obsBatchOps       *obs.Histogram // ops per applied batch
	obsFsckRepairs    *obs.Counter
	obsReserveBytes   *obs.Histogram // reserved bytes per admitted batch
	obsReserveWait    *obs.Histogram // ns from admission to reservation held
	obsReserveFallbks *obs.Counter   // apply allocs the reservation missed
	obsSheds          *obs.Counter   // requests shed with ErrBusy
	obsGroupBatches   *obs.Histogram // batches published per fence
	obsGroupFences    *obs.Counter   // fenced group commits
	obsGroupCoalesced *obs.Counter   // batches that shared a fence (groups >1)
	obsGroupParallel  *obs.Counter   // batches applied on scheduler workers
}

type clientState struct {
	uid      uint32
	prealloc map[uint64]uint64 // extent addr -> size
	// lastSeq is the highest window sequence number applied for this
	// session; ApplyLogSeq rejects a batch sequenced behind it.
	lastSeq uint64
}

type openState struct {
	opens    int
	unlinked bool
}

// FormatVolume lays out a fresh volume in the partition: superblock, redo
// journal, allocation bitmap, heap, root directory collection, and the
// pre-allocation tracking collection. The whole partition gets a
// volume-wide extent ACL so members of the volume group can read metadata
// and read/write data directly (per-object protection changes go through
// MethodChmod, which narrows extents).
func FormatVolume(mgr *scmmgr.Manager, proc *scmmgr.Process, part scmmgr.PartitionID, cfg Config) error {
	mem := mgr.Mem()
	info, err := mgr.Partition(part)
	if err != nil {
		return err
	}
	if cfg.JournalSize == 0 {
		cfg.JournalSize = 4 << 20
	}
	if cfg.VolumeGID == 0 {
		cfg.VolumeGID = 100
	}
	base := info.Start
	jBase := base + scm.PageSize
	jSize := cfg.JournalSize
	// Transaction side-log: small — it only ever holds prepare/outcome/
	// tombstone records for in-flight cross-shard transactions — but it must
	// clear the journal's minimum region (header + 4 pages).
	txSize := jSize / 8
	if txSize < 8*scm.PageSize {
		txSize = 8 * scm.PageSize
	}
	txBase := jBase + jSize
	bitmapAddr := txBase + txSize
	// Heap begins after the bitmap; compute with the final heap size.
	heapStart := bitmapAddr
	heapSize := uint64(0)
	for {
		// Iterate: bitmap size depends on heap size.
		hs := info.Start + info.Size - heapStart
		bm := alloc.BitmapBytes(hs)
		newStart := (bitmapAddr + bm + scm.PageSize - 1) / scm.PageSize * scm.PageSize
		if newStart == heapStart {
			heapSize = info.Start + info.Size - heapStart
			break
		}
		heapStart = newStart
	}
	heapSize = heapSize / alloc.MinBlock * alloc.MinBlock
	if heapSize < 16*alloc.MinBlock {
		return fmt.Errorf("tfs: partition too small for a volume")
	}
	// Volume-wide protection: group cfg.VolumeGID gets read/write.
	npages := int(info.Size / scm.PageSize)
	if err := mgr.CreateExtent(proc, part, info.Start, npages,
		scmmgr.MakeACL(cfg.VolumeGID, scmmgr.RightRead|scmmgr.RightWrite)); err != nil {
		return err
	}
	bd, err := alloc.Format(mem, bitmapAddr, heapStart, heapSize)
	if err != nil {
		return err
	}
	if _, err := journal.Format(mem, jBase, jSize); err != nil {
		return err
	}
	if _, err := journal.Format(mem, txBase, txSize); err != nil {
		return err
	}
	root, err := sobj.CreateCollection(mem, bd, 0755)
	if err != nil {
		return err
	}
	pre, err := sobj.CreateCollection(mem, bd, 0)
	if err != nil {
		return err
	}
	// Superblock fields, magic last.
	if err := scm.Write64(mem, base+offSBRoot, uint64(root.OID())); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBJBase, jBase); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBJSize, jSize); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBBitmap, bitmapAddr); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBHeap, heapStart); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBHeapSize, heapSize); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBPrealloc, uint64(pre.OID())); err != nil {
		return err
	}
	if err := scm.Write32(mem, base+offSBGID, cfg.VolumeGID); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBTxBase, txBase); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBTxSize, txSize); err != nil {
		return err
	}
	if err := scm.Write64(mem, base+offSBTxGen, 0); err != nil {
		return err
	}
	if err := mem.Flush(base, scm.PageSize); err != nil {
		return err
	}
	mem.Fence()
	return scm.Write64Flush(mem, base+offSBMagic, sbMagic)
}

// Serve attaches a TFS to a formatted volume, recovers from the journal,
// scavenges pre-allocations orphaned by the restart, and registers RPC
// handlers (its own and the lock service's) on srv. It is the single-shard
// case of ServeShards (shardset.go).
func Serve(srv *rpc.Server, mgr *scmmgr.Manager, proc *scmmgr.Process, part scmmgr.PartitionID, cfg Config) (*Service, error) {
	set, err := ServeShards(srv, mgr, proc, []scmmgr.PartitionID{part}, cfg)
	if err != nil {
		return nil, err
	}
	return set.Shard(0), nil
}

// Root returns the volume's root collection OID.
func (s *Service) Root() sobj.OID { return s.root }

// VolumeGID returns the volume's extent ACL group.
func (s *Service) VolumeGID() uint32 { return s.gid }

// FreeBytes reports the allocator's free space (excluding open
// reservations).
func (s *Service) FreeBytes() uint64 { return s.bd.FreeBytes() }

// ReservedBytes reports bytes held by open admission reservations.
func (s *Service) ReservedBytes() uint64 { return s.bd.ReservedBytes() }

// FragStats reports the allocator's fragmentation profile (free-list shape,
// largest contiguous run, fragmentation index). The aging harness samples it
// between churn rounds to track how the buddy free lists degrade over a long
// workload.
func (s *Service) FragStats() alloc.FragStats { return s.bd.FragStats() }

// JournalIdle reports whether the redo journal holds no committed,
// un-checkpointed batch. With the one-group recovery invariant it must be
// true whenever the service is quiescent; the exhaustion sweep asserts it
// after every operation to prove no batch was stranded half-applied.
func (s *Service) JournalIdle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jl.Empty()
}

// Statfs reports volume-wide space and object accounting. The object count
// walks the namespace under the service mutex — cheap for interactive `df`,
// not meant for per-request hot paths. On a sharded set the whole-volume
// view lives on the set; asking any one shard answers for all of them.
func (s *Service) Statfs() (fsproto.StatfsReply, error) {
	if s.set != nil && len(s.set.shards) > 1 {
		return s.set.Statfs()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := fsproto.StatfsReply{
		TotalBytes:     s.bd.HeapSize(),
		FreeBytes:      s.bd.FreeBytes(),
		ReservedBytes:  s.bd.ReservedBytes(),
		BatchesApplied: uint64(s.BatchesApplied.Load()),
	}
	var count func(oid sobj.OID, depth int) error
	count = func(oid sobj.OID, depth int) error {
		if depth > 64 {
			return fmt.Errorf("tfs: namespace deeper than 64 levels")
		}
		rep.Objects++
		if oid.Type() != sobj.TypeCollection {
			return nil
		}
		col, err := sobj.OpenCollection(s.mem, oid)
		if err != nil {
			return err
		}
		var children []sobj.OID
		if err := col.Iterate(func(_ []byte, val sobj.OID) error {
			children = append(children, val)
			return nil
		}); err != nil {
			return err
		}
		for _, child := range children {
			if err := count(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := count(s.root, 0); err != nil {
		return rep, err
	}
	return rep, nil
}

// recover replays the redo journal after a crash.
func (s *Service) recover() error {
	// The fault point fires before the empty check so "crash at recovery
	// entry" is reachable even when there is nothing to replay.
	if err := s.faults.Hit("tfs.recover"); err != nil {
		return err
	}
	if s.jl.Empty() {
		return nil
	}
	// Replay frees are quarantined exactly like apply frees: until the
	// checkpoint erases the batch, a freed block keeps its bitmap bit so a
	// second replay (crash during this recovery) can only re-quarantine it,
	// never free a reused live block.
	df := &deferFrees{inner: tolerantAlloc{s.bd}}
	if err := s.jl.Replay(func(payload []byte) error {
		acts, err := decodeActions(payload)
		if err != nil {
			return err
		}
		for i := range acts {
			if err := s.applyAction(acts, i, df, true); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Between replay and checkpoint the journal still holds the batch; a
	// crash here forces the next recovery to replay it a second time, which
	// the idempotent-redo rules must absorb without allocating anything.
	if err := s.faults.Hit("tfs.recover.postreplay"); err != nil {
		return err
	}
	if err := s.jl.Checkpoint(); err != nil {
		return err
	}
	return df.release()
}

// scavengePreallocs frees every tracked pre-allocated extent.
func (s *Service) scavengePreallocs() error {
	type ent struct {
		addr, size uint64
	}
	var ents []ent
	if err := s.preCol.Iterate(func(key []byte, val sobj.OID) error {
		if len(key) != 8 {
			return fmt.Errorf("tfs: corrupt prealloc key")
		}
		addr := uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
			uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
		ents = append(ents, ent{addr, uint64(val)})
		return nil
	}); err != nil {
		return err
	}
	for _, e := range ents {
		// A crash here leaves some orphans freed and some still tracked;
		// the next restart's scavenge must finish the job.
		if err := s.faults.Hit("tfs.scavenge"); err != nil {
			return err
		}
		if err := s.bd.Free(e.addr, e.size); err != nil && !errors.Is(err, alloc.ErrBadFree) {
			return err
		}
		if err := s.preCol.Remove(s.bd, addrKey(e.addr)); err != nil && !errors.Is(err, sobj.ErrNotFound) {
			return err
		}
	}
	return nil
}

func addrKey(addr uint64) []byte {
	return []byte{byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24),
		byte(addr >> 32), byte(addr >> 40), byte(addr >> 48), byte(addr >> 56)}
}

// dropClient discards a departed client's state. Its unshipped updates were
// never seen; its pre-allocated extents are reclaimed (§4.3: lock
// revocation implicitly discards outstanding updates).
func (s *Service) dropClient(client uint64) {
	s.dropClientState(client)
	if s.Locks != nil {
		s.Locks.ReleaseAll(client)
	}
}

// dropClientState reclaims the client's shard-local state only; the set
// drops every shard's state this way, then releases locks once. The freed
// pre-allocations are credited back to the tenant the session mounted as.
func (s *Service) dropClientState(client uint64) {
	tenant := s.clientTenant(client)
	var credit uint64
	s.mu.Lock()
	st := s.clients[client]
	delete(s.clients, client)
	if st != nil {
		for addr, size := range st.prealloc {
			if err := s.bd.Free(addr, size); err == nil {
				_ = s.preCol.Remove(s.bd, addrKey(addr))
				credit += size
			}
		}
	}
	s.mu.Unlock()
	s.tenantCredit(tenant, credit)
	s.dropClientTenant(client)
}

func (s *Service) client(id uint64) *clientState {
	st := s.clients[id]
	if st == nil {
		st = &clientState{prealloc: make(map[uint64]uint64)}
		s.clients[id] = st
	}
	return st
}

// Mount registers a client and returns volume geometry.
func (s *Service) Mount(client uint64, uid uint32) fsproto.MountReply {
	s.mu.Lock()
	st := s.client(client)
	st.uid = uid
	s.mu.Unlock()
	s.srv.OnDisconnect(client, func() { s.dropClient(client) })
	return fsproto.MountReply{
		Root:      s.root,
		HeapStart: s.heap[0],
		HeapSize:  s.heap[1],
		Partition: uint32(s.part),
		VolumeGID: s.gid,
	}
}

// Prealloc allocates count extents of the given size for the client,
// journaled with tracking entries so a crash cannot leak them.
func (s *Service) Prealloc(client uint64, size uint64, count uint32) ([]uint64, error) {
	if count == 0 || count > 4096 || size == 0 || size > 64<<20 {
		return nil, fmt.Errorf("%w: prealloc %d x %d bytes", ErrValidation, count, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.client(client)
	tenant := s.clientTenant(client)
	addrs := make([]uint64, 0, count)
	actual := alloc.BlockSize(alloc.OrderFor(size))
	// Pre-allocated extents bypass the batch reservation path, so their
	// quota charge happens here: the worst case up front (batch-atomic,
	// before any block is allocated), settled on exit by whether the
	// extents actually stayed allocated.
	extentB := uint64(count) * actual
	if err := s.tenantReserve(tenant, extentB); err != nil {
		return nil, err
	}
	charged := extentB
	defer func() { s.tenantReserveDone(tenant, extentB, charged) }()
	rollback := func() {
		for _, got := range addrs {
			_ = s.bd.Free(got, actual)
		}
		charged = 0
	}
	for i := uint32(0); i < count; i++ {
		a, err := s.bd.Alloc(size)
		if err != nil {
			rollback()
			if errors.Is(err, alloc.ErrNoSpace) || errors.Is(err, alloc.ErrTooLarge) {
				return nil, fmt.Errorf("%w: prealloc %dx%d: %v", fsproto.ErrNoSpace, count, size, err)
			}
			return nil, err
		}
		addrs = append(addrs, a)
	}
	// Journal and track.
	var acts []action
	for _, a := range addrs {
		acts = append(acts, action{code: jPreallocAdd, a: a, b: actual})
	}
	// Reserve the tracking inserts' worst case before commit so apply
	// cannot fail on space.
	res, demand, err := s.reserveForTenant(tenant, acts)
	if err != nil {
		rollback()
		return nil, err
	}
	defer func() {
		s.obsReserveFallbks.Add(int64(res.Fallbacks()))
		res.Release()
		s.tenantReserveDone(tenant, demand, res.ConsumedBytes())
	}()
	if err := s.commitActions(acts); err != nil {
		rollback()
		return nil, err
	}
	// Tracking entries are committed but not yet applied; a crash here
	// must still reclaim the extents via replay + scavenge.
	if err := s.faults.Hit("tfs.prealloc.postcommit"); err != nil {
		return nil, err
	}
	if err := s.applyAll(acts, res, tenant); err != nil {
		return nil, err
	}
	for _, a := range addrs {
		st.prealloc[a] = actual
	}
	return addrs, nil
}

// OpenFile notes that a client has the file open while releasing its lock
// (§6.1): the file must survive unlink until closed.
func (s *Service) OpenFile(client uint64, oid sobj.OID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.openFiles[oid]
	if st == nil {
		st = &openState{}
		s.openFiles[oid] = st
	}
	st.opens++
}

// CloseFile ends an open-file registration; the last close of an unlinked
// file reclaims its storage.
func (s *Service) CloseFile(client uint64, oid sobj.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.openFiles[oid]
	if st == nil {
		return nil
	}
	st.opens--
	if st.opens > 0 {
		return nil
	}
	delete(s.openFiles, oid)
	if st.unlinked {
		return s.destroyObject(oid)
	}
	return nil
}

// Chmod updates FS-level permission bits; when hwProtect is set it also
// narrows the memory protection of the object's extents (the expensive
// path measured in §7.2.1).
func (s *Service) Chmod(client uint64, oid sobj.OID, perm uint32, hwProtect bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := sobj.ReadHeader(s.mem, oid); err != nil {
		return err
	}
	acts := []action{{code: jSetPerm, oid: oid, a: uint64(perm)}}
	if err := s.commitActions(acts); err != nil {
		return err
	}
	if err := s.faults.Hit("tfs.chmod.postcommit"); err != nil {
		return err
	}
	if err := s.applyAll(acts, s.bd, s.clientTenant(client)); err != nil {
		return err
	}
	if hwProtect {
		rights := uint32(0)
		if perm&0444 != 0 {
			rights |= scmmgr.RightRead
		}
		if perm&0222 != 0 {
			rights |= scmmgr.RightWrite
		}
		newACL := scmmgr.MakeACL(s.gid, rights)
		// FS perm bits are durable but the extent ACLs are not yet
		// narrowed — the window the paper closes by redoing protection
		// from the journaled perm on recovery.
		if err := s.faults.Hit("tfs.chmod.protect"); err != nil {
			return err
		}
		if err := s.protectObjectExtents(oid, newACL); err != nil {
			return err
		}
	}
	return nil
}

// protectObjectExtents applies acl to the pages of every extent of oid
// (§5.3.3: the service propagates protection down to the object's extents).
func (s *Service) protectObjectExtents(oid sobj.OID, acl scmmgr.ACL) error {
	mprot := func(addr, size uint64) error {
		npages := int((size + scm.PageSize - 1) / scm.PageSize)
		pageAddr := addr &^ uint64(scm.PageSize-1)
		return s.mgr.MProtectExtent(s.proc, s.part, pageAddr, npages, acl)
	}
	switch oid.Type() {
	case sobj.TypeMFile:
		m, err := sobj.OpenMFile(s.mem, oid)
		if err != nil {
			return err
		}
		size, err := m.Size()
		if err != nil {
			return err
		}
		bs, err := m.BlockSize()
		if err != nil {
			return err
		}
		if single, _ := m.IsSingle(); single {
			ext, err := m.ExtentFor(0)
			if err != nil {
				return err
			}
			if ext != 0 {
				return mprot(ext, size)
			}
			return nil
		}
		for off := uint64(0); off < size; off += bs {
			ext, err := m.ExtentFor(off)
			if err != nil {
				return err
			}
			if ext != 0 {
				if err := mprot(ext, bs); err != nil {
					return err
				}
			}
		}
		return nil
	case sobj.TypeCollection:
		// Protect the head page; table extents keep the volume ACL so
		// other readers can still traverse if FS-level perms allow.
		return mprot(oid.Addr(), scm.PageSize)
	default:
		return fmt.Errorf("%w: chmod on %v", ErrValidation, oid)
	}
}

// destroyObject frees an object's storage.
func (s *Service) destroyObject(oid sobj.OID) error {
	switch oid.Type() {
	case sobj.TypeCollection:
		c, err := sobj.OpenCollection(s.mem, oid)
		if err != nil {
			return err
		}
		return c.Destroy(s.bd)
	case sobj.TypeMFile:
		m, err := sobj.OpenMFile(s.mem, oid)
		if err != nil {
			return err
		}
		return m.Destroy(s.bd)
	}
	return fmt.Errorf("%w: destroy %v", ErrValidation, oid)
}
