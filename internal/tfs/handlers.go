package tfs

import (
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/journal"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// lockX aliases the exclusive lock class for validation checks.
const (
	lockX  = lockservice.X
	lockIX = lockservice.IX
)

func journalErrFull() error { return journal.ErrFull }

// registerHandlers wires the set's RPC methods. The legacy unframed methods
// (ApplyLog, ApplyLogSeq, Prealloc) bind to shard 0 — a single-shard volume
// behaves exactly as before sharding; on a multi-shard volume a legacy
// client can still operate on shard 0's namespace. OID-addressed methods
// route by the object's owning shard; shard-framed methods carry the shard
// and routing epoch explicitly.
func (set *ShardSet) registerHandlers() {
	srv := set.srv
	s0 := set.shards[0]
	srv.Register(fsproto.MethodMount, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		uid := r.U32()
		// Optional tenant binding after the UID; absent on legacy mounts,
		// which land in the default tenant (0: weight 1, no quota).
		var tenant uint32
		if len(req) >= 8 {
			tenant = r.U32()
		}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		reply := set.Mount(client, uid, tenant)
		return fsproto.EncodeMountReply(&reply), nil
	})
	srv.Register(fsproto.MethodPrealloc, func(client uint64, req []byte) ([]byte, error) {
		q, err := fsproto.DecodePrealloc(req)
		if err != nil {
			return nil, err
		}
		addrs, err := s0.Prealloc(client, q.Size, q.Count)
		if err != nil {
			return nil, err
		}
		return fsproto.EncodeAddrs(addrs), nil
	})
	srv.Register(fsproto.MethodPreallocShard, func(client uint64, req []byte) ([]byte, error) {
		h, inner, err := fsproto.DecodeShardFramed(req)
		if err != nil {
			return nil, err
		}
		if err := set.checkFrame(h); err != nil {
			return nil, err
		}
		q, err := fsproto.DecodePrealloc(inner)
		if err != nil {
			return nil, err
		}
		addrs, err := set.shards[h.Shard].Prealloc(client, q.Size, q.Count)
		if err != nil {
			return nil, err
		}
		return fsproto.EncodeAddrs(addrs), nil
	})
	srv.Register(fsproto.MethodApplyLog, func(client uint64, req []byte) ([]byte, error) {
		return nil, s0.ApplyLog(client, req)
	})
	srv.Register(fsproto.MethodApplyLogSeq, func(client uint64, req []byte) ([]byte, error) {
		return nil, s0.ApplyLogSeq(client, req)
	})
	srv.Register(fsproto.MethodApplyLogShard, func(client uint64, req []byte) ([]byte, error) {
		h, inner, err := fsproto.DecodeShardFramed(req)
		if err != nil {
			return nil, err
		}
		if err := set.checkFrame(h); err != nil {
			return nil, err
		}
		return nil, set.shards[h.Shard].ApplyLogSeq(client, inner)
	})
	srv.Register(fsproto.MethodTxApply, func(client uint64, req []byte) ([]byte, error) {
		return nil, set.TxApply(client, req)
	})
	srv.Register(fsproto.MethodChmod, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		perm := r.U32()
		hw := r.Bool()
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return nil, set.ownerOf(oid.Addr()).Chmod(client, oid, perm, hw)
	})
	srv.Register(fsproto.MethodOpenFile, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		set.ownerOf(oid.Addr()).OpenFile(client, oid)
		return nil, nil
	})
	srv.Register(fsproto.MethodCloseFile, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return nil, set.ownerOf(oid.Addr()).CloseFile(client, oid)
	})
	srv.Register(fsproto.MethodStatVol, func(client uint64, _ []byte) ([]byte, error) {
		var free, applied uint64
		for _, s := range set.shards {
			free += s.FreeBytes()
			applied += uint64(s.BatchesApplied.Load())
		}
		w := wire.NewWriter(16)
		w.U64(free)
		w.U64(applied)
		return w.Bytes(), nil
	})
	srv.Register(fsproto.MethodStatfs, func(client uint64, _ []byte) ([]byte, error) {
		rep, err := set.Statfs()
		if err != nil {
			return nil, err
		}
		return fsproto.EncodeStatfsReply(&rep), nil
	})
	srv.Register(fsproto.MethodTenantCtl, func(client uint64, req []byte) ([]byte, error) {
		q, err := fsproto.DecodeTenantCtl(req)
		if err != nil {
			return nil, err
		}
		set.TenantCtl(q)
		return nil, nil
	})
	srv.Register(fsproto.MethodTenantStat, func(client uint64, _ []byte) ([]byte, error) {
		return fsproto.EncodeTenantStatReply(set.TenantStat()), nil
	})
}
