package tfs

import (
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/journal"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// lockX aliases the exclusive lock class for validation checks.
const (
	lockX  = lockservice.X
	lockIX = lockservice.IX
)

func journalErrFull() error { return journal.ErrFull }

// registerHandlers wires the service's RPC methods.
func (s *Service) registerHandlers() {
	s.srv.Register(fsproto.MethodMount, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		uid := r.U32()
		if err := r.Finish(); err != nil {
			return nil, err
		}
		reply := s.Mount(client, uid)
		return fsproto.EncodeMountReply(&reply), nil
	})
	s.srv.Register(fsproto.MethodPrealloc, func(client uint64, req []byte) ([]byte, error) {
		q, err := fsproto.DecodePrealloc(req)
		if err != nil {
			return nil, err
		}
		addrs, err := s.Prealloc(client, q.Size, q.Count)
		if err != nil {
			return nil, err
		}
		return fsproto.EncodeAddrs(addrs), nil
	})
	s.srv.Register(fsproto.MethodApplyLog, func(client uint64, req []byte) ([]byte, error) {
		if err := s.ApplyLog(client, req); err != nil {
			return nil, err
		}
		return nil, nil
	})
	s.srv.Register(fsproto.MethodApplyLogSeq, func(client uint64, req []byte) ([]byte, error) {
		if err := s.ApplyLogSeq(client, req); err != nil {
			return nil, err
		}
		return nil, nil
	})
	s.srv.Register(fsproto.MethodChmod, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		perm := r.U32()
		hw := r.Bool()
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return nil, s.Chmod(client, oid, perm, hw)
	})
	s.srv.Register(fsproto.MethodOpenFile, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		s.OpenFile(client, oid)
		return nil, nil
	})
	s.srv.Register(fsproto.MethodCloseFile, func(client uint64, req []byte) ([]byte, error) {
		r := wire.NewReader(req)
		oid := sobj.OID(r.U64())
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return nil, s.CloseFile(client, oid)
	})
	s.srv.Register(fsproto.MethodStatVol, func(client uint64, _ []byte) ([]byte, error) {
		w := wire.NewWriter(16)
		w.U64(s.FreeBytes())
		w.U64(uint64(s.BatchesApplied.Load()))
		return w.Bytes(), nil
	})
	s.srv.Register(fsproto.MethodStatfs, func(client uint64, _ []byte) ([]byte, error) {
		rep, err := s.Statfs()
		if err != nil {
			return nil, err
		}
		return fsproto.EncodeStatfsReply(&rep), nil
	})
}
