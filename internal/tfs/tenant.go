package tfs

import (
	"fmt"
	"sort"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/obs"
)

// Multi-tenant isolation. A tenant is an accounting and scheduling identity
// shared by any number of sessions: the client declares it once at Mount
// (in a deployment the trusted side authenticates that binding the same way
// it authenticates the UID), every sequenced batch then carries it on the
// wire, and the service cross-checks the two so a session cannot bill its
// work to someone else's tenant mid-stream.
//
// Three mechanisms hang off the identity, each at the layer where the
// resource actually gets spent:
//
//   - Space quotas, enforced at reservation time. A batch's worst-case
//     demand is charged against the tenant's quota before any block is
//     reserved, so the rejection is batch-atomic exactly like the
//     volume-exhaustion path: typed fsproto.ErrQuotaExceeded, volume
//     untouched, nothing to roll back. Usage accounting is volatile — it
//     restarts at zero each boot and bounds net growth since then — which
//     matches TenantCtl's own volatility (policy is re-applied at boot from
//     Config.Tenants or by the operator).
//
//   - Weighted-fair batch scheduling at the group-commit queue. Each batch
//     gets a virtual finish time vft = max(scheduler vtime, tenant's last
//     vft) + bytes/weight at enqueue, and the leader drains the queue in
//     vft order. A flooding tenant's batches space out by 1/weight of their
//     byte volume, so they queue behind their own backlog while a
//     light-traffic tenant's occasional batch keeps finishing near the
//     front of every group.
//
//   - Weight-aware overload shedding at admission, with backlog-shaped
//     retry hints (reserve.go): past the global in-flight budget only the
//     tenants over their weight-proportional share are shed, lowest weight
//     first, and the hint they get back scales with how deep past their
//     share they are.
//
// Per-tenant accounting is exact at batch granularity because both sides of
// a batch's space flow are already funneled: every apply-time allocation is
// served from the batch's admission reservation (charge =
// Reservation.ConsumedBytes), and every apply-time free is quarantined in
// the batch's deferFrees wrapper (credit = deferFrees.freedBytes, applied
// once the frees are performed after checkpoint).

// TenantConfig is the per-tenant policy applied at boot via Config.Tenants
// or at runtime via MethodTenantCtl. Policy is volatile: it lives in service
// memory, not the volume, and is re-applied on every start.
type TenantConfig struct {
	// Weight is the tenant's share of the batch scheduler and of the
	// admission budget relative to other tenants (0 means 1).
	Weight uint32
	// QuotaBytes bounds the tenant's net allocated bytes (0: unlimited).
	QuotaBytes uint64
}

// tenantState is one shard's accounting for one tenant. Guarded by
// Service.tenMu — never s.mu — so stat reads stay possible while the shard
// mutex is held for a long apply or a cross-shard transaction.
type tenantState struct {
	weight uint32
	quota  uint64 // 0: unlimited

	used     uint64 // net bytes charged since boot (consumed minus freed)
	reserved uint64 // worst-case bytes held by in-flight reservations

	sheds        uint64
	quotaRejects uint64

	hLatency      *obs.Histogram // batch latency, enqueue to completion
	cSheds        *obs.Counter
	cQuotaRejects *obs.Counter
}

// tenantLocked resolves (creating on first use) the shard-local state for
// tenant id. Callers hold s.tenMu.
func (s *Service) tenantLocked(id uint32) *tenantState {
	if s.tenants == nil {
		s.tenants = make(map[uint32]*tenantState)
	}
	t := s.tenants[id]
	if t == nil {
		t = &tenantState{
			weight:        1,
			hLatency:      s.cfg.Obs.Histogram(s.metricName(fmt.Sprintf("tfs.tenant.%d.batch_latency_ns", id))),
			cSheds:        s.cfg.Obs.Counter(s.metricName(fmt.Sprintf("tfs.tenant.%d.sheds", id))),
			cQuotaRejects: s.cfg.Obs.Counter(s.metricName(fmt.Sprintf("tfs.tenant.%d.quota_rejects", id))),
		}
		s.tenants[id] = t
	}
	return t
}

// metricName applies the shard's metric prefix (tfs.shard.<i>. on a
// multi-shard set) to a tfs.* metric name.
func (s *Service) metricName(name string) string {
	if s.metric != nil {
		return s.metric(name)
	}
	return name
}

// SetTenant applies volatile policy for one tenant on this shard.
func (s *Service) SetTenant(id uint32, cfg TenantConfig) {
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	t := s.tenantLocked(id)
	t.weight = cfg.Weight
	t.quota = cfg.QuotaBytes
}

// tenantWeight returns the tenant's scheduling weight (>= 1).
func (s *Service) tenantWeight(id uint32) uint32 {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	return s.tenantLocked(id).weight
}

// setClientTenant records the session -> tenant binding made at Mount.
func (s *Service) setClientTenant(client uint64, tenant uint32) {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	if s.clientTen == nil {
		s.clientTen = make(map[uint64]uint32)
	}
	s.clientTen[client] = tenant
}

// clientTenant returns the tenant the session mounted as (0 if it never
// declared one).
func (s *Service) clientTenant(client uint64) uint32 {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	return s.clientTen[client]
}

// dropClientTenant forgets a departed session's binding.
func (s *Service) dropClientTenant(client uint64) {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	delete(s.clientTen, client)
}

// checkTenant cross-checks a batch's wire-carried tenant against the
// session's Mount registration, so a session cannot spoof another tenant's
// identity (and spend its quota or ride its weight) after the fact.
func (s *Service) checkTenant(client uint64, tenant uint32) error {
	if reg := s.clientTenant(client); tenant != reg {
		return fmt.Errorf("%w: batch claims tenant %d, session mounted as tenant %d",
			ErrValidation, tenant, reg)
	}
	return nil
}

// tenantReserve charges a batch's worst-case demand against the tenant's
// quota before any allocator block is reserved. The rejection is therefore
// batch-atomic: typed fsproto.ErrQuotaExceeded with the volume untouched.
// The retry hint is backlog-shaped — nonzero only when the tenant has other
// reservations in flight whose release may admit a retry.
func (s *Service) tenantReserve(id uint32, demand uint64) error {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	t := s.tenantLocked(id)
	if t.quota > 0 && t.used+t.reserved+demand > t.quota {
		t.quotaRejects++
		t.cQuotaRejects.Inc()
		var retry uint32
		if t.reserved > 0 {
			retry = uint32(s.cfg.RetryAfterHint.Milliseconds())
		}
		return &quotaError{
			retryMs: retry, tenant: id,
			need: demand, held: t.used + t.reserved, quota: t.quota,
		}
	}
	t.reserved += demand
	return nil
}

// tenantReserveDone settles a quota reservation taken by tenantReserve:
// the worst-case demand comes off the reserved count and the bytes the
// batch actually consumed become durable usage.
func (s *Service) tenantReserveDone(id uint32, demand, consumed uint64) {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	t := s.tenantLocked(id)
	if demand > t.reserved {
		t.reserved = 0
	} else {
		t.reserved -= demand
	}
	t.used += consumed
}

// tenantCredit returns freed bytes to the tenant (a delete's space comes
// back once the quarantined frees are performed). Usage floors at zero:
// accounting is volatile, so a boot-era object freed now has no matching
// charge.
func (s *Service) tenantCredit(id uint32, n uint64) {
	if n == 0 {
		return
	}
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	t := s.tenantLocked(id)
	if n > t.used {
		t.used = 0
	} else {
		t.used -= n
	}
}

// tenantShed records an admission shed against the tenant.
func (s *Service) tenantShed(id uint32) {
	s.tenMu.Lock()
	t := s.tenantLocked(id)
	t.sheds++
	c := t.cSheds
	s.tenMu.Unlock()
	c.Inc()
}

// observeTenantLatency records one batch's enqueue-to-completion latency on
// the tenant's histogram — the number the fairness tier bounds for a victim
// tenant while an aggressor floods.
func (s *Service) observeTenantLatency(id uint32, d time.Duration) {
	s.tenMu.Lock()
	h := s.tenantLocked(id).hLatency
	s.tenMu.Unlock()
	h.Observe(d.Nanoseconds())
}

// TenantRows reports this shard's per-tenant accounting, sorted by tenant
// ID. It takes only tenMu — never s.mu — so it stays readable while the
// shard mutex is held, including mid-2PC when a cross-shard transaction has
// locked every shard with reservations still open.
func (s *Service) TenantRows() []fsproto.TenantUsage {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	ids := make([]uint32, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([]fsproto.TenantUsage, 0, len(ids))
	for _, id := range ids {
		t := s.tenants[id]
		rows = append(rows, fsproto.TenantUsage{
			Tenant:        id,
			Shard:         uint32(s.shardID),
			Weight:        t.weight,
			QuotaBytes:    t.quota,
			UsedBytes:     t.used,
			ReservedBytes: t.reserved,
			Sheds:         t.sheds,
			QuotaRejects:  t.quotaRejects,
		})
	}
	return rows
}

// TenantCtl applies one tenant's policy across every shard of the set.
func (set *ShardSet) TenantCtl(q fsproto.TenantCtlRequest) {
	for _, s := range set.shards {
		s.SetTenant(q.Tenant, TenantConfig{Weight: q.Weight, QuotaBytes: q.QuotaBytes})
	}
}

// TenantStat reports per-tenant accounting for every shard: one row per
// (tenant, shard) pair, shards in order, tenants sorted within each shard.
// Readable at any time — it never touches a shard mutex.
func (set *ShardSet) TenantStat() []fsproto.TenantUsage {
	var rows []fsproto.TenantUsage
	for _, s := range set.shards {
		rows = append(rows, s.TenantRows()...)
	}
	return rows
}
