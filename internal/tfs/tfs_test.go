package tfs

import (
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// newService formats a volume and serves a TFS on it, returning the privileged
// pieces for white-box tests.
func newService(t *testing.T) (*Service, *rpc.Server) {
	t.Helper()
	mem := scm.New(scm.Config{Size: 64 << 20})
	mgr, err := scmmgr.FormatAndAttach(mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc := scmmgr.NewProcess(0)
	part, err := mgr.CreatePartition(48<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Lease: time.Minute, AcquireTimeout: 5 * time.Second}
	if err := FormatVolume(mgr, proc, part, cfg); err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	svc, err := Serve(srv, mgr, proc, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, srv
}

func TestFsckCleanVolume(t *testing.T) {
	svc, _ := newService(t)
	rep, err := svc.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("fresh volume leaks: %v", rep)
	}
	if rep.Objects < 2 { // root + prealloc collection
		t.Fatalf("objects = %d", rep.Objects)
	}
	if rep.ReachableBlocks != rep.AllocatedBlocks {
		t.Fatalf("reachable %d != allocated %d", rep.ReachableBlocks, rep.AllocatedBlocks)
	}
}

func TestFsckDetectsAndRepairsLeak(t *testing.T) {
	svc, _ := newService(t)
	// Leak storage the way a crash between journal commit and checkpoint
	// can: allocate directly without any referencing structure.
	if _, err := svc.bd.Alloc(8 * 4096); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 8 {
		t.Fatalf("leaked = %d, want 8", rep.LeakedBlocks)
	}
	free := svc.FreeBytes()
	rep, err = svc.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairedBlocks != 8 {
		t.Fatalf("repaired = %d", rep.RepairedBlocks)
	}
	if svc.FreeBytes() != free+8*4096 {
		t.Fatalf("free space not restored: %d vs %d", svc.FreeBytes(), free+8*4096)
	}
	rep, _ = svc.Fsck(false)
	if rep.LeakedBlocks != 0 {
		t.Fatalf("still leaking after repair: %v", rep)
	}
}

func TestApplyLogRejectsGarbage(t *testing.T) {
	svc, srv := newService(t)
	client := rpc.DialInProc(srv, nil, nil, nil)
	defer client.Close()
	_ = svc
	// Structurally invalid payload.
	if _, err := client.Call(fsproto.MethodApplyLog, []byte{0xff, 0x01}); err == nil {
		t.Fatal("garbage batch accepted")
	}
	// Valid encoding, bogus op: insert into a non-collection target.
	bad := fsproto.EncodeOps([]fsproto.Op{{
		Code: fsproto.OpInsert, Target: sobj.OID(0x1000) | sobj.OID(sobj.TypeMFile),
		Child: svc.Root(), Key: []byte("x"), CoverLock: 42,
	}})
	if _, err := client.Call(fsproto.MethodApplyLog, bad); err == nil {
		t.Fatal("insert into mFile accepted")
	}
	if svc.OpsRejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestPreallocLimits(t *testing.T) {
	svc, srv := newService(t)
	client := rpc.DialInProc(srv, nil, nil, nil)
	defer client.Close()
	if _, err := svc.Prealloc(client.ClientID(), 4096, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := svc.Prealloc(client.ClientID(), 128<<20, 1); err == nil {
		t.Fatal("absurd size accepted")
	}
	addrs, err := svc.Prealloc(client.ClientID(), 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 8 {
		t.Fatalf("got %d extents", len(addrs))
	}
	// The tracking collection knows them: fsck counts them reachable.
	rep, err := svc.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("prealloc reported as leak: %v", rep)
	}
}

func TestOpenFileTableKeepsUnlinkedAlive(t *testing.T) {
	svc, _ := newService(t)
	oid := svc.Root() // any valid object works for the table mechanics
	svc.OpenFile(7, oid)
	svc.OpenFile(8, oid)
	if err := svc.CloseFile(7, oid); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	st := svc.openFiles[oid]
	svc.mu.Unlock()
	if st == nil || st.opens != 1 {
		t.Fatalf("open table state: %+v", st)
	}
	if err := svc.CloseFile(8, oid); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	_, still := svc.openFiles[oid]
	svc.mu.Unlock()
	if still {
		t.Fatal("entry not cleared after last close")
	}
}

func TestChmodHardwareProtection(t *testing.T) {
	svc, srv := newService(t)
	client := rpc.DialInProc(srv, nil, nil, nil)
	defer client.Close()
	// Build a small file server-side for the protection walk.
	m, err := sobj.CreateMFile(svc.mem, svc.bd, 0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := svc.bd.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachExtent(svc.bd, 0, ext); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSize(4096); err != nil {
		t.Fatal(err)
	}
	if err := svc.Chmod(client.ClientID(), m.OID(), 0444, true); err != nil {
		t.Fatal(err)
	}
	h, err := sobj.ReadHeader(svc.mem, m.OID())
	if err != nil {
		t.Fatal(err)
	}
	if h.Perm != 0444 {
		t.Fatalf("perm = %o", h.Perm)
	}
}

func TestBatchCounterStats(t *testing.T) {
	svc, _ := newService(t)
	var c costmodel.Counter
	c.Add(3)
	if c.Load() != 3 {
		t.Fatal("counter broken")
	}
	if svc.BatchesApplied.Load() != 0 {
		t.Fatal("fresh service applied batches")
	}
}
