package tfs

import (
	"errors"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/rpc"
)

// TestTenantQuotaReserveSettle exercises the quota ledger's lifecycle:
// worst-case demand is charged at reservation, settles into actual usage,
// rejects batch-atomically at the quota with the typed error, and frees
// credit back. The retry hint is backlog-shaped: zero when the tenant has
// nothing in flight (retrying cannot help), nonzero while other
// reservations may still release.
func TestTenantQuotaReserveSettle(t *testing.T) {
	s := newAdmitService(Config{RetryAfterHint: 9 * time.Millisecond})
	s.SetTenant(7, TenantConfig{Weight: 1, QuotaBytes: 1000})

	if err := s.tenantReserve(7, 600); err != nil {
		t.Fatal(err)
	}
	// Over quota with nothing else in flight except our own reservation:
	// typed rejection, and the hint is nonzero because 600 reserved bytes
	// may still settle smaller.
	err := s.tenantReserve(7, 500)
	if !errors.Is(err, fsproto.ErrQuotaExceeded) {
		t.Fatalf("over-quota reserve: %v", err)
	}
	if errors.Is(err, fsproto.ErrNoSpace) {
		t.Fatalf("quota rejection must not alias ENOSPC: %v", err)
	}
	var h rpc.RetryAfterHinter
	if !errors.As(err, &h) || h.RetryAfterMs() != 9 {
		t.Fatalf("backlog-shaped hint missing: %v", err)
	}

	// Settle: 600 worst-case becomes 400 actual; 500 now fits.
	s.tenantReserveDone(7, 600, 400)
	if err := s.tenantReserve(7, 500); err != nil {
		t.Fatalf("reserve after settle: %v", err)
	}
	s.tenantReserveDone(7, 500, 500)

	// Full: a reject with zero in flight carries a zero hint — the quota
	// cannot clear itself.
	err = s.tenantReserve(7, 200)
	if !errors.Is(err, fsproto.ErrQuotaExceeded) {
		t.Fatalf("reserve at quota: %v", err)
	}
	if errors.As(err, &h) && h.RetryAfterMs() != 0 {
		t.Fatalf("idle-tenant reject should not suggest retrying: %v", err)
	}

	// Credit from frees restores headroom; usage floors at zero even for
	// over-credit (boot-era objects carry no charge).
	s.tenantCredit(7, 300)
	if err := s.tenantReserve(7, 200); err != nil {
		t.Fatalf("reserve after credit: %v", err)
	}
	s.tenantReserveDone(7, 200, 0)
	s.tenantCredit(7, 1<<30)

	rows := s.TenantRows()
	if len(rows) != 1 || rows[0].Tenant != 7 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].UsedBytes != 0 || rows[0].ReservedBytes != 0 {
		t.Fatalf("ledger not settled: %+v", rows[0])
	}
	if rows[0].QuotaRejects != 2 {
		t.Fatalf("QuotaRejects = %d, want 2", rows[0].QuotaRejects)
	}
}

// TestTenantSpoofRejected: a batch's wire-carried tenant must match the
// session's Mount-time registration — otherwise a client could spend a
// neighbor's quota or ride its scheduling weight.
func TestTenantSpoofRejected(t *testing.T) {
	s := newAdmitService(Config{})
	s.setClientTenant(42, 7)
	if err := s.checkTenant(42, 7); err != nil {
		t.Fatalf("registered tenant rejected: %v", err)
	}
	if err := s.checkTenant(42, 8); !errors.Is(err, ErrValidation) {
		t.Fatalf("spoofed tenant accepted: %v", err)
	}
	s.dropClientTenant(42)
	if err := s.checkTenant(42, 7); !errors.Is(err, ErrValidation) {
		t.Fatalf("departed session kept its binding: %v", err)
	}
}

// TestTenantWeightedFairShare checks the overload-degradation share math:
// past the byte budget, only tenants over their weight-proportional slice
// are shed, so the lowest-weight flood is pushed back first.
func TestTenantWeightedFairShare(t *testing.T) {
	s := newAdmitService(Config{MaxInflightBytes: 900, RetryAfterHint: time.Millisecond})
	s.SetTenant(1, TenantConfig{Weight: 1})
	s.SetTenant(2, TenantConfig{Weight: 8})

	// The flood fills most of the budget.
	if err := s.admit(100, 1, 800); err != nil {
		t.Fatal(err)
	}
	// Another flood batch overruns the budget AND tenant 1's 1/9 share.
	if err := s.admit(101, 1, 200); !errors.Is(err, fsproto.ErrBusy) {
		t.Fatalf("over-share flood admitted: %v", err)
	}
	// The light tenant also overruns the budget — but is under its 8/9
	// share, so it is admitted (bounded overshoot by design).
	if err := s.admit(102, 2, 200); err != nil {
		t.Fatalf("under-share tenant shed: %v", err)
	}
	rows := s.TenantRows()
	for _, r := range rows {
		switch r.Tenant {
		case 1:
			if r.Sheds != 1 {
				t.Fatalf("flood sheds = %d, want 1: %+v", r.Sheds, r)
			}
		case 2:
			if r.Sheds != 0 {
				t.Fatalf("light tenant shed: %+v", r)
			}
		}
	}
	s.admitDone(100, 1, 800)
	s.admitDone(102, 2, 200)
}
