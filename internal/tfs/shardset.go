package tfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/journal"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/shard"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// ShardSet runs N trusted-service shards over N scmmgr partitions of one
// volume. Each shard is a full Service — its own journal, allocator,
// reservation pool, group-commit leader, admission control, and transaction
// side-log — and owns exactly the objects whose header addresses fall in its
// partition (see internal/shard: placement is by construction). Single-shard
// operation is the N=1 degenerate case and behaves exactly like the
// pre-sharding service.
//
// Cross-shard operations (a rename whose two directories live on different
// shards, a removal whose child is linked from a foreign shard) cannot ride
// one shard's journal: half the batch would survive a crash without the
// other half. They run as a two-phase mini-transaction instead (TxApply):
//
//  1. The whole op list is planned once — under every shard's mutex, so the
//     plan sees a globally consistent snapshot — and the compiled journal
//     actions are split by owning shard.
//  2. Prepare: every participant except the coordinator appends its action
//     slice as a prepare record to its transaction side-log (a second,
//     small journal that survives main-journal checkpoints) and commits it.
//  3. Decide: the coordinator (lowest participating shard ID) journals its
//     own actions PLUS a jTxCommit marker as one ordinary main-journal
//     batch. That single fenced commit is the transaction's commit point.
//     Applying jTxCommit records the outcome in the coordinator's side-log.
//  4. Resolve: each participant journals its prepared actions plus a
//     jTxResolve marker as one ordinary batch and applies it; applying
//     jTxResolve writes a tombstone that retires the prepare record.
//
// Recovery rule for an orphaned prepare (the crash window between steps 2
// and 4): after each shard's normal journal replay, a prepare with no
// matching tombstone consults the coordinator's side-log. An outcome record
// there means the transaction committed — the participant journals and
// applies its prepared actions now; no outcome means it never committed —
// the participant writes an abort tombstone and the prepared actions are
// dropped. Both directions are idempotent (the markers re-applied during
// replay re-check the side-log state), so a crash during recovery itself
// re-resolves to the same outcome.
type ShardSet struct {
	mgr  *scmmgr.Manager
	proc *scmmgr.Process
	srv  *rpc.Server
	cfg  Config
	mem  *scm.Memory

	shards []*Service
	table  shard.Table
	// repoch is the routing epoch clients echo in shard-framed requests; a
	// mismatch means their shard table is stale. The topology is fixed for
	// a volume's lifetime today, so it only steps when the set restarts.
	repoch uint32

	Locks *lockservice.Service

	// txMu serializes cross-shard transactions (they take every shard's
	// mutex in ID order; the outer lock keeps two transactions from ever
	// interleaving their lock sweeps).
	txMu  sync.Mutex
	txGen uint64 // persisted restart generation (shard 0 superblock)
	txCtr uint64 // per-generation transaction counter

	// hdr stripes object-header access between one shard's plan (ancestor
	// and refcnt walks can cross shard boundaries) and another shard's
	// apply (header writes). Engaged only when len(shards) > 1; the
	// single-shard service mutex already excludes plan from apply.
	hdr hdrLocks

	obsTxns     *obs.Counter // tfs.2pc.txns committed
	obsTxAborts *obs.Counter // tfs.2pc.aborts (live aborts + recovery aborts)
}

// hdrLocks is a striped RW mutex over object header words.
type hdrLocks struct {
	m [64]sync.RWMutex
}

func (h *hdrLocks) of(oid sobj.OID) *sync.RWMutex {
	return &h.m[(oid.Addr()>>12)%uint64(len(h.m))]
}

// hdrShared takes a shared header stripe for reading oid's header from a
// possibly-foreign shard. Returns nil (nothing to release) when the set is
// not sharded.
func (s *Service) hdrShared(oid sobj.OID) func() {
	if s.set == nil || len(s.set.shards) == 1 {
		return nil
	}
	l := s.set.hdr.of(oid)
	l.RLock()
	return l.RUnlock
}

// hdrExcl takes the exclusive header stripe around a header mutation.
func (s *Service) hdrExcl(oid sobj.OID) func() {
	if s.set == nil || len(s.set.shards) == 1 {
		return nil
	}
	l := s.set.hdr.of(oid)
	l.Lock()
	return l.Unlock
}

// Transaction side-log record kinds.
const (
	txRecPrepare uint8 = 1 // participant: actions staged, awaiting outcome
	txRecOutcome uint8 = 2 // coordinator: transaction committed
	txRecTomb    uint8 = 3 // participant: prepare retired (applied or aborted)
)

type txRec struct {
	kind  uint8
	txid  uint64
	coord uint32
	shard uint32
	acts  []byte // encoded actions; prepare records only
}

func encodeTxRec(r txRec) []byte {
	w := wire.NewWriter(24 + len(r.acts))
	w.U8(r.kind)
	w.U64(r.txid)
	w.U32(r.coord)
	w.U32(r.shard)
	w.Bytes32(r.acts)
	return w.Bytes()
}

func decodeTxRec(p []byte) (txRec, error) {
	r := wire.NewReader(p)
	var rec txRec
	rec.kind = r.U8()
	rec.txid = r.U64()
	rec.coord = r.U32()
	rec.shard = r.U32()
	rec.acts = append([]byte(nil), r.Bytes32()...)
	if err := r.Finish(); err != nil {
		return rec, err
	}
	if rec.kind < txRecPrepare || rec.kind > txRecTomb {
		return rec, fmt.Errorf("tfs: unknown tx record kind %d", rec.kind)
	}
	return rec, nil
}

// txState is one shard's view of the transaction side-log: the log itself
// plus the live records (rebuilt by scanning on attach).
type txState struct {
	log       *journal.Log
	prepares  map[uint64][]byte // txid -> prepared action payload
	prepCoord map[uint64]uint32 // txid -> coordinator shard
	outcomes  map[uint64]bool   // coordinator side: committed transactions
	tombs     map[uint64]bool   // participant side: retired prepares
}

// attachTxLog opens the shard's side-log and rebuilds the live-record maps.
// Records are append-ordered, so a tombstone scanned after its prepare
// correctly retires it.
func attachTxLog(mem *scm.Memory, base uint64) (*txState, error) {
	log, err := journal.Attach(mem, base)
	if err != nil {
		return nil, err
	}
	t := &txState{
		log:       log,
		prepares:  make(map[uint64][]byte),
		prepCoord: make(map[uint64]uint32),
		outcomes:  make(map[uint64]bool),
		tombs:     make(map[uint64]bool),
	}
	if err := log.Replay(func(p []byte) error {
		rec, err := decodeTxRec(p)
		if err != nil {
			return err
		}
		switch rec.kind {
		case txRecPrepare:
			t.prepares[rec.txid] = rec.acts
			t.prepCoord[rec.txid] = rec.coord
		case txRecOutcome:
			t.outcomes[rec.txid] = true
		case txRecTomb:
			t.tombs[rec.txid] = true
			delete(t.prepares, rec.txid)
			delete(t.prepCoord, rec.txid)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// txAppend durably appends one record to the shard's side-log. The side-log
// is deliberately small; capacity is prechecked by TxApply, so overflow here
// means the caller's precheck was wrong — surface it as backpressure.
func (s *Service) txAppend(rec txRec) error {
	p := encodeTxRec(rec)
	if err := s.tx.log.Append(p); err != nil {
		if errors.Is(err, journalFull) {
			return fmt.Errorf("%w: transaction side-log full", fsproto.ErrBusy)
		}
		return err
	}
	if err := s.tx.log.Commit(); err != nil {
		s.tx.log.Abort()
		return err
	}
	return nil
}

// txPrepare stages a participant's slice of a transaction: durable in the
// side-log before the coordinator is allowed to decide.
func (s *Service) txPrepare(txid uint64, coord uint32, payload []byte) error {
	if err := s.txAppend(txRec{kind: txRecPrepare, txid: txid, coord: coord, shard: uint32(s.shardID), acts: payload}); err != nil {
		return err
	}
	s.tx.prepares[txid] = payload
	s.tx.prepCoord[txid] = coord
	return nil
}

// txOutcome records "txid committed" in the coordinator's side-log. It is
// the apply-side of jTxCommit, and idempotent: replaying the marker after a
// crash finds the outcome already recorded and does nothing.
func (s *Service) txOutcome(txid uint64) error {
	if s.tx == nil {
		return fmt.Errorf("tfs: jTxCommit on a volume without a transaction log")
	}
	if s.tx.outcomes[txid] {
		return nil
	}
	if err := s.txAppend(txRec{kind: txRecOutcome, txid: txid, coord: uint32(s.shardID), shard: uint32(s.shardID)}); err != nil {
		return err
	}
	s.tx.outcomes[txid] = true
	return nil
}

// txTombstone retires a prepare record (the apply-side of jTxResolve, also
// used directly for aborts). Idempotent like txOutcome.
func (s *Service) txTombstone(txid uint64, coord uint32) error {
	if s.tx == nil {
		return fmt.Errorf("tfs: jTxResolve on a volume without a transaction log")
	}
	if s.tx.tombs[txid] {
		return nil
	}
	if err := s.txAppend(txRec{kind: txRecTomb, txid: txid, coord: coord, shard: uint32(s.shardID)}); err != nil {
		return err
	}
	s.tx.tombs[txid] = true
	delete(s.tx.prepares, txid)
	delete(s.tx.prepCoord, txid)
	return nil
}

// ServeShards attaches one Service per partition, recovers each shard's
// journal, resolves orphaned cross-shard prepares, and registers the RPC
// surface for the whole set. parts[i] becomes shard i; the order must be
// stable across restarts (core passes partitions in slot order).
func ServeShards(srv *rpc.Server, mgr *scmmgr.Manager, proc *scmmgr.Process, parts []scmmgr.PartitionID, cfg Config) (*ShardSet, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tfs: no shard partitions")
	}
	set := &ShardSet{
		mgr: mgr, proc: proc, srv: srv, cfg: cfg, mem: mgr.Mem(),
		repoch: 1,
	}
	for i, part := range parts {
		info, err := mgr.Partition(part)
		if err != nil {
			return nil, err
		}
		set.table = append(set.table, shard.Range{Start: info.Start, Size: info.Size})
		pfx := ""
		if len(parts) > 1 {
			pfx = fmt.Sprintf("tfs.shard.%d.", i)
		}
		s, err := set.attachShard(i, part, pfx)
		if err != nil {
			return nil, fmt.Errorf("tfs: shard %d: %w", i, err)
		}
		set.shards = append(set.shards, s)
	}
	// Boot-time tenant policy: weights and quotas from config apply to every
	// shard (each enforces its own partition's share independently).
	for id, tc := range cfg.Tenants {
		for _, s := range set.shards {
			s.SetTenant(id, tc)
		}
	}
	// Transaction IDs must never repeat across restarts (a stale prepare
	// must not collide with a fresh transaction's id), so shard 0 persists
	// a generation counter bumped once per attach.
	s0 := set.shards[0]
	if s0.txBase != 0 {
		gen, err := scm.Read64(set.mem, s0.sbBase+offSBTxGen)
		if err != nil {
			return nil, err
		}
		gen++
		if err := scm.Write64Flush(set.mem, s0.sbBase+offSBTxGen, gen); err != nil {
			return nil, err
		}
		set.txGen = gen
	}
	// Per-shard redo replay first: the jTxCommit/jTxResolve markers inside
	// replayed batches re-check the side-log state scanned during attach.
	for _, s := range set.shards {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	// Cross-shard orphan resolution MUST precede prealloc scavenging: a
	// committed-but-unresolved prepare may consume tracked extents, and
	// scavenging them first would free storage the resolution then links.
	if err := set.resolveOrphans(); err != nil {
		return nil, err
	}
	for _, s := range set.shards {
		if err := s.scavengePreallocs(); err != nil {
			return nil, err
		}
	}
	set.Locks = lockservice.Serve(srv, lockservice.Config{
		Lease:          cfg.Lease,
		AcquireTimeout: cfg.AcquireTimeout,
		OnExpire:       func(client uint64) { set.dropClient(client) },
		Obs:            cfg.Obs,
		Domains:        len(set.shards),
		DomainOf: func(id uint64) int {
			if k := set.table.OfAddr(sobj.OID(id).Addr()); k >= 0 {
				return k
			}
			return 0
		},
	})
	for _, s := range set.shards {
		s.Locks = set.Locks
	}
	set.obsTxns = cfg.Obs.Counter("tfs.2pc.txns")
	set.obsTxAborts = cfg.Obs.Counter("tfs.2pc.aborts")
	set.registerHandlers()
	return set, nil
}

// attachShard builds one shard's Service from its formatted partition:
// superblock decode, allocator and journal attach, side-log scan, metric
// resolution. Recovery is driven by ServeShards afterwards, in set order.
func (set *ShardSet) attachShard(id int, part scmmgr.PartitionID, pfx string) (*Service, error) {
	mgr, cfg := set.mgr, set.cfg
	mem := mgr.Mem()
	info, err := mgr.Partition(part)
	if err != nil {
		return nil, err
	}
	base := info.Start
	magic, err := scm.Read64(mem, base+offSBMagic)
	if err != nil {
		return nil, err
	}
	if magic != sbMagic {
		return nil, ErrNotFormatted
	}
	rootOID, _ := scm.Read64(mem, base+offSBRoot)
	jBase, _ := scm.Read64(mem, base+offSBJBase)
	bitmapAddr, _ := scm.Read64(mem, base+offSBBitmap)
	heapStart, _ := scm.Read64(mem, base+offSBHeap)
	heapSize, _ := scm.Read64(mem, base+offSBHeapSize)
	preOID, _ := scm.Read64(mem, base+offSBPrealloc)
	gid, _ := scm.Read32(mem, base+offSBGID)
	txBase, _ := scm.Read64(mem, base+offSBTxBase)
	txSize, _ := scm.Read64(mem, base+offSBTxSize)

	bd, err := alloc.Attach(mem, bitmapAddr, heapStart, heapSize)
	if err != nil {
		return nil, err
	}
	jl, err := journal.Attach(mem, jBase)
	if err != nil {
		return nil, err
	}
	preCol, err := sobj.OpenCollection(mem, sobj.OID(preOID))
	if err != nil {
		return nil, err
	}
	if cfg.MaxInflightBytes == 0 {
		cfg.MaxInflightBytes = 64 << 20
	}
	if cfg.MaxClientInflight == 0 {
		cfg.MaxClientInflight = 4
	}
	if cfg.RetryAfterHint == 0 {
		cfg.RetryAfterHint = 5 * time.Millisecond
	}
	s := &Service{
		mgr: mgr, proc: set.proc, part: part, mem: mem, cfg: cfg,
		srv: set.srv, bd: bd, jl: jl,
		root: sobj.OID(rootOID), preCol: preCol, gid: gid,
		heap:         [2]uint64{heapStart, heapSize},
		sbBase:       base,
		txBase:       txBase,
		txSize:       txSize,
		shardID:      id,
		set:          set,
		clients:      make(map[uint64]*clientState),
		gates:        make(map[uint64]*seqGate),
		openFiles:    make(map[sobj.OID]*openState),
		admPerClient: make(map[uint64]int),
		admTenBytes:  make(map[uint32]int64),
		tenants:      make(map[uint32]*tenantState),
		clientTen:    make(map[uint64]uint32),
		tenVft:       make(map[uint32]float64),
		faults:       cfg.Faults,
	}
	metric := func(name string) string {
		if pfx == "" {
			return name
		}
		return pfx + strings.TrimPrefix(name, "tfs.")
	}
	s.metric = metric
	s.obsBatchOps = cfg.Obs.Histogram(metric("tfs.batch.ops"))
	s.obsFsckRepairs = cfg.Obs.Counter(metric("tfs.fsck.repairs"))
	s.obsReserveBytes = cfg.Obs.Histogram(metric("tfs.reserve.bytes"))
	s.obsReserveWait = cfg.Obs.Histogram(metric("tfs.reserve.wait_ns"))
	s.obsReserveFallbks = cfg.Obs.Counter(metric("tfs.reserve.fallbacks"))
	s.obsSheds = cfg.Obs.Counter(metric("tfs.admission.sheds"))
	s.obsGroupBatches = cfg.Obs.Histogram(metric("tfs.groupcommit.batches"))
	s.obsGroupFences = cfg.Obs.Counter(metric("tfs.groupcommit.fences"))
	s.obsGroupCoalesced = cfg.Obs.Counter(metric("tfs.groupcommit.coalesced"))
	s.obsGroupParallel = cfg.Obs.Counter(metric("tfs.groupcommit.parallel_batches"))
	jl.SetFaults(cfg.Faults)
	jl.SetObs(cfg.Obs)
	bd.SetFaults(cfg.Faults)
	if txBase != 0 {
		tx, err := attachTxLog(mem, txBase)
		if err != nil {
			return nil, err
		}
		s.tx = tx
	}
	return s, nil
}

// Shard returns shard i's Service.
func (set *ShardSet) Shard(i int) *Service { return set.shards[i] }

// Shards returns the shard count.
func (set *ShardSet) Shards() int { return len(set.shards) }

// Table returns the placement table (shard ID -> partition address range).
func (set *ShardSet) Table() shard.Table { return set.table }

// RoutingEpoch returns the epoch clients must echo in shard-framed frames.
func (set *ShardSet) RoutingEpoch() uint32 { return set.repoch }

// ownerOf returns the shard whose partition contains addr, falling back to
// shard 0 for addresses outside every partition (validation will reject).
func (set *ShardSet) ownerOf(addr uint64) *Service {
	if len(set.shards) == 1 {
		return set.shards[0]
	}
	if k := set.table.OfAddr(addr); k >= 0 {
		return set.shards[k]
	}
	return set.shards[0]
}

// checkFrame validates a shard-framed request's address and epoch.
func (set *ShardSet) checkFrame(h fsproto.ShardHeader) error {
	if int(h.Shard) >= len(set.shards) || h.Epoch != set.repoch {
		return &fsproto.WrongShardError{Shard: h.Shard % uint32(len(set.shards)), Epoch: set.repoch}
	}
	return nil
}

// actionAddr returns the SCM address that decides which shard applies a
// compiled action: extent actions carry the address directly; object
// actions route by the object's header address; transaction markers are
// shard-local bookkeeping and route nowhere.
func actionAddr(ac *action) uint64 {
	switch ac.code {
	case jFree, jPreallocAdd, jPreallocConsume:
		return ac.a
	case jTxCommit, jTxResolve:
		return 0
	default:
		return ac.oid.Addr()
	}
}

// checkHomeActs rejects a single-shard batch whose compiled actions touch
// storage outside the shard's partition. Honest clients route such groups
// through TxApply; this is the trusted side's defense against a client that
// lies about placement (the WrongShardError names the owning shard so a
// merely-stale client can re-route). Callers hold s.mu.
func (s *Service) checkHomeActs(acts []action) error {
	if s.set == nil || len(s.set.shards) == 1 {
		return nil
	}
	for i := range acts {
		addr := actionAddr(&acts[i])
		if addr == 0 {
			continue
		}
		if k := s.set.table.OfAddr(addr); k != s.shardID {
			owner := uint32(0)
			if k > 0 {
				owner = uint32(k)
			}
			return &fsproto.WrongShardError{Shard: owner, Epoch: s.set.repoch}
		}
	}
	return nil
}

// openStateFor resolves the open-file registration covering oid. Open-file
// state lives on the object's owning shard (OpenFile/CloseFile are routed
// there), so a plan on another shard must look it up remotely — legal only
// inside a cross-shard transaction, where every shard's mutex is held. On
// the normal path a foreign object is a routing error.
func (s *Service) openStateFor(oid sobj.OID) (*openState, error) {
	if s.set != nil && len(s.set.shards) > 1 {
		if k := s.set.table.OfAddr(oid.Addr()); k >= 0 && k != s.shardID {
			if !s.planAcrossShards {
				return nil, &fsproto.WrongShardError{Shard: uint32(k), Epoch: s.set.repoch}
			}
			return s.set.shards[k].openFiles[oid], nil
		}
	}
	return s.openFiles[oid], nil
}

// dropPrealloc removes a consumed pre-allocation from the owning shard's
// per-client tracking (post-apply effect). On the single-shard path the
// owner is always s itself.
func (s *Service) dropPrealloc(client uint64, addr uint64) {
	owner := s
	if s.set != nil && len(s.set.shards) > 1 {
		if k := s.set.table.OfAddr(addr); k >= 0 {
			owner = s.set.shards[k]
		}
	}
	if st := owner.clients[client]; st != nil {
		delete(st.prealloc, addr)
	}
}

// dropClient discards a departed client's state on every shard, then
// releases its locks once.
func (set *ShardSet) dropClient(client uint64) {
	for _, s := range set.shards {
		s.dropClientState(client)
	}
	if set.Locks != nil {
		set.Locks.ReleaseAll(client)
	}
}

// Mount registers the client on every shard and returns the volume geometry
// plus, when sharded, the placement table the client's router needs. The
// tenant binding is fixed at mount: later batches naming a different tenant
// are rejected (checkTenant), so one client cannot spend another tenant's
// quota or ride its scheduler weight.
func (set *ShardSet) Mount(client uint64, uid uint32, tenant uint32) fsproto.MountReply {
	for _, s := range set.shards {
		s.mu.Lock()
		st := s.client(client)
		st.uid = uid
		s.mu.Unlock()
		s.setClientTenant(client, tenant)
	}
	set.srv.OnDisconnect(client, func() { set.dropClient(client) })
	s0 := set.shards[0]
	rep := fsproto.MountReply{
		Root:      s0.root,
		HeapStart: s0.heap[0],
		HeapSize:  s0.heap[1],
		Partition: uint32(s0.part),
		VolumeGID: s0.gid,
	}
	if len(set.shards) > 1 {
		rep.RoutingEpoch = set.repoch
		for _, s := range set.shards {
			rep.Shards = append(rep.Shards, fsproto.ShardInfo{
				Root:      s.root,
				HeapStart: s.heap[0],
				HeapSize:  s.heap[1],
				Partition: uint32(s.part),
			})
		}
	}
	return rep
}

// Statfs aggregates space and object accounting across shards, with a
// per-shard row for each. Objects are attributed to their owning shard by
// header address; the walk covers every shard's root namespace.
func (set *ShardSet) Statfs() (fsproto.StatfsReply, error) {
	if len(set.shards) == 1 {
		return set.shards[0].Statfs()
	}
	for _, s := range set.shards {
		s.mu.Lock()
	}
	defer func() {
		for i := len(set.shards) - 1; i >= 0; i-- {
			set.shards[i].mu.Unlock()
		}
	}()
	var rep fsproto.StatfsReply
	rows := make([]fsproto.ShardStat, len(set.shards))
	for i, s := range set.shards {
		rows[i] = fsproto.ShardStat{
			TotalBytes:     s.bd.HeapSize(),
			FreeBytes:      s.bd.FreeBytes(),
			ReservedBytes:  s.bd.ReservedBytes(),
			BatchesApplied: uint64(s.BatchesApplied.Load()),
		}
		rep.TotalBytes += rows[i].TotalBytes
		rep.FreeBytes += rows[i].FreeBytes
		rep.ReservedBytes += rows[i].ReservedBytes
		rep.BatchesApplied += rows[i].BatchesApplied
	}
	mem := set.mem
	var count func(oid sobj.OID, depth int) error
	count = func(oid sobj.OID, depth int) error {
		if depth > 64 {
			return fmt.Errorf("tfs: namespace deeper than 64 levels")
		}
		rep.Objects++
		if k := set.table.OfAddr(oid.Addr()); k >= 0 {
			rows[k].Objects++
		}
		if oid.Type() != sobj.TypeCollection {
			return nil
		}
		col, err := sobj.OpenCollection(mem, oid)
		if err != nil {
			return err
		}
		var children []sobj.OID
		if err := col.Iterate(func(_ []byte, val sobj.OID) error {
			children = append(children, val)
			return nil
		}); err != nil {
			return err
		}
		for _, child := range children {
			if err := count(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range set.shards {
		if err := count(s.root, 0); err != nil {
			return rep, err
		}
	}
	rep.Shards = rows
	return rep, nil
}

// Fsck runs the mark phase over every shard's namespace (reachability is a
// whole-volume property: a directory on shard 0 references children on any
// shard) and the sweep phase per shard against its own bitmap.
func (set *ShardSet) Fsck(repair bool) (FsckReport, error) {
	if len(set.shards) == 1 {
		return set.shards[0].Fsck(repair)
	}
	for _, s := range set.shards {
		s.mu.Lock()
	}
	defer func() {
		for i := len(set.shards) - 1; i >= 0; i-- {
			set.shards[i].mu.Unlock()
		}
	}()
	var rep FsckReport
	reach := make(map[uint64]bool)
	for _, s := range set.shards {
		if err := s.fsckMarkLocked(&rep, reach); err != nil {
			return rep, err
		}
	}
	rep.ReachableBlocks = len(reach)
	for _, s := range set.shards {
		if err := s.fsckSweepLocked(&rep, reach, repair); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// resolveOrphans applies the recovery rule to every prepare that survived
// the per-shard replays: commit it if the coordinator's side-log holds an
// outcome record, abort it otherwise. Must run after every shard's journal
// replay (the markers there can retire prepares) and before any prealloc
// scavenging (a committing prepare consumes tracked extents).
func (set *ShardSet) resolveOrphans() error {
	for _, s := range set.shards {
		if s.tx == nil {
			continue
		}
		txids := make([]uint64, 0, len(s.tx.prepares))
		for txid := range s.tx.prepares {
			txids = append(txids, txid)
		}
		sort.Slice(txids, func(i, j int) bool { return txids[i] < txids[j] })
		for _, txid := range txids {
			coordID := int(s.tx.prepCoord[txid])
			committed := false
			if coordID >= 0 && coordID < len(set.shards) && coordID != s.shardID {
				if c := set.shards[coordID]; c.tx != nil {
					committed = c.tx.outcomes[txid]
				}
			}
			if !committed {
				set.obsTxAborts.Inc()
				if err := s.txTombstone(txid, uint32(coordID)); err != nil {
					return err
				}
				continue
			}
			acts, err := decodeActions(s.tx.prepares[txid])
			if err != nil {
				return err
			}
			acts = append(acts, action{code: jTxResolve, a: txid, b: uint64(coordID)})
			res, err := s.reserveFor(acts)
			if err != nil {
				return err
			}
			err = s.commitActions(acts)
			if err == nil {
				err = s.applyAll(acts, res, 0)
			}
			res.Release()
			if err != nil {
				return err
			}
		}
	}
	return set.txGCLocked()
}

// txGCLocked checkpoints every shard's side-log once no prepare anywhere is
// still pending (outcome and tombstone records exist only to resolve
// prepares; with none outstanding they are dead weight). Callers hold txMu
// or run single-threaded (recovery).
func (set *ShardSet) txGCLocked() error {
	for _, s := range set.shards {
		if s.tx != nil && len(s.tx.prepares) > 0 {
			return nil
		}
	}
	for _, s := range set.shards {
		if s.tx == nil {
			continue
		}
		if err := s.tx.log.Checkpoint(); err != nil {
			return err
		}
		s.tx.outcomes = make(map[uint64]bool)
		s.tx.tombs = make(map[uint64]bool)
	}
	return nil
}

// TxApply runs a batch of ops that spans shards as a two-phase mini-
// transaction (see the ShardSet comment for the protocol and recovery
// rule). The client drains its pipelined windows first, so the transaction
// orders after everything the session already shipped.
func (set *ShardSet) TxApply(client uint64, payload []byte) error {
	ops, err := fsproto.DecodeOps(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrValidation, err)
	}
	if len(set.shards) == 1 || set.shards[0].tx == nil {
		// Degenerate single-shard transaction: the ordinary group-commit
		// batch is already atomic.
		s := set.shards[0]
		tenant := s.clientTenant(client)
		if err := s.admit(client, tenant, int64(len(payload))); err != nil {
			return err
		}
		defer s.admitDone(client, tenant, int64(len(payload)))
		return s.runBatch(client, tenant, 0, ops, int64(len(payload)))
	}
	// Cross-shard transactions pass the same weight-aware admission gate as
	// ordinary batches, accounted on shard 0 (the coordinator candidate):
	// an aggressor cannot sidestep overload shedding by routing everything
	// through TxApply.
	s0 := set.shards[0]
	tenant := s0.clientTenant(client)
	if err := s0.admit(client, tenant, int64(len(payload))); err != nil {
		return err
	}
	defer s0.admitDone(client, tenant, int64(len(payload)))
	set.txMu.Lock()
	defer set.txMu.Unlock()
	// Every shard's mutex, in ID order: the plan reads cross-shard state
	// and the commit windows below must exclude every shard leader. Group
	// leaders never take a foreign shard's mutex, so the global order
	// cannot deadlock against them.
	for _, s := range set.shards {
		s.mu.Lock()
	}
	defer func() {
		for i := len(set.shards) - 1; i >= 0; i-- {
			set.shards[i].mu.Unlock()
		}
	}()
	return set.txApplyLocked(client, ops)
}

func (set *ShardSet) txApplyLocked(client uint64, ops []fsproto.Op) error {
	// The mount-time tenant binding is identical on every shard; read it from
	// shard 0 and bill each participant shard's reservation against it.
	tenant := set.shards[0].clientTenant(client)
	// Merge the client's per-shard prealloc pools for validation: a staged
	// object's extents were pre-allocated on its owning shard, and the plan
	// checks consumption against one map.
	merged := &clientState{prealloc: make(map[uint64]uint64)}
	for _, s := range set.shards {
		if st := s.clients[client]; st != nil {
			for a, sz := range st.prealloc {
				merged.prealloc[a] = sz
			}
		}
	}
	host := set.shards[0]
	host.planAcrossShards = true
	acts, effects, err := host.plan(client, merged, ops)
	host.planAcrossShards = false
	if err != nil {
		host.OpsRejected.Add(int64(len(ops)))
		return err
	}
	if len(acts) == 0 {
		return nil
	}
	// Split the compiled actions by owning shard, preserving each shard's
	// relative order (redo guards depend on in-shard ordering only).
	byShard := make(map[int][]action)
	for i := range acts {
		addr := actionAddr(&acts[i])
		if addr == 0 {
			return fmt.Errorf("%w: unroutable action %d", ErrValidation, acts[i].code)
		}
		k := set.table.OfAddr(addr)
		if k < 0 {
			return fmt.Errorf("%w: action on unowned address %#x", ErrValidation, addr)
		}
		byShard[k] = append(byShard[k], acts[i])
	}
	participants := make([]int, 0, len(byShard))
	for k := range byShard {
		participants = append(participants, k)
	}
	sort.Ints(participants)
	coordID := participants[0]
	coord := set.shards[coordID]

	// Capacity precheck: every non-coordinator slice must fit its shard's
	// side-log as one prepare record.
	for _, k := range participants[1:] {
		s := set.shards[k]
		p := encodeActions(byShard[k])
		if max := s.tx.log.MaxPayload(); uint64(len(p))+32 > max {
			return fmt.Errorf("%w: %d-byte prepare, side-log fits %d",
				fsproto.ErrBatchTooLarge, len(p), max)
		}
	}
	// Worst-case space reservation per shard, charged against the tenant's
	// quota on each participant (every shard enforces its own partition).
	// The deferred settle credits back the unconsumed surplus per shard —
	// mid-transaction, TenantStat shows the reserved bytes on exactly the
	// participating shards and nowhere else.
	type shardRes struct {
		res    *alloc.Reservation
		demand uint64
	}
	reses := make(map[int]shardRes, len(participants))
	defer func() {
		for k, sr := range reses {
			s := set.shards[k]
			s.obsReserveFallbks.Add(int64(sr.res.Fallbacks()))
			sr.res.Release()
			s.tenantReserveDone(tenant, sr.demand, sr.res.ConsumedBytes())
		}
	}()
	for _, k := range participants {
		res, demand, rerr := set.shards[k].reserveForTenant(tenant, byShard[k])
		if rerr != nil {
			return rerr
		}
		reses[k] = shardRes{res: res, demand: demand}
	}
	set.txCtr++
	txid := set.txGen<<32 | (set.txCtr & 0xffffffff)

	// Phase 1 — prepare: each non-coordinator participant makes its slice
	// durable in its side-log. An abort from here until the coordinator's
	// fenced commit only needs tombstones (nothing reached a main journal).
	prepared := participants[1:]
	abortPrepared := func(upto int) {
		set.obsTxAborts.Inc()
		for _, k := range prepared[:upto] {
			_ = set.shards[k].txTombstone(txid, uint32(coordID))
		}
	}
	for i, k := range prepared {
		if perr := set.shards[k].txPrepare(txid, uint32(coordID), encodeActions(byShard[k])); perr != nil {
			abortPrepared(i)
			return perr
		}
	}
	// Every prepare is durable; the transaction's fate now rests on the
	// coordinator's main-journal commit. A kill here must abort on reopen
	// (no outcome record exists).
	if ferr := coord.faults.Hit("tfs.2pc.prepare"); ferr != nil {
		abortPrepared(len(prepared))
		return ferr
	}
	// Phase 2 — decide: the coordinator's actions plus the jTxCommit
	// marker ride one ordinary fenced batch. The fence IS the commit point:
	// before it, recovery aborts every prepare; after it, replay applies
	// the marker, which records the outcome the participants resolve by.
	cacts := append(append([]action(nil), byShard[coordID]...), action{code: jTxCommit, a: txid})
	if cerr := coord.commitActions(cacts); cerr != nil {
		abortPrepared(len(prepared))
		return cerr
	}
	// Committed but not yet applied: a kill here replays the coordinator's
	// batch (marker included) and the prepares resolve to commit.
	if ferr := coord.faults.Hit("tfs.2pc.commit"); ferr != nil {
		return ferr
	}
	if aerr := coord.applyAll(cacts, reses[coordID].res, tenant); aerr != nil {
		return aerr
	}
	// Outcome durable and coordinator applied; participants still hold
	// prepares. A kill here resolves them to commit on reopen.
	if ferr := coord.faults.Hit("tfs.2pc.resolve"); ferr != nil {
		return ferr
	}
	// Phase 3 — resolve: each participant journals its prepared actions
	// plus the jTxResolve marker as one batch; applying the marker retires
	// the prepare, atomically with the batch by replay.
	for _, k := range prepared {
		s := set.shards[k]
		racts := append(append([]action(nil), byShard[k]...), action{code: jTxResolve, a: txid, b: uint64(coordID)})
		if cerr := s.commitActions(racts); cerr != nil {
			return cerr
		}
		if aerr := s.applyAll(racts, reses[k].res, tenant); aerr != nil {
			return aerr
		}
	}
	for _, fn := range effects {
		fn()
	}
	for _, k := range participants {
		set.shards[k].BatchesApplied.Add(1)
	}
	coord.OpsApplied.Add(int64(len(ops)))
	coord.obsBatchOps.Observe(int64(len(ops)))
	set.obsTxns.Inc()
	return set.txGCLocked()
}
