package tfs

import (
	"bytes"
	"testing"
)

// FuzzDecodeActions throws arbitrary bytes at the journal-record decoder.
// Recovery runs it on every committed journal record — bytes that crossed a
// crash, so corruption is a when, not an if — and it must never panic or
// over-allocate on a hostile count. Anything it accepts must survive a
// re-encode/re-decode round trip unchanged, since redo replay re-reads the
// same record and must see the same actions.
func FuzzDecodeActions(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeActions(nil))
	f.Add(encodeActions([]action{
		{code: jInsert, oid: 0x4001, child: 0x8002, key: []byte("file.txt")},
	}))
	f.Add(encodeActions([]action{
		{code: jTruncate, oid: 0x8002, a: 4096},
		{code: jPreallocConsume, oid: 0x4001, key: []byte{1, 2, 3, 4, 5, 6, 7, 8}, a: 1 << 20},
		{code: jAttach, oid: 0x8002, a: 3, b: 1 << 20},
		{code: jFree, oid: 0x8002, a: 1 << 21, b: 8192},
	}))
	// The multi-tenant era's records: an apply-time object free (the
	// unlink-of-buffered-appends path) and a degraded NoGC remove, as a
	// quota-era batch would journal them.
	f.Add(encodeActions([]action{
		{code: jFreeObj, oid: 0x8002},
		{code: jRemove, oid: 0x4001, key: []byte("old"), a: 1},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		acts, err := decodeActions(data)
		if err != nil {
			return
		}
		back := encodeActions(acts)
		acts2, err := decodeActions(back)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if len(acts) != len(acts2) {
			t.Fatalf("round trip changed action count: %d -> %d", len(acts), len(acts2))
		}
		for i := range acts {
			a, b := acts[i], acts2[i]
			if a.code != b.code || a.oid != b.oid || a.child != b.child ||
				!bytes.Equal(a.key, b.key) || a.a != b.a || a.b != b.b {
				t.Fatalf("round trip changed action %d: %+v -> %+v", i, a, b)
			}
		}
		// The count cap bounds what a corrupted record can make recovery
		// allocate before per-action reads fail.
		if len(acts) > 1<<22 {
			t.Fatalf("decoder accepted %d actions past its own cap", len(acts))
		}
	})
}
