// Package shard defines the deterministic placement function that maps
// every object in a sharded Aerie volume to the trusted-service shard that
// owns it, plus the address-range table both sides use to answer "which
// shard owns this object?".
//
// Placement is by construction, not by lookup: an object lives on the shard
// whose allocator partition contains its header address, so ownership is a
// pure function of the OID. New objects are placed by hashing:
//
//   - FlatFS keys hash to a per-shard namespace collection (Bucket).
//   - PXFS directories hash their (parent, name) pair (Dir), with the
//     root pinned to shard 0 so path resolution always has an anchor.
//   - PXFS files are created on their parent directory's shard, keeping
//     the common create+insert pair a single-shard batch.
//
// Operations whose objects span two shards (rename across directories on
// different shards, cross-shard mkdir) are routed to the two-phase
// mini-transaction path instead of a single shard's window.
package shard

import "hash/fnv"

// Range is one shard's allocator partition: header addresses in
// [Start, Start+Size) belong to that shard.
type Range struct {
	Start uint64
	Size  uint64
}

// Table maps arena-absolute addresses to shard IDs. The slice index is the
// shard ID; ranges never overlap (they are distinct scmmgr partitions).
type Table []Range

// OfAddr returns the shard owning addr, or -1 when no shard's partition
// contains it (a forged or stale OID).
func (t Table) OfAddr(addr uint64) int {
	for i, r := range t {
		if addr >= r.Start && addr < r.Start+r.Size {
			return i
		}
	}
	return -1
}

// Bucket places a FlatFS key: hash(key) mod n. Deterministic across
// processes (FNV-1a), independent of insertion order.
func Bucket(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// Dir places a new PXFS directory by hashing its (parent, name) identity.
// The root directory is pinned to shard 0 by its creator (FormatVolume);
// every other directory's shard is a pure function of where and as what it
// was created, so concurrent clients agree without coordination.
func Dir(parent uint64, name []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	var p [8]byte
	for i := 0; i < 8; i++ {
		p[i] = byte(parent >> (8 * i))
	}
	h.Write(p[:])
	h.Write(name)
	return int(h.Sum32() % uint32(n))
}
