// Package scalesim regenerates the paper's thread- and client-scaling
// results (Figure 5, Table 3) on a single-CPU host. Real single-threaded
// runs record, for every workload operation, a phase trace: local compute
// time and intervals spent holding shared resources (global locks via the
// clerk, TFS service time via the RPC layer — see internal/costmodel). The
// simulator replays N concurrent threads against those resources in virtual
// time: exclusive phases serialize, shared phases overlap, multi-server
// resources (the multithreaded TFS) admit up to their capacity.
//
// The scaling shape the paper reports is produced by exactly this
// contention — the single-directory lock capping Webproxy on PXFS, bucket
// locks freeing it on FlatFS, the allocator and TFS limiting Fileserver —
// so replaying measured phases preserves it without multi-core hardware
// (see DESIGN.md's substitution table).
package scalesim

import (
	"container/heap"
	"fmt"
	"strings"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// Config controls a simulation.
type Config struct {
	// Threads is the simulated concurrency level.
	Threads int
	// OpsPerThread is how many operations each thread replays (cycling
	// through the trace). Default 200. Ignored when Duration is set.
	OpsPerThread int
	// Duration, when nonzero, runs every thread until this much virtual
	// time has elapsed instead of a fixed op count — the right mode when
	// threads run different workloads (Table 3's client mixes), since a
	// fast client should contribute more operations, not finish early.
	Duration time.Duration
	// Capacity overrides resource capacities by name (default 1; the
	// "tfs" resource defaults to TFSThreads).
	Capacity map[string]int
	// TFSThreads is the TFS service-thread count (default 6, the paper's
	// core count).
	TFSThreads int
	// Shards partitions the trusted service: each simulated thread's "tfs"
	// phases route to its home shard's service point ("tfs.<k>", k = thread
	// mod Shards — the analogue of namespace placement spreading client
	// working directories), and every shard gets its own TFSThreads-deep
	// capacity. Zero or one simulates the classic single service.
	Shards int
}

// Result summarizes a simulation.
type Result struct {
	Threads    int
	Ops        int64
	Makespan   time.Duration
	Throughput float64 // ops per second
	// MeanLatency is the virtual mean per-op latency.
	MeanLatency time.Duration
}

// resource is a reader-writer, capacity-K service point in virtual time.
type resource struct {
	capacity int
	// servers holds each server slot's next-free time (capacity > 1).
	servers []time.Duration
	// writerFree / lastReaderEnd implement reader-writer semantics for
	// capacity-1 lock resources.
	writerFree    time.Duration
	lastReaderEnd time.Duration
}

// acquire returns the completion time of a phase starting no earlier than
// now, updating the resource state.
func (r *resource) acquire(now time.Duration, mode costmodel.ResourceMode, dur time.Duration) time.Duration {
	if r.capacity > 1 {
		// Multi-server: earliest-free server (mode ignored; the TFS
		// serializes internally per request).
		best := 0
		for i := 1; i < len(r.servers); i++ {
			if r.servers[i] < r.servers[best] {
				best = i
			}
		}
		start := now
		if r.servers[best] > start {
			start = r.servers[best]
		}
		end := start + dur
		r.servers[best] = end
		return end
	}
	if mode == costmodel.Shared {
		start := now
		if r.writerFree > start {
			start = r.writerFree
		}
		end := start + dur
		if end > r.lastReaderEnd {
			r.lastReaderEnd = end
		}
		return end
	}
	start := now
	if r.writerFree > start {
		start = r.writerFree
	}
	if r.lastReaderEnd > start {
		start = r.lastReaderEnd
	}
	end := start + dur
	r.writerFree = end
	return end
}

// thread is one simulated workload thread.
type thread struct {
	now     time.Duration
	trace   []costmodel.OpTrace
	opIdx   int // position in the trace
	done    int
	latency time.Duration
	index   int // heap bookkeeping
	id      int // stable identity; decides the thread's home shard
}

type threadHeap []*thread

func (h threadHeap) Len() int            { return len(h) }
func (h threadHeap) Less(i, j int) bool  { return h[i].now < h[j].now }
func (h threadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *threadHeap) Push(x interface{}) { t := x.(*thread); t.index = len(*h); *h = append(*h, t) }
func (h *threadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// Simulate replays the recorded operations with cfg.Threads virtual
// threads sharing one trace (threads within one client process).
func Simulate(ops []costmodel.OpTrace, cfg Config) Result {
	if len(ops) == 0 || cfg.Threads <= 0 {
		return Result{Threads: cfg.Threads}
	}
	traces := make([][]costmodel.OpTrace, cfg.Threads)
	for i := range traces {
		traces[i] = ops
	}
	return SimulateTraces(traces, cfg)
}

// SimulateTraces replays one trace per virtual thread — the
// multiprogrammed-client experiments (Table 3) give each simulated client
// its own trace with per-client lock resources and a shared TFS.
func SimulateTraces(traces [][]costmodel.OpTrace, cfg Config) Result {
	cfg.Threads = len(traces)
	if cfg.Threads == 0 {
		return Result{}
	}
	if cfg.OpsPerThread <= 0 {
		cfg.OpsPerThread = 200
	}
	if cfg.TFSThreads <= 0 {
		cfg.TFSThreads = 6
	}
	resources := make(map[string]*resource)
	getRes := func(name string) *resource {
		r := resources[name]
		if r == nil {
			capacity := 1
			if name == "tfs" || strings.HasPrefix(name, "tfs.") {
				capacity = cfg.TFSThreads
			}
			if c, ok := cfg.Capacity[name]; ok {
				capacity = c
			}
			r = &resource{capacity: capacity}
			if capacity > 1 {
				r.servers = make([]time.Duration, capacity)
			}
			resources[name] = r
		}
		return r
	}
	// Per-shard trusted-service points, named once up front.
	var shardNames []string
	if cfg.Shards > 1 {
		shardNames = make([]string, cfg.Shards)
		for k := range shardNames {
			shardNames[k] = fmt.Sprintf("tfs.%d", k)
		}
	}
	h := make(threadHeap, 0, cfg.Threads)
	threads := make([]*thread, cfg.Threads)
	for i := range threads {
		if len(traces[i]) == 0 {
			return Result{Threads: cfg.Threads}
		}
		threads[i] = &thread{trace: traces[i], opIdx: i * len(traces[i]) / cfg.Threads, id: i}
		heap.Push(&h, threads[i])
	}
	var totalOps int64
	var makespan time.Duration
	finished := func(t *thread) bool {
		if cfg.Duration > 0 {
			return t.now >= cfg.Duration
		}
		return t.done >= cfg.OpsPerThread
	}
	for {
		t := heap.Pop(&h).(*thread)
		if finished(t) {
			if t.now > makespan {
				makespan = t.now
			}
			if h.Len() == 0 {
				break
			}
			continue
		}
		op := t.trace[t.opIdx%len(t.trace)]
		t.opIdx++
		start := t.now
		for _, ph := range op.Phases {
			if ph.Resource == "" {
				t.now += ph.Dur
				continue
			}
			name := ph.Resource
			if shardNames != nil && name == "tfs" {
				name = shardNames[t.id%cfg.Shards]
			}
			t.now = getRes(name).acquire(t.now, ph.Mode, ph.Dur)
		}
		t.latency += t.now - start
		t.done++
		totalOps++
		heap.Push(&h, t)
	}
	res := Result{Threads: cfg.Threads, Ops: totalOps, Makespan: makespan}
	if cfg.Duration > 0 && makespan < cfg.Duration {
		makespan = cfg.Duration
		res.Makespan = makespan
	}
	if makespan > 0 {
		res.Throughput = float64(totalOps) / makespan.Seconds()
	}
	if totalOps > 0 {
		var lat time.Duration
		for _, t := range threads {
			lat += t.latency
		}
		res.MeanLatency = lat / time.Duration(totalOps)
	}
	return res
}

// Sweep runs the simulation across thread counts.
func Sweep(ops []costmodel.OpTrace, threadCounts []int, cfg Config) []Result {
	out := make([]Result, 0, len(threadCounts))
	for _, n := range threadCounts {
		c := cfg
		c.Threads = n
		out = append(out, Simulate(ops, c))
	}
	return out
}
