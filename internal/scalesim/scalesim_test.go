package scalesim

import (
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

func op(phases ...costmodel.Phase) costmodel.OpTrace {
	var total time.Duration
	for _, p := range phases {
		total += p.Dur
	}
	return costmodel.OpTrace{Name: "op", Phases: phases, Total: total}
}

func local(d time.Duration) costmodel.Phase { return costmodel.Phase{Dur: d} }

func excl(res string, d time.Duration) costmodel.Phase {
	return costmodel.Phase{Resource: res, Mode: costmodel.Exclusive, Dur: d}
}

func shared(res string, d time.Duration) costmodel.Phase {
	return costmodel.Phase{Resource: res, Mode: costmodel.Shared, Dur: d}
}

func sweep(t *testing.T, ops []costmodel.OpTrace, counts []int) []Result {
	t.Helper()
	return Sweep(ops, counts, Config{OpsPerThread: 300})
}

func TestPureLocalWorkScalesLinearly(t *testing.T) {
	ops := []costmodel.OpTrace{op(local(10 * time.Microsecond))}
	rs := sweep(t, ops, []int{1, 4, 8})
	if rs[1].Throughput < 3.5*rs[0].Throughput {
		t.Fatalf("4 threads only %.1fx", rs[1].Throughput/rs[0].Throughput)
	}
	if rs[2].Throughput < 7*rs[0].Throughput {
		t.Fatalf("8 threads only %.1fx", rs[2].Throughput/rs[0].Throughput)
	}
}

func TestExclusiveResourceCapsThroughput(t *testing.T) {
	// 80% of each op holds one exclusive lock: adding threads cannot beat
	// 1/lockTime.
	ops := []costmodel.OpTrace{op(local(2*time.Microsecond), excl("lock:dir", 8*time.Microsecond))}
	rs := sweep(t, ops, []int{1, 2, 8})
	limit := 1e9 / 8000.0 * 1000 // ops/sec bound by the 8µs lock hold
	if rs[2].Throughput > limit*1.1 {
		t.Fatalf("8 threads exceed the serial bound: %.0f > %.0f", rs[2].Throughput, limit)
	}
	if rs[2].Throughput > rs[0].Throughput*2 {
		t.Fatalf("lock-bound workload scaled %.1fx", rs[2].Throughput/rs[0].Throughput)
	}
}

func TestSharedPhasesOverlap(t *testing.T) {
	// Read-mostly: shared lock phases should scale nearly linearly.
	ops := []costmodel.OpTrace{op(local(time.Microsecond), shared("lock:dir", 9*time.Microsecond))}
	rs := sweep(t, ops, []int{1, 8})
	if rs[1].Throughput < 6*rs[0].Throughput {
		t.Fatalf("shared workload scaled only %.1fx", rs[1].Throughput/rs[0].Throughput)
	}
}

func TestMultiServerResource(t *testing.T) {
	// Ops fully occupy the TFS: throughput scales with its capacity, then
	// saturates.
	ops := []costmodel.OpTrace{op(excl("tfs", 10*time.Microsecond))}
	one := Simulate(ops, Config{Threads: 1, OpsPerThread: 200, TFSThreads: 4})
	four := Simulate(ops, Config{Threads: 4, OpsPerThread: 200, TFSThreads: 4})
	eight := Simulate(ops, Config{Threads: 8, OpsPerThread: 200, TFSThreads: 4})
	if four.Throughput < 3.5*one.Throughput {
		t.Fatalf("4 threads on 4 servers: %.1fx", four.Throughput/one.Throughput)
	}
	if eight.Throughput > four.Throughput*1.3 {
		t.Fatalf("8 threads beat the 4-server capacity: %.0f vs %.0f", eight.Throughput, four.Throughput)
	}
}

func TestMixedContention(t *testing.T) {
	// The Webproxy-on-PXFS shape: writes serialize on a directory lock,
	// reads share it. Throughput should rise a little then flatten.
	ops := []costmodel.OpTrace{
		op(local(time.Microsecond), shared("lock:dir", 4*time.Microsecond)),
		op(local(time.Microsecond), shared("lock:dir", 4*time.Microsecond)),
		op(local(time.Microsecond), excl("lock:dir", 6*time.Microsecond)),
	}
	rs := sweep(t, ops, []int{1, 2, 4, 10})
	if rs[3].Throughput < rs[0].Throughput {
		t.Fatal("throughput collapsed below single-thread")
	}
	// The exclusive third bounds scaling well below linear.
	if rs[3].Throughput > 6*rs[0].Throughput {
		t.Fatalf("contended mix scaled %.1fx", rs[3].Throughput/rs[0].Throughput)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Simulate(nil, Config{Threads: 4})
	if r.Ops != 0 || r.Throughput != 0 {
		t.Fatalf("empty trace result: %+v", r)
	}
}

func TestLatencyGrowsUnderContention(t *testing.T) {
	ops := []costmodel.OpTrace{op(excl("lock:x", 5*time.Microsecond))}
	one := Simulate(ops, Config{Threads: 1, OpsPerThread: 100})
	eight := Simulate(ops, Config{Threads: 8, OpsPerThread: 100})
	if eight.MeanLatency < 4*one.MeanLatency {
		t.Fatalf("latency under contention: %v vs %v", eight.MeanLatency, one.MeanLatency)
	}
}
