package libfs

import (
	"errors"
	"fmt"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Staged object creation and shadow-aware reads/writes. A client builds new
// objects directly in its pre-allocated extents (which it owns and may
// write), logs an OpCreateObject, and from then on observes the object
// through its shadows until the batch ships.

// CreateCollectionStaged builds a collection client-side and logs its
// creation.
func (s *Session) CreateCollectionStaged(perm uint32) (sobj.OID, error) {
	return s.CreateCollectionStagedOn(0, perm)
}

// CreateCollectionStagedOn stages the collection on the given shard — the
// placement layer picks the shard, and the object's storage (hence the OID)
// lands inside that shard's partition.
func (s *Session) CreateCollectionStagedOn(shardID int, perm uint32) (sobj.OID, error) {
	col, err := sobj.CreateCollection(s.Mem, s.StagingAllocatorOn(shardID), perm)
	if err != nil {
		return 0, err
	}
	oid := col.OID()
	if err := s.LogOp(fsproto.Op{Code: fsproto.OpCreateObject, Target: oid}); err != nil {
		return 0, err
	}
	return oid, nil
}

// CreateMFileStaged builds a radix-tree mFile client-side and logs its
// creation.
func (s *Session) CreateMFileStaged(perm uint32, extentLog uint32) (sobj.OID, error) {
	return s.CreateMFileStagedOn(0, perm, extentLog)
}

// CreateMFileStagedOn stages the mFile on the given shard.
func (s *Session) CreateMFileStagedOn(shardID int, perm uint32, extentLog uint32) (sobj.OID, error) {
	m, err := sobj.CreateMFile(s.Mem, s.StagingAllocatorOn(shardID), perm, extentLog)
	if err != nil {
		return 0, err
	}
	oid := m.OID()
	if err := s.LogOp(fsproto.Op{Code: fsproto.OpCreateObject, Target: oid}); err != nil {
		return 0, err
	}
	return oid, nil
}

// CreateMFileSingleStaged builds a single-extent mFile (FlatFS files).
func (s *Session) CreateMFileSingleStaged(perm uint32, capacity uint64) (sobj.OID, error) {
	return s.CreateMFileSingleStagedOn(0, perm, capacity)
}

// CreateMFileSingleStagedOn stages the single-extent mFile on the given
// shard.
func (s *Session) CreateMFileSingleStagedOn(shardID int, perm uint32, capacity uint64) (sobj.OID, error) {
	m, err := sobj.CreateMFileSingle(s.Mem, s.StagingAllocatorOn(shardID), perm, capacity)
	if err != nil {
		return 0, err
	}
	oid := m.OID()
	if err := s.LogOp(fsproto.Op{Code: fsproto.OpCreateObject, Target: oid}); err != nil {
		return 0, err
	}
	return oid, nil
}

// ---- Directory (collection) operations through the shadow overlay ----

func (s *Session) colShadow(dir sobj.OID) *colShadow {
	cs := s.colShadows[dir]
	if cs == nil {
		cs = &colShadow{ins: make(map[string]colIns), del: make(map[string]uint64)}
		s.colShadows[dir] = cs
	}
	return cs
}

// DirLookup resolves key in dir, seeing the client's own staged updates.
func (s *Session) DirLookup(dir sobj.OID, key []byte) (sobj.OID, bool, error) {
	s.mu.Lock()
	if cs := s.colShadows[dir]; cs != nil {
		if v, ok := cs.ins[string(key)]; ok {
			s.mu.Unlock()
			return v.oid, true, nil
		}
		if _, ok := cs.del[string(key)]; ok {
			s.mu.Unlock()
			return 0, false, nil
		}
	}
	s.mu.Unlock()
	s.ReadBarrier()
	col, err := sobj.OpenCollection(s.Mem, dir)
	if err != nil {
		return 0, false, err
	}
	v, err := col.Lookup(key)
	if errors.Is(err, sobj.ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// DirInsert stages key -> child in dir under coverLock.
func (s *Session) DirInsert(dir sobj.OID, key []byte, child sobj.OID, coverLock uint64) error {
	s.mu.Lock()
	cs := s.colShadow(dir)
	cs.ins[string(key)] = colIns{oid: child, cover: coverLock}
	delete(cs.del, string(key))
	s.mu.Unlock()
	return s.LogOp(fsproto.Op{
		Code: fsproto.OpInsert, Target: dir, Child: child,
		Key: append([]byte(nil), key...), CoverLock: coverLock,
	})
}

// DirRemove stages removal of key from dir under coverLock. involved
// optionally names the entry's resolved victim: the remove's server-side
// effects land on the victim's shard, which the op fields alone don't
// reveal, so sharded callers pass the OID their own lookup found.
func (s *Session) DirRemove(dir sobj.OID, key []byte, coverLock uint64, involved ...sobj.OID) error {
	// Crash between shadow update and LogOp: the unlink is observed
	// locally but never ships — it must vanish cleanly with the client.
	if err := s.cfg.Faults.Hit("libfs.unlink"); err != nil {
		return err
	}
	s.mu.Lock()
	cs := s.colShadow(dir)
	delete(cs.ins, string(key))
	cs.del[string(key)] = coverLock
	s.mu.Unlock()
	op := fsproto.Op{
		Code: fsproto.OpRemove, Target: dir,
		Key: append([]byte(nil), key...), CoverLock: coverLock,
	}
	return s.logOps(&op, nil, involved)
}

// DirInsertFlat stages an insert covered by a FlatFS bucket lock: the
// no-grow flag tells the TFS to extend with overflow chains rather than
// rehash (which would invalidate bucket locks, §6.2).
func (s *Session) DirInsertFlat(dir sobj.OID, key []byte, child sobj.OID, bucketLock uint64) error {
	s.mu.Lock()
	cs := s.colShadow(dir)
	cs.ins[string(key)] = colIns{oid: child, cover: bucketLock}
	delete(cs.del, string(key))
	s.mu.Unlock()
	return s.LogOp(fsproto.Op{
		Code: fsproto.OpInsert, Target: dir, Child: child,
		Key: append([]byte(nil), key...), CoverLock: bucketLock, Val: 1,
	})
}

// DirRemoveFlat stages a bucket-locked remove (no tombstone GC rehash).
// involved names the resolved victim, as in DirRemove.
func (s *Session) DirRemoveFlat(dir sobj.OID, key []byte, bucketLock uint64, involved ...sobj.OID) error {
	s.mu.Lock()
	cs := s.colShadow(dir)
	delete(cs.ins, string(key))
	cs.del[string(key)] = bucketLock
	s.mu.Unlock()
	op := fsproto.Op{
		Code: fsproto.OpRemove, Target: dir,
		Key: append([]byte(nil), key...), CoverLock: bucketLock, Val: 1,
	}
	return s.logOps(&op, nil, involved)
}

// DirRename stages an atomic move. involved optionally names an overwritten
// destination entry (its teardown lands on its own shard; see DirRemove).
// The op itself spells out both directories and the moved child, so a
// rename spanning shards routes to the cross-shard transaction path on its
// own.
func (s *Session) DirRename(srcDir sobj.OID, srcKey []byte, dstDir sobj.OID, dstKey []byte, child sobj.OID, coverSrc, coverDst uint64, involved ...sobj.OID) error {
	// The rename is one op in the local log, so a crash can only lose it
	// whole — the sweep asserts the entry is at exactly one of the names.
	if err := s.cfg.Faults.Hit("libfs.rename"); err != nil {
		return err
	}
	s.mu.Lock()
	css := s.colShadow(srcDir)
	delete(css.ins, string(srcKey))
	css.del[string(srcKey)] = coverSrc
	csd := s.colShadow(dstDir)
	csd.ins[string(dstKey)] = colIns{oid: child, cover: coverDst}
	delete(csd.del, string(dstKey))
	s.mu.Unlock()
	op := fsproto.Op{
		Code: fsproto.OpRename, Target: srcDir, Dir2: dstDir, Child: child,
		Key:       append([]byte(nil), srcKey...),
		Key2:      append([]byte(nil), dstKey...),
		CoverLock: coverSrc, Cover2: coverDst,
	}
	return s.logOps(&op, nil, involved)
}

// StagedInserts reports how many inserts into dir are buffered but not yet
// shipped (FlatFS adds them to the live count when deciding whether the
// next insert could trigger a rehash).
func (s *Session) StagedInserts(dir sobj.OID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.colShadows[dir]; cs != nil {
		return len(cs.ins)
	}
	return 0
}

// DirIterate walks dir's live entries merged with the staged overlay.
func (s *Session) DirIterate(dir sobj.OID, fn func(key []byte, val sobj.OID) error) error {
	s.mu.Lock()
	var ins map[string]sobj.OID
	var del map[string]bool
	if cs := s.colShadows[dir]; cs != nil {
		ins = make(map[string]sobj.OID, len(cs.ins))
		for k, v := range cs.ins {
			ins[k] = v.oid
		}
		del = make(map[string]bool, len(cs.del))
		for k := range cs.del {
			del[k] = true
		}
	}
	s.mu.Unlock()
	s.ReadBarrier()
	col, err := sobj.OpenCollection(s.Mem, dir)
	if err != nil {
		return err
	}
	if err := col.Iterate(func(key []byte, val sobj.OID) error {
		if del[string(key)] {
			return nil
		}
		if _, staged := ins[string(key)]; staged {
			return nil // staged value wins below
		}
		return fn(key, val)
	}); err != nil {
		return err
	}
	for k, v := range ins {
		if err := fn([]byte(k), v); err != nil {
			return err
		}
	}
	return nil
}

// ---- Shadow-aware file I/O ----

func (s *Session) fileShadow(oid sobj.OID, cover uint64) *fileShadow {
	sh := s.shadows[oid]
	if sh == nil {
		sh = &fileShadow{pendingExtents: make(map[uint64]uint64)}
		s.shadows[oid] = sh
	}
	sh.cover = cover
	return sh
}

// FileSize returns the file size the client observes (pending size wins).
func (s *Session) FileSize(oid sobj.OID) (uint64, error) {
	s.mu.Lock()
	if sh := s.shadows[oid]; sh != nil && sh.hasSize {
		n := sh.size
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()
	s.ReadBarrier()
	m, err := sobj.OpenMFile(s.Mem, oid)
	if err != nil {
		return 0, err
	}
	return m.Size()
}

// FileSetSize stages a logical size change under coverLock.
func (s *Session) FileSetSize(oid sobj.OID, n uint64, coverLock uint64) error {
	return s.FileSetSizeKeyed(oid, n, coverLock, nil)
}

// FileSetSizeKeyed is FileSetSize for bucket-locked FlatFS files: key binds
// the file into its collection for the TFS's cover check.
func (s *Session) FileSetSizeKeyed(oid sobj.OID, n uint64, coverLock uint64, key []byte) error {
	s.mu.Lock()
	sh := s.fileShadow(oid, coverLock)
	sh.size = n
	sh.hasSize = true
	s.mu.Unlock()
	return s.LogOp(fsproto.Op{Code: fsproto.OpSetSize, Target: oid, Val: n, CoverLock: coverLock,
		Key: append([]byte(nil), key...)})
}

// FileTruncate stages a shrink. Blocks beyond the cut become holes in the
// client's shadow: the extents currently mapped there (pending or applied)
// will be freed when the TFS applies the truncate, so later writes must
// stage fresh extents rather than write through soon-to-be-freed storage.
//
// When the cut lands mid-block, the bytes beyond it in the kept block must
// read as zeros afterwards. Zeroing has to happen on the client and under
// the batch's ordering: the TFS cannot zero at apply time, because a later
// write in the same batch may already have refilled those bytes in place
// (data writes never go through the op log). Nor may the client zero
// committed storage directly — an unshipped truncate must not destroy
// durable data. So: an extent staged in this batch (invisible until
// commit) is zeroed in place; a committed extent gets a copy-on-truncate
// replacement — the truncate is staged down to the block boundary, a fresh
// extent carrying the head bytes with a zeroed tail is attached in its
// place, and the logical size is set last.
func (s *Session) FileTruncate(oid sobj.OID, n uint64, coverLock uint64) error {
	m, err := sobj.OpenMFile(s.Mem, oid)
	if err != nil {
		return err
	}
	single, err := m.IsSingle()
	if err != nil {
		return err
	}
	bs := uint64(1)
	if !single {
		if bs, err = m.BlockSize(); err != nil {
			return err
		}
	}
	cur, err := s.FileSize(oid)
	if err != nil {
		return err
	}
	truncTo := n
	var freshExt, freshBlk uint64
	hasFresh := false
	if tail := n % bs; !single && n < cur && tail != 0 {
		blk := n / bs
		ext, err := s.extentFor(m, oid, blk, bs)
		if err != nil {
			return err
		}
		s.mu.Lock()
		pending := ext != 0 && s.shadows[oid] != nil && s.shadows[oid].pendingExtents[blk] == ext
		s.mu.Unlock()
		switch {
		case ext == 0:
			// Hole: already reads as zeros.
		case pending:
			if err := scm.Zero(s.Mem, ext+tail, int(bs-tail)); err != nil {
				return err
			}
			if err := s.Mem.Flush(ext+tail, int(bs-tail)); err != nil {
				return err
			}
		default:
			head := make([]byte, tail)
			if _, err := s.FileRead(oid, head, blk*bs); err != nil {
				return err
			}
			fresh, err := s.AllocStagedFor(oid, bs)
			if err != nil {
				return err
			}
			if err := scm.Zero(s.Mem, fresh, int(bs)); err != nil {
				return err
			}
			if err := s.Mem.Write(fresh, head); err != nil {
				return err
			}
			if err := s.Mem.Flush(fresh, int(bs)); err != nil {
				return err
			}
			truncTo = blk * bs
			freshExt, freshBlk = fresh, blk
			hasFresh = true
		}
	}
	s.mu.Lock()
	sh := s.fileShadow(oid, coverLock)
	sh.size = n
	sh.hasSize = true
	if !single {
		keep := (n + bs - 1) / bs
		if !sh.hasHole || keep < sh.holeFrom {
			sh.hasHole = true
			sh.holeFrom = keep
		}
		for blk := range sh.pendingExtents {
			if blk >= keep {
				delete(sh.pendingExtents, blk)
			}
		}
		if hasFresh {
			sh.pendingExtents[freshBlk] = freshExt
		}
	}
	s.mu.Unlock()
	if !hasFresh {
		return s.LogOp(fsproto.Op{Code: fsproto.OpTruncate, Target: oid, Val: truncTo, CoverLock: coverLock})
	}
	// The copy-on-truncate triple must land in one batch: an auto-ship
	// between the boundary truncate and the attach would apply the
	// destructive truncate alone and clear the shadows, losing the kept
	// block's head bytes for readers now and, on a crash before the next
	// ship, durably.
	return s.LogOps([]fsproto.Op{
		{Code: fsproto.OpTruncate, Target: oid, Val: truncTo, CoverLock: coverLock},
		{Code: fsproto.OpAttachExtent, Target: oid, Val: freshBlk, Val2: freshExt, CoverLock: coverLock},
		{Code: fsproto.OpSetSize, Target: oid, Val: n, CoverLock: coverLock},
	})
}

// extentFor resolves a block through the shadow first, then the mFile.
// Staged truncates hide the mFile's extents beyond the cut (they are doomed
// to be freed when the batch applies).
func (s *Session) extentFor(m *sobj.MFile, oid sobj.OID, blockIdx uint64, bs uint64) (uint64, error) {
	s.mu.Lock()
	if sh := s.shadows[oid]; sh != nil {
		if sh.pendingSingle != 0 {
			addr := sh.pendingSingle
			s.mu.Unlock()
			return addr, nil
		}
		if a, ok := sh.pendingExtents[blockIdx]; ok {
			s.mu.Unlock()
			return a, nil
		}
		if sh.hasHole && blockIdx >= sh.holeFrom {
			s.mu.Unlock()
			return 0, nil
		}
	}
	s.mu.Unlock()
	return m.ExtentFor(blockIdx * bs)
}

// readDirect copies len(dst) bytes at addr into dst through the protected
// mapping: from the zero-copy window when the mapping slices (one copy, SCM
// to application buffer), else via Read.
func (s *Session) readDirect(addr uint64, dst []byte) error {
	if s.sl != nil {
		b, err := s.sl.Slice(addr, len(dst))
		if err != nil {
			return err
		}
		copy(dst, b)
		return nil
	}
	return s.Mem.Read(addr, dst)
}

// FileRead reads through the shadow overlay: pending extents and pending
// size are visible to this client before the batch ships.
func (s *Session) FileRead(oid sobj.OID, p []byte, off uint64) (int, error) {
	m, err := sobj.OpenMFile(s.Mem, oid)
	if err != nil {
		return 0, err
	}
	size, err := s.FileSize(oid)
	if err != nil {
		return 0, err
	}
	if off >= size {
		return 0, nil
	}
	if off+uint64(len(p)) > size {
		p = p[:size-off]
	}
	single, err := m.IsSingle()
	if err != nil {
		return 0, err
	}
	if single {
		ext, err := s.extentFor(m, oid, 0, 1)
		if err != nil {
			return 0, err
		}
		if ext == 0 {
			for i := range p {
				p[i] = 0
			}
			return len(p), nil
		}
		if err := s.readDirect(ext+off, p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	bs, err := m.BlockSize()
	if err != nil {
		return 0, err
	}
	read := 0
	for read < len(p) {
		cur := off + uint64(read)
		blockIdx := cur / bs
		inBlock := cur % bs
		chunk := int(bs - inBlock)
		if chunk > len(p)-read {
			chunk = len(p) - read
		}
		ext, err := s.extentFor(m, oid, blockIdx, bs)
		if err != nil {
			return read, err
		}
		dst := p[read : read+chunk]
		if ext == 0 {
			for i := range dst {
				dst[i] = 0
			}
		} else if err := s.readDirect(ext+inBlock, dst); err != nil {
			return read, err
		}
		read += chunk
	}
	return read, nil
}

// FileWrite writes p at off, extending the file as needed: holes and
// appends take extents from the pre-allocated pool, are written directly,
// and their attachment is logged for the TFS to verify and link (§5.3.5 —
// the server only verifies each allocation and attaches each extent rather
// than allocating and writing itself). Size growth is staged too.
func (s *Session) FileWrite(oid sobj.OID, p []byte, off uint64, coverLock uint64) (int, error) {
	return s.FileWriteKeyed(oid, p, off, coverLock, nil)
}

// FileWriteKeyed is FileWrite for bucket-locked FlatFS files.
func (s *Session) FileWriteKeyed(oid sobj.OID, p []byte, off uint64, coverLock uint64, key []byte) (int, error) {
	// A crash anywhere in the write sequence (before/between extent
	// staging, data flush, and the size op) leaves staged extents and a
	// partial local log the TFS never sees; scavenging reclaims them.
	if err := s.cfg.Faults.Hit("libfs.write"); err != nil {
		return 0, err
	}
	m, err := sobj.OpenMFile(s.Mem, oid)
	if err != nil {
		return 0, err
	}
	single, err := m.IsSingle()
	if err != nil {
		return 0, err
	}
	if single {
		return s.singleWrite(m, oid, p, off, coverLock, key)
	}
	bs, err := m.BlockSize()
	if err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		cur := off + uint64(written)
		blockIdx := cur / bs
		inBlock := cur % bs
		chunk := int(bs - inBlock)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		ext, err := s.extentFor(m, oid, blockIdx, bs)
		if err != nil {
			return written, err
		}
		if ext == 0 {
			ext, err = s.stageExtent(oid, blockIdx, bs, chunk == int(bs), coverLock, key)
			if err != nil {
				return written, err
			}
		}
		if err := scm.WriteFlush(s.Mem, ext+inBlock, p[written:written+chunk]); err != nil {
			return written, err
		}
		written += chunk
	}
	end := off + uint64(len(p))
	size, err := s.FileSize(oid)
	if err != nil {
		return written, err
	}
	if end > size {
		if err := s.FileSetSizeKeyed(oid, end, coverLock, key); err != nil {
			return written, err
		}
	}
	return written, nil
}

// stageExtent allocates, zeroes (when partially covered), and stages an
// extent for blockIdx.
func (s *Session) stageExtent(oid sobj.OID, blockIdx, bs uint64, fullCover bool, coverLock uint64, key []byte) (uint64, error) {
	if err := s.cfg.Faults.Hit("libfs.stage.extent"); err != nil {
		return 0, err
	}
	ext, err := s.AllocStagedFor(oid, bs)
	if err != nil {
		return 0, err
	}
	if !fullCover {
		if err := scm.Zero(s.Mem, ext, int(bs)); err != nil {
			return 0, err
		}
		if err := s.Mem.Flush(ext, int(bs)); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	s.fileShadow(oid, coverLock).pendingExtents[blockIdx] = ext
	s.mu.Unlock()
	if err := s.LogOp(fsproto.Op{
		Code: fsproto.OpAttachExtent, Target: oid,
		Val: blockIdx, Val2: ext, CoverLock: coverLock,
		Key: append([]byte(nil), key...),
	}); err != nil {
		return 0, err
	}
	return ext, nil
}

// singleWrite handles FlatFS-style single-extent files, growing by staging
// a replacement extent when the write exceeds the current capacity.
func (s *Session) singleWrite(m *sobj.MFile, oid sobj.OID, p []byte, off uint64, coverLock uint64, key []byte) (int, error) {
	curExt, curCap, err := m.SingleExtent()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	sh := s.shadows[oid]
	var ext uint64
	if sh != nil && sh.pendingSingle != 0 {
		ext = sh.pendingSingle
		curCap = sh.singleCap
	}
	s.mu.Unlock()
	need := off + uint64(len(p))
	if need > curCap {
		// Stage a larger replacement extent carrying the old contents.
		newCap := curCap * 2
		if newCap < need {
			newCap = need
		}
		newExt, err := s.AllocStagedFor(oid, newCap)
		if err != nil {
			return 0, err
		}
		size, err := s.FileSize(oid)
		if err != nil {
			return 0, err
		}
		buf := make([]byte, size)
		if _, err := s.FileRead(oid, buf, 0); err != nil {
			return 0, err
		}
		if err := scm.Zero(s.Mem, newExt, int(newCap)); err != nil {
			return 0, err
		}
		if len(buf) > 0 {
			if err := s.Mem.Write(newExt, buf); err != nil {
				return 0, err
			}
		}
		if err := s.Mem.Flush(newExt, int(newCap)); err != nil {
			return 0, err
		}
		actualCap := poolBlockSize(newCap)
		s.mu.Lock()
		shh := s.fileShadow(oid, coverLock)
		shh.pendingSingle = newExt
		shh.singleCap = actualCap
		s.mu.Unlock()
		if err := s.LogOp(fsproto.Op{
			Code: fsproto.OpReplaceExt, Target: oid,
			Val: newExt, Val2: actualCap, CoverLock: coverLock,
			Key: append([]byte(nil), key...),
		}); err != nil {
			return 0, err
		}
		ext = newExt
	} else if ext == 0 {
		ext = curExt
		if ext == 0 {
			return 0, fmt.Errorf("libfs: single-extent file with no extent")
		}
	}
	if err := scm.WriteFlush(s.Mem, ext+off, p); err != nil {
		return 0, err
	}
	size, err := s.FileSize(oid)
	if err != nil {
		return 0, err
	}
	if need > size {
		if err := s.FileSetSizeKeyed(oid, need, coverLock, key); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// poolBlockSize returns the actual extent size the pool hands out for a
// request (the buddy block size).
func poolBlockSize(size uint64) uint64 {
	order := uint(12)
	for uint64(1)<<order < size {
		order++
	}
	return 1 << order
}
