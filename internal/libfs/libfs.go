// Package libfs is Aerie's untrusted client library (§4.2): the in-process
// half of the file system. It mounts the volume through the kernel SCM
// manager, reads metadata and data directly from SCM through its protected
// mapping, stages new objects into pre-allocated extents, buffers metadata
// updates in a local log that is shipped to the TFS in batches (§5.3.5 —
// on a size threshold, on Sync, and whenever a global lock is released or
// revoked), and keeps volatile shadow state so a client observes its own
// not-yet-shipped updates.
package libfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/shard"
	"github.com/aerie-fs/aerie/internal/sobj"
	"github.com/aerie-fs/aerie/internal/wire"
)

// Config tunes a client session.
type Config struct {
	// UID is the client's user identity; it joins the volume group.
	UID uint32
	// Tenant is the session's tenant binding (0: the default tenant —
	// weight 1, no quota). It is registered at mount and stamped into every
	// shipped batch; the TFS rejects a batch claiming any other tenant, and
	// charges the session's space and scheduling against this one.
	Tenant uint32
	// BatchLimit is the metadata log size that triggers shipping
	// (default 8 MiB, the paper's measured optimum).
	BatchLimit int
	// Window is the number of batches the session keeps in flight to the
	// TFS (default 1: the synchronous ship-and-wait path, no background
	// goroutine). With Window K > 1 a full batch rotates into the ship
	// queue and a background shipper sends it while the caller keeps
	// logging; LogOp blocks only when K batches are already pending, and
	// Sync drains the whole window. Batches are sequence-numbered so the
	// TFS can verify a session's window applies in order.
	Window int
	// PoolRefill is how many extents one Prealloc RPC fetches (default 64).
	PoolRefill uint32
	// RenewEvery starts clerk lease renewal (default: lease-dependent off).
	RenewEvery time.Duration
	// Tracer records phase traces for the scalability simulator (single-
	// threaded capture runs only).
	Tracer *costmodel.Tracer
	// Costs injects the RPC round-trip latency (may be nil).
	Costs *costmodel.Costs
	// BusyRetries bounds the in-call retries when the TFS sheds a batch
	// with fsproto.ErrBusy (default 8, -1 disables). Each retry sleeps a
	// jittered backoff floored at the server's retry-after hint; once
	// exhausted the batch stays parked for a later Sync.
	BusyRetries int
	// Faults, when non-nil, arms fault points on the client's mutation
	// sequences (libfs.*). Nil in production.
	Faults *faultinject.Injector
	// Obs, when non-nil, receives client-side metrics (libfs.ship.ops /
	// libfs.ship.bytes batch-size histograms, clerk cache counters) and is
	// inherited by the interface layers (PXFS, FlatFS) mounted on this
	// session.
	Obs *obs.Sink
}

// ErrStaleBatch reports that the TFS rejected a batch; the client's buffered
// updates were discarded (§4.3: integrity is preserved, client data may be
// lost).
var ErrStaleBatch = errors.New("libfs: update batch rejected and discarded")

// ErrTFSUnreachable reports that a batch could not be shipped because the
// transport failed (timeout, reconnect exhausted). Unlike ErrStaleBatch the
// updates are NOT discarded: the batch is requeued and the shadow state
// kept, so a later Sync retries once the TFS is back.
var ErrTFSUnreachable = errors.New("libfs: TFS unreachable, updates requeued")

// Session is a mounted client. All methods are safe for concurrent use by
// the process's threads.
type Session struct {
	rc    rpc.Client
	Clerk *lockservice.Clerk
	mgr   *scmmgr.Manager
	proc  *scmmgr.Process
	// mappings holds one kernel partition mapping per shard (one entry on a
	// classic volume); Mem composes them.
	mappings []*scmmgr.Mapping
	cfg      Config

	// Mem is the session's protected view of SCM.
	Mem scm.Space
	// sl is Mem's zero-copy capability (resolved once at mount), used by
	// the direct readers to copy file data straight from the mapped arena
	// into application buffers.
	sl scm.Slicer
	// Root is the volume root collection.
	Root sobj.OID

	// Sharding (shardroute.go). shards/table/repoch come from the mount
	// reply on a sharded volume (empty on a classic one): table maps any
	// SCM address to its owning shard, and repoch is echoed in every
	// shard-framed request so a restarted set can reject stale routing.
	shards []fsproto.ShardInfo
	table  shard.Table
	repoch uint32

	mu         sync.Mutex
	batch      []fsproto.Op
	batchBytes int
	// groups partitions batch into the indivisible units it was logged in
	// (one per LogOp/LogOps call), each carrying the staged extents its ops
	// consumed from the pool — the unit of batch splitting and of rollback
	// when the TFS rejects a batch for space.
	groups []opGroup
	// pendingStaged accumulates pool extents taken since the last log call;
	// the next LogOp/LogOps claims them into its group.
	pendingStaged []stagedExt
	// shipq holds batches whose ship is in flight or parked: head is
	// retried identically (same payload + request ID) after a transport
	// failure, and an oversized batch is split in place into two halves.
	// With a pipelined window (cfg.Window > 1) it is the completion
	// window: entries complete strictly in order, head first.
	shipq      []*shipState
	shadows    map[sobj.OID]*fileShadow
	colShadows map[sobj.OID]*colShadow
	// pools holds staged extents per shard (index = shard ID; one entry on
	// a classic volume): buddy order -> extent addrs. Extents come from
	// their shard's allocator and every object's storage stays on its
	// owning shard, so the pools never mix.
	pools        []map[uint][]uint64
	releaseHooks []func(lockID uint64)
	discardHooks []func()
	closed       bool

	// Pipelined-window state (all guarded by mu). Queued entries launch on
	// their own RPC goroutines, up to Window concurrently in flight (the
	// TFS sequence gate re-serializes their outcomes); inflight counts
	// them. parked suspends launches after a transport failure or
	// persistent shed, leaving every entry queued verbatim for a Sync to
	// drain; draining marks a FlushUpdates shipping the queue synchronously
	// (launches also suspend). shipCond wakes waiters when depth, inflight,
	// or ownership changes. nextSeq numbers rotated batches; epoch is the
	// discard generation stamped into them, bumped on every rejection, and
	// openerPending flags the next rotation as the new epoch's opener
	// (true at mount and after every discard). deferred stashes a rejection
	// detected in the background until the next LogOp/Sync can surface it;
	// panicVal does the same for an injected crash panic, re-thrown on the
	// caller's goroutine so a pipelined session crashes on the thread the
	// harness watches.
	shipCond *sync.Cond
	inflight int
	parked   bool
	draining bool
	// Window sequences are per shard: each shard's gate demands a dense
	// sequence from this session, and batches for different shards
	// interleave freely. The epoch (and its openers) is session-wide — a
	// rejection poisons every shard's suffix, preserving the session-order
	// prefix property across shards. batchShard is the home shard of the
	// accumulating batch, which is always single-shard (cross-shard groups
	// go through TxApply instead).
	nextSeqs       []uint64
	epoch          uint32
	openersPending []bool
	batchShard     int
	deferred       error
	panicVal       any

	// Stats.
	Flushes     costmodel.Counter
	OpsLogged   costmodel.Counter
	PoolRefills costmodel.Counter

	// Metrics resolved once at mount; all nil when cfg.Obs is nil.
	obsShipOps        *obs.Histogram
	obsShipBytes      *obs.Histogram
	obsWindowDepth    *obs.Histogram // ship-queue depth at each rotation
	obsWindowStalls   *obs.Counter   // LogOp blocked on a full window
	obsWindowParks    *obs.Counter   // shipper parked (transport/busy)
	obsWindowDiscards *obs.Counter   // batches discarded by a rejection
}

// fileShadow is volatile per-file state covering not-yet-shipped updates:
// pending extent attachments and the pending size (§6.1's shadow object).
type fileShadow struct {
	pendingExtents map[uint64]uint64 // blockIdx -> extent addr
	size           uint64
	hasSize        bool
	pendingSingle  uint64 // staged replacement extent (single mode)
	singleCap      uint64
	// A staged truncate makes blocks >= holeFrom holes until new extents
	// are staged over them: the mFile's current extents there will be
	// freed when the batch applies, so writing through them would lose
	// data (and alias storage the allocator may hand out again).
	holeFrom uint64
	hasHole  bool
	// cover is the global lock the staged updates were covered by. A
	// shadow is only trustworthy while that lock is cached at this
	// client's clerk; when the lock leaves (flush-on-release), the
	// shadow is dropped — SCM holds everything by then, and other
	// clients may change the object from here on.
	cover uint64
}

// colShadow overlays a collection with staged inserts and removes. Each
// entry records the global lock that covered its staging so the overlay
// can be invalidated per cover when a lock leaves the client (see
// dropCoveredShadows); a directory's entries may be staged under distinct
// covers (FlatFS bucket locks).
type colShadow struct {
	ins map[string]colIns
	del map[string]uint64 // key -> covering lock
}

// colIns is one staged directory binding plus its covering lock.
type colIns struct {
	oid   sobj.OID
	cover uint64
}

// stagedExt is one pool extent consumed by a buffered op: staged object
// storage or a pre-written data extent awaiting attach. If the TFS rejects
// the op's batch the extent never became reachable, so rollback returns it
// to the pool for reuse.
type stagedExt struct{ addr, size uint64 }

// opGroup is one indivisible logged unit: n consecutive batch ops plus the
// staged extents they consumed. Batches split only at group boundaries.
type opGroup struct {
	n      int
	staged []stagedExt
}

// Window entry states.
const (
	stQueued   = iota // waiting for a launch, or parked for a verbatim re-ship
	stInflight        // an RPC goroutine owns the ship
	stDone            // applied by the TFS; awaiting in-order retirement
)

// shipState is one completion-window entry: a sealed batch with its encoded
// payload and reserved RPC request ID, kept so a retry after a transport
// failure replays the identical request — the server's dedup cache then
// guarantees the batch applies at most once even if the original did reach
// it.
type shipState struct {
	ops     []fsproto.Op
	groups  []opGroup
	bytes   int
	payload []byte
	reqID   uint64 // 0 when the transport lacks IdempotentCaller
	// hdr is the batch's window header (sequence, epoch, flags), assigned
	// at rotation and baked into payload; split halves inherit the
	// sequence (they are still one rotated batch to the window protocol).
	hdr   fsproto.SeqHeader
	shard int // home shard (0 on a classic volume)
	state int
	// discarded marks an entry killed by a sibling's rejection while its
	// own RPC was still in flight; whatever the TFS says about it
	// (typically ErrWindowStale from the poisoned epoch) is moot.
	discarded bool
}

// Mount connects a session: RPC mount, kernel partition mapping, clerk.
// The rpc client must have been dialed with a callback routed to
// RouteCallback (see MountInProc for the common wiring).
func Mount(rc rpc.Client, mgr *scmmgr.Manager, cfg Config) (*Session, error) {
	if cfg.BatchLimit == 0 {
		cfg.BatchLimit = 8 << 20
	}
	if cfg.PoolRefill == 0 {
		cfg.PoolRefill = 64
	}
	if cfg.BusyRetries == 0 {
		cfg.BusyRetries = 8
	}
	w := wire.NewWriter(8)
	w.U32(cfg.UID)
	w.U32(cfg.Tenant)
	resp, err := rc.Call(fsproto.MethodMount, w.Bytes())
	if err != nil {
		return nil, err
	}
	reply, err := fsproto.DecodeMountReply(resp)
	if err != nil {
		return nil, err
	}
	proc := scmmgr.NewProcess(cfg.UID, reply.VolumeGID)
	// A sharded volume needs a mapping per shard partition — each mapping's
	// protection is bounded to its own partition — composed into one routed
	// space. A classic volume keeps the single direct mapping.
	var mappings []*scmmgr.Mapping
	if len(reply.Shards) > 1 {
		for _, sh := range reply.Shards {
			mp, err := mgr.Mount(proc, scmmgr.PartitionID(sh.Partition))
			if err != nil {
				for _, m := range mappings {
					mgr.Unmount(m)
				}
				return nil, err
			}
			mappings = append(mappings, mp)
		}
	} else {
		mp, err := mgr.Mount(proc, scmmgr.PartitionID(reply.Partition))
		if err != nil {
			return nil, err
		}
		mappings = []*scmmgr.Mapping{mp}
	}
	var mem scm.Space = mappings[0]
	if len(mappings) > 1 {
		mem = &multiSpace{maps: mappings}
	}
	s := &Session{
		rc: rc, mgr: mgr, proc: proc, mappings: mappings, cfg: cfg,
		Mem: mem, sl: scm.AsSlicer(mem), Root: reply.Root,
		shadows:    make(map[sobj.OID]*fileShadow),
		colShadows: make(map[sobj.OID]*colShadow),
		// The session's first rotated batch opens epoch 1.
		epoch: 1,
	}
	// A sharded mount carries the placement table; a classic one is a
	// single-shard degenerate of the same bookkeeping.
	s.shards = reply.Shards
	s.repoch = reply.RoutingEpoch
	for _, sh := range reply.Shards {
		s.table = append(s.table, shard.Range{Start: sh.HeapStart, Size: sh.HeapSize})
	}
	n := len(reply.Shards)
	if n == 0 {
		n = 1
	}
	s.pools = make([]map[uint][]uint64, n)
	for i := range s.pools {
		s.pools[i] = make(map[uint][]uint64)
	}
	s.nextSeqs = make([]uint64, n)
	s.openersPending = make([]bool, n)
	for i := range s.openersPending {
		s.openersPending[i] = true
	}
	s.shipCond = sync.NewCond(&s.mu)
	s.obsShipOps = cfg.Obs.Histogram("libfs.ship.ops")
	s.obsShipBytes = cfg.Obs.Histogram("libfs.ship.bytes")
	s.obsWindowDepth = cfg.Obs.Histogram("libfs.window.depth")
	s.obsWindowStalls = cfg.Obs.Counter("libfs.window.stalls")
	s.obsWindowParks = cfg.Obs.Counter("libfs.window.parks")
	s.obsWindowDiscards = cfg.Obs.Counter("libfs.window.discards")
	s.Clerk = lockservice.NewClerk(rc, lockservice.ClerkConfig{RenewEvery: cfg.RenewEvery})
	s.Clerk.SetTracer(cfg.Tracer)
	s.Clerk.SetObs(cfg.Obs)
	// Ship buffered updates whenever a global lock leaves this client
	// (voluntary release or revocation) so other clients observe a
	// consistent view (§5.3.5). Interface layers add their own hooks
	// (PXFS flushes its path-name cache here).
	s.Clerk.OnRelease(func(lockID uint64) {
		if s.FlushUpdates() == nil {
			// Everything staged under this lock is now applied to SCM, and
			// once the global lock leaves this clerk other clients may
			// change those objects — shadow entries it covered would answer
			// stale. Cross-shard transactions bypass the ship queue, so the
			// pipeline's wholesale retire never sees them; sweep by cover.
			s.dropCoveredShadows(lockID)
		}
		s.mu.Lock()
		hooks := s.releaseHooks
		s.mu.Unlock()
		for _, fn := range hooks {
			fn(lockID)
		}
	})
	return s, nil
}

// AddReleaseHook registers fn to run whenever a global lock is released or
// revoked (after buffered updates ship).
func (s *Session) AddReleaseHook(fn func(lockID uint64)) {
	s.mu.Lock()
	s.releaseHooks = append(s.releaseHooks, fn)
	s.mu.Unlock()
}

// AddDiscardHook registers fn to run whenever the TFS rejects a batch and
// the session discards it. Anything derived from the discarded updates —
// e.g. a name cache holding a path resolved through a staged create — is
// stale the moment the batch dies, and the staged extents it pointed into
// are back in the pool for reuse.
func (s *Session) AddDiscardHook(fn func()) {
	s.mu.Lock()
	s.discardHooks = append(s.discardHooks, fn)
	s.mu.Unlock()
}

// sessionHolder lets the RPC callback (created before the session) reach
// the clerk once it exists.
type sessionHolder struct {
	mu sync.Mutex
	s  *Session
}

// MountInProc dials srv over the in-process transport and mounts, wiring
// lock-revocation callbacks to the session's clerk.
func MountInProc(srv *rpc.Server, mgr *scmmgr.Manager, cfg Config) (*Session, error) {
	h := &sessionHolder{}
	rc := rpc.DialInProc(srv, func(method uint32, payload []byte) {
		h.mu.Lock()
		s := h.s
		h.mu.Unlock()
		if s != nil {
			s.Clerk.HandleCallback(method, payload)
		}
	}, cfg.Costs, cfg.Tracer)
	s, err := Mount(rc, mgr, cfg)
	if err != nil {
		rc.Close()
		return nil, err
	}
	h.mu.Lock()
	h.s = s
	h.mu.Unlock()
	return s, nil
}

// MountTCP dials a TFS served over loopback TCP (cmd/aerie-tfsd) and
// mounts, wiring revocation callbacks back to the clerk — the paper's
// socket-RPC deployment (§5.1). The kernel SCM manager is still reached
// in-process (partition mapping is a kernel service, not an RPC).
func MountTCP(addr string, mgr *scmmgr.Manager, cfg Config) (*Session, error) {
	h := &sessionHolder{}
	rc, err := rpc.DialTCP(addr, func(method uint32, payload []byte) {
		h.mu.Lock()
		s := h.s
		h.mu.Unlock()
		if s != nil {
			s.Clerk.HandleCallback(method, payload)
		}
	})
	if err != nil {
		return nil, err
	}
	s, err := Mount(rc, mgr, cfg)
	if err != nil {
		rc.Close()
		return nil, err
	}
	h.mu.Lock()
	h.s = s
	h.mu.Unlock()
	return s, nil
}

// Close ships pending updates, releases locks, and unmounts.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.FlushUpdates()
	s.Clerk.Close()
	for _, mp := range s.mappings {
		s.mgr.Unmount(mp)
	}
	_ = s.rc.Close()
	return err
}

// ClientID returns the RPC identity the TFS knows this session by. The
// crash-sweep harness uses it to force-expire a "crashed" session's leases.
func (s *Session) ClientID() uint64 { return s.rc.ClientID() }

// Obs returns the session's observability sink (nil when disabled). The
// interface layers mounted on this session resolve their metrics from it.
func (s *Session) Obs() *obs.Sink { return s.cfg.Obs }

// Abandon simulates a client crash: buffered updates and staged objects are
// dropped on the floor, locks are left to lease expiry. Used by tests and
// the sharing example.
func (s *Session) Abandon() {
	s.mu.Lock()
	s.closed = true
	s.batch = nil
	s.groups = nil
	s.pendingStaged = nil
	s.shipq = nil
	s.shadows = make(map[sobj.OID]*fileShadow)
	s.colShadows = make(map[sobj.OID]*colShadow)
	s.mu.Unlock()
	_ = s.rc.Close()
}

// ---- Pre-allocated extent pool (§5.3.7) ----

// AllocStaged takes an extent of at least size bytes from shard 0's pool,
// refilling from the TFS when empty. Sharded callers use AllocStagedOn /
// AllocStagedFor (shardroute.go) so staged storage lands on the object's
// owning shard.
func (s *Session) AllocStaged(size uint64) (uint64, error) { return s.AllocStagedOn(0, size) }

// FreeStaged returns an unused staged extent to its shard's pool.
func (s *Session) FreeStaged(addr, size uint64) {
	order := alloc.OrderFor(size)
	s.mu.Lock()
	sh := s.shardOf(addr)
	s.pools[sh][order] = append(s.pools[sh][order], addr)
	// The extent is back in the pool; drop its pending-rollback record so a
	// later batch rejection can't return it twice.
	for i := range s.pendingStaged {
		if s.pendingStaged[i].addr == addr {
			s.pendingStaged = append(s.pendingStaged[:i], s.pendingStaged[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// prealloc fetches extents from shardID's allocator: the classic unframed
// RPC on a single-shard volume, the shard-framed variant otherwise.
func (s *Session) prealloc(shardID int, size uint64, count uint32) ([]uint64, error) {
	req := fsproto.EncodePrealloc(fsproto.PreallocRequest{Size: size, Count: count})
	method := uint32(fsproto.MethodPrealloc)
	if s.sharded() {
		method = fsproto.MethodPreallocShard
		req = fsproto.EncodeShardFramed(fsproto.ShardHeader{Shard: uint32(shardID), Epoch: s.repoch}, req)
	}
	resp, err := s.rc.Call(method, req)
	if err != nil {
		return nil, err
	}
	return fsproto.DecodeAddrs(resp)
}

// poolAllocator adapts one shard's session pool to sobj.Allocator for
// staging objects client-side.
type poolAllocator struct {
	s     *Session
	shard int
}

func (p poolAllocator) Alloc(size uint64) (uint64, error) { return p.s.AllocStagedOn(p.shard, size) }
func (p poolAllocator) Free(addr, size uint64) error {
	p.s.FreeStaged(addr, size)
	return nil
}

// StagingAllocator returns an sobj.Allocator backed by shard 0's pool.
func (s *Session) StagingAllocator() sobj.Allocator { return poolAllocator{s: s} }

// ---- Metadata update log (§5.3.5) ----

// LogOp buffers one metadata update, shipping the batch if it crossed the
// size threshold.
func (s *Session) LogOp(op fsproto.Op) error {
	return s.logOps(&op, nil, nil)
}

// LogOps buffers several metadata updates as one indivisible unit: all ops
// join the batch under a single mutex hold and the ship threshold is only
// checked after the last one, so an auto-ship can never apply a prefix of
// the sequence alone. Sequences whose intermediate states are destructive
// (copy-on-truncate's truncate/attach/set-size triple) must stage this way
// — shipping just the boundary truncate would free the kept block's extent
// and drop its shadow, losing the head bytes on crash.
func (s *Session) LogOps(ops []fsproto.Op) error {
	if len(ops) == 0 {
		return nil
	}
	return s.logOps(nil, ops, nil)
}

// logOps appends one op (single != nil) or a non-empty slice atomically.
// The two parameters exist so the hot single-op path allocates no slice.
// involved optionally names extra objects the group touches (see
// LogOpsSharded); on a sharded volume the group routes to its home shard's
// window, rotating the accumulating batch at a shard switch, and a group
// that spans shards applies synchronously as a cross-shard transaction.
func (s *Session) logOps(single *fsproto.Op, ops []fsproto.Op, involved []sobj.OID) error {
	// A crash here loses the ops before they reach the local log — the
	// "client dies with unshipped updates" case lease expiry cleans up.
	if err := s.cfg.Faults.Hit("libfs.logop"); err != nil {
		return err
	}
	home := 0
	if s.sharded() {
		var cross bool
		home, cross = s.groupShard(single, ops, involved)
		if cross {
			return s.txApply(single, ops)
		}
	}
	s.mu.Lock()
	if s.sharded() && len(s.batch) > 0 && home != s.batchShard {
		// The accumulating batch is single-shard: seal it before switching.
		// In a pipelined session it launches right away; a synchronous one
		// leaves it queued for the next flush point, which drains in order.
		s.rotateLocked()
		if s.window() > 1 {
			s.launchLocked()
		}
	}
	s.batchShard = home
	n := 1
	if single != nil {
		s.batch = append(s.batch, *single)
		s.batchBytes += 64 + len(single.Key) + len(single.Key2)
		s.OpsLogged.Add(1)
	} else {
		for _, op := range ops {
			s.batch = append(s.batch, op)
			s.batchBytes += 64 + len(op.Key) + len(op.Key2)
		}
		s.OpsLogged.Add(int64(len(ops)))
		n = len(ops)
	}
	// This log call claims the staged extents taken since the last one:
	// they back these ops, and travel with them through splits/rollback.
	s.groups = append(s.groups, opGroup{n: n, staged: s.pendingStaged})
	s.pendingStaged = nil
	over := s.batchBytes >= s.cfg.BatchLimit
	if !over || s.window() == 1 {
		s.mu.Unlock()
		if over {
			// Synchronous path (the default): a full batch ships inline and
			// the caller waits out the round trip.
			return s.FlushUpdates()
		}
		return nil
	}
	// Pipelined path: rotate the full batch into the window and launch its
	// ship in the background; block only when the window is full.
	s.rotateLocked()
	s.launchLocked()
	return s.awaitWindowLocked()
}

// RotateBatch seals the accumulating batch into the pipeline window at a
// caller-chosen boundary, without waiting for the byte threshold. Interface
// layers call it between logical operations whose op sequences must not be
// split across batches — FlatFS's create/write/insert triple only validates
// as a unit, because the keyed-cover check needs the key→object link the
// final insert establishes — so every window batch lands on a boundary that
// is safe to apply (or reject) independently. A no-op when the batch is
// empty or the session is synchronous (Window <= 1), where Sync remains the
// only ship point below the byte limit.
func (s *Session) RotateBatch() error {
	s.mu.Lock()
	if s.window() == 1 || len(s.batch) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.rotateLocked()
	s.launchLocked()
	return s.awaitWindowLocked()
}

// awaitWindowLocked applies window backpressure after a rotation: it blocks
// while more than Window batches are in flight, re-throws a shipper panic on
// the calling goroutine, and surfaces any deferred rejection. Called with
// s.mu held; always releases it.
func (s *Session) awaitWindowLocked() error {
	stalled := false
	for len(s.shipq) > s.window() && (s.inflight > 0 || s.draining) {
		if !stalled {
			stalled = true
			s.obsWindowStalls.Inc()
		}
		s.shipCond.Wait()
	}
	// A deferred rejection only surfaces once the window is quiet: the
	// rejecting entry holds its in-flight slot until the discard hooks
	// have run, so the caller never sees the error with the hooks pending.
	for s.deferred != nil && s.inflight > 0 {
		s.shipCond.Wait()
	}
	if pv := s.panicVal; pv != nil {
		s.panicVal = nil
		s.mu.Unlock()
		panic(pv)
	}
	err := s.deferred
	s.deferred = nil
	parked := s.parked && len(s.shipq) > s.window()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if parked {
		// The shipper parked on a transport failure or persistent shed and
		// the window is still over-full: fall back to a synchronous drain
		// so the caller sees the typed error (ErrTFSUnreachable / ErrBusy)
		// live, exactly as the synchronous path would.
		return s.FlushUpdates()
	}
	return nil
}

// ReadBarrier waits until none of this session's window batches are being
// applied by the TFS. Read paths that drop below the shadow overlay to raw
// SCM — collection lookups and walks, live mFile headers — must call it
// first: an in-flight batch of this very session may be mid-apply on the
// server, mutating the bytes under the read. On word-atomic hardware that
// overlap is benign (the shadow overlay already answers for everything the
// apply will write), but a structural walk must not observe a half-applied
// mutation, and the simulated arena offers no word atomicity at all.
// Mutating paths never call this; writes pipeline at full depth. When the
// window is idle the barrier is a mutex acquire and nothing else.
func (s *Session) ReadBarrier() {
	s.mu.Lock()
	for s.inflight > 0 || s.draining {
		s.shipCond.Wait()
	}
	s.mu.Unlock()
}

// window returns the configured in-flight batch window (min 1).
func (s *Session) window() int {
	if s.cfg.Window > 1 {
		return s.cfg.Window
	}
	return 1
}

// rotateLocked seals the accumulating batch into a sequence-numbered
// shipState at the tail of the ship queue, stamping the window header:
// the next sequence number, the session's current discard epoch, and the
// Opener flag when this batch starts a new epoch (first rotation after
// mount or after a discard). Callers hold s.mu and have checked the batch
// is non-empty.
func (s *Session) rotateLocked() *shipState {
	ship := &shipState{ops: s.batch, groups: s.groups, bytes: s.batchBytes, shard: s.batchShard}
	s.nextSeqs[ship.shard]++
	ship.hdr = fsproto.SeqHeader{Seq: s.nextSeqs[ship.shard], Epoch: s.epoch, Opener: s.openersPending[ship.shard]}
	s.openersPending[ship.shard] = false
	ship.payload = s.sealPayload(ship.hdr, ship.ops, ship.shard)
	s.obsShipOps.Observe(int64(len(ship.ops)))
	s.obsShipBytes.Observe(int64(ship.bytes))
	if ic, ok := s.rc.(rpc.IdempotentCaller); ok {
		ship.reqID = ic.NextReqID()
	}
	s.shipq = append(s.shipq, ship)
	s.batch, s.groups, s.batchBytes = nil, nil, 0
	s.obsWindowDepth.Observe(int64(len(s.shipq)))
	return ship
}

// launchLocked starts RPC goroutines for queued window entries, in window
// order, up to the configured depth. Entries ship concurrently — the TFS
// sequence gate re-serializes their server-side outcomes — except the
// fragments of one split batch, which share a sequence number the gate
// cannot order, so a later fragment waits for its sibling. Launches
// suspend while the window is parked or a synchronous drain owns the
// queue. Callers hold s.mu.
func (s *Session) launchLocked() {
	if s.parked || s.draining {
		return
	}
	for i := 0; i < len(s.shipq) && s.inflight < s.window(); i++ {
		e := s.shipq[i]
		if e.state != stQueued {
			continue
		}
		if i > 0 {
			prev := s.shipq[i-1]
			// Hold for an unresolved predecessor the gate cannot order: an
			// equal-sequence split sibling, or the tail of another shard's
			// run — the cross-shard barrier that keeps the session's applied
			// updates a global prefix of what it logged.
			if prev.state != stDone && (prev.shard != e.shard || prev.hdr.Seq == e.hdr.Seq) {
				break
			}
		}
		e.state = stInflight
		s.inflight++
		go s.shipEntry(e)
	}
}

// shipEntry ships one window entry on its own goroutine and resolves the
// outcome against the window: successes retire in window order, a
// transport failure or persistent shed parks the window with the entry
// requeued verbatim (original payload and request ID), an oversized batch
// splits in place, and a definitive rejection discards the entry plus
// everything sequenced after it, stashing the typed error for the next
// sync point. A panic (injected crash) parks the window and is re-thrown
// on the next caller's goroutine.
func (s *Session) shipEntry(e *shipState) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			if s.panicVal == nil {
				s.panicVal = r
			}
			s.parked = true
			s.inflight--
			s.shipCond.Broadcast()
			s.mu.Unlock()
		}
	}()
	err := s.shipOne(e)
	var hooks []func()
	s.mu.Lock()
	switch {
	case e.discarded:
		// A sibling's rejection already discarded this entry; the TFS's
		// verdict on it (typically ErrWindowStale) is moot.
	case err == nil:
		e.state = stDone
		s.Flushes.Add(1)
		s.retireLocked()
	case rpc.IsTransport(err) || errors.Is(err, fsproto.ErrBusy):
		// Fate unknown (transport) or definitively not applied (shed):
		// either way nothing is lost — requeue the entry untouched and
		// park the window for a later Sync to drain in order with
		// identical requests.
		e.state = stQueued
		if !s.parked {
			s.parked = true
			s.obsWindowParks.Inc()
		}
	case errors.Is(err, fsproto.ErrBatchTooLarge) && len(e.groups) > 1:
		s.splitEntry(e)
	default:
		// Definitive rejection. ErrWindowStale lands here too when the
		// entry was NOT discarded client-side: the gate will never accept
		// it (its predecessor vanished in a transport fault, or a sibling's
		// rejection poisoned the epoch first), which is the same verdict.
		hooks = s.rejectLocked(e, err)
		if s.deferred == nil {
			s.deferred = fmt.Errorf("%w: %w", ErrStaleBatch, err)
		}
	}
	s.mu.Unlock()
	// The in-flight slot is held across the hooks: a sync point that
	// observes the deferred rejection (it waits out the window first) is
	// then guaranteed the discard hooks have already run — a name cache
	// invalidated by a hook cannot be read stale after the error surfaces.
	for _, fn := range hooks {
		fn()
	}
	s.mu.Lock()
	s.inflight--
	s.launchLocked()
	s.shipCond.Broadcast()
	s.mu.Unlock()
}

// retireLocked pops the completed prefix of the window: entries retire
// strictly in order, so the session's durable state is always a prefix of
// what it logged. When the last pending update retires, the shadow
// overlays reset — everything they described is visible in SCM. Callers
// hold s.mu.
func (s *Session) retireLocked() {
	for len(s.shipq) > 0 && s.shipq[0].state == stDone {
		s.shipq = s.shipq[1:]
	}
	if len(s.shipq) == 0 && len(s.batch) == 0 {
		s.shadows = make(map[sobj.OID]*fileShadow)
		s.colShadows = make(map[sobj.OID]*colShadow)
	}
}

// dropCoveredShadows discards every shadow entry staged under lockID. Called
// when that global lock leaves the clerk, after a successful flush: the
// entries' effects are applied to SCM, and other clients may mutate the
// objects from here on, so keeping the overlay would answer stale reads.
// Entries staged under other still-held locks are untouched.
func (s *Session) dropCoveredShadows(lockID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for oid, cs := range s.colShadows {
		for k, v := range cs.ins {
			if v.cover == lockID {
				delete(cs.ins, k)
			}
		}
		for k, cover := range cs.del {
			if cover == lockID {
				delete(cs.del, k)
			}
		}
		if len(cs.ins) == 0 && len(cs.del) == 0 {
			delete(s.colShadows, oid)
		}
	}
	for oid, sh := range s.shadows {
		if sh.cover == lockID {
			delete(s.shadows, oid)
		}
	}
}

// FlushUpdates ships all buffered metadata updates to the TFS (§4.3's
// libfs sync). On validation failure the batch is discarded: metadata
// integrity is preserved, the client's unshipped changes are lost. On a
// transport failure the fate of the batch is unknown, so the updates are
// NOT discarded — the encoded batch is parked with its RPC request ID and
// the shadows are kept, and the call returns ErrTFSUnreachable. A later
// Sync replays the identical request first: the server's dedup cache
// guarantees it applies at most once whether or not the original arrived.
//
// Resource exhaustion gets graceful, typed handling instead of the generic
// discard:
//   - fsproto.ErrNoSpace: the batch is discarded, but its staged pool
//     extents are reclaimed and the shadows reset, so the session
//     reconverges with the committed state and the caller sees a clean
//     errors.Is(err, fsproto.ErrNoSpace) ENOSPC. After freeing space the
//     session keeps working.
//   - fsproto.ErrBatchTooLarge: the batch is split at logged-group
//     boundaries and the halves shipped separately; only a single
//     indivisible group that still cannot fit is rejected.
//   - fsproto.ErrBusy (admission shed): bounded jittered retries honoring
//     the server's retry-after hint; if still shedding, the batch parks
//     like a transport failure — nothing is lost — and the typed error is
//     returned.
func (s *Session) FlushUpdates() error {
	// Take ship-queue ownership: wait out the in-flight window (entries
	// resolve on their own goroutines) and any concurrent drain, so
	// exactly one goroutine ships synchronously. An injected crash panic
	// stashed by an in-flight entry re-throws here immediately — before
	// the wait completes — so a crashed session surfaces the crash, not a
	// gate-timeout rejection, on the goroutine the harness watches.
	s.mu.Lock()
	for {
		if pv := s.panicVal; pv != nil {
			s.panicVal = nil
			s.mu.Unlock()
			panic(pv)
		}
		if s.inflight == 0 && !s.draining {
			break
		}
		s.shipCond.Wait()
	}
	deferred := s.deferred
	s.deferred = nil
	s.draining = true
	// The synchronous drain IS the recovery path a park waits for.
	s.parked = false
	s.mu.Unlock()
	err := s.drainWindow()
	s.mu.Lock()
	s.draining = false
	s.shipCond.Broadcast()
	s.mu.Unlock()
	if deferred != nil && err != nil {
		return errors.Join(deferred, err)
	}
	if deferred != nil {
		return deferred
	}
	return err
}

// drainWindow ships every queued batch plus the accumulating one, in
// order, until the session has nothing pending. The caller owns the ship
// queue (s.draining, with no entries in flight).
func (s *Session) drainWindow() error {
	for {
		s.mu.Lock()
		var ship *shipState
		if len(s.shipq) > 0 {
			ship = s.shipq[0]
			if ship.state == stDone {
				// Completed by the background window but held behind a
				// parked entry that has since resolved: just retire it.
				s.retireLocked()
				s.mu.Unlock()
				continue
			}
		} else {
			if len(s.batch) == 0 {
				s.mu.Unlock()
				return nil
			}
			ship = s.rotateLocked()
		}
		s.mu.Unlock()

		err := s.shipOne(ship)
		switch {
		case err != nil && rpc.IsTransport(err):
			// The TFS may or may not have applied the batch; it stays
			// parked at the queue head for an identical retry, and the
			// shadows still describe the pending updates either way.
			s.obsWindowParks.Inc()
			return fmt.Errorf("%w: %v", ErrTFSUnreachable, err)
		case errors.Is(err, fsproto.ErrBusy):
			// Admission shed outlasted the in-call retries: park the batch
			// (a later Sync re-ships it) and surface the typed error.
			s.obsWindowParks.Inc()
			return fmt.Errorf("libfs: batch parked, TFS shedding load: %w", err)
		case errors.Is(err, fsproto.ErrBatchTooLarge) && len(ship.groups) > 1:
			s.mu.Lock()
			s.splitEntry(ship)
			s.mu.Unlock()
			continue
		}
		ferr := s.completeHead(ship, err)
		s.Flushes.Add(1)
		if ferr != nil {
			return ferr
		}
		// More queued ships, or ops logged while the ship was in flight:
		// ship them too before declaring the sync complete.
	}
}

// completeHead resolves a synchronous ship's definitive verdict (the drain
// path): success retires the head in order; a rejection discards the head
// and the whole suffix behind it and surfaces typed ErrStaleBatch directly
// (no deferral — the syncing caller is right here).
func (s *Session) completeHead(ship *shipState, err error) error {
	s.mu.Lock()
	if err == nil {
		ship.state = stDone
		s.retireLocked()
		s.shipCond.Broadcast()
		s.mu.Unlock()
		return nil
	}
	hooks := s.rejectLocked(ship, err)
	s.shipCond.Broadcast()
	s.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	return fmt.Errorf("%w: %w", ErrStaleBatch, err)
}

// rejectLocked resolves a definitive TFS rejection of e against the
// window. e does not die alone: every batch sequenced after it — queued
// entries, entries still in flight (the poisoned epoch resolves their
// RPCs as ErrWindowStale), and the accumulating batch — may depend on its
// effects (a staged create the next batch links into a directory), so the
// whole suffix is discarded with it. That keeps the session's visible
// state a PREFIX of what it logged: everything before the rejected batch
// applied, nothing after it half-applied. Staged pool extents from every
// discarded batch are reclaimed (the epoch poison guarantees none of them
// can apply), the epoch advances so the next rotation opens a fresh
// window generation, and the discard hooks are returned for the caller to
// run outside the mutex. Callers hold s.mu.
func (s *Session) rejectLocked(e *shipState, err error) []func() {
	reclaim := func(groups []opGroup) {
		for _, g := range groups {
			for _, ext := range g.staged {
				order := alloc.OrderFor(ext.size)
				sh := s.shardOf(ext.addr)
				s.pools[sh][order] = append(s.pools[sh][order], ext.addr)
			}
		}
	}
	discarded := int64(0)
	idx := -1
	for i, q := range s.shipq {
		if q == e {
			idx = i
			break
		}
	}
	if idx >= 0 {
		for _, q := range s.shipq[idx:] {
			q.discarded = true
			reclaim(q.groups)
			discarded++
		}
		s.shipq = s.shipq[:idx]
	}
	reclaim(s.groups)
	if len(s.batch) > 0 {
		discarded++
	}
	s.batch, s.groups, s.batchBytes = nil, nil, 0
	s.obsWindowDiscards.Add(discarded)
	// The epoch is session-wide: bumping it (and flagging every shard's
	// next rotation an opener) poisons the discarded suffix on all shards.
	s.epoch++
	for i := range s.openersPending {
		s.openersPending[i] = true
	}
	// The surviving prefix may now be fully done; retiring it also resets
	// the shadows once nothing is pending (applied updates are visible in
	// SCM, rejected ones are gone).
	s.retireLocked()
	return s.discardHooks
}

// shipOne sends one batch, absorbing admission sheds with bounded jittered
// retries. Returns nil on apply, a transport-classified error when the
// batch's fate is unknown, or the TFS's typed rejection.
func (s *Session) shipOne(ship *shipState) error {
	for attempt := 0; ; attempt++ {
		if err := s.cfg.Faults.Hit("libfs.flush.preship"); err != nil {
			return fmt.Errorf("%w: %v", rpc.ErrUnreachable, err)
		}
		var err error
		if ic, ok := s.rc.(rpc.IdempotentCaller); ok && ship.reqID != 0 {
			_, err = ic.CallWithReqID(s.applyMethod(), ship.reqID, ship.payload)
		} else {
			_, err = s.rc.Call(s.applyMethod(), ship.payload)
		}
		if ferr := s.cfg.Faults.Hit("libfs.flush.postship"); ferr != nil && err == nil {
			err = fmt.Errorf("%w: %v", rpc.ErrUnreachable, ferr)
		}
		if err == nil || !retryableShed(err) {
			return err
		}
		// The shed definitely did not apply the batch, and the server's
		// dedup cache has the rejection filed under this request ID — a
		// retry must carry a fresh one to re-execute.
		if ic, ok := s.rc.(rpc.IdempotentCaller); ok && ship.reqID != 0 {
			ship.reqID = ic.NextReqID()
		}
		if s.cfg.BusyRetries < 0 || attempt >= s.cfg.BusyRetries {
			return err
		}
		sleepBackoff(attempt, err)
	}
}

// backoffDelay is the session's single backoff policy: every server-shaped
// retry-after hint — admission sheds, backlog-shaped overload hints, quota
// rejections with in-flight reservations about to release — funnels through
// here. The delay is exponential in the attempt, floored at the server's
// hint when the error carries one (the server knows its backlog; the client
// must not retry sooner), and capped at 250ms. Deterministic: the caller
// adds jitter when sleeping.
func backoffDelay(attempt int, err error) time.Duration {
	base := 2 * time.Millisecond
	var re *rpc.RemoteError
	if errors.As(err, &re) && re.RetryAfterMs > 0 {
		base = time.Duration(re.RetryAfterMs) * time.Millisecond
	}
	d := base << uint(attempt)
	if d > 250*time.Millisecond || d < base {
		d = 250 * time.Millisecond
	}
	return d
}

// retryableShed reports whether err is worth an in-call retry: an admission
// shed always is (the batch definitively did not apply), a quota rejection
// only when the server hints the tenant's own in-flight reservations may
// release enough to admit a retry. Anything else is a definitive verdict.
func retryableShed(err error) bool {
	if errors.Is(err, fsproto.ErrBusy) {
		return true
	}
	if errors.Is(err, fsproto.ErrQuotaExceeded) {
		var re *rpc.RemoteError
		return errors.As(err, &re) && re.RetryAfterMs > 0
	}
	return false
}

// sleepBackoff sleeps backoffDelay plus up to 50% jitter.
func sleepBackoff(attempt int, err error) {
	d := backoffDelay(attempt, err)
	d += time.Duration(rand.Int63n(int64(d/2 + 1)))
	time.Sleep(d)
}

// splitEntry replaces an oversized window entry with two halves split at a
// logged-group boundary, each re-encoded with its own request ID. Called
// when the TFS rejected the entry with ErrBatchTooLarge; the halves (and
// recursively their halves) ship independently. The halves inherit the
// parent's window sequence number — to the window protocol they are still
// one rotated batch — with the first flagged a fragment (the sequence
// number completes only with the last half) and only the first inheriting
// an Opener flag; the launcher ships equal-sequence siblings one at a
// time, since the gate cannot order them. Callers hold s.mu.
func (s *Session) splitEntry(e *shipState) {
	idx := -1
	for i, q := range s.shipq {
		if q == e {
			idx = i
			break
		}
	}
	if idx < 0 || len(e.groups) < 2 {
		return
	}
	// Balance by op count, keeping at least one group per side.
	total := len(e.ops)
	cut, opsCut := 1, e.groups[0].n
	for cut < len(e.groups)-1 && opsCut < total/2 {
		opsCut += e.groups[cut].n
		cut++
	}
	mk := func(ops []fsproto.Op, groups []opGroup, hdr fsproto.SeqHeader) *shipState {
		h := &shipState{ops: ops, groups: groups, hdr: hdr, shard: e.shard}
		for i := range ops {
			h.bytes += 64 + len(ops[i].Key) + len(ops[i].Key2)
		}
		h.payload = s.sealPayload(hdr, ops, e.shard)
		if ic, ok := s.rc.(rpc.IdempotentCaller); ok {
			h.reqID = ic.NextReqID()
		}
		return h
	}
	loHdr := e.hdr
	loHdr.Frag = true
	hiHdr := e.hdr
	hiHdr.Opener = false
	lo := mk(e.ops[:opsCut], e.groups[:cut], loHdr)
	hi := mk(e.ops[opsCut:], e.groups[cut:], hiHdr)
	s.shipq = append(s.shipq[:idx], append([]*shipState{lo, hi}, s.shipq[idx+1:]...)...)
}

// Sync ships buffered updates, the library equivalent of fsync (§4.3).
func (s *Session) Sync() error { return s.FlushUpdates() }

// PendingOps reports the number of buffered, unshipped updates, including
// a batch parked by a transport failure.
func (s *Session) PendingOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.batch)
	for _, ship := range s.shipq {
		n += len(ship.ops)
	}
	return n
}

// Statfs fetches volume-wide space and object accounting from the TFS,
// including bytes held by in-flight admission reservations. Interface
// layers surface it as statvfs/df.
func (s *Session) Statfs() (fsproto.StatfsReply, error) {
	resp, err := s.rc.Call(fsproto.MethodStatfs, nil)
	if err != nil {
		return fsproto.StatfsReply{}, err
	}
	return fsproto.DecodeStatfsReply(resp)
}

// TenantCtl sets one tenant's isolation policy — scheduling weight and
// space quota — on every shard of the trusted service. Administrative;
// policy is volatile service state re-applied at boot from configuration.
func (s *Session) TenantCtl(tenant, weight uint32, quotaBytes uint64) error {
	_, err := s.rc.Call(fsproto.MethodTenantCtl, fsproto.EncodeTenantCtl(
		fsproto.TenantCtlRequest{Tenant: tenant, Weight: weight, QuotaBytes: quotaBytes}))
	return err
}

// TenantStat fetches per-tenant, per-shard usage rows: configured policy
// plus the bytes currently applied and reserved against each tenant on each
// shard, and the shed/quota-reject counts.
func (s *Session) TenantStat() ([]fsproto.TenantUsage, error) {
	resp, err := s.rc.Call(fsproto.MethodTenantStat, nil)
	if err != nil {
		return nil, err
	}
	return fsproto.DecodeTenantStatReply(resp)
}

// ---- Open-file and protection RPCs ----

// NotifyOpen tells the TFS the client has oid open (unlink-while-open
// support, §6.1).
func (s *Session) NotifyOpen(oid sobj.OID) error {
	w := wire.NewWriter(8)
	w.U64(uint64(oid))
	_, err := s.rc.Call(fsproto.MethodOpenFile, w.Bytes())
	return err
}

// NotifyClose ends an open registration.
func (s *Session) NotifyClose(oid sobj.OID) error {
	w := wire.NewWriter(8)
	w.U64(uint64(oid))
	_, err := s.rc.Call(fsproto.MethodCloseFile, w.Bytes())
	return err
}

// Chmod asks the TFS to change permission bits; hwProtect also narrows the
// extent ACLs (the expensive path of §7.2.1).
func (s *Session) Chmod(oid sobj.OID, perm uint32, hwProtect bool) error {
	w := wire.NewWriter(16)
	w.U64(uint64(oid))
	w.U32(perm)
	w.Bool(hwProtect)
	_, err := s.rc.Call(fsproto.MethodChmod, w.Bytes())
	return err
}
