package libfs_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/faultinject"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
)

func newSess(t *testing.T, cfg libfs.Config) (*libfs.Session, *core.System) {
	t.Helper()
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, sys
}

func TestPoolRefillsInBatches(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, PoolRefill: 16})
	for i := 0; i < 40; i++ {
		if _, err := s.AllocStaged(4096); err != nil {
			t.Fatal(err)
		}
	}
	// 40 allocations at refill 16 need ceil(40/16)=3 RPCs.
	if got := s.PoolRefills.Load(); got != 3 {
		t.Fatalf("refills = %d, want 3", got)
	}
}

func TestFreeStagedReturnsToPool(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, PoolRefill: 4})
	a, err := s.AllocStaged(4096)
	if err != nil {
		t.Fatal(err)
	}
	s.FreeStaged(a, 4096)
	refills := s.PoolRefills.Load()
	b, err := s.AllocStaged(4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolRefills.Load() != refills {
		t.Fatal("freed extent did not come back from the pool")
	}
	_ = b
}

func TestBatchLimitTriggersShipping(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, BatchLimit: 300}) // tiny: a few ops
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)
	for i := 0; i < 10; i++ {
		oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.DirInsert(s.Root, []byte{byte('a' + i)}, oid, lock); err != nil {
			t.Fatal(err)
		}
	}
	if s.Flushes.Load() == 0 {
		t.Fatal("batch limit never triggered a flush")
	}
}

func TestShadowReadsOwnPendingWrites(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, BatchLimit: 16 << 20})
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)
	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shadow"), 3000)
	if _, err := s.FileWrite(oid, payload, 0, lock); err != nil {
		t.Fatal(err)
	}
	if s.PendingOps() == 0 {
		t.Fatal("expected staged ops")
	}
	got := make([]byte, len(payload))
	if _, err := s.FileRead(oid, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shadow read mismatch before shipping")
	}
	size, err := s.FileSize(oid)
	if err != nil || size != uint64(len(payload)) {
		t.Fatalf("shadow size = %d, %v", size, err)
	}
	// After shipping, reads come from the applied structures.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FileRead(oid, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read mismatch after shipping")
	}
}

func TestDirIterateMergesOverlay(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, BatchLimit: 16 << 20})
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)
	// One applied entry, one staged insert, one staged remove.
	a, _ := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	_ = s.DirInsert(s.Root, []byte("applied"), a, lock)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	b, _ := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	_ = s.DirInsert(s.Root, []byte("staged"), b, lock)
	_ = s.DirRemove(s.Root, []byte("applied"), lock)
	seen := map[string]bool{}
	if err := s.DirIterate(s.Root, func(key []byte, _ sobj.OID) error {
		seen[string(key)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !seen["staged"] || seen["applied"] || len(seen) != 1 {
		t.Fatalf("overlay iterate = %v", seen)
	}
}

func TestStagedInsertsCounter(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1, BatchLimit: 16 << 20})
	lock := s.Root.Lock()
	_ = s.Clerk.Acquire(lock, lockservice.X, true)
	defer s.Clerk.Release(lock, lockservice.X)
	if n := s.StagedInserts(s.Root); n != 0 {
		t.Fatalf("fresh staged = %d", n)
	}
	oid, _ := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	_ = s.DirInsert(s.Root, []byte("x"), oid, lock)
	if n := s.StagedInserts(s.Root); n != 1 {
		t.Fatalf("staged = %d", n)
	}
	_ = s.Sync()
	if n := s.StagedInserts(s.Root); n != 0 {
		t.Fatalf("staged after sync = %d", n)
	}
}

// TestTruncateMidBlockSurvivesAutoShip is a regression test: the
// copy-on-truncate triple (truncate to the block boundary, attach the
// fresh head-carrying extent, set the logical size) used to be staged by
// three separate LogOp calls, so when the batch limit tripped on the first
// of them the TFS applied the destructive boundary truncate alone and the
// ship cleared the fresh extent's shadow — the kept block's head bytes
// then read as zeros until the rest shipped, and a crash in between lost
// them durably. The triple is now staged atomically via LogOps.
func TestTruncateMidBlockSurvivesAutoShip(t *testing.T) {
	const limit = 1000
	s, _ := newSess(t, libfs.Config{UID: 1, BatchLimit: limit})
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)
	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("t.bin"), oid, lock); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*4096)
	for i := range data {
		data[i] = byte(i%251 + 1)
	}
	if _, err := s.FileWrite(oid, data, 0, lock); err != nil {
		t.Fatal(err)
	}
	// Commit, so the truncate below hits an applied extent and takes the
	// copy-on-truncate path rather than zeroing a pending extent in place.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Prefill the batch with no-op size sets (64 bytes each) to just under
	// the limit, so the next staged op crosses it: with a split triple the
	// auto-ship would apply the boundary truncate alone.
	for i := 0; i < (limit-64+63)/64; i++ {
		if err := s.FileSetSize(oid, uint64(len(data)), lock); err != nil {
			t.Fatal(err)
		}
	}
	flushes := s.Flushes.Load()
	n := uint64(4096 + 100) // mid-block cut: block 1 keeps 100 head bytes
	if err := s.FileTruncate(oid, n, lock); err != nil {
		t.Fatal(err)
	}
	if s.Flushes.Load() == flushes {
		t.Fatal("truncate did not trip the batch limit; the test no longer exercises the auto-ship")
	}
	check := func(when string) {
		size, err := s.FileSize(oid)
		if err != nil || size != n {
			t.Fatalf("%s: size = %d, %v; want %d", when, size, err, n)
		}
		got := make([]byte, n)
		if _, err := s.FileRead(oid, got, 0); err != nil {
			t.Fatalf("%s: read: %v", when, err)
		}
		if !bytes.Equal(got, data[:n]) {
			t.Fatalf("%s: kept bytes corrupted by mid-block truncate", when)
		}
	}
	check("after truncate")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	check("after sync")
}

func TestSingleExtentGrowthAcrossSync(t *testing.T) {
	s, _ := newSess(t, libfs.Config{UID: 1})
	lock := s.Root.Lock()
	_ = s.Clerk.Acquire(lock, lockservice.X, true)
	defer s.Clerk.Release(lock, lockservice.X)
	oid, err := s.CreateMFileSingleStaged(0644, 4096)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.DirInsert(s.Root, []byte("grow"), oid, lock)
	big := bytes.Repeat([]byte{7}, 20000) // outgrows 4096
	if _, err := s.FileWrite(oid, big, 0, lock); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(big))
	if _, err := s.FileRead(oid, got, 0); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("pre-sync read: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FileRead(oid, got, 0); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("post-sync read: %v", err)
	}
}

func TestReleaseHookRuns(t *testing.T) {
	s, sys := newSess(t, libfs.Config{UID: 1})
	fired := 0
	s.AddReleaseHook(func(uint64) { fired++ })
	lock := s.Root.Lock()
	_ = s.Clerk.Acquire(lock, lockservice.S, false)
	s.Clerk.Release(lock, lockservice.S)
	s.Clerk.ReleaseGlobal(lock)
	if fired == 0 {
		t.Fatal("release hook never ran")
	}
	_ = sys
}

// TestMountOverTCP exercises the paper's loopback-socket deployment end to
// end: mount, lock traffic, metadata batch shipping, and revocation
// callbacks all cross real TCP connections.
func TestMountOverTCP(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := sys.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	a, err := libfs.MountTCP(ln.Addr(), sys.Mgr, libfs.Config{UID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	lock := a.Root.Lock()
	if err := a.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	oid, err := a.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.FileWrite(oid, []byte("over tcp"), 0, lock); err != nil {
		t.Fatal(err)
	}
	if err := a.DirInsert(a.Root, []byte("tcp-file"), oid, lock); err != nil {
		t.Fatal(err)
	}
	a.Clerk.Release(lock, lockservice.X)

	// A second TCP client revokes the first's cached lock (callback over
	// the dial-back connection) and reads the shipped file.
	b, err := libfs.MountTCP(ln.Addr(), sys.Mgr, libfs.Config{UID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Clerk.Acquire(lock, lockservice.S, false); err != nil {
		t.Fatal(err)
	}
	defer b.Clerk.Release(lock, lockservice.S)
	got, found, err := b.DirLookup(b.Root, []byte("tcp-file"))
	if err != nil || !found {
		t.Fatalf("lookup over tcp: %v %v", found, err)
	}
	buf := make([]byte, 8)
	if _, err := b.FileRead(got, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "over tcp" {
		t.Fatalf("read %q", buf)
	}
}

func TestFlushRequeuesOnTransportFailure(t *testing.T) {
	inj := faultinject.New()
	sys, err := core.New(core.Options{
		ArenaSize:      64 << 20,
		AcquireTimeout: 10 * time.Second,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	// RenewEvery is huge so no background renewal RPC races the armed
	// fault ordinal below.
	s, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: 16 << 20, RenewEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)
	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("file"), oid, lock); err != nil {
		t.Fatal(err)
	}
	pending := s.PendingOps()
	if pending == 0 {
		t.Fatal("no pending ops staged")
	}

	// First ship: the response is lost after the TFS applied the batch.
	// (Ordinals count from injector creation, so arm relative to now.)
	inj.FailAt("rpc.reply", inj.Counts()["rpc.reply"]+1, nil)
	err = s.Sync()
	if !errors.Is(err, libfs.ErrTFSUnreachable) {
		t.Fatalf("Sync err = %v, want ErrTFSUnreachable", err)
	}
	if got := s.PendingOps(); got != pending {
		t.Fatalf("pending = %d after transport failure, want %d (requeued)", got, pending)
	}
	// The shadows survived, so the client still sees its pending updates.
	if _, ok, err := s.DirLookup(s.Root, []byte("file")); err != nil || !ok {
		t.Fatalf("shadow lookup after requeue: ok=%v err=%v", ok, err)
	}

	applied := sys.TFS.BatchesApplied.Load()

	// Retry once the transport recovers: the parked batch replays under
	// its original request ID, so the server's dedup cache returns the
	// first execution's result instead of applying it twice.
	if err := s.Sync(); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
	if got := s.PendingOps(); got != 0 {
		t.Fatalf("pending = %d after successful retry", got)
	}
	if got := sys.TFS.BatchesApplied.Load(); got != applied {
		t.Fatalf("retry re-applied the batch (applied %d -> %d), want at-most-once", applied, got)
	}
	if _, ok, err := s.DirLookup(s.Root, []byte("file")); err != nil || !ok {
		t.Fatalf("lookup after retry: ok=%v err=%v", ok, err)
	}
}
