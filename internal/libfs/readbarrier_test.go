package libfs_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// The ReadBarrier contract under test: a raw-SCM read issued after
// ReadBarrier returns observes every one of this session's window batches
// that was in flight when the barrier was entered. The reads here
// deliberately bypass the session's shadow overlay — sobj.OpenCollection
// and OpenMFile against s.Mem directly, the same below-the-overlay path
// DirLookup and FileSize drop to — so only the barrier stands between the
// reader and a half-applied batch.

// rawLookup reads dir/key straight off SCM, no shadow overlay.
func rawLookup(s *libfs.Session, dir sobj.OID, key string) (sobj.OID, error) {
	col, err := sobj.OpenCollection(s.Mem, dir)
	if err != nil {
		return 0, err
	}
	return col.Lookup([]byte(key))
}

// TestReadBarrierObservesRetiredApplies fills a deep window (16 one-op
// batches in flight) and, without any Sync, barriers and raw-reads: every
// insert and every staged size must already be on SCM. A barrier that
// returned early would catch the collection mid-apply or miss the tail of
// the window entirely.
func TestReadBarrierObservesRetiredApplies(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: 1, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)

	const rounds, files = 6, 12
	sawInflight := false
	for r := 0; r < rounds; r++ {
		oids := make([]sobj.OID, files)
		for i := 0; i < files; i++ {
			oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
			if err != nil {
				t.Fatal(err)
			}
			oids[i] = oid
			if err := s.DirInsert(s.Root, []byte(key(r, i)), oid, lock); err != nil {
				t.Fatal(err)
			}
			if err := s.Clerk.Acquire(oid.Lock(), lockservice.X, false); err != nil {
				t.Fatal(err)
			}
			if err := s.FileSetSize(oid, uint64(100*r+i), oid.Lock()); err != nil {
				t.Fatal(err)
			}
			s.Clerk.Release(oid.Lock(), lockservice.X)
		}
		if s.PendingOps() > 0 {
			sawInflight = true
		}
		s.ReadBarrier()
		for i := 0; i < files; i++ {
			got, err := rawLookup(s, s.Root, key(r, i))
			if err != nil {
				t.Fatalf("round %d: %s not on raw SCM after barrier: %v", r, key(r, i), err)
			}
			if got != oids[i] {
				t.Fatalf("round %d: %s resolves to %#x on raw SCM, want %#x", r, key(r, i), got, oids[i])
			}
			m, err := sobj.OpenMFile(s.Mem, oids[i])
			if err != nil {
				t.Fatalf("round %d: open mfile %d: %v", r, i, err)
			}
			size, err := m.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size != uint64(100*r+i) {
				t.Fatalf("round %d: raw header size %d, want %d — barrier returned before the set-size applied",
					r, size, 100*r+i)
			}
		}
	}
	if !sawInflight {
		t.Fatal("window was never observed non-empty before a barrier; the test exercised nothing")
	}
}

// TestReadBarrierCrossGoroutine runs the barrier-then-raw-read sequence on
// a goroutine that is not the writer, concurrent with the shipper
// goroutines retiring the window — the locking this exercises under -race
// is the shipCond protocol between reader, writer, and shippers. The
// reader is handed each round only after the writer logged it (raw reads
// concurrent with NEW applies would be outside the barrier's contract),
// but the window is still draining when the hand-off happens.
func TestReadBarrierCrossGoroutine(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: 1, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)

	const rounds, files = 8, 10
	logged := make(chan int)   // writer -> reader: round r fully logged
	checked := make(chan bool) // reader -> writer: round r verified
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for r := range logged {
			s.ReadBarrier()
			ok := true
			// Every round logged so far must be fully on raw SCM.
			for rr := 0; rr <= r && ok; rr++ {
				for i := 0; i < files; i++ {
					if _, err := rawLookup(s, s.Root, key(rr, i)); err != nil {
						readErr <- fmt.Errorf("after round %d barrier, %s unreadable raw: %w", r, key(rr, i), err)
						ok = false
						break
					}
				}
			}
			checked <- ok
			if !ok {
				return
			}
		}
	}()
	for r := 0; r < rounds; r++ {
		for i := 0; i < files; i++ {
			oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.DirInsert(s.Root, []byte(key(r, i)), oid, lock); err != nil {
				t.Fatal(err)
			}
		}
		logged <- r
		if !<-checked {
			break
		}
	}
	close(logged)
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func key(round, i int) string { return fmt.Sprintf("rb%d-%02d", round, i) }
