package libfs

import (
	"errors"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/rpc"
)

// TestBackoffHonorsRetryAfterHint pins the contract every server-shaped
// backpressure hint relies on: the session's single backoff policy floors
// the delay at the hint the RemoteError carries, for both admission sheds
// (ErrBusy) and quota rejections (ErrQuotaExceeded). A client that retried
// sooner than the hint would defeat the server's backlog shaping.
func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	busy := rpc.NewRemoteError("shed", fsproto.CodeBusy, 40)
	if got := backoffDelay(0, busy); got != 40*time.Millisecond {
		t.Fatalf("busy attempt 0: delay %v, want the 40ms hint", got)
	}
	// The hint is a floor, not a cap: later attempts still back off
	// exponentially from it.
	if got := backoffDelay(1, busy); got != 80*time.Millisecond {
		t.Fatalf("busy attempt 1: delay %v, want 80ms", got)
	}
	quota := rpc.NewRemoteError("quota", fsproto.CodeQuotaExceeded, 23)
	if got := backoffDelay(0, quota); got != 23*time.Millisecond {
		t.Fatalf("quota attempt 0: delay %v, want the 23ms hint", got)
	}
	// No hint: the default base applies.
	plain := rpc.NewRemoteError("shed", fsproto.CodeBusy, 0)
	if got := backoffDelay(0, plain); got != 2*time.Millisecond {
		t.Fatalf("hintless attempt 0: delay %v, want the 2ms default", got)
	}
	// The cap bounds runaway exponents (and shift overflow).
	if got := backoffDelay(20, busy); got != 250*time.Millisecond {
		t.Fatalf("attempt 20: delay %v, want the 250ms cap", got)
	}
	if got := backoffDelay(60, busy); got != 250*time.Millisecond {
		t.Fatalf("attempt 60 (shift overflow): delay %v, want the 250ms cap", got)
	}
}

// TestRetryableShed pins which verdicts the in-call retry loop absorbs: a
// shed always (the batch definitively did not apply), a quota rejection only
// when the server hints in-flight reservations may release, and definitive
// rejections never.
func TestRetryableShed(t *testing.T) {
	if !retryableShed(rpc.NewRemoteError("shed", fsproto.CodeBusy, 0)) {
		t.Fatal("busy without hint must retry")
	}
	if !retryableShed(rpc.NewRemoteError("quota", fsproto.CodeQuotaExceeded, 5)) {
		t.Fatal("quota with hint must retry")
	}
	if retryableShed(rpc.NewRemoteError("quota", fsproto.CodeQuotaExceeded, 0)) {
		t.Fatal("quota without hint is definitive")
	}
	if retryableShed(rpc.NewRemoteError("nospace", fsproto.CodeNoSpace, 0)) {
		t.Fatal("ENOSPC is definitive")
	}
	if retryableShed(errors.New("other")) {
		t.Fatal("untyped errors are definitive")
	}
}
