package libfs_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// counterValue digs a counter out of a sink snapshot.
func counterValue(sink *obs.Sink, name string) int64 {
	for _, c := range sink.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestPipelinedWindowBasic drives a Window=4 session through enough
// one-op batches to rotate repeatedly and checks the window machinery
// leaves nothing behind: all ops applied, queue drained, depth observed.
func TestPipelinedWindowBasic(t *testing.T) {
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second, Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)

	const files = 24
	for i := 0; i < files; i++ {
		oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.DirInsert(s.Root, []byte(fmt.Sprintf("w%02d", i)), oid, lock); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := s.PendingOps(); got != 0 {
		t.Fatalf("pending = %d after sync", got)
	}
	for i := 0; i < files; i++ {
		if _, ok, err := s.DirLookup(s.Root, []byte(fmt.Sprintf("w%02d", i))); err != nil || !ok {
			t.Fatalf("w%02d missing after pipelined sync: ok=%v err=%v", i, ok, err)
		}
	}
	snap := sink.Snapshot()
	var depth int64
	for _, h := range snap.Histograms {
		if h.Name == "libfs.window.depth" {
			depth = h.Count
		}
	}
	if depth == 0 {
		t.Fatal("libfs.window.depth never observed: batches did not rotate through the window")
	}
	if !sys.TFS.JournalIdle() {
		t.Fatal("journal not idle after sync")
	}
}

// TestParkedWindowReshipsInOrder is the reconnect regression test for the
// pipelined window: when the transport dies with SEVERAL batches in the
// window, the parked entries must re-ship verbatim — original order,
// original request IDs, original payloads. The first batch is applied by
// the TFS but its reply is lost (fate unknown to the client), two more
// batches queue behind it while the transport is down; after reconnect a
// single Sync must drain all three, with the first batch's replay caught
// by the server's dedup cache (same request ID ⇒ applied exactly once)
// and the rest applying in window order (the TFS sequence gate rejects
// any reordering, so a passing Sync doubles as an order assertion).
func TestParkedWindowReshipsInOrder(t *testing.T) {
	inj := faultinject.New()
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second,
		Faults: inj, Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// RenewEvery is huge so no background renewal RPC races the armed
	// fault ordinals below.
	s, err := sys.NewSession(libfs.Config{
		UID: 1, BatchLimit: 1, Window: 4, RenewEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)

	// A fully-synced file the parked batches will link under new names:
	// one op per batch, no staged-object coupling between batches.
	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("base"), oid, lock); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	applied0 := sys.TFS.BatchesApplied.Load()

	// Batch 1 reaches the TFS and applies, but the reply is lost; the
	// shipper parks it with fate unknown.
	inj.FailAt("rpc.reply", inj.Counts()["rpc.reply"]+1, nil)
	if err := s.DirInsert(s.Root, []byte("link1"), oid, lock); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(sink, "libfs.window.parks") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shipper never parked on the lost reply")
		}
		time.Sleep(time.Millisecond)
	}

	// Transport fully down: two more batches queue behind the parked one.
	inj.FailAt("rpc.call", 0, nil)
	if err := s.DirInsert(s.Root, []byte("link2"), oid, lock); err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("link3"), oid, lock); err != nil {
		t.Fatal(err)
	}
	err = s.Sync()
	if !errors.Is(err, libfs.ErrTFSUnreachable) {
		t.Fatalf("Sync with transport down = %v, want ErrTFSUnreachable", err)
	}
	if got := s.PendingOps(); got != 3 {
		t.Fatalf("pending = %d with 3 parked batches, want 3", got)
	}

	// Reconnect: one Sync drains the window in order.
	inj.ClearRules()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after reconnect: %v", err)
	}
	if got := s.PendingOps(); got != 0 {
		t.Fatalf("pending = %d after reconnect sync", got)
	}
	// Exactly 3 batch applications: batch 1 once (its replay was deduped
	// under the original request ID), batches 2 and 3 once each. A fresh
	// request ID on the replay would make this 4.
	if got := sys.TFS.BatchesApplied.Load() - applied0; got != 3 {
		t.Fatalf("applied %d batches across park+reship, want 3 (dedup must catch the replay)", got)
	}
	for _, name := range []string{"link1", "link2", "link3"} {
		if _, ok, err := s.DirLookup(s.Root, []byte(name)); err != nil || !ok {
			t.Fatalf("%s missing after reship: ok=%v err=%v", name, ok, err)
		}
	}
	if !sys.TFS.JournalIdle() {
		t.Fatal("journal not idle after reship")
	}
}

// TestPipelinedRejectionDiscardsSuffix checks completion-window error
// resolution: a batch the TFS rejects kills itself AND every batch behind
// it in the window (they may depend on its effects), discard hooks fire,
// and the typed ErrStaleBatch surfaces at the next sync point. Batches
// before the rejected one stay applied — the window discards a suffix,
// never a middle.
func TestPipelinedRejectionDiscardsSuffix(t *testing.T) {
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second, Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1, BatchLimit: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lock := s.Root.Lock()
	if err := s.Clerk.Acquire(lock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(lock, lockservice.X)

	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("keep"), oid, lock); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	var discards int
	s.AddDiscardHook(func() { discards++ })

	// Batch A: a good link. Batch B: an insert of an object that does not
	// exist — passes every client-side check, rejected by TFS validation.
	// Batch C: another good link, doomed by riding behind B.
	if err := s.DirInsert(s.Root, []byte("before"), oid, lock); err != nil {
		t.Fatal(err)
	}
	if err := s.LogOp(fsproto.Op{
		Code: fsproto.OpInsert, Target: s.Root, Key: []byte("bogus"),
		Child: oid + 0x5000, CoverLock: lock,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte("after"), oid, lock); err != nil {
		t.Fatal(err)
	}

	err = s.Sync()
	if !errors.Is(err, libfs.ErrStaleBatch) {
		t.Fatalf("Sync = %v, want ErrStaleBatch", err)
	}
	if got := s.PendingOps(); got != 0 {
		t.Fatalf("pending = %d after rejection, want 0 (suffix discarded)", got)
	}
	if discards == 0 {
		t.Fatal("discard hooks did not fire on rejection")
	}
	// "before" shipped ahead of the bogus batch and stays; "after" rode
	// behind it and must be gone with it.
	if _, ok, err := s.DirLookup(s.Root, []byte("before")); err != nil || !ok {
		t.Fatalf("batch before the rejection lost: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s.DirLookup(s.Root, []byte("after")); ok {
		t.Fatal("batch after the rejection survived, want suffix discard")
	}
	if got := counterValue(sink, "libfs.window.discards"); got < 2 {
		t.Fatalf("libfs.window.discards = %d, want >= 2", got)
	}
	// The session reconverged: it keeps working.
	if err := s.DirInsert(s.Root, []byte("resumed"), oid, lock); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after reconvergence: %v", err)
	}
}

// TestWindowSeqGate exercises the TFS-side sequence gate directly: batches
// of one session carry (epoch, seq, flags) window headers, and the gate
// admits them strictly in window order — replays and regressions die with
// the typed ErrWindowStale, a rejection poisons the rest of the epoch, and
// an Opener re-baselines a fresh epoch after a client-side discard.
func TestWindowSeqGate(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 64 << 20, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	empty := fsproto.EncodeOps(nil)
	send := func(h fsproto.SeqHeader, ops []byte) error {
		return sys.TFS.ApplyLogSeq(s.ClientID(),
			fsproto.EncodeTenantFramed(fsproto.TenantHeader{}, fsproto.EncodeApplyLogSeq(h, ops)))
	}
	// Epoch 1 opens at seq 5 (the gate baselines wherever the opener says).
	if err := send(fsproto.SeqHeader{Seq: 5, Epoch: 1, Opener: true}, empty); err != nil {
		t.Fatalf("epoch 1 opener seq 5: %v", err)
	}
	if err := send(fsproto.SeqHeader{Seq: 6, Epoch: 1}, empty); err != nil {
		t.Fatalf("seq 6: %v", err)
	}
	// A replayed (already completed) sequence number is typed stale.
	if err := send(fsproto.SeqHeader{Seq: 5, Epoch: 1}, empty); !errors.Is(err, fsproto.ErrWindowStale) {
		t.Fatalf("seq 5 replay = %v, want ErrWindowStale", err)
	}
	// So is anything from an epoch the session has moved past.
	if err := send(fsproto.SeqHeader{Seq: 9, Epoch: 0}, empty); !errors.Is(err, fsproto.ErrWindowStale) {
		t.Fatalf("dead epoch 0 = %v, want ErrWindowStale", err)
	}
	// A validation rejection poisons the rest of the epoch: the bogus batch
	// fails on its own terms, and the next in-order batch dies stale.
	bogus := fsproto.EncodeOps([]fsproto.Op{{
		Code: fsproto.OpInsert, Target: s.Root, Key: []byte("bogus"),
		Child: s.Root + 0x5000, CoverLock: s.Root.Lock(),
	}})
	if err := send(fsproto.SeqHeader{Seq: 7, Epoch: 1}, bogus); err == nil || errors.Is(err, fsproto.ErrWindowStale) {
		t.Fatalf("bogus seq 7 = %v, want a validation rejection", err)
	}
	if err := send(fsproto.SeqHeader{Seq: 8, Epoch: 1}, empty); !errors.Is(err, fsproto.ErrWindowStale) {
		t.Fatalf("seq 8 after poison = %v, want ErrWindowStale", err)
	}
	// A non-opener cannot resurrect the epoch; the new epoch's opener can.
	if err := send(fsproto.SeqHeader{Seq: 9, Epoch: 2, Opener: true}, empty); err != nil {
		t.Fatalf("epoch 2 opener: %v", err)
	}
	if err := send(fsproto.SeqHeader{Seq: 10, Epoch: 2}, empty); err != nil {
		t.Fatalf("seq 10: %v", err)
	}
	// Unsequenced ApplyLog batches (seq 0) bypass the gate.
	if err := send(fsproto.SeqHeader{}, empty); err != nil {
		t.Fatalf("seq 0: %v", err)
	}
}

// TestWritePipeStress is the race-enabled pipeline stress: several
// sessions, each with a deep window and one-op batches, hammer disjoint
// directories concurrently. The TFS side coalesces their batches into
// group commits and applies disjoint batches in parallel; the test
// asserts nothing is lost, the volume checks clean, and the journal
// quiesces. Run under -race this covers the shipper/window locking, the
// group-commit queue, and the conflict-scheduler workers.
func TestWritePipeStress(t *testing.T) {
	sink := obs.New()
	sys, err := core.New(core.Options{
		ArenaSize: 128 << 20, AcquireTimeout: 30 * time.Second, Obs: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 4
		files   = 40
	)
	// One directory per session, created synchronously up front.
	setup, err := sys.NewSession(libfs.Config{UID: 1})
	if err != nil {
		t.Fatal(err)
	}
	rootLock := setup.Root.Lock()
	if err := setup.Clerk.Acquire(rootLock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	dirs := make([]sobj.OID, clients)
	for i := range dirs {
		d, err := setup.CreateCollectionStaged(0755)
		if err != nil {
			t.Fatal(err)
		}
		if err := setup.DirInsert(setup.Root, []byte(fmt.Sprintf("d%d", i)), d, rootLock); err != nil {
			t.Fatal(err)
		}
		dirs[i] = d
	}
	if err := setup.Sync(); err != nil {
		t.Fatal(err)
	}
	setup.Clerk.Release(rootLock, lockservice.X)
	if err := setup.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	sessions := make([]*libfs.Session, clients)
	for i := 0; i < clients; i++ {
		sess, err := sys.NewSession(libfs.Config{UID: uint32(10 + i), BatchLimit: 1, Window: 8})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := sessions[i]
			lock := dirs[i].Lock()
			if err := sess.Clerk.Acquire(lock, lockservice.X, true); err != nil {
				errs[i] = err
				return
			}
			defer sess.Clerk.Release(lock, lockservice.X)
			for f := 0; f < files; f++ {
				oid, err := sess.CreateMFileStaged(0644, sobj.DefaultExtentLog)
				if err != nil {
					errs[i] = err
					return
				}
				if err := sess.DirInsert(dirs[i], []byte(fmt.Sprintf("f%03d", f)), oid, lock); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = sess.Sync()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// Every file visible through a fresh session (no shadow help).
	check, err := sys.NewSession(libfs.Config{UID: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	for i := 0; i < clients; i++ {
		for f := 0; f < files; f++ {
			if _, ok, err := check.DirLookup(dirs[i], []byte(fmt.Sprintf("f%03d", f))); err != nil || !ok {
				t.Fatalf("d%d/f%03d missing: ok=%v err=%v", i, f, ok, err)
			}
		}
	}
	for i := range sessions {
		if err := sessions[i].Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if !sys.TFS.JournalIdle() {
		t.Fatal("journal not idle after stress")
	}
	rep, err := sys.TFS.Fsck(false)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if rep.LostBlocks != 0 || rep.LeakedBlocks != 0 {
		t.Fatalf("fsck not clean after stress: %v", rep)
	}
	if counterValue(sink, "tfs.groupcommit.fences") == 0 {
		t.Fatal("no group-commit fences recorded")
	}
}
