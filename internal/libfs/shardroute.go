// Shard routing for sharded volumes. A classic single-shard mount takes
// none of these paths: the session's table is empty, every helper collapses
// to shard 0, and the wire formats stay exactly as before sharding.
//
// The router's contract mirrors the trusted side's partitioning:
//
//   - Every window batch is single-shard. Each shard's sequence gate demands
//     a dense per-session sequence, so the session keeps one seq counter per
//     shard and rotates the accumulating batch whenever a logged group's
//     home shard differs from the batch's.
//   - Batches for one shard pipeline at full window depth; a shard switch is
//     an ordering barrier (the previous shard's tail must retire before the
//     next shard's head launches). That keeps the session's applied updates
//     a prefix of what it logged even across shards: when a batch is
//     rejected, every discarded in-flight sibling is on the rejecting
//     shard, where the server's poisoned epoch guarantees it cannot apply.
//   - A logged group whose objects span shards cannot ride any one shard's
//     window; it drains the session and applies synchronously as a
//     cross-shard transaction (MethodTxApply), which the trusted set
//     two-phase-journals on every participant shard.
package libfs

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// multiSpace composes the per-partition kernel mappings of a sharded mount
// into one scm.Space: each access routes to the mapping whose partition
// contains the address, so every shard's soft-TLB protection applies
// exactly as on a classic single-partition mount.
type multiSpace struct {
	maps []*scmmgr.Mapping
}

func (m *multiSpace) route(addr uint64) *scmmgr.Mapping {
	for _, mp := range m.maps {
		start, size := mp.Span()
		if addr >= start && addr < start+size {
			return mp
		}
	}
	// Out-of-range addresses fall through to the first mapping, whose own
	// bounds check produces the protection error.
	return m.maps[0]
}

func (m *multiSpace) Read(addr uint64, p []byte) error  { return m.route(addr).Read(addr, p) }
func (m *multiSpace) Write(addr uint64, p []byte) error { return m.route(addr).Write(addr, p) }
func (m *multiSpace) WriteStream(addr uint64, p []byte) error {
	return m.route(addr).WriteStream(addr, p)
}
func (m *multiSpace) Flush(addr uint64, n int) error { return m.route(addr).Flush(addr, n) }
func (m *multiSpace) BFlush()                        { m.maps[0].BFlush() }
func (m *multiSpace) Fence()                         { m.maps[0].Fence() }
func (m *multiSpace) Atomic64(addr uint64, v uint64) error {
	return m.route(addr).Atomic64(addr, v)
}
func (m *multiSpace) Size() uint64                             { return m.maps[0].Size() }
func (m *multiSpace) Slice(addr uint64, n int) ([]byte, error) { return m.route(addr).Slice(addr, n) }

// sharded reports whether the mounted volume has more than one shard.
func (s *Session) sharded() bool { return len(s.shards) > 1 }

// Shards returns the mounted volume's shard count (1 on a classic volume).
func (s *Session) Shards() int {
	if len(s.shards) > 1 {
		return len(s.shards)
	}
	return 1
}

// ShardOf returns the shard whose partition holds oid's storage (always 0
// on a classic volume). Interface layers use it to stage an object's
// storage on the shard its placement rule picked.
func (s *Session) ShardOf(oid sobj.OID) int { return s.shardOf(oid.Addr()) }

// ShardRoot returns shard i's root namespace collection — each shard's
// volume format creates its own root — or the session root on a classic
// volume (and for shard 0, whose root IS the session root).
func (s *Session) ShardRoot(i int) sobj.OID {
	if i > 0 && i < len(s.shards) {
		return s.shards[i].Root
	}
	return s.Root
}

// shardOf maps an SCM address to its owning shard. Addresses outside every
// shard's heap fall back to 0; server-side validation rejects anything that
// actually matters.
func (s *Session) shardOf(addr uint64) int {
	if len(s.table) < 2 {
		return 0
	}
	if k := s.table.OfAddr(addr); k >= 0 {
		return k
	}
	return 0
}

// sealPayload encodes a window batch for the wire: the tenant frame, the
// sequence header and ops, shard-framed with the routing epoch on a sharded
// volume. The tenant frame restates the mount-time binding on every batch;
// the TFS cross-checks it so a forged frame cannot bill another tenant.
func (s *Session) sealPayload(hdr fsproto.SeqHeader, ops []fsproto.Op, shardID int) []byte {
	p := fsproto.EncodeTenantFramed(fsproto.TenantHeader{Tenant: s.cfg.Tenant},
		fsproto.EncodeApplyLogSeq(hdr, fsproto.EncodeOps(ops)))
	if s.sharded() {
		p = fsproto.EncodeShardFramed(fsproto.ShardHeader{Shard: uint32(shardID), Epoch: s.repoch}, p)
	}
	return p
}

// applyMethod returns the RPC method window batches ship on.
func (s *Session) applyMethod() uint32 {
	if s.sharded() {
		return fsproto.MethodApplyLogShard
	}
	return fsproto.MethodApplyLogSeq
}

// groupShard resolves the home shard of one logged group from every object
// its ops (and the caller's extra involved OIDs) name, reporting cross=true
// when they span shards. Zero OIDs — unset union fields — are skipped.
func (s *Session) groupShard(single *fsproto.Op, ops []fsproto.Op, involved []sobj.OID) (home int, cross bool) {
	home = -1
	add := func(oid sobj.OID) bool {
		if oid == 0 {
			return true
		}
		sh := s.shardOf(oid.Addr())
		if home < 0 {
			home = sh
			return true
		}
		return sh == home
	}
	addOp := func(op *fsproto.Op) bool {
		return add(op.Target) && add(op.Child) && add(op.Dir2)
	}
	ok := true
	if single != nil {
		ok = addOp(single)
	}
	for i := range ops {
		if !ok {
			break
		}
		ok = addOp(&ops[i])
	}
	for _, oid := range involved {
		if !ok {
			break
		}
		ok = add(oid)
	}
	if home < 0 {
		home = 0
	}
	return home, !ok
}

// LogOpsSharded buffers ops like LogOps, additionally naming objects the
// sequence involves that the op fields don't spell out (a resolved unlink
// victim, an overwritten rename target). On a sharded volume the router
// needs the full set: a group whose objects span shards cannot ride the
// per-shard window and applies synchronously as a cross-shard transaction
// instead.
func (s *Session) LogOpsSharded(ops []fsproto.Op, involved ...sobj.OID) error {
	if len(ops) == 0 {
		return nil
	}
	return s.logOps(nil, ops, involved)
}

// txApply applies one logged group synchronously as a cross-shard
// transaction. The window drains first — the transaction must order after
// everything the session already logged — then the ops ship via TxApply,
// which the trusted set validates, two-phase-journals on every participant
// shard, and applies before replying. The group's staged extents are
// consumed on success and returned to their shards' pools on failure:
// exactly a one-group batch's lifecycle, compressed to a synchronous round
// trip.
func (s *Session) txApply(single *fsproto.Op, ops []fsproto.Op) error {
	if single != nil {
		ops = []fsproto.Op{*single}
	}
	// Claim the staged extents taken since the last log call; they ride
	// (and fall) with this group.
	s.mu.Lock()
	staged := s.pendingStaged
	s.pendingStaged = nil
	s.mu.Unlock()
	rollback := func() {
		s.mu.Lock()
		for _, ext := range staged {
			order := alloc.OrderFor(ext.size)
			sh := s.shardOf(ext.addr)
			s.pools[sh][order] = append(s.pools[sh][order], ext.addr)
		}
		s.mu.Unlock()
	}
	if err := s.FlushUpdates(); err != nil {
		rollback()
		return err
	}
	payload := fsproto.EncodeOps(ops)
	var err error
	for attempt := 0; ; attempt++ {
		_, err = s.rc.Call(fsproto.MethodTxApply, payload)
		if err == nil || !retryableShed(err) ||
			s.cfg.BusyRetries < 0 || attempt >= s.cfg.BusyRetries {
			break
		}
		sleepBackoff(attempt, err)
	}
	if err != nil {
		rollback()
		return fmt.Errorf("%w: %w", ErrStaleBatch, err)
	}
	s.OpsLogged.Add(int64(len(ops)))
	s.Flushes.Add(1)
	return nil
}

// AllocStagedFor allocates staged storage on the shard that owns oid, so
// every extent of an object stays on the object's shard — the placement
// invariant cross-shard transactions rely on.
func (s *Session) AllocStagedFor(oid sobj.OID, size uint64) (uint64, error) {
	return s.AllocStagedOn(s.shardOf(oid.Addr()), size)
}

// AllocStagedOn takes an extent of at least size bytes from the given
// shard's pool, refilling from that shard's allocator when empty.
func (s *Session) AllocStagedOn(shardID int, size uint64) (uint64, error) {
	if shardID < 0 || shardID >= len(s.pools) {
		return 0, fmt.Errorf("libfs: staging shard %d out of range", shardID)
	}
	order := alloc.OrderFor(size)
	actual := uint64(1) << order
	s.mu.Lock()
	if list := s.pools[shardID][order]; len(list) > 0 {
		addr := list[len(list)-1]
		s.pools[shardID][order] = list[:len(list)-1]
		s.pendingStaged = append(s.pendingStaged, stagedExt{addr, actual})
		s.mu.Unlock()
		return addr, nil
	}
	s.mu.Unlock()
	// Refill outside the lock; concurrent refills are harmless.
	addrs, err := s.prealloc(shardID, actual, s.cfg.PoolRefill)
	if err != nil {
		return 0, err
	}
	s.PoolRefills.Add(1)
	s.mu.Lock()
	s.pools[shardID][order] = append(s.pools[shardID][order], addrs[1:]...)
	s.pendingStaged = append(s.pendingStaged, stagedExt{addrs[0], actual})
	s.mu.Unlock()
	return addrs[0], nil
}

// StagingAllocatorOn returns an sobj.Allocator backed by the given shard's
// pool, for staging an object whose placement rule picked that shard.
func (s *Session) StagingAllocatorOn(shardID int) sobj.Allocator {
	return poolAllocator{s: s, shard: shardID}
}
