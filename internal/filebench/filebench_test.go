package filebench

import (
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

const testScale = 0.02 // tiny working sets for the unit suite

func pxfsTarget(t *testing.T) FS {
	t.Helper()
	sys, err := core.New(core.Options{ArenaSize: 256 << 20, AcquireTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return PXFSAdapter{FS: pxfs.New(s, pxfs.Options{NameCache: true})}
}

func targets(t *testing.T) map[string]FS {
	t.Helper()
	ext3fs, err := extfs.Mkfs(blockdev.New(64<<10, nil, false), extfs.Ext3) // 256 MiB
	if err != nil {
		t.Fatal(err)
	}
	ext4fs, err := extfs.Mkfs(blockdev.New(64<<10, nil, false), extfs.Ext4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"pxfs":  pxfsTarget(t),
		"ramfs": VFSAdapter{V: vfs.New(ramfs.New(), vfs.Config{})},
		"ext3":  VFSAdapter{V: vfs.New(ext3fs, vfs.Config{})},
		"ext4":  VFSAdapter{V: vfs.New(ext4fs, vfs.Config{})},
	}
}

func TestProfilesRunOnAllTargets(t *testing.T) {
	profiles := []Profile{Fileserver(testScale), Webserver(testScale), Webproxy(testScale), Varmail(testScale), LogRotate(testScale)}
	for name, fsys := range targets(t) {
		for _, p := range profiles {
			p := p
			t.Run(name+"/"+p.Name, func(t *testing.T) {
				if err := Setup(fsys, p); err != nil {
					t.Fatalf("setup: %v", err)
				}
				res, err := Run(fsys, p, RunOpts{Iterations: 5})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Ops == 0 || res.Throughput <= 0 {
					t.Fatalf("degenerate result: %+v", res)
				}
				if res.MeanOpLatency <= 0 || res.P95OpLatency < res.MeanOpLatency/10 {
					t.Fatalf("latency stats broken: %+v", res)
				}
				// Re-run on the warm working set (idempotent workload).
				if _, err := Run(fsys, p, RunOpts{Iterations: 3, Seed: 7}); err != nil {
					t.Fatalf("second run: %v", err)
				}
			})
		}
		// Each target gets a fresh /bench tree per profile, so recreate
		// targets instead of reusing the map entry across profiles.
		break
	}
}

func TestEachProfileEachTargetFresh(t *testing.T) {
	profiles := []func(float64) Profile{Fileserver, Webserver, Webproxy, Varmail, LogRotate}
	for _, mk := range profiles {
		p := mk(testScale)
		t.Run(p.Name, func(t *testing.T) {
			for name, fsys := range targets(t) {
				if err := Setup(fsys, p); err != nil {
					t.Fatalf("%s setup: %v", name, err)
				}
				if _, err := Run(fsys, p, RunOpts{Iterations: 3}); err != nil {
					t.Fatalf("%s run: %v", name, err)
				}
			}
		})
	}
}

func TestMultiThreadedRun(t *testing.T) {
	fsys := pxfsTarget(t)
	p := Webproxy(0.05)
	if err := Setup(fsys, p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(fsys, p, RunOpts{Threads: 4, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 || res.Iterations != 16 {
		t.Fatalf("result = %+v", res)
	}
}

func TestKVWorkloadOnFlatFS(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 128 << 20, AcquireTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	kv := FlatKV{FS: flatfs.New(s, flatfs.Options{})}
	p := Webproxy(testScale)
	if err := SetupKV(kv, p); err != nil {
		t.Fatal(err)
	}
	res, err := RunKV(kv, p, RunOpts{Threads: 2, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatalf("no ops: %+v", res)
	}
}

func TestTracerCapturesPhases(t *testing.T) {
	sys, err := core.New(core.Options{ArenaSize: 128 << 20, AcquireTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tracer := sys.Costs // placeholder to quiet linters; real tracer below
	_ = tracer
	trc := newTracer()
	s, err := sys.NewSession(libfs.Config{UID: 1000, Tracer: trc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fsys := PXFSAdapter{FS: pxfs.New(s, pxfs.Options{NameCache: true})}
	p := Webproxy(testScale)
	if err := Setup(fsys, p); err != nil {
		t.Fatal(err)
	}
	trc.Reset()
	if _, err := Run(fsys, p, RunOpts{Iterations: 3, Tracer: trc}); err != nil {
		t.Fatal(err)
	}
	ops := trc.Ops()
	if len(ops) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	sawLock, sawTFS := false, false
	for _, op := range ops {
		for _, ph := range op.Phases {
			if len(ph.Resource) > 4 && ph.Resource[:5] == "lock:" {
				sawLock = true
			}
			if ph.Resource == "tfs" {
				sawTFS = true
			}
		}
	}
	if !sawLock {
		t.Error("no lock phases recorded")
	}
	if !sawTFS {
		t.Error("no TFS phases recorded")
	}
}

func newTracer() *costmodel.Tracer { return costmodel.NewTracer() }
