// Package filebench reimplements the FileBench profiles the paper evaluates
// with (§7.2.2): Fileserver, Webserver, and Webproxy, with the paper's
// parameters (file counts, directory widths, mean file sizes, I/O sizes),
// plus the FlatFS-converted Webproxy where create/write/close becomes put,
// open/read/close becomes get, and delete becomes erase (§7.3.2). A Scale
// parameter shrinks the working set proportionally so the suite fits small
// test arenas; the benchmark harness runs larger scales.
//
// Workloads run against any file system through the FS adapter interface
// (adapters for PXFS and the VFS baselines live in adapters.go) and measure
// per-operation latency (mean and 95th percentile) and throughput in
// workload operations per second, the quantities Tables 1–3 and Figures 5–6
// report.
package filebench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// File is an open file in a workload.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
}

// FS is the adapter interface workloads drive.
type FS interface {
	Create(path string) (File, error)
	Open(path string) (File, error)
	OpenAppend(path string) (File, error)
	Delete(path string) error
	Mkdir(path string) error
	Stat(path string) error
	Sync() error
}

// KV is the put/get/erase interface for the FlatFS-converted Webproxy.
// Get reuses buf's storage when possible (the paper's get copies the file
// into an application buffer, §6.2).
type KV interface {
	Put(key string, val []byte) error
	Get(key string, buf []byte) ([]byte, error)
	Erase(key string) error
}

// Profile describes one workload.
type Profile struct {
	Name string
	// NFiles is the working-set size.
	NFiles int
	// DirWidth is the mean directory width.
	DirWidth int
	// MeanFileSize in bytes.
	MeanFileSize int
	// IOSize bounds a single read/write call.
	IOSize int
	// AppendSize for log appends.
	AppendSize int
	// ReadsPerIter: open/read/close repetitions per iteration.
	ReadsPerIter int
	// Metadata mix flags.
	DoCreateDelete bool
	DoStat         bool
	// WholeFileRewrite adds a whole-file overwrite of a random file each
	// iteration (the fileserver mix's write).
	WholeFileRewrite bool
	// FsyncEvery issues an explicit Sync every N iterations (1 = every
	// iteration, the varmail durability discipline). 0 disables.
	FsyncEvery int
	// RotateEvery switches the log append to a thread-private log that is
	// deleted and restarted every N appends (log-structured append+rotate:
	// a steady allocate/free churn that ages the allocator). 0 keeps the
	// shared append-only log.
	RotateEvery int
}

// Fileserver is the paper's file-server profile: creates, deletes, appends,
// whole reads and writes on 10,000 files of mean size 128 KB, directory
// width 20, 1 MB I/O size.
func Fileserver(scale float64) Profile {
	return Profile{
		Name:             "fileserver",
		NFiles:           scaled(10000, scale),
		DirWidth:         20,
		MeanFileSize:     128 * 1024,
		IOSize:           1 << 20,
		AppendSize:       16 * 1024,
		ReadsPerIter:     1,
		DoCreateDelete:   true,
		DoStat:           true,
		WholeFileRewrite: true,
	}
}

// Varmail is the fsync-heavy mail-server profile (filebench's varmail):
// small files, a create/delete plus append per iteration, and an explicit
// fsync after every iteration — the durability discipline of an MTA
// spooling messages. Under multi-tenant runs it is the well-behaved,
// latency-sensitive victim workload: every iteration ships a small batch
// and waits for it.
func Varmail(scale float64) Profile {
	return Profile{
		Name:           "varmail",
		NFiles:         scaled(1000, scale),
		DirWidth:       100,
		MeanFileSize:   16 * 1024,
		IOSize:         1 << 20,
		AppendSize:     8 * 1024,
		ReadsPerIter:   1,
		DoCreateDelete: true,
		FsyncEvery:     1,
	}
}

// LogRotate is the log-structured append+rotate profile: large appends to a
// thread-private log restarted every few appends. The steady stream of big
// batches makes it the natural aggressor workload in multi-tenant runs, and
// the allocate-grow-free churn ages the allocator for the long-haul
// harness.
func LogRotate(scale float64) Profile {
	return Profile{
		Name:         "logrotate",
		NFiles:       scaled(100, scale),
		DirWidth:     20,
		MeanFileSize: 16 * 1024,
		IOSize:       1 << 20,
		AppendSize:   64 * 1024,
		RotateEvery:  8,
	}
}

// Webserver is the read-mostly profile: 10 open/read/close sequences on
// 16 KB files plus a log append.
func Webserver(scale float64) Profile {
	return Profile{
		Name:         "webserver",
		NFiles:       scaled(10000, scale),
		DirWidth:     20,
		MeanFileSize: 16 * 1024,
		IOSize:       1 << 20,
		AppendSize:   16 * 1024,
		ReadsPerIter: 10,
	}
}

// Webproxy stresses a single wide directory: create/write/close,
// 5 open/read/close, delete, and a log append on 1,000 16 KB files with
// directory width 1500 (i.e. one directory).
func Webproxy(scale float64) Profile {
	return Profile{
		Name:           "webproxy",
		NFiles:         scaled(1000, scale),
		DirWidth:       1500,
		MeanFileSize:   16 * 1024,
		IOSize:         1 << 20,
		AppendSize:     16 * 1024,
		ReadsPerIter:   5,
		DoCreateDelete: true,
	}
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 20 {
		v = 20
	}
	return v
}

// fileName maps index i into the profile's directory tree.
func (p Profile) fileName(i int) string {
	dir := i / p.DirWidth
	return fmt.Sprintf("/bench/dir%04d/f%06d", dir, i)
}

func (p Profile) dirName(d int) string { return fmt.Sprintf("/bench/dir%04d", d) }

// key maps index i to a FlatFS key.
func (p Profile) key(i int) string { return fmt.Sprintf("bench-f%06d", i) }

// fileSize draws file i's size: exponential around the mean, clamped, and
// deterministic per index.
func (p Profile) fileSize(i int) int {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 12345))
	size := int(rng.ExpFloat64() * float64(p.MeanFileSize))
	if size < 512 {
		size = 512
	}
	if size > 8*p.MeanFileSize {
		size = 8 * p.MeanFileSize
	}
	return size
}

// Setup populates the working set (and the append log).
func Setup(fsys FS, p Profile) error {
	if err := fsys.Mkdir("/bench"); err != nil {
		return fmt.Errorf("setup mkdir: %w", err)
	}
	ndirs := (p.NFiles + p.DirWidth - 1) / p.DirWidth
	for d := 0; d < ndirs; d++ {
		if err := fsys.Mkdir(p.dirName(d)); err != nil {
			return fmt.Errorf("setup mkdir %d: %w", d, err)
		}
	}
	buf := make([]byte, p.IOSize)
	fillPattern(buf)
	for i := 0; i < p.NFiles; i++ {
		if err := writeWhole(fsys, p.fileName(i), buf[:min(p.fileSize(i), len(buf))]); err != nil {
			return fmt.Errorf("setup file %d: %w", i, err)
		}
	}
	if err := writeWhole(fsys, "/bench/logfile", buf[:p.AppendSize]); err != nil {
		return err
	}
	return fsys.Sync()
}

// SetupKV populates the working set for the KV-converted workload.
func SetupKV(kv KV, p Profile) error {
	buf := make([]byte, p.MeanFileSize*8)
	fillPattern(buf)
	for i := 0; i < p.NFiles; i++ {
		if err := kv.Put(p.key(i), buf[:p.fileSize(i)]); err != nil {
			return fmt.Errorf("setup key %d: %w", i, err)
		}
	}
	return kv.Put("bench-logfile", buf[:p.AppendSize])
}

func fillPattern(buf []byte) {
	for i := range buf {
		buf[i] = byte(i*31 + 7)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func writeWhole(fsys FS, path string, data []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Result summarizes a run.
type Result struct {
	Profile    string
	Threads    int
	Iterations int64
	Ops        int64
	Elapsed    time.Duration
	// MeanOpLatency is elapsed wall time per workload operation (the
	// Table 2 quantity).
	MeanOpLatency time.Duration
	// P95OpLatency is the 95th-percentile per-op latency, from
	// per-iteration samples.
	P95OpLatency time.Duration
	// Throughput in workload operations per second (Figures 5–6).
	Throughput float64
}

// RunOpts controls a run.
type RunOpts struct {
	// Threads is the number of concurrent workload threads.
	Threads int
	// Iterations per thread.
	Iterations int
	// Seed for workload randomness.
	Seed int64
	// Tracer records phase traces (single-threaded capture runs).
	Tracer *costmodel.Tracer
}

func (o *RunOpts) defaults() {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}
