package filebench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// Run executes the profile against fsys. Threads share the file system (as
// client threads share a process in §7.2.3); each owns a disjoint slice of
// the file index space for create/delete so the working set stays stable.
func Run(fsys FS, p Profile, opts RunOpts) (Result, error) {
	opts.defaults()
	type threadOut struct {
		ops     int64
		latencs []time.Duration // per-iteration
		iters   int64
		err     error
	}
	outs := make([]threadOut, opts.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for tIdx := 0; tIdx < opts.Threads; tIdx++ {
		wg.Add(1)
		go func(tIdx int) {
			defer wg.Done()
			out := &outs[tIdx]
			rng := rand.New(rand.NewSource(opts.Seed + int64(tIdx)*7919))
			w := worker{
				fsys: fsys, p: p, rng: rng,
				lo: tIdx * p.NFiles / opts.Threads,
				hi: (tIdx + 1) * p.NFiles / opts.Threads,
			}
			w.tracer = opts.Tracer
			for i := 0; i < opts.Iterations; i++ {
				t0 := time.Now()
				ops, err := w.iteration()
				if err != nil {
					out.err = fmt.Errorf("thread %d iter %d: %w", tIdx, i, err)
					return
				}
				out.latencs = append(out.latencs, time.Since(t0))
				out.ops += ops
				out.iters++
			}
		}(tIdx)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{Profile: p.Name, Threads: opts.Threads, Elapsed: elapsed}
	var perOp []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		res.Ops += outs[i].ops
		res.Iterations += outs[i].iters
		opsPerIter := outs[i].ops / max64(outs[i].iters, 1)
		for _, d := range outs[i].latencs {
			perOp = append(perOp, d/time.Duration(max64(opsPerIter, 1)))
		}
	}
	if res.Ops > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if len(perOp) > 0 {
		sort.Slice(perOp, func(i, j int) bool { return perOp[i] < perOp[j] })
		res.P95OpLatency = perOp[len(perOp)*95/100]
		// Mean per-op latency as experienced by a thread.
		var sum time.Duration
		for _, d := range perOp {
			sum += d
		}
		res.MeanOpLatency = sum / time.Duration(len(perOp))
	}
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type worker struct {
	fsys    FS
	p       Profile
	rng     *rand.Rand
	lo, hi  int
	tracer  *costmodel.Tracer
	buf     []byte
	iters   int // iterations completed (FsyncEvery cadence)
	appends int // appends issued (RotateEvery cadence)
}

func (w *worker) pick() int {
	if w.hi <= w.lo {
		return w.lo
	}
	return w.lo + w.rng.Intn(w.hi-w.lo)
}

func (w *worker) begin(name string) { w.tracer.BeginOp(name) }

func (w *worker) end() { w.tracer.EndOp() }

// iteration performs one profile iteration, returning the number of
// workload operations it issued.
func (w *worker) iteration() (int64, error) {
	p := w.p
	if w.buf == nil {
		w.buf = make([]byte, p.IOSize)
		fillPattern(w.buf)
	}
	ops := int64(0)
	// Whole-file reads.
	for r := 0; r < p.ReadsPerIter; r++ {
		i := w.pick()
		w.begin("openreadclose")
		err := w.readWhole(p.fileName(i))
		w.end()
		ops += 3
		if err != nil {
			return ops, fmt.Errorf("read %d: %w", i, err)
		}
	}
	if p.DoCreateDelete {
		i := w.pick()
		name := p.fileName(i)
		// Delete then recreate keeps the working set stable.
		w.begin("delete")
		err := w.fsys.Delete(name)
		w.end()
		ops++
		if err != nil {
			return ops, fmt.Errorf("delete: %w", err)
		}
		w.begin("createwrite")
		err = writeWhole(w.fsys, name, w.buf[:min(p.fileSize(i), len(w.buf))])
		w.end()
		ops += 3
		if err != nil {
			return ops, fmt.Errorf("create: %w", err)
		}
	}
	if p.WholeFileRewrite {
		// Whole-file overwrite of another file.
		i := w.pick()
		w.begin("writewhole")
		err := writeWhole(w.fsys, p.fileName(i), w.buf[:min(p.fileSize(i), len(w.buf))])
		w.end()
		ops += 3
		if err != nil {
			return ops, fmt.Errorf("overwrite: %w", err)
		}
	}
	// Log append.
	if p.AppendSize > 0 {
		w.begin("appendlog")
		err := w.appendLog()
		w.end()
		ops += 3
		if err != nil {
			return ops, fmt.Errorf("append: %w", err)
		}
		w.appends++
		if p.RotateEvery > 0 && w.appends%p.RotateEvery == 0 {
			// Retire the thread-private log; the next append restarts it.
			w.begin("rotatelog")
			err := w.fsys.Delete(w.logPath())
			w.end()
			ops++
			if err != nil {
				return ops, fmt.Errorf("rotate: %w", err)
			}
		}
	}
	if p.DoStat {
		i := w.pick()
		w.begin("stat")
		err := w.fsys.Stat(p.fileName(i))
		w.end()
		ops++
		if err != nil {
			return ops, fmt.Errorf("stat: %w", err)
		}
	}
	w.iters++
	if p.FsyncEvery > 0 && w.iters%p.FsyncEvery == 0 {
		w.begin("fsync")
		err := w.fsys.Sync()
		w.end()
		ops++
		if err != nil {
			return ops, fmt.Errorf("fsync: %w", err)
		}
	}
	return ops, nil
}

// logPath is the worker's append-log target: the shared setup-created log,
// or a thread-private one (keyed by the worker's disjoint index range) for
// rotating profiles so concurrent rotations never race.
func (w *worker) logPath() string {
	if w.p.RotateEvery > 0 {
		return fmt.Sprintf("/bench/rotlog%06d", w.lo)
	}
	return "/bench/logfile"
}

func (w *worker) readWhole(path string) error {
	f, err := w.fsys.Open(path)
	if err != nil {
		return err
	}
	for {
		n, err := f.Read(w.buf)
		if err == io.EOF || (err == nil && n == 0) {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func (w *worker) appendLog() error {
	path := w.logPath()
	f, err := w.fsys.OpenAppend(path)
	if err != nil && w.p.RotateEvery > 0 {
		// First append of a fresh (or just-rotated) private log.
		f, err = w.fsys.Create(path)
	}
	if err != nil {
		return err
	}
	if _, err := f.Write(w.buf[:w.p.AppendSize]); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunKV executes the FlatFS-converted Webproxy (§7.3.2): create/write/close
// becomes put, open/read/close becomes get, delete becomes erase, and the
// log append becomes get/modify/put. Converted operations keep the op count
// of the file sequences they replace (a get counts as open+read+close),
// so throughput is comparable across interfaces — the same logical
// workload, fewer actual operations, which is exactly FlatFS's advantage.
func RunKV(kv KV, p Profile, opts RunOpts) (Result, error) {
	opts.defaults()
	type threadOut struct {
		ops     int64
		latencs []time.Duration
		iters   int64
		err     error
	}
	outs := make([]threadOut, opts.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for tIdx := 0; tIdx < opts.Threads; tIdx++ {
		wg.Add(1)
		go func(tIdx int) {
			defer wg.Done()
			out := &outs[tIdx]
			rng := rand.New(rand.NewSource(opts.Seed + int64(tIdx)*104729))
			lo := tIdx * p.NFiles / opts.Threads
			hi := (tIdx + 1) * p.NFiles / opts.Threads
			if hi <= lo {
				hi = lo + 1
			}
			buf := make([]byte, p.MeanFileSize*8)
			fillPattern(buf)
			readBuf := make([]byte, p.MeanFileSize*8)
			pick := func() int { return lo + rng.Intn(hi-lo) }
			for i := 0; i < opts.Iterations; i++ {
				t0 := time.Now()
				ops := int64(0)
				trace := func(name string, fn func() error) error {
					if opts.Tracer != nil {
						opts.Tracer.BeginOp(name)
						defer opts.Tracer.EndOp()
					}
					return fn()
				}
				// Gets (into a reused application buffer, §6.2).
				for r := 0; r < p.ReadsPerIter; r++ {
					k := p.key(pick())
					if err := trace("get", func() error {
						got, err := kv.Get(k, readBuf)
						if err == nil {
							readBuf = got[:cap(got)]
						}
						return err
					}); err != nil {
						out.err = err
						return
					}
					ops += 3 // replaces open/read/close
				}
				// Erase + put (create/delete converted); the key is
				// recreated so the working set stays stable.
				ki := pick()
				k := p.key(ki)
				if err := trace("erase", func() error { return kv.Erase(k) }); err != nil {
					out.err = err
					return
				}
				ops++
				if err := trace("put", func() error {
					return kv.Put(k, buf[:p.fileSize(ki)])
				}); err != nil {
					out.err = err
					return
				}
				ops += 3 // replaces create/write/close
				// Log append as get/modify/put.
				if err := trace("logappend", func() error {
					cur, err := kv.Get("bench-logfile", nil)
					if err != nil {
						return err
					}
					if len(cur) > 4*p.AppendSize {
						cur = cur[:0]
					}
					return kv.Put("bench-logfile", append(cur, buf[:p.AppendSize]...))
				}); err != nil {
					out.err = err
					return
				}
				ops += 3 // replaces open/append/close
				out.latencs = append(out.latencs, time.Since(t0))
				out.ops += ops
				out.iters++
			}
		}(tIdx)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{Profile: p.Name + "-flat", Threads: opts.Threads, Elapsed: elapsed}
	var perOp []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		res.Ops += outs[i].ops
		res.Iterations += outs[i].iters
		opsPerIter := outs[i].ops / max64(outs[i].iters, 1)
		for _, d := range outs[i].latencs {
			perOp = append(perOp, d/time.Duration(max64(opsPerIter, 1)))
		}
	}
	if res.Ops > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if len(perOp) > 0 {
		sort.Slice(perOp, func(i, j int) bool { return perOp[i] < perOp[j] })
		res.P95OpLatency = perOp[len(perOp)*95/100]
		var sum time.Duration
		for _, d := range perOp {
			sum += d
		}
		res.MeanOpLatency = sum / time.Duration(len(perOp))
	}
	return res, nil
}
