package filebench

import (
	"errors"
	"io"

	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// PXFSAdapter drives a PXFS client (calls go through libFS rather than
// system calls, as the paper's modified FileBench does).
type PXFSAdapter struct{ FS *pxfs.FS }

type pxfsFile struct{ f *pxfs.File }

func (p pxfsFile) Read(b []byte) (int, error) {
	n, err := p.f.Read(b)
	if errors.Is(err, io.EOF) {
		return n, io.EOF
	}
	return n, err
}
func (p pxfsFile) Write(b []byte) (int, error) { return p.f.Write(b) }
func (p pxfsFile) Close() error                { return p.f.Close() }

// Create implements FS.
func (a PXFSAdapter) Create(path string) (File, error) {
	f, err := a.FS.Create(path, 0644)
	if err != nil {
		return nil, err
	}
	return pxfsFile{f}, nil
}

// Open implements FS.
func (a PXFSAdapter) Open(path string) (File, error) {
	f, err := a.FS.Open(path, pxfs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	return pxfsFile{f}, nil
}

// OpenAppend implements FS.
func (a PXFSAdapter) OpenAppend(path string) (File, error) {
	f, err := a.FS.OpenFile(path, pxfs.O_RDWR|pxfs.O_APPEND, 0644)
	if err != nil {
		return nil, err
	}
	return pxfsFile{f}, nil
}

// Delete implements FS.
func (a PXFSAdapter) Delete(path string) error { return a.FS.Unlink(path) }

// Mkdir implements FS (idempotent: repeated Setup on a warm tree is fine).
func (a PXFSAdapter) Mkdir(path string) error {
	err := a.FS.Mkdir(path, 0755)
	if errors.Is(err, pxfs.ErrExist) {
		return nil
	}
	return err
}

// Stat implements FS.
func (a PXFSAdapter) Stat(path string) error {
	_, err := a.FS.Stat(path)
	return err
}

// Sync implements FS.
func (a PXFSAdapter) Sync() error { return a.FS.Sync() }

// VFSAdapter drives a kernel baseline (RamFS / ext3 / ext4) through the
// simulated system-call layer.
type VFSAdapter struct{ V *vfs.VFS }

type vfsFile struct {
	v  *vfs.VFS
	fd int
}

func (f vfsFile) Read(b []byte) (int, error) {
	n, err := f.v.Read(f.fd, b)
	if err == nil && n == 0 && len(b) > 0 {
		return 0, io.EOF
	}
	return n, err
}
func (f vfsFile) Write(b []byte) (int, error) { return f.v.Write(f.fd, b) }
func (f vfsFile) Close() error                { return f.v.Close(f.fd) }

// Create implements FS.
func (a VFSAdapter) Create(path string) (File, error) {
	fd, err := a.V.Open(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
	if err != nil {
		return nil, err
	}
	return vfsFile{a.V, fd}, nil
}

// Open implements FS.
func (a VFSAdapter) Open(path string) (File, error) {
	fd, err := a.V.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	return vfsFile{a.V, fd}, nil
}

// OpenAppend implements FS.
func (a VFSAdapter) OpenAppend(path string) (File, error) {
	fd, err := a.V.Open(path, vfs.O_RDWR|vfs.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	return vfsFile{a.V, fd}, nil
}

// Delete implements FS.
func (a VFSAdapter) Delete(path string) error { return a.V.Unlink(path) }

// Mkdir implements FS (idempotent).
func (a VFSAdapter) Mkdir(path string) error {
	err := a.V.Mkdir(path, 0755)
	if errors.Is(err, vfs.ErrExist) {
		return nil
	}
	return err
}

// Stat implements FS.
func (a VFSAdapter) Stat(path string) error {
	_, err := a.V.Stat(path)
	return err
}

// Sync implements FS.
func (a VFSAdapter) Sync() error { return a.V.Sync() }

// FlatKV adapts a FlatFS client to the KV interface.
type FlatKV struct{ FS *flatfs.FS }

// Put implements KV.
func (a FlatKV) Put(key string, val []byte) error { return a.FS.Put(key, val) }

// Get implements KV.
func (a FlatKV) Get(key string, buf []byte) ([]byte, error) { return a.FS.GetInto(key, buf) }

// Erase implements KV.
func (a FlatKV) Erase(key string) error { return a.FS.Erase(key) }
