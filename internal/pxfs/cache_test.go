package pxfs

import (
	"fmt"
	"testing"

	"github.com/aerie-fs/aerie/internal/sobj"
)

// TestNameCacheBoundedEviction checks that hitting the cache limit evicts a
// bounded batch rather than dropping the whole map: the cache stays close
// to full under a steady stream of new names.
func TestNameCacheBoundedEviction(t *testing.T) {
	const limit = 16
	fs, _ := newFS(t, Options{NameCache: true, CacheLimit: limit})
	oid := mustOID(t)
	for i := 0; i < 100; i++ {
		fs.cacheAdd(fmt.Sprintf("/f%03d", i), oid)
	}
	fs.mu.Lock()
	n := len(fs.nameCache)
	fs.mu.Unlock()
	if n > limit {
		t.Fatalf("cache size %d exceeds limit %d", n, limit)
	}
	// Batch eviction removes limit/8 entries per overflow, so the cache
	// never dips below limit - limit/8 - 1 entries.
	if n < limit-limit/8-1 {
		t.Fatalf("cache size %d: wholesale eviction?", n)
	}
	if fs.CacheEvicted == 0 {
		t.Fatal("expected evictions")
	}
}

func mustOID(t *testing.T) sobj.OID {
	t.Helper()
	oid, err := sobj.MakeOID(1<<20, sobj.TypeMFile)
	if err != nil {
		t.Fatal(err)
	}
	return oid
}
