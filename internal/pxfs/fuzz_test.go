package pxfs

import (
	"strings"
	"testing"

	"github.com/aerie-fs/aerie/internal/sobj"
)

// FuzzSplitPath feeds arbitrary strings to the path normalizer that fronts
// every PXFS name lookup. Accepted paths must produce only clean components
// (non-empty, no "." or "..", within the key-length cap), the abs flag must
// match a leading "/", and normalization must be idempotent: re-splitting
// the joined result yields the same components.
func FuzzSplitPath(f *testing.F) {
	f.Add("/a/b/c")
	f.Add("a//b/./c/")
	f.Add("/")
	f.Add("../escape")
	f.Add("/a/../b")
	f.Add(strings.Repeat("x", sobj.MaxKeyLen+1))
	f.Add("/mnt/\x00weird\xff/name")
	f.Fuzz(func(t *testing.T, path string) {
		parts, abs, err := splitPath(path)
		if err != nil {
			return
		}
		if abs != strings.HasPrefix(path, "/") {
			t.Fatalf("abs=%v for %q", abs, path)
		}
		for _, p := range parts {
			if p == "" || p == "." || p == ".." {
				t.Fatalf("dirty component %q survived in %q", p, path)
			}
			if len(p) > sobj.MaxKeyLen {
				t.Fatalf("over-long component (%d bytes) survived in %q", len(p), path)
			}
			if strings.Contains(p, "/") {
				t.Fatalf("separator survived in component %q", p)
			}
		}
		rejoined := "/" + strings.Join(parts, "/")
		parts2, abs2, err := splitPath(rejoined)
		if err != nil || !abs2 {
			t.Fatalf("re-split of %q failed: %v abs=%v", rejoined, err, abs2)
		}
		if len(parts2) != len(parts) {
			t.Fatalf("normalization not idempotent for %q: %v vs %v", path, parts, parts2)
		}
		for i := range parts {
			if parts[i] != parts2[i] {
				t.Fatalf("component %d changed on re-split: %q vs %q", i, parts[i], parts2[i])
			}
		}
	})
}
