package pxfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
)

func newFS(t *testing.T, opts Options) (*FS, *core.System) {
	t.Helper()
	sys, err := core.New(core.Options{
		ArenaSize:      64 << 20,
		Lease:          time.Second,
		AcquireTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newClient(t, sys, 1000, opts), sys
}

func newClient(t *testing.T, sys *core.System, uid uint32, opts Options) *FS {
	t.Helper()
	s, err := sys.NewSession(libfs.Config{UID: uid, BatchLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return New(s, opts)
}

func writeFile(t *testing.T, fs *FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path, 0644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, fs *FS, path string) []byte {
	t.Helper()
	f, err := fs.Open(path, O_RDONLY)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var buf bytes.Buffer
	tmp := make([]byte, 8192)
	for {
		n, err := f.Read(tmp)
		buf.Write(tmp[:n])
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
	}
	return buf.Bytes()
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true})
	data := bytes.Repeat([]byte("hello scm "), 1000)
	writeFile(t, fs, "/f.txt", data)
	if got := readFile(t, fs, "/f.txt"); !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %d vs %d bytes", len(got), len(data))
	}
}

func TestMkdirHierarchyAndReadDir(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true})
	if err := fs.Mkdir("/a", 0755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "/a/b/deep.txt", []byte("deep"))
	writeFile(t, fs, "/a/top.txt", []byte("top"))
	ents, err := fs.ReadDir("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "b" || ents[1].Name != "top.txt" {
		t.Fatalf("readdir = %+v", ents)
	}
	if !ents[0].IsDir || ents[1].IsDir {
		t.Fatal("IsDir flags wrong")
	}
	if got := readFile(t, fs, "/a/b/deep.txt"); string(got) != "deep" {
		t.Fatalf("deep read = %q", got)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs, _ := newFS(t, Options{})
	if err := fs.Mkdir("/a", 0755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a", 0755); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir("/missing/b", 0755); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mkdir under missing: %v", err)
	}
	writeFile(t, fs, "/file", []byte("x"))
	if err := fs.Mkdir("/file/sub", 0755); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mkdir under file: %v", err)
	}
}

func TestUnlinkAndErrors(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/f", []byte("x"))
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/f", O_RDONLY); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open after unlink: %v", err)
	}
	if err := fs.Unlink("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double unlink: %v", err)
	}
	if err := fs.Mkdir("/d", 0755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	fs, _ := newFS(t, Options{})
	if err := fs.Mkdir("/d", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "/d/f", []byte("x"))
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after rmdir: %v", err)
	}
}

func TestRenameWithinAndAcrossDirs(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true})
	_ = fs.Mkdir("/src", 0755)
	_ = fs.Mkdir("/dst", 0755)
	writeFile(t, fs, "/src/f", []byte("payload"))
	if err := fs.Rename("/src/f", "/src/g"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/src/g"); string(got) != "payload" {
		t.Fatalf("after same-dir rename: %q", got)
	}
	if err := fs.Rename("/src/g", "/dst/h"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/dst/h"); string(got) != "payload" {
		t.Fatalf("after cross-dir rename: %q", got)
	}
	if _, err := fs.Stat("/src/g"); !errors.Is(err, ErrNotExist) {
		t.Fatal("source survived rename")
	}
	// Overwriting rename.
	writeFile(t, fs, "/dst/victim", []byte("old"))
	if err := fs.Rename("/dst/h", "/dst/victim"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/dst/victim"); string(got) != "payload" {
		t.Fatalf("after overwrite rename: %q", got)
	}
}

func TestStatFields(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/s", bytes.Repeat([]byte("a"), 12345))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/s")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 12345 || fi.IsDir || fi.Mode != 0644 || fi.Links != 1 {
		t.Fatalf("stat = %+v", fi)
	}
	di, err := fs.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if !di.IsDir {
		t.Fatal("root not a dir")
	}
}

func TestSeekAppendTruncate(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/f", []byte("0123456789"))
	f, err := fs.OpenFile("/f", O_RDWR|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 13)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123456789abc" {
		t.Fatalf("append result %q", buf)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 4 {
		t.Fatalf("size after truncate = %d", size)
	}
	_ = f.Close()
	if got := readFile(t, fs, "/f"); string(got) != "0123" {
		t.Fatalf("after truncate: %q", got)
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	fs, _ := newFS(t, Options{})
	f, err := fs.Create("/sparse", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("end"), 100000); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	got := readFile(t, fs, "/sparse")
	if len(got) != 100003 {
		t.Fatalf("sparse size = %d", len(got))
	}
	for i := 0; i < 100000; i += 4096 {
		if got[i] != 0 {
			t.Fatalf("hole at %d = %d", i, got[i])
		}
	}
	if string(got[100000:]) != "end" {
		t.Fatal("tail wrong")
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	fs, _ := newFS(t, Options{})
	if _, err := fs.Open("/nope", O_RDONLY); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestWriteToReadOnlyHandle(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/f", []byte("x"))
	f, err := fs.Open("/f", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on rdonly: %v", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/locked", []byte("x"))
	if err := fs.Chmod("/locked", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/locked", O_RDONLY); !errors.Is(err, ErrPerm) {
		t.Fatalf("open no-perm file: %v", err)
	}
	if err := fs.Chmod("/locked", 0444, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/locked", O_RDWR); !errors.Is(err, ErrPerm) {
		t.Fatalf("write-open ro file: %v", err)
	}
	f, err := fs.Open("/locked", O_RDONLY)
	if err != nil {
		t.Fatalf("read-open ro file: %v", err)
	}
	_ = f.Close()
}

func TestUnlinkWhileOpenKeepsData(t *testing.T) {
	fs, _ := newFS(t, Options{})
	writeFile(t, fs, "/ghost", []byte("still here"))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/ghost", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/ghost"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Name gone, contents alive through the open handle (§6.1).
	if _, err := fs.Stat("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatal("name survived unlink")
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("read after unlink: %v", err)
	}
	if string(buf) != "still here" {
		t.Fatalf("contents after unlink: %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoClientsShareThroughPXFS(t *testing.T) {
	fs1, sys := newFS(t, Options{NameCache: true})
	fs2 := newClient(t, sys, 1001, Options{NameCache: true})
	writeFile(t, fs1, "/shared.txt", []byte("from client 1"))
	// Client 2's open triggers revocation of client 1's cached locks,
	// shipping the metadata (§4.3).
	if got := readFile(t, fs2, "/shared.txt"); string(got) != "from client 1" {
		t.Fatalf("client2 read %q", got)
	}
	// Client 2 modifies; client 1 observes.
	f, err := fs2.OpenFile("/shared.txt", O_RDWR|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" + client 2")); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if got := readFile(t, fs1, "/shared.txt"); string(got) != "from client 1 + client 2" {
		t.Fatalf("client1 reread %q", got)
	}
}

func TestNameCacheHitsAndRevocationFlush(t *testing.T) {
	fs1, sys := newFS(t, Options{NameCache: true})
	_ = fs1.Mkdir("/deep", 0755)
	_ = fs1.Mkdir("/deep/deeper", 0755)
	writeFile(t, fs1, "/deep/deeper/leaf", []byte("x"))
	for i := 0; i < 5; i++ {
		_, _ = fs1.Stat("/deep/deeper/leaf")
	}
	if fs1.CacheHits == 0 {
		t.Fatal("no name-cache hits")
	}
	// Another client's conflicting access revokes locks and must flush
	// the cache.
	fs2 := newClient(t, sys, 1001, Options{})
	writeFile(t, fs2, "/deep/deeper/other", []byte("y"))
	_, _ = fs1.Stat("/deep/deeper/leaf")
	if fs1.CacheFlush == 0 {
		t.Fatal("cache never flushed on revocation")
	}
}

func TestRelativePathsAndChdir(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true})
	_ = fs.Mkdir("/wd", 0755)
	if err := fs.Chdir("/wd"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "rel.txt", []byte("relative"))
	if got := readFile(t, fs, "/wd/rel.txt"); string(got) != "relative" {
		t.Fatalf("relative create: %q", got)
	}
	if got := readFile(t, fs, "rel.txt"); string(got) != "relative" {
		t.Fatalf("relative open: %q", got)
	}
}

func TestManySmallFiles(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true})
	const n = 300
	for i := 0; i < n; i++ {
		writeFile(t, fs, fmt.Sprintf("/file-%03d", i), []byte(fmt.Sprintf("content %d", i)))
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("root has %d entries, want %d", len(ents), n)
	}
	for i := 0; i < n; i += 37 {
		want := fmt.Sprintf("content %d", i)
		if got := readFile(t, fs, fmt.Sprintf("/file-%03d", i)); string(got) != want {
			t.Fatalf("file %d = %q", i, got)
		}
	}
}

func TestLargeFileMultiBlock(t *testing.T) {
	fs, _ := newFS(t, Options{})
	data := make([]byte, 3*1024*1024) // 3 MiB spans many extents, depth 2 radix
	for i := range data {
		data[i] = byte(i * 7)
	}
	writeFile(t, fs, "/big", data)
	if got := readFile(t, fs, "/big"); !bytes.Equal(got, data) {
		t.Fatal("large file round trip failed")
	}
}

func TestLargeExtentOption(t *testing.T) {
	fs, _ := newFS(t, Options{NameCache: true, ExtentLog: 16}) // 64 KB extents
	data := make([]byte, 300*1024)
	for i := range data {
		data[i] = byte(i * 11)
	}
	writeFile(t, fs, "/big-extents", data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/big-extents"); !bytes.Equal(got, data) {
		t.Fatal("round trip with 64KB extents failed")
	}
	// Sparse behavior still holds with large extents.
	f, err := fs.Create("/sparse64", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 200000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 70000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("hole not zero with large extents")
	}
	_ = f.Close()
}

// TestTruncateThenWriteThenSync is a regression test for a batched-update
// ordering bug: a staged truncate used to zero the kept block's tail when
// the TFS applied the batch, destroying bytes that a later write in the
// same batch had already put there in place. Found by the differential
// conformance suite (internal/conformance).
func TestTruncateThenWriteThenSync(t *testing.T) {
	fs, _ := newFS(t, Options{})
	data := make([]byte, 6455)
	for i := range data {
		data[i] = byte(i)
	}
	writeFile(t, fs, "/t.bin", data)

	f, err := fs.OpenFile("/t.bin", O_RDWR, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(741); err != nil {
		t.Fatal(err)
	}
	over := bytes.Repeat([]byte{0xAA}, 597)
	if _, err := f.WriteAt(over, 398); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	got := readFile(t, fs, "/t.bin")
	want := make([]byte, 995)
	copy(want, data[:741])
	copy(want[398:], over)
	if !bytes.Equal(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("content diverged at byte %d after sync: got %#02x want %#02x", i, got[i], want[i])
			}
		}
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
}

// TestTruncateGrowExposesZeros pins POSIX grow semantics across a sync:
// shrinking then extending must expose zeros between the old and new EOF.
func TestTruncateGrowExposesZeros(t *testing.T) {
	fs, _ := newFS(t, Options{})
	data := bytes.Repeat([]byte{0xEE}, 5000)
	writeFile(t, fs, "/g.bin", data)
	f, err := fs.OpenFile("/g.bin", O_RDWR, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err = fs.OpenFile("/g.bin", O_RDWR, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(3000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, fs, "/g.bin")
	want := make([]byte, 3000)
	copy(want, data[:100])
	if !bytes.Equal(got, want) {
		t.Fatal("grow after shrink exposed stale bytes")
	}
}
