package pxfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
)

// TestRandomizedWorkloadCrashRecoveryFsck drives a randomized POSIX workload,
// syncs part of it, crashes the machine, and verifies the recovered volume:
// every synced file is intact with its exact contents, the namespace is
// readable, fsck finds no corruption, and leaked storage (if any) is
// reclaimed. This is the whole-stack crash-consistency property: journal,
// shadow updates, allocation bitmap, and namespace recovery working
// together.
func TestRandomizedWorkloadCrashRecoveryFsck(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sys, err := core.New(core.Options{
				ArenaSize:        96 << 20,
				TrackPersistence: true,
				Lease:            time.Second,
				AcquireTimeout:   10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			fs := New(sess, Options{NameCache: true})
			rng := rand.New(rand.NewSource(seed))

			// Synced state we expect to survive: path -> contents.
			durable := map[string][]byte{}
			if err := fs.Mkdir("/d", 0755); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 120; step++ {
				name := fmt.Sprintf("/d/f%02d", rng.Intn(30))
				switch rng.Intn(4) {
				case 0, 1: // create/overwrite
					data := make([]byte, rng.Intn(30000)+1)
					rng.Read(data)
					f, err := fs.Create(name, 0644)
					if err != nil {
						t.Fatalf("step %d create: %v", step, err)
					}
					if _, err := f.Write(data); err != nil {
						t.Fatal(err)
					}
					if err := f.Close(); err != nil {
						t.Fatal(err)
					}
					durable[name] = data // provisional; real on next sync
				case 2: // delete
					err := fs.Unlink(name)
					if err != nil && !errors.Is(err, ErrNotExist) {
						t.Fatalf("step %d unlink: %v", step, err)
					}
					delete(durable, name)
				case 3: // rename within the directory
					dst := fmt.Sprintf("/d/f%02d", rng.Intn(30))
					if dst == name {
						continue
					}
					err := fs.Rename(name, dst)
					if errors.Is(err, ErrNotExist) {
						continue
					}
					if err != nil {
						t.Fatalf("step %d rename: %v", step, err)
					}
					durable[dst] = durable[name]
					delete(durable, name)
				}
			}
			// Ship everything accumulated so far; this is the durable
			// cut line.
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
			synced := map[string][]byte{}
			for k, v := range durable {
				synced[k] = v
			}
			// More unsynced churn that the crash must discard without
			// corrupting anything.
			for i := 0; i < 20; i++ {
				f, err := fs.Create(fmt.Sprintf("/d/unsynced%02d", i), 0644)
				if err != nil {
					t.Fatal(err)
				}
				_, _ = f.Write(bytes.Repeat([]byte{9}, 5000))
				_ = f.Close()
			}

			if err := sys.CrashAndRecover(); err != nil {
				t.Fatalf("recovery: %v", err)
			}
			// Fsck must pass, reclaiming anything the crash orphaned.
			rep, err := sys.TFS.Fsck(true)
			if err != nil {
				t.Fatalf("fsck: %v", err)
			}
			if rep.LeakedBlocks != rep.RepairedBlocks {
				t.Fatalf("fsck left leaks: %v", rep)
			}

			// A fresh client verifies every synced file byte-for-byte.
			sess2, err := sys.NewSession(libfs.Config{UID: 1001})
			if err != nil {
				t.Fatal(err)
			}
			defer sess2.Close()
			fs2 := New(sess2, Options{})
			for name, want := range synced {
				f, err := fs2.Open(name, O_RDONLY)
				if err != nil {
					t.Fatalf("synced file %s lost: %v", name, err)
				}
				got := make([]byte, len(want))
				if _, err := f.ReadAt(got, 0); err != nil && err.Error() != "EOF" {
					t.Fatalf("read %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("synced file %s corrupted after crash", name)
				}
				size, _ := f.Size()
				if size != uint64(len(want)) {
					t.Fatalf("%s size %d, want %d", name, size, len(want))
				}
				_ = f.Close()
			}
			// Namespace has exactly the synced files (no phantoms from
			// the unsynced churn).
			ents, err := fs2.ReadDir("/d")
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != len(synced) {
				t.Fatalf("directory has %d entries after crash, want %d", len(ents), len(synced))
			}
			// And the recovered volume keeps working.
			f, err := fs2.Create("/d/post-crash", 0644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("alive")); err != nil {
				t.Fatal(err)
			}
			_ = f.Close()
			if err := fs2.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
