// Package pxfs implements PXFS (§6.1): a POSIX-style file-system interface
// built entirely in the untrusted libFS library on Aerie's storage objects.
// Files are mFiles with page-sized extents, directories are collections
// organized into a tree under the volume root, and a per-client in-memory
// path-name cache accelerates absolute-path resolution (flushed whenever a
// global lock leaves the client, §6.1's conservative consistency rule).
//
// Locking protocol. Every object is protected by its own lock (its OID).
// Path resolution takes read locks on each directory collection; namespace
// modifications upgrade the affected directory to a write lock; an open
// file holds its mFile's lock (read or write) until close. Rename takes
// both directory locks in OID order to avoid deadlocks. The clerk caches
// grants, so repeated access by one process stays local.
//
// Unlink-while-open follows the paper: a client notifies the TFS that a
// file is open when it would otherwise lose track of it (on unlink, and
// when a lock revocation ships its state away); the TFS keeps the storage
// until the last registered close.
package pxfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/shard"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Open flags (a subset of POSIX).
const (
	O_RDONLY = 0x0
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Errors.
var (
	ErrNotExist  = errors.New("pxfs: no such file or directory")
	ErrExist     = errors.New("pxfs: file exists")
	ErrNotDir    = errors.New("pxfs: not a directory")
	ErrIsDir     = errors.New("pxfs: is a directory")
	ErrNotEmpty  = errors.New("pxfs: directory not empty")
	ErrPerm      = errors.New("pxfs: permission denied")
	ErrBadPath   = errors.New("pxfs: bad path")
	ErrReadOnly  = errors.New("pxfs: file not open for writing")
	ErrClosed    = errors.New("pxfs: file closed")
	ErrCrossesFS = errors.New("pxfs: rename across file systems")
)

// Options tunes a PXFS instance.
type Options struct {
	// NameCache enables the per-client absolute-path cache (§7.3.1).
	// PXFS-NNC in the paper's tables is this flag turned off.
	NameCache bool
	// CacheLimit bounds the name cache (default 65536 entries).
	CacheLimit int
	// ExtentLog is log2 of the data-extent size for new files (default
	// 12, the paper's page-sized extents). The paper observes that an
	// extent layout like ext4's would improve PXFS's large writes
	// (§7.2.2); larger extents are that optimization — fewer attach
	// operations and radix levels per megabyte, at the cost of internal
	// fragmentation for small files.
	ExtentLog uint32
}

// FS is a PXFS client instance over a libFS session.
type FS struct {
	s    *libfs.Session
	opts Options

	mu        sync.Mutex
	nameCache map[string]sobj.OID
	open      map[sobj.OID]*openEntry
	cwd       sobj.OID
	cwdPath   string

	// Stats.
	CacheHits    int64
	CacheMisses  int64
	CacheFlush   int64
	CacheEvicted int64

	// Metrics resolved once in New from the session's sink; all nil (free
	// no-ops) when observability is off. obsOp aggregates every operation;
	// the per-op histograms split it for the breakdown tables.
	obsSink     *obs.Sink
	obsOp       *obs.Histogram
	obsOpen     *obs.Histogram
	obsClose    *obs.Histogram
	obsRead     *obs.Histogram
	obsWrite    *obs.Histogram
	obsTruncate *obs.Histogram
	obsMkdir    *obs.Histogram
	obsRmdir    *obs.Histogram
	obsUnlink   *obs.Histogram
	obsRename   *obs.Histogram
	obsStat     *obs.Histogram
	obsReadDir  *obs.Histogram
	obsChmod    *obs.Histogram
	obsSync     *obs.Histogram
}

type openEntry struct {
	count    int
	notified bool // TFS knows this file is open
}

// New creates a PXFS view over session s.
func New(s *libfs.Session, opts Options) *FS {
	if opts.CacheLimit == 0 {
		opts.CacheLimit = 65536
	}
	if opts.ExtentLog == 0 {
		opts.ExtentLog = sobj.DefaultExtentLog
	}
	fs := &FS{
		s:         s,
		opts:      opts,
		nameCache: make(map[string]sobj.OID),
		open:      make(map[sobj.OID]*openEntry),
		cwd:       s.Root,
		cwdPath:   "/",
	}
	sink := s.Obs()
	fs.obsSink = sink
	fs.obsOp = sink.Histogram("pxfs.op")
	fs.obsOpen = sink.Histogram("pxfs.op.open")
	fs.obsClose = sink.Histogram("pxfs.op.close")
	fs.obsRead = sink.Histogram("pxfs.op.read")
	fs.obsWrite = sink.Histogram("pxfs.op.write")
	fs.obsTruncate = sink.Histogram("pxfs.op.truncate")
	fs.obsMkdir = sink.Histogram("pxfs.op.mkdir")
	fs.obsRmdir = sink.Histogram("pxfs.op.rmdir")
	fs.obsUnlink = sink.Histogram("pxfs.op.unlink")
	fs.obsRename = sink.Histogram("pxfs.op.rename")
	fs.obsStat = sink.Histogram("pxfs.op.stat")
	fs.obsReadDir = sink.Histogram("pxfs.op.readdir")
	fs.obsChmod = sink.Histogram("pxfs.op.chmod")
	fs.obsSync = sink.Histogram("pxfs.op.sync")
	// The cache is flushed whenever the client releases a global lock or
	// the TFS revokes one (§6.1), and whenever a batch is rejected and
	// discarded: entries resolved through the discarded creates point at
	// staged extents that just went back into the pool.
	s.AddReleaseHook(func(uint64) { fs.flushNameCache() })
	s.AddDiscardHook(fs.flushNameCache)
	return fs
}

// Session returns the underlying libFS session.
func (fs *FS) Session() *libfs.Session { return fs.s }

// observe records one completed operation: its duration lands in the per-op
// histogram, the pxfs.op aggregate, and the trace ring. Use as
//
//	defer fs.observe("mkdir", fs.obsMkdir, fs.obsOp.StartTimer())
//
// — the timer argument is evaluated at the defer statement, the body at
// return. With observability off the timer is the zero Time and the whole
// call is one branch.
func (fs *FS) observe(op string, h *obs.Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	d := time.Since(t0)
	h.Observe(int64(d))
	fs.obsOp.Observe(int64(d))
	fs.obsSink.Trace("pxfs", op, t0, d)
}

func (fs *FS) flushNameCache() {
	fs.mu.Lock()
	if len(fs.nameCache) > 0 {
		fs.nameCache = make(map[string]sobj.OID)
		fs.CacheFlush++
	}
	fs.mu.Unlock()
}

// splitPath normalizes a path into components. Returns whether it was
// absolute.
func splitPath(path string) ([]string, bool, error) {
	if path == "" {
		return nil, false, fmt.Errorf("%w: empty", ErrBadPath)
	}
	abs := strings.HasPrefix(path, "/")
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			return nil, false, fmt.Errorf("%w: %q ('..' unsupported)", ErrBadPath, path)
		default:
			if len(p) > sobj.MaxKeyLen {
				return nil, false, fmt.Errorf("%w: component too long", ErrBadPath)
			}
			out = append(out, p)
		}
	}
	return out, abs, nil
}

// resolveDir walks to the directory containing the last component of path,
// returning (dir, leaf name). Read locks are taken (and locally released)
// on each directory walked; resolution checks traverse permission on every
// component (§6.1: permission checks on the entire path).
func (fs *FS) resolveDir(path string) (sobj.OID, string, error) {
	parts, abs, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("%w: %q names the root", ErrBadPath, path)
	}
	dirParts := parts[:len(parts)-1]
	leaf := parts[len(parts)-1]
	dir, err := fs.walk(abs, dirParts, path[:strings.LastIndex(path, leaf)])
	if err != nil {
		return 0, "", err
	}
	if dir.Type() != sobj.TypeCollection {
		return 0, "", fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	return dir, leaf, nil
}

// walk resolves a directory chain. prefix is the absolute-path prefix used
// for name-cache keys (ignored for relative paths, which the paper's cache
// skips).
func (fs *FS) walk(abs bool, parts []string, prefix string) (sobj.OID, error) {
	start := fs.cwd
	if abs {
		start = fs.s.Root
	}
	useCache := fs.opts.NameCache && abs
	if useCache && len(parts) > 0 {
		key := "/" + strings.Join(parts, "/")
		fs.mu.Lock()
		oid, ok := fs.nameCache[key]
		fs.mu.Unlock()
		if ok {
			fs.CacheHits++
			return oid, nil
		}
		fs.CacheMisses++
	}
	cur := start
	for i, name := range parts {
		if cur.Type() != sobj.TypeCollection {
			return 0, fmt.Errorf("%w: %q", ErrNotDir, name)
		}
		if err := fs.checkPerm(cur, permTraverse); err != nil {
			return 0, err
		}
		if err := fs.s.Clerk.Acquire(cur.Lock(), lockservice.S, false); err != nil {
			return 0, err
		}
		next, found, err := fs.s.DirLookup(cur, []byte(name))
		fs.s.Clerk.Release(cur.Lock(), lockservice.S)
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, fmt.Errorf("%w: %q", ErrNotExist, name)
		}
		cur = next
		if useCache {
			key := "/" + strings.Join(parts[:i+1], "/")
			fs.cacheAdd(key, cur)
		}
	}
	return cur, nil
}

func (fs *FS) cacheAdd(key string, oid sobj.OID) {
	fs.mu.Lock()
	if len(fs.nameCache) >= fs.opts.CacheLimit {
		// Evict a bounded batch (1/8 of the limit, at least one) instead of
		// the whole map, so a warm workload keeps most of its hit rate when
		// the cache reaches the limit. Go's random map iteration order makes
		// this random eviction.
		evict := fs.opts.CacheLimit / 8
		if evict < 1 {
			evict = 1
		}
		for k := range fs.nameCache {
			delete(fs.nameCache, k)
			fs.CacheEvicted++
			evict--
			if evict == 0 {
				break
			}
		}
	}
	fs.nameCache[key] = oid
	fs.mu.Unlock()
}

func (fs *FS) cacheDrop(key string) {
	fs.mu.Lock()
	delete(fs.nameCache, key)
	fs.mu.Unlock()
}

// resolve resolves a full path to an object.
func (fs *FS) resolve(path string) (sobj.OID, error) {
	parts, abs, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	if len(parts) == 0 {
		if abs {
			return fs.s.Root, nil
		}
		return fs.cwd, nil
	}
	return fs.walk(abs, parts, path)
}

// Permission checks against the FS-level mode bits (simplified: any read
// bit grants read/traverse, any write bit grants write).
const (
	permRead = 1 << iota
	permWrite
	permTraverse
)

func (fs *FS) checkPerm(oid sobj.OID, want int) error {
	// Raw header read: our own windowed chmod/chown may be mid-apply.
	fs.s.ReadBarrier()
	h, err := sobj.ReadHeader(fs.s.Mem, oid)
	if err != nil {
		return err
	}
	mode := h.Perm
	if want&permRead != 0 && mode&0444 == 0 {
		return fmt.Errorf("%w: read %v", ErrPerm, oid)
	}
	if want&permWrite != 0 && mode&0222 == 0 {
		return fmt.Errorf("%w: write %v", ErrPerm, oid)
	}
	if want&permTraverse != 0 && mode&0555 == 0 {
		return fmt.Errorf("%w: traverse %v", ErrPerm, oid)
	}
	return nil
}

// Chdir changes the working directory for relative paths.
func (fs *FS) Chdir(path string) error {
	oid, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if oid.Type() != sobj.TypeCollection {
		return ErrNotDir
	}
	fs.mu.Lock()
	fs.cwd = oid
	fs.cwdPath = path
	fs.mu.Unlock()
	return nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string, perm uint32) error {
	defer fs.observe("mkdir", fs.obsMkdir, fs.obsOp.StartTimer())
	dir, leaf, err := fs.resolveDir(path)
	if err != nil {
		return err
	}
	lock := dir.Lock()
	if err := fs.s.Clerk.Acquire(lock, lockservice.X, false); err != nil {
		return err
	}
	defer fs.s.Clerk.Release(lock, lockservice.X)
	if err := fs.checkPerm(dir, permWrite); err != nil {
		return err
	}
	if _, found, err := fs.s.DirLookup(dir, []byte(leaf)); err != nil {
		return err
	} else if found {
		return fmt.Errorf("%w: %q", ErrExist, path)
	}
	// Placement: the new directory's shard is a pure function of its
	// (parent, name) identity, so concurrent clients agree without
	// coordination; the insert into a foreign parent rides the cross-shard
	// transaction path.
	child, err := fs.s.CreateCollectionStagedOn(shard.Dir(uint64(dir), []byte(leaf), fs.s.Shards()), perm)
	if err != nil {
		return err
	}
	return fs.s.DirInsert(dir, []byte(leaf), child, lock)
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	defer fs.observe("rmdir", fs.obsRmdir, fs.obsOp.StartTimer())
	dir, leaf, err := fs.resolveDir(path)
	if err != nil {
		return err
	}
	lock := dir.Lock()
	if err := fs.s.Clerk.Acquire(lock, lockservice.X, false); err != nil {
		return err
	}
	defer fs.s.Clerk.Release(lock, lockservice.X)
	child, found, err := fs.s.DirLookup(dir, []byte(leaf))
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if child.Type() != sobj.TypeCollection {
		return ErrNotDir
	}
	empty := true
	if err := fs.s.DirIterate(child, func([]byte, sobj.OID) error {
		empty = false
		return errStopIter
	}); err != nil && !errors.Is(err, errStopIter) {
		return err
	}
	if !empty {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	fs.cacheDrop(cleanAbs(path))
	return fs.s.DirRemove(dir, []byte(leaf), lock, child)
}

var errStopIter = errors.New("stop")

func cleanAbs(path string) string {
	parts, _, err := splitPath(path)
	if err != nil {
		return path
	}
	return "/" + strings.Join(parts, "/")
}

// Unlink removes a file. Files open in this client survive via the TFS
// open-file table (§6.1).
func (fs *FS) Unlink(path string) error {
	defer fs.observe("unlink", fs.obsUnlink, fs.obsOp.StartTimer())
	dir, leaf, err := fs.resolveDir(path)
	if err != nil {
		return err
	}
	lock := dir.Lock()
	if err := fs.s.Clerk.Acquire(lock, lockservice.X, false); err != nil {
		return err
	}
	defer fs.s.Clerk.Release(lock, lockservice.X)
	if err := fs.checkPerm(dir, permWrite); err != nil {
		return err
	}
	child, found, err := fs.s.DirLookup(dir, []byte(leaf))
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if child.Type() == sobj.TypeCollection {
		return ErrIsDir
	}
	// If this client has the file open, register it with the TFS so the
	// storage outlives the unlink until the last close.
	fs.mu.Lock()
	oe := fs.open[child]
	if oe != nil && !oe.notified {
		oe.notified = true
		fs.mu.Unlock()
		if err := fs.s.NotifyOpen(child); err != nil {
			return err
		}
	} else {
		fs.mu.Unlock()
	}
	fs.cacheDrop(cleanAbs(path))
	return fs.s.DirRemove(dir, []byte(leaf), lock, child)
}

// Rename atomically moves src to dst, overwriting an existing destination
// file (§6.1: write locks on both directory collections, acquired in a
// fixed order to avoid deadlock).
func (fs *FS) Rename(src, dst string) error {
	defer fs.observe("rename", fs.obsRename, fs.obsOp.StartTimer())
	sdir, sleaf, err := fs.resolveDir(src)
	if err != nil {
		return err
	}
	ddir, dleaf, err := fs.resolveDir(dst)
	if err != nil {
		return err
	}
	locks := []uint64{sdir.Lock(), ddir.Lock()}
	if locks[0] > locks[1] {
		locks[0], locks[1] = locks[1], locks[0]
	}
	if err := fs.s.Clerk.Acquire(locks[0], lockservice.X, false); err != nil {
		return err
	}
	defer fs.s.Clerk.Release(locks[0], lockservice.X)
	if locks[1] != locks[0] {
		if err := fs.s.Clerk.Acquire(locks[1], lockservice.X, false); err != nil {
			return err
		}
		defer fs.s.Clerk.Release(locks[1], lockservice.X)
	}
	child, found, err := fs.s.DirLookup(sdir, []byte(sleaf))
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrNotExist, src)
	}
	// An overwritten destination entry is torn down on its own shard; name
	// it so the router can tell when the rename must go cross-shard.
	var involved []sobj.OID
	if victim, vFound, err := fs.s.DirLookup(ddir, []byte(dleaf)); err != nil {
		return err
	} else if vFound {
		involved = append(involved, victim)
	}
	fs.cacheDrop(cleanAbs(src))
	fs.cacheDrop(cleanAbs(dst))
	return fs.s.DirRename(sdir, []byte(sleaf), ddir, []byte(dleaf), child, sdir.Lock(), ddir.Lock(), involved...)
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  uint64
	Mode  uint32
	IsDir bool
	Links uint32
	MTime time.Time
	OID   sobj.OID
}

// Stat returns metadata for path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	defer fs.observe("stat", fs.obsStat, fs.obsOp.StartTimer())
	oid, err := fs.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	return fs.statOID(oid, baseName(path))
}

func baseName(path string) string {
	parts, _, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

func (fs *FS) statOID(oid sobj.OID, name string) (FileInfo, error) {
	fs.s.ReadBarrier() // raw header read, see checkPerm
	h, err := sobj.ReadHeader(fs.s.Mem, oid)
	if err != nil {
		return FileInfo{}, err
	}
	fi := FileInfo{
		Name:  name,
		Mode:  h.Perm,
		IsDir: oid.Type() == sobj.TypeCollection,
		Links: h.Refcnt,
		MTime: time.Unix(0, int64(h.Attrs)),
		OID:   oid,
	}
	if !fi.IsDir {
		size, err := fs.s.FileSize(oid)
		if err != nil {
			return FileInfo{}, err
		}
		fi.Size = size
	}
	return fi, nil
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	OID   sobj.OID
	IsDir bool
}

// ReadDir lists a directory, sorted by name.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	defer fs.observe("readdir", fs.obsReadDir, fs.obsOp.StartTimer())
	oid, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if oid.Type() != sobj.TypeCollection {
		return nil, ErrNotDir
	}
	if err := fs.checkPerm(oid, permRead); err != nil {
		return nil, err
	}
	if err := fs.s.Clerk.Acquire(oid.Lock(), lockservice.S, false); err != nil {
		return nil, err
	}
	defer fs.s.Clerk.Release(oid.Lock(), lockservice.S)
	var out []DirEntry
	if err := fs.s.DirIterate(oid, func(key []byte, val sobj.OID) error {
		out = append(out, DirEntry{Name: string(key), OID: val, IsDir: val.Type() == sobj.TypeCollection})
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Chmod changes permission bits; hwProtect also narrows extent protection
// through the SCM manager (the §7.2.1 path).
func (fs *FS) Chmod(path string, perm uint32, hwProtect bool) error {
	defer fs.observe("chmod", fs.obsChmod, fs.obsOp.StartTimer())
	oid, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if err := fs.s.Clerk.Acquire(oid.Lock(), lockservice.X, false); err != nil {
		return err
	}
	defer fs.s.Clerk.Release(oid.Lock(), lockservice.X)
	return fs.s.Chmod(oid, perm, hwProtect)
}

// Sync ships buffered metadata updates (fsync-equivalent for the volume).
func (fs *FS) Sync() error {
	defer fs.observe("sync", fs.obsSync, fs.obsOp.StartTimer())
	return fs.s.Sync()
}

// Statfs reports volume-wide space and object accounting (statvfs/df):
// total and free bytes, bytes held by in-flight admission reservations,
// and the live object count.
func (fs *FS) Statfs() (fsproto.StatfsReply, error) {
	return fs.s.Statfs()
}

// Root returns the root directory OID.
func (fs *FS) Root() sobj.OID { return fs.s.Root }

var _ io.Reader = (*File)(nil)
var _ io.Writer = (*File)(nil)
var _ io.Seeker = (*File)(nil)
