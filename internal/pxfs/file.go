package pxfs

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// File is an open PXFS file. The file's mFile lock is held (read or write
// mode) from open to close (§6.1); reads and writes access SCM directly,
// with metadata growth staged in the client's update log.
type File struct {
	fs      *FS
	oid     sobj.OID
	path    string
	flags   int
	off     uint64
	writing bool
	wrote   bool
	closed  bool
}

// Create creates (or truncates) a file for read/write.
func (fs *FS) Create(path string, perm uint32) (*File, error) {
	return fs.OpenFile(path, O_RDWR|O_CREATE|O_TRUNC, perm)
}

// Open opens an existing file per flags (O_RDONLY or O_RDWR|...).
func (fs *FS) Open(path string, flags int) (*File, error) {
	return fs.OpenFile(path, flags, 0644)
}

// OpenFile is the general open: resolves the path, creates the file when
// O_CREATE is set and it is absent, acquires the file lock in the mode the
// flags demand, and registers the open locally.
func (fs *FS) OpenFile(path string, flags int, perm uint32) (*File, error) {
	defer fs.observe("open", fs.obsOpen, fs.obsOp.StartTimer())
	writing := flags&O_RDWR != 0
	need := permRead
	class := lockservice.S
	if writing {
		need = permWrite
		class = lockservice.X
	}
	var oid sobj.OID
	locked := false // file lock already acquired under the directory lock
	if flags&O_CREATE != 0 {
		dir, leaf, err := fs.resolveDir(path)
		if err != nil {
			return nil, err
		}
		dirLock := dir.Lock()
		if err := fs.s.Clerk.Acquire(dirLock, lockservice.X, false); err != nil {
			return nil, err
		}
		existing, found, err := fs.s.DirLookup(dir, []byte(leaf))
		if err != nil {
			fs.s.Clerk.Release(dirLock, lockservice.X)
			return nil, err
		}
		if found {
			oid = existing
			if oid.Type() != sobj.TypeCollection {
				// Lock coupling: the name→object binding is only guaranteed
				// while the directory lock is held, so the file lock must be
				// acquired before releasing it. Otherwise a concurrent rename
				// can move the entry between lookup and lock, and this open's
				// writes would land on an object no longer bound to path.
				if err := fs.s.Clerk.Acquire(oid.Lock(), class, false); err != nil {
					fs.s.Clerk.Release(dirLock, lockservice.X)
					return nil, err
				}
				locked = true
			}
		} else {
			if err := fs.checkPerm(dir, permWrite); err != nil {
				fs.s.Clerk.Release(dirLock, lockservice.X)
				return nil, err
			}
			// Files live on their parent directory's shard, keeping the
			// create+insert pair a single-shard batch.
			oid, err = fs.s.CreateMFileStagedOn(fs.s.ShardOf(dir), perm, fs.opts.ExtentLog)
			if err == nil {
				err = fs.s.DirInsert(dir, []byte(leaf), oid, dirLock)
			}
			if err == nil {
				// Born locked: the directory lock's release publishes the
				// insert to other clients, so the file lock must be held
				// before that — otherwise a reader can slip in between the
				// publish and the creator's first write and observe the
				// empty file, tearing the create+write open apart. The OID
				// is brand new, so this acquire can never contend.
				err = fs.s.Clerk.Acquire(oid.Lock(), class, false)
				locked = err == nil
			}
			if err != nil {
				fs.s.Clerk.Release(dirLock, lockservice.X)
				return nil, err
			}
		}
		fs.s.Clerk.Release(dirLock, lockservice.X)
	} else {
		// Non-create opens need the same coupling: resolve the parent, then
		// look up the leaf and take the file lock under the parent's lock.
		// Resolving first and locking after leaves a window where a rename
		// moves the entry and the open's reads/writes land on (and are
		// observed at) an object no longer bound to path.
		dir, leaf, err := fs.resolveDir(path)
		if err != nil {
			return nil, err
		}
		if err := fs.checkPerm(dir, permTraverse); err != nil {
			return nil, err
		}
		dirLock := dir.Lock()
		if err := fs.s.Clerk.Acquire(dirLock, lockservice.S, false); err != nil {
			return nil, err
		}
		var found bool
		oid, found, err = fs.s.DirLookup(dir, []byte(leaf))
		if err == nil && !found {
			err = fmt.Errorf("%w: %q", ErrNotExist, leaf)
		}
		if err == nil && oid.Type() != sobj.TypeCollection {
			err = fs.s.Clerk.Acquire(oid.Lock(), class, false)
			locked = err == nil
		}
		fs.s.Clerk.Release(dirLock, lockservice.S)
		if err != nil {
			return nil, err
		}
	}
	if oid.Type() == sobj.TypeCollection {
		if locked {
			fs.s.Clerk.Release(oid.Lock(), class)
		}
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if err := fs.checkPerm(oid, need); err != nil {
		if locked {
			fs.s.Clerk.Release(oid.Lock(), class)
		}
		return nil, err
	}
	// The file lock is held open-to-close (§6.1); the O_CREATE paths already
	// hold it from inside the directory-locked window above.
	if !locked {
		if err := fs.s.Clerk.Acquire(oid.Lock(), class, false); err != nil {
			return nil, err
		}
	}
	f := &File{fs: fs, oid: oid, path: path, flags: flags, writing: writing}
	if flags&O_TRUNC != 0 && writing {
		if err := fs.s.FileTruncate(oid, 0, oid.Lock()); err != nil {
			fs.s.Clerk.Release(oid.Lock(), class)
			return nil, err
		}
		f.wrote = true
	}
	if flags&O_APPEND != 0 {
		size, err := fs.s.FileSize(oid)
		if err != nil {
			fs.s.Clerk.Release(oid.Lock(), class)
			return nil, err
		}
		f.off = size
	}
	fs.mu.Lock()
	oe := fs.open[oid]
	if oe == nil {
		oe = &openEntry{}
		fs.open[oid] = oe
	}
	oe.count++
	fs.mu.Unlock()
	return f, nil
}

// OID returns the file's object ID.
func (f *File) OID() sobj.OID { return f.oid }

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	defer f.fs.observe("read", f.fs.obsRead, f.fs.obsOp.StartTimer())
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.fs.s.FileRead(f.oid, p, f.off)
	f.off += uint64(n)
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// ReadAt reads at an absolute offset.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	defer f.fs.observe("read", f.fs.obsRead, f.fs.obsOp.StartTimer())
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.fs.s.FileRead(f.oid, p, uint64(off))
	if err == nil && n < len(p) {
		err = io.EOF
	}
	return n, err
}

// Write writes at the current offset, extending the file as needed.
func (f *File) Write(p []byte) (int, error) {
	defer f.fs.observe("write", f.fs.obsWrite, f.fs.obsOp.StartTimer())
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writing {
		return 0, ErrReadOnly
	}
	n, err := f.fs.s.FileWrite(f.oid, p, f.off, f.oid.Lock())
	f.off += uint64(n)
	f.wrote = true
	return n, err
}

// WriteAt writes at an absolute offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	defer f.fs.observe("write", f.fs.obsWrite, f.fs.obsOp.StartTimer())
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writing {
		return 0, ErrReadOnly
	}
	f.wrote = true
	return f.fs.s.FileWrite(f.oid, p, uint64(off), f.oid.Lock())
}

// Seek repositions the offset.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	var base uint64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		size, err := f.fs.s.FileSize(f.oid)
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, errors.New("pxfs: bad whence")
	}
	n := int64(base) + offset
	if n < 0 {
		return 0, errors.New("pxfs: negative seek")
	}
	f.off = uint64(n)
	return n, nil
}

// Truncate shrinks or logically extends the file.
func (f *File) Truncate(n uint64) error {
	defer f.fs.observe("truncate", f.fs.obsTruncate, f.fs.obsOp.StartTimer())
	if f.closed {
		return ErrClosed
	}
	if !f.writing {
		return ErrReadOnly
	}
	f.wrote = true
	size, err := f.fs.s.FileSize(f.oid)
	if err != nil {
		return err
	}
	if n >= size {
		return f.fs.s.FileSetSize(f.oid, n, f.oid.Lock())
	}
	return f.fs.s.FileTruncate(f.oid, n, f.oid.Lock())
}

// Stat returns the file's metadata.
func (f *File) Stat() (FileInfo, error) {
	if f.closed {
		return FileInfo{}, ErrClosed
	}
	return f.fs.statOID(f.oid, baseName(f.path))
}

// Sync ships the client's buffered metadata updates (libfs sync, §4.3).
func (f *File) Sync() error {
	defer f.fs.observe("sync", f.fs.obsSync, f.fs.obsOp.StartTimer())
	if f.closed {
		return ErrClosed
	}
	return f.fs.s.Sync()
}

// Size returns the current file size.
func (f *File) Size() (uint64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	return f.fs.s.FileSize(f.oid)
}

// Close releases the file lock and, if the file was registered in the TFS
// open-file table, sends the close notification (which reclaims storage of
// unlinked files).
func (f *File) Close() error {
	defer f.fs.observe("close", f.fs.obsClose, f.fs.obsOp.StartTimer())
	if f.closed {
		return nil
	}
	f.closed = true
	if f.wrote {
		// Timestamp update, batched like other metadata (§6.1 drops
		// asynchronous timestamps; this is the synchronous-on-close
		// variant).
		_ = f.fs.s.LogOp(attrOp(f.oid, uint64(time.Now().UnixNano())))
	}
	class := lockservice.S
	if f.writing {
		class = lockservice.X
	}
	f.fs.s.Clerk.Release(f.oid.Lock(), class)
	f.fs.mu.Lock()
	oe := f.fs.open[f.oid]
	var notify bool
	if oe != nil {
		oe.count--
		if oe.count <= 0 {
			notify = oe.notified
			delete(f.fs.open, f.oid)
		}
	}
	f.fs.mu.Unlock()
	if notify {
		return f.fs.s.NotifyClose(f.oid)
	}
	return nil
}

// attrOp builds the batched mtime update for a written file.
func attrOp(oid sobj.OID, attrs uint64) fsproto.Op {
	return fsproto.Op{Code: fsproto.OpSetAttr, Target: oid, Val: attrs, Val2: 1, CoverLock: oid.Lock()}
}
