// Package blockdev emulates the RAM-disk block device that the paper mounts
// ext3/ext4 on (§7.1): a Linux brd driver modified to perform block writes
// with streaming stores and flush them for persistence. It reuses the SCM
// emulation for its backing store, so the same crash simulation and
// write-latency injection apply — Figure 6 injects its delay here for the
// kernel file systems.
package blockdev

import (
	"errors"
	"fmt"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/scm"
)

// BlockSize is the device's sector/block size.
const BlockSize = 4096

// ErrOutOfRange reports a block number beyond the device.
var ErrOutOfRange = errors.New("blockdev: block out of range")

// Disk is a RAM disk. Concurrent access is the file system's
// responsibility, as with a real block device queue.
type Disk struct {
	mem    *scm.Memory
	blocks uint64
	costs  *costmodel.Costs

	// Stats.
	ReadsN  costmodel.Counter
	WritesN costmodel.Counter
	Flushes costmodel.Counter
}

// New creates a disk with the given number of blocks. costs supplies the
// injected per-block write latency (may be nil). track enables crash
// simulation.
func New(blocks uint64, costs *costmodel.Costs, track bool) *Disk {
	mem := scm.New(scm.Config{Size: blocks * BlockSize, TrackPersistence: track})
	return &Disk{mem: mem, blocks: blocks, costs: costs}
}

// Blocks returns the device size in blocks.
func (d *Disk) Blocks() uint64 { return d.blocks }

func (d *Disk) check(block uint64) error {
	if block >= d.blocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, block, d.blocks)
	}
	return nil
}

// Read copies block into p (len(p) must be BlockSize).
func (d *Disk) Read(block uint64, p []byte) error {
	if err := d.check(block); err != nil {
		return err
	}
	if len(p) != BlockSize {
		return fmt.Errorf("blockdev: short read buffer %d", len(p))
	}
	d.ReadsN.Add(1)
	return d.mem.Read(block*BlockSize, p)
}

// Write stores p into block with streaming stores, charging the injected
// block-write latency. The write is persistent after the next Flush.
func (d *Disk) Write(block uint64, p []byte) error {
	if err := d.check(block); err != nil {
		return err
	}
	if len(p) != BlockSize {
		return fmt.Errorf("blockdev: short write buffer %d", len(p))
	}
	d.WritesN.Add(1)
	if d.costs != nil && d.costs.BlockWrite > 0 {
		costmodel.Spin(d.costs.BlockWrite)
	}
	return d.mem.WriteStream(block*BlockSize, p)
}

// Flush drains the device write buffers (the modified brd's blflush).
func (d *Disk) Flush() {
	d.Flushes.Add(1)
	d.mem.BFlush()
	d.mem.Fence()
}

// Crash simulates power loss (requires track at New).
func (d *Disk) Crash() { d.mem.Crash() }

// PersistAll marks the current contents persistent (post-mkfs baseline).
func (d *Disk) PersistAll() { d.mem.PersistAll() }
