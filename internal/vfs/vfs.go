// Package vfs simulates the kernel Virtual File System layer that the
// paper's baselines (RamFS, ext3, ext4) run under, including the costs §3
// attributes to the file abstraction: kernel entry, file-descriptor
// management, synchronization, in-memory objects (inodes and dentries), and
// hierarchical naming. Each operation accounts its time into those five
// categories, which is how the harness regenerates Figure 1.
package vfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// Ino is an inode number; 0 is invalid.
type Ino uint64

// Attr is the stat-visible metadata of a file.
type Attr struct {
	Mode  uint32
	Size  uint64
	Nlink uint32
	Mtime int64
	IsDir bool
}

// NameIno is one directory entry.
type NameIno struct {
	Name string
	Ino  Ino
}

// FileSystem is the concrete on-"disk" file system under the VFS (RamFS or
// extfs). The VFS owns caching and synchronization; implementations may
// assume calls are serialized by the VFS locks.
type FileSystem interface {
	Root() Ino
	Lookup(dir Ino, name string) (Ino, error)
	Create(dir Ino, name string, mode uint32, isDir bool) (Ino, error)
	Unlink(dir Ino, name string, rmdir bool) error
	Rename(sdir Ino, sname string, ddir Ino, dname string) error
	GetAttr(ino Ino) (Attr, error)
	SetMode(ino Ino, mode uint32) error
	ReadDir(dir Ino) ([]NameIno, error)
	ReadAt(ino Ino, p []byte, off uint64) (int, error)
	WriteAt(ino Ino, p []byte, off uint64) (int, error)
	Truncate(ino Ino, size uint64) error
	Sync() error
}

// Errors shared by VFS file systems.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrBadFD    = errors.New("vfs: bad file descriptor")
	ErrPerm     = errors.New("vfs: permission denied")
)

// Open flags (subset).
const (
	O_RDONLY = 0x0
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Category indexes the Figure 1 cost breakdown.
type Category int

// Categories, matching Figure 1's legend.
const (
	CatEntry  Category = iota // entry function + mode switch
	CatFD                     // file-descriptor management
	CatSync                   // synchronization (locks)
	CatMemObj                 // in-memory inodes and dentries
	CatNaming                 // hierarchical name resolution
	// CatBackend is time inside the concrete file system (journal
	// commits, block I/O). The paper's Figure 1 profiles the VFS layer
	// only, so reports exclude this bucket.
	CatBackend
	numCategories
)

func (c Category) String() string {
	return [...]string{"EntryFunction", "FileDescriptors", "Synchronization", "MemoryObjects", "Naming", "Backend"}[c]
}

// Accounting accumulates per-category time.
type Accounting struct {
	ns  [numCategories]atomic.Int64
	ops atomic.Int64
}

// Add accumulates d into cat.
func (a *Accounting) Add(cat Category, d time.Duration) {
	if a == nil {
		return
	}
	a.ns[cat].Add(int64(d))
}

// Snapshot returns per-category totals and the op count.
func (a *Accounting) Snapshot() (totals [numCategories]time.Duration, ops int64) {
	for i := range totals {
		totals[i] = time.Duration(a.ns[i].Load())
	}
	return totals, a.ops.Load()
}

// Reset zeroes the accounting.
func (a *Accounting) Reset() {
	for i := range a.ns {
		a.ns[i].Store(0)
	}
	a.ops.Store(0)
}

// Categories enumerates the category list for reporting.
func Categories() []Category {
	return []Category{CatEntry, CatFD, CatSync, CatMemObj, CatNaming}
}

// stopwatch attributes elapsed wall time to categories between laps.
type stopwatch struct {
	acct *Accounting
	last time.Time
}

func (sw *stopwatch) start(a *Accounting) {
	sw.acct = a
	if a != nil {
		sw.last = time.Now()
	}
}

func (sw *stopwatch) lap(cat Category) {
	if sw.acct == nil {
		return
	}
	now := time.Now()
	sw.acct.Add(cat, now.Sub(sw.last))
	sw.last = now
}

// vnode is the in-memory inode object, with the lifecycle costs §3 charges
// to "memory objects": allocation, initialization from the FS, reference
// counting, and eviction.
type vnode struct {
	ino    Ino
	attr   Attr
	refcnt int32
	lock   sync.RWMutex
}

type dkey struct {
	parent Ino
	name   string
}

type fdesc struct {
	vn    *vnode
	off   uint64
	flags int
}

// VFS is the simulated kernel file-system layer.
type VFS struct {
	fs    FileSystem
	costs *costmodel.Costs
	acct  *Accounting

	mu     sync.Mutex // the "big kernel lock" for namespace state
	dcache map[dkey]Ino
	icache map[Ino]*vnode
	dmax   int
	imax   int

	fdmu sync.Mutex
	fds  []*fdesc
	free []int

	// Stats.
	DcacheHits   costmodel.Counter
	DcacheMisses costmodel.Counter
}

// Config tunes the VFS.
type Config struct {
	// Costs injects the syscall-entry latency (may be nil).
	Costs *costmodel.Costs
	// DentryCacheSize and InodeCacheSize bound the caches (defaults
	// 65536 / 16384).
	DentryCacheSize int
	InodeCacheSize  int
	// Accounting enables the Figure 1 breakdown (small overhead).
	Accounting bool
}

// New mounts fs under a fresh VFS.
func New(fs FileSystem, cfg Config) *VFS {
	if cfg.DentryCacheSize == 0 {
		cfg.DentryCacheSize = 65536
	}
	if cfg.InodeCacheSize == 0 {
		cfg.InodeCacheSize = 16384
	}
	v := &VFS{
		fs:     fs,
		costs:  cfg.Costs,
		dcache: make(map[dkey]Ino),
		icache: make(map[Ino]*vnode),
		dmax:   cfg.DentryCacheSize,
		imax:   cfg.InodeCacheSize,
	}
	if cfg.Accounting {
		v.acct = &Accounting{}
	}
	return v
}

// Accounting returns the Figure 1 accounting (nil when disabled).
func (v *VFS) Accounting() *Accounting { return v.acct }

// DropCaches empties the dentry and inode caches (cold-cache experiments).
func (v *VFS) DropCaches() {
	v.mu.Lock()
	v.dcache = make(map[dkey]Ino)
	v.icache = make(map[Ino]*vnode)
	v.mu.Unlock()
}

// enter charges the kernel-crossing cost.
func (v *VFS) enter(sw *stopwatch) {
	sw.start(v.acct)
	if v.acct != nil {
		v.acct.ops.Add(1)
	}
	if v.costs != nil {
		costmodel.Spin(v.costs.SyscallEntry)
	}
	sw.lap(CatEntry)
}

// vget returns the vnode for ino, instantiating and caching it on miss
// (memory-object cost). Caller holds v.mu.
func (v *VFS) vget(ino Ino) (*vnode, error) {
	if vn := v.icache[ino]; vn != nil {
		atomic.AddInt32(&vn.refcnt, 1)
		return vn, nil
	}
	attr, err := v.fs.GetAttr(ino)
	if err != nil {
		return nil, err
	}
	vn := &vnode{ino: ino, attr: attr, refcnt: 1}
	if len(v.icache) >= v.imax {
		// Evict an unreferenced vnode (simple sweep).
		for k, cand := range v.icache {
			if atomic.LoadInt32(&cand.refcnt) == 0 {
				delete(v.icache, k)
				break
			}
		}
	}
	v.icache[ino] = vn
	return vn, nil
}

func (v *VFS) vput(vn *vnode) {
	if vn != nil {
		atomic.AddInt32(&vn.refcnt, -1)
	}
}

// splitPath normalizes a path.
func splitPath(path string) ([]string, error) {
	if path == "" || !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("vfs: need absolute path, got %q", path)
	}
	raw := strings.Split(path, "/")
	parts := raw[:0]
	for _, p := range raw {
		if p != "" && p != "." {
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// lookupComponent resolves one name under dir with the dentry cache
// (naming cost) and returns its vnode (memory-object cost). Caller holds
// v.mu; sw laps are attributed accordingly.
func (v *VFS) lookupComponent(sw *stopwatch, dir Ino, name string) (*vnode, error) {
	key := dkey{dir, name}
	ino, ok := v.dcache[key]
	if !ok {
		v.DcacheMisses.Add(1)
		sw.lap(CatNaming)
		var err error
		ino, err = v.fs.Lookup(dir, name)
		sw.lap(CatBackend)
		if err != nil {
			return nil, err
		}
		if len(v.dcache) >= v.dmax {
			for k := range v.dcache {
				delete(v.dcache, k)
				break
			}
		}
		v.dcache[key] = ino
	} else {
		v.DcacheHits.Add(1)
	}
	sw.lap(CatNaming)
	vn, err := v.vget(ino)
	sw.lap(CatMemObj)
	return vn, err
}

// walk resolves all of parts under root, returning the final vnode with a
// reference held. Access (traverse) checks run per component, as the paper
// counts under naming.
func (v *VFS) walk(sw *stopwatch, parts []string) (*vnode, error) {
	v.mu.Lock()
	sw.lap(CatSync)
	cur, err := v.vget(v.fs.Root())
	sw.lap(CatMemObj)
	if err != nil {
		v.mu.Unlock()
		return nil, err
	}
	for _, name := range parts {
		if !cur.attr.IsDir {
			v.vput(cur)
			v.mu.Unlock()
			return nil, ErrNotDir
		}
		if cur.attr.Mode&0555 == 0 {
			v.vput(cur)
			v.mu.Unlock()
			return nil, ErrPerm
		}
		sw.lap(CatNaming)
		next, err := v.lookupComponent(sw, cur.ino, name)
		v.vput(cur)
		if err != nil {
			v.mu.Unlock()
			return nil, err
		}
		cur = next
	}
	v.mu.Unlock()
	sw.lap(CatSync)
	return cur, nil
}

// walkParent resolves to the parent directory of path, returning it plus
// the leaf name.
func (v *VFS) walkParent(sw *stopwatch, path string) (*vnode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("vfs: %q names the root", path)
	}
	dir, err := v.walk(sw, parts[:len(parts)-1])
	if err != nil {
		return nil, "", err
	}
	if !dir.attr.IsDir {
		v.mu.Lock()
		v.vput(dir)
		v.mu.Unlock()
		return nil, "", ErrNotDir
	}
	return dir, parts[len(parts)-1], nil
}

func (v *VFS) put(vn *vnode) {
	v.mu.Lock()
	v.vput(vn)
	v.mu.Unlock()
}
