package vfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/extfs"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// eachFS runs the conformance suite against every baseline file system.
func eachFS(t *testing.T, fn func(t *testing.T, v *vfs.VFS)) {
	t.Helper()
	cases := []struct {
		name string
		mk   func(t *testing.T) vfs.FileSystem
	}{
		{"ramfs", func(t *testing.T) vfs.FileSystem { return ramfs.New() }},
		{"ext3", func(t *testing.T) vfs.FileSystem {
			fs, err := extfs.Mkfs(blockdev.New(8192, nil, false), extfs.Ext3)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
		{"ext4", func(t *testing.T) vfs.FileSystem {
			fs, err := extfs.Mkfs(blockdev.New(8192, nil, false), extfs.Ext4)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fn(t, vfs.New(c.mk(t), vfs.Config{Accounting: true}))
		})
	}
}

func write(t *testing.T, v *vfs.VFS, path string, data []byte) {
	t.Helper()
	fd, err := v.Open(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := v.Write(fd, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, v *vfs.VFS, path string) []byte {
	t.Helper()
	fd, err := v.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer v.Close(fd)
	attr, err := v.Fstat(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, attr.Size)
	got := 0
	for got < len(buf) {
		n, err := v.Read(fd, buf[got:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got += n
	}
	return buf[:got]
}

func TestConformanceCreateWriteRead(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		data := bytes.Repeat([]byte("block data! "), 2000) // ~24 KiB, multi-block
		write(t, v, "/f.bin", data)
		if got := read(t, v, "/f.bin"); !bytes.Equal(got, data) {
			t.Fatalf("round trip: %d vs %d bytes", len(got), len(data))
		}
	})
}

func TestConformanceHierarchy(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		if err := v.Mkdir("/a", 0755); err != nil {
			t.Fatal(err)
		}
		if err := v.Mkdir("/a/b", 0755); err != nil {
			t.Fatal(err)
		}
		write(t, v, "/a/b/c.txt", []byte("nested"))
		if got := read(t, v, "/a/b/c.txt"); string(got) != "nested" {
			t.Fatalf("got %q", got)
		}
		ents, err := v.ReadDir("/a")
		if err != nil || len(ents) != 1 || ents[0].Name != "b" {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := v.Mkdir("/a", 0755); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("dup mkdir: %v", err)
		}
	})
}

func TestConformanceUnlinkRmdirRename(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		write(t, v, "/x", []byte("1"))
		if err := v.Rename("/x", "/y"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Stat("/x"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatal("src survived rename")
		}
		if got := read(t, v, "/y"); string(got) != "1" {
			t.Fatalf("renamed content %q", got)
		}
		// Overwriting rename.
		write(t, v, "/z", []byte("2"))
		if err := v.Rename("/y", "/z"); err != nil {
			t.Fatal(err)
		}
		if got := read(t, v, "/z"); string(got) != "1" {
			t.Fatalf("overwrite rename content %q", got)
		}
		if err := v.Unlink("/z"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Stat("/z"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatal("file survived unlink")
		}
		_ = v.Mkdir("/d", 0755)
		write(t, v, "/d/f", []byte("x"))
		if err := v.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		_ = v.Unlink("/d/f")
		if err := v.Rmdir("/d"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceSparseAndOverwrite(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		fd, err := v.Open("/sparse", vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Pwrite(fd, []byte("tail"), 20000); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if _, err := v.Pread(fd, buf, 4096); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, make([]byte, 8)) {
			t.Fatalf("hole = %v", buf)
		}
		if _, err := v.Pwrite(fd, []byte("head"), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Pread(fd, buf[:4], 0); err != nil {
			t.Fatal(err)
		}
		if string(buf[:4]) != "head" {
			t.Fatalf("overwrite = %q", buf[:4])
		}
		_ = v.Close(fd)
		attr, _ := v.Stat("/sparse")
		if attr.Size != 20004 {
			t.Fatalf("size = %d", attr.Size)
		}
	})
}

func TestConformanceLargeFile(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		// >12 blocks forces indirect blocks on ext3 / several extents.
		data := make([]byte, 300*1024)
		for i := range data {
			data[i] = byte(i * 13)
		}
		write(t, v, "/large", data)
		if got := read(t, v, "/large"); !bytes.Equal(got, data) {
			t.Fatal("large round trip failed")
		}
	})
}

func TestConformanceManyFilesInDir(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		const n = 200 // spans several directory blocks
		for i := 0; i < n; i++ {
			write(t, v, fmt.Sprintf("/f%03d", i), []byte{byte(i)})
		}
		ents, err := v.ReadDir("/")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != n {
			t.Fatalf("dir entries = %d, want %d", len(ents), n)
		}
		// Delete half, verify the rest.
		for i := 0; i < n; i += 2 {
			if err := v.Unlink(fmt.Sprintf("/f%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < n; i += 2 {
			if got := read(t, v, fmt.Sprintf("/f%03d", i)); got[0] != byte(i) {
				t.Fatalf("file %d corrupted", i)
			}
		}
	})
}

func TestConformanceAppendMode(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		write(t, v, "/log", []byte("one\n"))
		fd, err := v.Open("/log", vfs.O_RDWR|vfs.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(fd, []byte("two\n")); err != nil {
			t.Fatal(err)
		}
		_ = v.Close(fd)
		if got := read(t, v, "/log"); string(got) != "one\ntwo\n" {
			t.Fatalf("append result %q", got)
		}
	})
}

func TestConformanceTruncate(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		write(t, v, "/t", bytes.Repeat([]byte("abcd"), 3000))
		fd, err := v.Open("/t", vfs.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Ftruncate(fd, 100); err != nil {
			t.Fatal(err)
		}
		_ = v.Close(fd)
		got := read(t, v, "/t")
		if len(got) != 100 {
			t.Fatalf("len after truncate = %d", len(got))
		}
		// Re-extend: exposed region must read zeros.
		fd, _ = v.Open("/t", vfs.O_RDWR, 0)
		if _, err := v.Pwrite(fd, []byte("!"), 5000); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		if _, err := v.Pread(fd, buf, 200); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, make([]byte, 10)) {
			t.Fatalf("stale bytes after truncate+extend: %v", buf)
		}
		_ = v.Close(fd)
	})
}

func TestConformancePermissions(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		write(t, v, "/p", []byte("x"))
		if err := v.Chmod("/p", 0444); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Open("/p", vfs.O_RDWR, 0); !errors.Is(err, vfs.ErrPerm) {
			t.Fatalf("write-open ro: %v", err)
		}
		if fd, err := v.Open("/p", vfs.O_RDONLY, 0); err != nil {
			t.Fatal(err)
		} else {
			_ = v.Close(fd)
		}
	})
}

func TestConformanceBadFD(t *testing.T) {
	eachFS(t, func(t *testing.T, v *vfs.VFS) {
		if _, err := v.Read(42, make([]byte, 4)); !errors.Is(err, vfs.ErrBadFD) {
			t.Fatalf("bad fd read: %v", err)
		}
		if err := v.Close(-1); !errors.Is(err, vfs.ErrBadFD) {
			t.Fatalf("bad fd close: %v", err)
		}
	})
}

func TestAccountingCoversCategories(t *testing.T) {
	v := vfs.New(ramfs.New(), vfs.Config{Accounting: true})
	for i := 0; i < 200; i++ {
		write(t, v, fmt.Sprintf("/a%d", i), []byte("x"))
		_, _ = v.Stat(fmt.Sprintf("/a%d", i))
	}
	totals, ops := v.Accounting().Snapshot()
	if ops == 0 {
		t.Fatal("no ops accounted")
	}
	sum := int64(0)
	for _, d := range totals {
		sum += int64(d)
	}
	if sum == 0 {
		t.Fatal("no time accounted")
	}
	// Naming and memory-object categories must be represented on a
	// path-heavy workload.
	if totals[vfs.CatNaming] == 0 || totals[vfs.CatMemObj] == 0 {
		t.Fatalf("breakdown missing categories: %v", totals)
	}
}

func TestDropCachesForcesMisses(t *testing.T) {
	v := vfs.New(ramfs.New(), vfs.Config{})
	write(t, v, "/f", []byte("x"))
	_, _ = v.Stat("/f")
	hitsBefore := v.DcacheHits.Load()
	_, _ = v.Stat("/f")
	if v.DcacheHits.Load() == hitsBefore {
		t.Fatal("warm stat missed the dcache")
	}
	v.DropCaches()
	missesBefore := v.DcacheMisses.Load()
	_, _ = v.Stat("/f")
	if v.DcacheMisses.Load() == missesBefore {
		t.Fatal("cold stat hit a dropped cache")
	}
}
