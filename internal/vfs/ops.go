package vfs

import (
	"fmt"
	"time"
)

// Syscall-like operations. Every op charges the kernel-entry cost and
// accounts its time into the Figure 1 categories.

// allocFD installs a descriptor (file-descriptor cost).
func (v *VFS) allocFD(sw *stopwatch, vn *vnode, flags int, off uint64) int {
	v.fdmu.Lock()
	var fd int
	d := &fdesc{vn: vn, off: off, flags: flags}
	if n := len(v.free); n > 0 {
		fd = v.free[n-1]
		v.free = v.free[:n-1]
		v.fds[fd] = d
	} else {
		fd = len(v.fds)
		v.fds = append(v.fds, d)
	}
	v.fdmu.Unlock()
	sw.lap(CatFD)
	return fd
}

func (v *VFS) fd(fd int) (*fdesc, error) {
	v.fdmu.Lock()
	defer v.fdmu.Unlock()
	if fd < 0 || fd >= len(v.fds) || v.fds[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return v.fds[fd], nil
}

// Open opens (or creates, with O_CREATE) path and returns a descriptor.
func (v *VFS) Open(path string, flags int, mode uint32) (int, error) {
	var sw stopwatch
	v.enter(&sw)
	var vn *vnode
	if flags&O_CREATE != 0 {
		dir, leaf, err := v.walkParent(&sw, path)
		if err != nil {
			return -1, err
		}
		v.mu.Lock()
		sw.lap(CatSync)
		ino, err := v.fs.Lookup(dir.ino, leaf)
		if err == nil {
			sw.lap(CatNaming)
			vn, err = v.vget(ino)
			sw.lap(CatMemObj)
		} else {
			sw.lap(CatNaming)
			ino, err = v.fs.Create(dir.ino, leaf, mode, false)
			sw.lap(CatBackend)
			if err == nil {
				v.dcache[dkey{dir.ino, leaf}] = ino
				vn, err = v.vget(ino)
			}
			sw.lap(CatMemObj)
		}
		v.vput(dir)
		v.mu.Unlock()
		sw.lap(CatSync)
		if err != nil {
			return -1, err
		}
	} else {
		parts, err := splitPath(path)
		if err != nil {
			return -1, err
		}
		vn, err = v.walk(&sw, parts)
		if err != nil {
			return -1, err
		}
	}
	if vn.attr.IsDir && flags&(O_RDWR|O_TRUNC) != 0 {
		v.put(vn)
		return -1, ErrIsDir
	}
	need := uint32(0444)
	if flags&O_RDWR != 0 {
		need = 0222
	}
	if vn.attr.Mode&need == 0 {
		v.put(vn)
		return -1, ErrPerm
	}
	off := uint64(0)
	if flags&O_TRUNC != 0 {
		vn.lock.Lock()
		sw.lap(CatSync)
		if err := v.fs.Truncate(vn.ino, 0); err != nil {
			vn.lock.Unlock()
			v.put(vn)
			return -1, err
		}
		vn.attr.Size = 0
		vn.lock.Unlock()
		sw.lap(CatEntry)
	}
	if flags&O_APPEND != 0 {
		off = vn.attr.Size
	}
	return v.allocFD(&sw, vn, flags, off), nil
}

// Close releases a descriptor.
func (v *VFS) Close(fd int) error {
	var sw stopwatch
	v.enter(&sw)
	v.fdmu.Lock()
	if fd < 0 || fd >= len(v.fds) || v.fds[fd] == nil {
		v.fdmu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	d := v.fds[fd]
	v.fds[fd] = nil
	v.free = append(v.free, fd)
	v.fdmu.Unlock()
	sw.lap(CatFD)
	v.put(d.vn)
	sw.lap(CatMemObj)
	return nil
}

// Read reads from the descriptor's offset.
func (v *VFS) Read(fd int, p []byte) (int, error) {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return 0, err
	}
	sw.lap(CatFD)
	d.vn.lock.RLock()
	sw.lap(CatSync)
	n, err := v.fs.ReadAt(d.vn.ino, p, d.off)
	d.vn.lock.RUnlock()
	d.off += uint64(n)
	return n, err
}

// Pread reads at an absolute offset.
func (v *VFS) Pread(fd int, p []byte, off uint64) (int, error) {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return 0, err
	}
	sw.lap(CatFD)
	d.vn.lock.RLock()
	sw.lap(CatSync)
	n, err := v.fs.ReadAt(d.vn.ino, p, off)
	d.vn.lock.RUnlock()
	return n, err
}

// Write writes at the descriptor's offset (or the end with O_APPEND).
func (v *VFS) Write(fd int, p []byte) (int, error) {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return 0, err
	}
	sw.lap(CatFD)
	d.vn.lock.Lock()
	sw.lap(CatSync)
	off := d.off
	if d.flags&O_APPEND != 0 {
		off = d.vn.attr.Size
	}
	n, err := v.fs.WriteAt(d.vn.ino, p, off)
	if end := off + uint64(n); end > d.vn.attr.Size {
		d.vn.attr.Size = end
	}
	d.vn.attr.Mtime = time.Now().UnixNano()
	d.vn.lock.Unlock()
	d.off = off + uint64(n)
	return n, err
}

// Pwrite writes at an absolute offset.
func (v *VFS) Pwrite(fd int, p []byte, off uint64) (int, error) {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return 0, err
	}
	sw.lap(CatFD)
	d.vn.lock.Lock()
	sw.lap(CatSync)
	n, err := v.fs.WriteAt(d.vn.ino, p, off)
	if end := off + uint64(n); end > d.vn.attr.Size {
		d.vn.attr.Size = end
	}
	d.vn.lock.Unlock()
	return n, err
}

// Stat returns path's attributes.
func (v *VFS) Stat(path string) (Attr, error) {
	var sw stopwatch
	v.enter(&sw)
	parts, err := splitPath(path)
	if err != nil {
		return Attr{}, err
	}
	vn, err := v.walk(&sw, parts)
	if err != nil {
		return Attr{}, err
	}
	vn.lock.RLock()
	sw.lap(CatSync)
	// Refresh size from the FS (writes through other descriptors).
	attr, aerr := v.fs.GetAttr(vn.ino)
	if aerr == nil {
		vn.attr = attr
	}
	a := vn.attr
	vn.lock.RUnlock()
	v.put(vn)
	sw.lap(CatMemObj)
	return a, nil
}

// Fstat returns the open file's attributes.
func (v *VFS) Fstat(fd int) (Attr, error) {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return Attr{}, err
	}
	sw.lap(CatFD)
	attr, err := v.fs.GetAttr(d.vn.ino)
	if err == nil {
		d.vn.attr = attr
	}
	return attr, err
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(path string, mode uint32) error {
	var sw stopwatch
	v.enter(&sw)
	dir, leaf, err := v.walkParent(&sw, path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	sw.lap(CatSync)
	_, err = v.fs.Create(dir.ino, leaf, mode, true)
	sw.lap(CatBackend)
	v.vput(dir)
	v.mu.Unlock()
	sw.lap(CatSync)
	return err
}

// Unlink removes a file.
func (v *VFS) Unlink(path string) error { return v.remove(path, false) }

// Rmdir removes an empty directory.
func (v *VFS) Rmdir(path string) error { return v.remove(path, true) }

func (v *VFS) remove(path string, rmdir bool) error {
	var sw stopwatch
	v.enter(&sw)
	dir, leaf, err := v.walkParent(&sw, path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	sw.lap(CatSync)
	err = v.fs.Unlink(dir.ino, leaf, rmdir)
	sw.lap(CatBackend)
	if err == nil {
		ino, ok := v.dcache[dkey{dir.ino, leaf}]
		delete(v.dcache, dkey{dir.ino, leaf})
		if ok {
			delete(v.icache, ino)
		}
	}
	sw.lap(CatMemObj)
	v.vput(dir)
	v.mu.Unlock()
	sw.lap(CatSync)
	return err
}

// Rename atomically moves src to dst.
func (v *VFS) Rename(src, dst string) error {
	var sw stopwatch
	v.enter(&sw)
	sdir, sleaf, err := v.walkParent(&sw, src)
	if err != nil {
		return err
	}
	ddir, dleaf, err := v.walkParent(&sw, dst)
	if err != nil {
		v.put(sdir)
		return err
	}
	v.mu.Lock()
	sw.lap(CatSync)
	err = v.fs.Rename(sdir.ino, sleaf, ddir.ino, dleaf)
	sw.lap(CatBackend)
	delete(v.dcache, dkey{sdir.ino, sleaf})
	delete(v.dcache, dkey{ddir.ino, dleaf})
	sw.lap(CatMemObj)
	v.vput(sdir)
	v.vput(ddir)
	v.mu.Unlock()
	sw.lap(CatSync)
	return err
}

// ReadDir lists a directory.
func (v *VFS) ReadDir(path string) ([]NameIno, error) {
	var sw stopwatch
	v.enter(&sw)
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	vn, err := v.walk(&sw, parts)
	if err != nil {
		return nil, err
	}
	defer v.put(vn)
	if !vn.attr.IsDir {
		return nil, ErrNotDir
	}
	return v.fs.ReadDir(vn.ino)
}

// Chmod updates permission bits.
func (v *VFS) Chmod(path string, mode uint32) error {
	var sw stopwatch
	v.enter(&sw)
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	vn, err := v.walk(&sw, parts)
	if err != nil {
		return err
	}
	defer v.put(vn)
	vn.lock.Lock()
	defer vn.lock.Unlock()
	if err := v.fs.SetMode(vn.ino, mode); err != nil {
		return err
	}
	vn.attr.Mode = mode
	return nil
}

// Ftruncate resizes an open file.
func (v *VFS) Ftruncate(fd int, size uint64) error {
	var sw stopwatch
	v.enter(&sw)
	d, err := v.fd(fd)
	if err != nil {
		return err
	}
	sw.lap(CatFD)
	d.vn.lock.Lock()
	defer d.vn.lock.Unlock()
	if err := v.fs.Truncate(d.vn.ino, size); err != nil {
		return err
	}
	d.vn.attr.Size = size
	return nil
}

// Fsync flushes the file system (journal commit + device flush).
func (v *VFS) Fsync(fd int) error {
	var sw stopwatch
	v.enter(&sw)
	if _, err := v.fd(fd); err != nil {
		return err
	}
	sw.lap(CatFD)
	return v.fs.Sync()
}

// Sync flushes the whole file system.
func (v *VFS) Sync() error {
	var sw stopwatch
	v.enter(&sw)
	return v.fs.Sync()
}
