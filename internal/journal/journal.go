// Package journal implements the persistent redo log the TFS uses for
// crash-consistent metadata updates (§5.3.6). Records are appended with
// streaming writes (the paper uses x86 streaming stores into WC buffers for
// high sequential bandwidth), committed by draining the WC buffers (bflush)
// and a fence, and published by an atomic 8-byte tail-pointer update. After
// a crash, Replay re-delivers every committed record in order; applying is
// idempotent redo, so re-execution after a partial checkpoint is safe.
//
// The log is a circular buffer. A record never wraps: when the space to the
// end of the region is too small, a pad record fills it and the next record
// starts at the beginning. Records carry a CRC so a torn (partially
// persisted) record is detected rather than replayed — although the
// commit protocol (publish tail only after records are persistent) already
// prevents torn records from being inside the committed window, the CRC
// guards the window itself against bitmap/model bugs and hostile images.
package journal

import (
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/scm"
)

// Errors.
var (
	ErrFull     = errors.New("journal: log full")
	ErrCorrupt  = errors.New("journal: corrupt record")
	ErrBadMagic = errors.New("journal: region not formatted")
	ErrTooBig   = errors.New("journal: record exceeds log capacity")
)

// Region header layout (one cache line):
//
//	0x00 magic u64
//	0x08 head  u64 (offset of first live byte, relative to ring start)
//	0x10 tail  u64 (offset one past last committed byte)
//	0x18 ring size u64
const (
	magicValue = 0xae81e10900000001
	offMagic   = 0
	offHead    = 8
	offTail    = 16
	offRing    = 24
	headerSize = scm.LineSize
)

// Record header: u32 length (payload bytes; padMark means pad-to-end),
// u32 CRC32 (IEEE) of the payload.
const (
	recHeader = 8
	padMark   = 0xffffffff
)

// Log is a redo log in a region of SCM. It is not internally synchronized:
// the TFS serializes journal access (one committer), matching the paper's
// single trusted writer.
type Log struct {
	mem  scm.Space
	base uint64 // region base (header)
	ring uint64 // ring base = base + headerSize
	size uint64 // ring size

	head uint64 // cached copies of the persistent pointers
	tail uint64
	// staged is the in-flight (appended but uncommitted) tail.
	staged uint64

	faults *faultinject.Injector

	// Metrics resolved by SetObs; all nil (free no-ops) until then.
	obsRecords     *obs.Counter
	obsRecordBytes *obs.Counter
	obsReplayed    *obs.Counter
	obsCheckpoints *obs.Counter
	obsCommit      *obs.Histogram
	obsCommitSCM   *obs.Counter // scm.charged_ns consumed inside Commit
	obsSCMCharged  *obs.Counter // the shared scm.charged_ns counter itself
}

// SetFaults arms fault points on the log's mutation paths (journal.append,
// journal.commit, journal.commit.publish, journal.commit.published,
// journal.checkpoint, journal.replay.record). A nil injector is inert.
func (l *Log) SetFaults(inj *faultinject.Injector) { l.faults = inj }

// SetObs attaches an observability sink: journal.records / record_bytes
// count appends, journal.commit times Commit, journal.replayed counts
// redelivered records, journal.checkpoints counts head advances. When the
// sink is shared with the underlying scm.Memory, journal.commit.scm_ns
// accumulates the slice of injected SCM latency charged during commits
// (read as a before/after delta of scm.charged_ns — exact because the TFS
// is the single committer), letting the breakdown separate "journal logic"
// from "media wait inside the journal".
func (l *Log) SetObs(sink *obs.Sink) {
	l.obsRecords = sink.Counter("journal.records")
	l.obsRecordBytes = sink.Counter("journal.record_bytes")
	l.obsReplayed = sink.Counter("journal.replayed")
	l.obsCheckpoints = sink.Counter("journal.checkpoints")
	l.obsCommit = sink.Histogram("journal.commit")
	l.obsCommitSCM = sink.Counter("journal.commit.scm_ns")
	l.obsSCMCharged = sink.Counter("scm.charged_ns")
}

// Format initializes an empty log over region [base, base+size).
func Format(mem scm.Space, base, size uint64) (*Log, error) {
	if size < headerSize+4*scm.PageSize {
		return nil, fmt.Errorf("journal: region too small (%d bytes)", size)
	}
	ringSize := size - headerSize
	if err := scm.Write64(mem, base+offHead, 0); err != nil {
		return nil, err
	}
	if err := scm.Write64(mem, base+offTail, 0); err != nil {
		return nil, err
	}
	if err := scm.Write64(mem, base+offRing, ringSize); err != nil {
		return nil, err
	}
	if err := mem.Flush(base, headerSize); err != nil {
		return nil, err
	}
	mem.Fence()
	if err := scm.Write64Flush(mem, base+offMagic, magicValue); err != nil {
		return nil, err
	}
	return Attach(mem, base)
}

// Attach opens an existing log, e.g. during crash recovery.
func Attach(mem scm.Space, base uint64) (*Log, error) {
	magic, err := scm.Read64(mem, base+offMagic)
	if err != nil {
		return nil, err
	}
	if magic != magicValue {
		return nil, ErrBadMagic
	}
	head, err := scm.Read64(mem, base+offHead)
	if err != nil {
		return nil, err
	}
	tail, err := scm.Read64(mem, base+offTail)
	if err != nil {
		return nil, err
	}
	ringSize, err := scm.Read64(mem, base+offRing)
	if err != nil {
		return nil, err
	}
	return &Log{
		mem: mem, base: base, ring: base + headerSize, size: ringSize,
		head: head, tail: tail, staged: tail,
	}, nil
}

// used returns bytes in use between head and a candidate tail.
func (l *Log) used(tail uint64) uint64 {
	if tail >= l.head {
		return tail - l.head
	}
	return l.size - l.head + tail
}

// FreeBytes returns the space available for new records (committed view).
func (l *Log) FreeBytes() uint64 { return l.size - l.used(l.staged) - 1 }

// MaxPayload returns the largest payload Append can ever accept, even right
// after a checkpoint: records are capped at half the ring (see ErrTooBig) so
// admission can reject oversized batches before touching the log.
func (l *Log) MaxPayload() uint64 {
	if l.size/2 < recHeader {
		return 0
	}
	return (l.size/2 - recHeader) &^ 7
}

// Append stages a record with the given payload. The record is not
// persistent or replayable until Commit. Returns ErrFull when the log needs
// a checkpoint first.
func (l *Log) Append(payload []byte) error {
	// Records are padded to 8-byte boundaries so the cursor stays
	// aligned and a pad header always fits at the end of the ring.
	need := uint64(recHeader) + align8(uint64(len(payload)))
	if need > l.size/2 {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(payload))
	}
	if err := l.faults.Hit("journal.append"); err != nil {
		return err
	}
	pos := l.staged
	// If the record would cross the ring end, a pad record fills the
	// space to the end and the record starts at offset 0. Account for
	// the pad when checking free space, measured from head to the
	// current staged position (which includes everything staged so far).
	padLen := uint64(0)
	if pos+need > l.size {
		padLen = l.size - pos
	}
	if l.used(l.staged)+padLen+need >= l.size {
		return ErrFull
	}
	if padLen > 0 {
		var hdr [recHeader]byte
		putU32(hdr[:4], padMark)
		if err := l.mem.WriteStream(l.ring+pos, hdr[:]); err != nil {
			return err
		}
		pos = 0
	}
	var hdr [recHeader]byte
	putU32(hdr[:4], uint32(len(payload)))
	putU32(hdr[4:], crc32.ChecksumIEEE(payload))
	if err := l.mem.WriteStream(l.ring+pos, hdr[:]); err != nil {
		return err
	}
	if err := l.mem.WriteStream(l.ring+pos+recHeader, payload); err != nil {
		return err
	}
	l.staged = pos + need
	l.obsRecords.Inc()
	l.obsRecordBytes.Add(int64(len(payload)))
	return nil
}

// Commit makes all staged records persistent and replayable: drain the WC
// buffers, fence, then publish the tail with an atomic flushed store.
func (l *Log) Commit() error {
	if l.staged == l.tail {
		return nil
	}
	obsT0 := l.obsCommit.StartTimer()
	scmBefore := l.obsSCMCharged.Load()
	defer func() {
		l.obsCommitSCM.Add(l.obsSCMCharged.Load() - scmBefore)
		l.obsCommit.ObserveSince(obsT0)
	}()
	if err := l.faults.Hit("journal.commit"); err != nil {
		return err
	}
	l.mem.BFlush()
	l.mem.Fence()
	// A crash between the drain and the tail publish is the classic
	// torn-commit window: records are persistent but unreachable.
	if err := l.faults.Hit("journal.commit.publish"); err != nil {
		return err
	}
	if err := scm.AtomicFlush64(l.mem, l.base+offTail, l.staged); err != nil {
		return err
	}
	// ... and a crash immediately after the publish must replay the batch.
	_ = l.faults.Hit("journal.commit.published")
	l.tail = l.staged
	return nil
}

// Abort discards staged-but-uncommitted records.
func (l *Log) Abort() { l.staged = l.tail }

// Replay delivers every committed record from head to tail, in order. It
// stops with ErrCorrupt if a record fails its CRC.
func (l *Log) Replay(fn func(payload []byte) error) error {
	pos := l.head
	for pos != l.tail {
		var hdr [recHeader]byte
		if err := l.mem.Read(l.ring+pos, hdr[:]); err != nil {
			return err
		}
		length := getU32(hdr[:4])
		if length == padMark {
			pos = 0
			continue
		}
		if uint64(length) > l.size || pos+recHeader+align8(uint64(length)) > l.size {
			return fmt.Errorf("%w: impossible length %d at %d", ErrCorrupt, length, pos)
		}
		payload := make([]byte, length)
		if err := l.mem.Read(l.ring+pos+recHeader, payload); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != getU32(hdr[4:]) {
			return fmt.Errorf("%w: CRC mismatch at %d", ErrCorrupt, pos)
		}
		// Crash mid-recovery: some records redone, head not yet advanced.
		// Replay after the next attach re-delivers them (idempotent redo).
		if err := l.faults.Hit("journal.replay.record"); err != nil {
			return err
		}
		if err := fn(payload); err != nil {
			return err
		}
		l.obsReplayed.Inc()
		pos += recHeader + align8(uint64(length))
	}
	return nil
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Checkpoint declares all committed records applied to their home
// locations: the caller must have flushed those home locations first. The
// head pointer advances to the tail with an atomic flushed store.
func (l *Log) Checkpoint() error {
	if err := l.faults.Hit("journal.checkpoint"); err != nil {
		return err
	}
	l.mem.Fence()
	if err := scm.AtomicFlush64(l.mem, l.base+offHead, l.tail); err != nil {
		return err
	}
	l.head = l.tail
	l.obsCheckpoints.Inc()
	return nil
}

// Empty reports whether there are no committed records awaiting checkpoint.
func (l *Log) Empty() bool { return l.head == l.tail }

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
