package journal

import (
	"errors"
	"testing"
)

// TestMaxPayloadBound pins the admission contract: MaxPayload is exactly
// the largest payload Append ever accepts, so the TFS can reject an
// oversized batch (typed ErrBatchTooLarge upstream) before touching the
// log, and anything at or under the bound is appendable on an empty log.
func TestMaxPayloadBound(t *testing.T) {
	l, _ := newLog(t, 64*1024)
	max := l.MaxPayload()
	if max == 0 || max >= 64*1024 {
		t.Fatalf("implausible MaxPayload %d for a 64 KiB ring", max)
	}
	if err := l.Append(make([]byte, max+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("append over MaxPayload: %v", err)
	}
	if err := l.Append(make([]byte, max)); err != nil {
		t.Fatalf("append at MaxPayload on an empty log: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || uint64(len(got[0])) != max {
		t.Fatalf("replay returned %d records", len(got))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The bound holds at any ring position, not just offset zero: after a
	// checkpoint mid-ring, a MaxPayload record must still fit (via the pad
	// path), or admission would accept batches the log then rejects.
	if err := l.Append(make([]byte, max)); err != nil {
		t.Fatalf("append at MaxPayload mid-ring: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
