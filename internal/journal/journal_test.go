package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/scm"
)

func newLog(t *testing.T, size uint64) (*Log, *scm.Memory) {
	t.Helper()
	mem := scm.New(scm.Config{Size: size + 2*scm.PageSize, TrackPersistence: true})
	l, err := Format(mem, scm.PageSize, size)
	if err != nil {
		t.Fatal(err)
	}
	return l, mem
}

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendCommitReplay(t *testing.T) {
	l, _ := newLog(t, 64*1024)
	msgs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, m := range msgs {
		if err := l.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != len(msgs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], msgs[i])
		}
	}
}

func TestUncommittedRecordsLostInCrash(t *testing.T) {
	l, mem := newLog(t, 64*1024)
	if err := l.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	l2, err := Attach(mem, scm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "committed" {
		t.Fatalf("replay after crash = %q", got)
	}
}

func TestAbortDiscardsStaged(t *testing.T) {
	l, _ := newLog(t, 64*1024)
	if err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	l.Abort()
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("aborted record replayed: %q", got)
	}
}

func TestCheckpointAdvancesHead(t *testing.T) {
	l, mem := newLog(t, 64*1024)
	_ = l.Append([]byte("applied"))
	_ = l.Commit()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !l.Empty() {
		t.Fatal("log not empty after checkpoint")
	}
	mem.Crash()
	l2, err := Attach(mem, scm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 0 {
		t.Fatalf("checkpointed record replayed: %q", got)
	}
}

func TestWrapAround(t *testing.T) {
	l, _ := newLog(t, 16*1024+headerSize)
	payload := bytes.Repeat([]byte{7}, 3000)
	total := 0
	// Fill, checkpoint, fill again several times so the cursor wraps.
	for round := 0; round < 10; round++ {
		n := 0
		for {
			err := l.Append(payload)
			if errors.Is(err, ErrFull) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, l); len(got) != n {
			t.Fatalf("round %d: replayed %d, want %d", round, len(got), n)
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total < 40 {
		t.Fatalf("wrap test appended only %d records", total)
	}
}

func TestRecordTooBig(t *testing.T) {
	l, _ := newLog(t, 32*1024)
	if err := l.Append(make([]byte, 20*1024)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("want ErrTooBig, got %v", err)
	}
}

func TestAttachUnformatted(t *testing.T) {
	mem := scm.New(scm.Config{Size: 64 * 1024})
	if _, err := Attach(mem, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	mem := scm.New(scm.Config{Size: 128 * 1024})
	l, err := Format(mem, 0, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append([]byte("record"))
	_ = l.Commit()
	// Corrupt the payload behind the log's back.
	if err := mem.Write(headerSize+recHeader, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// Property: crash at any point (with random cache evictions) yields a log
// that replays exactly the committed prefix of transactions, each intact.
func TestQuickCrashReplaysCommittedPrefix(t *testing.T) {
	f := func(seed int64, txSizes []uint8, crashAfter uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := scm.New(scm.Config{Size: 256 * 1024, TrackPersistence: true})
		l, err := Format(mem, scm.PageSize, 128*1024)
		if err != nil {
			return false
		}
		if len(txSizes) > 12 {
			txSizes = txSizes[:12]
		}
		committed := 0
		recs := 0
		for i, sz := range txSizes {
			// Each transaction is 1-3 records.
			n := int(sz)%3 + 1
			for j := 0; j < n; j++ {
				payload := []byte(fmt.Sprintf("tx%d-rec%d-%d", i, j, rng.Int()))
				if err := l.Append(payload); err != nil {
					return false
				}
			}
			if int(crashAfter) == i {
				break // crash with this tx staged but uncommitted
			}
			if err := l.Commit(); err != nil {
				return false
			}
			committed++
			recs += n
			mem.EvictRandom(rng, 0.2)
		}
		mem.Crash()
		l2, err := Attach(mem, scm.PageSize)
		if err != nil {
			return false
		}
		var got []string
		if err := l2.Replay(func(p []byte) error {
			got = append(got, string(p))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != recs {
			return false
		}
		// Records of committed transactions appear in order with the right
		// prefixes.
		k := 0
		for i := 0; i < committed; i++ {
			n := int(txSizes[i])%3 + 1
			for j := 0; j < n; j++ {
				want := fmt.Sprintf("tx%d-rec%d-", i, j)
				if len(got[k]) < len(want) || got[k][:len(want)] != want {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendCommit128B(b *testing.B) {
	mem := scm.New(scm.Config{Size: 8 << 20})
	l, err := Format(mem, 0, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			if err2 := l.Checkpoint(); err2 != nil {
				b.Fatal(err2)
			}
			if err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuickReplayIdempotent: replay of a committed log is idempotent —
// redo records are absolute writes, so applying them a second time over the
// post-replay image leaves the volume byte-identical, and a fresh image
// converges to the same state. Holds also when the writer crashes inside
// the commit publish window (tail flushed but not yet published), which is
// exactly the case recovery re-runs replay for.
func TestQuickReplayIdempotent(t *testing.T) {
	f := func(seed int64, nTx uint8, crashTx uint8, tornCommit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		const volSize = 4096
		mem := scm.New(scm.Config{Size: 256 * 1024, TrackPersistence: true})
		l, err := Format(mem, scm.PageSize, 128*1024)
		if err != nil {
			return false
		}
		inj := faultinject.New()
		l.SetFaults(inj)
		n := int(nTx)%10 + 1
		crash := int(crashTx) % n
		_, _ = faultinject.Run(func() error {
			for i := 0; i < n; i++ {
				recs := rng.Intn(3) + 1
				for j := 0; j < recs; j++ {
					data := make([]byte, rng.Intn(48)+1)
					rng.Read(data)
					payload := make([]byte, 4+len(data))
					putU32(payload, uint32(rng.Intn(volSize-64)))
					copy(payload[4:], data)
					if err := l.Append(payload); err != nil {
						return err
					}
				}
				if tornCommit && i == crash {
					// Crash between the records' flush+fence and the tail
					// publish: the transaction must vanish on replay.
					inj.CrashAt("journal.commit.publish", inj.Counts()["journal.commit.publish"]+1)
				}
				if err := l.Commit(); err != nil {
					return err
				}
			}
			return nil
		})
		mem.Crash()
		l2, err := Attach(mem, scm.PageSize)
		if err != nil {
			return false
		}
		apply := func(vol []byte) bool {
			return l2.Replay(func(p []byte) error {
				if len(p) < 4 {
					return errors.New("short record")
				}
				copy(vol[getU32(p):], p[4:])
				return nil
			}) == nil
		}
		vol := make([]byte, volSize)
		if !apply(vol) {
			return false
		}
		once := make([]byte, volSize)
		copy(once, vol)
		// Second replay over the already-recovered image: must be a no-op.
		if !apply(vol) || !bytes.Equal(vol, once) {
			return false
		}
		// Replay is stable: a fresh image converges to the same state.
		fresh := make([]byte, volSize)
		if !apply(fresh) || !apply(fresh) {
			return false
		}
		return bytes.Equal(fresh, once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
