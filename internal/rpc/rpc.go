// Package rpc provides the remote-procedure-call layer between libFS clients
// and the trusted file-system service (§5.1). The paper implements RPC with
// sockets on the loopback interface and a multithreaded server; this package
// offers that transport (see tcp.go, used by cmd/aerie-tfsd) plus a
// deterministic in-process transport that charges a calibrated round-trip
// latency, which the test suite and benchmark harness use so results do not
// depend on the host's loopback stack.
//
// The server supports a callback channel from the server to each client,
// used by the distributed lock service to revoke locks.
package rpc

import (
	"errors"
	"fmt"
	"sync"
)

// Status codes carried on responses.
const (
	statusOK  = 0
	statusErr = 1
)

// Errors.
var (
	ErrNoHandler = errors.New("rpc: no handler for method")
	ErrClosed    = errors.New("rpc: connection closed")
)

// RemoteError is an application error returned by a handler, reconstructed
// on the client side.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Handler processes one request from the identified client.
type Handler func(client uint64, req []byte) ([]byte, error)

// CallbackFn receives one-way server-to-client notifications.
type CallbackFn func(method uint32, payload []byte)

// Client is the caller's view of a connection to a Server.
type Client interface {
	// Call invokes method with req and returns the response.
	Call(method uint32, req []byte) ([]byte, error)
	// ClientID returns the server-assigned identity of this client.
	ClientID() uint64
	// Close tears down the connection.
	Close() error
}

// Server dispatches requests to registered handlers and can push callbacks
// to connected clients. It serves both transports simultaneously.
type Server struct {
	mu        sync.RWMutex
	handlers  map[uint32]Handler
	callbacks map[uint64]CallbackFn
	onClose   map[uint64]func()
	nextID    uint64
	closed    bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers:  make(map[uint32]Handler),
		callbacks: make(map[uint64]CallbackFn),
		onClose:   make(map[uint64]func()),
	}
}

// Register installs the handler for a method. Method 0 is reserved.
func (s *Server) Register(method uint32, h Handler) {
	if method == 0 {
		panic("rpc: method 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// OnDisconnect installs a hook invoked when the given client disconnects.
func (s *Server) OnDisconnect(client uint64, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose[client] = fn
}

// dispatch runs the handler for one request.
func (s *Server) dispatch(client uint64, method uint32, req []byte) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.handlers[method]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %d", ErrNoHandler, method)
	}
	return h(client, req)
}

// Callback pushes a one-way notification to a client. It is a no-op for
// unknown (already departed) clients.
func (s *Server) Callback(client uint64, method uint32, payload []byte) {
	s.mu.RLock()
	cb := s.callbacks[client]
	s.mu.RUnlock()
	if cb != nil {
		cb(method, payload)
	}
}

// connect registers a new client and returns its ID.
func (s *Server) connect(cb CallbackFn) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.callbacks[id] = cb
	return id
}

// disconnect removes a client and fires its disconnect hook.
func (s *Server) disconnect(client uint64) {
	s.mu.Lock()
	delete(s.callbacks, client)
	fn := s.onClose[client]
	delete(s.onClose, client)
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}
