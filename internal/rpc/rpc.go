// Package rpc provides the remote-procedure-call layer between libFS clients
// and the trusted file-system service (§5.1). The paper implements RPC with
// sockets on the loopback interface and a multithreaded server; this package
// offers that transport (see tcp.go, used by cmd/aerie-tfsd) plus a
// deterministic in-process transport that charges a calibrated round-trip
// latency, which the test suite and benchmark harness use so results do not
// depend on the host's loopback stack.
//
// The server supports a callback channel from the server to each client,
// used by the distributed lock service to revoke locks.
//
// Fault tolerance: each call carries a per-session request ID, and the
// server keeps a bounded per-session cache of completed results, so a
// mutation retried across a reconnect (the client could not tell whether
// the server executed it) is applied at most once — the retry returns the
// cached result instead of re-dispatching. Transport failures surface as
// typed errors: ErrTimeout when a per-call deadline expires, ErrUnreachable
// when retries are exhausted; IsTransport distinguishes both (and any other
// connection failure) from application errors, which cross the transport as
// *RemoteError.
package rpc

import (
	"errors"
	"fmt"
	"sync"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
)

// Status codes carried on responses.
const (
	statusOK  = 0
	statusErr = 1
	// statusErrCoded carries an application error with a stable error code
	// and a retry-after hint: payload = [u32 code][u32 retryAfterMs][msg].
	statusErrCoded = 2
)

// Errors.
var (
	ErrNoHandler = errors.New("rpc: no handler for method")
	ErrClosed    = errors.New("rpc: connection closed")
	// ErrTimeout reports that a call's deadline expired before the response
	// arrived. The request may or may not have executed on the server; the
	// request-ID dedup cache makes a retry safe, but Call does not retry
	// after a deadline on its own — the caller decides.
	ErrTimeout = errors.New("rpc: call deadline exceeded")
	// ErrUnreachable reports that the transport failed and bounded retries
	// with backoff did not restore it.
	ErrUnreachable = errors.New("rpc: server unreachable")
)

// RemoteError is an application error returned by a handler, reconstructed
// on the client side. Errors registered with RegisterErrorCode additionally
// carry a stable Code across the wire and unwrap to their sentinel, so
// errors.Is(err, sentinel) holds on the client while IsTransport stays
// false.
type RemoteError struct {
	Msg string
	// Code is the stable application error code (0 = uncoded).
	Code uint32
	// RetryAfterMs is the server's backpressure hint (0 = none); set on
	// shed requests so the client's jittered backoff has a floor.
	RetryAfterMs uint32

	sentinel error
}

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Unwrap exposes the registered sentinel for the error's code, making
// errors.Is work across the transport.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// NewRemoteError reconstructs a client-side RemoteError, resolving the
// code's registered sentinel. Transports use it when decoding responses.
func NewRemoteError(msg string, code, retryAfterMs uint32) *RemoteError {
	return &RemoteError{Msg: msg, Code: code, RetryAfterMs: retryAfterMs, sentinel: sentinelFor(code)}
}

// RetryAfterHinter is implemented by server-side errors that carry a
// backpressure hint (e.g. the TFS's admission-control shed error).
type RetryAfterHinter interface{ RetryAfterMs() uint32 }

// Error-code registry: protocol packages (fsproto) register stable codes
// for sentinel errors that must survive the wire typed. The registry is
// process-global because both ends must agree on it, exactly like method
// numbers.
var (
	codeMu     sync.RWMutex
	codeToErr  = map[uint32]error{}
	codedErrs  []error
	codedCodes []uint32
)

// RegisterErrorCode maps a stable nonzero application error code to a
// sentinel error. Server transports stamp the code onto responses whose
// handler error errors.Is the sentinel; client transports resolve the code
// back so the sentinel survives the round trip.
func RegisterErrorCode(code uint32, sentinel error) {
	if code == 0 || sentinel == nil {
		panic("rpc: RegisterErrorCode requires a nonzero code and a sentinel")
	}
	codeMu.Lock()
	defer codeMu.Unlock()
	if old, ok := codeToErr[code]; ok && old != sentinel {
		panic(fmt.Sprintf("rpc: error code %d registered twice", code))
	}
	codeToErr[code] = sentinel
	codedErrs = append(codedErrs, sentinel)
	codedCodes = append(codedCodes, code)
}

// ErrorCode returns the registered code err matches, or 0.
func ErrorCode(err error) uint32 {
	if err == nil {
		return 0
	}
	codeMu.RLock()
	defer codeMu.RUnlock()
	for i, sentinel := range codedErrs {
		if errors.Is(err, sentinel) {
			return codedCodes[i]
		}
	}
	return 0
}

func sentinelFor(code uint32) error {
	if code == 0 {
		return nil
	}
	codeMu.RLock()
	defer codeMu.RUnlock()
	return codeToErr[code]
}

// retryHint extracts a server-side error's backpressure hint, if any.
func retryHint(err error) uint32 {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterMs()
	}
	return 0
}

// remoteFromErr builds the client-visible RemoteError for a handler error,
// used by the in-process transport (the TCP transport performs the same
// mapping through the statusErrCoded frame).
func remoteFromErr(err error) *RemoteError {
	return NewRemoteError(err.Error(), ErrorCode(err), retryHint(err))
}

// IsTransport reports whether err is a transport-level failure (timeout,
// unreachable, dropped connection, closed client) rather than an
// application error returned by the remote handler. Application errors
// always cross the transport as *RemoteError; everything else means the
// request's fate is unknown to the caller.
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}

// Handler processes one request from the identified client.
type Handler func(client uint64, req []byte) ([]byte, error)

// CallbackFn receives one-way server-to-client notifications.
type CallbackFn func(method uint32, payload []byte)

// Client is the caller's view of a connection to a Server.
type Client interface {
	// Call invokes method with req and returns the response.
	Call(method uint32, req []byte) ([]byte, error)
	// ClientID returns the server-assigned identity of this client.
	ClientID() uint64
	// Close tears down the connection.
	Close() error
}

// IdempotentCaller is the optional client capability for caller-managed
// retries: the caller reserves a request ID once, then replays the same
// call under it after transport failures — across however many connections
// it takes — and the server's dedup cache guarantees at most one execution.
// Both built-in transports implement it.
type IdempotentCaller interface {
	// NextReqID reserves a fresh request ID.
	NextReqID() uint64
	// CallWithReqID is Call under a caller-chosen request ID. Calls with
	// the same ID return the first execution's result.
	CallWithReqID(method uint32, reqID uint64, req []byte) ([]byte, error)
}

// dedupCap bounds the per-session result cache. Retries arrive promptly
// (within the client's backoff schedule), so only a small window of recent
// results is ever consulted; older entries are evicted FIFO.
const dedupCap = 1024

// dedupEntry is one cached (or in-flight) request result.
type dedupEntry struct {
	done chan struct{} // closed when resp/err are valid
	resp []byte
	err  error
}

// session holds the per-client at-most-once state.
type session struct {
	mu    sync.Mutex
	cache map[uint64]*dedupEntry
	order []uint64 // insertion order for FIFO eviction
}

// Server dispatches requests to registered handlers and can push callbacks
// to connected clients. It serves both transports simultaneously.
type Server struct {
	mu        sync.RWMutex
	handlers  map[uint32]Handler
	callbacks map[uint64]CallbackFn
	sessions  map[uint64]*session
	onClose   map[uint64]func()
	nextID    uint64
	closed    bool

	faults *faultinject.Injector

	// Metrics resolved by SetObs; all nil (free no-ops) until then.
	obsDispatch  *obs.Histogram // server-side handler time, per request
	obsCall      *obs.Histogram // client-observed call time (in-proc transport)
	obsCalls     *obs.Counter
	obsCrossings *obs.Counter
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers:  make(map[uint32]Handler),
		callbacks: make(map[uint64]CallbackFn),
		sessions:  make(map[uint64]*session),
		onClose:   make(map[uint64]func()),
	}
}

// SetObs wires an observability sink: rpc.dispatch times every handler
// execution server-side, rpc.calls counts requests, and rpc.crossings
// counts simulated protection-domain crossings (each RPC models one
// user→TFS crossing and back, the kernel-crossing analogue this emulation
// charges via costmodel.RPCRoundTrip). A nil sink is inert.
func (s *Server) SetObs(sink *obs.Sink) {
	s.mu.Lock()
	s.obsDispatch = sink.Histogram("rpc.dispatch")
	s.obsCall = sink.Histogram("rpc.call")
	s.obsCalls = sink.Counter("rpc.calls")
	s.obsCrossings = sink.Counter("rpc.crossings")
	s.mu.Unlock()
}

// callHist returns the client-observed call histogram (may be nil). The
// in-proc transport shares the server's sink, as both live in one process.
func (s *Server) callHist() *obs.Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obsCall
}

// obsMetrics returns the resolved metrics (any may be nil).
func (s *Server) obsMetrics() (*obs.Histogram, *obs.Counter, *obs.Counter) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obsDispatch, s.obsCalls, s.obsCrossings
}

// SetFaults arms fault points on the server's transports (rpc.call,
// rpc.reply, rpc.tcp.respond). A nil injector is inert.
func (s *Server) SetFaults(inj *faultinject.Injector) {
	s.mu.Lock()
	s.faults = inj
	s.mu.Unlock()
}

func (s *Server) injector() *faultinject.Injector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults
}

// Register installs the handler for a method. Method 0 is reserved.
func (s *Server) Register(method uint32, h Handler) {
	if method == 0 {
		panic("rpc: method 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// OnDisconnect installs a hook invoked when the given client disconnects.
func (s *Server) OnDisconnect(client uint64, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose[client] = fn
}

// dispatch runs the handler for one request.
func (s *Server) dispatch(client uint64, method uint32, req []byte) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.handlers[method]
	hist := s.obsDispatch
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %d", ErrNoHandler, method)
	}
	t0 := hist.StartTimer()
	resp, err := h(client, req)
	hist.ObserveSince(t0)
	return resp, err
}

// dispatchDedup runs the handler for one request at most once per (client,
// reqID): a duplicate — a retry of a call whose response was lost — returns
// the cached result of the original execution, and a duplicate racing the
// original waits for it instead of re-executing. reqID 0 opts out (used by
// the handshake and non-idempotent-unaware legacy callers).
func (s *Server) dispatchDedup(client uint64, reqID uint64, method uint32, req []byte) ([]byte, error) {
	_, calls, crossings := s.obsMetrics()
	calls.Inc()
	// One request = one user→service protection crossing and its return.
	crossings.Add(2)
	if reqID == 0 {
		return s.dispatch(client, method, req)
	}
	s.mu.RLock()
	sess := s.sessions[client]
	s.mu.RUnlock()
	if sess == nil {
		return s.dispatch(client, method, req)
	}
	sess.mu.Lock()
	if e, ok := sess.cache[reqID]; ok {
		sess.mu.Unlock()
		<-e.done
		return e.resp, e.err
	}
	e := &dedupEntry{done: make(chan struct{})}
	sess.cache[reqID] = e
	sess.order = append(sess.order, reqID)
	for len(sess.order) > dedupCap {
		old := sess.cache[sess.order[0]]
		// Never evict an in-flight entry: a racing duplicate may be
		// parked on its done channel.
		if !entryDone(old) {
			break
		}
		delete(sess.cache, sess.order[0])
		sess.order = sess.order[1:]
	}
	sess.mu.Unlock()
	e.resp, e.err = s.dispatch(client, method, req)
	close(e.done)
	return e.resp, e.err
}

func entryDone(e *dedupEntry) bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Callback pushes a one-way notification to a client. It is a no-op for
// unknown (already departed) clients.
func (s *Server) Callback(client uint64, method uint32, payload []byte) {
	s.mu.RLock()
	cb := s.callbacks[client]
	s.mu.RUnlock()
	if cb != nil {
		cb(method, payload)
	}
}

// connect registers a new client and returns its ID.
func (s *Server) connect(cb CallbackFn) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.callbacks[id] = cb
	s.sessions[id] = &session{cache: make(map[uint64]*dedupEntry)}
	return id
}

// disconnect removes a client and fires its disconnect hook.
func (s *Server) disconnect(client uint64) {
	s.mu.Lock()
	delete(s.callbacks, client)
	delete(s.sessions, client)
	fn := s.onClose[client]
	delete(s.onClose, client)
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}
