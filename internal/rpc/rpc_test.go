package rpc

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/wire"
)

const (
	methodEcho = 1
	methodFail = 2
	methodWho  = 3
	methodPoke = 4
)

func newEchoServer(t *testing.T) *Server {
	t.Helper()
	srv := NewServer()
	srv.Register(methodEcho, func(_ uint64, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.Register(methodFail, func(_ uint64, _ []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	srv.Register(methodWho, func(client uint64, _ []byte) ([]byte, error) {
		w := wire.NewWriter(8)
		w.U64(client)
		return w.Bytes(), nil
	})
	srv.Register(methodPoke, func(client uint64, req []byte) ([]byte, error) {
		srv.Callback(client, 99, req)
		return nil, nil
	})
	return srv
}

func testClientBehavior(t *testing.T, dial func(cb CallbackFn) Client) {
	t.Helper()

	t.Run("echo", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		resp, err := c.Call(methodEcho, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "payload" {
			t.Fatalf("echo = %q", resp)
		}
	})

	t.Run("remote error", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		_, err := c.Call(methodFail, nil)
		var re *RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "boom") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("unknown method", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		if _, err := c.Call(77, nil); err == nil {
			t.Fatal("want error for unregistered method")
		}
	})

	t.Run("distinct client ids", func(t *testing.T) {
		a := dial(nil)
		b := dial(nil)
		defer a.Close()
		defer b.Close()
		ra, err := a.Call(methodWho, nil)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Call(methodWho, nil)
		if err != nil {
			t.Fatal(err)
		}
		ida := wire.NewReader(ra).U64()
		idb := wire.NewReader(rb).U64()
		if ida == idb {
			t.Fatalf("both clients got id %d", ida)
		}
		if ida != a.ClientID() || idb != b.ClientID() {
			t.Fatal("ClientID mismatch with server view")
		}
	})

	t.Run("callback", func(t *testing.T) {
		got := make(chan string, 1)
		c := dial(func(method uint32, payload []byte) {
			if method == 99 {
				got <- string(payload)
			}
		})
		defer c.Close()
		if _, err := c.Call(methodPoke, []byte("ding")); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-got:
			if v != "ding" {
				t.Fatalf("callback payload = %q", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("callback never arrived")
		}
	})

	t.Run("call after close", func(t *testing.T) {
		c := dial(nil)
		c.Close()
		if _, err := c.Call(methodEcho, nil); err == nil {
			t.Fatal("want error after close")
		}
	})

	t.Run("concurrent calls", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := c.Call(methodEcho, []byte("x"))
				if err == nil && string(resp) != "x" {
					err = errors.New("bad echo")
				}
				if err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	})
}

func TestInProcTransport(t *testing.T) {
	srv := newEchoServer(t)
	testClientBehavior(t, func(cb CallbackFn) Client {
		return DialInProc(srv, cb, nil, nil)
	})
}

func TestTCPTransport(t *testing.T) {
	srv := newEchoServer(t)
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	testClientBehavior(t, func(cb CallbackFn) Client {
		c, err := DialTCP(ln.Addr(), cb)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestDisconnectHookFires(t *testing.T) {
	srv := newEchoServer(t)
	c := DialInProc(srv, nil, nil, nil)
	fired := false
	srv.OnDisconnect(c.ClientID(), func() { fired = true })
	c.Close()
	if !fired {
		t.Fatal("disconnect hook did not fire")
	}
}

func TestCallbackToDepartedClientIsNoop(t *testing.T) {
	srv := newEchoServer(t)
	c := DialInProc(srv, func(uint32, []byte) { t.Fatal("callback after close") }, nil, nil)
	id := c.ClientID()
	c.Close()
	srv.Callback(id, 99, nil) // must not panic or deliver
}

func TestRegisterMethodZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewServer().Register(0, nil)
}

func TestInProcCopiesBuffers(t *testing.T) {
	srv := NewServer()
	var seen []byte
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) {
		seen = req
		return req, nil
	})
	c := DialInProc(srv, nil, nil, nil)
	defer c.Close()
	req := []byte("abc")
	resp, err := c.Call(1, req)
	if err != nil {
		t.Fatal(err)
	}
	req[0] = 'X'
	if seen[0] == 'X' {
		t.Fatal("handler aliases client request buffer")
	}
	seen[1] = 'Y'
	if resp[1] == 'Y' {
		t.Fatal("client response aliases handler buffer")
	}
}

func BenchmarkInProcCall(b *testing.B) {
	srv := NewServer()
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) { return req, nil })
	c := DialInProc(srv, nil, nil, nil)
	defer c.Close()
	payload := make([]byte, 128)
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	srv := NewServer()
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) { return req, nil })
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	c, err := DialTCP(ln.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTCPCallDeadline(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	srv.Register(1, func(_ uint64, _ []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := DialTCPOpts(ln.Addr(), nil, ClientOptions{
		CallTimeout: 150 * time.Millisecond,
		MaxRetries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(1, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !IsTransport(err) {
		t.Fatal("ErrTimeout must classify as transport failure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call blocked for %v despite deadline", elapsed)
	}
}

func TestTCPAtMostOnceAcrossReconnect(t *testing.T) {
	srv := NewServer()
	var execs atomic.Int64
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) {
		execs.Add(1)
		return req, nil
	})
	// Drop the connection after the first dispatch, before the response
	// leaves: the client cannot tell whether the mutation applied.
	inj := faultinject.New()
	inj.FailAt("rpc.tcp.respond", 1, nil)
	srv.SetFaults(inj)
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := DialTCPOpts(ln.Addr(), nil, ClientOptions{
		CallTimeout: 5 * time.Second,
		MaxRetries:  3,
		RetryBase:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("mutate"))
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if string(resp) != "mutate" {
		t.Fatalf("resp = %q (retry must return the original result)", resp)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want exactly 1", n)
	}
	// The session survived the broken connection: same identity, and a
	// fresh request ID executes normally.
	if _, err := c.Call(1, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 2 {
		t.Fatalf("handler executed %d times after second call, want 2", n)
	}
}

func TestTCPSessionGraceExpiryRejectsRejoin(t *testing.T) {
	srv := newEchoServer(t)
	ln, err := ListenTCPGrace(srv, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	inj := faultinject.New()
	inj.FailAt("rpc.tcp.respond", 1, nil)
	srv.SetFaults(inj)
	disconnected := make(chan struct{})
	c, err := DialTCPOpts(ln.Addr(), nil, ClientOptions{
		CallTimeout: 2 * time.Second,
		MaxRetries:  2,
		RetryBase:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.OnDisconnect(c.ClientID(), func() { close(disconnected) })
	// With zero grace, losing the only connection ends the session
	// immediately; the retry's rejoin must be rejected, not silently
	// accepted as a ghost of the dead session.
	_, err = c.Call(methodEcho, []byte("x"))
	if err == nil {
		t.Fatal("want failure: session died with the connection")
	}
	if !IsTransport(err) {
		t.Fatalf("err = %v, want transport classification", err)
	}
	select {
	case <-disconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect hook never fired")
	}
}

func TestIsTransportClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&RemoteError{Msg: "validation"}, false},
		{ErrTimeout, true},
		{ErrUnreachable, true},
		{ErrClosed, true},
		{errors.New("connection reset"), true},
	}
	for _, tc := range cases {
		if got := IsTransport(tc.err); got != tc.want {
			t.Errorf("IsTransport(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestDedupConcurrentDuplicateWaits(t *testing.T) {
	srv := NewServer()
	var execs atomic.Int64
	gate := make(chan struct{})
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) {
		execs.Add(1)
		<-gate
		return req, nil
	})
	id := srv.connect(nil)
	defer srv.disconnect(id)
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.dispatchDedup(id, 7, 1, []byte("x"))
			if err != nil {
				t.Errorf("dispatch: %v", err)
			}
			results[i] = resp
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let both goroutines reach the cache
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times for duplicate reqID, want 1", n)
	}
	if string(results[0]) != "x" || string(results[1]) != "x" {
		t.Fatalf("results = %q, %q", results[0], results[1])
	}
}
