package rpc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/wire"
)

const (
	methodEcho = 1
	methodFail = 2
	methodWho  = 3
	methodPoke = 4
)

func newEchoServer(t *testing.T) *Server {
	t.Helper()
	srv := NewServer()
	srv.Register(methodEcho, func(_ uint64, req []byte) ([]byte, error) {
		return req, nil
	})
	srv.Register(methodFail, func(_ uint64, _ []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	srv.Register(methodWho, func(client uint64, _ []byte) ([]byte, error) {
		w := wire.NewWriter(8)
		w.U64(client)
		return w.Bytes(), nil
	})
	srv.Register(methodPoke, func(client uint64, req []byte) ([]byte, error) {
		srv.Callback(client, 99, req)
		return nil, nil
	})
	return srv
}

func testClientBehavior(t *testing.T, dial func(cb CallbackFn) Client) {
	t.Helper()

	t.Run("echo", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		resp, err := c.Call(methodEcho, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "payload" {
			t.Fatalf("echo = %q", resp)
		}
	})

	t.Run("remote error", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		_, err := c.Call(methodFail, nil)
		var re *RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "boom") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("unknown method", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		if _, err := c.Call(77, nil); err == nil {
			t.Fatal("want error for unregistered method")
		}
	})

	t.Run("distinct client ids", func(t *testing.T) {
		a := dial(nil)
		b := dial(nil)
		defer a.Close()
		defer b.Close()
		ra, err := a.Call(methodWho, nil)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Call(methodWho, nil)
		if err != nil {
			t.Fatal(err)
		}
		ida := wire.NewReader(ra).U64()
		idb := wire.NewReader(rb).U64()
		if ida == idb {
			t.Fatalf("both clients got id %d", ida)
		}
		if ida != a.ClientID() || idb != b.ClientID() {
			t.Fatal("ClientID mismatch with server view")
		}
	})

	t.Run("callback", func(t *testing.T) {
		got := make(chan string, 1)
		c := dial(func(method uint32, payload []byte) {
			if method == 99 {
				got <- string(payload)
			}
		})
		defer c.Close()
		if _, err := c.Call(methodPoke, []byte("ding")); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-got:
			if v != "ding" {
				t.Fatalf("callback payload = %q", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("callback never arrived")
		}
	})

	t.Run("call after close", func(t *testing.T) {
		c := dial(nil)
		c.Close()
		if _, err := c.Call(methodEcho, nil); err == nil {
			t.Fatal("want error after close")
		}
	})

	t.Run("concurrent calls", func(t *testing.T) {
		c := dial(nil)
		defer c.Close()
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := c.Call(methodEcho, []byte("x"))
				if err == nil && string(resp) != "x" {
					err = errors.New("bad echo")
				}
				if err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	})
}

func TestInProcTransport(t *testing.T) {
	srv := newEchoServer(t)
	testClientBehavior(t, func(cb CallbackFn) Client {
		return DialInProc(srv, cb, nil, nil)
	})
}

func TestTCPTransport(t *testing.T) {
	srv := newEchoServer(t)
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	testClientBehavior(t, func(cb CallbackFn) Client {
		c, err := DialTCP(ln.Addr(), cb)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestDisconnectHookFires(t *testing.T) {
	srv := newEchoServer(t)
	c := DialInProc(srv, nil, nil, nil)
	fired := false
	srv.OnDisconnect(c.ClientID(), func() { fired = true })
	c.Close()
	if !fired {
		t.Fatal("disconnect hook did not fire")
	}
}

func TestCallbackToDepartedClientIsNoop(t *testing.T) {
	srv := newEchoServer(t)
	c := DialInProc(srv, func(uint32, []byte) { t.Fatal("callback after close") }, nil, nil)
	id := c.ClientID()
	c.Close()
	srv.Callback(id, 99, nil) // must not panic or deliver
}

func TestRegisterMethodZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewServer().Register(0, nil)
}

func TestInProcCopiesBuffers(t *testing.T) {
	srv := NewServer()
	var seen []byte
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) {
		seen = req
		return req, nil
	})
	c := DialInProc(srv, nil, nil, nil)
	defer c.Close()
	req := []byte("abc")
	resp, err := c.Call(1, req)
	if err != nil {
		t.Fatal(err)
	}
	req[0] = 'X'
	if seen[0] == 'X' {
		t.Fatal("handler aliases client request buffer")
	}
	seen[1] = 'Y'
	if resp[1] == 'Y' {
		t.Fatal("client response aliases handler buffer")
	}
}

func BenchmarkInProcCall(b *testing.B) {
	srv := NewServer()
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) { return req, nil })
	c := DialInProc(srv, nil, nil, nil)
	defer c.Close()
	payload := make([]byte, 128)
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	srv := NewServer()
	srv.Register(1, func(_ uint64, req []byte) ([]byte, error) { return req, nil })
	ln, err := ListenTCP(srv, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	c, err := DialTCP(ln.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}
