package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// InProcClient is the in-process transport: calls run the handler on the
// caller's goroutine after charging the configured RPC round-trip latency.
// It is deterministic (no sockets, no scheduler variance) and is the default
// transport for tests and the benchmark harness. A per-call copy of the
// request and response preserves the no-shared-memory semantics of a real
// socket transport, so handlers cannot accidentally alias client buffers.
//
// Fault points rpc.call and rpc.reply bracket the dispatch: a fault at
// rpc.call loses the request before the server sees it, one at rpc.reply
// loses only the response — the asymmetry retried mutations must survive.
type InProcClient struct {
	srv    *Server
	id     uint64
	costs  *costmodel.Costs
	tracer *costmodel.Tracer
	reqSeq atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// DialInProc connects to srv. cb (may be nil) receives server callbacks;
// costs (may be nil) supplies the injected round-trip latency; tracer (may
// be nil) records server-occupancy phases for the scalability simulator.
func DialInProc(srv *Server, cb CallbackFn, costs *costmodel.Costs, tracer *costmodel.Tracer) *InProcClient {
	id := srv.connect(cb)
	return &InProcClient{srv: srv, id: id, costs: costs, tracer: tracer}
}

// Call implements Client.
func (c *InProcClient) Call(method uint32, req []byte) ([]byte, error) {
	return c.CallWithReqID(method, c.reqSeq.Add(1), req)
}

// NextReqID implements IdempotentCaller.
func (c *InProcClient) NextReqID() uint64 { return c.reqSeq.Add(1) }

// CallWithReqID implements IdempotentCaller.
func (c *InProcClient) CallWithReqID(method uint32, reqID uint64, req []byte) ([]byte, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	callHist := c.srv.callHist()
	t0 := callHist.StartTimer()
	defer func() { callHist.ObserveSince(t0) }()
	if c.costs != nil {
		if c.costs.RPCBlocking {
			costmodel.Block(c.costs.RPCRoundTrip)
		} else {
			costmodel.Spin(c.costs.RPCRoundTrip)
		}
	}
	faults := c.srv.injector()
	if err := faults.Hit("rpc.call"); err != nil {
		// The request never reached the server.
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	reqCopy := make([]byte, len(req))
	copy(reqCopy, req)
	c.tracer.EnterResource("tfs", costmodel.Exclusive)
	resp, err := c.srv.dispatchDedup(c.id, reqID, method, reqCopy)
	c.tracer.ExitResource("tfs")
	if err != nil {
		// Errors cross the transport as strings, as they would over a
		// socket; registered codes survive as typed sentinels.
		return nil, remoteFromErr(err)
	}
	// The server executed the call; a fault here loses the response.
	if ferr := faults.Hit("rpc.reply"); ferr != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, ferr)
	}
	respCopy := make([]byte, len(resp))
	copy(respCopy, resp)
	return respCopy, nil
}

// ClientID implements Client.
func (c *InProcClient) ClientID() uint64 { return c.id }

// Close implements Client.
func (c *InProcClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.srv.disconnect(c.id)
	return nil
}
