package rpc

import (
	"sync"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

// InProcClient is the in-process transport: calls run the handler on the
// caller's goroutine after charging the configured RPC round-trip latency.
// It is deterministic (no sockets, no scheduler variance) and is the default
// transport for tests and the benchmark harness. A per-call copy of the
// request and response preserves the no-shared-memory semantics of a real
// socket transport, so handlers cannot accidentally alias client buffers.
type InProcClient struct {
	srv    *Server
	id     uint64
	costs  *costmodel.Costs
	tracer *costmodel.Tracer

	mu     sync.Mutex
	closed bool
}

// DialInProc connects to srv. cb (may be nil) receives server callbacks;
// costs (may be nil) supplies the injected round-trip latency; tracer (may
// be nil) records server-occupancy phases for the scalability simulator.
func DialInProc(srv *Server, cb CallbackFn, costs *costmodel.Costs, tracer *costmodel.Tracer) *InProcClient {
	id := srv.connect(cb)
	return &InProcClient{srv: srv, id: id, costs: costs, tracer: tracer}
}

// Call implements Client.
func (c *InProcClient) Call(method uint32, req []byte) ([]byte, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if c.costs != nil {
		costmodel.Spin(c.costs.RPCRoundTrip)
	}
	reqCopy := make([]byte, len(req))
	copy(reqCopy, req)
	c.tracer.EnterResource("tfs", costmodel.Exclusive)
	resp, err := c.srv.dispatch(c.id, method, reqCopy)
	c.tracer.ExitResource("tfs")
	if err != nil {
		// Errors cross the transport as strings, as they would over a
		// socket.
		return nil, &RemoteError{Msg: err.Error()}
	}
	respCopy := make([]byte, len(resp))
	copy(respCopy, resp)
	return respCopy, nil
}

// ClientID implements Client.
func (c *InProcClient) ClientID() uint64 { return c.id }

// Close implements Client.
func (c *InProcClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.srv.disconnect(c.id)
	return nil
}
