package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/aerie-fs/aerie/internal/wire"
)

// TCP transport: the paper's loopback-socket RPC. Frames are
// [u32 length][u32 tag][payload] where tag is the method number on requests
// and callbacks, and the status code on responses.
//
// A client session may span several connections (so one thread blocked in a
// long call — e.g. waiting for a lock — does not serialize the whole
// process): the first connection performs a HELLO handshake that assigns
// the client ID and optionally registers a callback dial-back address;
// extra connections join the session by quoting the ID. The session ends
// when the first connection closes.

const (
	methodHello = 0
	maxFrame    = 64 << 20
)

func writeFrame(w io.Writer, tag uint32, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], tag)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	tag := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}

// TCPListener serves a Server over TCP.
type TCPListener struct {
	srv *Server
	ln  net.Listener

	mu     sync.Mutex
	closed bool
}

// ListenTCP starts serving srv on addr (e.g. "127.0.0.1:0") and returns the
// listener. Serving proceeds on background goroutines until Close.
func ListenTCP(srv *Server, addr string) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &TCPListener{srv: srv, ln: ln}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting connections.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.ln.Close()
}

func (l *TCPListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.serveConn(conn)
	}
}

func (l *TCPListener) serveConn(conn net.Conn) {
	defer conn.Close()
	tag, payload, err := readFrame(conn)
	if err != nil || tag != methodHello {
		return
	}
	r := wire.NewReader(payload)
	existing := r.U64()
	cbAddr := r.Str()
	if r.Finish() != nil {
		return
	}
	var id uint64
	primary := false
	if existing != 0 {
		id = existing
	} else {
		primary = true
		var cbConn net.Conn
		var cbMu sync.Mutex
		if cbAddr != "" {
			cbConn, err = net.Dial("tcp", cbAddr)
			if err != nil {
				return
			}
			defer cbConn.Close()
		}
		id = l.srv.connect(func(method uint32, p []byte) {
			if cbConn == nil {
				return
			}
			cbMu.Lock()
			defer cbMu.Unlock()
			_ = writeFrame(cbConn, method, p)
		})
		defer l.srv.disconnect(id)
	}
	_ = primary
	w := wire.NewWriter(16)
	w.U64(id)
	if err := writeFrame(conn, statusOK, w.Bytes()); err != nil {
		return
	}
	for {
		method, req, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, err := l.srv.dispatch(id, method, req)
		if err != nil {
			if werr := writeFrame(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeFrame(conn, statusOK, resp); err != nil {
			return
		}
	}
}

// TCPClient is a client session over one or more TCP connections.
type TCPClient struct {
	addr string
	id   uint64

	mu      sync.Mutex
	idle    []net.Conn
	primary net.Conn
	cbLn    net.Listener
	closed  bool
}

// DialTCP connects to a TCPListener at addr. cb, if non-nil, receives
// server callbacks via a dial-back connection.
func DialTCP(addr string, cb CallbackFn) (*TCPClient, error) {
	c := &TCPClient{addr: addr}
	cbAddr := ""
	if cb != nil {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.cbLn = ln
		cbAddr = ln.Addr().String()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			for {
				method, payload, err := readFrame(conn)
				if err != nil {
					return
				}
				cb(method, payload)
			}
		}()
	}
	conn, id, err := c.dialConn(0, cbAddr)
	if err != nil {
		if c.cbLn != nil {
			c.cbLn.Close()
		}
		return nil, err
	}
	c.id = id
	c.primary = conn
	c.idle = append(c.idle, conn)
	return c, nil
}

func (c *TCPClient) dialConn(existing uint64, cbAddr string) (net.Conn, uint64, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, 0, err
	}
	w := wire.NewWriter(32)
	w.U64(existing)
	w.String(cbAddr)
	if err := writeFrame(conn, methodHello, w.Bytes()); err != nil {
		conn.Close()
		return nil, 0, err
	}
	status, payload, err := readFrame(conn)
	if err != nil || status != statusOK {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: hello failed: %v", err)
	}
	r := wire.NewReader(payload)
	id := r.U64()
	if err := r.Finish(); err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, id, nil
}

// Call implements Client. Each call uses a free connection from the pool,
// dialing a new session connection when all are busy.
func (c *TCPClient) Call(method uint32, req []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	var conn net.Conn
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	c.mu.Unlock()
	if conn == nil {
		var err error
		conn, _, err = c.dialConn(c.id, "")
		if err != nil {
			return nil, err
		}
	}
	if err := writeFrame(conn, method, req); err != nil {
		conn.Close()
		return nil, err
	}
	status, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		conn.Close()
	} else {
		c.idle = append(c.idle, conn)
	}
	c.mu.Unlock()
	if status != statusOK {
		return nil, &RemoteError{Msg: string(payload)}
	}
	return payload, nil
}

// ClientID implements Client.
func (c *TCPClient) ClientID() uint64 { return c.id }

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	if c.cbLn != nil {
		c.cbLn.Close()
	}
	return nil
}
