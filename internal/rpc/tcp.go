package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/wire"
)

// TCP transport: the paper's loopback-socket RPC. Request frames are
// [u32 length][u32 tag][u64 reqID][payload] where tag is the method number
// and reqID identifies the call for at-most-once dedup (0 opts out, used by
// the handshake). Response and callback frames are [u32 length][u32 tag]
// [payload] with the status code or callback method as the tag.
//
// A client session may span several connections (so one thread blocked in a
// long call — e.g. waiting for a lock — does not serialize the whole
// process): the first connection performs a HELLO handshake that assigns
// the client ID and optionally registers a callback dial-back address;
// extra connections join the session by quoting the ID. The session is
// refcounted by its live connections and survives losing all of them for a
// grace period, so a client that retries a call across a broken connection
// rejoins the same session (and its dedup cache) instead of being treated
// as a new identity. Only when the grace expires with no connection does
// the server disconnect the session, firing lease/lock cleanup.
const (
	methodHello = 0
	maxFrame    = 64 << 20

	// DefaultSessionGrace is how long a TCP session outlives its last
	// connection before the server declares the client dead.
	DefaultSessionGrace = 2 * time.Second
)

// Default client fault-tolerance parameters (see ClientOptions).
const (
	DefaultCallTimeout = 30 * time.Second
	DefaultMaxRetries  = 3
	DefaultRetryBase   = 25 * time.Millisecond
	DefaultRetryMax    = time.Second
)

func writeFrame(w io.Writer, tag uint32, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], tag)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	tag := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}

func writeRequestFrame(w io.Writer, method uint32, reqID uint64, payload []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], method)
	binary.LittleEndian.PutUint64(hdr[8:], reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRequestFrame(r io.Reader) (uint32, uint64, []byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	method := binary.LittleEndian.Uint32(hdr[4:8])
	reqID := binary.LittleEndian.Uint64(hdr[8:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return method, reqID, payload, nil
}

// tcpSession is the server-side state of one client session, shared by all
// of its connections.
type tcpSession struct {
	id   uint64
	refs int // live connections; guarded by the listener's mu

	cbMu sync.Mutex
	cb   net.Conn

	graceTimer *time.Timer
}

// TCPListener serves a Server over TCP.
type TCPListener struct {
	srv   *Server
	ln    net.Listener
	grace time.Duration

	mu       sync.Mutex
	sessions map[uint64]*tcpSession
	closed   bool
}

// ListenTCP starts serving srv on addr (e.g. "127.0.0.1:0") and returns the
// listener. Serving proceeds on background goroutines until Close.
func ListenTCP(srv *Server, addr string) (*TCPListener, error) {
	return ListenTCPGrace(srv, addr, DefaultSessionGrace)
}

// ListenTCPGrace is ListenTCP with an explicit session grace period: how
// long a session with no live connections waits for a rejoin before the
// server treats the client as dead. Zero disconnects immediately.
func ListenTCPGrace(srv *Server, addr string, grace time.Duration) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &TCPListener{srv: srv, ln: ln, grace: grace, sessions: make(map[uint64]*tcpSession)}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting connections.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.ln.Close()
}

func (l *TCPListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.serveConn(conn)
	}
}

// joinSession attaches a new connection to an existing session, cancelling
// any pending grace expiry. It returns nil if the session is unknown (never
// existed, or its grace already expired — the client must re-HELLO as a new
// identity).
func (l *TCPListener) joinSession(id uint64) *tcpSession {
	l.mu.Lock()
	defer l.mu.Unlock()
	sess := l.sessions[id]
	if sess == nil {
		return nil
	}
	sess.refs++
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
		sess.graceTimer = nil
	}
	return sess
}

// releaseSession drops one connection's reference. When the last reference
// goes, the session lingers for the grace period (a retrying client rejoins
// within it), then disconnects.
func (l *TCPListener) releaseSession(sess *tcpSession) {
	l.mu.Lock()
	sess.refs--
	if sess.refs > 0 {
		l.mu.Unlock()
		return
	}
	if l.grace <= 0 {
		delete(l.sessions, sess.id)
		l.mu.Unlock()
		l.endSession(sess)
		return
	}
	sess.graceTimer = time.AfterFunc(l.grace, func() {
		l.mu.Lock()
		if sess.refs > 0 || l.sessions[sess.id] != sess {
			l.mu.Unlock()
			return
		}
		delete(l.sessions, sess.id)
		l.mu.Unlock()
		l.endSession(sess)
	})
	l.mu.Unlock()
}

func (l *TCPListener) endSession(sess *tcpSession) {
	l.srv.disconnect(sess.id)
	sess.cbMu.Lock()
	if sess.cb != nil {
		sess.cb.Close()
		sess.cb = nil
	}
	sess.cbMu.Unlock()
}

func (l *TCPListener) serveConn(conn net.Conn) {
	defer conn.Close()
	method, _, payload, err := readRequestFrame(conn)
	if err != nil || method != methodHello {
		return
	}
	r := wire.NewReader(payload)
	existing := r.U64()
	cbAddr := r.Str()
	if r.Finish() != nil {
		return
	}
	var sess *tcpSession
	if existing != 0 {
		if sess = l.joinSession(existing); sess == nil {
			_ = writeFrame(conn, statusErr, []byte("rpc: unknown session"))
			return
		}
	} else {
		var cbConn net.Conn
		if cbAddr != "" {
			cbConn, err = net.Dial("tcp", cbAddr)
			if err != nil {
				return
			}
		}
		sess = &tcpSession{refs: 1, cb: cbConn}
		sess.id = l.srv.connect(func(cbMethod uint32, p []byte) {
			sess.cbMu.Lock()
			defer sess.cbMu.Unlock()
			if sess.cb != nil {
				_ = writeFrame(sess.cb, cbMethod, p)
			}
		})
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			l.endSession(sess)
			return
		}
		l.sessions[sess.id] = sess
		l.mu.Unlock()
	}
	defer l.releaseSession(sess)
	w := wire.NewWriter(16)
	w.U64(sess.id)
	if err := writeFrame(conn, statusOK, w.Bytes()); err != nil {
		return
	}
	for {
		method, reqID, req, err := readRequestFrame(conn)
		if err != nil {
			return
		}
		resp, err := l.srv.dispatchDedup(sess.id, reqID, method, req)
		// Fault point: the server executed the request but the connection
		// dies before the response leaves — the client must retry over a
		// fresh connection and the dedup cache must absorb the duplicate.
		if l.srv.injector().Hit("rpc.tcp.respond") != nil {
			return
		}
		if err != nil {
			status, p := encodeErrFrame(err)
			if werr := writeFrame(conn, status, p); werr != nil {
				return
			}
			continue
		}
		if err := writeFrame(conn, statusOK, resp); err != nil {
			return
		}
	}
}

// ClientOptions tunes the TCP client's fault tolerance.
type ClientOptions struct {
	// CallTimeout bounds each call attempt (write + response). On expiry
	// the attempt's connection is torn down and Call returns ErrTimeout.
	// 0 selects DefaultCallTimeout; negative disables the deadline.
	CallTimeout time.Duration
	// MaxRetries is how many times a call is retried after a transient
	// connection failure (broken pipe, reset, refused dial). Retries reuse
	// the call's request ID, so the server applies the mutation at most
	// once. Negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries; the delay doubles from RetryBase and each step is jittered
	// in [delay/2, delay). 0 selects the defaults.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Obs, when non-nil, receives client-side call metrics: the rpc.call
	// latency histogram plus rpc.client.calls / rpc.retries / rpc.timeouts
	// counters. (The server publishes its own rpc.calls / rpc.dispatch on
	// its sink; over TCP the two sinks are different processes' views.)
	Obs *obs.Sink
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	return o
}

// TCPClient is a client session over one or more TCP connections.
type TCPClient struct {
	addr   string
	id     uint64
	opts   ClientOptions
	reqSeq atomic.Uint64

	// Metrics resolved once at construction; all nil (free no-ops) when
	// opts.Obs is nil.
	obsCalls    *obs.Counter
	obsRetries  *obs.Counter
	obsTimeouts *obs.Counter
	obsCall     *obs.Histogram

	mu     sync.Mutex
	idle   []net.Conn
	cbLn   net.Listener
	closed bool
}

// DialTCP connects to a TCPListener at addr with default fault-tolerance
// options. cb, if non-nil, receives server callbacks via a dial-back
// connection.
func DialTCP(addr string, cb CallbackFn) (*TCPClient, error) {
	return DialTCPOpts(addr, cb, ClientOptions{})
}

// DialTCPOpts is DialTCP with explicit fault-tolerance options.
func DialTCPOpts(addr string, cb CallbackFn, opts ClientOptions) (*TCPClient, error) {
	c := &TCPClient{addr: addr, opts: opts.withDefaults()}
	c.obsCalls = c.opts.Obs.Counter("rpc.client.calls")
	c.obsRetries = c.opts.Obs.Counter("rpc.retries")
	c.obsTimeouts = c.opts.Obs.Counter("rpc.timeouts")
	c.obsCall = c.opts.Obs.Histogram("rpc.call")
	cbAddr := ""
	if cb != nil {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.cbLn = ln
		cbAddr = ln.Addr().String()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			for {
				method, payload, err := readFrame(conn)
				if err != nil {
					return
				}
				cb(method, payload)
			}
		}()
	}
	conn, id, err := c.dialConn(0, cbAddr)
	if err != nil {
		if c.cbLn != nil {
			c.cbLn.Close()
		}
		return nil, err
	}
	c.id = id
	c.idle = append(c.idle, conn)
	return c, nil
}

func (c *TCPClient) dialConn(existing uint64, cbAddr string) (net.Conn, uint64, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, 0, err
	}
	if c.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	}
	w := wire.NewWriter(32)
	w.U64(existing)
	w.String(cbAddr)
	if err := writeRequestFrame(conn, methodHello, 0, w.Bytes()); err != nil {
		conn.Close()
		return nil, 0, err
	}
	status, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: hello failed: %v", err)
	}
	if status != statusOK {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: hello rejected: %s", payload)
	}
	if c.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	r := wire.NewReader(payload)
	id := r.U64()
	if err := r.Finish(); err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, id, nil
}

// backoff returns the jittered exponential delay before retry attempt n
// (0-based): doubling from RetryBase, capped at RetryMax, jittered into
// [d/2, d) so a herd of retrying clients decorrelates.
func (c *TCPClient) backoff(n int) time.Duration {
	d := c.opts.RetryBase << uint(n)
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half))
}

// Call implements Client. Each call uses a free connection from the pool,
// dialing a new session connection when all are busy. A per-attempt
// deadline bounds the wait for the response (ErrTimeout on expiry — the
// server may still execute the request); transient connection failures are
// retried with jittered exponential backoff under the same request ID, so
// the server's dedup cache applies a retried mutation at most once. When
// retries are exhausted Call returns ErrUnreachable wrapping the last
// failure.
func (c *TCPClient) Call(method uint32, req []byte) ([]byte, error) {
	return c.CallWithReqID(method, c.reqSeq.Add(1), req)
}

// NextReqID implements IdempotentCaller.
func (c *TCPClient) NextReqID() uint64 { return c.reqSeq.Add(1) }

// CallWithReqID implements IdempotentCaller.
func (c *TCPClient) CallWithReqID(method uint32, reqID uint64, req []byte) ([]byte, error) {
	c.obsCalls.Inc()
	t0 := c.obsCall.StartTimer()
	defer c.obsCall.ObserveSince(t0)
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err, final := c.tryCall(method, reqID, req)
		if final {
			if errors.Is(err, ErrTimeout) {
				c.obsTimeouts.Inc()
			}
			return resp, err
		}
		lastErr = err
		if attempt >= c.opts.MaxRetries {
			break
		}
		c.obsRetries.Inc()
		time.Sleep(c.backoff(attempt))
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("%w: %d attempts: %v", ErrUnreachable, c.opts.MaxRetries+1, lastErr)
}

// tryCall makes one attempt. final reports that the result should be
// returned as-is (success, application error, timeout, or client closed)
// rather than retried.
func (c *TCPClient) tryCall(method uint32, reqID uint64, req []byte) (resp []byte, err error, final bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed, true
	}
	var conn net.Conn
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	c.mu.Unlock()
	if conn == nil {
		conn, _, err = c.dialConn(c.id, "")
		if err != nil {
			return nil, err, false
		}
	}
	if c.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	}
	if err := writeRequestFrame(conn, method, reqID, req); err != nil {
		conn.Close()
		return nil, err, false
	}
	status, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			// The request may be executing; surface the deadline rather
			// than silently waiting forever. The caller may retry — the
			// dedup cache makes that safe — but that is its decision.
			return nil, fmt.Errorf("%w: %v", ErrTimeout, err), true
		}
		return nil, err, false
	}
	if c.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	c.mu.Lock()
	if c.closed {
		conn.Close()
	} else {
		c.idle = append(c.idle, conn)
	}
	c.mu.Unlock()
	if status != statusOK {
		return nil, decodeErrFrame(status, payload), true
	}
	return payload, nil, true
}

// encodeErrFrame serializes a handler error for the response frame. Errors
// with a registered stable code travel as statusErrCoded so the client can
// reconstruct the typed sentinel; everything else stays a plain message.
func encodeErrFrame(err error) (uint32, []byte) {
	code := ErrorCode(err)
	if code == 0 {
		return statusErr, []byte(err.Error())
	}
	msg := err.Error()
	p := make([]byte, 8+len(msg))
	binary.LittleEndian.PutUint32(p[0:4], code)
	binary.LittleEndian.PutUint32(p[4:8], retryHint(err))
	copy(p[8:], msg)
	return statusErrCoded, p
}

// decodeErrFrame reconstructs the application error from a non-OK response.
func decodeErrFrame(status uint32, payload []byte) error {
	if status == statusErrCoded && len(payload) >= 8 {
		code := binary.LittleEndian.Uint32(payload[0:4])
		retryMs := binary.LittleEndian.Uint32(payload[4:8])
		return NewRemoteError(string(payload[8:]), code, retryMs)
	}
	return &RemoteError{Msg: string(payload)}
}

// ClientID implements Client.
func (c *TCPClient) ClientID() uint64 { return c.id }

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	if c.cbLn != nil {
		c.cbLn.Close()
	}
	return nil
}
