package costmodel

import (
	"testing"
	"time"
)

func TestSpinWaitsApproximately(t *testing.T) {
	start := time.Now()
	Spin(2 * time.Millisecond)
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("spin returned after %v", d)
	}
	// Zero and negative are free.
	start = time.Now()
	Spin(0)
	Spin(-time.Second)
	if d := time.Since(start); d > time.Millisecond {
		t.Fatalf("no-op spins took %v", d)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Load() != 3 {
		t.Fatalf("counter = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTracerRecordsLocalAndResourcePhases(t *testing.T) {
	tr := NewTracer()
	tr.BeginOp("op")
	Spin(200 * time.Microsecond) // local
	tr.EnterResource("lock:a", Exclusive)
	Spin(300 * time.Microsecond)
	tr.ExitResource("lock:a")
	Spin(100 * time.Microsecond) // trailing local
	tr.EndOp()

	ops := tr.Ops()
	if len(ops) != 1 {
		t.Fatalf("ops = %d", len(ops))
	}
	op := ops[0]
	if op.Name != "op" || op.Total < 600*time.Microsecond {
		t.Fatalf("op = %+v", op)
	}
	var local, held time.Duration
	for _, ph := range op.Phases {
		if ph.Resource == "" {
			local += ph.Dur
		} else {
			if ph.Resource != "lock:a" || ph.Mode != Exclusive {
				t.Fatalf("phase = %+v", ph)
			}
			held += ph.Dur
		}
	}
	if held < 300*time.Microsecond || local < 300*time.Microsecond {
		t.Fatalf("held=%v local=%v", held, local)
	}
	// Phase durations account for the whole op.
	var sum time.Duration
	for _, ph := range op.Phases {
		sum += ph.Dur
	}
	if sum < op.Total*9/10 {
		t.Fatalf("phases cover %v of %v", sum, op.Total)
	}
}

func TestTracerNestedHoldsAttributeInnermost(t *testing.T) {
	tr := NewTracer()
	tr.BeginOp("nested")
	tr.EnterResource("lock:outer", Exclusive)
	Spin(100 * time.Microsecond)
	tr.EnterResource("tfs", Exclusive)
	Spin(200 * time.Microsecond)
	tr.ExitResource("tfs")
	Spin(100 * time.Microsecond)
	tr.ExitResource("lock:outer")
	tr.EndOp()

	op := tr.Ops()[0]
	var outer, inner time.Duration
	for _, ph := range op.Phases {
		switch ph.Resource {
		case "lock:outer":
			outer += ph.Dur
		case "tfs":
			inner += ph.Dur
		}
	}
	if inner < 200*time.Microsecond {
		t.Fatalf("inner = %v", inner)
	}
	if outer < 150*time.Microsecond {
		t.Fatalf("outer = %v", outer)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.BeginOp("x")
	tr.EnterResource("r", Shared)
	tr.ExitResource("r")
	tr.EndOp()
	if tr.Ops() != nil {
		t.Fatal("nil tracer returned ops")
	}
	tr.Reset()
}

func TestTracerMismatchedExitIgnored(t *testing.T) {
	tr := NewTracer()
	tr.BeginOp("x")
	tr.EnterResource("a", Shared)
	tr.ExitResource("b") // wrong resource: ignored
	tr.ExitResource("a")
	tr.EndOp()
	if len(tr.Ops()) != 1 {
		t.Fatal("op lost")
	}
}

func TestPhasesOutsideOpsAreDropped(t *testing.T) {
	tr := NewTracer()
	tr.EnterResource("a", Shared) // no BeginOp: must be a no-op
	tr.ExitResource("a")
	tr.EndOp()
	if len(tr.Ops()) != 0 {
		t.Fatal("phantom op recorded")
	}
}
