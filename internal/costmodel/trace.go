package costmodel

import (
	"sync"
	"time"
)

// ResourceMode says how a phase uses a shared resource. Shared-mode phases
// on the same resource may overlap in the scalability simulation (reader
// locks); exclusive phases serialize (writer locks, a TFS worker thread).
type ResourceMode uint8

const (
	// Exclusive phases serialize on the resource.
	Exclusive ResourceMode = iota
	// Shared phases may overlap with other shared phases.
	Shared
)

// Phase is one step of an operation: either local computation
// (Resource == "") or time spent holding / occupying a shared resource.
type Phase struct {
	Resource string
	Mode     ResourceMode
	Dur      time.Duration
}

// OpTrace is the recorded phase breakdown of one workload operation.
type OpTrace struct {
	Name   string
	Phases []Phase
	Total  time.Duration
}

// span is an in-flight resource hold.
type span struct {
	res   string
	mode  ResourceMode
	start time.Time
}

// Tracer records per-operation phase traces on a single client thread.
// A nil *Tracer is valid and records nothing, so instrumented code can call
// it unconditionally. Tracer is not safe for concurrent use by multiple
// goroutines; each simulated client thread owns its own Tracer.
type Tracer struct {
	mu      sync.Mutex
	ops     []OpTrace
	cur     *OpTrace
	opStart time.Time
	mark    time.Time // end of the last recorded phase
	stack   []span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// BeginOp starts recording a new operation. Any phases recorded before the
// next EndOp belong to this operation.
func (t *Tracer) BeginOp(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.cur = &OpTrace{Name: name}
	t.opStart = now
	t.mark = now
	t.stack = t.stack[:0]
}

// EndOp finishes the current operation, filling any trailing local time.
func (t *Tracer) EndOp() {
	if t == nil || t.cur == nil {
		return
	}
	now := time.Now()
	t.localUntil(now)
	t.cur.Total = now.Sub(t.opStart)
	t.mu.Lock()
	t.ops = append(t.ops, *t.cur)
	t.mu.Unlock()
	t.cur = nil
}

// localUntil appends a local-compute phase covering [t.mark, now).
func (t *Tracer) localUntil(now time.Time) {
	if d := now.Sub(t.mark); d > 0 {
		t.cur.Phases = append(t.cur.Phases, Phase{Dur: d})
	}
	t.mark = now
}

// EnterResource marks the start of a hold on res. Holds may nest; the
// innermost hold attributes the time (an RPC issued while holding a lock
// records the RPC server time, not double-counted lock time).
func (t *Tracer) EnterResource(res string, mode ResourceMode) {
	if t == nil || t.cur == nil {
		return
	}
	now := time.Now()
	if len(t.stack) == 0 {
		t.localUntil(now)
	} else {
		top := t.stack[len(t.stack)-1]
		t.flushHold(top, now)
	}
	t.stack = append(t.stack, span{res: res, mode: mode, start: now})
	t.mark = now
}

// ExitResource marks the end of the innermost hold on res. Mismatched exits
// are ignored (defensive: instrumented error paths).
func (t *Tracer) ExitResource(res string) {
	if t == nil || t.cur == nil || len(t.stack) == 0 {
		return
	}
	top := t.stack[len(t.stack)-1]
	if top.res != res {
		return
	}
	now := time.Now()
	t.flushHold(top, now)
	t.stack = t.stack[:len(t.stack)-1]
	if len(t.stack) > 0 {
		t.stack[len(t.stack)-1].start = now
	}
	t.mark = now
}

func (t *Tracer) flushHold(s span, now time.Time) {
	if d := now.Sub(s.start); d > 0 {
		t.cur.Phases = append(t.cur.Phases, Phase{Resource: s.res, Mode: s.mode, Dur: d})
	}
}

// Ops returns a copy of all recorded operation traces.
func (t *Tracer) Ops() []OpTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OpTrace, len(t.ops))
	copy(out, t.ops)
	return out
}

// Reset discards all recorded traces.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ops = nil
	t.mu.Unlock()
}
