// Package costmodel centralizes the calibrated hardware/OS costs that the
// Aerie paper measures on real hardware but that a user-space Go simulation
// must inject explicitly: kernel-crossing (syscall) cost, RPC round-trip
// latency, SCM write latency, and TLB-shootdown cost.
//
// All costs are injected as spin-waits so they consume CPU the same way the
// paper's software-created delays do (the paper uses an RDTSCP spin loop,
// §7.4). A zero duration injects nothing and is free.
//
// The package also provides the phase Tracer used by the scalability
// simulator (internal/scalesim): real single-threaded runs record, for every
// workload operation, which shared resources were held and for how long, and
// the simulator replays those traces for N concurrent threads.
package costmodel

import (
	"sync/atomic"
	"time"
)

// Costs holds the injected delay for each modeled hardware/OS event.
// A zero value injects no delays anywhere.
type Costs struct {
	// SyscallEntry is charged on every simulated kernel crossing
	// (baseline VFS operations). The paper attributes µs-scale overhead
	// to mode switches and cache pollution (§3).
	SyscallEntry time.Duration
	// RPCRoundTrip is charged on every in-process RPC call to model the
	// loopback-socket transport the paper uses between libFS and the TFS.
	RPCRoundTrip time.Duration
	// RPCBlocking injects RPCRoundTrip as a blocking wait (the goroutine
	// is descheduled) instead of a spin. A real transport round trip is
	// wire and scheduling latency — the caller's core is parked on the
	// socket, not burning — so concurrency studies (the pipelined
	// write-path benchmark) opt in to let in-flight RPCs overlap client
	// compute even on hosts with few cores. The default stays the
	// paper-faithful RDTSCP-style spin, which keeps the single-threaded
	// calibrations (EXPERIMENTS.md) unchanged. Note the OS timer floor:
	// sub-millisecond sleeps round up to roughly a tick, so blocking
	// calibrations should use RPCRoundTrip values at or above 1ms.
	RPCBlocking bool
	// SCMWriteLine is charged per 64-byte cache line persisted to SCM
	// (wlflush, and streamed lines at bflush). This is the knob swept in
	// Figure 6.
	SCMWriteLine time.Duration
	// BlockWrite is charged per block written to the simulated RAM disk
	// used by the kernel-FS baselines. Figure 6 sweeps this in lockstep
	// with SCMWriteLine (the paper injects the delay in the RAM-disk
	// driver for kernel file systems).
	BlockWrite time.Duration
	// TLBShootdown is charged per referenced page whose protection
	// changes (§7.2.1 measures 3.3µs/page).
	TLBShootdown time.Duration
}

// DefaultCosts returns the calibration used for the headline experiments.
// The absolute values are smaller than 2014 hardware costs so test suites
// stay fast; EXPERIMENTS.md records the calibration used for each run.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry: 300 * time.Nanosecond,
		RPCRoundTrip: 4 * time.Microsecond,
		SCMWriteLine: 0,
		BlockWrite:   700 * time.Nanosecond,
		TLBShootdown: 3300 * time.Nanosecond,
	}
}

// Spin busy-waits for d, mimicking the paper's RDTSCP delay loop. It is a
// no-op for d <= 0.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Block parks the goroutine for d, modeling latency the CPU does not
// consume (an RPC's wire time). A no-op for d <= 0; subject to the OS
// timer floor for very small d.
func Block(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

// Counter is a cheap atomic event counter used for statistics throughout the
// simulated stack.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }
