package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/scm"
)

func volOptions(path string) Options {
	return Options{
		ArenaSize:      16 << 20,
		VolumePath:     path,
		Lease:          500 * time.Millisecond,
		AcquireTimeout: 5 * time.Second,
	}
}

// TestVolumePersistsAcrossCloseAndOpen is the tentpole happy path: create a
// machine on a volume file, write through the full stack, close cleanly,
// reopen with Open, and read the data back through a fresh client.
func TestVolumePersistsAcrossCloseAndOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.aerie")
	sys, err := New(volOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Degraded() != nil {
		t.Fatalf("unexpected degradation: %v", sys.Degraded())
	}
	if sys.Vol == nil {
		t.Fatal("Vol nil on a volume-backed machine")
	}
	contents := []byte("written before the first close")
	s := session(t, sys, 1000)
	createFile(t, s, "persisted", contents)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(path, Options{Lease: 500 * time.Millisecond, AcquireTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if re.Vol.WasDirty() {
		t.Fatal("cleanly closed machine reopened dirty")
	}
	s2 := session(t, re, 1001)
	oid, found, err := s2.DirLookup(s2.Root, []byte("persisted"))
	if err != nil || !found {
		t.Fatalf("DirLookup after reopen: found=%v err=%v", found, err)
	}
	buf := make([]byte, len(contents))
	if _, err := s2.FileRead(oid, buf, 0); err != nil || !bytes.Equal(buf, contents) {
		t.Fatalf("FileRead after reopen: %q, %v", buf, err)
	}
	if rep, err := re.TFS.Fsck(false); err != nil || rep.LeakedBlocks != 0 || rep.LostBlocks != 0 {
		t.Fatalf("Fsck after reopen: %+v, %v", rep, err)
	}
}

// TestOpenRecordsPhaseTimings: the three open phases land in obs counters.
func TestOpenRecordsPhaseTimings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.aerie")
	sys, err := New(volOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sink := obs.New()
	opts := volOptions("")
	opts.Obs = sink
	re, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap := sink.Snapshot()
	for _, c := range []string{"core.open.map_ns", "core.open.attach_ns", "core.open.recover_ns"} {
		if snap.Counter(c) <= 0 {
			t.Errorf("%s = %d, want > 0", c, snap.Counter(c))
		}
	}
}

// TestNewDegradesToVolatileOnMapFailure: an unusable volume path must not
// kill a fresh machine — it runs volatile, serves operations, and surfaces
// the typed cause exactly once through Degraded and the log.
func TestNewDegradesToVolatileOnMapFailure(t *testing.T) {
	// A path under a regular file fails with ENOTDIR even as root.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	opts := volOptions(filepath.Join(blocker, "vol.aerie"))
	opts.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatalf("New should degrade, not fail: %v", err)
	}
	defer sys.Close()
	if !errors.Is(sys.Degraded(), scm.ErrMapFailed) {
		t.Fatalf("Degraded() = %v, want ErrMapFailed", sys.Degraded())
	}
	if sys.Vol != nil {
		t.Fatal("degraded machine still holds a Volume")
	}
	if len(logged) != 1 {
		t.Fatalf("degradation logged %d times, want once: %q", len(logged), logged)
	}
	// Tier-1 behavior is unchanged: the machine serves a full create/read
	// cycle on the volatile arena.
	s := session(t, sys, 1000)
	contents := []byte("volatile but alive")
	oid := createFile(t, s, "f", contents)
	buf := make([]byte, len(contents))
	if _, err := s.FileRead(oid, buf, 0); err != nil || !bytes.Equal(buf, contents) {
		t.Fatalf("degraded machine read: %q, %v", buf, err)
	}
}

// TestNewDegradesOnInjectedMapFault: same downgrade via the scm.map fault
// point, proving the path is reachable without filesystem tricks.
func TestNewDegradesOnInjectedMapFault(t *testing.T) {
	inj := faultinject.New()
	inj.FailAt("scm.map", 0, nil)
	opts := volOptions(filepath.Join(t.TempDir(), "vol.aerie"))
	opts.Faults = inj
	sys, err := New(opts)
	if err != nil {
		t.Fatalf("New should degrade, not fail: %v", err)
	}
	defer sys.Close()
	if !errors.Is(sys.Degraded(), scm.ErrMapFailed) {
		t.Fatalf("Degraded() = %v, want ErrMapFailed", sys.Degraded())
	}
}

// TestOpenNeverDegrades: opening existing data with a broken file is a typed
// hard failure, never a silent volatile machine.
func TestOpenNeverDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.aerie")
	sys, err := New(volOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, scm.ErrBadVolume) {
		t.Fatalf("Open of truncated volume: err = %v, want ErrBadVolume", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.aerie"), Options{}); !errors.Is(err, scm.ErrMapFailed) {
		t.Fatalf("Open of missing volume: err = %v, want ErrMapFailed", err)
	}
}

// TestOpenRejectsForeignArena: a valid volume superblock around an arena
// that was never formatted as an Aerie machine must fail typed, not panic.
func TestOpenRejectsForeignArena(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.aerie")
	v, err := scm.CreateVolume(path, scm.VolumeOptions{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, scm.ErrBadVolume) {
		t.Fatalf("Open of unformatted arena: err = %v, want ErrBadVolume", err)
	}
}

// TestVolumeIncompatibleWithTrackPersistence: the two crash models are
// mutually exclusive and the combination is a loud configuration error.
func TestVolumeIncompatibleWithTrackPersistence(t *testing.T) {
	opts := volOptions(filepath.Join(t.TempDir(), "vol.aerie"))
	opts.TrackPersistence = true
	if _, err := New(opts); err == nil {
		t.Fatal("New accepted VolumePath+TrackPersistence")
	}
}

// TestReopenAfterUncleanDeath: a machine whose process dies without Close
// reopens dirty and recovers to a consistent state.
func TestReopenAfterUncleanDeath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.aerie")
	sys, err := New(volOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	contents := []byte("shipped before the crash")
	s := session(t, sys, 1000)
	createFile(t, s, "survivor", contents)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate process death: stop the lock service and drop the mapping
	// without clearing the dirty flag. (The real SIGKILL version lives in
	// internal/crashsweep's process sweep.)
	sys.TFS.Locks.Shutdown()
	sys.Vol.Abandon()

	re, err := Open(path, Options{Lease: 500 * time.Millisecond, AcquireTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Open after unclean death: %v", err)
	}
	defer re.Close()
	if !re.Vol.WasDirty() {
		t.Fatal("unclean death did not leave the volume dirty")
	}
	if rep, err := re.TFS.Fsck(true); err != nil {
		t.Fatalf("Fsck(repair) after unclean death: %+v, %v", rep, err)
	}
	s2 := session(t, re, 1001)
	oid, found, err := s2.DirLookup(s2.Root, []byte("survivor"))
	if err != nil || !found {
		t.Fatalf("shipped file lost: found=%v err=%v", found, err)
	}
	buf := make([]byte, len(contents))
	if _, err := s2.FileRead(oid, buf, 0); err != nil || !bytes.Equal(buf, contents) {
		t.Fatalf("shipped contents lost: %q, %v", buf, err)
	}
}
