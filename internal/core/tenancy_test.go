package core

// Multi-tenant isolation tests (make tier2-tenant): weighted-fair
// scheduling keeps a light tenant's latency bounded under an aggressor
// flood, quota exhaustion behaves like the ENOSPC sweep (typed error,
// batch atomicity, no leaks, delete-to-recover), and per-shard TenantStat
// rows attribute reserved bytes to exactly the shards participating in a
// cross-shard transaction — observable mid-2PC because reservations are
// guarded by their own lock, not the shard's apply mutex.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/tfs"
)

func tenantSession(t *testing.T, sys *System, uid, tenant uint32) *libfs.Session {
	t.Helper()
	sess, err := sys.NewSession(libfs.Config{
		UID:        uid,
		Tenant:     tenant,
		BatchLimit: 1 << 20,
		PoolRefill: 2,
		RenewEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func tenancyWrite(fs *pxfs.FS, name string, data []byte) error {
	f, err := fs.Create(name, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Sync()
}

func tenancyRead(fs *pxfs.FS, name string, size int) ([]byte, error) {
	f, err := fs.Open(name, pxfs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// tenantRow returns the single accounting row for (tenant, shard) from a
// TenantStat reply, failing the test if it is missing.
func tenantRow(t *testing.T, rows []fsproto.TenantUsage, tenant, shard uint32) fsproto.TenantUsage {
	t.Helper()
	for _, r := range rows {
		if r.Tenant == tenant && r.Shard == shard {
			return r
		}
	}
	t.Fatalf("no TenantStat row for tenant %d shard %d in %+v", tenant, shard, rows)
	return fsproto.TenantUsage{}
}

// TestQuotaSweepExhaustRecover is the quota analogue of the exhaustsweep's
// natural fill: a tenant with a 2 MiB quota on a 64 MiB volume fills until
// rejection. The rejection must be the typed ErrQuotaExceeded (NOT
// ErrNoSpace — the volume has plenty of free space), the rejected batch
// must not partially apply (journal idle, fsck clean without repair),
// every committed file must read back exactly, and deleting files on a
// full quota must succeed and restore forward progress.
func TestQuotaSweepExhaustRecover(t *testing.T) {
	const (
		tenant = uint32(7)
		quota  = uint64(2 << 20)
	)
	sys, err := New(Options{
		ArenaSize:      64 << 20,
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
		Tenants:        map[uint32]tfs.TenantConfig{tenant: {Weight: 1, QuotaBytes: quota}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sess := tenantSession(t, sys, 1000, tenant)
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	if err := fs.Mkdir("/fill", 0o755); err != nil {
		t.Fatal(err)
	}

	content := func(i int) []byte {
		b := make([]byte, 32<<10)
		for j := range b {
			b[j] = byte(i*131 + j)
		}
		return b
	}
	name := func(i int) string { return fmt.Sprintf("/fill/f%04d", i) }

	committed := 0
	var fillErr error
	for i := 0; i < 256; i++ {
		if fillErr = tenancyWrite(fs, name(i), content(i)); fillErr != nil {
			break
		}
		committed = i + 1
	}
	if fillErr == nil {
		t.Fatal("fill never hit the quota: 256 x 32KiB against a 2MiB quota")
	}
	if !errors.Is(fillErr, fsproto.ErrQuotaExceeded) {
		t.Fatalf("fill failure not the typed quota error: %v", fillErr)
	}
	if errors.Is(fillErr, fsproto.ErrNoSpace) {
		t.Fatalf("quota rejection must be distinct from ENOSPC: %v", fillErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed before the quota hit")
	}

	// Batch atomicity: the rejected batch left nothing behind.
	if !sys.TFS.JournalIdle() {
		t.Fatal("journal not idle after quota rejection: committed batch stranded")
	}
	rep, err := sys.TFS.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("quota rejection leaked %d blocks", rep.LeakedBlocks)
	}

	// Accounting explains the rejection: used+reserved within quota, and
	// the reject was counted. (Single shard: exactly one row.)
	rows, err := sess.TenantStat()
	if err != nil {
		t.Fatal(err)
	}
	row := tenantRow(t, rows, tenant, 0)
	if row.UsedBytes == 0 || row.UsedBytes+row.ReservedBytes > quota {
		t.Fatalf("accounting row out of bounds: %+v", row)
	}
	if row.QuotaRejects == 0 {
		t.Fatalf("quota reject not counted: %+v", row)
	}

	// The session reconverged: every committed file reads back exactly.
	for i := 0; i < committed; i++ {
		got, err := tenancyRead(fs, name(i), 32<<10)
		if err != nil {
			t.Fatalf("committed %s unreadable after quota rejection: %v", name(i), err)
		}
		if !bytes.Equal(got, content(i)) {
			t.Fatalf("committed %s corrupted after quota rejection", name(i))
		}
	}

	// Delete-to-recover: unlinking on a full quota must succeed — the
	// degraded (no-GC-rehash) remove carries zero space demand — and must
	// free enough charge for new work.
	for i := 0; i < committed/2; i++ {
		if err := fs.Unlink(name(i)); err != nil {
			t.Fatalf("unlink %s on full quota: %v", name(i), err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync of deletes on full quota: %v", err)
	}
	if err := tenancyWrite(fs, "/fill/after", content(999)); err != nil {
		t.Fatalf("no forward progress after deletes: %v", err)
	}

	rows, err = sess.TenantStat()
	if err != nil {
		t.Fatal(err)
	}
	after := tenantRow(t, rows, tenant, 0)
	if after.UsedBytes >= row.UsedBytes {
		t.Fatalf("deletes did not credit the tenant: used %d -> %d", row.UsedBytes, after.UsedBytes)
	}
	if !sys.TFS.JournalIdle() {
		t.Fatal("journal not idle after recovery")
	}
	rep, err = sys.TFS.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("recovery leaked %d blocks", rep.LeakedBlocks)
	}
}

// TestFairSchedulingVictimP99 floods the service with low-weight aggressor
// sessions — each pipelining batches through a deep client window — while a
// high-weight victim runs a modest synced workload, then reads the
// server-side per-tenant latency histograms. The stated isolation bound:
// the victim's p99 enqueue-to-completion batch latency stays under 250ms
// even while the aggressor is being shed, and the victim — under its
// weight-proportional share of the in-flight byte budget — is never shed
// at all (overload degradation sheds the lowest-weight flood first, before
// admission, so nothing admitted fails). This test is also the regression
// gate for leader conscription: group-commit leadership must be a detached
// duty, or the victim's rare batch arriving at a vacant-leader moment gets
// stuck serving the aggressor's queue until a lull.
func TestFairSchedulingVictimP99(t *testing.T) {
	const (
		aggressor = uint32(1) // weight 1
		victim    = uint32(2) // weight 8
	)
	sink := obs.New()
	sys, err := New(Options{
		ArenaSize:        128 << 20,
		Lease:            time.Hour,
		AcquireTimeout:   10 * time.Second,
		MaxInflightBytes: 8 << 10,
		RetryAfterHint:   time.Millisecond,
		Obs:              sink,
		Tenants: map[uint32]tfs.TenantConfig{
			aggressor: {Weight: 1},
			victim:    {Weight: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	vsess := tenantSession(t, sys, 1000, victim)
	vfs := pxfs.New(vsess, pxfs.Options{NameCache: true})
	if err := vfs.Mkdir("/victim", 0o755); err != nil {
		t.Fatal(err)
	}

	// Four aggressor sessions, each pipelining up to four 4KiB batches, so
	// the aggressor tenant's in-flight bytes overrun the 8KiB budget and
	// its weight-1 fair share whenever the flood is healthy.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < 4; a++ {
		sess, err := sys.NewSession(libfs.Config{
			UID:        uint32(2000 + a),
			Tenant:     aggressor,
			BatchLimit: 4 << 10,
			Window:     4,
			PoolRefill: 8,
			RenewEvery: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		afs := pxfs.New(sess, pxfs.Options{NameCache: true})
		dir := fmt.Sprintf("/agg%d", a)
		if err := afs.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			small := make([]byte, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// No per-file Sync: the window ships batches as the log
				// fills, keeping several in flight. Cycle a bounded name
				// set (Create truncates) so the flood pressures the
				// scheduler, not the arena. Errors are the point of a
				// flood (sheds surface as busy retries and, past
				// BusyRetries, as a poisoned window) — Sync to reconverge
				// and keep hammering.
				name := fmt.Sprintf("%s/f%03d", dir, i%256)
				f, err := afs.Create(name, 0o644)
				if err == nil {
					_, err = f.Write(small)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					_ = afs.Sync()
				}
			}
		}()
	}

	// Let the flood establish itself before the victim starts, so every
	// victim op below runs against live pressure.
	warm := time.After(3 * time.Second)
	for {
		ah, _ := sink.Snapshot().Histogram(fmt.Sprintf("tfs.tenant.%d.batch_latency_ns", aggressor))
		if ah.Count >= 20 {
			break
		}
		select {
		case <-warm:
			t.Log("flood warmup slow; proceeding anyway")
		case <-time.After(5 * time.Millisecond):
			continue
		}
		break
	}

	// The victim's synced workload under the flood.
	const victimOps = 80
	payload := make([]byte, 1<<10)
	for i := 0; i < victimOps; i++ {
		if err := tenancyWrite(vfs, fmt.Sprintf("/victim/f%03d", i), payload); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("victim op %d failed under flood: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	snap := sink.Snapshot()
	vh, ok := snap.Histogram(fmt.Sprintf("tfs.tenant.%d.batch_latency_ns", victim))
	if !ok || vh.Count < victimOps {
		t.Fatalf("victim latency histogram missing or short: ok=%v count=%d", ok, vh.Count)
	}
	ah, _ := snap.Histogram(fmt.Sprintf("tfs.tenant.%d.batch_latency_ns", aggressor))
	aggSheds := snap.Counter(fmt.Sprintf("tfs.tenant.%d.sheds", aggressor))
	vicSheds := snap.Counter(fmt.Sprintf("tfs.tenant.%d.sheds", victim))
	t.Logf("victim p50=%v p99=%v max=%v n=%d | aggressor p99=%v n=%d sheds=%d",
		time.Duration(vh.P50NS), time.Duration(vh.P99NS), time.Duration(vh.MaxNS), vh.Count,
		time.Duration(ah.P99NS), ah.Count, aggSheds)

	// The flood must have been real: aggressor batches completed AND the
	// admission gate shed some of them for being over their share.
	if ah.Count == 0 {
		t.Fatal("aggressor never completed a batch: no flood to isolate against")
	}
	if aggSheds == 0 {
		t.Fatal("aggressor was never shed: flood did not exceed the byte budget")
	}
	// The isolation claims.
	const victimP99Bound = 250 * time.Millisecond
	if got := time.Duration(vh.P99NS); got > victimP99Bound {
		t.Fatalf("victim p99 %v exceeds the %v isolation bound under aggressor flood", got, victimP99Bound)
	}
	if vicSheds != 0 {
		t.Fatalf("victim (weight 8, under fair share) was shed %d times; degradation must shed the lowest-weight flood first", vicSheds)
	}
}

// TestTenantStatReservedMid2PC proves per-shard attribution of
// reserved-but-unapplied bytes. A cross-shard rename reserves worst-case
// demand on every participant shard before Phase 1; a delay injected at
// tfs.2pc.prepare holds that window open while a concurrent TenantStat —
// which takes only the tenant lock, never the shard apply mutex — observes
// it. Reserved bytes must appear only on participating shards and must
// settle back to zero when the transaction completes.
func TestTenantStatReservedMid2PC(t *testing.T) {
	const tenant = uint32(3)
	faults := faultinject.New()
	sys, err := New(Options{
		ArenaSize:      64 << 20,
		Shards:         3,
		Lease:          time.Hour,
		AcquireTimeout: 10 * time.Second,
		Faults:         faults,
		Tenants:        map[uint32]tfs.TenantConfig{tenant: {Weight: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sess := tenantSession(t, sys, 1000, tenant)
	fs := pxfs.New(sess, pxfs.Options{NameCache: true})
	srcDir, dstDir := crossShardDirs(t, fs, sess)

	if err := tenancyWrite(fs, srcDir+"/f", bytes.Repeat([]byte("q"), 8<<10)); err != nil {
		t.Fatal(err)
	}

	// Quiescent baseline: no reservations anywhere; the creates above
	// charged used bytes somewhere.
	base := sys.Set.TenantStat()
	var baseUsed uint64
	for _, r := range base {
		if r.Tenant != tenant {
			continue
		}
		if r.ReservedBytes != 0 {
			t.Fatalf("reserved bytes at quiescence: %+v", r)
		}
		baseUsed += r.UsedBytes
	}
	if baseUsed == 0 {
		t.Fatal("no used bytes charged after creates")
	}

	// Participants of the rename: source dir, destination dir, and the
	// moved file's shard.
	srcOID, found, err := sess.DirLookup(sess.Root, []byte(srcDir[1:]))
	if err != nil || !found {
		t.Fatalf("lookup %s: found=%v err=%v", srcDir, found, err)
	}
	dstOID, found, err := sess.DirLookup(sess.Root, []byte(dstDir[1:]))
	if err != nil || !found {
		t.Fatalf("lookup %s: found=%v err=%v", dstDir, found, err)
	}
	fileOID, found, err := sess.DirLookup(srcOID, []byte("f"))
	if err != nil || !found {
		t.Fatalf("lookup %s/f: found=%v err=%v", srcDir, found, err)
	}
	participants := map[uint32]bool{
		uint32(sess.ShardOf(srcOID)):  true,
		uint32(sess.ShardOf(dstOID)):  true,
		uint32(sess.ShardOf(fileOID)): true,
	}

	// Hold the 2PC open at the prepare fault point and observe mid-flight.
	faults.DelayAt("tfs.2pc.prepare", 0, 300*time.Millisecond)
	renameDone := make(chan error, 1)
	go func() { renameDone <- fs.Rename(srcDir+"/f", dstDir+"/f") }()

	var observed []fsproto.TenantUsage
	deadline := time.After(5 * time.Second)
observe:
	for {
		select {
		case err := <-renameDone:
			t.Fatalf("rename finished before reserved bytes were observed (err=%v); is the delay armed?", err)
		case <-deadline:
			t.Fatal("never observed reserved bytes during the held-open 2PC")
		default:
		}
		for _, r := range sys.Set.TenantStat() {
			if r.Tenant == tenant && r.ReservedBytes > 0 {
				observed = sys.Set.TenantStat()
				break observe
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	reservedShards := 0
	for _, r := range observed {
		if r.Tenant != tenant || r.ReservedBytes == 0 {
			continue
		}
		reservedShards++
		if !participants[r.Shard] {
			t.Fatalf("reserved bytes attributed to non-participant shard %d: %+v (participants %v)", r.Shard, r, participants)
		}
	}
	if reservedShards == 0 {
		t.Fatal("snapshot lost the reservation between polls")
	}
	if len(participants) < 3 {
		// With 3 shards and at most 3 participants, any non-participant
		// shard must show zero reserved — checked by the loop above; note
		// it explicitly so the attribution claim is visible in the log.
		t.Logf("participants %v of 3 shards; non-participants showed 0 reserved", participants)
	}

	if err := <-renameDone; err != nil {
		t.Fatalf("rename failed: %v", err)
	}
	for _, r := range sys.Set.TenantStat() {
		if r.Tenant == tenant && r.ReservedBytes != 0 {
			t.Fatalf("reservation not settled after 2PC completion: %+v", r)
		}
	}
	got, err := tenancyRead(fs, dstDir+"/f", 8<<10)
	if err != nil || len(got) != 8<<10 {
		t.Fatalf("moved file unreadable after 2PC: n=%d err=%v", len(got), err)
	}
}

// TestTenantCtlRuntimePolicy drives the client-facing policy RPCs: setting
// a tenant's weight and quota at runtime must create one accounting row
// per shard, visible through Session.TenantStat, and the quota must bind
// immediately for a session of that tenant.
func TestTenantCtlRuntimePolicy(t *testing.T) {
	sys := newShardedSystem(t, 3, false, nil)
	defer sys.Close()
	sess := session(t, sys, 1000)
	const tenant = uint32(9)
	if err := sess.TenantCtl(tenant, 5, 1<<20); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.TenantStat()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, r := range rows {
		if r.Tenant != tenant {
			continue
		}
		if r.Weight != 5 || r.QuotaBytes != 1<<20 {
			t.Fatalf("policy row mismatch: %+v", r)
		}
		seen[r.Shard] = true
	}
	if len(seen) != 3 {
		t.Fatalf("policy applied to %d of 3 shards: %v", len(seen), seen)
	}

	tsess := tenantSession(t, sys, 1001, tenant)
	tfsys := pxfs.New(tsess, pxfs.Options{NameCache: true})
	if err := tfsys.Mkdir("/t9", 0o755); err != nil {
		t.Fatal(err)
	}
	var hitQuota error
	for i := 0; i < 128; i++ {
		if hitQuota = tenancyWrite(tfsys, fmt.Sprintf("/t9/f%03d", i), make([]byte, 32<<10)); hitQuota != nil {
			break
		}
	}
	if !errors.Is(hitQuota, fsproto.ErrQuotaExceeded) {
		t.Fatalf("runtime quota did not bind: %v", hitQuota)
	}
}
