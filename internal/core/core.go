// Package core assembles a complete Aerie machine: the emulated SCM arena,
// the kernel SCM manager, a partition formatted as an Aerie volume, the
// trusted file-system service with its lock service, and the RPC fabric
// clients mount through. It is the composition root used by the public
// aerie package, the test suites, and the benchmark harness.
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/rpc"
	"github.com/aerie-fs/aerie/internal/scm"
	"github.com/aerie-fs/aerie/internal/scmmgr"
	"github.com/aerie-fs/aerie/internal/tfs"
)

// Options configures a System.
type Options struct {
	// ArenaSize is the emulated SCM size (default 256 MiB).
	ArenaSize uint64
	// Shards partitions the trusted service: the volume is split into this
	// many equal partitions, each run by its own TFS shard (own journal,
	// allocator, group-commit leader, lock domain), with deterministic
	// placement routing every object to its shard and cross-shard renames
	// running as two-phase transactions. Default 1 — the classic
	// single-service machine. Open ignores this and rediscovers the shard
	// count from the partition table.
	Shards int
	// TrackPersistence enables crash simulation (slower; tests only).
	// Incompatible with VolumePath: the mapped file is the persistent image.
	TrackPersistence bool
	// VolumePath, when set, backs the arena with an mmap-backed volume file
	// so the machine survives real process death (kill -9) and restarts via
	// Open. If creating or mapping the file fails, New degrades to the
	// volatile arena: the machine still runs, Degraded() returns the typed
	// cause (errors.Is(..., scm.ErrMapFailed)), and the downgrade is logged
	// through Logf. Opening existing data never degrades — see Open.
	VolumePath string
	// Logf receives one-line operational notices (e.g. the volatile
	// downgrade). Nil discards them.
	Logf func(format string, args ...any)
	// Costs injects modeled latencies; zero value injects nothing.
	Costs costmodel.Costs
	// JournalSize for the volume redo log (default 4 MiB).
	JournalSize uint64
	// Lease and AcquireTimeout for the lock service.
	Lease          time.Duration
	AcquireTimeout time.Duration
	// MaxInflightBytes, MaxClientInflight, and RetryAfterHint tune the
	// TFS's admission control (see tfs.Config); zero keeps its defaults.
	MaxInflightBytes  int64
	MaxClientInflight int
	RetryAfterHint    time.Duration
	// Tenants is the boot-time multi-tenant policy: per-tenant scheduling
	// weight and space quota, applied to every shard (see tfs.Config.Tenants).
	// Unlisted tenants get weight 1 and no quota.
	Tenants map[uint32]tfs.TenantConfig
	// VolumeGID for the volume-wide extent ACL.
	VolumeGID uint32
	// Tracer records client phase traces (single-threaded capture runs).
	Tracer *costmodel.Tracer
	// Faults, when non-nil, arms fault points across every layer of the
	// machine: the SCM arena, the TFS and its journal, the RPC fabric, and
	// (by default) client sessions. Nil in production.
	Faults *faultinject.Injector
	// Obs, when non-nil, wires per-layer observability through the whole
	// machine — SCM, RPC, lock service, journal, TFS — and is inherited
	// (by default) by client sessions. Nil keeps every hot path at its
	// uninstrumented cost.
	Obs *obs.Sink
}

// tfsUID is the trusted service's identity; it owns the partition.
const tfsUID = 0

// System is a running Aerie machine. TFS and Part name shard 0 — the whole
// service on a single-shard machine; Set and Parts hold the full shard set.
type System struct {
	Mem   *scm.Memory
	Mgr   *scmmgr.Manager
	Srv   *rpc.Server
	TFS   *tfs.Service
	Set   *tfs.ShardSet
	Part  scmmgr.PartitionID
	Parts []scmmgr.PartitionID
	Costs *costmodel.Costs

	// Vol is the mmap-backed volume when the arena is persistent, nil when
	// volatile (the default, and the degradation fallback).
	Vol *scm.Volume

	opts     Options
	proc     *scmmgr.Process
	degraded error
}

// Degraded returns the typed error that forced this machine onto the
// volatile arena after VolumePath was requested, or nil when the machine is
// running as configured. The data-loss consequence is explicit: a degraded
// machine forgets everything at process exit.
func (sys *System) Degraded() error { return sys.degraded }

func (sys *System) logf(format string, args ...any) {
	if sys.opts.Logf != nil {
		sys.opts.Logf(format, args...)
	}
}

// New formats a fresh Aerie machine. With Options.VolumePath set, the arena
// is an mmap-backed volume file; a mapping failure downgrades to the
// volatile arena rather than failing the machine (the error stays visible
// through Degraded and Logf). There is no data to lose at format time, so
// the downgrade is safe; Open never does this.
func New(opts Options) (*System, error) {
	if opts.ArenaSize == 0 {
		opts.ArenaSize = 256 << 20
	}
	if opts.VolumePath != "" && opts.TrackPersistence {
		return nil, fmt.Errorf("core: TrackPersistence requires the volatile arena (VolumePath set)")
	}
	costs := opts.Costs
	sys := &System{Costs: &costs, opts: opts}
	if opts.VolumePath != "" {
		vol, err := scm.CreateVolume(opts.VolumePath, scm.VolumeOptions{
			ArenaSize: opts.ArenaSize,
			Costs:     sys.Costs,
			Faults:    opts.Faults,
			Obs:       opts.Obs,
		})
		if err != nil {
			if !errors.Is(err, scm.ErrMapFailed) {
				return nil, err
			}
			sys.degraded = err
			sys.logf("core: volume %s unavailable, running on the VOLATILE arena (data will not survive exit): %v",
				opts.VolumePath, err)
		} else {
			sys.Vol = vol
			sys.Mem = vol.Mem()
		}
	}
	if sys.Mem == nil {
		sys.Mem = scm.New(scm.Config{
			Size:             opts.ArenaSize,
			Costs:            sys.Costs,
			TrackPersistence: opts.TrackPersistence,
			Faults:           opts.Faults,
			Obs:              opts.Obs,
		})
	}
	fail := func(err error) (*System, error) {
		if sys.Vol != nil {
			sys.Vol.Close()
		}
		return nil, err
	}
	mgr, err := scmmgr.FormatAndAttach(sys.Mem, sys.Costs)
	if err != nil {
		return fail(err)
	}
	sys.Mgr = mgr
	sys.proc = scmmgr.NewProcess(tfsUID)
	// The volume is the whole arena minus the manager region (first-fit
	// finds the gap), split into one equal partition per shard.
	region := opts.ArenaSize / 64
	if region < 64*1024 {
		region = 64 * 1024
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	partSize := (opts.ArenaSize - region - (opts.ArenaSize / 32)) / uint64(shards) // slack for rounding
	partSize = partSize / scm.PageSize * scm.PageSize
	for i := 0; i < shards; i++ {
		part, err := mgr.CreatePartition(partSize, tfsUID)
		if err != nil {
			return fail(err)
		}
		sys.Parts = append(sys.Parts, part)
		if err := tfs.FormatVolume(mgr, sys.proc, part, sys.tfsConfig()); err != nil {
			return fail(err)
		}
	}
	sys.Part = sys.Parts[0]
	if err := sys.serve(); err != nil {
		return fail(err)
	}
	if opts.TrackPersistence {
		// Start crash experiments from a fully persistent image.
		sys.Mem.PersistAll()
	}
	return sys, nil
}

// Open mounts an existing volume file and recovers the machine inside it:
// map the file, validate and reattach the SCM manager, rediscover the TFS
// partition, and serve (which replays the redo journal). Unlike New, Open
// never degrades to the volatile arena — the file claims to hold user data,
// so every failure is a typed hard error (scm.ErrBadVolume,
// scm.ErrVersionMismatch, scm.ErrMapFailed, ...). The open's phases are
// timed into the obs counters core.open.{map,attach,recover}_ns.
func Open(path string, opts Options) (*System, error) {
	if opts.TrackPersistence {
		return nil, fmt.Errorf("core: TrackPersistence requires the volatile arena (volume open)")
	}
	costs := opts.Costs
	sys := &System{Costs: &costs, opts: opts}
	t0 := time.Now()
	vol, err := scm.OpenVolume(path, scm.VolumeOptions{
		Costs:  sys.Costs,
		Faults: opts.Faults,
		Obs:    opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	sys.Vol = vol
	sys.Mem = vol.Mem()
	if vol.WasDirty() {
		sys.logf("core: volume %s was not cleanly closed (generation %d); recovering",
			path, vol.Generation())
	}
	t1 := time.Now()
	mgr, err := scmmgr.Attach(sys.Mem, sys.Costs)
	if err != nil {
		vol.Close()
		return nil, fmt.Errorf("%w: %s: scm manager attach: %v", scm.ErrBadVolume, path, err)
	}
	sys.Mgr = mgr
	sys.proc = scmmgr.NewProcess(tfsUID)
	parts, err := mgr.Partitions()
	if err != nil {
		vol.Close()
		return nil, fmt.Errorf("%w: %s: partition table: %v", scm.ErrBadVolume, path, err)
	}
	// Every TFS-owned partition is a shard; slot order is creation order,
	// which fixes the shard numbering across restarts.
	for _, p := range parts {
		if p.Owner == tfsUID {
			sys.Parts = append(sys.Parts, p.ID)
		}
	}
	if len(sys.Parts) == 0 {
		vol.Close()
		return nil, fmt.Errorf("%w: %s: no TFS partition", scm.ErrBadVolume, path)
	}
	sys.Part = sys.Parts[0]
	t2 := time.Now()
	if err := sys.serve(); err != nil {
		vol.Close()
		return nil, err
	}
	t3 := time.Now()
	opts.Obs.Counter("core.open.map_ns").Add(t1.Sub(t0).Nanoseconds())
	opts.Obs.Counter("core.open.attach_ns").Add(t2.Sub(t1).Nanoseconds())
	opts.Obs.Counter("core.open.recover_ns").Add(t3.Sub(t2).Nanoseconds())
	return sys, nil
}

// Close shuts the machine down cleanly: the lock service stops, and a
// persistent arena is msynced, marked clean, and unmapped. A volatile
// machine only stops its lock service — its state was never going to
// survive. Close is safe to call on a degraded machine.
func (sys *System) Close() error {
	if sys.TFS != nil {
		sys.TFS.Locks.Shutdown()
	}
	if sys.Vol != nil {
		return sys.Vol.Close()
	}
	return nil
}

func (sys *System) tfsConfig() tfs.Config {
	return tfs.Config{
		JournalSize:       sys.opts.JournalSize,
		Lease:             sys.opts.Lease,
		AcquireTimeout:    sys.opts.AcquireTimeout,
		VolumeGID:         sys.opts.VolumeGID,
		MaxInflightBytes:  sys.opts.MaxInflightBytes,
		MaxClientInflight: sys.opts.MaxClientInflight,
		RetryAfterHint:    sys.opts.RetryAfterHint,
		Tenants:           sys.opts.Tenants,
		Costs:             sys.Costs,
		Faults:            sys.opts.Faults,
		Obs:               sys.opts.Obs,
	}
}

func (sys *System) serve() error {
	sys.Srv = rpc.NewServer()
	sys.Srv.SetFaults(sys.opts.Faults)
	if sys.opts.Obs != nil {
		sys.Srv.SetObs(sys.opts.Obs)
	}
	set, err := tfs.ServeShards(sys.Srv, sys.Mgr, sys.proc, sys.Parts, sys.tfsConfig())
	if err != nil {
		return err
	}
	sys.Set = set
	sys.TFS = set.Shard(0)
	return nil
}

// NewSession mounts a libFS client over the in-process transport. Lease
// renewal defaults to a third of the lock-service lease so cached grants
// of a healthy client never expire (§5.1).
func (sys *System) NewSession(cfg libfs.Config) (*libfs.Session, error) {
	if cfg.Costs == nil {
		cfg.Costs = sys.Costs
	}
	if cfg.Tracer == nil {
		cfg.Tracer = sys.opts.Tracer
	}
	if cfg.RenewEvery == 0 {
		lease := sys.opts.Lease
		if lease == 0 {
			lease = 2 * time.Second // the lock service's default
		}
		cfg.RenewEvery = lease / 3
	}
	if cfg.Faults == nil {
		cfg.Faults = sys.opts.Faults
	}
	if cfg.Obs == nil {
		cfg.Obs = sys.opts.Obs
	}
	return libfs.MountInProc(sys.Srv, sys.Mgr, cfg)
}

// Obs returns the machine's observability sink (nil when disabled).
func (sys *System) Obs() *obs.Sink { return sys.opts.Obs }

// CrashAndRecover simulates machine power loss: the volatile image is
// discarded, then the SCM manager re-attaches and the TFS recovers from
// its redo journal. All prior sessions are dead. Requires
// TrackPersistence.
func (sys *System) CrashAndRecover() error {
	sys.TFS.Locks.Shutdown()
	sys.Mem.Crash()
	mgr, err := scmmgr.Attach(sys.Mem, sys.Costs)
	if err != nil {
		return err
	}
	sys.Mgr = mgr
	return sys.serve()
}

// RestartTFS simulates a TFS process restart without power loss (journal
// replay over intact memory, pre-allocation scavenging).
func (sys *System) RestartTFS() error {
	sys.TFS.Locks.Shutdown()
	return sys.serve()
}

// ListenTCP additionally serves the machine's RPC fabric over loopback TCP
// for out-of-process clients (cmd/aerie-tfsd).
func (sys *System) ListenTCP(addr string) (*rpc.TCPListener, error) {
	return rpc.ListenTCP(sys.Srv, addr)
}
