package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/flatfs"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/sobj"
)

func newShardedSystem(t *testing.T, shards int, track bool, sink *obs.Sink) *System {
	t.Helper()
	sys, err := New(Options{
		ArenaSize:        64 << 20,
		Shards:           shards,
		TrackPersistence: track,
		Lease:            time.Hour,
		AcquireTimeout:   10 * time.Second,
		Obs:              sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// crossShardDirs makes top-level directories until two land on different
// shards and returns their names. The placement hash is deterministic per
// volume, but which names collide is not worth predicting in a test.
func crossShardDirs(t *testing.T, fs *pxfs.FS, s *libfs.Session) (src, dst string) {
	t.Helper()
	firstShard, firstName := -1, ""
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("d%02d", i)
		if err := fs.Mkdir("/"+name, 0o755); err != nil {
			t.Fatal(err)
		}
		oid, found, err := s.DirLookup(s.Root, []byte(name))
		if err != nil || !found {
			t.Fatalf("lookup %s: found=%v err=%v", name, found, err)
		}
		sh := s.ShardOf(oid)
		if firstShard < 0 {
			firstShard, firstName = sh, name
		} else if sh != firstShard {
			return "/" + firstName, "/" + name
		}
	}
	t.Fatal("32 directories all hashed to one shard")
	return "", ""
}

// TestShardedEndToEnd drives a 2-shard machine through the full client
// surface: directory placement across shards, a cross-shard rename running
// as a two-phase transaction (proved by the 2PC counter), and reads of the
// moved content through a second session.
func TestShardedEndToEnd(t *testing.T) {
	sink := obs.New()
	sys := newShardedSystem(t, 2, false, sink)
	defer sys.Close()
	if got := sys.Set.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	sess := session(t, sys, 1000)
	if sess.Shards() != 2 {
		t.Fatalf("session sees %d shards, want 2", sess.Shards())
	}
	fs := pxfs.New(sess, pxfs.Options{})
	srcDir, dstDir := crossShardDirs(t, fs, sess)

	contents := []byte("moved across trusted services")
	f, err := fs.Create(srcDir+"/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(contents); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	txnsBefore := sink.Counter("tfs.2pc.txns").Load()
	if err := fs.Rename(srcDir+"/f", dstDir+"/f"); err != nil {
		t.Fatalf("cross-shard rename: %v", err)
	}
	if got := sink.Counter("tfs.2pc.txns").Load(); got != txnsBefore+1 {
		t.Fatalf("2PC txns = %d, want %d (rename did not run as a transaction)", got, txnsBefore+1)
	}
	if _, err := fs.Stat(srcDir + "/f"); err == nil {
		t.Fatal("source name survived the rename")
	}

	// A second session must see the moved file with intact contents.
	b := session(t, sys, 1001)
	bfs := pxfs.New(b, pxfs.Options{})
	g, err := bfs.Open(dstDir+"/f", pxfs.O_RDONLY)
	if err != nil {
		t.Fatalf("open moved file: %v", err)
	}
	buf := make([]byte, len(contents))
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	_ = g.Close()
	if !bytes.Equal(buf, contents) {
		t.Fatalf("moved contents = %q, want %q", buf, contents)
	}
}

// TestShardedFlatFSSpread checks FlatFS key placement: keys bucket-hash
// across the per-shard root namespaces, every key stays readable, and
// Keys/Count enumerate across all shards.
func TestShardedFlatFSSpread(t *testing.T) {
	sys := newShardedSystem(t, 4, false, nil)
	defer sys.Close()
	sess := session(t, sys, 1000)
	kv := flatfs.New(sess, flatfs.Options{})

	const n = 32
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%02d", i)
		if err := kv.Put(key, []byte("val-"+key)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	if err := kv.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%02d", i)
		got, err := kv.Get(key)
		if err != nil || string(got) != "val-"+key {
			t.Fatalf("get %s: %q %v", key, got, err)
		}
	}
	if c, err := kv.Count(); err != nil || c != n {
		t.Fatalf("Count = %d %v, want %d", c, err, n)
	}
	keys, err := kv.Keys()
	if err != nil || len(keys) != n {
		t.Fatalf("Keys = %d %v, want %d", len(keys), err, n)
	}

	// The keys must really be spread: at least two shard roots hold entries.
	shardsUsed := map[int]bool{}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%02d", i))
		for sh := 0; sh < sess.Shards(); sh++ {
			if _, found, err := sess.DirLookup(sess.ShardRoot(sh), key); err == nil && found {
				shardsUsed[sh] = true
			}
		}
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("32 keys landed on %d shard(s); bucket placement is not spreading", len(shardsUsed))
	}

	// Erase a key and confirm enumeration shrinks.
	if err := kv.Erase("key00"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Sync(); err != nil {
		t.Fatal(err)
	}
	if c, err := kv.Count(); err != nil || c != n-1 {
		t.Fatalf("Count after erase = %d %v, want %d", c, err, n-1)
	}
}

// TestShardedCrashRecovery crashes a 2-shard machine after synced
// cross-shard work and demands every shard recover: the moved file, the
// per-shard allocations, and a clean whole-set fsck.
func TestShardedCrashRecovery(t *testing.T) {
	sys := newShardedSystem(t, 2, true, nil)
	defer sys.Close()
	sess := session(t, sys, 1000)
	fs := pxfs.New(sess, pxfs.Options{})
	srcDir, dstDir := crossShardDirs(t, fs, sess)

	contents := []byte("durable across shards")
	f, err := fs.Create(srcDir+"/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(contents); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// The cross-shard rename applies synchronously; it is durable when the
	// call returns, with no further sync needed.
	if err := fs.Rename(srcDir+"/f", dstDir+"/f"); err != nil {
		t.Fatal(err)
	}

	if err := sys.CrashAndRecover(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	b := session(t, sys, 1001)
	bfs := pxfs.New(b, pxfs.Options{})
	if _, err := bfs.Stat(srcDir + "/f"); err == nil {
		t.Fatal("source name resurrected by recovery")
	}
	g, err := bfs.Open(dstDir+"/f", pxfs.O_RDONLY)
	if err != nil {
		t.Fatalf("moved file lost in crash: %v", err)
	}
	buf := make([]byte, len(contents))
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	_ = g.Close()
	if !bytes.Equal(buf, contents) {
		t.Fatalf("contents after crash = %q, want %q", buf, contents)
	}
	rep, err := sys.Set.Fsck(false)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("recovery leaked blocks: %v", rep)
	}
}

// TestShardedRestartScavengesAllShards forces pool refills on two shards,
// restarts the trusted set, and checks both shards scavenged the dead
// client's pre-allocations.
func TestShardedRestartScavengesAllShards(t *testing.T) {
	sys := newShardedSystem(t, 2, false, nil)
	defer sys.Close()
	sess := session(t, sys, 1000)
	for sh := 0; sh < 2; sh++ {
		if _, err := sess.AllocStagedOn(sh, 4096); err != nil {
			t.Fatalf("shard %d prealloc: %v", sh, err)
		}
	}
	before := []uint64{sys.Set.Shard(0).FreeBytes(), sys.Set.Shard(1).FreeBytes()}
	if err := sys.RestartTFS(); err != nil {
		t.Fatal(err)
	}
	for sh := 0; sh < 2; sh++ {
		if sys.Set.Shard(sh).FreeBytes() <= before[sh] {
			t.Fatalf("shard %d prealloc not scavenged: %d <= %d",
				sh, sys.Set.Shard(sh).FreeBytes(), before[sh])
		}
	}
}

// TestShardedSingleShardDegenerate pins the classic machine's behavior:
// Shards=1 must look exactly like the pre-sharding system to a client.
func TestShardedSingleShardDegenerate(t *testing.T) {
	sys := newShardedSystem(t, 1, false, nil)
	defer sys.Close()
	sess := session(t, sys, 1000)
	if sess.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", sess.Shards())
	}
	if sess.ShardOf(sess.Root) != 0 {
		t.Fatal("root not on shard 0")
	}
	oid := createFile(t, sess, "classic", []byte("unchanged"))
	if err := sess.Sync(); err != nil {
		t.Fatal(err)
	}
	if oid.Type() == sobj.TypeCollection {
		t.Fatal("file came back as a collection")
	}
}
