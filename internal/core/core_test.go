package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/sobj"
)

func newSystem(t *testing.T, track bool) *System {
	t.Helper()
	sys, err := New(Options{
		ArenaSize:        64 << 20,
		TrackPersistence: track,
		Lease:            500 * time.Millisecond,
		AcquireTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func session(t *testing.T, sys *System, uid uint32) *libfs.Session {
	t.Helper()
	s, err := sys.NewSession(libfs.Config{UID: uid, BatchLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// createFile stages a file with contents and links it under root.
func createFile(t *testing.T, s *libfs.Session, name string, contents []byte) sobj.OID {
	t.Helper()
	rootLock := s.Root.Lock()
	if err := s.Clerk.Acquire(rootLock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer s.Clerk.Release(rootLock, lockservice.X)
	oid, err := s.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FileWrite(oid, contents, 0, rootLock); err != nil {
		t.Fatal(err)
	}
	if err := s.DirInsert(s.Root, []byte(name), oid, rootLock); err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestEndToEndCreateWriteReadAcrossClients(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	contents := []byte("the quick brown fox")
	oid := createFile(t, a, "greeting", contents)

	// Before shipping, a sees its own staged file; b does not.
	buf := make([]byte, len(contents))
	if _, err := a.FileRead(oid, buf, 0); err != nil || !bytes.Equal(buf, contents) {
		t.Fatalf("self-read: %q %v", buf, err)
	}
	b := session(t, sys, 1001)
	if _, found, _ := b.DirLookup(b.Root, []byte("greeting")); found {
		t.Fatal("b sees unshipped create")
	}
	// b acquires the root lock: this revokes a's cached lock, which ships
	// a's batch (sequential sharing, §4.3).
	if err := b.Clerk.Acquire(b.Root.Lock(), lockservice.S, false); err != nil {
		t.Fatal(err)
	}
	got, found, err := b.DirLookup(b.Root, []byte("greeting"))
	if err != nil || !found {
		t.Fatalf("b lookup after revocation: %v %v", found, err)
	}
	if got != oid {
		t.Fatalf("oid mismatch: %v vs %v", got, oid)
	}
	buf2 := make([]byte, len(contents))
	if _, err := b.FileRead(got, buf2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, contents) {
		t.Fatalf("b read %q", buf2)
	}
	b.Clerk.Release(b.Root.Lock(), lockservice.S)
}

func TestExplicitSyncShipsUpdates(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	oid := createFile(t, a, "f", []byte("data"))
	if a.PendingOps() == 0 {
		t.Fatal("expected buffered ops")
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if a.PendingOps() != 0 {
		t.Fatal("sync left ops buffered")
	}
	// Now visible in SCM directly.
	col, err := sobj.OpenCollection(a.Mem, a.Root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := col.Lookup([]byte("f"))
	if err != nil || got != oid {
		t.Fatalf("direct lookup: %v %v", got, err)
	}
}

func TestClientCrashDiscardsUnshippedUpdates(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	createFile(t, a, "doomed", []byte("bits"))
	a.Abandon() // client dies with unshipped metadata
	// After the lease expires, another client can lock and sees nothing.
	b := session(t, sys, 1001)
	if err := b.Clerk.Acquire(b.Root.Lock(), lockservice.X, false); err != nil {
		t.Fatal(err)
	}
	defer b.Clerk.Release(b.Root.Lock(), lockservice.X)
	if _, found, _ := b.DirLookup(b.Root, []byte("doomed")); found {
		t.Fatal("crashed client's updates survived")
	}
}

func TestUpdateRejectedWithoutLock(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	// Stage an insert without holding any lock: TFS must reject the batch.
	oid, err := a.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.DirInsert(a.Root, []byte("sneaky"), oid, a.Root.Lock()); err != nil {
		t.Fatal(err)
	}
	err = a.FlushUpdates()
	if !errors.Is(err, libfs.ErrStaleBatch) {
		t.Fatalf("flush without lock: %v", err)
	}
	// Nothing leaked into the namespace.
	col, _ := sobj.OpenCollection(a.Mem, a.Root)
	if _, err := col.Lookup([]byte("sneaky")); !errors.Is(err, sobj.ErrNotFound) {
		t.Fatal("rejected insert is visible")
	}
}

func TestMachineCrashRecoversCommittedState(t *testing.T) {
	sys := newSystem(t, true)
	a := session(t, sys, 1000)
	oid := createFile(t, a, "persistent", []byte("durable bytes"))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashAndRecover(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	b := session(t, sys, 1001)
	got, found, err := b.DirLookup(b.Root, []byte("persistent"))
	if err != nil || !found || got != oid {
		t.Fatalf("after crash: %v %v %v", got, found, err)
	}
	buf := make([]byte, 13)
	if _, err := b.FileRead(got, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable bytes" {
		t.Fatalf("content after crash: %q", buf)
	}
}

func TestMachineCrashDropsUnsyncedClientState(t *testing.T) {
	sys := newSystem(t, true)
	a := session(t, sys, 1000)
	createFile(t, a, "volatile", []byte("gone"))
	// No sync: client buffered everything locally.
	if err := sys.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	b := session(t, sys, 1001)
	if _, found, _ := b.DirLookup(b.Root, []byte("volatile")); found {
		t.Fatal("unsynced create survived machine crash")
	}
	// The pre-allocated extents the dead client staged into were
	// scavenged: allocate-heavy work still succeeds.
	for i := 0; i < 10; i++ {
		createFile(t, b, fmt.Sprintf("post-crash-%d", i), bytes.Repeat([]byte("y"), 5000))
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestTFSRestartScavengesPreallocs(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	// Force pool refills, then lose the client to a TFS restart.
	if _, err := a.AllocStaged(4096); err != nil {
		t.Fatal(err)
	}
	freeBefore := sys.TFS.FreeBytes()
	if err := sys.RestartTFS(); err != nil {
		t.Fatal(err)
	}
	if sys.TFS.FreeBytes() <= freeBefore {
		t.Fatalf("prealloc not scavenged: %d <= %d", sys.TFS.FreeBytes(), freeBefore)
	}
}

func TestRenameCycleRejected(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	rootLock := a.Root.Lock()
	if err := a.Clerk.Acquire(rootLock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer a.Clerk.Release(rootLock, lockservice.X)
	dirA, err := a.CreateCollectionStaged(0755)
	if err != nil {
		t.Fatal(err)
	}
	dirB, err := a.CreateCollectionStaged(0755)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.DirInsert(a.Root, []byte("a"), dirA, rootLock); err != nil {
		t.Fatal(err)
	}
	if err := a.DirInsert(dirA, []byte("b"), dirB, rootLock); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	// Try to move a into a/b: cycle.
	if err := a.DirRename(a.Root, []byte("a"), dirB, []byte("a"), dirA, rootLock, rootLock); err != nil {
		t.Fatal(err)
	}
	if err := a.FlushUpdates(); !errors.Is(err, libfs.ErrStaleBatch) {
		t.Fatalf("cycle rename: %v", err)
	}
	// Namespace intact.
	got, found, _ := a.DirLookup(a.Root, []byte("a"))
	if !found || got != dirA {
		t.Fatal("namespace damaged by rejected rename")
	}
}

func TestAttachForeignExtentRejected(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	rootLock := a.Root.Lock()
	if err := a.Clerk.Acquire(rootLock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	defer a.Clerk.Release(rootLock, lockservice.X)
	oid, err := a.CreateMFileStaged(0644, sobj.DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.DirInsert(a.Root, []byte("f"), oid, rootLock); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	// Claim an extent the client never pre-allocated (e.g. the root
	// collection's own storage): must be rejected.
	if err := a.Clerk.Acquire(oid.Lock(), lockservice.X, false); err != nil {
		t.Fatal(err)
	}
	defer a.Clerk.Release(oid.Lock(), lockservice.X)
	if err := a.LogOp(forgedAttach(oid, a.Root.Addr())); err != nil {
		t.Fatal(err)
	}
	if err := a.FlushUpdates(); !errors.Is(err, libfs.ErrStaleBatch) {
		t.Fatalf("forged attach: %v", err)
	}
}

func TestDeleteFreesStorage(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	rootLock := a.Root.Lock()
	payload := bytes.Repeat([]byte("z"), 64*1024)
	oid := createFile(t, a, "big", payload)
	_ = oid
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	freeAfterCreate := sys.TFS.FreeBytes()
	if err := a.Clerk.Acquire(rootLock, lockservice.X, true); err != nil {
		t.Fatal(err)
	}
	if err := a.DirRemove(a.Root, []byte("big"), rootLock); err != nil {
		t.Fatal(err)
	}
	a.Clerk.Release(rootLock, lockservice.X)
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if sys.TFS.FreeBytes() <= freeAfterCreate {
		t.Fatalf("delete freed nothing: %d <= %d", sys.TFS.FreeBytes(), freeAfterCreate)
	}
}

func TestTwoClientsSequentialSharing(t *testing.T) {
	sys := newSystem(t, false)
	a := session(t, sys, 1000)
	b := session(t, sys, 1001)
	// a creates, b appends, a reads the combined result.
	oid := createFile(t, a, "shared", []byte("first|"))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	a.Clerk.FlushAll() // release cached locks voluntarily
	if err := b.Clerk.Acquire(oid.Lock(), lockservice.X, false); err != nil {
		t.Fatal(err)
	}
	size, err := b.FileSize(oid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.FileWrite(oid, []byte("second"), size, oid.Lock()); err != nil {
		t.Fatal(err)
	}
	b.Clerk.Release(oid.Lock(), lockservice.X)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := a.FileRead(oid, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "first|second" {
		t.Fatalf("combined = %q", buf)
	}
}

func TestStatVolThroughRPC(t *testing.T) {
	sys := newSystem(t, false)
	if sys.TFS.Root().Type() != sobj.TypeCollection {
		t.Fatal("root is not a collection")
	}
	if sys.TFS.FreeBytes() == 0 {
		t.Fatal("no free space on fresh volume")
	}
}

// forgedAttach builds a malicious OpAttachExtent claiming storage the
// client never pre-allocated.
func forgedAttach(target sobj.OID, addr uint64) fsproto.Op {
	return fsproto.Op{
		Code: fsproto.OpAttachExtent, Target: target,
		Val: 0, Val2: addr, CoverLock: target.Lock(),
	}
}
