package scm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
)

func tmpVolPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.aerie")
}

// createAndClose makes a small volume, writes a recognizable pattern at
// addr 0 and near the end, fences, and closes cleanly.
func createAndClose(t *testing.T, path string, arena uint64) {
	t.Helper()
	v, err := CreateVolume(path, VolumeOptions{ArenaSize: arena})
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	m := v.Mem()
	if err := m.Write(0, []byte("persist-head")); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(m.Size()-16, []byte("persist-tail")); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(0, 16); err != nil {
		t.Fatal(err)
	}
	m.Fence()
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestVolumePersistsAcrossReopen(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)

	v, err := OpenVolume(path, VolumeOptions{})
	if err != nil {
		t.Fatalf("OpenVolume: %v", err)
	}
	defer v.Close()
	if v.WasDirty() {
		t.Fatalf("cleanly closed volume reopened dirty")
	}
	if v.Generation() != 2 {
		t.Fatalf("generation = %d, want 2 (create + reopen)", v.Generation())
	}
	m := v.Mem()
	buf := make([]byte, 12)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persist-head" {
		t.Fatalf("head read back %q", buf)
	}
	if err := m.Read(m.Size()-16, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persist-tail" {
		t.Fatalf("tail read back %q", buf)
	}
}

func TestVolumeDirtyFlagSurvivesUncleanDeath(t *testing.T) {
	path := tmpVolPath(t)
	v, err := CreateVolume(path, VolumeOptions{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mem().Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v.Mem().Fence()
	// No Close: simulate the process dying. Drop the mapping without
	// clearing the flag, as SIGKILL would.
	v.teardown()

	r, err := OpenVolume(path, VolumeOptions{})
	if err != nil {
		t.Fatalf("OpenVolume after unclean death: %v", err)
	}
	if !r.WasDirty() {
		t.Fatalf("dirty flag not set after unclean death")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// RequireClean must reject a dirty volume with the typed error.
	v2, err := CreateVolume(path, VolumeOptions{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v2.teardown()
	if _, err := OpenVolume(path, VolumeOptions{RequireClean: true}); !errors.Is(err, ErrDirtyVolume) {
		t.Fatalf("RequireClean on dirty volume: err = %v, want ErrDirtyVolume", err)
	}
	// After a clean open+close cycle the flag clears again.
	r2, err := OpenVolume(path, VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := OpenVolume(path, VolumeOptions{RequireClean: true})
	if err != nil {
		t.Fatalf("RequireClean after clean close: %v", err)
	}
	_ = r3.Close()
}

func TestVolumeRejectsTruncatedFile(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)

	// Truncated mid-arena: superblock intact but the file cannot hold the
	// geometry it claims.
	if err := os.Truncate(path, volHdrSize+1024); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("truncated arena: err = %v, want ErrBadVolume", err)
	}
	// Truncated inside the superblock itself.
	if err := os.Truncate(path, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("truncated superblock: err = %v, want ErrBadVolume", err)
	}
}

func TestVolumeRejectsZeroedSuperblock(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, volHdrLen), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("zeroed superblock: err = %v, want ErrBadVolume", err)
	}
}

func TestVolumeRejectsForeignFile(t *testing.T) {
	path := tmpVolPath(t)
	if err := os.WriteFile(path, make([]byte, 1<<16), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("foreign file: err = %v, want ErrBadVolume", err)
	}
}

func TestVolumeRejectsFutureVersion(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [volHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	putU32(hdr[offVolVersion:], volVersion+7)
	putU64(hdr[offVolSum:], volChecksum(hdr[:])) // keep the checksum honest
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future version: err = %v, want ErrVersionMismatch", err)
	}
}

func TestVolumeRejectsChecksumMismatch(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a geometry field without fixing the checksum: a torn
	// superblock write.
	if _, err := f.WriteAt([]byte{0xff}, offVolArena); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenVolume(path, VolumeOptions{}); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("checksum mismatch: err = %v, want ErrBadVolume", err)
	}
}

func TestVolumeMapFaultPoint(t *testing.T) {
	inj := faultinject.New()
	inj.FailAt("scm.map", 0, nil)
	path := tmpVolPath(t)
	if _, err := CreateVolume(path, VolumeOptions{ArenaSize: 1 << 20, Faults: inj}); !errors.Is(err, ErrMapFailed) {
		t.Fatalf("injected map failure: err = %v, want ErrMapFailed", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file created despite injected pre-map failure")
	}
}

func TestVolumeCreateInUnwritableLocation(t *testing.T) {
	// A path under a regular file fails with ENOTDIR regardless of
	// privilege (chmod-based unwritability is invisible to root).
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateVolume(filepath.Join(blocker, "vol.aerie"), VolumeOptions{ArenaSize: 1 << 20}); !errors.Is(err, ErrMapFailed) {
		t.Fatalf("unwritable location: err = %v, want ErrMapFailed", err)
	}
}

func TestVolumeReadOnlyMapping(t *testing.T) {
	path := tmpVolPath(t)
	createAndClose(t, path, 1<<20)
	v, err := OpenVolume(path, VolumeOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if !v.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	m := v.Mem()
	buf := make([]byte, 12)
	if err := m.Read(0, buf); err != nil || string(buf) != "persist-head" {
		t.Fatalf("read through RO mapping: %q, %v", buf, err)
	}
	if sl := AsSlicer(m); sl == nil {
		t.Fatal("RO mapping lost the zero-copy capability")
	} else if b, err := sl.Slice(0, 12); err != nil || string(b) != "persist-head" {
		t.Fatalf("slice through RO mapping: %q, %v", b, err)
	}
	if err := m.Write(0, []byte("nope")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write through RO mapping: err = %v, want ErrReadOnly", err)
	}
	if err := m.WriteStream(0, []byte("nope")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("stream through RO mapping: err = %v, want ErrReadOnly", err)
	}
	if err := m.Atomic64(0, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("atomic through RO mapping: err = %v, want ErrReadOnly", err)
	}
	// A read-only open must not clear or set the dirty flag, and must not
	// bump the generation.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenVolume(path, VolumeOptions{RequireClean: true})
	if err != nil {
		t.Fatalf("volume no longer clean after RO open: %v", err)
	}
	_ = r.Close()
}

func TestVolumeGrowPreservesDataAndRemaps(t *testing.T) {
	path := tmpVolPath(t)
	v, err := CreateVolume(path, VolumeOptions{ArenaSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	m := v.Mem()
	if err := m.Write(1234, []byte("survive-grow")); err != nil {
		t.Fatal(err)
	}
	m.Fence()
	old := m.Size()
	if err := v.Grow(3 << 20); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if m.Size() < 3<<20 {
		t.Fatalf("arena %d after Grow, want >= %d", m.Size(), 3<<20)
	}
	if m.Size()%PageSize != 0 {
		t.Fatalf("grown arena %d not page-aligned", m.Size())
	}
	// Doubling schedule: 256K -> 512K -> 1M -> 2M -> 4M.
	if m.Size() != 4<<20 {
		t.Fatalf("arena %d after Grow, want 4MiB from the doubling schedule (was %d)", m.Size(), old)
	}
	buf := make([]byte, 12)
	if err := m.Read(1234, buf); err != nil || string(buf) != "survive-grow" {
		t.Fatalf("data lost across remap: %q, %v", buf, err)
	}
	// New space is usable and persists across reopen.
	if err := m.Write(m.Size()-PageSize, []byte("tail-after-grow")); err != nil {
		t.Fatal(err)
	}
	m.Fence()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenVolume(path, VolumeOptions{})
	if err != nil {
		t.Fatalf("reopen after grow: %v", err)
	}
	defer r.Close()
	if r.Mem().Size() != 4<<20 {
		t.Fatalf("reopened arena %d, want %d", r.Mem().Size(), 4<<20)
	}
	buf = make([]byte, 15)
	if err := r.Mem().Read(r.Mem().Size()-PageSize, buf); err != nil || string(buf) != "tail-after-grow" {
		t.Fatalf("grown-region data lost: %q, %v", buf, err)
	}
}

func TestNextMapSizeCappedStep(t *testing.T) {
	cases := []struct{ cur, want, out uint64 }{
		{PageSize, PageSize, PageSize},
		{1 << 20, 3 << 20, 4 << 20},
		{1 << 30, 1<<30 + 1, 2 << 30},          // exactly one capped step
		{2 << 30, 3<<30 + 5, 4 << 30},          // linear beyond the cap
		{maxRemapStep / 2, maxRemapStep + 1, maxRemapStep + maxRemapStep}, // double to cap, then one step
	}
	for _, c := range cases {
		if got := nextMapSize(c.cur, c.want); got != c.out {
			t.Errorf("nextMapSize(%d, %d) = %d, want %d", c.cur, c.want, got, c.out)
		}
	}
}

func TestVolumeMsyncObservability(t *testing.T) {
	sink := obs.New()
	path := tmpVolPath(t)
	v, err := CreateVolume(path, VolumeOptions{ArenaSize: 1 << 20, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	m := v.Mem()
	base := sink.Snapshot().Counter("scm.msync.calls")
	if err := m.Write(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(0, 100); err != nil {
		t.Fatal(err)
	}
	m.Fence()
	snap := sink.Snapshot()
	if got := snap.Counter("scm.msync.calls"); got != base+1 {
		t.Fatalf("scm.msync.calls = %d, want %d", got, base+1)
	}
	if got := snap.Counter("scm.msync.bytes"); got < 100 {
		t.Fatalf("scm.msync.bytes = %d, want >= 100", got)
	}
	h, ok := snap.Histogram("scm.msync.ns")
	if !ok || h.Count != 1 {
		t.Fatalf("scm.msync.ns histogram missing or empty: %+v ok=%v", h, ok)
	}
	// An empty window is barrier-free: no extra msync.
	m.Fence()
	if got := sink.Snapshot().Counter("scm.msync.calls"); got != base+1 {
		t.Fatalf("empty-window Fence issued an msync (calls=%d)", got)
	}
	if v.SyncErr() != nil {
		t.Fatalf("SyncErr = %v", v.SyncErr())
	}
}

func TestVolumeCloseDetachesMemory(t *testing.T) {
	path := tmpVolPath(t)
	v, err := CreateVolume(path, VolumeOptions{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := v.Mem()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := m.Read(0, make([]byte, 8)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read after Close: err = %v, want ErrOutOfRange", err)
	}
	if err := m.Write(0, make([]byte, 8)); err == nil {
		t.Fatal("write after Close succeeded")
	}
}
