// Package scm emulates byte-addressable storage-class memory (SCM) with the
// persistence primitives the Aerie paper borrows from Mnemosyne (§5.1):
//
//   - WriteFlush / Flush model wlflush (x86 clflush: write a cache line and
//     flush it to SCM for persistence),
//   - WriteStream + BFlush model streaming (non-temporal) stores drained by
//     flushing the write-combining buffers (x86 mfence),
//   - Fence models mfence write ordering,
//   - Atomic64 models the memory controller's guaranteed-atomic 64-bit write.
//
// The emulation keeps two images of memory: the volatile image (the
// processor-cache view that all loads and stores see) and, when persistence
// tracking is enabled, a persistent image holding only data that has been
// explicitly flushed. Crash simulation discards the volatile image and
// recovers from the persistent one, so consistency mechanisms built on top
// (redo logging, shadow updates) are exercised against realistic
// torn-write and lost-write failure modes. An adversarial mode additionally
// evicts random dirty cache lines early, as real caches may.
//
// All higher-level Aerie structures are serialized into this arena with
// explicit offsets — no Go pointers live in "SCM" — which is the
// substitution DESIGN.md documents for Go's GC-managed runtime.
package scm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
)

const (
	// LineSize is the cache-line granularity of flushes.
	LineSize = 64
	// PageSize is the protection/mapping granularity used by the SCM
	// manager.
	PageSize = 4096
)

// ErrOutOfRange reports an access outside the memory arena.
var ErrOutOfRange = errors.New("scm: address out of range")

// Space is the access interface to SCM shared by the raw Memory (privileged,
// used by the kernel SCM manager and the TFS) and by per-process protected
// mappings (internal/scmmgr), which add permission checks.
type Space interface {
	// Read copies len(p) bytes at addr into p.
	Read(addr uint64, p []byte) error
	// Write stores p at addr (into the volatile image; not yet
	// persistent).
	Write(addr uint64, p []byte) error
	// WriteStream stores p at addr with non-temporal stores; the data
	// becomes persistent at the next BFlush.
	WriteStream(addr uint64, p []byte) error
	// Flush persists the cache lines covering [addr, addr+n).
	Flush(addr uint64, n int) error
	// BFlush drains the write-combining buffers, persisting all prior
	// streaming writes.
	BFlush()
	// Fence orders preceding writes before subsequent ones.
	Fence()
	// Atomic64 performs an 8-byte atomic store at an 8-byte-aligned
	// address. It is never torn: after a crash the location holds either
	// the old or the new value (once flushed).
	Atomic64(addr uint64, v uint64) error
	// Size returns the arena size in bytes.
	Size() uint64
}

// Slicer is an optional capability of a Space: a zero-copy, read-only
// window into the arena. Direct readers (collections, mFiles, libfs) use it
// to walk structures in place instead of copying every byte out through
// Read — the load/store direct access the paper's library file systems are
// built on. The returned slice aliases the volatile image: it reflects
// subsequent writes, exactly as a load through a real mapping would, and it
// must never be written through (protection checks only covered reads).
// Implementations bound the slice's capacity so it cannot be extended.
type Slicer interface {
	// Slice returns a read-only view of [addr, addr+n).
	Slice(addr uint64, n int) ([]byte, error)
}

// AsSlicer returns s's zero-copy capability, or nil when s only supports
// copying reads. Hot readers resolve this once and keep the result rather
// than type-asserting per access.
func AsSlicer(s Space) Slicer {
	if sl, ok := s.(Slicer); ok {
		return sl
	}
	return nil
}

// View returns the bytes at [addr, addr+n): a zero-copy slice when s
// implements Slicer, otherwise a copy into buf (grown when too small).
// Callers must treat the result as read-only either way.
func View(s Space, addr uint64, n int, buf []byte) ([]byte, error) {
	if sl, ok := s.(Slicer); ok {
		return sl.Slice(addr, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if err := s.Read(addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Stats counts SCM accesses.
type Stats struct {
	Reads        costmodel.Counter
	Writes       costmodel.Counter
	BytesRead    costmodel.Counter
	BytesWritten costmodel.Counter
	LinesFlushed costmodel.Counter
	Fences       costmodel.Counter
}

// Config configures a Memory.
type Config struct {
	// Size is the arena size in bytes; it is rounded up to a page.
	Size uint64
	// Costs supplies the injected SCM write latency (may be nil for no
	// injection). The pointer is shared so experiments can sweep the
	// latency without rebuilding the arena.
	Costs *costmodel.Costs
	// TrackPersistence enables the persistent shadow image and crash
	// simulation. It costs a second copy of the arena plus per-write
	// dirty-line bookkeeping, so benchmarks leave it off.
	TrackPersistence bool
	// ParanoidSlices is a debug mode for the read-only Slicer contract,
	// which is otherwise comment-only: Slice hands out defensive copies
	// instead of live windows, so a consumer that writes through a view
	// cannot corrupt the arena, and one that depends on mutating or
	// long-lived aliased views diverges visibly under the Slice/Read
	// equivalence tests. Defeats the zero-copy benefit; tests only.
	ParanoidSlices bool
	// Faults, when non-nil, arms fault points on the persistence paths
	// (scm.flush, scm.bflush, scm.stream). Points fire before the effect
	// they guard, so a crash there loses exactly the lines the operation
	// was about to persist.
	Faults *faultinject.Injector
	// Obs, when non-nil, receives scm.lines_flushed / scm.fences counts
	// and scm.charged_ns, the injected SCM write latency actually charged
	// — the raw-media component of every breakdown table.
	Obs *obs.Sink
}

// Memory is an emulated SCM arena. Data accesses are not internally
// synchronized — like real memory, concurrent conflicting access is the
// caller's bug and higher layers use the lock service to prevent it — but
// the persistence bookkeeping is synchronized so flushes from multiple
// goroutines are safe.
type Memory struct {
	data     []byte
	costs    *costmodel.Costs
	track    bool
	paranoid bool
	faults   *faultinject.Injector

	// vol is non-nil when the arena is an mmap-backed volume file
	// (volume.go): stores extend the pending-sync window below and the
	// Fence/BFlush barriers msync it. readonly marks a PROT_READ mapping,
	// on which every store fails with ErrReadOnly.
	vol      *Volume
	readonly bool

	mu           sync.Mutex
	shadow       []byte
	dirty        []uint64 // bitmap, one bit per line; valid iff track
	pending      []uint64 // line indices of streaming writes awaiting BFlush; used iff track
	pendingCount int      // lines awaiting BFlush when not tracking (identities not needed)
	// [syncLo, syncHi): bytes stored since the last durability barrier;
	// maintained only when vol != nil, drained by Volume.syncBarrier.
	syncLo, syncHi uint64

	stats Stats

	// Metrics resolved once at construction; all nil (free no-ops) when
	// cfg.Obs is nil.
	obsLines   *obs.Counter
	obsFences  *obs.Counter
	obsCharged *obs.Counter // injected write latency actually spun, ns
	obsClient  *obs.Counter // portion of obsCharged incurred through client mappings
}

// New creates an arena per cfg.
func New(cfg Config) *Memory {
	size := (cfg.Size + PageSize - 1) / PageSize * PageSize
	if size == 0 {
		size = PageSize
	}
	m := &Memory{
		data:       make([]byte, size),
		costs:      cfg.Costs,
		track:      cfg.TrackPersistence,
		paranoid:   cfg.ParanoidSlices,
		faults:     cfg.Faults,
		obsLines:   cfg.Obs.Counter("scm.lines_flushed"),
		obsFences:  cfg.Obs.Counter("scm.fences"),
		obsCharged: cfg.Obs.Counter("scm.charged_ns"),
		obsClient:  cfg.Obs.Counter("scm.client.charged_ns"),
	}
	if m.track {
		m.shadow = make([]byte, size)
		m.dirty = make([]uint64, (size/LineSize+63)/64)
	}
	return m
}

// Size returns the arena size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Stats returns the access counters.
func (m *Memory) Stats() *Stats { return &m.stats }

func (m *Memory) check(addr uint64, n int) error {
	if n < 0 || addr > uint64(len(m.data)) || uint64(n) > uint64(len(m.data))-addr {
		return fmt.Errorf("%w: [%#x,+%d) of %#x", ErrOutOfRange, addr, n, len(m.data))
	}
	return nil
}

// Read copies len(p) bytes at addr into p.
func (m *Memory) Read(addr uint64, p []byte) error {
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	copy(p, m.data[addr:])
	m.stats.Reads.Add(1)
	m.stats.BytesRead.Add(int64(len(p)))
	return nil
}

// Slice implements Slicer: a zero-copy window into the volatile image.
// The capacity is clipped to n so the view cannot be extended by append,
// and stat accounting is batched into one counter update per call. Under
// Config.ParanoidSlices the window is a defensive copy instead (see the
// field doc).
func (m *Memory) Slice(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	m.stats.Reads.Add(1)
	m.stats.BytesRead.Add(int64(n))
	if m.paranoid {
		p := make([]byte, n)
		copy(p, m.data[addr:])
		return p, nil
	}
	return m.data[addr : addr+uint64(n) : addr+uint64(n)], nil
}

// Write stores p at addr into the volatile image.
func (m *Memory) Write(addr uint64, p []byte) error {
	if m.readonly {
		return ErrReadOnly
	}
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	copy(m.data[addr:], p)
	m.stats.Writes.Add(1)
	m.stats.BytesWritten.Add(int64(len(p)))
	if m.track {
		m.markDirty(addr, len(p))
	}
	if m.vol != nil {
		m.noteStored(addr, len(p))
	}
	return nil
}

// noteStored extends the pending-sync window of a mapped arena so the next
// durability barrier msyncs the covering pages.
func (m *Memory) noteStored(addr uint64, n int) {
	if n == 0 {
		return
	}
	end := addr + uint64(n)
	m.mu.Lock()
	if m.syncHi <= m.syncLo {
		m.syncLo, m.syncHi = addr, end
	} else {
		if addr < m.syncLo {
			m.syncLo = addr
		}
		if end > m.syncHi {
			m.syncHi = end
		}
	}
	m.mu.Unlock()
}

// WriteStream stores p at addr with non-temporal stores; persistent after
// the next BFlush.
func (m *Memory) WriteStream(addr uint64, p []byte) error {
	if m.readonly {
		return ErrReadOnly
	}
	if err := m.check(addr, len(p)); err != nil {
		return err
	}
	if err := m.faults.Hit("scm.stream"); err != nil {
		return err
	}
	if m.vol != nil {
		m.noteStored(addr, len(p))
	}
	copy(m.data[addr:], p)
	m.stats.Writes.Add(1)
	m.stats.BytesWritten.Add(int64(len(p)))
	first, last := addr/LineSize, (addr+uint64(len(p))-1)/LineSize
	if m.track {
		m.mu.Lock()
		for l := first; l <= last; l++ {
			m.setDirtyLocked(l)
			m.pending = append(m.pending, l)
		}
		m.mu.Unlock()
	} else {
		// Without tracking, BFlush needs only how many lines are pending
		// (for LinesFlushed and latency accounting), not which ones — so
		// keep an O(1) count instead of a slice that grows without bound
		// when a streaming writer never calls BFlush. The count is kept
		// even when no write latency is configured: Costs is a shared
		// pointer that experiments sweep mid-run, so lines streamed while
		// the latency was zero must still be charged by a later BFlush.
		m.mu.Lock()
		m.pendingCount += int(last-first) + 1
		m.mu.Unlock()
	}
	return nil
}

// PendingLines reports how many streaming-write lines await BFlush (test
// hook for the pending-bookkeeping regression).
func (m *Memory) PendingLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending) + m.pendingCount
}

func (m *Memory) markDirty(addr uint64, n int) {
	if n == 0 {
		return
	}
	m.mu.Lock()
	first, last := addr/LineSize, (addr+uint64(n)-1)/LineSize
	for l := first; l <= last; l++ {
		m.setDirtyLocked(l)
	}
	m.mu.Unlock()
}

func (m *Memory) setDirtyLocked(line uint64) { m.dirty[line/64] |= 1 << (line % 64) }

func (m *Memory) clearDirtyLocked(line uint64) { m.dirty[line/64] &^= 1 << (line % 64) }

func (m *Memory) isDirtyLocked(line uint64) bool { return m.dirty[line/64]&(1<<(line%64)) != 0 }

// Flush persists the cache lines covering [addr, addr+n), charging the
// configured per-line SCM write latency.
func (m *Memory) Flush(addr uint64, n int) error {
	_, err := m.FlushCharged(addr, n)
	return err
}

// FlushCharged is Flush, additionally returning the injected SCM write
// latency this call charged, in nanoseconds. Callers attributing latency to
// a side of the stack (e.g. a client mapping) use the per-call return; a
// before/after diff of the shared scm.charged_ns counter would fold in
// concurrent flushers' charges.
func (m *Memory) FlushCharged(addr uint64, n int) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	if err := m.faults.Hit("scm.flush"); err != nil {
		return 0, err
	}
	first, last := addr/LineSize, (addr+uint64(n)-1)/LineSize
	lines := int64(last - first + 1)
	m.stats.LinesFlushed.Add(lines)
	m.obsLines.Add(lines)
	var charged int64
	if m.costs != nil && m.costs.SCMWriteLine > 0 {
		costmodel.Spin(time.Duration(lines) * m.costs.SCMWriteLine)
		charged = lines * int64(m.costs.SCMWriteLine)
		m.obsCharged.Add(charged)
	}
	if m.track {
		m.mu.Lock()
		for l := first; l <= last; l++ {
			m.persistLineLocked(l)
		}
		m.mu.Unlock()
	}
	return charged, nil
}

func (m *Memory) persistLineLocked(line uint64) {
	off := line * LineSize
	copy(m.shadow[off:off+LineSize], m.data[off:off+LineSize])
	m.clearDirtyLocked(line)
}

// BFlush drains the write-combining buffers, persisting all streaming writes
// issued since the previous BFlush.
func (m *Memory) BFlush() { m.BFlushCharged() }

// BFlushCharged is BFlush, additionally returning the injected SCM write
// latency this call charged, in nanoseconds (see FlushCharged).
func (m *Memory) BFlushCharged() int64 {
	// BFlush has no error return (real hardware cannot fail a drain), so
	// only delay and crash rules are meaningful here.
	_ = m.faults.Hit("scm.bflush")
	// On a mapped arena the buffer drain is a durability barrier like
	// Fence: streaming writes must be on media when BFlush returns.
	if m.vol != nil {
		m.vol.syncBarrier(m)
	}
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	lines := int64(len(pending)) + int64(m.pendingCount)
	m.pendingCount = 0
	m.mu.Unlock()
	if lines == 0 {
		return 0
	}
	m.stats.LinesFlushed.Add(lines)
	m.obsLines.Add(lines)
	var charged int64
	if m.costs != nil && m.costs.SCMWriteLine > 0 {
		costmodel.Spin(time.Duration(lines) * m.costs.SCMWriteLine)
		charged = lines * int64(m.costs.SCMWriteLine)
		m.obsCharged.Add(charged)
	}
	if m.track {
		m.mu.Lock()
		for _, l := range pending {
			m.persistLineLocked(l)
		}
		m.mu.Unlock()
	}
	return charged
}

// Fence orders preceding writes before subsequent ones. In the volatile
// emulation flushes apply to the persistent image immediately and in
// program order, so Fence only counts the event; on an mmap-backed arena it
// is the durability barrier that msyncs every page stored since the last
// barrier (see Volume.syncBarrier).
func (m *Memory) Fence() {
	m.stats.Fences.Add(1)
	m.obsFences.Inc()
	if m.vol != nil {
		m.vol.syncBarrier(m)
	}
}

// AddClientChargedNS attributes d nanoseconds of already-charged SCM write
// latency (a FlushCharged/BFlushCharged return value) to the client side of
// the stack (writes issued through a protected mapping rather than by the
// trusted service). The breakdown derives server-side SCM time as
// charged - client.
func (m *Memory) AddClientChargedNS(d int64) {
	if d > 0 {
		m.obsClient.Add(d)
	}
}

// Atomic64 performs an 8-byte atomic store. The store is never torn across
// a crash once flushed; an unflushed store is lost whole.
func (m *Memory) Atomic64(addr uint64, v uint64) error {
	if addr%8 != 0 {
		return fmt.Errorf("scm: Atomic64 at unaligned address %#x", addr)
	}
	var b [8]byte
	putU64(b[:], v)
	return m.Write(addr, b[:])
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// PersistAll flushes every dirty line, making volatile and persistent images
// identical. Used after mkfs-style initialization.
func (m *Memory) PersistAll() {
	if !m.track {
		return
	}
	m.mu.Lock()
	copy(m.shadow, m.data)
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	m.pending = nil
	m.mu.Unlock()
}

// EvictRandom persists each currently dirty line with probability p,
// modeling uncontrolled cache evictions. Crash-consistency property tests
// call this to make sure recovery does not depend on lines staying cached.
func (m *Memory) EvictRandom(rng *rand.Rand, p float64) {
	if !m.track {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for line := uint64(0); line < uint64(len(m.data))/LineSize; line++ {
		if m.isDirtyLocked(line) && rng.Float64() < p {
			m.persistLineLocked(line)
		}
	}
}

// Crash discards the volatile image, simulating power loss: memory contents
// revert to the persistent image. Panics if persistence tracking is off.
func (m *Memory) Crash() {
	if !m.track {
		panic("scm: Crash requires TrackPersistence")
	}
	m.mu.Lock()
	copy(m.data, m.shadow)
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	m.pending = nil
	m.mu.Unlock()
}

// DirtyLines returns the number of lines written but not yet persistent.
func (m *Memory) DirtyLines() int {
	if !m.track {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.dirty {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
