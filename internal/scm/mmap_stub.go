//go:build !linux

package scm

// Stub mapping layer for platforms without the mmap backend: every entry
// point fails with ErrMapFailed, which callers (internal/core) turn into a
// graceful downgrade to the volatile arena.

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mapFile(f *os.File, n int, readonly bool) ([]byte, error) {
	return nil, fmt.Errorf("%w: mmap unsupported on this platform", ErrMapFailed)
}

func unmapFile(b []byte) error { return nil }

func msyncRange(full []byte, off, n uint64) error { return nil }
