//go:build linux

package scm

// Raw memory-mapping syscalls for the persistent volume backend. Only this
// file (and its stub twin) touch the platform mmap interface; volume.go is
// written against these three helpers so unsupported platforms degrade to
// the volatile arena instead of failing the build.

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports whether this build can map volume files at all.
const mmapSupported = true

// mapFile maps n bytes of f at offset 0, shared, read-write unless readonly.
func mapFile(f *os.File, n int, readonly bool) ([]byte, error) {
	prot := syscall.PROT_READ
	if !readonly {
		prot |= syscall.PROT_WRITE
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, n, prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap %d bytes: %w", n, err)
	}
	return b, nil
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// msyncRange flushes the pages of full covering [off, off+n) to the backing
// file. off is aligned down to a page boundary, as msync requires.
func msyncRange(full []byte, off, n uint64) error {
	if n == 0 {
		return nil
	}
	pgoff := off &^ uint64(PageSize-1)
	end := off + n
	if end > uint64(len(full)) {
		end = uint64(len(full))
	}
	if pgoff >= end {
		return nil
	}
	return msync(full[pgoff:end])
}

// msync synchronously writes the mapped pages of b back to the file. The
// stdlib syscall package has no Msync wrapper on linux, so this issues the
// raw syscall; b's base is page-aligned because it comes from mapFile.
func msync(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

