package scm

// An mmap-backed persistent arena: the volume file. The paper's premise is
// that the file system lives in storage-class memory that outlasts any
// process; this backend makes that a testable property instead of a
// simulation. A volume is a regular file whose first page holds a versioned
// superblock (magic, layout version, clean/dirty flag, geometry, checksum)
// and whose remaining pages are the SCM arena, mapped shared into the
// process. Stores hit the mapping directly — the load/store path is
// unchanged — and the persistence primitives map onto msync:
//
//   - Write/WriteStream extend a pending-sync window (the dirty span since
//     the last durability barrier),
//   - Fence and BFlush msync the window's pages (MS_SYNC), so everything
//     flushed before a fence is on media before anything after it,
//   - Close msyncs the whole mapping and clears the superblock's dirty
//     flag, so a clean shutdown is distinguishable from a crash.
//
// A process that dies by SIGKILL loses nothing it stored (the kernel page
// cache outlives the process); what it loses is the chance to clear the
// dirty flag — exactly the signal recovery needs. Machine power loss is the
// stronger adversary and remains the volatile arena's crash simulation.
//
// Growth remaps: Grow extends the file with ftruncate and replaces the
// mapping, doubling the size up to a capped step (maxRemapStep) so huge
// volumes stop paying exponential over-reservation. Growing invalidates
// zero-copy slices of the old mapping, so it is legal only at mount time,
// before readers exist.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/obs"
)

// Typed volume errors. Test with errors.Is.
var (
	// ErrMapFailed: the volume file could not be created, grown, or mapped.
	// internal/core downgrades this to the volatile arena (with the error
	// surfaced) when creating a fresh machine; opening existing data fails
	// hard instead.
	ErrMapFailed = errors.New("scm: volume mapping failed")
	// ErrBadVolume: the file is not a volume (bad magic), is torn or
	// truncated, fails its superblock checksum, or has impossible geometry.
	ErrBadVolume = errors.New("scm: bad volume file")
	// ErrVersionMismatch: the superblock's layout version is newer than this
	// build understands.
	ErrVersionMismatch = errors.New("scm: volume layout version mismatch")
	// ErrDirtyVolume: the volume was not cleanly closed and the caller
	// demanded a clean one (VolumeOptions.RequireClean).
	ErrDirtyVolume = errors.New("scm: volume is dirty (not cleanly closed)")
	// ErrReadOnly: a store through a read-only volume mapping.
	ErrReadOnly = errors.New("scm: read-only mapping")
)

// Volume-file superblock, in the first page of the file; the arena proper
// starts at volHdrSize. All fields little-endian.
//
//	0x00 u64 magic
//	0x08 u32 layout version
//	0x0c u32 flags (bit0: dirty — mapped for write and not cleanly closed)
//	0x10 u64 arena size in bytes (file must hold volHdrSize+arena)
//	0x18 u32 page size   0x1c u32 cache-line size
//	0x20 u64 generation (writable opens; recovery epochs are countable)
//	0x28 u64 FNV-1a checksum of this header with flags and checksum zeroed
const (
	volMagic   = 0xae8105c4f11e0001
	volVersion = 1

	offVolMagic   = 0x00
	offVolVersion = 0x08
	offVolFlags   = 0x0c
	offVolArena   = 0x10
	offVolPage    = 0x18
	offVolLine    = 0x1c
	offVolGen     = 0x20
	offVolSum     = 0x28
	volHdrLen     = 0x30

	volFlagDirty = 1

	// volHdrSize is the reserved header region; the arena begins here.
	volHdrSize = PageSize

	// maxRemapStep caps the doubling growth step when remapping, so a large
	// volume grows by at most 1 GiB per remap instead of doubling forever.
	maxRemapStep = 1 << 30
)

// VolumeOptions configures CreateVolume / OpenVolume.
type VolumeOptions struct {
	// ArenaSize is the data-region size for CreateVolume (rounded up to a
	// page; default one page). Ignored by OpenVolume, which trusts the
	// recorded geometry.
	ArenaSize uint64
	// ReadOnly maps the file PROT_READ (OpenVolume only): loads are
	// zero-copy as usual, stores fail with ErrReadOnly, and the dirty flag
	// is left untouched — the multi-process read-only client mapping.
	ReadOnly bool
	// RequireClean makes OpenVolume fail with ErrDirtyVolume instead of
	// opening a volume whose dirty flag is set.
	RequireClean bool
	// Costs, Faults, Obs have the same meaning as in Config; the fault
	// point "scm.map" fires before the file is mapped, so an injected error
	// there exercises the mapping-failure degradation path.
	Costs  *costmodel.Costs
	Faults *faultinject.Injector
	Obs    *obs.Sink
}

// Volume is an open mmap-backed arena: the file, its mapping, and the
// Memory serving the arena region. The Memory's persistence primitives
// msync through the volume (see the package comment above).
type Volume struct {
	mem  *Memory
	f    *os.File
	path string

	mu       sync.Mutex
	full     []byte // whole mapping: header page + arena
	arena    uint64 // recorded arena size
	gen      uint64
	readonly bool
	wasDirty bool
	closed   bool
	syncErr  error // first msync failure, sticky

	obsMsyncs    *obs.Counter
	obsMsyncNS   *obs.Histogram
	obsMsyncByte *obs.Counter
	obsMsyncErrs *obs.Counter
}

// fnv1a64 is the superblock checksum (FNV-1a over b).
func fnv1a64(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// volChecksum computes the header checksum: the first volHdrLen bytes with
// the flags word and the checksum field zeroed, so toggling the dirty flag
// never invalidates the sum of the geometry it guards.
func volChecksum(hdr []byte) uint64 {
	var tmp [volHdrLen]byte
	copy(tmp[:], hdr[:volHdrLen])
	putU64(tmp[offVolSum:], 0)
	tmp[offVolFlags], tmp[offVolFlags+1], tmp[offVolFlags+2], tmp[offVolFlags+3] = 0, 0, 0, 0
	return fnv1a64(tmp[:])
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// CreateVolume creates (or overwrites) a volume file with a fresh arena of
// opts.ArenaSize bytes, maps it read-write, and marks it dirty until Close.
// Any failure to create, size, or map the file is reported as ErrMapFailed
// so callers can downgrade to the volatile arena.
func CreateVolume(path string, opts VolumeOptions) (*Volume, error) {
	if err := opts.Faults.Hit("scm.map"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	if !mmapSupported {
		return nil, fmt.Errorf("%w: mmap unsupported on this platform", ErrMapFailed)
	}
	arena := (opts.ArenaSize + PageSize - 1) / PageSize * PageSize
	if arena == 0 {
		arena = PageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	if err := f.Truncate(int64(volHdrSize + arena)); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: size %s: %v", ErrMapFailed, path, err)
	}
	full, err := mapFile(f, int(volHdrSize+arena), false)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	v := newVolume(f, path, full, arena, opts, false)
	v.gen = 1
	v.writeHeader(true)
	if err := v.msyncHeader(); err != nil {
		v.teardown()
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	v.mem = v.newArenaMemory(opts)
	return v, nil
}

// OpenVolume maps an existing volume file after validating its superblock:
// magic, layout version, checksum, and geometry against the actual file
// size. Unlike CreateVolume, failures here are never downgraded — the file
// claims to hold user data, so a torn, truncated, foreign, or
// future-versioned volume is a typed hard error.
func OpenVolume(path string, opts VolumeOptions) (*Volume, error) {
	if err := opts.Faults.Hit("scm.map"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	if !mmapSupported {
		return nil, fmt.Errorf("%w: mmap unsupported on this platform", ErrMapFailed)
	}
	flags := os.O_RDWR
	if opts.ReadOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	if st.Size() < volHdrLen {
		f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes, smaller than the superblock", ErrBadVolume, path, st.Size())
	}
	var hdr [volHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: reading superblock: %v", ErrBadVolume, err)
	}
	if U64(hdr[offVolMagic:]) != volMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s: bad magic %#x", ErrBadVolume, path, U64(hdr[offVolMagic:]))
	}
	if ver := U32(hdr[offVolVersion:]); ver != volVersion {
		f.Close()
		if ver > volVersion {
			return nil, fmt.Errorf("%w: %s: layout version %d, this build understands %d",
				ErrVersionMismatch, path, ver, volVersion)
		}
		return nil, fmt.Errorf("%w: %s: unsupported layout version %d", ErrBadVolume, path, ver)
	}
	if sum := volChecksum(hdr[:]); sum != U64(hdr[offVolSum:]) {
		f.Close()
		return nil, fmt.Errorf("%w: %s: superblock checksum %#x, want %#x",
			ErrBadVolume, path, U64(hdr[offVolSum:]), sum)
	}
	if U32(hdr[offVolPage:]) != PageSize || U32(hdr[offVolLine:]) != LineSize {
		f.Close()
		return nil, fmt.Errorf("%w: %s: geometry page=%d line=%d, want %d/%d",
			ErrBadVolume, path, U32(hdr[offVolPage:]), U32(hdr[offVolLine:]), PageSize, LineSize)
	}
	arena := U64(hdr[offVolArena:])
	if arena == 0 || arena%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s: impossible arena size %d", ErrBadVolume, path, arena)
	}
	if uint64(st.Size()) < volHdrSize+arena {
		f.Close()
		return nil, fmt.Errorf("%w: %s truncated: file %d bytes, superblock claims %d",
			ErrBadVolume, path, st.Size(), volHdrSize+arena)
	}
	wasDirty := U32(hdr[offVolFlags:])&volFlagDirty != 0
	if wasDirty && opts.RequireClean {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrDirtyVolume, path)
	}
	full, err := mapFile(f, int(volHdrSize+arena), opts.ReadOnly)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
	}
	v := newVolume(f, path, full, arena, opts, opts.ReadOnly)
	v.gen = U64(hdr[offVolGen:])
	v.wasDirty = wasDirty
	if !v.readonly {
		// Mark dirty for the lifetime of this writable open; a crash (or
		// SIGKILL) leaves the flag set for the next opener to see.
		v.gen++
		v.writeHeader(true)
		if err := v.msyncHeader(); err != nil {
			v.teardown()
			return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
		}
	}
	v.mem = v.newArenaMemory(opts)
	return v, nil
}

func newVolume(f *os.File, path string, full []byte, arena uint64, opts VolumeOptions, readonly bool) *Volume {
	return &Volume{
		f: f, path: path, full: full, arena: arena, readonly: readonly,
		obsMsyncs:    opts.Obs.Counter("scm.msync.calls"),
		obsMsyncNS:   opts.Obs.Histogram("scm.msync.ns"),
		obsMsyncByte: opts.Obs.Counter("scm.msync.bytes"),
		obsMsyncErrs: opts.Obs.Counter("scm.msync.errors"),
	}
}

// newArenaMemory builds the Memory view of the arena region. The mapped
// backend never tracks a persistent shadow (the file is the persistent
// image), so TrackPersistence-style crash simulation stays with the
// volatile arena.
func (v *Volume) newArenaMemory(opts VolumeOptions) *Memory {
	m := &Memory{
		data:       v.full[volHdrSize : volHdrSize+v.arena : volHdrSize+v.arena],
		costs:      opts.Costs,
		faults:     opts.Faults,
		readonly:   v.readonly,
		vol:        v,
		obsLines:   opts.Obs.Counter("scm.lines_flushed"),
		obsFences:  opts.Obs.Counter("scm.fences"),
		obsCharged: opts.Obs.Counter("scm.charged_ns"),
		obsClient:  opts.Obs.Counter("scm.client.charged_ns"),
	}
	return m
}

// writeHeader rewrites the superblock through the mapping (checksum last).
func (v *Volume) writeHeader(dirty bool) {
	hdr := v.full[:volHdrLen]
	putU64(hdr[offVolMagic:], volMagic)
	putU32(hdr[offVolVersion:], volVersion)
	flags := uint32(0)
	if dirty {
		flags |= volFlagDirty
	}
	putU32(hdr[offVolFlags:], flags)
	putU64(hdr[offVolArena:], v.arena)
	putU32(hdr[offVolPage:], PageSize)
	putU32(hdr[offVolLine:], LineSize)
	putU64(hdr[offVolGen:], v.gen)
	putU64(hdr[offVolSum:], volChecksum(hdr))
}

func (v *Volume) msyncHeader() error { return msyncRange(v.full, 0, volHdrSize) }

// Abandon drops the mapping and closes the file WITHOUT clearing the dirty
// flag: the in-process stand-in for the process dying mid-run. Dirty pages
// of a MAP_SHARED mapping survive munmap exactly as they survive SIGKILL
// (the kernel writes them back), so the next OpenVolume sees everything
// stored — and a set dirty flag. Tests and benchmarks use this where a real
// kill -9 (internal/crashsweep's process sweep) would be too heavy.
func (v *Volume) Abandon() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return
	}
	v.mem.data = nil
	v.teardown()
}

// teardown unmaps and closes without touching the dirty flag.
func (v *Volume) teardown() {
	_ = unmapFile(v.full)
	v.full = nil
	_ = v.f.Close()
	v.closed = true
}

// Mem returns the arena Memory. Its Space/Slicer capabilities are identical
// to the volatile arena's, so every higher layer runs unchanged.
func (v *Volume) Mem() *Memory { return v.mem }

// Path returns the backing file's path.
func (v *Volume) Path() string { return v.path }

// ArenaSize returns the recorded data-region size.
func (v *Volume) ArenaSize() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.arena
}

// Generation returns the superblock generation (writable open count).
func (v *Volume) Generation() uint64 { return v.gen }

// WasDirty reports whether the volume's dirty flag was set when this open
// found it — i.e. the previous writer died without a clean Close and the
// opener must treat the journal as possibly non-empty.
func (v *Volume) WasDirty() bool { return v.wasDirty }

// ReadOnly reports whether the mapping is read-only.
func (v *Volume) ReadOnly() bool { return v.readonly }

// SyncErr returns the first msync failure observed on a durability barrier
// (nil when healthy). Barriers have no error return on the Space interface,
// so media failures are sticky here and also counted in scm.msync.errors.
func (v *Volume) SyncErr() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.syncErr
}

// syncBarrier is the durability barrier behind Fence and BFlush on a mapped
// arena: it drains the Memory's pending-store window and msyncs exactly
// those pages, so the paper's "flushed before the fence" ordering holds on
// the backing file.
func (v *Volume) syncBarrier(m *Memory) {
	m.mu.Lock()
	lo, hi := m.syncLo, m.syncHi
	m.syncLo, m.syncHi = 0, 0
	m.mu.Unlock()
	if hi <= lo || v.readonly {
		return
	}
	v.mu.Lock()
	full := v.full
	closed := v.closed
	v.mu.Unlock()
	if closed {
		return
	}
	t0 := time.Now()
	err := msyncRange(full, volHdrSize+lo, hi-lo)
	v.obsMsyncs.Inc()
	v.obsMsyncByte.Add(int64(hi - lo))
	v.obsMsyncNS.ObserveSince(t0)
	if err != nil {
		v.obsMsyncErrs.Inc()
		v.mu.Lock()
		if v.syncErr == nil {
			v.syncErr = err
		}
		v.mu.Unlock()
	}
}

// nextMapSize doubles cur until it covers want, capping each step at
// maxRemapStep (the dbolt remap-growth idiom), and rounds to a page.
func nextMapSize(cur, want uint64) uint64 {
	if cur == 0 {
		cur = PageSize
	}
	for cur < want {
		if cur >= maxRemapStep {
			cur += maxRemapStep
		} else {
			cur *= 2
		}
	}
	return (cur + PageSize - 1) / PageSize * PageSize
}

// Grow extends the arena to at least minArena bytes by growing the file and
// remapping. The new size follows the capped doubling schedule, so callers
// can grow incrementally without quadratic remap cost. Growth is a
// mount-time operation: it replaces the mapping, which invalidates any
// zero-copy slice of the old one, so it must happen before readers exist.
func (v *Volume) Grow(minArena uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return fmt.Errorf("%w: volume closed", ErrMapFailed)
	}
	if v.readonly {
		return ErrReadOnly
	}
	if minArena <= v.arena {
		return nil
	}
	newArena := nextMapSize(v.arena, minArena)
	// Preserve what the old mapping holds before it goes away.
	if err := msyncRange(v.full, 0, uint64(len(v.full))); err != nil {
		return fmt.Errorf("%w: pre-grow msync: %v", ErrMapFailed, err)
	}
	if err := unmapFile(v.full); err != nil {
		return fmt.Errorf("%w: unmap: %v", ErrMapFailed, err)
	}
	v.full = nil
	v.mem.data = nil
	if err := v.f.Truncate(int64(volHdrSize + newArena)); err != nil {
		return fmt.Errorf("%w: grow to %d: %v", ErrMapFailed, newArena, err)
	}
	full, err := mapFile(v.f, int(volHdrSize+newArena), false)
	if err != nil {
		return fmt.Errorf("%w: remap: %v", ErrMapFailed, err)
	}
	v.full = full
	v.arena = newArena
	v.writeHeader(true)
	if err := v.msyncHeader(); err != nil {
		return fmt.Errorf("%w: header msync: %v", ErrMapFailed, err)
	}
	v.mem.data = full[volHdrSize : volHdrSize+newArena : volHdrSize+newArena]
	return nil
}

// Close msyncs the whole mapping, clears the dirty flag (writable opens),
// unmaps, and closes the file. The arena Memory is detached: subsequent
// accesses fail with ErrOutOfRange rather than faulting on unmapped pages.
// Close is idempotent.
func (v *Volume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	var firstErr error
	if !v.readonly {
		if err := msyncRange(v.full, 0, uint64(len(v.full))); err != nil {
			firstErr = fmt.Errorf("scm: close msync: %w", err)
		}
		if firstErr == nil {
			v.writeHeader(false)
			if err := v.msyncHeader(); err != nil {
				firstErr = fmt.Errorf("scm: close header msync: %w", err)
			}
		}
	}
	v.mem.data = nil
	if err := unmapFile(v.full); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("scm: unmap: %w", err)
	}
	v.full = nil
	if err := v.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	v.closed = true
	if firstErr == nil && v.syncErr != nil {
		firstErr = fmt.Errorf("scm: msync failed during run: %w", v.syncErr)
	}
	return firstErr
}
