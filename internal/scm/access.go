package scm

// Typed load/store helpers over any Space. All values are little-endian.
// These are the only way higher layers read and write scalar fields of
// structures stored in SCM, keeping every persistent layout explicit.

// U64 decodes a little-endian uint64 from a view obtained via Slice/View.
func U64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// U32 decodes a little-endian uint32 from a view.
func U32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U16 decodes a little-endian uint16 from a view.
func U16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0]) | uint16(b[1])<<8
}

// Read64 loads a little-endian uint64 at addr. Spaces with zero-copy
// support decode in place; the copying path's stack buffer escapes into the
// interface call and costs one allocation per read.
func Read64(s Space, addr uint64) (uint64, error) {
	if sl, ok := s.(Slicer); ok {
		b, err := sl.Slice(addr, 8)
		if err != nil {
			return 0, err
		}
		return U64(b), nil
	}
	var b [8]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return U64(b[:]), nil
}

// Write64 stores a little-endian uint64 at addr (volatile until flushed).
func Write64(s Space, addr uint64, v uint64) error {
	var b [8]byte
	putU64(b[:], v)
	return s.Write(addr, b[:])
}

// Read32 loads a little-endian uint32 at addr.
func Read32(s Space, addr uint64) (uint32, error) {
	if sl, ok := s.(Slicer); ok {
		b, err := sl.Slice(addr, 4)
		if err != nil {
			return 0, err
		}
		return U32(b), nil
	}
	var b [4]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return U32(b[:]), nil
}

// Write32 stores a little-endian uint32 at addr.
func Write32(s Space, addr uint64, v uint32) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return s.Write(addr, b[:])
}

// Read16 loads a little-endian uint16 at addr.
func Read16(s Space, addr uint64) (uint16, error) {
	if sl, ok := s.(Slicer); ok {
		b, err := sl.Slice(addr, 2)
		if err != nil {
			return 0, err
		}
		return U16(b), nil
	}
	var b [2]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return U16(b[:]), nil
}

// Write16 stores a little-endian uint16 at addr.
func Write16(s Space, addr uint64, v uint16) error {
	b := [2]byte{byte(v), byte(v >> 8)}
	return s.Write(addr, b[:])
}

// WriteFlush stores p at addr and flushes the covering lines — the paper's
// wlflush primitive.
func WriteFlush(s Space, addr uint64, p []byte) error {
	if err := s.Write(addr, p); err != nil {
		return err
	}
	return s.Flush(addr, len(p))
}

// Write64Flush stores a uint64 and flushes its line.
func Write64Flush(s Space, addr uint64, v uint64) error {
	if err := Write64(s, addr, v); err != nil {
		return err
	}
	return s.Flush(addr, 8)
}

// AtomicFlush64 performs the paper's consistent-update commit step: an
// atomic 8-byte store followed by a flush of its line, used to atomically
// publish shadow-updated structures.
func AtomicFlush64(s Space, addr uint64, v uint64) error {
	if err := s.Atomic64(addr, v); err != nil {
		return err
	}
	return s.Flush(addr, 8)
}

// Zero writes n zero bytes at addr.
func Zero(s Space, addr uint64, n int) error {
	var zeros [4096]byte
	for n > 0 {
		chunk := n
		if chunk > len(zeros) {
			chunk = len(zeros)
		}
		if err := s.Write(addr, zeros[:chunk]); err != nil {
			return err
		}
		addr += uint64(chunk)
		n -= chunk
	}
	return nil
}
