package scm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
	"github.com/aerie-fs/aerie/internal/obs"
)

func newTracked(t *testing.T, size uint64) *Memory {
	t.Helper()
	return New(Config{Size: size, TrackPersistence: true})
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{Size: 2 * PageSize})
	want := []byte("hello, storage-class memory")
	if err := m.Write(100, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := m.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

// TestFlushChargedPerCallReturn pins the per-call charge accounting that
// client mappings use for attribution: the return value must equal this
// call's lines × SCMWriteLine, independent of the shared scm.charged_ns
// counter (a before/after diff of that counter folds in concurrent
// flushers' charges).
func TestFlushChargedPerCallReturn(t *testing.T) {
	sink := obs.New()
	m := New(Config{
		Size:  2 * PageSize,
		Costs: &costmodel.Costs{SCMWriteLine: time.Nanosecond},
		Obs:   sink,
	})
	global := sink.Counter("scm.charged_ns")

	charged, err := m.FlushCharged(0, 3*int(LineSize))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3); charged != want {
		t.Fatalf("FlushCharged = %dns, want %dns", charged, want)
	}
	if global.Load() != charged {
		t.Fatalf("global charged = %dns, want %dns", global.Load(), charged)
	}

	if err := m.WriteStream(0, make([]byte, 2*LineSize)); err != nil {
		t.Fatal(err)
	}
	if got := m.BFlushCharged(); got != 2 {
		t.Fatalf("BFlushCharged = %dns, want 2ns", got)
	}
	if m.BFlushCharged() != 0 {
		t.Fatal("second BFlush with nothing pending should charge 0")
	}
	// Flush with no configured latency charges nothing.
	m2 := New(Config{Size: PageSize, Obs: obs.New()})
	if c, err := m2.FlushCharged(0, int(LineSize)); err != nil || c != 0 {
		t.Fatalf("uncosted FlushCharged = %dns, %v; want 0", c, err)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	m := New(Config{Size: PageSize})
	buf := make([]byte, 16)
	cases := []struct {
		name string
		addr uint64
	}{
		{"past end", m.Size()},
		{"straddles end", m.Size() - 8},
		{"huge addr", 1 << 60},
	}
	for _, tc := range cases {
		if err := m.Read(tc.addr, buf); err == nil {
			t.Errorf("Read %s: want error", tc.name)
		}
		if err := m.Write(tc.addr, buf); err == nil {
			t.Errorf("Write %s: want error", tc.name)
		}
		if err := m.Flush(tc.addr, len(buf)); err == nil {
			t.Errorf("Flush %s: want error", tc.name)
		}
	}
}

func TestSizeRoundsUpToPage(t *testing.T) {
	m := New(Config{Size: 1})
	if m.Size() != PageSize {
		t.Fatalf("size = %d, want %d", m.Size(), PageSize)
	}
	if New(Config{}).Size() != PageSize {
		t.Fatal("zero size should round up to one page")
	}
}

func TestCrashLosesUnflushedWrites(t *testing.T) {
	m := newTracked(t, 2*PageSize)
	m.PersistAll()
	if err := m.Write(0, []byte("unflushed")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlush(m, 512, []byte("flushed")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	buf := make([]byte, 9)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 9)) {
		t.Errorf("unflushed write survived crash: %q", buf)
	}
	buf = buf[:7]
	if err := m.Read(512, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "flushed" {
		t.Errorf("flushed write lost: %q", buf)
	}
}

func TestCrashTearsPartiallyFlushedWrite(t *testing.T) {
	m := newTracked(t, 2*PageSize)
	m.PersistAll()
	// A write spanning two lines, only the first flushed: after a crash
	// the first line persists and the second reverts.
	data := bytes.Repeat([]byte{0xAB}, 2*LineSize)
	if err := m.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(0, LineSize); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	got := make([]byte, 2*LineSize)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:LineSize], data[:LineSize]) {
		t.Error("flushed first line did not persist")
	}
	if !bytes.Equal(got[LineSize:], make([]byte, LineSize)) {
		t.Error("unflushed second line persisted — write not torn as modeled")
	}
}

func TestStreamWritesPersistOnlyAfterBFlush(t *testing.T) {
	m := newTracked(t, 2*PageSize)
	m.PersistAll()
	if err := m.WriteStream(0, []byte("streamed")); err != nil {
		t.Fatal(err)
	}
	snapshot := New(Config{Size: 2 * PageSize, TrackPersistence: true})
	_ = snapshot // separate arena not needed; crash the same one
	m.Crash()
	buf := make([]byte, 8)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatalf("streaming write persisted without BFlush: %q", buf)
	}
	if err := m.WriteStream(0, []byte("streamed")); err != nil {
		t.Fatal(err)
	}
	m.BFlush()
	m.Crash()
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "streamed" {
		t.Fatalf("streaming write lost after BFlush: %q", buf)
	}
}

func TestAtomic64NeverTorn(t *testing.T) {
	m := newTracked(t, PageSize)
	if err := Write64Flush(m, 64, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	if err := m.Atomic64(64, 0x2222222222222222); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	v, err := Read64(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111111111111111 && v != 0x2222222222222222 {
		t.Fatalf("torn atomic write: %#x", v)
	}
	if v != 0x1111111111111111 {
		t.Fatalf("unflushed atomic persisted: %#x", v)
	}
}

func TestAtomic64RejectsUnaligned(t *testing.T) {
	m := New(Config{Size: PageSize})
	if err := m.Atomic64(3, 1); err == nil {
		t.Fatal("want alignment error")
	}
}

func TestEvictRandomPersistsOnlyDirtyLines(t *testing.T) {
	m := newTracked(t, PageSize)
	m.PersistAll()
	if err := m.Write(0, bytes.Repeat([]byte{1}, LineSize)); err != nil {
		t.Fatal(err)
	}
	m.EvictRandom(rand.New(rand.NewSource(1)), 1.0)
	if m.DirtyLines() != 0 {
		t.Fatalf("dirty lines after full eviction: %d", m.DirtyLines())
	}
	m.Crash()
	buf := make([]byte, LineSize)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("evicted line did not persist")
	}
}

func TestDirtyLineAccounting(t *testing.T) {
	m := newTracked(t, 4*PageSize)
	m.PersistAll()
	if n := m.DirtyLines(); n != 0 {
		t.Fatalf("clean arena has %d dirty lines", n)
	}
	if err := m.Write(0, make([]byte, 3*LineSize)); err != nil {
		t.Fatal(err)
	}
	if n := m.DirtyLines(); n != 3 {
		t.Fatalf("dirty = %d, want 3", n)
	}
	if err := m.Flush(0, LineSize); err != nil {
		t.Fatal(err)
	}
	if n := m.DirtyLines(); n != 2 {
		t.Fatalf("dirty after partial flush = %d, want 2", n)
	}
}

func TestScalarHelpersRoundTrip(t *testing.T) {
	m := New(Config{Size: PageSize})
	if err := Write64(m, 8, 0xdeadbeefcafebabe); err != nil {
		t.Fatal(err)
	}
	if v, _ := Read64(m, 8); v != 0xdeadbeefcafebabe {
		t.Fatalf("u64 = %#x", v)
	}
	if err := Write32(m, 16, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if v, _ := Read32(m, 16); v != 0x12345678 {
		t.Fatalf("u32 = %#x", v)
	}
	if err := Write16(m, 20, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if v, _ := Read16(m, 20); v != 0xbeef {
		t.Fatalf("u16 = %#x", v)
	}
}

func TestZero(t *testing.T) {
	m := New(Config{Size: 4 * PageSize})
	if err := m.Write(0, bytes.Repeat([]byte{0xff}, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := Zero(m, 100, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*PageSize)
	if err := m.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	one := make([]byte, 1)
	if err := m.Read(99, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0xff {
		t.Fatal("Zero touched byte before range")
	}
}

// Property: scalar round-trips hold for arbitrary values and aligned
// addresses.
func TestQuickScalarRoundTrip(t *testing.T) {
	m := New(Config{Size: 16 * PageSize})
	f := func(v uint64, slot uint16) bool {
		addr := uint64(slot) * 8 % (m.Size() - 8)
		addr -= addr % 8
		if err := Write64(m, addr, v); err != nil {
			return false
		}
		got, err := Read64(m, addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after arbitrary interleavings of writes, flushes, and random
// evictions followed by a crash, every line is bytewise either its
// pre-crash-flushed content or its previous persistent content — never a
// blend within one line.
func TestQuickCrashLineAtomicity(t *testing.T) {
	const lines = 16
	m := newTracked(t, PageSize)
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m.PersistAll()
		// Each line is filled with a single repeated byte per write, so
		// post-crash content is valid iff every byte in the line matches
		// (no tearing) and the value is one that was actually written
		// (eviction may persist any intermediate write).
		everWritten := make([]map[byte]bool, lines)
		for i := range everWritten {
			everWritten[i] = map[byte]bool{0: true}
		}
		if err := Zero(m, 0, lines*LineSize); err != nil {
			return false
		}
		m.PersistAll()
		for i, op := range ops {
			line := uint64(op) % lines
			switch op % 3 {
			case 0:
				tag := byte(i%254 + 1)
				if err := m.Write(line*LineSize, bytes.Repeat([]byte{tag}, LineSize)); err != nil {
					return false
				}
				everWritten[line][tag] = true
			case 1:
				if err := m.Flush(line*LineSize, LineSize); err != nil {
					return false
				}
			case 2:
				m.EvictRandom(rng, 0.3)
			}
		}
		m.Crash()
		buf := make([]byte, LineSize)
		for l := uint64(0); l < lines; l++ {
			if err := m.Read(l*LineSize, buf); err != nil {
				return false
			}
			first := buf[0]
			for _, b := range buf {
				if b != first {
					return false // torn line
				}
			}
			if !everWritten[l][first] {
				return false // value never written to this line
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteFlush4K(b *testing.B) {
	m := New(Config{Size: 16 * PageSize})
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	for i := 0; i < b.N; i++ {
		_ = WriteFlush(m, 0, buf)
	}
}

func BenchmarkRead4K(b *testing.B) {
	m := New(Config{Size: 16 * PageSize})
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	for i := 0; i < b.N; i++ {
		_ = m.Read(0, buf)
	}
}
