package scm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/aerie-fs/aerie/internal/costmodel"
)

func TestSliceAliasesVolatileImage(t *testing.T) {
	m := New(Config{Size: 2 * PageSize, TrackPersistence: true})
	if err := m.Write(100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := m.Slice(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("slice = %q", b)
	}
	// The window is a live view of the volatile image, like a load through
	// a real mapping: later stores show through it.
	if err := m.Write(100, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	if string(b) != "HELLO" {
		t.Fatalf("slice after write = %q", b)
	}
	// Capacity is clipped so the window cannot be extended past n.
	if cap(b) != 5 {
		t.Fatalf("cap = %d, want 5", cap(b))
	}
	if _, err := m.Slice(m.Size()-2, 4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range slice: %v", err)
	}
}

func TestSliceCountsReads(t *testing.T) {
	m := New(Config{Size: PageSize})
	before := m.Stats().Reads.Load()
	beforeBytes := m.Stats().BytesRead.Load()
	if _, err := m.Slice(0, 128); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Reads.Load() - before; got != 1 {
		t.Fatalf("Reads delta = %d, want 1", got)
	}
	if got := m.Stats().BytesRead.Load() - beforeBytes; got != 128 {
		t.Fatalf("BytesRead delta = %d, want 128", got)
	}
}

// TestSliceReadEquivalence drives a random mix of writes, flushes and
// adversarial evictions and checks that Slice and Read observe identical
// bytes at every step: slices come from the volatile image, exactly like
// copying reads, regardless of what the persistence machinery is doing.
func TestSliceReadEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{Size: 4 * PageSize, TrackPersistence: true})
		for step := 0; step < 200; step++ {
			addr := uint64(rng.Intn(3 * PageSize))
			n := 1 + rng.Intn(300)
			switch rng.Intn(5) {
			case 0:
				p := make([]byte, n)
				rng.Read(p)
				if err := m.Write(addr, p); err != nil {
					t.Fatal(err)
				}
			case 1:
				p := make([]byte, n)
				rng.Read(p)
				if err := m.WriteStream(addr, p); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := m.Flush(addr, n); err != nil {
					t.Fatal(err)
				}
			case 3:
				m.EvictRandom(rng, 0.3)
			case 4:
				m.BFlush()
			}
			got, err := m.Slice(addr, n)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, n)
			if err := m.Read(addr, want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Logf("seed %d step %d: slice != read at %#x+%d", seed, step, addr, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStreamPendingBookkeeping is the regression test for the pending
// slice growing without bound: with persistence tracking off, streaming
// writers keep only an O(1) count of pending lines (the slice stays empty no
// matter how many lines are streamed), while BFlush still credits every line
// to LinesFlushed — including lines streamed while the shared Costs had zero
// write latency, which a later sweep may make chargeable.
func TestWriteStreamPendingBookkeeping(t *testing.T) {
	buf := make([]byte, 256)
	lines := len(buf) / LineSize

	t.Run("untracked no costs", func(t *testing.T) {
		m := New(Config{Size: PageSize})
		for i := 0; i < 100; i++ {
			if err := m.WriteStream(0, buf); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.PendingLines(); got != 100*lines {
			t.Fatalf("pending = %d, want %d", got, 100*lines)
		}
		if len(m.pending) != 0 {
			t.Fatalf("pending slice holds %d entries untracked, want 0 (O(1) count only)", len(m.pending))
		}
		before := m.Stats().LinesFlushed.Load()
		m.BFlush()
		if got := m.Stats().LinesFlushed.Load() - before; got != int64(100*lines) {
			t.Fatalf("LinesFlushed delta = %d, want %d", got, 100*lines)
		}
		if got := m.PendingLines(); got != 0 {
			t.Fatalf("pending after BFlush = %d, want 0", got)
		}
	})

	t.Run("untracked zero write latency", func(t *testing.T) {
		m := New(Config{Size: PageSize, Costs: &costmodel.Costs{}})
		for i := 0; i < 100; i++ {
			if err := m.WriteStream(0, buf); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.PendingLines(); got != 100*lines {
			t.Fatalf("pending = %d, want %d", got, 100*lines)
		}
		if len(m.pending) != 0 {
			t.Fatalf("pending slice holds %d entries untracked, want 0 (O(1) count only)", len(m.pending))
		}
		before := m.Stats().LinesFlushed.Load()
		m.BFlush()
		if got := m.Stats().LinesFlushed.Load() - before; got != int64(100*lines) {
			t.Fatalf("LinesFlushed delta = %d, want %d", got, 100*lines)
		}
	})

	t.Run("untracked with write latency", func(t *testing.T) {
		m := New(Config{Size: PageSize, Costs: &costmodel.Costs{SCMWriteLine: time.Nanosecond}})
		if err := m.WriteStream(0, buf); err != nil {
			t.Fatal(err)
		}
		if got := m.PendingLines(); got != lines {
			t.Fatalf("pending = %d, want %d", got, lines)
		}
		if len(m.pending) != 0 {
			t.Fatalf("pending slice holds %d entries untracked, want 0 (O(1) count only)", len(m.pending))
		}
		m.BFlush()
		if got := m.PendingLines(); got != 0 {
			t.Fatalf("pending after BFlush = %d, want 0", got)
		}
	})

	t.Run("tracked", func(t *testing.T) {
		m := New(Config{Size: PageSize, TrackPersistence: true})
		if err := m.WriteStream(0, buf); err != nil {
			t.Fatal(err)
		}
		if got := m.PendingLines(); got != len(buf)/LineSize {
			t.Fatalf("pending = %d, want %d", got, len(buf)/LineSize)
		}
		m.BFlush()
		if got := m.PendingLines(); got != 0 {
			t.Fatalf("pending after BFlush = %d, want 0", got)
		}
	})
}

// TestParanoidSlices checks the debug mode: slices are defensive copies, so
// a consumer writing through a view cannot corrupt the arena.
func TestParanoidSlices(t *testing.T) {
	m := New(Config{Size: PageSize, ParanoidSlices: true})
	if err := m.Write(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := m.Slice(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("slice = %q", b)
	}
	copy(b, "XXXXX") // illegal write through the view
	got := make([]byte, 5)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("arena after write through paranoid view = %q, want unchanged", got)
	}
}

// nonSlicer wraps a Space and hides its Slice method, forcing View and
// AsSlicer down the copying path.
type nonSlicer struct{ inner Space }

func (n nonSlicer) Read(addr uint64, p []byte) error        { return n.inner.Read(addr, p) }
func (n nonSlicer) Write(addr uint64, p []byte) error       { return n.inner.Write(addr, p) }
func (n nonSlicer) WriteStream(addr uint64, p []byte) error { return n.inner.WriteStream(addr, p) }
func (n nonSlicer) Flush(addr uint64, nb int) error         { return n.inner.Flush(addr, nb) }
func (n nonSlicer) BFlush()                                 { n.inner.BFlush() }
func (n nonSlicer) Fence()                                  { n.inner.Fence() }
func (n nonSlicer) Atomic64(addr uint64, v uint64) error    { return n.inner.Atomic64(addr, v) }
func (n nonSlicer) Size() uint64                            { return n.inner.Size() }

func TestViewAndAsSlicer(t *testing.T) {
	m := New(Config{Size: PageSize})
	if err := m.Write(64, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if AsSlicer(m) == nil {
		t.Fatal("Memory should be a Slicer")
	}
	if AsSlicer(nonSlicer{m}) != nil {
		t.Fatal("nonSlicer wrapper should not be a Slicer")
	}
	var buf [4]byte
	b, err := View(m, 64, 6, buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abcdef" {
		t.Fatalf("View (slice) = %q", b)
	}
	c, err := View(nonSlicer{m}, 64, 6, buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != "abcdef" {
		t.Fatalf("View (copy) = %q", c)
	}
	// The copying view must be a snapshot, not an alias.
	if err := m.Write(64, []byte("ABCDEF")); err != nil {
		t.Fatal(err)
	}
	if string(b) != "ABCDEF" {
		t.Fatalf("sliced view should alias: %q", b)
	}
	if string(c) != "abcdef" {
		t.Fatalf("copied view should not alias: %q", c)
	}
}
