package linearize

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// CheckConfig bounds the linearizability search.
type CheckConfig struct {
	// MaxNodes caps the DFS nodes explored per partition. Exceeding it makes
	// the result undecided rather than wrong (Decided=false, Ok=true): the
	// search was cut off before it could either find a witness order or
	// exhaust the alternatives. 0 means the default.
	MaxNodes int
}

const defaultMaxNodes = 4_000_000

// Result is the outcome of checking one history.
type Result struct {
	// Ok is false when some partition's observations admit no linearization.
	Ok bool
	// Decided is false when the node budget cut off at least one partition
	// before it finished. An undecided partition is not evidence of a
	// violation; rerun with a larger MaxNodes.
	Decided bool
	// Partitions is how many independent object groups the history split
	// into; Nodes is the total search nodes explored across them.
	Partitions int
	Nodes      int
	// Failure describes the first non-linearizable partition (nil when Ok).
	Failure *FailureReport
}

// FailureReport explains a linearizability violation in terms a human can
// replay: the partition's entries, the longest legal prefix any order
// achieved, and — at that deepest point — each real-time-eligible operation
// with what the model required versus what the client observed.
type FailureReport struct {
	// Entries is the failing partition, in invocation order.
	Entries []Entry
	// BestPrefix is the longest sequence of entry IDs the search managed to
	// linearize before every extension was rejected.
	BestPrefix []int
	// Stuck lists, at the deepest frontier, the candidates whose observed
	// outcomes the model could not reproduce.
	Stuck []StuckCandidate
}

// StuckCandidate is one rejected extension at the search frontier.
type StuckCandidate struct {
	Entry Entry
	// Want is the outcome the specification produces at this point in the
	// best prefix; the entry's recorded Out is what the system returned.
	Want Outcome
}

func (f *FailureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "non-linearizable partition (%d ops):\n", len(f.Entries))
	inPrefix := make(map[int]bool, len(f.BestPrefix))
	for _, id := range f.BestPrefix {
		inPrefix[id] = true
	}
	byID := make(map[int]Entry, len(f.Entries))
	for _, e := range f.Entries {
		byID[e.ID] = e
	}
	fmt.Fprintf(&b, "  longest legal prefix (%d of %d):\n", len(f.BestPrefix), len(f.Entries))
	for _, id := range f.BestPrefix {
		fmt.Fprintf(&b, "    %s\n", byID[id])
	}
	fmt.Fprintf(&b, "  no eligible operation can go next:\n")
	for _, s := range f.Stuck {
		fmt.Fprintf(&b, "    %s (model requires %s)\n", s.Entry, s.Want)
	}
	return b.String()
}

// Check decides whether the history is linearizable with respect to the
// sequential specification in Apply, starting from an empty state.
//
// The history first splits into independent partitions: operations on
// disjoint paths commute under the specification (no operation's outcome
// depends on another path), so each group of rename-connected paths is
// checked on its own. That turns one search over N ops into many searches
// over N/paths ops — the difference between intractable and instant, since
// search cost is driven by overlap within a partition, not history size.
//
// Each partition then runs a Wing-Gong style search: a DFS over orders in
// which operations are appended to a candidate linearization. An operation
// e is eligible next only if no other unlinearized operation responded
// before e invoked (the real-time constraint); an eligible e extends the
// order only if the specification, applied to the state the prefix built,
// reproduces e's observed outcome. Visited (linearized-set, state) pairs
// are memoized, and a node budget bounds the backtracking.
func Check(h History, cfg CheckConfig) Result {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = defaultMaxNodes
	}
	res := Result{Ok: true, Decided: true}
	for _, part := range partition(h.Entries) {
		res.Partitions++
		pr := checkPartition(part, cfg.MaxNodes)
		res.Nodes += pr.nodes
		if !pr.decided {
			res.Decided = false
		}
		if pr.decided && !pr.ok {
			res.Ok = false
			if res.Failure == nil {
				res.Failure = pr.report
			}
		}
	}
	return res
}

// partition groups entries whose paths are connected through shared use or
// renames. Union-find over path strings: every entry unions the paths it
// touches (rename bridges two), then entries bucket by their root path.
func partition(entries []Entry) [][]Entry {
	parent := map[string]string{}
	var find func(p string) string
	find = func(p string) string {
		r, ok := parent[p]
		if !ok {
			parent[p] = p
			return p
		}
		if r == p {
			return p
		}
		root := find(r)
		parent[p] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range entries {
		find(e.Op.Path)
		if e.Op.Kind == KRename {
			union(e.Op.Path, e.Op.Path2)
		}
	}
	groups := map[string][]Entry{}
	var order []string
	for _, e := range entries {
		r := find(e.Op.Path)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], e)
	}
	out := make([][]Entry, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

type partResult struct {
	ok, decided bool
	nodes       int
	report      *FailureReport
}

// checkPartition runs the Wing-Gong search over one partition.
func checkPartition(entries []Entry, maxNodes int) partResult {
	n := len(entries)
	if n == 0 {
		return partResult{ok: true, decided: true}
	}
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Invoke < es[j].Invoke })

	words := (n + 63) / 64
	done := make([]uint64, words)
	isDone := func(i int) bool { return done[i/64]&(1<<(i%64)) != 0 }
	set := func(i int) { done[i/64] |= 1 << (i % 64) }
	clear := func(i int) { done[i/64] &^= 1 << (i % 64) }

	memo := map[string]struct{}{}
	memoKey := func(digest uint64) string {
		k := make([]byte, 8*words+8)
		for w, v := range done {
			binary.LittleEndian.PutUint64(k[w*8:], v)
		}
		binary.LittleEndian.PutUint64(k[8*words:], digest)
		return string(k)
	}

	nodes := 0
	budgetHit := false
	prefix := make([]int, 0, n)
	var best []int
	var bestStuck []StuckCandidate

	var dfs func(state State, remaining int) bool
	dfs = func(state State, remaining int) bool {
		if remaining == 0 {
			return true
		}
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return false
		}
		key := memoKey(state.Digest())
		if _, seen := memo[key]; seen {
			return false
		}
		memo[key] = struct{}{}

		// Real-time constraint: e may linearize next only if no other
		// pending operation responded before e invoked, i.e. e.Invoke is
		// below the minimum pending Return (stamps are unique, so e's own
		// Return never wrongly excludes it).
		minRet := ^uint64(0)
		for i := 0; i < n; i++ {
			if !isDone(i) && es[i].Return < minRet {
				minRet = es[i].Return
			}
		}
		var stuck []StuckCandidate
		for i := 0; i < n; i++ {
			if isDone(i) || es[i].Invoke >= minRet {
				continue
			}
			out, ns := Apply(state, es[i].Op)
			if !outcomeMatch(out, es[i].Out) {
				stuck = append(stuck, StuckCandidate{Entry: es[i], Want: out})
				continue
			}
			set(i)
			prefix = append(prefix, es[i].ID)
			if len(prefix) > len(best) {
				best = append(best[:0], prefix...)
				bestStuck = nil
			}
			if dfs(ns, remaining-1) {
				return true
			}
			prefix = prefix[:len(prefix)-1]
			clear(i)
			if budgetHit {
				return false
			}
		}
		// Dead end. If this is the deepest frontier reached, remember why
		// every eligible candidate was rejected for the failure report.
		if len(prefix) == len(best) && bestStuck == nil {
			bestStuck = stuck
		}
		return false
	}

	ok := dfs(State{}, n)
	if ok {
		return partResult{ok: true, decided: true, nodes: nodes}
	}
	if budgetHit {
		// Budget exhausted before the search could prove either way: the
		// partition is undecided, and reporting Ok here would be a lie in
		// both directions — so the caller treats it as "rerun bigger".
		return partResult{ok: true, decided: false, nodes: nodes}
	}
	return partResult{ok: false, decided: true, nodes: nodes, report: &FailureReport{
		Entries:    es,
		BestPrefix: best,
		Stuck:      bestStuck,
	}}
}
