// Package linearize records concurrent file-system histories and checks
// them for linearizability against a sequential specification model.
//
// The conformance harness (internal/conformance) replays one deterministic
// trace in lockstep, which can never catch interleaving bugs: the pipelined
// write window, group commit, and parallel apply added in PRs 6-7 all
// reorder work that a lockstep replay serializes away. This package is the
// complementary safety net, in the specification style of the formal VFS
// models (PAPERS.md, arXiv:1211.6187): N clients run concurrently against a
// live system, every operation records its invocation/response window plus
// the value it observed, and a Wing-Gong-style search then decides whether
// some legal sequential order of the operations — one respecting real time
// (op A before op B whenever A responded before B invoked) — explains every
// observation under the sequential model.
//
// Soundness of the real-time order rests on the recorder's clock: a single
// shared atomic counter stamped before each invocation and after each
// response. If entry A's response stamp is below entry B's invocation
// stamp, the stamping events really were ordered that way, A responded
// before its stamp, and B invoked after its stamp — so A truly preceded B.
// Concurrent operations may interleave their stamps arbitrarily; that only
// loosens the order, which can hide a violation but never fabricate one.
package linearize

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Kind enumerates the operations the history model understands. They map
// one-to-one onto the FS surface the concurrent harness drives.
type Kind int

const (
	// KPut creates path or fully replaces its contents.
	KPut Kind = iota
	// KAppend appends to an existing path (error when absent).
	KAppend
	// KRead returns the full contents (error when absent).
	KRead
	// KTruncate resizes to Size bytes, zero-filling growth.
	KTruncate
	// KDelete unlinks the path (error when absent).
	KDelete
	// KRename moves Path to Path2, replacing any existing Path2.
	KRename
	// KBarrier is a script synchronization point, not an operation: every
	// client must reach its nth barrier before any proceeds past it.
	// Barriers are never recorded into the history.
	KBarrier
)

func (k Kind) String() string {
	switch k {
	case KPut:
		return "put"
	case KAppend:
		return "append"
	case KRead:
		return "read"
	case KTruncate:
		return "truncate"
	case KDelete:
		return "delete"
	case KRename:
		return "rename"
	case KBarrier:
		return "barrier"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Op is one operation descriptor. Only the fields the kind needs are set.
type Op struct {
	Kind  Kind
	Path  string
	Path2 string // rename destination
	Size  int64  // truncate size
	Data  []byte // put/append payload
}

func (op Op) String() string {
	switch op.Kind {
	case KPut, KAppend:
		return fmt.Sprintf("%s(%s, %dB)", op.Kind, op.Path, len(op.Data))
	case KTruncate:
		return fmt.Sprintf("truncate(%s, %d)", op.Path, op.Size)
	case KRename:
		return fmt.Sprintf("rename(%s -> %s)", op.Path, op.Path2)
	default:
		return fmt.Sprintf("%s(%s)", op.Kind, op.Path)
	}
}

// Canonical outcome error classes. The live adapters map implementation
// errors onto these so the model and the system compare on equal terms.
const (
	OutOK    = ""
	OutNoEnt = "noent"
)

// Outcome is what an operation was observed to do: a canonical error class
// and, for reads, the bytes returned.
type Outcome struct {
	Err  string
	Data []byte // read result (nil for non-reads and failed reads)
}

func (o Outcome) String() string {
	if o.Err != "" {
		return "err:" + o.Err
	}
	if o.Data != nil {
		return fmt.Sprintf("ok[%dB]", len(o.Data))
	}
	return "ok"
}

// Entry is one completed operation in a recorded history.
type Entry struct {
	// ID is the entry's index in recording order (unique).
	ID int
	// Client identifies the session that issued the operation.
	Client int
	// Step is the operation's index within its client's script.
	Step int
	// Invoke and Return are the operation's window stamps from the shared
	// history clock: the op invoked after Invoke was stamped and responded
	// before Return was stamped.
	Invoke, Return uint64
	Op             Op
	Out            Outcome
}

func (e Entry) String() string {
	return fmt.Sprintf("c%d#%d %s -> %s @[%d,%d]", e.Client, e.Step, e.Op, e.Out, e.Invoke, e.Return)
}

// History is a recorded set of completed operations.
type History struct {
	Entries []Entry
}

// ByInvoke returns the entries sorted by invocation stamp.
func (h History) ByInvoke() []Entry {
	out := append([]Entry(nil), h.Entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Invoke < out[j].Invoke })
	return out
}

// Recorder stamps operation windows against one shared atomic clock and
// collects the entries. Safe for concurrent use by the client goroutines.
type Recorder struct {
	clock atomic.Uint64
	mu    sync.Mutex
	done  []Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Now advances and returns the shared clock. Exposed so mutation layers can
// order their own bookkeeping against recorded windows.
func (r *Recorder) Now() uint64 { return r.clock.Add(1) }

// Invoke opens an operation window. The returned pending token carries the
// invocation stamp; complete it with Done.
func (r *Recorder) Invoke(client, step int, op Op) Pending {
	return Pending{r: r, client: client, step: step, op: op, invoke: r.Now()}
}

// Pending is an invoked-but-unanswered operation.
type Pending struct {
	r            *Recorder
	client, step int
	op           Op
	invoke       uint64
}

// InvokeStamp returns the pending operation's invocation stamp.
func (p Pending) InvokeStamp() uint64 { return p.invoke }

// Done closes the window with the observed outcome and records the entry.
func (p Pending) Done(out Outcome) {
	ret := p.r.Now()
	p.r.mu.Lock()
	p.r.done = append(p.r.done, Entry{
		ID: len(p.r.done), Client: p.client, Step: p.step,
		Invoke: p.invoke, Return: ret, Op: p.op, Out: out,
	})
	p.r.mu.Unlock()
}

// History returns the recorded entries. Call after all clients joined.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return History{Entries: append([]Entry(nil), r.done...)}
}

// CompletedPutsBefore returns the payloads of every successful KPut on
// path whose response stamp is below stamp, ordered oldest to newest by
// response. Mutation layers use it to pick provably stale values: a put
// that completed before a read invoked must be ordered before that read in
// every legal linearization, so returning any but the newest such value
// (with the writes ordered among themselves) is a violation.
func (r *Recorder) CompletedPutsBefore(path string, stamp uint64) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	type rec struct {
		ret  uint64
		data []byte
	}
	var puts []rec
	for i := range r.done {
		e := &r.done[i]
		if e.Op.Kind == KPut && e.Op.Path == path && e.Out.Err == OutOK && e.Return < stamp {
			puts = append(puts, rec{e.Return, e.Op.Data})
		}
	}
	sort.Slice(puts, func(i, j int) bool { return puts[i].ret < puts[j].ret })
	out := make([][]byte, len(puts))
	for i, p := range puts {
		out[i] = p.data
	}
	return out
}

// Seed resolves the deterministic seed a randomized harness should run
// under: the AERIE_SEED environment variable when set (so any failure can
// be replayed exactly), otherwise def. Harnesses log the value they used so
// a failure report always names its seed.
func Seed(def int64) int64 {
	if v := os.Getenv("AERIE_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}
