package linearize

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes script generation.
type GenConfig struct {
	// Seed makes the scripts deterministic; replay a failed run by setting
	// AERIE_SEED to the seed the failure logged (see Seed).
	Seed int64
	// Clients and OpsPerClient shape the workload (defaults 4 and 100).
	Clients      int
	OpsPerClient int
	// Paths is the size of the shared path pool (default 2*Clients). A pool
	// a little larger than the client count keeps contention real — several
	// clients usually share a path — without collapsing every operation
	// onto one object.
	Paths int
	// PathPrefix is prepended to every generated path (default "/lz/f").
	PathPrefix string
	// BarrierEvery inserts a rendezvous after every n operations (default
	// 25, 0 disables). Barriers create hard real-time edges between the
	// clients' windows: after a rendezvous every client provably observes
	// the others' completed operations, which is exactly the ordering
	// pressure that turns a sloppy implementation into a detectable
	// violation instead of an always-permissible reordering.
	BarrierEvery int
	// Renames enables rename operations (they merge checker partitions, so
	// heavy use makes the search work harder).
	Renames bool
	// NoDeletes drops delete (and rename-overwrite) operations from the
	// mix, redistributing their share to puts and reads. The live Aerie
	// harness sets this: TFS open-file tracking is client-local (pxfs sends
	// NotifyOpen only for its own open files), so a cross-client delete can
	// reclaim storage under a concurrent writer's open handle and reject
	// its batch — a known gap, not a linearizability property this harness
	// should entangle itself with.
	NoDeletes bool
	// Dirs spreads the shared path pool across this many top-level parent
	// directories instead of one (default 1). Against a sharded machine the
	// placement hash puts distinct directories on distinct trusted shards,
	// so cross-directory operations become cross-shard ones.
	Dirs int
	// FreshRenames, when >0, is the percentage of operations that become a
	// rename from a pool path to a fresh, never-reused path in a different
	// directory, immediately followed by a read of the destination (which
	// pins the moved contents into the history). Fresh destinations never
	// overwrite a victim, so — unlike Renames — the bias composes with
	// NoDeletes: nothing is ever reclaimed under an open handle. With Dirs
	// spread over a sharded machine this is the cross-shard-rename bias the
	// two-phase transaction path is checked under.
	FreshRenames int
	// MaxData bounds put/append payload sizes (default 48 bytes). Payloads
	// carry a generation tag so every write to a path is distinct — a stale
	// read can never accidentally match the current value.
	MaxData int
}

func (c *GenConfig) defaults() {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 100
	}
	if c.Paths == 0 {
		c.Paths = 2 * c.Clients
	}
	if c.PathPrefix == "" {
		c.PathPrefix = "/lz/f"
	}
	if c.BarrierEvery == 0 {
		c.BarrierEvery = 25
	}
	if c.MaxData == 0 {
		c.MaxData = 48
	}
}

// GenerateScripts builds one deterministic script per client over a shared
// path pool. The mix favors puts and reads (the pair every mutation kind
// perturbs) with appends, truncates, and deletes keeping the model's error
// paths honest. All scripts carry the same barrier count by construction.
func GenerateScripts(cfg GenConfig) [][]Op {
	cfg.defaults()
	paths := make([]string, cfg.Paths)
	for i := range paths {
		if cfg.Dirs > 1 {
			paths[i] = fmt.Sprintf("%s%02d/f%02d", cfg.PathPrefix, i%cfg.Dirs, i)
		} else {
			paths[i] = fmt.Sprintf("%s%02d", cfg.PathPrefix, i)
		}
	}
	scripts := make([][]Op, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*7919))
		var script []Op
		gen := 0
		payload := func(path string) []byte {
			gen++
			n := 8 + rng.Intn(cfg.MaxData)
			b := make([]byte, n)
			// Tag with client and generation so every written value is
			// globally unique, then fill deterministically.
			copy(b, fmt.Sprintf("c%d.g%d.", k, gen))
			for j := len(fmt.Sprintf("c%d.g%d.", k, gen)); j < n; j++ {
				b[j] = byte('a' + rng.Intn(26))
			}
			_ = path
			return b
		}
		fresh := 0
		for i := 0; i < cfg.OpsPerClient; i++ {
			pi := rng.Intn(len(paths))
			p := paths[pi]
			roll := rng.Intn(100)
			if cfg.FreshRenames > 0 && roll < cfg.FreshRenames {
				// Rename to a fresh path, preferring a different directory
				// (a different shard on a partitioned machine), then read
				// the destination so the moved contents are observed.
				fresh++
				var dst string
				if cfg.Dirs > 1 {
					d := rng.Intn(cfg.Dirs - 1)
					if d >= pi%cfg.Dirs {
						d++
					}
					dst = fmt.Sprintf("%s%02d/c%dr%03d", cfg.PathPrefix, d, k, fresh)
				} else {
					dst = fmt.Sprintf("%s-c%dr%03d", cfg.PathPrefix, k, fresh)
				}
				script = append(script,
					Op{Kind: KRename, Path: p, Path2: dst},
					Op{Kind: KRead, Path: dst})
				if cfg.BarrierEvery > 0 && (i+1)%cfg.BarrierEvery == 0 {
					script = append(script, Op{Kind: KBarrier})
				}
				continue
			}
			switch {
			case roll < 30:
				script = append(script, Op{Kind: KPut, Path: p, Data: payload(p)})
			case roll < 60:
				script = append(script, Op{Kind: KRead, Path: p})
			case roll < 75:
				script = append(script, Op{Kind: KAppend, Path: p, Data: payload(p)})
			case roll < 85:
				script = append(script, Op{Kind: KTruncate, Path: p, Size: int64(rng.Intn(cfg.MaxData))})
			case cfg.NoDeletes:
				if roll < 93 {
					script = append(script, Op{Kind: KPut, Path: p, Data: payload(p)})
				} else {
					script = append(script, Op{Kind: KRead, Path: p})
				}
			case roll < 95 || !cfg.Renames:
				script = append(script, Op{Kind: KDelete, Path: p})
			default:
				q := paths[rng.Intn(len(paths))]
				if q == p {
					script = append(script, Op{Kind: KRead, Path: p})
				} else {
					script = append(script, Op{Kind: KRename, Path: p, Path2: q})
				}
			}
			if cfg.BarrierEvery > 0 && (i+1)%cfg.BarrierEvery == 0 {
				script = append(script, Op{Kind: KBarrier})
			}
		}
		scripts[k] = script
	}
	return scripts
}
