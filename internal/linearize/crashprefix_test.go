package linearize

import (
	"strings"
	"testing"
)

// replayPrefix materializes the model state after script[:n].
func replayPrefix(t *testing.T, script []Op, n int) State {
	t.Helper()
	s := State{}
	for _, op := range script[:n] {
		out, ns := Apply(s, op)
		if out.Err != OutOK {
			t.Fatalf("replay %s: %s", op, out.Err)
		}
		s = ns
	}
	return s
}

func crashScript(t *testing.T) []Op {
	t.Helper()
	scripts := GenerateCrashScripts(GenConfig{Seed: 11, Clients: 2, OpsPerClient: 30})
	script := scripts[1]
	hasApp, hasTrunc := false, false
	for _, op := range script {
		hasApp = hasApp || op.Kind == KAppend
		hasTrunc = hasTrunc || op.Kind == KTruncate
	}
	if !hasApp || !hasTrunc {
		t.Fatal("generated crash script exercises too few op kinds")
	}
	return script
}

// Every exact prefix of a generated script must be accepted with the right
// (or a longer, equally legal) prefix length.
func TestCrashPrefixAcceptsEveryPrefix(t *testing.T) {
	script := crashScript(t)
	for n := 0; n <= len(script); n++ {
		rep := CheckCrashPrefix(script, replayPrefix(t, script, n))
		if !rep.Ok {
			t.Fatalf("prefix %d rejected: %s", n, rep.Detail)
		}
		if rep.Prefix < n && !rep.Partial {
			t.Fatalf("prefix %d explained as shorter prefix %d without a partial frontier", n, rep.Prefix)
		}
	}
}

// A frontier put may survive as an empty file or any prefix of its data; a
// frontier append as the old value plus any prefix of the payload.
func TestCrashPrefixAcceptsFrontierPartials(t *testing.T) {
	script := crashScript(t)
	for i, op := range script {
		base := replayPrefix(t, script, i)
		var mids []string
		switch op.Kind {
		case KPut:
			mids = []string{"", string(op.Data[:1]), string(op.Data[:len(op.Data)/2])}
		case KAppend:
			prev := base[op.Path]
			mids = []string{prev + string(op.Data[:1]), prev + string(op.Data[:len(op.Data)/2])}
		default:
			continue
		}
		for _, mid := range mids {
			obs := base.Clone()
			obs[op.Path] = mid
			rep := CheckCrashPrefix(script, obs)
			if !rep.Ok {
				t.Fatalf("step %d %s: legal partial %dB rejected: %s", i, op, len(mid), rep.Detail)
			}
		}
	}
}

// States no prefix can explain must be rejected: a hole (an early write
// missing while later writes survive), a value from the future, bytes that
// were never written, and a truncate caught halfway (its LogOps triple is
// indivisible, so a half-truncated length is illegal).
func TestCrashPrefixRejectsInconsistentStates(t *testing.T) {
	script := crashScript(t)
	full := replayPrefix(t, script, len(script))

	hole := full.Clone()
	delete(hole, script[0].Path)
	if rep := CheckCrashPrefix(script, hole); rep.Ok {
		t.Fatal("accepted a state with an early write missing under surviving later writes")
	}

	// A future value: the final content of a path grafted onto the state
	// after only its first put. Generated payloads are globally unique, so
	// this value provably comes from an unapplied suffix.
	early := replayPrefix(t, script, 1)
	fut := early.Clone()
	p := script[0].Path
	if full[p] == early[p] {
		t.Skip("path ended at its initial value; seed choice degenerate")
	}
	fut[p] = full[p]
	if rep := CheckCrashPrefix(script, fut); rep.Ok && rep.Prefix <= 1 {
		t.Fatal("accepted a future value as a short prefix")
	}

	junk := full.Clone()
	junk[p] = full[p] + "\x00garbage"
	if rep := CheckCrashPrefix(script, junk); rep.Ok {
		t.Fatal("accepted bytes that were never written")
	}

	// A half-applied truncate. Shortening a file is only provably illegal
	// when another surviving write pins the prefix past every point where a
	// put or append frontier could explain the short content — here g="Y"
	// forces prefix >= 4, where f must be the full 8 bytes or the truncated
	// 2, never 6.
	tscript := []Op{
		{Kind: KPut, Path: "/lz0/g", Data: []byte("X")},
		{Kind: KPut, Path: "/lz0/f", Data: []byte("AAAA")},
		{Kind: KAppend, Path: "/lz0/f", Data: []byte("BBBB")},
		{Kind: KPut, Path: "/lz0/g", Data: []byte("Y")},
		{Kind: KTruncate, Path: "/lz0/f", Size: 2},
	}
	for _, legal := range []string{"AAAABBBB", "AA"} {
		if rep := CheckCrashPrefix(tscript, State{"/lz0/g": "Y", "/lz0/f": legal}); !rep.Ok {
			t.Fatalf("legal truncate-adjacent state %q rejected: %s", legal, rep.Detail)
		}
	}
	if rep := CheckCrashPrefix(tscript, State{"/lz0/g": "Y", "/lz0/f": "AAAABB"}); rep.Ok {
		t.Fatal("accepted a half-applied truncate")
	}
}

// Scripts stay inside their own namespace and every client's paths are
// disjoint, which is what lets the sweep check clients independently.
func TestCrashScriptsDisjoint(t *testing.T) {
	scripts := GenerateCrashScripts(GenConfig{Seed: 3, Clients: 3, OpsPerClient: 20})
	owner := map[string]int{}
	for k, script := range scripts {
		for _, op := range script {
			if !strings.HasPrefix(op.Path, "/lz") {
				t.Fatalf("client %d path %s outside the crash namespace", k, op.Path)
			}
			if prev, ok := owner[op.Path]; ok && prev != k {
				t.Fatalf("path %s shared by clients %d and %d", op.Path, prev, k)
			}
			owner[op.Path] = k
		}
	}
	if rep := CheckCrashPrefix(scripts[0], State{"/intruder": "x"}); rep.Ok {
		t.Fatal("accepted a surviving path outside the script namespace")
	}
}
