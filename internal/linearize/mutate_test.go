package linearize_test

// Detection tests: each mutation kind gets a scripted scenario whose
// barriers force the real-time edges that make the injected behavior
// provably non-linearizable, plus a clean control run of the same script
// that must pass. A checker that accepts any of these histories is broken.

import (
	"testing"

	"github.com/aerie-fs/aerie/internal/linearize"
)

const mutPath = "/m/f"

func bar() linearize.Op { return linearize.Op{Kind: linearize.KBarrier} }

// runScripts executes the scripts and returns the checked result.
func runScripts(t *testing.T, clients []linearize.ClientFS, scripts [][]linearize.Op) (linearize.History, linearize.Result) {
	t.Helper()
	rec := linearize.NewRecorder()
	h, err := linearize.Run(rec, clients, scripts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatalf("checker undecided after %d nodes", res.Nodes)
	}
	return h, res
}

func requireViolation(t *testing.T, res linearize.Result, kind string) {
	t.Helper()
	if res.Ok {
		t.Fatalf("%s: checker accepted a corrupted history", kind)
	}
	if res.Failure == nil {
		t.Fatalf("%s: violation without failure report", kind)
	}
	t.Logf("%s detected:\n%s", kind, res.Failure)
}

func TestMutationStaleReadDetected(t *testing.T) {
	// c0 writes v0 then v1 with a rendezvous after each; c1 reads only
	// after the second rendezvous, so both puts completed before the read
	// invoked. The mutator serves the overwritten v0.
	scripts := [][]linearize.Op{
		{put(mutPath, "v0-stale"), bar(), put(mutPath, "v1-fresh"), bar()},
		{bar(), bar(), read(mutPath)},
	}
	store := newFakeStore()
	if _, res := runScripts(t, []linearize.ClientFS{store.client(), store.client()}, scripts); !res.Ok {
		t.Fatalf("clean control run flagged: %+v", res.Failure)
	}

	store = newFakeStore()
	rec := linearize.NewRecorder()
	mut := linearize.NewStaleRead(store.client(), rec, mutPath)
	h, err := linearize.Run(rec, []linearize.ClientFS{store.client(), mut}, scripts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if mut.Fired == 0 {
		t.Fatal("stale-read mutation never fired")
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatal("undecided")
	}
	requireViolation(t, res, "stale read")
}

func TestMutationLostWriteDetected(t *testing.T) {
	// The second put is acknowledged and dropped; c1 reads after the
	// rendezvous and sees the first value, which real time forbids.
	scripts := [][]linearize.Op{
		{put(mutPath, "v0-kept"), bar(), put(mutPath, "v1-lost"), bar()},
		{bar(), bar(), read(mutPath)},
	}
	store := newFakeStore()
	if _, res := runScripts(t, []linearize.ClientFS{store.client(), store.client()}, scripts); !res.Ok {
		t.Fatalf("clean control run flagged: %+v", res.Failure)
	}

	store = newFakeStore()
	mut := linearize.NewLostWrite(store.client(), mutPath, 1)
	rec := linearize.NewRecorder()
	h, err := linearize.Run(rec, []linearize.ClientFS{mut, store.client()}, scripts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !mut.Fired {
		t.Fatal("lost-write mutation never fired")
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatal("undecided")
	}
	requireViolation(t, res, "lost write")
}

func TestMutationDeferredWriteDetected(t *testing.T) {
	// The second put is acknowledged but applied only at c0's next call —
	// after c1 already read between the rendezvous, observing the old
	// value. Unlike a lost write the update does land (c0's trailing read
	// sees it), so the final state is correct and only the ordering is
	// wrong: a lockstep final-state differ cannot catch this one.
	scripts := [][]linearize.Op{
		{put(mutPath, "v0-old"), bar(), put(mutPath, "v1-deferred"), bar(), bar(), read(mutPath)},
		{bar(), bar(), read(mutPath), bar()},
	}
	store := newFakeStore()
	if _, res := runScripts(t, []linearize.ClientFS{store.client(), store.client()}, scripts); !res.Ok {
		t.Fatalf("clean control run flagged: %+v", res.Failure)
	}

	store = newFakeStore()
	mut := linearize.NewDeferredWrite(store.client(), mutPath, 1)
	rec := linearize.NewRecorder()
	h, err := linearize.Run(rec, []linearize.ClientFS{mut, store.client()}, scripts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !mut.Fired {
		t.Fatal("deferred-write mutation never fired")
	}
	// The deferred update must actually have landed for this scenario to be
	// a reordering rather than a loss.
	if got, err := store.client().Read(mutPath); err != nil || string(got) != "v1-deferred" {
		t.Fatalf("deferred put never applied: %q, %v", got, err)
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatal("undecided")
	}
	requireViolation(t, res, "deferred write")
}

func TestMutationDupAppendDetected(t *testing.T) {
	// Single client: put then append then read. The duplicated apply makes
	// the contents hold the payload twice — no sequential order explains
	// it, so this one is detectable without any concurrency at all.
	scripts := [][]linearize.Op{{
		put(mutPath, "base."),
		{Kind: linearize.KAppend, Path: mutPath, Data: []byte("tail")},
		read(mutPath),
	}}
	store := newFakeStore()
	if _, res := runScripts(t, []linearize.ClientFS{store.client()}, scripts); !res.Ok {
		t.Fatalf("clean control run flagged: %+v", res.Failure)
	}

	store = newFakeStore()
	mut := linearize.NewDupAppend(store.client(), mutPath, 0)
	rec := linearize.NewRecorder()
	h, err := linearize.Run(rec, []linearize.ClientFS{mut}, scripts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !mut.Fired {
		t.Fatal("dup-append mutation never fired")
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatal("undecided")
	}
	requireViolation(t, res, "duplicated append")
}

func TestMutationWindowReorderDetected(t *testing.T) {
	// An honest run whose history is then rewritten: the read's window is
	// moved before the put whose unique value it observed. The original
	// history must pass; the mutated one must fail.
	scripts := [][]linearize.Op{{
		put(mutPath, "first-value"),
		put(mutPath, "second-value"),
		read(mutPath),
	}}
	store := newFakeStore()
	h, res := runScripts(t, []linearize.ClientFS{store.client()}, scripts)
	if !res.Ok {
		t.Fatalf("clean run flagged: %+v", res.Failure)
	}
	mutated, ok := linearize.MutateWindowReorder(h)
	if !ok {
		t.Fatal("no (read, put) pair qualified for window reordering")
	}
	mres := linearize.Check(mutated, linearize.CheckConfig{})
	if !mres.Decided {
		t.Fatal("undecided")
	}
	requireViolation(t, mres, "window reorder")
}
