package linearize

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotExist is the canonical not-exist error. Live adapters translate
// their implementation's error into this (or wrap it) so the runner can
// classify outcomes without knowing whose file system it is driving.
var ErrNotExist = errors.New("linearize: no such file")

// ClientFS is one client's connection to the system under test. Methods
// are whole operations — each call is invoked, performed, and responded
// within a single recorded window. Implementations return ErrNotExist
// (possibly wrapped) for missing paths; any other error is a harness
// failure, not an observation, and aborts the run.
type ClientFS interface {
	Put(path string, data []byte) error
	Append(path string, data []byte) error
	Read(path string) ([]byte, error)
	Truncate(path string, size int64) error
	Delete(path string) error
	Rename(src, dst string) error
}

// InvokeObserver is an optional ClientFS extension: the runner tells the
// wrapper the invocation stamp of the operation it is about to receive.
// Each client executes its script in a single goroutine, so a per-client
// wrapper sees ObserveInvoke and the operation call strictly in order.
// Mutation layers use the stamp to constrain themselves to provably
// illegal behavior (see CompletedPutsBefore).
type InvokeObserver interface {
	ObserveInvoke(stamp uint64)
}

// classify maps a ClientFS error onto a canonical outcome class. The bool
// is false for errors outside the model's vocabulary.
func classify(err error) (string, bool) {
	switch {
	case err == nil:
		return OutOK, true
	case errors.Is(err, ErrNotExist):
		return OutNoEnt, true
	}
	return "", false
}

// barrier is a reusable rendezvous for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Run drives one script per client concurrently, recording every operation
// window into rec. clients[k] executes scripts[k] in order; KBarrier steps
// rendezvous all clients (and are not recorded). All scripts must contain
// the same number of barriers, or the rendezvous would deadlock — Run
// validates this up front. Returns the recorded history; the error is
// non-nil if any client hit an error outside the model's vocabulary.
func Run(rec *Recorder, clients []ClientFS, scripts [][]Op) (History, error) {
	if len(clients) != len(scripts) {
		return History{}, fmt.Errorf("linearize: %d clients for %d scripts", len(clients), len(scripts))
	}
	nb := -1
	for k, script := range scripts {
		c := 0
		for _, op := range script {
			if op.Kind == KBarrier {
				c++
			}
		}
		if nb == -1 {
			nb = c
		} else if c != nb {
			return History{}, fmt.Errorf("linearize: client %d has %d barriers, client 0 has %d", k, c, nb)
		}
	}
	bar := newBarrier(len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for k := range clients {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = runClient(rec, bar, clients[k], k, scripts[k])
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return rec.History(), fmt.Errorf("client %d: %w", k, err)
		}
	}
	return rec.History(), nil
}

func runClient(rec *Recorder, bar *barrier, fs ClientFS, k int, script []Op) error {
	// On an early error the client must keep showing up at the remaining
	// rendezvous points, or every other client would block forever.
	drainFrom := func(step int) {
		for _, op := range script[step:] {
			if op.Kind == KBarrier {
				bar.wait()
			}
		}
	}
	for step, op := range script {
		if op.Kind == KBarrier {
			bar.wait()
			continue
		}
		p := rec.Invoke(k, step, op)
		if obs, ok := fs.(InvokeObserver); ok {
			obs.ObserveInvoke(p.InvokeStamp())
		}
		var data []byte
		var err error
		switch op.Kind {
		case KPut:
			err = fs.Put(op.Path, op.Data)
		case KAppend:
			err = fs.Append(op.Path, op.Data)
		case KRead:
			data, err = fs.Read(op.Path)
		case KTruncate:
			err = fs.Truncate(op.Path, op.Size)
		case KDelete:
			err = fs.Delete(op.Path)
		case KRename:
			err = fs.Rename(op.Path, op.Path2)
		default:
			p.Done(Outcome{Err: "harness"})
			drainFrom(step + 1)
			return fmt.Errorf("step %d: unknown op kind %v", step, op.Kind)
		}
		class, known := classify(err)
		if !known {
			// Still record the window closure so other clients' histories
			// stay well-formed, then surface the harness failure.
			p.Done(Outcome{Err: "harness"})
			drainFrom(step + 1)
			return fmt.Errorf("step %d %s: %w", step, op, err)
		}
		out := Outcome{Err: class}
		if op.Kind == KRead && class == OutOK {
			out.Data = data
		}
		p.Done(out)
	}
	return nil
}
