package linearize

import (
	"hash/fnv"
	"sort"
)

// State is the sequential specification state: path -> file contents. The
// string-keyed flat map mirrors what the concurrent workload can observe
// through whole-file operations; TestModelMatchesRamFS grounds its
// semantics against the RamFS implementation under the simulated VFS, so
// the checker's notion of "legal" is the same one the lockstep differential
// harness already trusts.
type State map[string]string

// Clone returns an independent copy.
func (s State) Clone() State {
	ns := make(State, len(s))
	for k, v := range s {
		ns[k] = v
	}
	return ns
}

// Digest fingerprints the state for checker memoization. Two states with
// equal digests are treated as identical search nodes; FNV-64a over the
// sorted path=content pairs keeps collisions implausible at the state
// counts a partition search visits.
func (s State) Digest() uint64 {
	paths := make([]string, 0, len(s))
	for p := range s {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := fnv.New64a()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
		h.Write([]byte(s[p]))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// Apply runs op against s and returns the specification outcome plus the
// resulting state. s itself is never mutated: read-only ops return it
// unchanged, mutating ops return a clone. Semantics:
//
//	put       always succeeds, creating or fully replacing the file
//	append    noent when absent, else contents += data
//	read      noent when absent, else returns the full contents
//	truncate  noent when absent, else resize with zero-fill growth
//	delete    noent when absent, else the file is gone
//	rename    noent when source absent, else moves (replacing any target)
func Apply(s State, op Op) (Outcome, State) {
	switch op.Kind {
	case KPut:
		ns := s.Clone()
		ns[op.Path] = string(op.Data)
		return Outcome{}, ns
	case KAppend:
		v, ok := s[op.Path]
		if !ok {
			return Outcome{Err: OutNoEnt}, s
		}
		ns := s.Clone()
		ns[op.Path] = v + string(op.Data)
		return Outcome{}, ns
	case KRead:
		v, ok := s[op.Path]
		if !ok {
			return Outcome{Err: OutNoEnt}, s
		}
		return Outcome{Data: []byte(v)}, s
	case KTruncate:
		v, ok := s[op.Path]
		if !ok {
			return Outcome{Err: OutNoEnt}, s
		}
		ns := s.Clone()
		if op.Size <= int64(len(v)) {
			ns[op.Path] = v[:op.Size]
		} else {
			ns[op.Path] = v + string(make([]byte, op.Size-int64(len(v))))
		}
		return Outcome{}, ns
	case KDelete:
		if _, ok := s[op.Path]; !ok {
			return Outcome{Err: OutNoEnt}, s
		}
		ns := s.Clone()
		delete(ns, op.Path)
		return Outcome{}, ns
	case KRename:
		v, ok := s[op.Path]
		if !ok {
			return Outcome{Err: OutNoEnt}, s
		}
		ns := s.Clone()
		delete(ns, op.Path)
		ns[op.Path2] = v
		return Outcome{}, ns
	}
	return Outcome{Err: "badop"}, s
}

// outcomeMatch reports whether the specification outcome explains the
// observed one. Errors compare by class; successful reads compare the full
// returned bytes.
func outcomeMatch(spec, obs Outcome) bool {
	if spec.Err != obs.Err {
		return false
	}
	if spec.Err != "" {
		return true
	}
	return string(spec.Data) == string(obs.Data)
}
