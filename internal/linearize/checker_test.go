package linearize_test

import (
	"strings"
	"testing"

	"github.com/aerie-fs/aerie/internal/linearize"
)

// entry builds a history entry by hand for checker unit tests.
func entry(id, client int, inv, ret uint64, op linearize.Op, out linearize.Outcome) linearize.Entry {
	return linearize.Entry{ID: id, Client: client, Step: id, Invoke: inv, Return: ret, Op: op, Out: out}
}

func put(path, data string) linearize.Op {
	return linearize.Op{Kind: linearize.KPut, Path: path, Data: []byte(data)}
}

func read(path string) linearize.Op {
	return linearize.Op{Kind: linearize.KRead, Path: path}
}

func sawData(data string) linearize.Outcome { return linearize.Outcome{Data: []byte(data)} }

func check(h linearize.History) linearize.Result {
	return linearize.Check(h, linearize.CheckConfig{})
}

// A read concurrent with a put may observe either the old or the new
// value — both orders are legal — but never a value nobody wrote.
func TestCheckConcurrentReadEitherValue(t *testing.T) {
	base := []linearize.Entry{
		entry(0, 0, 1, 2, put("/f", "v1"), linearize.Outcome{}),
		entry(1, 0, 3, 6, put("/f", "v2"), linearize.Outcome{}),
	}
	for _, tc := range []struct {
		saw string
		ok  bool
	}{
		{"v1", true}, {"v2", true}, {"v3", false},
	} {
		h := linearize.History{Entries: append(append([]linearize.Entry(nil), base...),
			entry(2, 1, 4, 5, read("/f"), sawData(tc.saw)))}
		res := check(h)
		if !res.Decided {
			t.Fatalf("saw %q: undecided", tc.saw)
		}
		if res.Ok != tc.ok {
			t.Errorf("read concurrent with put saw %q: Ok=%v, want %v", tc.saw, res.Ok, tc.ok)
		}
	}
}

// A read that invokes after a put's response must observe that put (or a
// later write) — returning the overwritten value violates real time.
func TestCheckRealTimeStaleReadRejected(t *testing.T) {
	mk := func(saw string) linearize.History {
		return linearize.History{Entries: []linearize.Entry{
			entry(0, 0, 1, 2, put("/f", "v1"), linearize.Outcome{}),
			entry(1, 0, 3, 4, put("/f", "v2"), linearize.Outcome{}),
			entry(2, 1, 5, 6, read("/f"), sawData(saw)),
		}}
	}
	if res := check(mk("v2")); !res.Ok || !res.Decided {
		t.Fatalf("fresh read rejected: %+v", res)
	}
	res := check(mk("v1"))
	if !res.Decided || res.Ok {
		t.Fatalf("stale read after both puts responded: Ok=%v Decided=%v, want violation", res.Ok, res.Decided)
	}
	if res.Failure == nil {
		t.Fatal("violation reported without a failure report")
	}
	msg := res.Failure.String()
	if !strings.Contains(msg, "read(/f)") {
		t.Errorf("failure report does not name the stuck read:\n%s", msg)
	}
}

// Operations on disjoint paths land in independent partitions; a rename
// bridges its two paths into one.
func TestCheckPartitioning(t *testing.T) {
	h := linearize.History{Entries: []linearize.Entry{
		entry(0, 0, 1, 2, put("/a", "x"), linearize.Outcome{}),
		entry(1, 0, 3, 4, put("/b", "y"), linearize.Outcome{}),
		entry(2, 0, 5, 6, put("/c", "z"), linearize.Outcome{}),
	}}
	if res := check(h); res.Partitions != 3 || !res.Ok {
		t.Fatalf("3 disjoint paths: partitions=%d ok=%v, want 3 independent passes", res.Partitions, res.Ok)
	}
	h.Entries = append(h.Entries,
		entry(3, 0, 7, 8, linearize.Op{Kind: linearize.KRename, Path: "/a", Path2: "/b"}, linearize.Outcome{}))
	if res := check(h); res.Partitions != 2 || !res.Ok {
		t.Fatalf("rename /a->/b should merge their partitions: partitions=%d ok=%v", res.Partitions, res.Ok)
	}
}

// Error observations check like values: a read of a deleted file must
// report noent, and a noent read of a live file is a violation.
func TestCheckErrorOutcomes(t *testing.T) {
	h := linearize.History{Entries: []linearize.Entry{
		entry(0, 0, 1, 2, read("/f"), linearize.Outcome{Err: "noent"}),
		entry(1, 0, 3, 4, put("/f", "v1"), linearize.Outcome{}),
		entry(2, 0, 5, 6, linearize.Op{Kind: linearize.KDelete, Path: "/f"}, linearize.Outcome{}),
		entry(3, 0, 7, 8, read("/f"), linearize.Outcome{Err: "noent"}),
	}}
	if res := check(h); !res.Ok || !res.Decided {
		t.Fatalf("legal noent reads rejected: %+v", res)
	}
	h.Entries[3].Out = sawData("v1")
	if res := check(h); res.Ok {
		t.Fatal("read of deleted file returning data was accepted")
	}
}

// An exhausted node budget yields undecided, never a verdict.
func TestCheckBudgetUndecided(t *testing.T) {
	// Three mutually concurrent puts plus a read: enough branching that one
	// node cannot finish the search.
	h := linearize.History{Entries: []linearize.Entry{
		entry(0, 0, 1, 10, put("/f", "a"), linearize.Outcome{}),
		entry(1, 1, 2, 11, put("/f", "b"), linearize.Outcome{}),
		entry(2, 2, 3, 12, put("/f", "c"), linearize.Outcome{}),
		entry(3, 3, 4, 13, read("/f"), sawData("b")),
	}}
	full := linearize.Check(h, linearize.CheckConfig{})
	if !full.Ok || !full.Decided {
		t.Fatalf("legal concurrent history rejected: %+v", full)
	}
	cut := linearize.Check(h, linearize.CheckConfig{MaxNodes: 1})
	if cut.Decided {
		t.Fatalf("MaxNodes=1 still decided (%d nodes)", cut.Nodes)
	}
	if !cut.Ok {
		t.Fatal("undecided result must not claim a violation")
	}
}

// The empty history and single-op histories are trivially linearizable.
func TestCheckTrivial(t *testing.T) {
	if res := check(linearize.History{}); !res.Ok || !res.Decided {
		t.Fatalf("empty history: %+v", res)
	}
	h := linearize.History{Entries: []linearize.Entry{
		entry(0, 0, 1, 2, put("/f", "v"), linearize.Outcome{}),
	}}
	if res := check(h); !res.Ok || !res.Decided || res.Partitions != 1 {
		t.Fatalf("single put: %+v", res)
	}
}
