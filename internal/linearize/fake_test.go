package linearize_test

// An in-memory, coarsely-locked reference implementation of ClientFS. Each
// operation is atomic under one mutex, so every history it produces is
// linearizable by construction — the clean-run control for the checker
// tests, and the honest substrate the mutation wrappers corrupt.

import (
	"sync"

	"github.com/aerie-fs/aerie/internal/linearize"
)

type fakeStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newFakeStore() *fakeStore { return &fakeStore{files: map[string][]byte{}} }

// client returns a ClientFS handle onto the shared store. All handles see
// the same files; the per-handle type exists so mutators can wrap a single
// client without touching the others.
func (s *fakeStore) client() linearize.ClientFS { return fakeClient{s} }

type fakeClient struct{ s *fakeStore }

func (c fakeClient) Put(path string, data []byte) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.s.files[path] = append([]byte(nil), data...)
	return nil
}

func (c fakeClient) Append(path string, data []byte) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	v, ok := c.s.files[path]
	if !ok {
		return linearize.ErrNotExist
	}
	c.s.files[path] = append(append([]byte(nil), v...), data...)
	return nil
}

func (c fakeClient) Read(path string) ([]byte, error) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	v, ok := c.s.files[path]
	if !ok {
		return nil, linearize.ErrNotExist
	}
	return append([]byte(nil), v...), nil
}

func (c fakeClient) Truncate(path string, size int64) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	v, ok := c.s.files[path]
	if !ok {
		return linearize.ErrNotExist
	}
	if size <= int64(len(v)) {
		c.s.files[path] = append([]byte(nil), v[:size]...)
	} else {
		nv := make([]byte, size)
		copy(nv, v)
		c.s.files[path] = nv
	}
	return nil
}

func (c fakeClient) Delete(path string) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if _, ok := c.s.files[path]; !ok {
		return linearize.ErrNotExist
	}
	delete(c.s.files, path)
	return nil
}

func (c fakeClient) Rename(src, dst string) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	v, ok := c.s.files[src]
	if !ok {
		return linearize.ErrNotExist
	}
	delete(c.s.files, src)
	c.s.files[dst] = v
	return nil
}
