package linearize_test

import (
	"math/rand"
	"testing"

	"github.com/aerie-fs/aerie/internal/linearize"
	"github.com/aerie-fs/aerie/internal/ramfs"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// The acceptance-scale clean run against the reference store: 8 clients,
// 500 ops each, shared path pool, renames on. The fake store is atomic per
// operation, so the history must check out — and must do so in a sane node
// count, proving the partitioned search scales to real workloads.
func TestCleanGeneratedRunLinearizable(t *testing.T) {
	seed := linearize.Seed(42)
	t.Logf("linearize generator seed %d (replay with AERIE_SEED=%d)", seed, seed)
	scripts := linearize.GenerateScripts(linearize.GenConfig{
		Seed:         seed,
		Clients:      8,
		OpsPerClient: 500,
		Renames:      true,
	})
	store := newFakeStore()
	clients := make([]linearize.ClientFS, len(scripts))
	for i := range clients {
		clients[i] = store.client()
	}
	rec := linearize.NewRecorder()
	h, err := linearize.Run(rec, clients, scripts)
	if err != nil {
		t.Fatalf("run (seed %d): %v", seed, err)
	}
	if got := len(h.Entries); got != 8*500 {
		t.Fatalf("recorded %d entries, want %d", got, 8*500)
	}
	res := linearize.Check(h, linearize.CheckConfig{})
	if !res.Decided {
		t.Fatalf("seed %d: undecided after %d nodes", seed, res.Nodes)
	}
	if !res.Ok {
		t.Fatalf("seed %d: clean history flagged:\n%s", seed, res.Failure)
	}
	t.Logf("linearized %d ops in %d partitions, %d nodes", len(h.Entries), res.Partitions, res.Nodes)
}

// Generated scripts must be deterministic in the seed, and different seeds
// must actually differ (otherwise AERIE_SEED replay is a fiction).
func TestGenerateScriptsDeterministic(t *testing.T) {
	a := linearize.GenerateScripts(linearize.GenConfig{Seed: 7, Clients: 3, OpsPerClient: 50})
	b := linearize.GenerateScripts(linearize.GenConfig{Seed: 7, Clients: 3, OpsPerClient: 50})
	c := linearize.GenerateScripts(linearize.GenConfig{Seed: 8, Clients: 3, OpsPerClient: 50})
	same := func(x, y [][]linearize.Op) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if len(x[i]) != len(y[i]) {
				return false
			}
			for j := range x[i] {
				if x[i][j].String() != y[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
}

func TestSeedEnvOverride(t *testing.T) {
	t.Setenv("AERIE_SEED", "12345")
	if got := linearize.Seed(42); got != 12345 {
		t.Fatalf("AERIE_SEED ignored: got %d", got)
	}
	t.Setenv("AERIE_SEED", "not-a-number")
	if got := linearize.Seed(42); got != 42 {
		t.Fatalf("malformed AERIE_SEED should fall back to default: got %d", got)
	}
}

// ramfsFlat adapts a RamFS (all files directly under the root) to the
// model's operation vocabulary, so the spec the checker enforces can be
// replayed against the same kernel-baseline implementation the lockstep
// differential harness trusts.
type ramfsFlat struct{ fs *ramfs.FS }

func (r ramfsFlat) lookup(name string) (vfs.Ino, bool) {
	ino, err := r.fs.Lookup(r.fs.Root(), name)
	return ino, err == nil
}

func (r ramfsFlat) apply(op linearize.Op) linearize.Outcome {
	noent := linearize.Outcome{Err: linearize.OutNoEnt}
	switch op.Kind {
	case linearize.KPut:
		ino, ok := r.lookup(op.Path)
		if !ok {
			var err error
			ino, err = r.fs.Create(r.fs.Root(), op.Path, 0o644, false)
			if err != nil {
				return linearize.Outcome{Err: "harness"}
			}
		}
		if err := r.fs.Truncate(ino, 0); err != nil {
			return linearize.Outcome{Err: "harness"}
		}
		if len(op.Data) > 0 {
			if _, err := r.fs.WriteAt(ino, op.Data, 0); err != nil {
				return linearize.Outcome{Err: "harness"}
			}
		}
		return linearize.Outcome{}
	case linearize.KAppend:
		ino, ok := r.lookup(op.Path)
		if !ok {
			return noent
		}
		attr, _ := r.fs.GetAttr(ino)
		if _, err := r.fs.WriteAt(ino, op.Data, attr.Size); err != nil {
			return linearize.Outcome{Err: "harness"}
		}
		return linearize.Outcome{}
	case linearize.KRead:
		ino, ok := r.lookup(op.Path)
		if !ok {
			return noent
		}
		attr, _ := r.fs.GetAttr(ino)
		buf := make([]byte, attr.Size)
		if attr.Size > 0 {
			if n, err := r.fs.ReadAt(ino, buf, 0); err != nil || uint64(n) != attr.Size {
				return linearize.Outcome{Err: "harness"}
			}
		}
		return linearize.Outcome{Data: buf}
	case linearize.KTruncate:
		ino, ok := r.lookup(op.Path)
		if !ok {
			return noent
		}
		if err := r.fs.Truncate(ino, uint64(op.Size)); err != nil {
			return linearize.Outcome{Err: "harness"}
		}
		return linearize.Outcome{}
	case linearize.KDelete:
		if _, ok := r.lookup(op.Path); !ok {
			return noent
		}
		if err := r.fs.Unlink(r.fs.Root(), op.Path, false); err != nil {
			return linearize.Outcome{Err: "harness"}
		}
		return linearize.Outcome{}
	case linearize.KRename:
		if _, ok := r.lookup(op.Path); !ok {
			return noent
		}
		if err := r.fs.Rename(r.fs.Root(), op.Path, r.fs.Root(), op.Path2); err != nil {
			return linearize.Outcome{Err: "harness"}
		}
		return linearize.Outcome{}
	}
	return linearize.Outcome{Err: "harness"}
}

// snapshot walks the RamFS root into the model's state representation.
func (r ramfsFlat) snapshot(t *testing.T) linearize.State {
	t.Helper()
	s := linearize.State{}
	ents, err := r.fs.ReadDir(r.fs.Root())
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range ents {
		attr, err := r.fs.GetAttr(e.Ino)
		if err != nil {
			t.Fatalf("getattr %s: %v", e.Name, err)
		}
		buf := make([]byte, attr.Size)
		if attr.Size > 0 {
			if n, err := r.fs.ReadAt(e.Ino, buf, 0); err != nil || uint64(n) != attr.Size {
				t.Fatalf("read %s: n=%d err=%v", e.Name, n, err)
			}
		}
		s[e.Name] = string(buf)
	}
	return s
}

func statesEqual(a, b linearize.State) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestModelMatchesRamFS grounds the checker's sequential specification in
// the RamFS implementation: a long random sequential op stream must produce
// identical outcomes and identical states in both, and a mid-stream
// RamFS.Clone must stay frozen while the original diverges.
func TestModelMatchesRamFS(t *testing.T) {
	seed := linearize.Seed(1)
	t.Logf("model-equivalence seed %d (replay with AERIE_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	paths := []string{"f0", "f1", "f2", "f3", "f4"}
	rfs := ramfsFlat{ramfs.New()}
	state := linearize.State{}

	var frozen *ramfs.FS
	var frozenWant linearize.State

	for i := 0; i < 4000; i++ {
		p := paths[rng.Intn(len(paths))]
		var op linearize.Op
		switch rng.Intn(6) {
		case 0:
			op = linearize.Op{Kind: linearize.KPut, Path: p, Data: []byte{byte(i), byte(i >> 8), byte(rng.Intn(256))}}
		case 1:
			op = linearize.Op{Kind: linearize.KAppend, Path: p, Data: []byte{byte(rng.Intn(256))}}
		case 2:
			op = linearize.Op{Kind: linearize.KRead, Path: p}
		case 3:
			op = linearize.Op{Kind: linearize.KTruncate, Path: p, Size: int64(rng.Intn(12))}
		case 4:
			op = linearize.Op{Kind: linearize.KDelete, Path: p}
		case 5:
			q := paths[rng.Intn(len(paths))]
			if q == p {
				op = linearize.Op{Kind: linearize.KRead, Path: p}
			} else {
				op = linearize.Op{Kind: linearize.KRename, Path: p, Path2: q}
			}
		}
		specOut, next := linearize.Apply(state, op)
		ramOut := rfs.apply(op)
		if specOut.Err != ramOut.Err || string(specOut.Data) != string(ramOut.Data) {
			t.Fatalf("op %d %s: model says %s, ramfs says %s (seed %d)", i, op, specOut, ramOut, seed)
		}
		state = next
		if i == 2000 {
			frozen = rfs.fs.Clone()
			frozenWant = state.Clone()
		}
	}
	if !statesEqual(state, rfs.snapshot(t)) {
		t.Fatalf("final model state diverged from ramfs (seed %d)", seed)
	}
	if !statesEqual(frozenWant, (ramfsFlat{frozen}).snapshot(t)) {
		t.Fatalf("ramfs.Clone mutated by operations on the original (seed %d)", seed)
	}
}
