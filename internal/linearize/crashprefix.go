package linearize

// Crash-prefix checking: the linearizability checker needs complete
// invocation/response windows, which a SIGKILLed process cannot deliver —
// its history dies with it. What survives is the volume, and for a client
// whose operations apply in session order (libfs ships window batches in
// sequence and a rejection discards the whole suffix) the surviving state
// must be explained by some *prefix* of that client's script, with at most
// the single frontier operation caught mid-application. When every client
// writes only its own disjoint paths, the check decomposes per client and
// "prefix-consistent linearization" reduces to: for each client there is an
// i such that ops 0..i-1 fully applied, op i is absent or partially
// applied, and nothing after i left a trace.
//
// The frontier op's partial states follow batch granularity (one logOps
// call per batch at BatchLimit 1, LogOps sequences indivisible):
//
//	put       old value -> empty (O_TRUNC applied) -> growing prefix of the
//	          new data (one staged extent per batch) -> new value
//	append    old value -> old value + growing prefix of the appended data
//	truncate  old value -> new value (copy-on-truncate ships as one
//	          indivisible LogOps triple; no intermediate is legal)

import (
	"fmt"
	"math/rand"
	"strings"
)

// CrashReport is CheckCrashPrefix's verdict for one client.
type CrashReport struct {
	// Ok is true when the observed state matches some script prefix.
	Ok bool
	// Prefix is the number of fully applied operations (valid when Ok).
	Prefix int
	// Partial is true when the frontier op left a legal intermediate state
	// rather than nothing (valid when Ok).
	Partial bool
	// Detail explains a failure: for each candidate prefix length, the
	// first path whose observed content the prefix cannot explain.
	Detail string
}

// GenerateCrashScripts builds write-only scripts on disjoint per-client
// namespaces (client k owns cfg.PathPrefix with "<k>/" spliced in, default
// "/lz<k>/f00".."/lzk/fNN"). Each script opens by putting every one of the
// client's paths, so later appends and truncates always land on existing
// files and the model never needs an error branch; there are no reads,
// barriers, deletes, or renames — nothing that needs a recorded outcome or
// cross-client coordination to interpret after the process is gone.
func GenerateCrashScripts(cfg GenConfig) [][]Op {
	cfg.defaults()
	scripts := make([][]Op, cfg.Clients)
	for k := 0; k < cfg.Clients; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*7919))
		nPaths := cfg.Paths / cfg.Clients
		if nPaths < 2 {
			nPaths = 2
		}
		paths := make([]string, nPaths)
		for i := range paths {
			paths[i] = fmt.Sprintf("/lz%d/f%02d", k, i)
		}
		gen := 0
		payload := func() []byte {
			gen++
			n := 8 + rng.Intn(cfg.MaxData)
			b := make([]byte, n)
			tag := fmt.Sprintf("c%d.g%d.", k, gen)
			copy(b, tag)
			for j := len(tag); j < n; j++ {
				b[j] = byte('a' + rng.Intn(26))
			}
			return b
		}
		var script []Op
		for _, p := range paths {
			script = append(script, Op{Kind: KPut, Path: p, Data: payload()})
		}
		for len(script) < cfg.OpsPerClient {
			p := paths[rng.Intn(len(paths))]
			switch roll := rng.Intn(100); {
			case roll < 40:
				script = append(script, Op{Kind: KPut, Path: p, Data: payload()})
			case roll < 75:
				script = append(script, Op{Kind: KAppend, Path: p, Data: payload()})
			default:
				script = append(script, Op{Kind: KTruncate, Path: p, Size: int64(rng.Intn(cfg.MaxData))})
			}
		}
		scripts[k] = script
	}
	return scripts
}

// CheckCrashPrefix decides whether observed — the contents of one client's
// paths recovered from a crashed volume, absent paths omitted — is
// explained by some prefix of the client's write-only script. Two passes:
// the first replays the script through the sequential model, materializing
// the state after every prefix; the second scans those prefixes for one
// whose state matches observed exactly on every path the script touches,
// allowing the single op at the frontier to have left a legal partial
// state instead (see the granularity table in the package comment).
func CheckCrashPrefix(script []Op, observed State) CrashReport {
	// Pass 1: prefix states. states[i] is the model state after script[:i].
	states := make([]State, len(script)+1)
	states[0] = State{}
	for i, op := range script {
		out, ns := Apply(states[i], op)
		if out.Err != OutOK {
			return CrashReport{Detail: fmt.Sprintf(
				"script is not self-contained: step %d %s fails on its own prefix (%s)", i, op, out.Err)}
		}
		states[i+1] = ns
	}
	paths := map[string]bool{}
	for _, op := range script {
		paths[op.Path] = true
	}
	for p := range observed {
		if !paths[p] {
			return CrashReport{Detail: fmt.Sprintf("surviving path %s is outside the script's namespace", p)}
		}
	}

	// Pass 2: longest-first, so Prefix reports how far the client provably
	// got, not merely the first match (an empty observed state matches
	// prefix 0 trivially while the true explanation may be longer).
	var why []string
	for i := len(script); i >= 0; i-- {
		mismatch, partial := matchPrefix(states, script, i, observed, paths)
		if mismatch == "" {
			return CrashReport{Ok: true, Prefix: i, Partial: partial}
		}
		if len(why) < 3 {
			why = append(why, fmt.Sprintf("prefix %d: %s", i, mismatch))
		}
	}
	return CrashReport{Detail: strings.Join(why, "; ")}
}

// matchPrefix tests observed against states[i], permitting script[i] (when
// i < len(script)) to be partially applied on its path. Returns a
// description of the first inexplicable path ("" on match) and whether the
// match needed a partial frontier.
func matchPrefix(states []State, script []Op, i int, observed State, paths map[string]bool) (string, bool) {
	base := states[i]
	partial := false
	for p := range paths {
		want, wantOK := base[p]
		got, gotOK := observed[p]
		if wantOK == gotOK && want == got {
			continue
		}
		if i < len(script) && script[i].Path == p &&
			frontierState(want, wantOK, script[i], got, gotOK) {
			partial = true
			continue
		}
		switch {
		case !gotOK:
			return fmt.Sprintf("%s missing (want %dB)", p, len(want)), false
		case !wantOK:
			return fmt.Sprintf("%s exists with %dB (want absent)", p, len(got)), false
		default:
			return fmt.Sprintf("%s has %dB, want %dB", p, len(got), len(want)), false
		}
	}
	return "", partial
}

// frontierState reports whether got is a legal mid-application state of op
// on a file whose pre-op content was prev (prevOK false when absent).
func frontierState(prev string, prevOK bool, op Op, got string, gotOK bool) bool {
	switch op.Kind {
	case KPut:
		// The O_TRUNC open publishes an empty file first, then each staged
		// extent lands in its own batch: empty or any prefix of the data.
		return gotOK && strings.HasPrefix(string(op.Data), got)
	case KAppend:
		if !gotOK || !prevOK {
			return false
		}
		return strings.HasPrefix(got, prev) && strings.HasPrefix(string(op.Data), got[len(prev):])
	case KTruncate:
		// Copy-on-truncate ships one indivisible LogOps triple; the only
		// states are before and after, both handled by exact prefix match.
		return false
	}
	return false
}
