package linearize

// Mutation layers: adversarial ClientFS wrappers (plus one post-hoc
// history rewrite) that each inject a specific consistency violation the
// checker must flag. They generalize the conformance harness's injected
// off-by-one adapter (PR 3's shortAppend): where that proved the lockstep
// differ detects a wrong final state, these prove the linearizability
// checker detects wrong *orderings* — stale reads, lost and deferred
// writes, duplicated applies, and windows rewritten to contradict real
// time. A checker that cannot fail these is vacuous, whatever it says
// about clean runs.

// passthrough forwards every operation to the wrapped client. Mutators
// embed it and override what they corrupt.
type passthrough struct{ fs ClientFS }

func (p passthrough) Put(path string, data []byte) error    { return p.fs.Put(path, data) }
func (p passthrough) Append(path string, data []byte) error { return p.fs.Append(path, data) }
func (p passthrough) Read(path string) ([]byte, error)      { return p.fs.Read(path) }
func (p passthrough) Truncate(path string, size int64) error {
	return p.fs.Truncate(path, size)
}
func (p passthrough) Delete(path string) error     { return p.fs.Delete(path) }
func (p passthrough) Rename(src, dst string) error { return p.fs.Rename(src, dst) }

// ---- mutation 1: stale read ----

// StaleRead serves reads of one path from history instead of the system:
// whenever at least two puts completed before the read invoked, it returns
// the second-newest — a value every legal linearization has already
// overwritten. Models a client that trusts a stale cache (exactly the bug
// the name-cache flush-on-revocation discipline exists to prevent).
type StaleRead struct {
	passthrough
	rec    *Recorder
	path   string
	invoke uint64
	// Fired counts how many reads were served stale.
	Fired int
}

// NewStaleRead wraps fs for one client; reads of path turn stale.
func NewStaleRead(fs ClientFS, rec *Recorder, path string) *StaleRead {
	return &StaleRead{passthrough: passthrough{fs}, rec: rec, path: path}
}

// ObserveInvoke implements InvokeObserver.
func (m *StaleRead) ObserveInvoke(stamp uint64) { m.invoke = stamp }

func (m *StaleRead) Read(path string) ([]byte, error) {
	if path == m.path {
		if puts := m.rec.CompletedPutsBefore(path, m.invoke); len(puts) >= 2 {
			m.Fired++
			return append([]byte(nil), puts[len(puts)-2]...), nil
		}
	}
	return m.fs.Read(path)
}

// ---- mutation 2: lost write ----

// LostWrite acknowledges one put without performing it: the nth put to
// path returns success and touches nothing. Models an acknowledged update
// that never shipped — a dropped batch the window protocol claimed retired.
type LostWrite struct {
	passthrough
	path  string
	n     int
	seen  int
	Fired bool
}

// NewLostWrite wraps fs; the nth (0-indexed) put to path is dropped.
func NewLostWrite(fs ClientFS, path string, n int) *LostWrite {
	return &LostWrite{passthrough: passthrough{fs}, path: path, n: n}
}

func (m *LostWrite) Put(path string, data []byte) error {
	if path == m.path {
		if m.seen == m.n {
			m.seen++
			m.Fired = true
			return nil
		}
		m.seen++
	}
	return m.fs.Put(path, data)
}

// ---- mutation 3: deferred write (reordering) ----

// DeferredWrite acknowledges one put immediately but applies it only when
// the client's next operation arrives — sliding the write later than its
// response window claims. Models an apply pipeline that retires a batch
// before it is visible: unlike LostWrite the update does land, so only an
// ordering-aware checker (not a final-state differ) can catch it.
type DeferredWrite struct {
	passthrough
	path    string
	n       int
	seen    int
	pending func() error
	Fired   bool
}

// NewDeferredWrite wraps fs; the nth (0-indexed) put to path is deferred
// until the client's next call.
func NewDeferredWrite(fs ClientFS, path string, n int) *DeferredWrite {
	return &DeferredWrite{passthrough: passthrough{fs}, path: path, n: n}
}

func (m *DeferredWrite) flush() error {
	if m.pending == nil {
		return nil
	}
	fn := m.pending
	m.pending = nil
	return fn()
}

func (m *DeferredWrite) Put(path string, data []byte) error {
	if err := m.flush(); err != nil {
		return err
	}
	if path == m.path {
		if m.seen == m.n {
			m.seen++
			m.Fired = true
			d := append([]byte(nil), data...)
			m.pending = func() error { return m.fs.Put(path, d) }
			return nil
		}
		m.seen++
	}
	return m.fs.Put(path, data)
}

func (m *DeferredWrite) Append(path string, data []byte) error {
	if err := m.flush(); err != nil {
		return err
	}
	return m.fs.Append(path, data)
}

func (m *DeferredWrite) Read(path string) ([]byte, error) {
	if err := m.flush(); err != nil {
		return nil, err
	}
	return m.fs.Read(path)
}

func (m *DeferredWrite) Truncate(path string, size int64) error {
	if err := m.flush(); err != nil {
		return err
	}
	return m.fs.Truncate(path, size)
}

func (m *DeferredWrite) Delete(path string) error {
	if err := m.flush(); err != nil {
		return err
	}
	return m.fs.Delete(path)
}

func (m *DeferredWrite) Rename(src, dst string) error {
	if err := m.flush(); err != nil {
		return err
	}
	return m.fs.Rename(src, dst)
}

// ---- mutation 4: duplicated append ----

// DupAppend applies one append twice. Models a replayed batch: an apply
// that is not idempotent across a retry. Detectable even single-client —
// no sequential order explains contents holding the payload twice.
type DupAppend struct {
	passthrough
	path  string
	n     int
	seen  int
	Fired bool
}

// NewDupAppend wraps fs; the nth (0-indexed) append to path applies twice.
func NewDupAppend(fs ClientFS, path string, n int) *DupAppend {
	return &DupAppend{passthrough: passthrough{fs}, path: path, n: n}
}

func (m *DupAppend) Append(path string, data []byte) error {
	if path == m.path {
		if m.seen == m.n {
			m.seen++
			m.Fired = true
			if err := m.fs.Append(path, data); err != nil {
				return err
			}
			return m.fs.Append(path, data)
		}
		m.seen++
	}
	return m.fs.Append(path, data)
}

// ---- mutation 5: window reordering ----

// MutateWindowReorder rewrites a recorded history so that some successful
// read's window sits entirely before the put whose (unique) value it
// observed — injecting a real-time contradiction after the fact. This is
// the literal "injected reordering": the operations themselves are honest,
// only their claimed windows lie, which is precisely the corruption a
// broken recorder clock or a mis-stamped window protocol would produce.
//
// Returns the mutated history and true, or the input and false when no
// (read, put) pair qualifies: the read's value must match exactly one put
// (so nothing else in the history can explain the bytes) and the put must
// precede the read in real time (so moving the read actually inverts an
// edge). Existing stamps are scaled by 4 to open gaps; the read's new
// window lands in the gap just below the put's invocation, keeping all
// stamps unique.
func MutateWindowReorder(h History) (History, bool) {
	entries := append([]Entry(nil), h.Entries...)
	for ri := range entries {
		r := entries[ri]
		if r.Op.Kind != KRead || r.Out.Err != OutOK || len(r.Out.Data) == 0 {
			continue
		}
		match := -1
		for pi := range entries {
			p := entries[pi]
			if p.Op.Kind == KPut && p.Op.Path == r.Op.Path && string(p.Op.Data) == string(r.Out.Data) {
				if match >= 0 {
					match = -2
					break
				}
				match = pi
			}
		}
		if match < 0 {
			continue
		}
		p := entries[match]
		if p.Return >= r.Invoke {
			continue // concurrent or already inverted; moving it proves nothing
		}
		for i := range entries {
			entries[i].Invoke *= 4
			entries[i].Return *= 4
		}
		entries[ri].Invoke = entries[match].Invoke - 2
		entries[ri].Return = entries[match].Invoke - 1
		return History{Entries: entries}, true
	}
	return h, false
}
