// Package exhaustsweep is the resource-exhaustion harness, the sibling of
// crashsweep: where crashsweep proves every crash point recovers, this
// package proves every allocation and journal-append failure degrades
// gracefully. Two passes:
//
//   - Natural fill: a machine with a deliberately tiny arena and journal is
//     filled until it reports out-of-space. Every failure on the way must be
//     typed (errors.Is fsproto.ErrNoSpace / ErrBatchTooLarge / ErrBusy —
//     never a transport error or an untyped validation reject), committed
//     files must still read back exactly, the journal must be idle (no
//     committed-but-unapplied batch stranded), and Fsck must find zero
//     leaked blocks without repairing anything. Deleting files must then
//     free space and let the workload make forward progress — the
//     delete-to-recover path a full volume depends on.
//
//   - Injected sweep: a comfortable machine runs a mutation workload once
//     per sampled ordinal of every exhaustion fault point ("alloc.alloc",
//     "alloc.reserve", "journal.append") with the matching error injected
//     exactly there. The workload must either absorb the failure and
//     complete, or fail typed; either way the volume must verify clean.
//
// The invariant under test is the reservation design's contract: a space
// failure is only ever reported *before* a batch commits, so there is no
// such thing as a partially applied batch — Fsck never finds half-applied
// state, and recovery never replays into a full allocator.
package exhaustsweep

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/faultinject"
	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/journal"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
	"github.com/aerie-fs/aerie/internal/rpc"
)

// Points swept by the injected pass, with the error each one injects.
var injectedPoints = map[string]error{
	"alloc.alloc":    alloc.ErrNoSpace,
	"alloc.reserve":  alloc.ErrNoSpace,
	"journal.append": journal.ErrFull,
}

// Config tunes a sweep.
type Config struct {
	// Seed drives the deterministic workloads (default 1).
	Seed int64
	// Steps is the injected pass's workload length (default 18).
	Steps int
	// MaxOrdinalsPerPoint caps the ordinals sampled per injected point
	// (default 3: first, middle, last). <=0 sweeps every ordinal.
	MaxOrdinalsPerPoint int
	// Points, when non-empty, restricts the injected pass to these points.
	Points []string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Steps == 0 {
		c.Steps = 18
	}
	if c.MaxOrdinalsPerPoint == 0 {
		c.MaxOrdinalsPerPoint = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// PointResult is the injected-pass outcome for one fault point.
type PointResult struct {
	Point    string
	Hits     uint64   // baseline hit count
	Sampled  []uint64 // ordinals an injection was armed at
	Injected int      // runs where the armed ordinal actually fired
	Typed    int      // runs that surfaced a typed exhaustion error
	Absorbed int      // runs that completed despite the injection
	Failures []string
}

// Result is the outcome of a whole sweep.
type Result struct {
	// FillFiles is how many files the natural-fill pass committed before
	// the volume filled; FillFailures lists its violations.
	FillFiles    int
	FillFailures []string
	Points       []PointResult
	Runs         int
}

// Failures flattens every violation found.
func (r Result) Failures() []string {
	out := append([]string(nil), r.FillFailures...)
	for _, p := range r.Points {
		for _, f := range p.Failures {
			out = append(out, p.Point+": "+f)
		}
	}
	return out
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exhaustsweep: fill committed %d files (%d failures); %d injected runs\n",
		r.FillFiles, len(r.FillFailures), r.Runs)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-16s hits=%d sampled=%d injected=%d typed=%d absorbed=%d failures=%d\n",
			p.Point, p.Hits, len(p.Sampled), p.Injected, p.Typed, p.Absorbed, len(p.Failures))
	}
	return b.String()
}

// typedExhaustion reports whether err is one of the sanctioned exhaustion
// outcomes — and in particular NOT a transport classification: an ENOSPC
// must never look like "TFS unreachable" (which would requeue forever).
func typedExhaustion(err error) bool {
	if !fsproto.IsExhaustion(err) {
		return false
	}
	return !errors.Is(err, libfs.ErrTFSUnreachable) && !errors.Is(err, rpc.ErrUnreachable)
}

// buildTiny assembles the natural-fill machine: an arena and journal small
// enough that a few hundred KiB of files exhaust them.
func buildTiny(inj *faultinject.Injector) (*core.System, error) {
	return core.New(core.Options{
		ArenaSize:        8 << 20,
		JournalSize:      256 << 10,
		TrackPersistence: true,
		Lease:            time.Hour,
		AcquireTimeout:   10 * time.Second,
		Faults:           inj,
	})
}

func buildRoomy(inj *faultinject.Injector) (*core.System, error) {
	return core.New(core.Options{
		ArenaSize:        32 << 20,
		TrackPersistence: true,
		Lease:            time.Hour,
		AcquireTimeout:   10 * time.Second,
		Faults:           inj,
	})
}

func mount(sys *core.System) (*libfs.Session, *pxfs.FS, error) {
	sess, err := sys.NewSession(libfs.Config{
		UID:        1000,
		BatchLimit: 1 << 20,
		PoolRefill: 8,
		RenewEvery: time.Hour,
		// The harness wants the typed shed surfaced, not absorbed by
		// minutes of client-side patience.
		BusyRetries: 2,
	})
	if err != nil {
		return nil, nil, err
	}
	return sess, pxfs.New(sess, pxfs.Options{NameCache: true}), nil
}

// fillContent is the deterministic payload of fill file i.
func fillContent(seed int64, i int) []byte {
	data := make([]byte, 32<<10)
	for j := range data {
		data[j] = byte(int64(i)*131 + seed*31 + int64(j)*7)
	}
	return data
}

func fillName(i int) string { return fmt.Sprintf("/fill/f%04d", i) }

// checkVolume asserts the no-partial-application invariant on a live
// machine: journal idle (nothing committed but unapplied survives an
// ENOSPC) and zero leaked blocks without repair.
func checkVolume(sys *core.System, tag string) []string {
	var fails []string
	if !sys.TFS.JournalIdle() {
		fails = append(fails, fmt.Sprintf("%s: journal not idle: committed batch stranded", tag))
	}
	rep, err := sys.TFS.Fsck(false)
	if err != nil {
		return append(fails, fmt.Sprintf("%s: fsck: %v", tag, err))
	}
	if rep.LeakedBlocks != 0 {
		fails = append(fails, fmt.Sprintf("%s: fsck found leaks without a crash: %v", tag, rep))
	}
	return fails
}

// naturalFill runs the fill pass. See the package comment for the
// assertions.
func naturalFill(cfg Config) (int, []string) {
	var fails []string
	sys, err := buildTiny(nil)
	if err != nil {
		return 0, []string{fmt.Sprintf("build: %v", err)}
	}
	_, fs, err := mount(sys)
	if err != nil {
		return 0, []string{fmt.Sprintf("mount: %v", err)}
	}
	if err := fs.Mkdir("/fill", 0o755); err != nil {
		return 0, []string{fmt.Sprintf("mkdir: %v", err)}
	}

	// Fill until the volume reports exhaustion. Every file is written once
	// and synced, so files [0, committed) are durably exactly fillContent.
	committed := 0
	var fillErr error
	const maxFiles = 4096
	for i := 0; i < maxFiles; i++ {
		if fillErr = writeFile(fs, fillName(i), fillContent(cfg.Seed, i)); fillErr != nil {
			break
		}
		committed = i + 1
	}
	switch {
	case fillErr == nil:
		return committed, []string{"fill never hit exhaustion: arena too large for the harness"}
	case !typedExhaustion(fillErr):
		fails = append(fails, fmt.Sprintf("fill failure not typed: %v", fillErr))
	}

	// No partial application, no leaks, nothing stranded in the journal.
	fails = append(fails, checkVolume(sys, "post-fill")...)

	// The session must have reconverged with committed state: every
	// committed file reads back exactly.
	for i := 0; i < committed; i++ {
		got, err := readFile(fs, fillName(i), 32<<10)
		if err != nil {
			fails = append(fails, fmt.Sprintf("committed %s unreadable after ENOSPC: %v", fillName(i), err))
			break
		}
		if !bytes.Equal(got, fillContent(cfg.Seed, i)) {
			fails = append(fails, fmt.Sprintf("committed %s corrupted after ENOSPC", fillName(i)))
			break
		}
	}

	// Graceful recovery: deletes must succeed on the full volume and free
	// enough space for new work.
	freeUpTo := committed / 2
	for i := 0; i < freeUpTo; i++ {
		if err := fs.Unlink(fillName(i)); err != nil {
			fails = append(fails, fmt.Sprintf("unlink %s on full volume: %v", fillName(i), err))
			return committed, fails
		}
	}
	if err := fs.Sync(); err != nil {
		fails = append(fails, fmt.Sprintf("sync of deletes on full volume: %v", err))
		return committed, fails
	}
	fails = append(fails, checkVolume(sys, "post-delete")...)

	// Forward progress after freeing space.
	if err := writeFile(fs, "/fill/after", fillContent(cfg.Seed, 9999)); err != nil {
		fails = append(fails, fmt.Sprintf("no forward progress after deletes: %v", err))
	}
	return committed, fails
}

func writeFile(fs *pxfs.FS, name string, data []byte) error {
	f, err := fs.Create(name, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Sync()
}

func readFile(fs *pxfs.FS, name string, size int) ([]byte, error) {
	f, err := fs.Open(name, pxfs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// workload is the injected pass's mutation mix: enough creates, overwrites,
// unlinks, and syncs to hit every exhaustion point repeatedly.
func workload(fs *pxfs.FS, seed int64, steps int) error {
	if err := fs.Mkdir("/d", 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	for step := 0; step < steps; step++ {
		name := fmt.Sprintf("/d/f%02d", (int(seed)+step*5)%7)
		switch step % 4 {
		case 0, 1:
			if err := writeFile(fs, name, fillContent(seed, step)); err != nil {
				return fmt.Errorf("step %d write: %w", step, err)
			}
		case 2:
			if err := fs.Unlink(name); err != nil && !errors.Is(err, pxfs.ErrNotExist) {
				return fmt.Errorf("step %d unlink: %w", step, err)
			}
		case 3:
			if err := fs.Sync(); err != nil {
				return fmt.Errorf("step %d sync: %w", step, err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return fmt.Errorf("final sync: %w", err)
	}
	return nil
}

// probe asserts a fresh session can still mutate the volume.
func probe(sys *core.System) []string {
	sess, err := sys.NewSession(libfs.Config{UID: 1001, RenewEvery: time.Hour})
	if err != nil {
		return []string{fmt.Sprintf("probe mount: %v", err)}
	}
	defer sess.Close()
	fs := pxfs.New(sess, pxfs.Options{})
	if err := writeFile(fs, "/probe", []byte("alive")); err != nil {
		return []string{fmt.Sprintf("probe write: %v", err)}
	}
	got, err := readFile(fs, "/probe", 5)
	if err != nil {
		return []string{fmt.Sprintf("probe read: %v", err)}
	}
	if string(got) != "alive" {
		return []string{fmt.Sprintf("probe read back %q", got)}
	}
	return nil
}

// sampleOrdinals picks up to max ordinals in [1, n]: first, last, evenly
// spaced between.
func sampleOrdinals(n uint64, max int) []uint64 {
	if n == 0 {
		return nil
	}
	if max <= 0 || uint64(max) >= n {
		out := make([]uint64, 0, n)
		for o := uint64(1); o <= n; o++ {
			out = append(out, o)
		}
		return out
	}
	if max == 1 {
		return []uint64{1}
	}
	out := make([]uint64, 0, max)
	for i := 0; i < max; i++ {
		o := 1 + (n-1)*uint64(i)/uint64(max-1)
		if len(out) == 0 || out[len(out)-1] != o {
			out = append(out, o)
		}
	}
	return out
}

// runInjected performs one injected-failure experiment.
func runInjected(cfg Config, point string, ord uint64, injectErr error) (fired bool, typed bool, absorbed bool, fails []string) {
	inj := faultinject.New()
	inj.Disable()
	sys, err := buildRoomy(inj)
	if err != nil {
		return false, false, false, []string{fmt.Sprintf("build: %v", err)}
	}
	_, fs, err := mount(sys)
	if err != nil {
		return false, false, false, []string{fmt.Sprintf("mount: %v", err)}
	}
	before := inj.Counts()[point]
	inj.FailAt(point, ord, injectErr)
	inj.Enable()
	werr := workload(fs, cfg.Seed, cfg.Steps)
	inj.Disable()
	fired = inj.Counts()[point]-before >= ord

	tag := fmt.Sprintf("%s@%d", point, ord)
	switch {
	case werr == nil:
		absorbed = true
	case typedExhaustion(werr):
		typed = true
	case fired:
		fails = append(fails, fmt.Sprintf("%s: untyped failure: %v", tag, werr))
	default:
		fails = append(fails, fmt.Sprintf("%s: failed without the injection firing: %v", tag, werr))
	}
	fails = append(fails, checkVolume(sys, tag)...)
	fails = append(fails, probe(sys)...)
	return fired, typed, absorbed, fails
}

// Sweep runs both passes. It returns an error only for harness breakage;
// violations are reported in the Result.
func Sweep(cfg Config) (Result, error) {
	cfg.defaults()
	var res Result

	cfg.Logf("exhaustsweep: natural fill")
	res.FillFiles, res.FillFailures = naturalFill(cfg)
	cfg.Logf("exhaustsweep: fill committed %d files, %d failures", res.FillFiles, len(res.FillFailures))

	// Baseline for the injected pass: count how often each point fires.
	inj := faultinject.New()
	inj.Disable()
	sys, err := buildRoomy(inj)
	if err != nil {
		return res, fmt.Errorf("baseline build: %w", err)
	}
	_, fs, err := mount(sys)
	if err != nil {
		return res, fmt.Errorf("baseline mount: %w", err)
	}
	inj.Enable()
	if err := workload(fs, cfg.Seed, cfg.Steps); err != nil {
		return res, fmt.Errorf("baseline workload: %w", err)
	}
	inj.Disable()
	counts := inj.Counts()

	points := make([]string, 0, len(injectedPoints))
	for p := range injectedPoints {
		points = append(points, p)
	}
	sort.Strings(points)
	if len(cfg.Points) > 0 {
		keep := make(map[string]bool, len(cfg.Points))
		for _, p := range cfg.Points {
			keep[p] = true
		}
		filtered := points[:0]
		for _, p := range points {
			if keep[p] {
				filtered = append(filtered, p)
			}
		}
		points = filtered
	}

	for _, point := range points {
		pr := PointResult{Point: point, Hits: counts[point]}
		for _, ord := range sampleOrdinals(counts[point], cfg.MaxOrdinalsPerPoint) {
			pr.Sampled = append(pr.Sampled, ord)
			fired, typed, absorbed, fails := runInjected(cfg, point, ord, injectedPoints[point])
			res.Runs++
			if fired {
				pr.Injected++
			}
			if typed {
				pr.Typed++
			}
			if absorbed {
				pr.Absorbed++
			}
			pr.Failures = append(pr.Failures, fails...)
			cfg.Logf("exhaustsweep: %s@%d fired=%v typed=%v absorbed=%v failures=%d",
				point, ord, fired, typed, absorbed, len(fails))
		}
		res.Points = append(res.Points, pr)
	}
	return res, nil
}
