package exhaustsweep

import (
	"testing"

	"github.com/aerie-fs/aerie/internal/linearize"
)

// TestSweepQuick is the tier-1 smoke: the natural fill plus one ordinal per
// injected point. The seed honors AERIE_SEED so a failing sweep replays
// exactly; every failure report below names the seed it ran under.
func TestSweepQuick(t *testing.T) {
	seed := linearize.Seed(1)
	t.Logf("sweep seed %d (replay with AERIE_SEED=%d)", seed, seed)
	res, err := Sweep(Config{
		Seed:                seed,
		Steps:               10,
		MaxOrdinalsPerPoint: 1,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("seed %d: sweep: %v", seed, err)
	}
	t.Logf("\n%s", res)
	if fails := res.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("seed %d: violation: %s", seed, f)
		}
	}
	if res.FillFiles == 0 {
		t.Fatalf("seed %d: natural fill committed no files", seed)
	}
}

// TestSweepFull is the tier-2 exhaustive run (make tier2-exhaust): denser
// ordinal sampling across every injected point. AERIE_SEED replays a
// specific seed.
func TestSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 sweep; run via make tier2-exhaust")
	}
	seed := linearize.Seed(7)
	t.Logf("sweep seed %d (replay with AERIE_SEED=%d)", seed, seed)
	res, err := Sweep(Config{
		Seed:                seed,
		Steps:               24,
		MaxOrdinalsPerPoint: 6,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("seed %d: sweep: %v", seed, err)
	}
	t.Logf("\n%s", res)
	if fails := res.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("seed %d: violation: %s", seed, f)
		}
	}
}
