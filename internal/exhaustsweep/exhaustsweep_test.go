package exhaustsweep

import (
	"testing"
)

// TestSweepQuick is the tier-1 smoke: the natural fill plus one ordinal per
// injected point.
func TestSweepQuick(t *testing.T) {
	res, err := Sweep(Config{
		Seed:                1,
		Steps:               10,
		MaxOrdinalsPerPoint: 1,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("\n%s", res)
	if fails := res.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("violation: %s", f)
		}
	}
	if res.FillFiles == 0 {
		t.Fatalf("natural fill committed no files")
	}
}

// TestSweepFull is the tier-2 exhaustive run (make tier2-exhaust): denser
// ordinal sampling across every injected point.
func TestSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 sweep; run via make tier2-exhaust")
	}
	res, err := Sweep(Config{
		Seed:                7,
		Steps:               24,
		MaxOrdinalsPerPoint: 6,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("\n%s", res)
	if fails := res.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("violation: %s", f)
		}
	}
}
