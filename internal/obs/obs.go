// Package obs is the zero-dependency observability layer: named counters,
// latency histograms with fixed log-spaced buckets, and a bounded per-op
// trace ring, all hanging off a Sink that every layer of the stack shares.
//
// The design constraint is that observability must cost ~nothing when it is
// off. Every metric type is a pointer whose methods are nil-safe, and layers
// resolve their metrics once at construction time:
//
//	flushes := sink.Counter("scm.lines_flushed") // nil sink -> nil counter
//	...
//	flushes.Add(n) // nil receiver -> single predictable branch, no work
//
// so the disabled hot path pays one nil check per metric touch and never a
// map lookup, allocation, or time.Now call. The enabled hot path is
// lock-free: counters and histogram buckets are atomics; only the trace
// ring takes a mutex, and it is bounded so tracing a long run cannot grow
// memory without limit.
//
// Snapshots are deterministic: metrics come out as slices sorted by name
// and serialize through structs (never maps), so two snapshots of the same
// state always render byte-identically — a requirement for the golden-file
// tests and for reviewable breakdown diffs.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically adjusted atomic counter. A nil *Counter is a
// valid no-op receiver for every method.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value, 0 for a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// histBuckets is the fixed bucket count: bucket i holds observations whose
// bit length is i, i.e. values in [2^(i-1), 2^i). Values are nanoseconds,
// so 64 power-of-two buckets span sub-ns to ~292 years with zero
// configuration and an indexing cost of one bits.Len64.
const histBuckets = 64

// Histogram is a lock-free latency histogram with log-spaced buckets.
// A nil *Histogram is a valid no-op receiver for every method.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records a single value (nanoseconds). Negative values clamp to 0.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// StartTimer returns a wall-clock reading when the histogram is live and
// the zero Time otherwise, so the disabled path never calls time.Now.
// Pair with ObserveSince.
func (h *Histogram) StartTimer() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since t0. It is a no-op on a nil
// histogram or a zero t0 (the StartTimer disabled sentinel).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations, 0 for nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in nanoseconds, 0 for nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// population. The estimate is the upper bound of the bucket containing the
// target rank, so it over-reports by at most 2x — adequate for spotting
// regressions, not for sub-bucket precision.
func (h *Histogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			hi := (uint64(1) << uint(i)) - 1
			if mx := h.max.Load(); uint64(mx) < hi {
				return mx
			}
			return int64(hi)
		}
	}
	return h.max.Load()
}

// Span is one completed trace-ring entry. Start is nanoseconds since the
// sink's epoch so spans order totally and serialize compactly.
type Span struct {
	Layer   string `json:"layer"`
	Op      string `json:"op"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// DefaultRingSize bounds the trace ring when no explicit size is given.
const DefaultRingSize = 512

// Sink is the registry all layers share. A nil *Sink is valid: Counter and
// Histogram return nil metrics (which are themselves no-ops) and Trace does
// nothing, so callers never need to guard sink access.
type Sink struct {
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	ring     []Span
	ringNext int
	ringLen  int
}

// New returns a live sink with the default trace-ring size.
func New() *Sink { return NewWithRing(DefaultRingSize) }

// NewWithRing returns a live sink whose trace ring holds up to ringSize
// spans (0 disables tracing entirely).
func NewWithRing(ringSize int) *Sink {
	if ringSize < 0 {
		ringSize = 0
	}
	return &Sink{
		epoch:    time.Now(),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		ring:     make([]Span, ringSize),
	}
}

// Counter resolves (creating on first use) the named counter. Nil-safe:
// a nil sink yields a nil counter.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Histogram resolves (creating on first use) the named histogram. Nil-safe:
// a nil sink yields a nil histogram.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Trace appends a completed span to the bounded ring, evicting the oldest
// entry when full. Nil-safe; a zero start (disabled-timer sentinel) is
// dropped.
func (s *Sink) Trace(layer, op string, start time.Time, d time.Duration) {
	if s == nil || start.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return
	}
	s.ring[s.ringNext] = Span{
		Layer:   layer,
		Op:      op,
		StartNS: start.Sub(s.epoch).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
	}
	s.ringNext = (s.ringNext + 1) % len(s.ring)
	if s.ringLen < len(s.ring) {
		s.ringLen++
	}
}

// Reset zeroes every registered metric in place and empties the trace ring.
// Resolved *Counter/*Histogram pointers held by layers stay valid — this is
// how the breakdown harness discards setup-phase noise without re-wiring
// the whole stack.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.reset()
	}
	for _, h := range s.hists {
		h.reset()
	}
	s.ringNext = 0
	s.ringLen = 0
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a snapshot. Latencies are nanoseconds;
// quantiles are bucket-upper-bound estimates.
type HistogramSnap struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	SumNS  int64  `json:"sum_ns"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P95NS  int64  `json:"p95_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a sink, sorted by metric name (spans
// in ring order, oldest first) so rendering is deterministic.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Histograms []HistogramSnap `json:"histograms"`
	Spans      []Span          `json:"spans,omitempty"`
}

// Snapshot captures the sink. A nil sink yields an empty snapshot.
func (s *Sink) Snapshot() Snapshot {
	var snap Snapshot
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.Counters = make([]CounterSnap, 0, len(s.counters))
	for name, c := range s.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Load()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	snap.Histograms = make([]HistogramSnap, 0, len(s.hists))
	for name, h := range s.hists {
		hs := HistogramSnap{
			Name:  name,
			Count: h.Count(),
			SumNS: h.Sum(),
			P50NS: h.quantile(0.50),
			P95NS: h.quantile(0.95),
			P99NS: h.quantile(0.99),
			MaxNS: h.max.Load(),
		}
		if hs.Count > 0 {
			hs.MeanNS = hs.SumNS / hs.Count
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	if s.ringLen > 0 {
		snap.Spans = make([]Span, 0, s.ringLen)
		// Oldest-first: the ring's next slot is the oldest once it has
		// wrapped.
		start := 0
		if s.ringLen == len(s.ring) {
			start = s.ringNext
		}
		for i := 0; i < s.ringLen; i++ {
			snap.Spans = append(snap.Spans, s.ring[(start+i)%len(s.ring)])
		}
	}
	return snap
}

// Counter returns the value of the named counter in the snapshot (0 if
// absent).
func (snap Snapshot) Counter(name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Histogram returns the named histogram snapshot and whether it exists.
func (snap Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// HistSum returns the sum in nanoseconds of the named histogram (0 if
// absent).
func (snap Snapshot) HistSum(name string) int64 {
	h, _ := snap.Histogram(name)
	return h.SumNS
}

// WriteText renders the snapshot as aligned human-readable tables.
func (snap Snapshot) WriteText(w io.Writer) error {
	if len(snap.Counters) > 0 {
		nameW := len("counter")
		for _, c := range snap.Counters {
			if len(c.Name) > nameW {
				nameW = len(c.Name)
			}
		}
		fmt.Fprintf(w, "%-*s  %12s\n", nameW, "counter", "value")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "%-*s  %12d\n", nameW, c.Name, c.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		if len(snap.Counters) > 0 {
			fmt.Fprintln(w)
		}
		nameW := len("histogram")
		for _, h := range snap.Histograms {
			if len(h.Name) > nameW {
				nameW = len(h.Name)
			}
		}
		fmt.Fprintf(w, "%-*s  %10s  %12s  %10s  %10s  %10s  %10s\n",
			nameW, "histogram", "count", "sum", "mean", "p50", "p95", "max")
		for _, h := range snap.Histograms {
			fmt.Fprintf(w, "%-*s  %10d  %12s  %10s  %10s  %10s  %10s\n",
				nameW, h.Name, h.Count,
				FormatNS(h.SumNS), FormatNS(h.MeanNS),
				FormatNS(h.P50NS), FormatNS(h.P95NS), FormatNS(h.MaxNS))
		}
	}
	if len(snap.Spans) > 0 {
		fmt.Fprintf(w, "\ntrace (%d spans, oldest first)\n", len(snap.Spans))
		for _, sp := range snap.Spans {
			fmt.Fprintf(w, "  %12d  %-10s %-12s %s\n", sp.StartNS, sp.Layer, sp.Op, FormatNS(sp.DurNS))
		}
	}
	return nil
}

// FormatNS renders nanoseconds with a human-scale unit and fixed precision
// so text tables stay aligned.
func FormatNS(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/float64(time.Second))
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.2fµs", float64(ns)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
