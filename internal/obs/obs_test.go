package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// A nil sink and nil metrics must be safe for every operation — this is the
// contract the whole stack relies on when observability is disabled.
func TestNilSafety(t *testing.T) {
	var s *Sink
	c := s.Counter("x")
	h := s.Histogram("y")
	if c != nil || h != nil {
		t.Fatalf("nil sink must resolve nil metrics, got %v %v", c, h)
	}
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	h.Observe(100)
	t0 := h.StartTimer()
	if !t0.IsZero() {
		t.Fatalf("nil histogram StartTimer must return zero time")
	}
	h.ObserveSince(t0)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram must stay empty")
	}
	s.Trace("l", "op", time.Now(), time.Millisecond)
	s.Reset()
	snap := s.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil sink snapshot must be empty: %+v", snap)
	}
}

func TestCounterAndResolveIdentity(t *testing.T) {
	s := New()
	a := s.Counter("c")
	b := s.Counter("c")
	if a != b {
		t.Fatalf("same name must resolve the same counter")
	}
	a.Add(3)
	b.Inc()
	if got := s.Counter("c").Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	s := New()
	h := s.Histogram("h")
	// Exercise bucket boundaries: 0, 1, powers of two and their neighbors.
	vals := []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 20, -5}
	var wantSum int64
	for _, v := range vals {
		h.Observe(v)
		if v > 0 {
			wantSum += v
		}
	}
	if got := h.Count(); got != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d (negatives clamp to 0)", got, wantSum)
	}
	snap := s.Snapshot()
	hs, ok := snap.Histogram("h")
	if !ok {
		t.Fatalf("histogram missing from snapshot")
	}
	if hs.MaxNS != 1<<20 {
		t.Fatalf("max = %d, want %d", hs.MaxNS, 1<<20)
	}
	// p50 of 11 values: rank 5 lands among the small values; the estimate
	// is a bucket upper bound so it must be < 8.
	if hs.P50NS >= 8 {
		t.Fatalf("p50 = %d, want < 8", hs.P50NS)
	}
	// p99 of 11 values targets rank 10 (the 1024 observation): the
	// bucket-upper-bound estimate must cover it without reaching max.
	if hs.P99NS < 1024 || hs.P99NS > 2047 {
		t.Fatalf("p99 = %d, want in [1024,2047]", hs.P99NS)
	}
	if got := h.quantile(1.0); got != 1<<20 {
		t.Fatalf("p100 = %d, want max %d", got, 1<<20)
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := New()
	h := s.Histogram("h")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	q50, q95, q99 := h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
	if !(q50 <= q95 && q95 <= q99) {
		t.Fatalf("quantiles not monotone: %d %d %d", q50, q95, q99)
	}
	// The true p50 is 500_000; a bucket-upper-bound estimate may over-report
	// by at most 2x and never under-report below the bucket's lower bound.
	if q50 < 250_000 || q50 > 1_000_000 {
		t.Fatalf("p50 estimate %d outside [250000,1000000]", q50)
	}
}

func TestTraceRingBounded(t *testing.T) {
	s := NewWithRing(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		s.Trace("pxfs", "op", base.Add(time.Duration(i)*time.Millisecond), time.Microsecond)
	}
	snap := s.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("ring must cap at 4 spans, got %d", len(snap.Spans))
	}
	for i := 1; i < len(snap.Spans); i++ {
		if snap.Spans[i].StartNS < snap.Spans[i-1].StartNS {
			t.Fatalf("spans not oldest-first: %+v", snap.Spans)
		}
	}
	// Zero ring disables tracing.
	z := NewWithRing(0)
	z.Trace("l", "op", time.Now(), time.Second)
	if n := len(z.Snapshot().Spans); n != 0 {
		t.Fatalf("zero ring recorded %d spans", n)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := New()
	s.Counter("b.two").Add(2)
	s.Counter("a.one").Add(1)
	s.Counter("c.three").Add(3)
	s.Histogram("z.h").Observe(10)
	s.Histogram("a.h").Observe(20)
	var buf1, buf2 bytes.Buffer
	for _, buf := range []*bytes.Buffer{&buf1, &buf2} {
		enc, err := json.Marshal(s.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(enc)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", buf1.String(), buf2.String())
	}
	snap := s.Snapshot()
	if snap.Counters[0].Name != "a.one" || snap.Counters[2].Name != "c.three" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Histograms[0].Name != "a.h" {
		t.Fatalf("histograms not sorted: %+v", snap.Histograms)
	}
}

func TestReset(t *testing.T) {
	s := New()
	c := s.Counter("c")
	h := s.Histogram("h")
	c.Add(10)
	h.Observe(100)
	s.Trace("l", "op", time.Now(), time.Second)
	s.Reset()
	// Resolved pointers must stay live after Reset.
	if c != s.Counter("c") {
		t.Fatalf("Reset must not replace counters")
	}
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset must zero metrics")
	}
	if n := len(s.Snapshot().Spans); n != 0 {
		t.Fatalf("Reset must empty the ring, got %d spans", n)
	}
	c.Add(1)
	if s.Counter("c").Load() != 1 {
		t.Fatalf("counter dead after Reset")
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Counter("shared")
			h := s.Histogram("lat")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				if i%100 == 0 {
					s.Trace("t", "op", time.Now(), time.Duration(i))
					_ = s.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := s.Histogram("lat").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := New()
	s.Counter("c").Add(7)
	s.Histogram("h").Observe(9)
	snap := s.Snapshot()
	if snap.Counter("c") != 7 || snap.Counter("missing") != 0 {
		t.Fatalf("Counter helper wrong")
	}
	if snap.HistSum("h") != 9 || snap.HistSum("missing") != 0 {
		t.Fatalf("HistSum helper wrong")
	}
}

func TestWriteText(t *testing.T) {
	s := New()
	s.Counter("scm.fences").Add(3)
	s.Histogram("pxfs.op").Observe(1500)
	var buf bytes.Buffer
	if err := s.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scm.fences", "pxfs.op", "counter", "histogram"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkDisabled measures the nil-sink hot path: this is what every
// layer pays per metric touch when observability is off.
func BenchmarkDisabled(b *testing.B) {
	var s *Sink
	c := s.Counter("c")
	h := s.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		t0 := h.StartTimer()
		h.ObserveSince(t0)
	}
}

// BenchmarkEnabled measures the live hot path for comparison.
func BenchmarkEnabled(b *testing.B) {
	s := New()
	c := s.Counter("c")
	h := s.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		t0 := h.StartTimer()
		h.ObserveSince(t0)
	}
}
