package sobj

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/scm"
)

// env bundles a tracked arena with a buddy allocator, as the TFS would see
// them.
type env struct {
	mem *scm.Memory
	bd  *alloc.Buddy
}

func newEnv(t *testing.T, heap uint64) *env {
	t.Helper()
	mem := scm.New(scm.Config{Size: heap + 1<<20, TrackPersistence: true})
	bd, err := alloc.Format(mem, scm.PageSize, 1<<20, heap)
	if err != nil {
		t.Fatal(err)
	}
	return &env{mem: mem, bd: bd}
}

func mkOID(t *testing.T, i int) OID {
	t.Helper()
	oid, err := MakeOID(uint64(i)*64+1<<30, TypeMFile)
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestCollectionInsertLookupRemove(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, err := CreateCollection(e.mem, e.bd, 0644)
	if err != nil {
		t.Fatal(err)
	}
	val := mkOID(t, 1)
	if err := c.Insert(e.bd, []byte("alpha"), val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if got != val {
		t.Fatalf("lookup = %v, want %v", got, val)
	}
	if _, err := c.Lookup([]byte("beta")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := c.Insert(e.bd, []byte("alpha"), val); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := c.Remove(e.bd, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after remove: %v", err)
	}
	if err := c.Remove(e.bd, []byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	// Re-insert after tombstone.
	if err := c.Insert(e.bd, []byte("alpha"), mkOID(t, 2)); err != nil {
		t.Fatalf("re-insert after tombstone: %v", err)
	}
}

func TestCollectionGrowsThroughRehash(t *testing.T) {
	e := newEnv(t, 32<<20)
	c, err := CreateCollection(e.mem, e.bd, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := c.Insert(e.bd, []byte(fmt.Sprintf("key-%04d", i)), mkOID(t, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	count, _ := c.Count()
	if count != n {
		t.Fatalf("count = %d", count)
	}
	for i := 0; i < n; i++ {
		got, err := c.Lookup([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("lookup %d after rehash: %v", i, err)
		}
		if got != mkOID(t, i) {
			t.Fatalf("lookup %d = %v", i, got)
		}
	}
}

func TestCollectionIterateSeesAllLive(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	want := map[string]OID{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		v := mkOID(t, i)
		_ = c.Insert(e.bd, []byte(k), v)
		want[k] = v
	}
	for i := 0; i < 100; i += 2 {
		_ = c.Remove(e.bd, []byte(fmt.Sprintf("k%d", i)))
		delete(want, fmt.Sprintf("k%d", i))
	}
	got := map[string]OID{}
	if err := c.Iterate(func(key []byte, val OID) error {
		got[string(key)] = val
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterate saw %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCollectionTombstoneGC(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	for i := 0; i < 60; i++ {
		_ = c.Insert(e.bd, []byte(fmt.Sprintf("k%d", i)), mkOID(t, i))
	}
	for i := 0; i < 50; i++ {
		_ = c.Remove(e.bd, []byte(fmt.Sprintf("k%d", i)))
	}
	// GC triggers whenever tombstones exceed max(16, count/2), so the
	// steady-state tombstone count stays at or below the threshold.
	tombs, _ := c.Tombstones()
	if tombs > 16 {
		t.Fatalf("tombstones = %d, GC never triggered", tombs)
	}
	for i := 50; i < 60; i++ {
		if _, err := c.Lookup([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("live key lost in GC: %v", err)
		}
	}
}

func TestCollectionKeyTooLarge(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	if err := c.Insert(e.bd, make([]byte, MaxKeyLen+1), 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized key: %v", err)
	}
}

func TestCollectionDestroyReturnsStorage(t *testing.T) {
	e := newEnv(t, 8<<20)
	before := e.bd.FreeBytes()
	c, _ := CreateCollection(e.mem, e.bd, 0)
	for i := 0; i < 500; i++ {
		_ = c.Insert(e.bd, []byte(fmt.Sprintf("key-%d", i)), mkOID(t, i))
	}
	if err := c.Destroy(e.bd); err != nil {
		t.Fatal(err)
	}
	if e.bd.FreeBytes() != before {
		t.Fatalf("leak: free %d != %d", e.bd.FreeBytes(), before)
	}
}

func TestOpenCollectionValidates(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	if _, err := OpenCollection(e.mem, c.OID()); err != nil {
		t.Fatal(err)
	}
	// Wrong type bits.
	bad, _ := MakeOID(c.OID().Addr(), TypeMFile)
	if _, err := OpenCollection(e.mem, bad); !errors.Is(err, ErrBadObject) {
		t.Fatalf("want ErrBadObject, got %v", err)
	}
	// Garbage address.
	garbage, _ := MakeOID(1<<20+4096, TypeCollection)
	if _, err := OpenCollection(e.mem, garbage); err == nil {
		t.Fatal("open of garbage should fail")
	}
}

func TestCollectionHeaderFields(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0755)
	h, err := ReadHeader(e.mem, c.OID())
	if err != nil {
		t.Fatal(err)
	}
	if h.Perm != 0755 || h.Type != TypeCollection || h.Refcnt != 0 {
		t.Fatalf("header = %+v", h)
	}
	if err := SetRefcnt(e.mem, c.OID(), 2); err != nil {
		t.Fatal(err)
	}
	if err := SetParent(e.mem, c.OID(), mkOID(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := SetPerm(e.mem, c.OID(), 0600); err != nil {
		t.Fatal(err)
	}
	h, _ = ReadHeader(e.mem, c.OID())
	if h.Refcnt != 2 || h.Parent != mkOID(t, 9) || h.Perm != 0600 {
		t.Fatalf("updated header = %+v", h)
	}
}

func TestBucketLockStableUnderSameTable(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	l1, err := c.BucketLock([]byte("some-key"))
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := c.BucketLock([]byte("some-key"))
	if l1 != l2 {
		t.Fatal("bucket lock not deterministic")
	}
	if OID(l1).Type() != TypeBucket {
		t.Fatalf("bucket lock type = %v", OID(l1).Type())
	}
}

// Property: a collection behaves exactly like map[string]uint64 under random
// insert/remove/lookup sequences (crossing rehashes and tombstone GC), and
// survives a crash+reopen at the end with all completed operations intact.
func TestQuickCollectionMatchesMapModel(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newEnv(t, 32<<20)
			c, err := CreateCollection(e.mem, e.bd, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			model := map[string]OID{}
			keys := make([]string, 0, 256)
			for i := 0; i < 230; i++ {
				keys = append(keys, fmt.Sprintf("key-%d-%d", seed, i))
			}
			for step := 0; step < 3000; step++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(3) {
				case 0: // insert
					v := mkOID(t, rng.Intn(1<<20))
					err := c.Insert(e.bd, []byte(k), v)
					if _, exists := model[k]; exists {
						if !errors.Is(err, ErrExists) {
							t.Fatalf("step %d: duplicate insert err = %v", step, err)
						}
					} else {
						if err != nil {
							t.Fatalf("step %d: insert: %v", step, err)
						}
						model[k] = v
					}
				case 1: // remove
					err := c.Remove(e.bd, []byte(k))
					if _, exists := model[k]; exists {
						if err != nil {
							t.Fatalf("step %d: remove: %v", step, err)
						}
						delete(model, k)
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: remove missing err = %v", step, err)
					}
				case 2: // lookup
					v, err := c.Lookup([]byte(k))
					if want, exists := model[k]; exists {
						if err != nil || v != want {
							t.Fatalf("step %d: lookup = %v,%v want %v", step, v, err, want)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: lookup missing err = %v", step, err)
					}
				}
			}
			// Crash and reopen: all completed operations must persist.
			e.mem.Crash()
			c2, err := OpenCollection(e.mem, c.OID())
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			got := map[string]OID{}
			if err := c2.Iterate(func(key []byte, val OID) error {
				got[string(key)] = val
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) {
				t.Fatalf("after crash: %d entries, want %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("after crash: %s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}
