// Package sobj implements Aerie's file-system storage objects (§5.3): 64-bit
// object IDs that encode type and location, collections (associative
// key-value objects used to build directories and namespaces), and memory
// files (mFiles, radix trees of extents used to build data files). Objects
// live entirely in SCM; untrusted clients read them directly through their
// protected mappings, while mutations run in the trusted service under the
// redo journal.
package sobj

import (
	"errors"
	"fmt"
)

// Type is a storage-object type code, encoded in the six least-significant
// bits of an OID (§5.3.1: 6 bits of type, 58 bits of address, minimum
// object size 64 bytes).
type Type uint8

// Object types. The paper reserves 64 codes; these are the ones Aerie's two
// file systems use.
const (
	TypeNone       Type = 0
	TypeCollection Type = 1
	TypeMFile      Type = 2
	// TypeBucket is not a stored object: it names the lock-ID space for
	// hash-table extents of a collection (FlatFS's fine-grained locks).
	TypeBucket Type = 3

	typeMax = 63
)

func (t Type) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeCollection:
		return "collection"
	case TypeMFile:
		return "mfile"
	case TypeBucket:
		return "bucket"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// OID is a storage-object ID. The encoding makes locating an object free:
// the address of its head extent is the OID with the type bits cleared, so
// no lookup structure is needed (at the cost of no relocation, which the
// paper found acceptable).
type OID uint64

// ErrBadOID reports a malformed OID.
var ErrBadOID = errors.New("sobj: bad OID")

// MakeOID builds an OID for an object whose head extent is at addr.
// addr must be 64-byte aligned (the minimum object size).
func MakeOID(addr uint64, typ Type) (OID, error) {
	if addr%64 != 0 {
		return 0, fmt.Errorf("%w: address %#x not 64-byte aligned", ErrBadOID, addr)
	}
	if typ > typeMax {
		return 0, fmt.Errorf("%w: type %d", ErrBadOID, typ)
	}
	return OID(addr | uint64(typ)), nil
}

// Addr returns the address of the object's head extent.
func (o OID) Addr() uint64 { return uint64(o) &^ 63 }

// Type returns the object's type code.
func (o OID) Type() Type { return Type(uint64(o) & 63) }

// Lock returns the 64-bit lock-service ID for this object. Objects are
// locked by their OID.
func (o OID) Lock() uint64 { return uint64(o) }

func (o OID) String() string { return fmt.Sprintf("%v@%#x", o.Type(), o.Addr()) }
