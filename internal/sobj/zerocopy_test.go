package sobj

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/aerie-fs/aerie/internal/scm"
)

// noSlice hides the arena's Slice method so AsSlicer fails, forcing the
// object layer down the copying read path over the same bytes.
type noSlice struct{ inner scm.Space }

func (n noSlice) Read(addr uint64, p []byte) error        { return n.inner.Read(addr, p) }
func (n noSlice) Write(addr uint64, p []byte) error       { return n.inner.Write(addr, p) }
func (n noSlice) WriteStream(addr uint64, p []byte) error { return n.inner.WriteStream(addr, p) }
func (n noSlice) Flush(addr uint64, nb int) error         { return n.inner.Flush(addr, nb) }
func (n noSlice) BFlush()                                 { n.inner.BFlush() }
func (n noSlice) Fence()                                  { n.inner.Fence() }
func (n noSlice) Atomic64(addr uint64, v uint64) error    { return n.inner.Atomic64(addr, v) }
func (n noSlice) Size() uint64                            { return n.inner.Size() }

// TestQuickCollectionSliceReadEquivalence drives random insert/remove
// sequences with adversarial cache eviction on a persistence-tracked arena
// and checks that a zero-copy (Slicer) view and a copying view of the same
// collection always agree on Lookup and Iterate.
func TestQuickCollectionSliceReadEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, 8<<20)
		c, err := CreateCollection(e.mem, e.bd, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if c.sl == nil {
			t.Fatal("collection over *scm.Memory should slice")
		}
		model := make(map[string]OID)
		keys := make([]string, 80)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d-%d", seed&0xff, i)
		}
		for step := 0; step < 150; step++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0, 1: // insert skews the table toward growth/rehash
				val := mkOID(t, 1+rng.Intn(1<<20))
				err := c.Insert(e.bd, []byte(k), val)
				if _, dup := model[k]; dup {
					if !errors.Is(err, ErrExists) {
						t.Fatalf("seed %d: duplicate insert of %q: %v", seed, k, err)
					}
				} else if err != nil {
					t.Fatalf("seed %d: insert %q: %v", seed, k, err)
				} else {
					model[k] = val
				}
			case 2:
				err := c.Remove(e.bd, []byte(k))
				if _, ok := model[k]; ok {
					if err != nil {
						t.Fatalf("seed %d: remove %q: %v", seed, k, err)
					}
					delete(model, k)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d: remove missing %q: %v", seed, k, err)
				}
			case 3:
				e.mem.EvictRandom(rng, 0.3)
			}
			if step%25 != 0 && step != 149 {
				continue
			}
			// Fresh copying view per check, as a per-operation open would
			// be (the cached table header does not span instances).
			cc, err := OpenCollection(noSlice{e.mem}, c.OID())
			if err != nil {
				t.Fatal(err)
			}
			if cc.sl != nil {
				t.Fatal("noSlice view should not slice")
			}
			for _, k := range keys {
				a, errA := c.Lookup([]byte(k))
				b, errB := cc.Lookup([]byte(k))
				if a != b || (errA == nil) != (errB == nil) {
					t.Logf("seed %d step %d: Lookup(%q) slice=(%v,%v) copy=(%v,%v)",
						seed, step, k, a, errA, b, errB)
					return false
				}
				if errA != nil && !errors.Is(errA, ErrNotFound) {
					t.Fatalf("seed %d: Lookup(%q): %v", seed, k, errA)
				}
				want, ok := model[k]
				if ok != (errA == nil) || ok && a != want {
					t.Logf("seed %d step %d: Lookup(%q)=(%v,%v), model %v %v",
						seed, step, k, a, errA, want, ok)
					return false
				}
			}
			got := make(map[string]OID)
			if err := c.Iterate(func(key []byte, val OID) error {
				got[string(key)] = val
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			gotCopy := make(map[string]OID)
			if err := cc.Iterate(func(key []byte, val OID) error {
				gotCopy[string(key)] = val
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) || len(gotCopy) != len(model) {
				t.Logf("seed %d step %d: iterate sizes slice=%d copy=%d model=%d",
					seed, step, len(got), len(gotCopy), len(model))
				return false
			}
			for k, v := range model {
				if got[k] != v || gotCopy[k] != v {
					t.Logf("seed %d step %d: iterate %q slice=%v copy=%v want %v",
						seed, step, k, got[k], gotCopy[k], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMFileSliceReadEquivalence drives random writes and adversarial
// evictions over a radix mFile with holes and checks that zero-copy and
// copying ReadAt agree with each other and with an in-memory model,
// including zero-fill of unallocated blocks.
func TestQuickMFileSliceReadEquivalence(t *testing.T) {
	const (
		blockSize = 4096
		nblocks   = 16
		size      = nblocks * blockSize
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, 16<<20)
		m, err := CreateMFile(e.mem, e.bd, 0644, DefaultExtentLog)
		if err != nil {
			t.Fatal(err)
		}
		// Leave two holes so reads exercise zero-fill on both paths.
		holes := map[uint64]bool{5: true, 11: true}
		for blk := uint64(0); blk < nblocks; blk++ {
			if holes[blk] {
				continue
			}
			attachRange(t, e, m, blk*blockSize, blockSize)
		}
		if err := m.SetSize(size); err != nil {
			t.Fatal(err)
		}
		mc, err := OpenMFile(noSlice{e.mem}, m.OID())
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, size)
		for step := 0; step < 80; step++ {
			switch rng.Intn(3) {
			case 0, 1: // write within one allocated block
				blk := uint64(rng.Intn(nblocks))
				if holes[blk] {
					continue
				}
				off := blk*blockSize + uint64(rng.Intn(blockSize))
				n := 1 + rng.Intn(int((blk+1)*blockSize-off))
				p := make([]byte, n)
				rng.Read(p)
				if _, err := m.WriteAt(p, off); err != nil {
					t.Fatalf("seed %d: WriteAt: %v", seed, err)
				}
				copy(model[off:], p)
			case 2:
				e.mem.EvictRandom(rng, 0.3)
			}
			off := uint64(rng.Intn(size))
			n := 1 + rng.Intn(size-int(off))
			a := make([]byte, n)
			b := make([]byte, n)
			if _, err := m.ReadAt(a, off); err != nil {
				t.Fatalf("seed %d: slice ReadAt: %v", seed, err)
			}
			if _, err := mc.ReadAt(b, off); err != nil {
				t.Fatalf("seed %d: copy ReadAt: %v", seed, err)
			}
			if !bytes.Equal(a, b) {
				t.Logf("seed %d step %d: slice != copy at %#x+%d", seed, step, off, n)
				return false
			}
			if !bytes.Equal(a, model[off:off+uint64(n)]) {
				t.Logf("seed %d step %d: read != model at %#x+%d", seed, step, off, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestMFileSingleSliceReadEquivalence covers the single-extent fast path.
func TestMFileSingleSliceReadEquivalence(t *testing.T) {
	e := newEnv(t, 8<<20)
	m, err := CreateMFileSingle(e.mem, e.bd, 0644, 8192)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("abcdefgh"), 512)
	if _, err := m.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSize(uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	mc, err := OpenMFile(noSlice{e.mem}, m.OID())
	if err != nil {
		t.Fatal(err)
	}
	a := make([]byte, len(data))
	b := make([]byte, len(data))
	if _, err := m.ReadAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, data) || !bytes.Equal(b, data) {
		t.Fatal("single-extent read mismatch")
	}
}

// TestCollectionTableCacheInvalidation checks that the cached table header
// is refreshed after a rehash (same instance) and via InvalidateTable
// (cross-instance mutation).
func TestCollectionTableCacheInvalidation(t *testing.T) {
	e := newEnv(t, 8<<20)
	c, err := CreateCollection(e.mem, e.bd, 0644)
	if err != nil {
		t.Fatal(err)
	}
	// Enough inserts to force at least one rehash through this instance.
	for i := 0; i < 500; i++ {
		if err := c.Insert(e.bd, []byte(fmt.Sprintf("k%04d", i)), mkOID(t, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := c.Lookup([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("lookup after rehash: %v", err)
		}
	}
	// A second instance mutates (and may rehash); the first instance sees
	// the new table after InvalidateTable.
	c2, err := OpenCollection(e.mem, c.OID())
	if err != nil {
		t.Fatal(err)
	}
	for i := 500; i < 2000; i++ {
		if err := c2.Insert(e.bd, []byte(fmt.Sprintf("k%04d", i)), mkOID(t, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateTable()
	for i := 0; i < 2000; i++ {
		if _, err := c.Lookup([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("lookup after cross-instance rehash: %v", err)
		}
	}
}
