package sobj

import (
	"testing"
	"testing/quick"
)

func TestOIDRoundTrip(t *testing.T) {
	oid, err := MakeOID(0x1000, TypeCollection)
	if err != nil {
		t.Fatal(err)
	}
	if oid.Addr() != 0x1000 || oid.Type() != TypeCollection {
		t.Fatalf("addr=%#x type=%v", oid.Addr(), oid.Type())
	}
	if oid.Lock() != uint64(oid) {
		t.Fatal("lock id should equal the OID")
	}
}

func TestOIDRejectsMisaligned(t *testing.T) {
	if _, err := MakeOID(0x1001, TypeMFile); err == nil {
		t.Fatal("want error for misaligned address")
	}
	if _, err := MakeOID(0x1000, Type(64)); err == nil {
		t.Fatal("want error for out-of-range type")
	}
}

// Property: encode/decode round-trips for all 64-byte-aligned addresses in
// the 58-bit space and all valid types.
func TestQuickOIDRoundTrip(t *testing.T) {
	f := func(rawAddr uint64, rawType uint8) bool {
		addr := rawAddr &^ 63 // align
		typ := Type(rawType % 64)
		oid, err := MakeOID(addr, typ)
		if err != nil {
			return false
		}
		return oid.Addr() == addr && oid.Type() == typ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
