package sobj

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/aerie-fs/aerie/internal/alloc"
	"github.com/aerie-fs/aerie/internal/scm"
)

// attachRange attaches fresh extents covering [off, off+n) the way the TFS
// does for a client append.
func attachRange(t *testing.T, e *env, m *MFile, off, n uint64) {
	t.Helper()
	bs, err := m.BlockSize()
	if err != nil {
		t.Fatal(err)
	}
	for blk := off / bs; blk <= (off+n-1)/bs; blk++ {
		if ext, _ := m.lookupBlock(blk); ext != 0 {
			continue
		}
		ext, err := e.bd.Alloc(bs)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh extents carry stale bytes; zero before exposing, as the
		// FS layers do for partially covered blocks.
		if err := scm.Zero(e.mem, ext, int(bs)); err != nil {
			t.Fatal(err)
		}
		if err := e.mem.Flush(ext, int(bs)); err != nil {
			t.Fatal(err)
		}
		if err := m.AttachExtent(e.bd, blk, ext); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMFileWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, err := CreateMFile(e.mem, e.bd, 0644, DefaultExtentLog)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB
	attachRange(t, e, m, 0, uint64(len(data)))
	if _, err := m.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSize(uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := m.ReadAt(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, mismatch=%v", n, !bytes.Equal(got, data))
	}
}

func TestMFileUnalignedWritesAcrossBlocks(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	attachRange(t, e, m, 0, 3*4096)
	_ = m.SetSize(3 * 4096)
	payload := []byte("spans-a-block-boundary")
	off := uint64(4096 - 10)
	if _, err := m.WriteAt(payload, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := m.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestMFileHolesReadZero(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	// Attach only block 2; size covers blocks 0..2.
	ext, _ := e.bd.Alloc(4096)
	if err := m.AttachExtent(e.bd, 2, ext); err != nil {
		t.Fatal(err)
	}
	_ = m.SetSize(3 * 4096)
	if _, err := m.WriteAt([]byte("tail"), 2*4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
}

func TestMFileWriteToHoleFails(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	_ = m.SetSize(4096)
	if _, err := m.WriteAt([]byte("x"), 0); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("write to hole: %v", err)
	}
}

func TestMFileReadPastEOF(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	attachRange(t, e, m, 0, 100)
	_ = m.SetSize(100)
	buf := make([]byte, 200)
	n, err := m.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("read %d, want 100 (clamped at size)", n)
	}
	if n, _ := m.ReadAt(buf, 100); n != 0 {
		t.Fatalf("read at EOF = %d", n)
	}
}

func TestMFileTreeGrowsDeep(t *testing.T) {
	e := newEnv(t, 64<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	// Block 600 forces depth 2 (one level covers 512 blocks).
	ext, _ := e.bd.Alloc(4096)
	if err := m.AttachExtent(e.bd, 600, ext); err != nil {
		t.Fatal(err)
	}
	_ = m.SetSize(601 * 4096)
	if _, err := m.WriteAt([]byte("deep"), 600*4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := m.ReadAt(got, 600*4096); err != nil {
		t.Fatal(err)
	}
	if string(got) != "deep" {
		t.Fatalf("got %q", got)
	}
	// Block 0 still reachable after growth.
	ext0, _ := e.bd.Alloc(4096)
	if err := m.AttachExtent(e.bd, 0, ext0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt([]byte("head"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestMFileAttachExistingFails(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	ext, _ := e.bd.Alloc(4096)
	if err := m.AttachExtent(e.bd, 0, ext); err != nil {
		t.Fatal(err)
	}
	ext2, _ := e.bd.Alloc(4096)
	if err := m.AttachExtent(e.bd, 0, ext2); !errors.Is(err, ErrExists) {
		t.Fatalf("double attach: %v", err)
	}
}

func TestMFileTruncateFreesExtents(t *testing.T) {
	e := newEnv(t, 32<<20)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	attachRange(t, e, m, 0, 100*4096)
	_ = m.SetSize(100 * 4096)
	freeBefore := e.bd.FreeBytes()
	if err := m.Truncate(e.bd, 10*4096); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 10*4096 {
		t.Fatalf("size = %d", size)
	}
	if e.bd.FreeBytes() <= freeBefore {
		t.Fatal("truncate freed nothing")
	}
	// The first 10 blocks still readable and writable.
	if _, err := m.WriteAt([]byte("ok"), 5*4096); err != nil {
		t.Fatal(err)
	}
	// Beyond the cut: hole again.
	if _, err := m.WriteAt([]byte("x"), 50*4096); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("write past truncate: %v", err)
	}
}

func TestMFileDestroyReturnsAllStorage(t *testing.T) {
	e := newEnv(t, 32<<20)
	before := e.bd.FreeBytes()
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	attachRange(t, e, m, 0, 700*4096) // forces depth 2
	_ = m.SetSize(700 * 4096)
	if err := m.Destroy(e.bd); err != nil {
		t.Fatal(err)
	}
	if e.bd.FreeBytes() != before {
		t.Fatalf("leak: %d != %d", e.bd.FreeBytes(), before)
	}
}

func TestMFileSingleExtentMode(t *testing.T) {
	e := newEnv(t, 16<<20)
	m, err := CreateMFileSingle(e.mem, e.bd, 0600, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if single, _ := m.IsSingle(); !single {
		t.Fatal("not single mode")
	}
	data := bytes.Repeat([]byte{0xCD}, 10000)
	if _, err := m.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	_ = m.SetSize(uint64(len(data)))
	got := make([]byte, len(data))
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("single-extent round trip failed")
	}
	// Writes beyond capacity refused.
	if _, err := m.WriteAt([]byte("x"), 16*1024); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("write past cap: %v", err)
	}
	// Replace with a bigger extent, preserving data.
	newExt, _ := e.bd.Alloc(64 * 1024)
	old := make([]byte, len(data))
	_, _ = m.ReadAt(old, 0)
	if err := e.mem.Write(newExt, old); err != nil {
		t.Fatal(err)
	}
	if err := m.ReplaceSingleExtent(e.bd, newExt, 64*1024); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt([]byte("grown"), 32*1024); err != nil {
		t.Fatalf("write into grown extent: %v", err)
	}
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across extent replacement")
	}
}

func TestMFileSingleDestroy(t *testing.T) {
	e := newEnv(t, 16<<20)
	before := e.bd.FreeBytes()
	m, _ := CreateMFileSingle(e.mem, e.bd, 0, 8*1024)
	if err := m.Destroy(e.bd); err != nil {
		t.Fatal(err)
	}
	if e.bd.FreeBytes() != before {
		t.Fatal("single-mode destroy leaked")
	}
}

// Property: an mFile behaves like a sparse []byte under random writes,
// reads, and truncates, and the content survives crash+reopen.
func TestQuickMFileMatchesByteModel(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newEnv(t, 64<<20)
			m, err := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			const maxLen = 256 * 1024
			model := make([]byte, 0, maxLen)
			for step := 0; step < 150; step++ {
				switch rng.Intn(4) {
				case 0, 1: // write (append or overwrite)
					off := uint64(rng.Intn(maxLen / 2))
					n := rng.Intn(20000) + 1
					if int(off)+n > maxLen {
						n = maxLen - int(off)
					}
					data := make([]byte, n)
					rng.Read(data)
					attachRange(t, e, m, off, uint64(n))
					if _, err := m.WriteAt(data, off); err != nil {
						t.Fatalf("step %d write: %v", step, err)
					}
					end := int(off) + n
					for len(model) < end {
						model = append(model, 0)
					}
					copy(model[off:end], data)
					if size, _ := m.Size(); uint64(len(model)) > size {
						_ = m.SetSize(uint64(len(model)))
					}
				case 2: // read & compare
					if len(model) == 0 {
						continue
					}
					off := rng.Intn(len(model))
					n := rng.Intn(len(model)-off) + 1
					got := make([]byte, n)
					rn, err := m.ReadAt(got, uint64(off))
					if err != nil {
						t.Fatalf("step %d read: %v", step, err)
					}
					if !bytes.Equal(got[:rn], model[off:off+rn]) {
						t.Fatalf("step %d: content mismatch at %d+%d", step, off, n)
					}
				case 3: // truncate shorter
					if len(model) == 0 {
						continue
					}
					n := rng.Intn(len(model))
					if err := m.Truncate(e.bd, uint64(n)); err != nil {
						t.Fatalf("step %d truncate: %v", step, err)
					}
					model = model[:n]
				}
			}
			// Crash and verify contents.
			e.mem.Crash()
			m2, err := OpenMFile(e.mem, m.OID())
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(model))
			n, err := m2.ReadAt(got, 0)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) || !bytes.Equal(got, model) {
				t.Fatalf("after crash: read %d/%d, equal=%v", n, len(model), bytes.Equal(got[:n], model[:n]))
			}
		})
	}
}

func BenchmarkMFileWrite4K(b *testing.B) {
	e := benchEnv(b)
	m, _ := CreateMFile(e.mem, e.bd, 0, DefaultExtentLog)
	for blk := uint64(0); blk < 16; blk++ {
		ext, _ := e.bd.Alloc(4096)
		_ = m.AttachExtent(e.bd, blk, ext)
	}
	_ = m.SetSize(16 * 4096)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.WriteAt(buf, uint64(i%16)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectionLookup(b *testing.B) {
	e := benchEnv(b)
	c, _ := CreateCollection(e.mem, e.bd, 0)
	for i := 0; i < 1000; i++ {
		_ = c.Insert(e.bd, []byte(fmt.Sprintf("key-%04d", i)), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Lookup([]byte("key-0500")); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEnv(b *testing.B) *env {
	b.Helper()
	mem := scmNew(64 << 20)
	bd, err := allocFormat(mem)
	if err != nil {
		b.Fatal(err)
	}
	return &env{mem: mem, bd: bd}
}

func scmNew(size uint64) *scm.Memory {
	return scm.New(scm.Config{Size: size + 1<<20})
}

func allocFormat(mem *scm.Memory) (*alloc.Buddy, error) {
	return alloc.Format(mem, scm.PageSize, 1<<20, mem.Size()-(1<<20))
}
