package sobj

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/scm"
)

// Extent describes one storage extent of an object, with the size that was
// requested from the allocator (so frees land in the same buddy class).
type Extent struct {
	Addr uint64
	Size uint64
}

// Extents enumerates every extent of the collection: head, table, and
// overflow extents. The TFS uses the list to journal deterministic frees
// when an object is destroyed.
func (c *Collection) Extents() ([]Extent, error) {
	table, nb, err := c.table()
	if err != nil {
		return nil, err
	}
	tableSize, err := scm.Read64(c.mem, table+offTblAlloc)
	if err != nil {
		return nil, err
	}
	exts := []Extent{
		{Addr: c.oid.Addr(), Size: colHeadSize},
		{Addr: table, Size: tableSize},
	}
	for b := uint32(0); b < nb; b++ {
		n := primaryNode(table + tblHeaderLen + uint64(b)*bucketSize)
		for depth := 0; ; depth++ {
			if depth > maxChainDepth {
				return nil, fmt.Errorf("%w: bucket chain too long", ErrCorrupt)
			}
			next, err := scm.Read64(c.mem, n.addr+n.chainOff)
			if err != nil {
				return nil, err
			}
			if next == 0 {
				break
			}
			exts = append(exts, Extent{Addr: next, Size: ovfSize})
			n = overflowNode(next)
		}
	}
	return exts, nil
}

// Extents enumerates every extent of the mFile: head, radix nodes, and data
// extents (or the single extent in single mode).
func (m *MFile) Extents() ([]Extent, error) {
	exts := []Extent{{Addr: m.oid.Addr(), Size: mfHeadSize}}
	single, err := m.IsSingle()
	if err != nil {
		return nil, err
	}
	head := m.oid.Addr()
	if single {
		data, err := scm.Read64(m.mem, head+offMFSingle)
		if err != nil {
			return nil, err
		}
		cap64, err := scm.Read64(m.mem, head+offMFSingleCap)
		if err != nil {
			return nil, err
		}
		if data != 0 {
			exts = append(exts, Extent{Addr: data, Size: cap64})
		}
		return exts, nil
	}
	bs, err := m.BlockSize()
	if err != nil {
		return nil, err
	}
	root, depth, err := m.rootDepth()
	if err != nil {
		return nil, err
	}
	if root == 0 || depth == 0 {
		return exts, nil
	}
	var walk func(node uint64, level uint) error
	walk = func(node uint64, level uint) error {
		exts = append(exts, Extent{Addr: node, Size: radixNodeSize})
		for slot := uint64(0); slot < radixSlots; slot++ {
			ptr, err := scm.Read64(m.mem, node+slot*8)
			if err != nil {
				return err
			}
			if ptr == 0 {
				continue
			}
			if level == 0 {
				exts = append(exts, Extent{Addr: ptr, Size: bs})
			} else if err := walk(ptr, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, depth-1); err != nil {
		return nil, err
	}
	return exts, nil
}
