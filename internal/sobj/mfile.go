package sobj

import (
	"fmt"

	"github.com/aerie-fs/aerie/internal/scm"
)

// MFile is the memory-file object (§5.3.2): it maps byte offsets to data
// extents through a radix tree of indirect blocks, so clients can locate
// and read/write file data directly in SCM. PXFS files are mFiles with
// page-sized extents; FlatFS files use the single-extent mode, where the
// whole file lives in one extent and get/put is a single memcpy (§6.2).
//
// Head-extent layout after the common header:
//
//	0x20 u64 size — logical file size
//	0x28 u64 root — radix root address (64-byte aligned) packed with the
//	     tree depth in the low 6 bits, so growing the tree publishes a
//	     new root with one atomic 64-bit write
//	0x30 u32 extentLog — log2 of the data-extent size
//	0x34 u32 flags (bit 0: single-extent mode)
//	0x38 u64 single — data extent address (single mode)
//	0x40 u64 singleCap — capacity of the single extent
//
// Radix nodes are one page holding 512 slots; a zero slot is a hole
// (sparse file ranges read as zeros).
const (
	offMFSize      = 0x20
	offMFRoot      = 0x28
	offMFExtentLog = 0x30
	offMFFlags     = 0x34
	offMFSingle    = 0x38
	offMFSingleCap = 0x40

	mfHeadSize = 128

	mfFlagSingle = 1

	radixSlots    = 512
	radixNodeSize = scm.PageSize
	maxDepth      = 4 // 512^4 blocks: ample

	// DefaultExtentLog gives page-sized data extents (PXFS files).
	DefaultExtentLog = 12
)

// MFile provides access to an mFile object. The zero-copy capability of the
// space is resolved once at open so the read path can locate data extents
// and copy them straight into the caller's buffer.
type MFile struct {
	mem scm.Space
	sl  scm.Slicer
	oid OID
}

// mfHead is the decoded head extent, fetched as a single view on the read
// path instead of one scalar read (and, on non-slicing spaces, one
// allocation) per field.
type mfHead struct {
	size      uint64
	root      uint64
	depth     uint
	extentLog uint32
	flags     uint32
	single    uint64
	singleCap uint64
}

func (h *mfHead) isSingle() bool { return h.flags&mfFlagSingle != 0 }

func (h *mfHead) blockSize() (uint64, error) {
	if h.extentLog < 6 || h.extentLog > 26 {
		return 0, fmt.Errorf("%w: extent log %d", ErrCorrupt, h.extentLog)
	}
	return 1 << h.extentLog, nil
}

// head decodes the whole head extent in one view. The slicing and copying
// paths are kept separate so the scratch buffer does not escape through an
// interface call and cost the zero-copy path a heap allocation.
func (m *MFile) head() (mfHead, error) {
	if m.sl != nil {
		b, err := m.sl.Slice(m.oid.Addr(), mfHeadSize)
		if err != nil {
			return mfHead{}, err
		}
		return decodeMFHead(b)
	}
	var buf [mfHeadSize]byte
	if err := m.mem.Read(m.oid.Addr(), buf[:]); err != nil {
		return mfHead{}, err
	}
	return decodeMFHead(buf[:])
}

func decodeMFHead(b []byte) (mfHead, error) {
	rd := scm.U64(b[offMFRoot:])
	h := mfHead{
		size:      scm.U64(b[offMFSize:]),
		root:      rd &^ 63,
		depth:     uint(rd & 63),
		extentLog: scm.U32(b[offMFExtentLog:]),
		flags:     scm.U32(b[offMFFlags:]),
		single:    scm.U64(b[offMFSingle:]),
		singleCap: scm.U64(b[offMFSingleCap:]),
	}
	if h.depth > maxDepth {
		return mfHead{}, fmt.Errorf("%w: radix depth %d", ErrCorrupt, h.depth)
	}
	return h, nil
}

// CreateMFile allocates an empty radix-tree mFile with 2^extentLog-byte
// data extents.
func CreateMFile(mem scm.Space, a Allocator, perm uint32, extentLog uint32) (*MFile, error) {
	if extentLog < 6 || extentLog > 26 {
		return nil, fmt.Errorf("sobj: bad extent log %d", extentLog)
	}
	head, err := a.Alloc(mfHeadSize)
	if err != nil {
		return nil, err
	}
	if err := initMFileHead(mem, head, perm, extentLog, 0); err != nil {
		return nil, err
	}
	oid, err := MakeOID(head, TypeMFile)
	if err != nil {
		return nil, err
	}
	return &MFile{mem: mem, sl: scm.AsSlicer(mem), oid: oid}, nil
}

// CreateMFileSingle allocates a single-extent mFile with the given capacity
// (rounded up by the allocator), FlatFS's fixed-size file layout.
func CreateMFileSingle(mem scm.Space, a Allocator, perm uint32, capacity uint64) (*MFile, error) {
	if capacity == 0 {
		capacity = 64
	}
	head, err := a.Alloc(mfHeadSize)
	if err != nil {
		return nil, err
	}
	data, err := a.Alloc(capacity)
	if err != nil {
		_ = a.Free(head, mfHeadSize)
		return nil, err
	}
	if err := initMFileHead(mem, head, perm, DefaultExtentLog, mfFlagSingle); err != nil {
		return nil, err
	}
	if err := scm.Write64(mem, head+offMFSingle, data); err != nil {
		return nil, err
	}
	if err := scm.Write64(mem, head+offMFSingleCap, capacity); err != nil {
		return nil, err
	}
	if err := mem.Flush(head, mfHeadSize); err != nil {
		return nil, err
	}
	oid, err := MakeOID(head, TypeMFile)
	if err != nil {
		return nil, err
	}
	return &MFile{mem: mem, sl: scm.AsSlicer(mem), oid: oid}, nil
}

func initMFileHead(mem scm.Space, head uint64, perm, extentLog, flags uint32) error {
	if err := scm.Zero(mem, head, mfHeadSize); err != nil {
		return err
	}
	if err := writeHeader(mem, head, Header{Type: TypeMFile, Perm: perm}); err != nil {
		return err
	}
	if err := scm.Write32(mem, head+offMFExtentLog, extentLog); err != nil {
		return err
	}
	if err := scm.Write32(mem, head+offMFFlags, flags); err != nil {
		return err
	}
	if err := mem.Flush(head, mfHeadSize); err != nil {
		return err
	}
	mem.Fence()
	return nil
}

// OpenMFile validates and opens an existing mFile.
func OpenMFile(mem scm.Space, oid OID) (*MFile, error) {
	if oid.Type() != TypeMFile {
		return nil, fmt.Errorf("%w: %v is not an mFile", ErrBadObject, oid)
	}
	if _, err := ReadHeader(mem, oid); err != nil {
		return nil, err
	}
	return &MFile{mem: mem, sl: scm.AsSlicer(mem), oid: oid}, nil
}

// OID returns the mFile's object ID.
func (m *MFile) OID() OID { return m.oid }

// Size returns the logical file size.
func (m *MFile) Size() (uint64, error) {
	return scm.Read64(m.mem, m.oid.Addr()+offMFSize)
}

// SetSize sets the logical file size (trusted side, or staged client-side
// and validated by the TFS).
func (m *MFile) SetSize(n uint64) error {
	return scm.Write64Flush(m.mem, m.oid.Addr()+offMFSize, n)
}

// IsSingle reports whether the mFile is in single-extent mode.
func (m *MFile) IsSingle() (bool, error) {
	flags, err := scm.Read32(m.mem, m.oid.Addr()+offMFFlags)
	return flags&mfFlagSingle != 0, err
}

// SingleExtent returns the data extent address and capacity of a
// single-extent mFile.
func (m *MFile) SingleExtent() (addr, capacity uint64, err error) {
	head := m.oid.Addr()
	addr, err = scm.Read64(m.mem, head+offMFSingle)
	if err != nil {
		return 0, 0, err
	}
	capacity, err = scm.Read64(m.mem, head+offMFSingleCap)
	return addr, capacity, err
}

// BlockSize returns the data-extent size in bytes.
func (m *MFile) BlockSize() (uint64, error) {
	lg, err := scm.Read32(m.mem, m.oid.Addr()+offMFExtentLog)
	if err != nil {
		return 0, err
	}
	if lg < 6 || lg > 26 {
		return 0, fmt.Errorf("%w: extent log %d", ErrCorrupt, lg)
	}
	return 1 << lg, nil
}

func (m *MFile) rootDepth() (root uint64, depth uint, err error) {
	v, err := scm.Read64(m.mem, m.oid.Addr()+offMFRoot)
	if err != nil {
		return 0, 0, err
	}
	depth = uint(v & 63)
	if depth > maxDepth {
		return 0, 0, fmt.Errorf("%w: radix depth %d", ErrCorrupt, depth)
	}
	return v &^ 63, depth, nil
}

// capacityBlocks returns how many blocks a tree of the given depth spans.
func capacityBlocks(depth uint) uint64 {
	n := uint64(1)
	for i := uint(0); i < depth; i++ {
		n *= radixSlots
	}
	return n
}

// ExtentFor returns the address of the data extent covering offset, or 0
// when the range is a hole. In single mode it returns the single extent.
func (m *MFile) ExtentFor(off uint64) (uint64, error) {
	single, err := m.IsSingle()
	if err != nil {
		return 0, err
	}
	if single {
		cap64, err := scm.Read64(m.mem, m.oid.Addr()+offMFSingleCap)
		if err != nil {
			return 0, err
		}
		if off >= cap64 {
			return 0, nil
		}
		return scm.Read64(m.mem, m.oid.Addr()+offMFSingle)
	}
	bs, err := m.BlockSize()
	if err != nil {
		return 0, err
	}
	return m.lookupBlock(off / bs)
}

// ExtentAtBlock returns the data extent address attached at blockIdx, or 0
// when the slot is empty. Redo-replay uses it to probe whether an attach
// from a journaled batch already took effect.
func (m *MFile) ExtentAtBlock(blockIdx uint64) (uint64, error) {
	single, err := m.IsSingle()
	if err != nil {
		return 0, err
	}
	if single {
		if blockIdx != 0 {
			return 0, nil
		}
		return scm.Read64(m.mem, m.oid.Addr()+offMFSingle)
	}
	return m.lookupBlock(blockIdx)
}

// lookupBlock walks the radix tree to the data extent for blockIdx.
func (m *MFile) lookupBlock(blockIdx uint64) (uint64, error) {
	root, depth, err := m.rootDepth()
	if err != nil {
		return 0, err
	}
	return m.lookupBlockIn(root, depth, blockIdx)
}

// lookupBlockIn walks a known radix root, so readers that already decoded
// the head extent do not re-read it per block.
func (m *MFile) lookupBlockIn(root uint64, depth uint, blockIdx uint64) (uint64, error) {
	if depth == 0 || blockIdx >= capacityBlocks(depth) || root == 0 {
		return 0, nil
	}
	cur := root
	for level := depth - 1; level > 0; level-- {
		slot := (blockIdx >> (9 * level)) & (radixSlots - 1)
		next, err := read64(m.mem, m.sl, cur+slot*8)
		if err != nil {
			return 0, err
		}
		if next == 0 {
			return 0, nil
		}
		cur = next
	}
	return read64(m.mem, m.sl, cur+(blockIdx&(radixSlots-1))*8)
}

// copyOut copies n bytes at addr into dst: straight from the zero-copy
// window when available (one copy, SCM to caller), else through Read.
func (m *MFile) copyOut(addr uint64, dst []byte) error {
	if m.sl != nil {
		b, err := m.sl.Slice(addr, len(dst))
		if err != nil {
			return err
		}
		copy(dst, b)
		return nil
	}
	return m.mem.Read(addr, dst)
}

// ReadAt reads into p starting at off, stopping at the file size. Holes
// read as zeros. Returns the number of bytes read. The whole head extent is
// decoded from a single view, and on a slicing space each data extent is
// copied straight into p — the direct load path, no intermediate buffer.
func (m *MFile) ReadAt(p []byte, off uint64) (int, error) {
	h, err := m.head()
	if err != nil {
		return 0, err
	}
	if off >= h.size {
		return 0, nil
	}
	if off+uint64(len(p)) > h.size {
		p = p[:h.size-off]
	}
	if h.isSingle() {
		if err := m.copyOut(h.single+off, p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	bs, err := h.blockSize()
	if err != nil {
		return 0, err
	}
	read := 0
	for read < len(p) {
		cur := off + uint64(read)
		blockIdx := cur / bs
		inBlock := cur % bs
		chunk := int(bs - inBlock)
		if chunk > len(p)-read {
			chunk = len(p) - read
		}
		ext, err := m.lookupBlockIn(h.root, h.depth, blockIdx)
		if err != nil {
			return read, err
		}
		dst := p[read : read+chunk]
		if ext == 0 {
			for i := range dst {
				dst[i] = 0
			}
		} else if err := m.copyOut(ext+inBlock, dst); err != nil {
			return read, err
		}
		read += chunk
	}
	return read, nil
}

// WriteAt writes p at off directly into allocated extents (the client
// fast path: no service involvement). Writing a hole returns
// ErrNotAllocated; the caller attaches pre-allocated extents through the
// TFS (or its staged shadow) first. Data is flushed for persistence.
// WriteAt does not extend the logical size; use SetSize.
func (m *MFile) WriteAt(p []byte, off uint64) (int, error) {
	single, err := m.IsSingle()
	if err != nil {
		return 0, err
	}
	if single {
		cap64, err := scm.Read64(m.mem, m.oid.Addr()+offMFSingleCap)
		if err != nil {
			return 0, err
		}
		if off+uint64(len(p)) > cap64 {
			return 0, fmt.Errorf("%w: write [%d,+%d) beyond single extent cap %d",
				ErrNotAllocated, off, len(p), cap64)
		}
		data, err := scm.Read64(m.mem, m.oid.Addr()+offMFSingle)
		if err != nil {
			return 0, err
		}
		if err := scm.WriteFlush(m.mem, data+off, p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	bs, err := m.BlockSize()
	if err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		cur := off + uint64(written)
		blockIdx := cur / bs
		inBlock := cur % bs
		chunk := int(bs - inBlock)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		ext, err := m.lookupBlock(blockIdx)
		if err != nil {
			return written, err
		}
		if ext == 0 {
			return written, fmt.Errorf("%w: block %d", ErrNotAllocated, blockIdx)
		}
		if err := scm.WriteFlush(m.mem, ext+inBlock, p[written:written+chunk]); err != nil {
			return written, err
		}
		written += chunk
	}
	return written, nil
}

// AttachExtent links a data extent at blockIdx (trusted side; §5.3.5: the
// client pre-allocates and fills extents, the service verifies and attaches
// them). The tree grows and intermediate nodes are allocated as needed;
// every new structure is persisted before the single atomic write that
// publishes it. Attaching over an existing extent fails with ErrExists.
func (m *MFile) AttachExtent(a Allocator, blockIdx uint64, extAddr uint64) error {
	single, err := m.IsSingle()
	if err != nil {
		return err
	}
	if single {
		return fmt.Errorf("sobj: AttachExtent on single-extent mFile")
	}
	root, depth, err := m.rootDepth()
	if err != nil {
		return err
	}
	// Grow the tree until blockIdx fits.
	for depth == 0 || blockIdx >= capacityBlocks(depth) {
		if depth >= maxDepth {
			return fmt.Errorf("%w: block index %d", ErrTooLarge, blockIdx)
		}
		node, err := m.newNode(a)
		if err != nil {
			return err
		}
		if root != 0 {
			if err := scm.Write64Flush(m.mem, node, root); err != nil {
				return err
			}
		}
		m.mem.Fence()
		depth++
		root = node
		if err := scm.AtomicFlush64(m.mem, m.oid.Addr()+offMFRoot, root|uint64(depth)); err != nil {
			return err
		}
	}
	// Walk down, allocating interior nodes.
	cur := root
	for level := depth - 1; level > 0; level-- {
		slot := (blockIdx >> (9 * level)) & (radixSlots - 1)
		next, err := scm.Read64(m.mem, cur+slot*8)
		if err != nil {
			return err
		}
		if next == 0 {
			next, err = m.newNode(a)
			if err != nil {
				return err
			}
			m.mem.Fence()
			if err := scm.AtomicFlush64(m.mem, cur+slot*8, next); err != nil {
				return err
			}
		}
		cur = next
	}
	leafSlot := cur + (blockIdx&(radixSlots-1))*8
	old, err := scm.Read64(m.mem, leafSlot)
	if err != nil {
		return err
	}
	if old != 0 {
		return fmt.Errorf("%w: block %d already mapped to %#x", ErrExists, blockIdx, old)
	}
	m.mem.Fence()
	return scm.AtomicFlush64(m.mem, leafSlot, extAddr)
}

func (m *MFile) newNode(a Allocator) (uint64, error) {
	node, err := a.Alloc(radixNodeSize)
	if err != nil {
		return 0, err
	}
	if err := scm.Zero(m.mem, node, radixNodeSize); err != nil {
		return 0, err
	}
	if err := m.mem.Flush(node, radixNodeSize); err != nil {
		return 0, err
	}
	return node, nil
}

// ReplaceSingleExtent swaps the single-mode data extent (trusted side; used
// when a FlatFS put outgrows the current extent). The new extent must
// already contain the file data. The old extent is freed.
func (m *MFile) ReplaceSingleExtent(a Allocator, newAddr, newCap uint64) error {
	single, err := m.IsSingle()
	if err != nil {
		return err
	}
	if !single {
		return fmt.Errorf("sobj: ReplaceSingleExtent on radix mFile")
	}
	head := m.oid.Addr()
	oldAddr, err := scm.Read64(m.mem, head+offMFSingle)
	if err != nil {
		return err
	}
	oldCap, err := scm.Read64(m.mem, head+offMFSingleCap)
	if err != nil {
		return err
	}
	// Publish the new extent first (atomic), then the capacity; a crash
	// between the two leaves the old smaller capacity, which is safe
	// (reads just see a shorter valid region than available).
	m.mem.Fence()
	if err := scm.AtomicFlush64(m.mem, head+offMFSingle, newAddr); err != nil {
		return err
	}
	if err := scm.Write64Flush(m.mem, head+offMFSingleCap, newCap); err != nil {
		return err
	}
	if oldAddr != 0 {
		return a.Free(oldAddr, oldCap)
	}
	return nil
}

// Truncate frees whole data extents beyond newSize and updates the size
// (trusted side). Interior nodes whose subtree becomes empty are freed
// too. The tail of a partial kept block is zeroed so that a later
// extension past newSize exposes zeros, not stale data (POSIX semantics).
func (m *MFile) Truncate(a Allocator, newSize uint64) error {
	return m.truncate(a, newSize, true)
}

// TruncatePruneOnly is Truncate without the tail zeroing, for the TFS's
// batched-apply path: data writes go straight to SCM without passing
// through the op log, so by the time a staged truncate is applied, bytes
// past the cut may legitimately have been rewritten by a later write in
// the same batch. The client zeroes the tail at staging time instead
// (libfs.FileTruncate).
func (m *MFile) TruncatePruneOnly(a Allocator, newSize uint64) error {
	return m.truncate(a, newSize, false)
}

func (m *MFile) truncate(a Allocator, newSize uint64, zeroTail bool) error {
	single, err := m.IsSingle()
	if err != nil {
		return err
	}
	if single {
		return m.SetSize(newSize)
	}
	bs, err := m.BlockSize()
	if err != nil {
		return err
	}
	root, depth, err := m.rootDepth()
	if err != nil {
		return err
	}
	keepBlocks := (newSize + bs - 1) / bs
	if root != 0 && depth > 0 {
		if _, err := m.pruneNode(a, root, depth-1, 0, keepBlocks, bs); err != nil {
			return err
		}
	}
	if tail := newSize % bs; zeroTail && tail != 0 {
		if ext, err := m.lookupBlock(newSize / bs); err != nil {
			return err
		} else if ext != 0 {
			if err := scm.Zero(m.mem, ext+tail, int(bs-tail)); err != nil {
				return err
			}
			if err := m.mem.Flush(ext+tail, int(bs-tail)); err != nil {
				return err
			}
		}
	}
	return m.SetSize(newSize)
}

// pruneNode frees extents/subtrees whose block range is entirely beyond
// keepBlocks. Returns whether the node is now completely empty.
func (m *MFile) pruneNode(a Allocator, node uint64, level uint, base uint64, keepBlocks uint64, bs uint64) (bool, error) {
	span := capacityBlocks(level) // blocks per slot at this level
	empty := true
	for slot := uint64(0); slot < radixSlots; slot++ {
		ptr, err := scm.Read64(m.mem, node+slot*8)
		if err != nil {
			return false, err
		}
		if ptr == 0 {
			continue
		}
		lo := base + slot*span
		if lo >= keepBlocks {
			// Entire subtree beyond the keep range.
			if level == 0 {
				if err := a.Free(ptr, bs); err != nil {
					return false, err
				}
			} else {
				sub := &MFile{mem: m.mem, sl: m.sl, oid: m.oid}
				if _, err := sub.freeSubtree(a, ptr, level-1, bs); err != nil {
					return false, err
				}
			}
			if err := scm.AtomicFlush64(m.mem, node+slot*8, 0); err != nil {
				return false, err
			}
			continue
		}
		if level > 0 {
			subEmpty, err := m.pruneNode(a, ptr, level-1, lo, keepBlocks, bs)
			if err != nil {
				return false, err
			}
			if subEmpty {
				if err := a.Free(ptr, radixNodeSize); err != nil {
					return false, err
				}
				if err := scm.AtomicFlush64(m.mem, node+slot*8, 0); err != nil {
					return false, err
				}
				continue
			}
		}
		empty = false
	}
	return empty, nil
}

// freeSubtree frees every extent and node under node (level counts
// remaining interior levels below node).
func (m *MFile) freeSubtree(a Allocator, node uint64, level uint, bs uint64) (int, error) {
	freed := 0
	for slot := uint64(0); slot < radixSlots; slot++ {
		ptr, err := scm.Read64(m.mem, node+slot*8)
		if err != nil {
			return freed, err
		}
		if ptr == 0 {
			continue
		}
		if level == 0 {
			if err := a.Free(ptr, bs); err != nil {
				return freed, err
			}
			freed++
		} else {
			n, err := m.freeSubtree(a, ptr, level-1, bs)
			freed += n
			if err != nil {
				return freed, err
			}
		}
	}
	return freed, a.Free(node, radixNodeSize)
}

// Destroy frees all storage of the mFile (trusted side).
func (m *MFile) Destroy(a Allocator) error {
	single, err := m.IsSingle()
	if err != nil {
		return err
	}
	head := m.oid.Addr()
	if single {
		data, err := scm.Read64(m.mem, head+offMFSingle)
		if err != nil {
			return err
		}
		cap64, err := scm.Read64(m.mem, head+offMFSingleCap)
		if err != nil {
			return err
		}
		if data != 0 {
			if err := a.Free(data, cap64); err != nil {
				return err
			}
		}
		return a.Free(head, mfHeadSize)
	}
	bs, err := m.BlockSize()
	if err != nil {
		return err
	}
	root, depth, err := m.rootDepth()
	if err != nil {
		return err
	}
	if root != 0 && depth > 0 {
		if _, err := m.freeSubtree(a, root, depth-1, bs); err != nil {
			return err
		}
	}
	return a.Free(head, mfHeadSize)
}
