package sobj

// Worst-case allocation demand estimators for the TFS's space admission:
// before journaling a batch, the trusted side reserves every byte the
// apply phase could possibly allocate, so a committed batch can never fail
// on space (see internal/tfs). The estimates here are deliberately
// pessimistic — over-reservation is released right after apply, while
// under-reservation would re-open the committed-but-unappliable window.

// ColGeometry captures the collection fields the admission simulation needs
// to project rehash and overflow costs across a batch.
type ColGeometry struct {
	Buckets   uint32 // current table bucket count
	Count     uint32 // live entries
	Tombs     uint32 // tombstoned entries
	Overflow  int    // overflow extents currently chained
	TableSize uint64 // current table extent's allocation size
}

// Geometry reads the collection's current geometry.
func (c *Collection) Geometry() (ColGeometry, error) {
	var g ColGeometry
	table, nb, err := c.table()
	if err != nil {
		return g, err
	}
	count, err := c.Count()
	if err != nil {
		return g, err
	}
	tombs, err := c.Tombstones()
	if err != nil {
		return g, err
	}
	exts, err := c.Extents()
	if err != nil {
		return g, err
	}
	g.Buckets = nb
	g.Count = count
	g.Tombs = tombs
	if len(exts) > 2 {
		g.Overflow = len(exts) - 2 // minus head and table
	}
	g.TableSize = uint64(tblHeaderLen) + uint64(nb)*bucketSize
	_ = table
	return g, nil
}

// GrowThreshold reports whether an insert at the projected count would
// trigger a grow rehash under the default policy.
func (g ColGeometry) GrowThreshold() bool {
	return g.Count >= g.Buckets*entriesPerBucketTarget
}

// TableSizeFor returns the allocation size of a table with nb buckets.
func TableSizeFor(nb uint32) uint64 {
	return uint64(tblHeaderLen) + uint64(nb)*bucketSize
}

// OverflowExtentSize is the allocation size of one overflow extent.
const OverflowExtentSize = ovfSize

// RehashOverflowBound bounds the overflow extents a rehash of this geometry
// could allocate: every record could land in a single chain, so the spill is
// capped by the bytes the old structure could have held.
func (g ColGeometry) RehashOverflowBound() int {
	return g.Overflow + int(g.TableSize/ovfSize) + 1
}

// AttachDemand returns the worst-case allocation sizes one AttachExtent at
// blockIdx may request from the current tree shape: growth nodes to reach
// the needed depth plus every interior node on the path.
func (m *MFile) AttachDemand(blockIdx uint64) ([]uint64, error) {
	_, depth, err := m.rootDepth()
	if err != nil {
		return nil, err
	}
	need := depth
	for need == 0 || blockIdx >= capacityBlocks(need) {
		if need >= maxDepth {
			break
		}
		need++
	}
	growth := uint(0)
	if need > depth {
		growth = need - depth
	}
	interior := uint(0)
	if need > 0 {
		interior = need - 1
	}
	sizes := make([]uint64, 0, growth+interior)
	for i := uint(0); i < growth+interior; i++ {
		sizes = append(sizes, uint64(radixNodeSize))
	}
	return sizes, nil
}
