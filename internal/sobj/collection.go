package sobj

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"github.com/aerie-fs/aerie/internal/scm"
)

// Collection is the associative storage object used to build naming
// structures (§5.3.1): a linear hash table packed into extents, mapping
// byte-string keys to 64-bit object IDs. Untrusted clients read collections
// directly from SCM; all mutations run on the trusted side under the
// collection's write lock.
//
// Layout. The head extent carries the common object header plus:
//
//	0x20 u64 tablePtr — address of the current table extent
//	0x28 u32 count     — live entries
//	0x2c u32 tombstones
//
// The table extent holds its own geometry so that growing the table swaps
// a single pointer (the paper's shadow update, §5.3.1: populate new
// extents, then publish with one atomic 64-bit write):
//
//	0x00 u32 table magic
//	0x04 u32 nbuckets
//	0x08 u64 allocBytes (for freeing)
//	0x40 buckets, bucketSize each
//
// A bucket is a record heap: u16 used, then records (u16 tag | key | u64
// value), with the last 8 bytes an overflow-extent pointer. The tag's high
// bit marks a tombstone (§5.3.1: deletes mark a tombstone key; when
// tombstones exceed a threshold the live pairs are rehashed into a new
// table published with a single atomic write).
const (
	offColTable      = 0x20
	offColCount      = 0x28
	offColTombstones = 0x2c

	colHeadSize = 64 // head extent allocation

	tableMagic   = 0x7AB1E001
	offTblMagic  = 0x00
	offTblNB     = 0x04
	offTblAlloc  = 0x08
	tblHeaderLen = 0x40

	bucketSize    = 512
	ovfSize       = 4096 // overflow extents are one page
	tombstoneBit  = 0x8000
	recHeaderLen  = 2
	recValueLen   = 8
	chainPtrLen   = 8
	maxChainDepth = 1024

	// MaxKeyLen bounds collection keys so any record fits in a bucket.
	MaxKeyLen = 400

	// initialBuckets for a fresh collection.
	initialBuckets = 8
	// growFactor: the table doubles when count exceeds
	// nbuckets*entriesPerBucketTarget.
	entriesPerBucketTarget = 8
)

// tblHdr is the decoded table header of a collection, cached per instance.
type tblHdr struct {
	addr uint64
	nb   uint32
	gen  uint64
}

// Collection provides access to a collection object. An instance caches the
// zero-copy capability of its space and the decoded table header; instances
// are cheap to create, and callers follow the lock protocol (one instance
// per locked operation, or a trusted-side instance that performs its own
// rehashes), so the cache can only go stale together with the lock that
// made reading safe in the first place.
type Collection struct {
	mem scm.Space
	sl  scm.Slicer
	oid OID

	// gen invalidates the table-header cache: bumped whenever this instance
	// rehashes (the table extent moves). Atomics keep lock-protected
	// concurrent readers of a shared instance race-free.
	gen atomic.Uint64
	tbl atomic.Pointer[tblHdr]
}

// CreateCollection allocates and initializes a collection (trusted side or
// client staging into pre-allocated extents). perm is the FS-level
// permission word.
func CreateCollection(mem scm.Space, a Allocator, perm uint32) (*Collection, error) {
	head, err := a.Alloc(colHeadSize)
	if err != nil {
		return nil, err
	}
	table, err := newTable(mem, a, initialBuckets)
	if err != nil {
		_ = a.Free(head, colHeadSize)
		return nil, err
	}
	if err := writeHeader(mem, head, Header{Type: TypeCollection, Perm: perm}); err != nil {
		return nil, err
	}
	if err := scm.Write64(mem, head+offColTable, table); err != nil {
		return nil, err
	}
	if err := scm.Write32(mem, head+offColCount, 0); err != nil {
		return nil, err
	}
	if err := scm.Write32(mem, head+offColTombstones, 0); err != nil {
		return nil, err
	}
	if err := mem.Flush(head, colHeadSize); err != nil {
		return nil, err
	}
	mem.Fence()
	oid, err := MakeOID(head, TypeCollection)
	if err != nil {
		return nil, err
	}
	return &Collection{mem: mem, sl: scm.AsSlicer(mem), oid: oid}, nil
}

// newTable allocates and initializes an empty table extent.
func newTable(mem scm.Space, a Allocator, nbuckets uint32) (uint64, error) {
	size := uint64(tblHeaderLen) + uint64(nbuckets)*bucketSize
	addr, err := a.Alloc(size)
	if err != nil {
		return 0, err
	}
	if err := scm.Zero(mem, addr, int(size)); err != nil {
		return 0, err
	}
	if err := scm.Write32(mem, addr+offTblMagic, tableMagic); err != nil {
		return 0, err
	}
	if err := scm.Write32(mem, addr+offTblNB, nbuckets); err != nil {
		return 0, err
	}
	if err := scm.Write64(mem, addr+offTblAlloc, size); err != nil {
		return 0, err
	}
	if err := mem.Flush(addr, int(size)); err != nil {
		return 0, err
	}
	return addr, nil
}

// OpenCollection validates and opens an existing collection.
func OpenCollection(mem scm.Space, oid OID) (*Collection, error) {
	if oid.Type() != TypeCollection {
		return nil, fmt.Errorf("%w: %v is not a collection", ErrBadObject, oid)
	}
	if _, err := ReadHeader(mem, oid); err != nil {
		return nil, err
	}
	return &Collection{mem: mem, sl: scm.AsSlicer(mem), oid: oid}, nil
}

// OID returns the collection's object ID.
func (c *Collection) OID() OID { return c.oid }

// Count returns the number of live entries.
func (c *Collection) Count() (uint32, error) {
	return scm.Read32(c.mem, c.oid.Addr()+offColCount)
}

// Tombstones returns the current tombstone count.
func (c *Collection) Tombstones() (uint32, error) {
	return scm.Read32(c.mem, c.oid.Addr()+offColTombstones)
}

func (c *Collection) table() (addr uint64, nbuckets uint32, err error) {
	// Fast path: the decoded header from a previous operation, valid until
	// this instance rehashes (which bumps gen). Skips the superblock read,
	// the magic check, and the geometry validation entirely.
	gen := c.gen.Load()
	if h := c.tbl.Load(); h != nil && h.gen == gen {
		return h.addr, h.nb, nil
	}
	addr, err = scm.Read64(c.mem, c.oid.Addr()+offColTable)
	if err != nil {
		return 0, 0, err
	}
	magic, err := scm.Read32(c.mem, addr+offTblMagic)
	if err != nil {
		return 0, 0, err
	}
	if magic != tableMagic {
		return 0, 0, fmt.Errorf("%w: bad table magic %#x", ErrCorrupt, magic)
	}
	nbuckets, err = scm.Read32(c.mem, addr+offTblNB)
	if err != nil {
		return 0, 0, err
	}
	if nbuckets == 0 || nbuckets > 1<<22 {
		return 0, 0, fmt.Errorf("%w: implausible bucket count %d", ErrCorrupt, nbuckets)
	}
	c.tbl.Store(&tblHdr{addr: addr, nb: nbuckets, gen: gen})
	return addr, nbuckets, nil
}

// InvalidateTable drops the cached table header. Call after the table may
// have moved underneath this instance — a remount, or trusted-side changes
// applied through a different instance while no lock covered this one.
func (c *Collection) InvalidateTable() { c.gen.Add(1) }

func hashKey(key []byte) uint32 {
	h := fnv.New32a()
	_, _ = h.Write(key)
	return h.Sum32()
}

// bucketAddr returns the address of key's bucket in the given table.
func bucketAddr(table uint64, nbuckets uint32, key []byte) uint64 {
	return table + tblHeaderLen + uint64(hashKey(key)%nbuckets)*bucketSize
}

// NeedsGrow reports whether the next insert under the default policy would
// rehash the table; FlatFS uses it to decide when to escalate from bucket
// locks to the whole-collection write lock.
func (c *Collection) NeedsGrow(headroom uint32) (bool, error) {
	count, err := c.Count()
	if err != nil {
		return false, err
	}
	tombs, err := c.Tombstones()
	if err != nil {
		return false, err
	}
	_, nb, err := c.table()
	if err != nil {
		return false, err
	}
	return count+headroom >= nb*entriesPerBucketTarget || (tombs > 16 && tombs > count/2), nil
}

// BucketLock returns the lock-service ID covering the bucket that holds
// key — FlatFS's fine-grained locks under the collection's intent lock
// (§6.2). Bucket addresses are 64-byte aligned, so the ID is a valid OID
// in the TypeBucket space.
func (c *Collection) BucketLock(key []byte) (uint64, error) {
	table, nb, err := c.table()
	if err != nil {
		return 0, err
	}
	return bucketAddr(table, nb, key) | uint64(TypeBucket), nil
}

// node describes one element of a bucket chain: the primary bucket or an
// overflow extent.
type node struct {
	addr     uint64
	areaLen  uint64 // record area capacity
	chainOff uint64 // offset of the chain pointer
}

func primaryNode(addr uint64) node {
	return node{addr: addr, areaLen: bucketSize - recHeaderLen - chainPtrLen, chainOff: bucketSize - chainPtrLen}
}

func overflowNode(addr uint64) node {
	return node{addr: addr, areaLen: ovfSize - recHeaderLen - chainPtrLen, chainOff: ovfSize - chainPtrLen}
}

// used reads the node's used-bytes counter, validated against capacity.
func (c *Collection) usedOf(n node) (uint64, error) {
	u, err := read16(c.mem, c.sl, n.addr)
	if err != nil {
		return 0, err
	}
	if uint64(u) > n.areaLen {
		return 0, fmt.Errorf("%w: used %d exceeds area %d", ErrCorrupt, u, n.areaLen)
	}
	return uint64(u), nil
}

// record is a decoded record within a node.
type record struct {
	off  uint64 // offset of the tag within the node's record area
	key  []byte
	val  uint64
	dead bool
}

// walkRecords decodes the records of one node, calling fn for each; fn
// returning false stops the walk. On a slicing space the record area is
// walked in place — no per-node allocation or copy; the keys handed to fn
// alias SCM and are only valid during the call (as documented on Iterate).
func (c *Collection) walkRecords(n node, fn func(r record) (bool, error)) error {
	used, err := c.usedOf(n)
	if err != nil {
		return err
	}
	var area []byte
	if c.sl != nil {
		if area, err = c.sl.Slice(n.addr+recHeaderLen, int(used)); err != nil {
			return err
		}
	} else {
		area = make([]byte, used)
		if err := c.mem.Read(n.addr+recHeaderLen, area); err != nil {
			return err
		}
	}
	off := uint64(0)
	for off+recHeaderLen <= used {
		tag := uint16(area[off]) | uint16(area[off+1])<<8
		klen := uint64(tag &^ tombstoneBit)
		if off+recHeaderLen+klen+recValueLen > used {
			return fmt.Errorf("%w: record overruns used area", ErrCorrupt)
		}
		key := area[off+recHeaderLen : off+recHeaderLen+klen]
		val := scm.U64(area[off+recHeaderLen+klen:])
		cont, err := fn(record{off: off, key: key, val: val, dead: tag&tombstoneBit != 0})
		if err != nil || !cont {
			return err
		}
		off += recHeaderLen + klen + recValueLen
	}
	return nil
}

// chain iterates the nodes of key's bucket chain.
func (c *Collection) chain(table uint64, nbuckets uint32, key []byte, fn func(n node) (bool, error)) error {
	n := primaryNode(bucketAddr(table, nbuckets, key))
	for depth := 0; ; depth++ {
		if depth > maxChainDepth {
			return fmt.Errorf("%w: bucket chain too long", ErrCorrupt)
		}
		cont, err := fn(n)
		if err != nil || !cont {
			return err
		}
		next, err := read64(c.mem, c.sl, n.addr+n.chainOff)
		if err != nil {
			return err
		}
		if next == 0 {
			return nil
		}
		n = overflowNode(next)
	}
}

// Lookup finds key, returning its value. Safe for untrusted, lock-protected
// concurrent readers.
func (c *Collection) Lookup(key []byte) (OID, error) {
	table, nb, err := c.table()
	if err != nil {
		return 0, err
	}
	var found OID
	ok := false
	err = c.chain(table, nb, key, func(n node) (bool, error) {
		werr := c.walkRecords(n, func(r record) (bool, error) {
			if !r.dead && bytes.Equal(r.key, key) {
				found = OID(r.val)
				ok = true
				return false, nil
			}
			return true, nil
		})
		return !ok, werr
	})
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: key %q", ErrNotFound, key)
	}
	return found, nil
}

// Iterate calls fn for every live key/value pair. The key slice is only
// valid during the call.
func (c *Collection) Iterate(fn func(key []byte, val OID) error) error {
	table, nb, err := c.table()
	if err != nil {
		return err
	}
	for b := uint32(0); b < nb; b++ {
		n := primaryNode(table + tblHeaderLen + uint64(b)*bucketSize)
		for depth := 0; ; depth++ {
			if depth > maxChainDepth {
				return fmt.Errorf("%w: bucket chain too long", ErrCorrupt)
			}
			if err := c.walkRecords(n, func(r record) (bool, error) {
				if r.dead {
					return true, nil
				}
				return true, fn(r.key, OID(r.val))
			}); err != nil {
				return err
			}
			next, err := read64(c.mem, c.sl, n.addr+n.chainOff)
			if err != nil {
				return err
			}
			if next == 0 {
				break
			}
			n = overflowNode(next)
		}
	}
	return nil
}

// Insert adds key -> val (trusted side; caller holds the collection write
// lock). Fails with ErrExists when a live record has the same key. Grows
// the table via shadow rehash when the load factor is exceeded.
func (c *Collection) Insert(a Allocator, key []byte, val OID) error {
	return c.insert(a, key, val, true)
}

// InsertNoGrow inserts without ever moving the table (overflow chaining
// only). FlatFS operations covered by fine-grained bucket locks use it,
// since a rehash would invalidate every bucket lock and requires the
// whole-collection write lock (§6.2).
func (c *Collection) InsertNoGrow(a Allocator, key []byte, val OID) error {
	return c.insert(a, key, val, false)
}

func (c *Collection) insert(a Allocator, key []byte, val OID, allowGrow bool) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: key of %d bytes", ErrTooLarge, len(key))
	}
	count, err := c.Count()
	if err != nil {
		return err
	}
	_, nb, err := c.table()
	if err != nil {
		return err
	}
	if allowGrow && count >= nb*entriesPerBucketTarget {
		if err := c.rehash(a, nb*2); err != nil {
			return err
		}
	}
	table, nb, err := c.table()
	if err != nil {
		return err
	}
	need := uint64(recHeaderLen + len(key) + recValueLen)
	var target node
	var targetUsed uint64
	haveTarget := false
	exists := false
	var last node
	err = c.chain(table, nb, key, func(n node) (bool, error) {
		last = n
		used, err := c.usedOf(n)
		if err != nil {
			return false, err
		}
		werr := c.walkRecords(n, func(r record) (bool, error) {
			if !r.dead && bytes.Equal(r.key, key) {
				exists = true
				return false, nil
			}
			return true, nil
		})
		if werr != nil || exists {
			return false, werr
		}
		if !haveTarget && used+need <= n.areaLen {
			target, targetUsed, haveTarget = n, used, true
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	if exists {
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	if !haveTarget {
		// Chain a fresh overflow extent onto the last node: populate it,
		// flush, then publish with a single atomic pointer write.
		ovf, err := a.Alloc(ovfSize)
		if err != nil {
			return err
		}
		if err := scm.Zero(c.mem, ovf, ovfSize); err != nil {
			return err
		}
		if err := c.mem.Flush(ovf, ovfSize); err != nil {
			return err
		}
		c.mem.Fence()
		if err := scm.AtomicFlush64(c.mem, last.addr+last.chainOff, ovf); err != nil {
			return err
		}
		target, targetUsed = overflowNode(ovf), 0
	}
	// Write the record beyond the used mark, persist it, then publish by
	// bumping the used counter (record contents are durable before they
	// become reachable).
	rec := make([]byte, need)
	rec[0] = byte(len(key))
	rec[1] = byte(len(key) >> 8)
	copy(rec[recHeaderLen:], key)
	putVal(rec[recHeaderLen+len(key):], uint64(val))
	if err := scm.WriteFlush(c.mem, target.addr+recHeaderLen+targetUsed, rec); err != nil {
		return err
	}
	c.mem.Fence()
	if err := scm.Write16(c.mem, target.addr, uint16(targetUsed+need)); err != nil {
		return err
	}
	if err := c.mem.Flush(target.addr, 2); err != nil {
		return err
	}
	return c.bumpCounts(int32(1), 0)
}

// Remove tombstones key (trusted side; caller holds the write lock).
// Rehashes away tombstones past the threshold.
func (c *Collection) Remove(a Allocator, key []byte) error {
	return c.remove(a, key, true)
}

// RemoveNoGC removes without ever rehashing the table (bucket-locked
// FlatFS operations; see InsertNoGrow).
func (c *Collection) RemoveNoGC(a Allocator, key []byte) error {
	return c.remove(a, key, false)
}

func (c *Collection) remove(a Allocator, key []byte, allowGC bool) error {
	table, nb, err := c.table()
	if err != nil {
		return err
	}
	removed := false
	err = c.chain(table, nb, key, func(n node) (bool, error) {
		werr := c.walkRecords(n, func(r record) (bool, error) {
			if !r.dead && bytes.Equal(r.key, key) {
				tag := uint16(len(r.key)) | tombstoneBit
				if err := scm.Write16(c.mem, n.addr+recHeaderLen+r.off, tag); err != nil {
					return false, err
				}
				if err := c.mem.Flush(n.addr+recHeaderLen+r.off, 2); err != nil {
					return false, err
				}
				removed = true
				return false, nil
			}
			return true, nil
		})
		return !removed, werr
	})
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err := c.bumpCounts(-1, 1); err != nil {
		return err
	}
	count, err := c.Count()
	if err != nil {
		return err
	}
	tombs, err := c.Tombstones()
	if err != nil {
		return err
	}
	if allowGC && tombs > 16 && tombs > count/2 {
		_, nb, err := c.table()
		if err != nil {
			return err
		}
		return c.rehash(a, nb)
	}
	return nil
}

func (c *Collection) bumpCounts(dCount, dTombs int32) error {
	head := c.oid.Addr()
	count, err := scm.Read32(c.mem, head+offColCount)
	if err != nil {
		return err
	}
	tombs, err := scm.Read32(c.mem, head+offColTombstones)
	if err != nil {
		return err
	}
	if err := scm.Write32(c.mem, head+offColCount, uint32(int32(count)+dCount)); err != nil {
		return err
	}
	if err := scm.Write32(c.mem, head+offColTombstones, uint32(int32(tombs)+dTombs)); err != nil {
		return err
	}
	return c.mem.Flush(head+offColCount, 8)
}

// rehash builds a new table of newNB buckets containing only live entries,
// publishes it with one atomic pointer write, and frees the old table and
// its overflow chain (§5.3.1's shadow update).
func (c *Collection) rehash(a Allocator, newNB uint32) error {
	oldTable, oldNB, err := c.table()
	if err != nil {
		return err
	}
	newTable, err := newTable(c.mem, a, newNB)
	if err != nil {
		return err
	}
	live := uint32(0)
	insert := func(key []byte, val OID) error {
		need := uint64(recHeaderLen + len(key) + recValueLen)
		var target node
		var targetUsed uint64
		have := false
		var last node
		err := c.chain(newTable, newNB, key, func(n node) (bool, error) {
			last = n
			used, err := c.usedOf(n)
			if err != nil {
				return false, err
			}
			if used+need <= n.areaLen {
				target, targetUsed, have = n, used, true
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		if !have {
			ovf, err := a.Alloc(ovfSize)
			if err != nil {
				return err
			}
			if err := scm.Zero(c.mem, ovf, ovfSize); err != nil {
				return err
			}
			if err := scm.Write64(c.mem, last.addr+last.chainOff, ovf); err != nil {
				return err
			}
			target, targetUsed = overflowNode(ovf), 0
		}
		rec := make([]byte, need)
		rec[0] = byte(len(key))
		rec[1] = byte(len(key) >> 8)
		copy(rec[recHeaderLen:], key)
		putVal(rec[recHeaderLen+len(key):], uint64(val))
		if err := c.mem.Write(target.addr+recHeaderLen+targetUsed, rec); err != nil {
			return err
		}
		if err := scm.Write16(c.mem, target.addr, uint16(targetUsed+need)); err != nil {
			return err
		}
		live++
		return nil
	}
	// Copy live entries from the old table.
	if err := c.iterateTable(oldTable, oldNB, func(key []byte, val OID) error {
		return insert(key, val)
	}); err != nil {
		return err
	}
	// Persist the fully built shadow table, then publish.
	if err := c.flushTableDeep(newTable, newNB); err != nil {
		return err
	}
	c.mem.Fence()
	if err := scm.AtomicFlush64(c.mem, c.oid.Addr()+offColTable, newTable); err != nil {
		return err
	}
	// The table moved: invalidate the cached header.
	c.InvalidateTable()
	// Reset counters: all tombstones are gone.
	head := c.oid.Addr()
	if err := scm.Write32(c.mem, head+offColCount, live); err != nil {
		return err
	}
	if err := scm.Write32(c.mem, head+offColTombstones, 0); err != nil {
		return err
	}
	if err := c.mem.Flush(head+offColCount, 8); err != nil {
		return err
	}
	return c.freeTable(a, oldTable, oldNB)
}

// iterateTable walks live records of an arbitrary table.
func (c *Collection) iterateTable(table uint64, nb uint32, fn func(key []byte, val OID) error) error {
	for b := uint32(0); b < nb; b++ {
		n := primaryNode(table + tblHeaderLen + uint64(b)*bucketSize)
		for depth := 0; ; depth++ {
			if depth > maxChainDepth {
				return fmt.Errorf("%w: bucket chain too long", ErrCorrupt)
			}
			if err := c.walkRecords(n, func(r record) (bool, error) {
				if r.dead {
					return true, nil
				}
				return true, fn(r.key, OID(r.val))
			}); err != nil {
				return err
			}
			next, err := read64(c.mem, c.sl, n.addr+n.chainOff)
			if err != nil {
				return err
			}
			if next == 0 {
				break
			}
			n = overflowNode(next)
		}
	}
	return nil
}

// flushTableDeep flushes a table extent and all overflow extents.
func (c *Collection) flushTableDeep(table uint64, nb uint32) error {
	size, err := scm.Read64(c.mem, table+offTblAlloc)
	if err != nil {
		return err
	}
	if err := c.mem.Flush(table, int(size)); err != nil {
		return err
	}
	for b := uint32(0); b < nb; b++ {
		n := primaryNode(table + tblHeaderLen + uint64(b)*bucketSize)
		for {
			next, err := scm.Read64(c.mem, n.addr+n.chainOff)
			if err != nil {
				return err
			}
			if next == 0 {
				break
			}
			n = overflowNode(next)
			if err := c.mem.Flush(n.addr, ovfSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// freeTable frees a table extent and its overflow chains. Each chain is
// collected before freeing so no freed extent is read.
func (c *Collection) freeTable(a Allocator, table uint64, nb uint32) error {
	for b := uint32(0); b < nb; b++ {
		var chain []uint64
		n := primaryNode(table + tblHeaderLen + uint64(b)*bucketSize)
		for depth := 0; ; depth++ {
			if depth > maxChainDepth {
				return fmt.Errorf("%w: bucket chain too long", ErrCorrupt)
			}
			next, err := scm.Read64(c.mem, n.addr+n.chainOff)
			if err != nil {
				return err
			}
			if next == 0 {
				break
			}
			chain = append(chain, next)
			n = overflowNode(next)
		}
		for _, addr := range chain {
			if err := a.Free(addr, ovfSize); err != nil {
				return err
			}
		}
	}
	size, err := scm.Read64(c.mem, table+offTblAlloc)
	if err != nil {
		return err
	}
	return a.Free(table, size)
}

// Destroy frees the collection's storage (trusted side).
func (c *Collection) Destroy(a Allocator) error {
	table, nb, err := c.table()
	if err != nil {
		return err
	}
	if err := c.freeTable(a, table, nb); err != nil {
		return err
	}
	return a.Free(c.oid.Addr(), colHeadSize)
}

func putVal(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
