package sobj

import (
	"errors"
	"fmt"

	"github.com/aerie-fs/aerie/internal/scm"
)

// Common object header, at the start of every object's head extent:
//
//	0x00 u32 magic (magicBase XOR type, so a type confusion fails fast)
//	0x04 u8  type
//	0x05 u8..u16 reserved
//	0x08 u32 refcnt — membership count: how many collections link this
//	     object (§5.3.4 uses it to decide when hierarchical locking is
//	     unsafe and explicit locking is required)
//	0x0c u32 perm — file-system-level permission bits (interpreted by the
//	     interface layer, e.g. PXFS mode bits)
//	0x10 u64 parent — OID of a collection containing this object (valid
//	     when refcnt == 1; the TFS uses it to validate hierarchical lock
//	     coverage and rename cycles)
//	0x18 u64 attrs — interface-specific (PXFS: mtime nanoseconds)
//
// HeaderSize bytes total; type-specific fields follow.
const (
	magicBase = 0xA11E0B00

	offHdrMagic  = 0x00
	offHdrType   = 0x04
	offHdrRefcnt = 0x08
	offHdrPerm   = 0x0c
	offHdrParent = 0x10
	offHdrAttrs  = 0x18

	// HeaderSize is the size of the common object header.
	HeaderSize = 0x20
)

// Errors shared by object implementations.
var (
	ErrBadObject    = errors.New("sobj: not a valid object")
	ErrCorrupt      = errors.New("sobj: corrupt object structure")
	ErrExists       = errors.New("sobj: key exists")
	ErrNotFound     = errors.New("sobj: not found")
	ErrNotAllocated = errors.New("sobj: file range not allocated")
	ErrTooLarge     = errors.New("sobj: value too large")
)

// Allocator supplies and reclaims extents for trusted-side mutations. It is
// implemented by the TFS's buddy allocator, and by the client-side
// pre-allocated pool when clients stage objects locally.
type Allocator interface {
	Alloc(size uint64) (uint64, error)
	Free(addr, size uint64) error
}

// Header is the decoded common object header.
type Header struct {
	Type   Type
	Refcnt uint32
	Perm   uint32
	Parent OID
	Attrs  uint64
}

func magicFor(typ Type) uint32 { return magicBase ^ uint32(typ) }

// writeHeader initializes a common header at addr (volatile; caller
// flushes).
func writeHeader(mem scm.Space, addr uint64, h Header) error {
	if err := scm.Write32(mem, addr+offHdrMagic, magicFor(h.Type)); err != nil {
		return err
	}
	if err := scm.Write32(mem, addr+offHdrType, uint32(h.Type)); err != nil {
		return err
	}
	if err := scm.Write32(mem, addr+offHdrRefcnt, h.Refcnt); err != nil {
		return err
	}
	if err := scm.Write32(mem, addr+offHdrPerm, h.Perm); err != nil {
		return err
	}
	if err := scm.Write64(mem, addr+offHdrParent, uint64(h.Parent)); err != nil {
		return err
	}
	return scm.Write64(mem, addr+offHdrAttrs, h.Attrs)
}

// ReadHeader reads and validates the common header of oid. The header is
// fetched as one view — zero-copy on slicing spaces — instead of five
// separate scalar reads.
func ReadHeader(mem scm.Space, oid OID) (Header, error) {
	addr := oid.Addr()
	var buf [HeaderSize]byte
	b, err := scm.View(mem, addr, HeaderSize, buf[:])
	if err != nil {
		return Header{}, err
	}
	magic := scm.U32(b[offHdrMagic:])
	if magic != magicFor(oid.Type()) {
		return Header{}, fmt.Errorf("%w: %v has magic %#x", ErrBadObject, oid, magic)
	}
	return Header{
		Type:   oid.Type(),
		Refcnt: scm.U32(b[offHdrRefcnt:]),
		Perm:   scm.U32(b[offHdrPerm:]),
		Parent: OID(scm.U64(b[offHdrParent:])),
		Attrs:  scm.U64(b[offHdrAttrs:]),
	}, nil
}

// read64/read32/read16 are the direct readers' scalar loads: sl, resolved
// once at object open, keeps the per-access type assertion off hot loops.
func read64(mem scm.Space, sl scm.Slicer, addr uint64) (uint64, error) {
	if sl != nil {
		b, err := sl.Slice(addr, 8)
		if err != nil {
			return 0, err
		}
		return scm.U64(b), nil
	}
	return scm.Read64(mem, addr)
}

func read16(mem scm.Space, sl scm.Slicer, addr uint64) (uint16, error) {
	if sl != nil {
		b, err := sl.Slice(addr, 2)
		if err != nil {
			return 0, err
		}
		return scm.U16(b), nil
	}
	return scm.Read16(mem, addr)
}

// SetRefcnt updates the membership count (trusted side).
func SetRefcnt(mem scm.Space, oid OID, n uint32) error {
	if err := scm.Write32(mem, oid.Addr()+offHdrRefcnt, n); err != nil {
		return err
	}
	return mem.Flush(oid.Addr()+offHdrRefcnt, 4)
}

// SetParent updates the parent pointer (trusted side).
func SetParent(mem scm.Space, oid OID, parent OID) error {
	if err := scm.Write64Flush(mem, oid.Addr()+offHdrParent, uint64(parent)); err != nil {
		return err
	}
	return nil
}

// SetPerm updates the FS-level permission bits (trusted side).
func SetPerm(mem scm.Space, oid OID, perm uint32) error {
	if err := scm.Write32(mem, oid.Addr()+offHdrPerm, perm); err != nil {
		return err
	}
	return mem.Flush(oid.Addr()+offHdrPerm, 4)
}

// SetAttrs updates the interface-specific attribute word (trusted side).
func SetAttrs(mem scm.Space, oid OID, attrs uint64) error {
	return scm.Write64Flush(mem, oid.Addr()+offHdrAttrs, attrs)
}
