package extfs

import (
	"encoding/binary"
	"fmt"

	"github.com/aerie-fs/aerie/internal/vfs"
)

// File-block mapping for both layouts. Metadata blocks (pointer blocks,
// extent spill blocks) join the current transaction; data blocks never do
// (ordered mode).

// txBlockZero installs a zeroed image for a freshly allocated metadata
// block.
func (fs *FS) txBlockZero(b uint64) []byte {
	img := make([]byte, blockSize)
	fs.touched[b] = img
	return img
}

// readView returns a read-only view of block b: the transaction image if
// present, else a fresh read into buf.
func (fs *FS) readView(b uint64, buf []byte) ([]byte, error) {
	if img, ok := fs.touched[b]; ok {
		return img, nil
	}
	if err := fs.disk.Read(b, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// mapBlock translates fileBlk to a physical block. With alloc, missing
// blocks (and interior pointer structures) are allocated inside the current
// transaction; without, 0 means a hole.
func (fs *FS) mapBlock(ino vfs.Ino, fileBlk uint64, alloc bool) (uint64, error) {
	if fs.mode == Ext4 {
		return fs.mapExt4(ino, fileBlk, alloc)
	}
	return fs.mapExt3(ino, fileBlk, alloc)
}

// ---- ext3: direct / indirect / double-indirect pointers ----

func (fs *FS) mapExt3(ino vfs.Ino, fileBlk uint64, alloc bool) (uint64, error) {
	le := binary.LittleEndian
	getRec := func() ([]byte, error) {
		if alloc {
			return fs.inodeImage(ino)
		}
		buf := make([]byte, blockSize)
		return fs.readInode(ino, buf)
	}
	rec, err := getRec()
	if err != nil {
		return 0, err
	}
	// Direct pointers.
	if fileBlk < nDirect {
		off := iLay + 8*int(fileBlk)
		phys := le.Uint64(rec[off:])
		if phys == 0 && alloc {
			phys, err = fs.allocBlock()
			if err != nil {
				return 0, err
			}
			le.PutUint64(rec[off:], phys)
		}
		return phys, nil
	}
	idx := fileBlk - nDirect
	// Single indirect.
	if idx < ptrsPerBl {
		return fs.walkPtr(rec, iLay+8*nDirect, []uint64{idx}, alloc)
	}
	idx -= ptrsPerBl
	// Double indirect.
	if idx < ptrsPerBl*ptrsPerBl {
		return fs.walkPtr(rec, iLay+8*nDirect+8, []uint64{idx / ptrsPerBl, idx % ptrsPerBl}, alloc)
	}
	return 0, fmt.Errorf("%w: block %d in ext3 layout", ErrTooBig, fileBlk)
}

// walkPtr follows a chain of pointer blocks rooted at rec[rootOff],
// indexing by idxs, allocating interior blocks as needed.
func (fs *FS) walkPtr(rec []byte, rootOff int, idxs []uint64, alloc bool) (uint64, error) {
	le := binary.LittleEndian
	cur := le.Uint64(rec[rootOff:])
	if cur == 0 {
		if !alloc {
			return 0, nil
		}
		b, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		fs.txBlockZero(b)
		le.PutUint64(rec[rootOff:], b)
		cur = b
	}
	for level, idx := range idxs {
		last := level == len(idxs)-1
		var img []byte
		var err error
		if alloc {
			img, err = fs.txBlock(cur)
		} else {
			buf := make([]byte, blockSize)
			img, err = fs.readView(cur, buf)
		}
		if err != nil {
			return 0, err
		}
		next := le.Uint64(img[8*idx:])
		if next == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			if !last {
				fs.txBlockZero(b)
			}
			// img must be a tx image in the alloc path.
			le.PutUint64(img[8*idx:], b)
			next = b
		}
		cur = next
	}
	return cur, nil
}

// ---- ext4: extent lists ----
//
// Inode layout area: u32 nInline | u32 nSpill | 6 inline extents of
// {u32 fileBlk, u32 count, u64 phys} | u64 spillBlockPtr.

const (
	e4NInline = iLay
	e4NSpill  = iLay + 4
	e4Inline  = iLay + 8
	e4Spill   = iLay + 8 + nInlineExt*extEntrySz
)

type extent struct {
	file  uint32
	count uint32
	phys  uint64
}

func getExtent(b []byte, off int) extent {
	le := binary.LittleEndian
	return extent{file: le.Uint32(b[off:]), count: le.Uint32(b[off+4:]), phys: le.Uint64(b[off+8:])}
}

func putExtent(b []byte, off int, e extent) {
	le := binary.LittleEndian
	le.PutUint32(b[off:], e.file)
	le.PutUint32(b[off+4:], e.count)
	le.PutUint64(b[off+8:], e.phys)
}

func (fs *FS) mapExt4(ino vfs.Ino, fileBlk uint64, alloc bool) (uint64, error) {
	le := binary.LittleEndian
	var rec []byte
	var err error
	if alloc {
		rec, err = fs.inodeImage(ino)
	} else {
		buf := make([]byte, blockSize)
		rec, err = fs.readInode(ino, buf)
	}
	if err != nil {
		return 0, err
	}
	nIn := le.Uint32(rec[e4NInline:])
	nSp := le.Uint32(rec[e4NSpill:])
	if nIn > nInlineExt || nSp > spillMaxExt {
		return 0, fmt.Errorf("%w: extent counts %d/%d", ErrCorrupt, nIn, nSp)
	}
	fb := uint32(fileBlk)
	// Search inline extents.
	for i := 0; i < int(nIn); i++ {
		e := getExtent(rec, e4Inline+i*extEntrySz)
		if fb >= e.file && fb < e.file+e.count {
			return e.phys + uint64(fb-e.file), nil
		}
	}
	// Search the spill block.
	spill := le.Uint64(rec[e4Spill:])
	var spillImg []byte
	if spill != 0 {
		if alloc {
			spillImg, err = fs.txBlock(spill)
		} else {
			buf := make([]byte, blockSize)
			spillImg, err = fs.readView(spill, buf)
		}
		if err != nil {
			return 0, err
		}
		for i := 0; i < int(nSp); i++ {
			e := getExtent(spillImg, i*extEntrySz)
			if fb >= e.file && fb < e.file+e.count {
				return e.phys + uint64(fb-e.file), nil
			}
		}
	}
	if !alloc {
		return 0, nil
	}
	// Allocate, preferring to extend the last extent (sequential appends
	// produce long extents — the layout advantage §7.2.1 credits ext4).
	phys, err := fs.allocBlock()
	if err != nil {
		return 0, err
	}
	extend := func(b []byte, off int) bool {
		e := getExtent(b, off)
		if e.file+e.count == fb && e.phys+uint64(e.count) == phys && e.count < 1<<30 {
			e.count++
			putExtent(b, off, e)
			return true
		}
		return false
	}
	if nSp > 0 && spillImg != nil {
		if extend(spillImg, int(nSp-1)*extEntrySz) {
			return phys, nil
		}
	} else if nIn > 0 {
		if extend(rec, e4Inline+int(nIn-1)*extEntrySz) {
			return phys, nil
		}
	}
	newExt := extent{file: fb, count: 1, phys: phys}
	if nIn < nInlineExt && nSp == 0 {
		putExtent(rec, e4Inline+int(nIn)*extEntrySz, newExt)
		le.PutUint32(rec[e4NInline:], nIn+1)
		return phys, nil
	}
	// Spill path.
	if spill == 0 {
		spill, err = fs.allocBlock()
		if err != nil {
			return 0, err
		}
		spillImg = fs.txBlockZero(spill)
		le.PutUint64(rec[e4Spill:], spill)
	}
	if nSp >= spillMaxExt {
		return 0, fmt.Errorf("%w: extent spill full", ErrTooBig)
	}
	putExtent(spillImg, int(nSp)*extEntrySz, newExt)
	le.PutUint32(rec[e4NSpill:], nSp+1)
	return phys, nil
}

// forEachBlock enumerates all allocated (fileBlk, phys) pairs of an inode.
func (fs *FS) forEachBlock(ino vfs.Ino, fn func(fileBlk, phys uint64) error) error {
	le := binary.LittleEndian
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(ino, buf)
	if err != nil {
		return err
	}
	recCopy := make([]byte, inodeSize)
	copy(recCopy, rec)
	rec = recCopy
	if fs.mode == Ext4 {
		nIn := le.Uint32(rec[e4NInline:])
		nSp := le.Uint32(rec[e4NSpill:])
		emit := func(e extent) error {
			for i := uint32(0); i < e.count; i++ {
				if err := fn(uint64(e.file+i), e.phys+uint64(i)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < int(nIn) && i < nInlineExt; i++ {
			if err := emit(getExtent(rec, e4Inline+i*extEntrySz)); err != nil {
				return err
			}
		}
		if spill := le.Uint64(rec[e4Spill:]); spill != 0 {
			sb := make([]byte, blockSize)
			img, err := fs.readView(spill, sb)
			if err != nil {
				return err
			}
			for i := 0; i < int(nSp) && i < spillMaxExt; i++ {
				if err := emit(getExtent(img, i*extEntrySz)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// ext3.
	for i := 0; i < nDirect; i++ {
		if phys := le.Uint64(rec[iLay+8*i:]); phys != 0 {
			if err := fn(uint64(i), phys); err != nil {
				return err
			}
		}
	}
	walkInd := func(root uint64, base uint64, depth int) error {
		var rec2 func(blk uint64, base uint64, depth int) error
		rec2 = func(blk uint64, base uint64, depth int) error {
			buf := make([]byte, blockSize)
			img, err := fs.readView(blk, buf)
			if err != nil {
				return err
			}
			span := uint64(1)
			for i := 1; i < depth; i++ {
				span *= ptrsPerBl
			}
			for i := uint64(0); i < ptrsPerBl; i++ {
				p := le.Uint64(img[8*i:])
				if p == 0 {
					continue
				}
				if depth == 1 {
					if err := fn(base+i, p); err != nil {
						return err
					}
				} else if err := rec2(p, base+i*span, depth-1); err != nil {
					return err
				}
			}
			return nil
		}
		return rec2(root, base, depth)
	}
	if ind := le.Uint64(rec[iLay+8*nDirect:]); ind != 0 {
		if err := walkInd(ind, nDirect, 1); err != nil {
			return err
		}
	}
	if dind := le.Uint64(rec[iLay+8*nDirect+8:]); dind != 0 {
		if err := walkInd(dind, nDirect+ptrsPerBl, 2); err != nil {
			return err
		}
	}
	return nil
}

// freeFileBlocks frees every data and pointer/spill block of an inode
// (inside the current transaction).
func (fs *FS) freeFileBlocks(ino vfs.Ino) error {
	le := binary.LittleEndian
	// Collect data blocks first.
	var data []uint64
	if err := fs.forEachBlock(ino, func(_, phys uint64) error {
		data = append(data, phys)
		return nil
	}); err != nil {
		return err
	}
	for _, b := range data {
		if err := fs.freeBlock(b); err != nil {
			return err
		}
	}
	// Interior structures.
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return err
	}
	if fs.mode == Ext4 {
		if spill := le.Uint64(rec[e4Spill:]); spill != 0 {
			if err := fs.freeBlock(spill); err != nil {
				return err
			}
		}
	} else {
		if ind := le.Uint64(rec[iLay+8*nDirect:]); ind != 0 {
			if err := fs.freeBlock(ind); err != nil {
				return err
			}
		}
		if dind := le.Uint64(rec[iLay+8*nDirect+8:]); dind != 0 {
			buf := make([]byte, blockSize)
			img, err := fs.readView(dind, buf)
			if err != nil {
				return err
			}
			for i := uint64(0); i < ptrsPerBl; i++ {
				if p := le.Uint64(img[8*i:]); p != 0 {
					if err := fs.freeBlock(p); err != nil {
						return err
					}
				}
			}
			if err := fs.freeBlock(dind); err != nil {
				return err
			}
		}
	}
	// Clear the layout area.
	for i := iLay; i < inodeSize; i++ {
		rec[i] = 0
	}
	return nil
}
