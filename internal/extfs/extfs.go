// Package extfs implements the ext3/ext4-like journaling baselines the paper
// compares against (§7.1): a block file system on the RAM disk with inode
// and block bitmaps, an inode table, directory blocks, a JBD-style physical
// redo journal in ordered-data mode (data blocks reach the disk before the
// metadata transaction that references them commits), and two file layouts —
// indirect blocks (ext3 mode) and extents (ext4 mode), whose sequential-I/O
// gap is one of the effects Table 1 shows.
//
// Every metadata operation runs as a journal transaction committed at the
// end of the operation, giving the per-op crash-consistency cost that
// separates ext3/ext4 from RamFS in the paper's tables.
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/aerie-fs/aerie/internal/blockdev"
	"github.com/aerie-fs/aerie/internal/vfs"
)

// Mode selects the file layout.
type Mode int

// Layout modes.
const (
	// Ext3 uses direct + indirect + double-indirect block pointers.
	Ext3 Mode = iota
	// Ext4 uses extent lists.
	Ext4
)

func (m Mode) String() string {
	if m == Ext4 {
		return "ext4"
	}
	return "ext3"
}

const (
	blockSize  = blockdev.BlockSize
	inodeSize  = 256
	inodesPerB = blockSize / inodeSize

	sbMagic = 0xE47F5000AE81 // superblock magic
	jMagic  = 0xE47F0001     // journal superblock magic

	// Inode field offsets.
	iMode  = 0
	iFlags = 4
	iSize  = 8
	iNlink = 16
	iMtime = 24
	iLay   = 32 // layout area

	// ext3 layout: 12 direct u64, indirect u64, double-indirect u64.
	nDirect   = 12
	ptrsPerBl = blockSize / 8

	// ext4 layout: u32 nextents, 6 inline extents of 16 bytes each,
	// u64 spill block.
	nInlineExt  = 6
	extEntrySz  = 16
	spillMaxExt = blockSize / extEntrySz

	// Directory entries: fixed 64-byte slots.
	dirSlot     = 64
	dirSlotsPer = blockSize / dirSlot
	maxName     = dirSlot - 5

	rootIno = 1
)

// Errors.
var (
	ErrNoSpace  = errors.New("extfs: out of space")
	ErrNoInodes = errors.New("extfs: out of inodes")
	ErrTooBig   = errors.New("extfs: file too large for layout")
	ErrNameLen  = errors.New("extfs: name too long")
	ErrCorrupt  = errors.New("extfs: corrupt structure")
)

type geometry struct {
	nblocks    uint64
	ninodes    uint32
	inoBmapBlk uint64
	inoBmapLen uint64
	blkBmapBlk uint64
	blkBmapLen uint64
	itableBlk  uint64
	itableLen  uint64
	journalBlk uint64
	journalLen uint64
	dataStart  uint64
}

// FS is an extfs instance. The internal mutex serializes all operations
// (the VFS above it adds the finer-grained locking the paper measures).
type FS struct {
	disk *blockdev.Disk
	mode Mode
	geo  geometry

	mu      sync.Mutex
	jseq    uint64
	blkCur  uint64 // allocation cursors
	inoCur  uint32
	touched map[uint64][]byte // current transaction's block images

	// Stats.
	TxCommits  int64
	JournalBlk int64
}

// Mkfs formats the disk and returns a mounted FS.
func Mkfs(disk *blockdev.Disk, mode Mode) (*FS, error) {
	nblocks := disk.Blocks()
	if nblocks < 64 {
		return nil, fmt.Errorf("extfs: disk too small (%d blocks)", nblocks)
	}
	ninodes := uint32(nblocks / 4)
	if ninodes > 32*8*blockSize {
		ninodes = 32 * 8 * blockSize // up to 32 inode-bitmap blocks (1M inodes)
	}
	if ninodes < 16 {
		ninodes = 16
	}
	geo := geometry{nblocks: nblocks, ninodes: ninodes}
	geo.inoBmapBlk = 1
	geo.inoBmapLen = (uint64(ninodes) + 8*blockSize - 1) / (8 * blockSize)
	geo.blkBmapBlk = geo.inoBmapBlk + geo.inoBmapLen
	geo.blkBmapLen = (nblocks + 8*blockSize - 1) / (8 * blockSize)
	geo.itableBlk = geo.blkBmapBlk + geo.blkBmapLen
	geo.itableLen = (uint64(ninodes) + inodesPerB - 1) / inodesPerB
	geo.journalBlk = geo.itableBlk + geo.itableLen
	geo.journalLen = 256 // 1 MiB journal
	geo.dataStart = geo.journalBlk + geo.journalLen
	if geo.dataStart+16 >= nblocks {
		return nil, fmt.Errorf("extfs: disk too small for layout")
	}
	fs := &FS{disk: disk, mode: mode, geo: geo, touched: make(map[uint64][]byte)}
	// Zero metadata regions.
	zero := make([]byte, blockSize)
	for b := uint64(0); b < geo.dataStart; b++ {
		if err := disk.Write(b, zero); err != nil {
			return nil, err
		}
	}
	// Superblock.
	sb := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint64(sb[0:], sbMagic)
	le.PutUint32(sb[8:], uint32(mode))
	le.PutUint64(sb[12:], nblocks)
	le.PutUint32(sb[20:], ninodes)
	le.PutUint64(sb[24:], geo.journalBlk)
	le.PutUint64(sb[32:], geo.journalLen)
	if err := disk.Write(0, sb); err != nil {
		return nil, err
	}
	// Root inode + bitmaps, via a transaction for uniformity.
	fs.begin()
	if err := fs.setBitmapBit(fs.geo.inoBmapBlk, 0, uint64(rootIno), true); err != nil {
		return nil, err
	}
	rootBuf, err := fs.inodeImage(rootIno)
	if err != nil {
		return nil, err
	}
	initInode(rootBuf, 0755, true)
	if err := fs.commit(); err != nil {
		return nil, err
	}
	disk.PersistAll()
	return fs, nil
}

// Mount opens a formatted disk, replaying the journal after a crash.
func Mount(disk *blockdev.Disk) (*FS, error) {
	sb := make([]byte, blockSize)
	if err := disk.Read(0, sb); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint64(sb[0:]) != sbMagic {
		return nil, fmt.Errorf("extfs: bad superblock magic")
	}
	mode := Mode(le.Uint32(sb[8:]))
	nblocks := le.Uint64(sb[12:])
	ninodes := le.Uint32(sb[20:])
	geo := geometry{nblocks: nblocks, ninodes: ninodes}
	geo.inoBmapBlk = 1
	geo.inoBmapLen = (uint64(ninodes) + 8*blockSize - 1) / (8 * blockSize)
	geo.blkBmapBlk = geo.inoBmapBlk + geo.inoBmapLen
	geo.blkBmapLen = (nblocks + 8*blockSize - 1) / (8 * blockSize)
	geo.itableBlk = geo.blkBmapBlk + geo.blkBmapLen
	geo.itableLen = (uint64(ninodes) + inodesPerB - 1) / inodesPerB
	geo.journalBlk = le.Uint64(sb[24:])
	geo.journalLen = le.Uint64(sb[32:])
	geo.dataStart = geo.journalBlk + geo.journalLen
	fs := &FS{disk: disk, mode: mode, geo: geo, touched: make(map[uint64][]byte)}
	if err := fs.replay(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mode returns the layout mode.
func (fs *FS) Mode() Mode { return fs.mode }

// ---- Journal (JBD-style physical redo, one transaction outstanding) ----
//
// journal[0] is the journal superblock: [u32 magic][u32 committed]
// [u64 seq][u32 nblocks]. journal[1] is the descriptor: [u32 n][u64 home...].
// journal[2..2+n) hold the block images. Commit protocol: write descriptor
// and images (streaming), flush, mark committed in the superblock, flush;
// write home blocks, flush; clear committed, flush. Mount replays a marked
// transaction (§5.3.6's redo discipline, applied to the baseline).

func (fs *FS) begin() {
	for k := range fs.touched {
		delete(fs.touched, k)
	}
}

// txBlock returns the transaction's mutable image of block b.
func (fs *FS) txBlock(b uint64) ([]byte, error) {
	if img, ok := fs.touched[b]; ok {
		return img, nil
	}
	img := make([]byte, blockSize)
	if err := fs.disk.Read(b, img); err != nil {
		return nil, err
	}
	fs.touched[b] = img
	return img, nil
}

func (fs *FS) commit() error {
	if len(fs.touched) == 0 {
		return nil
	}
	n := len(fs.touched)
	if uint64(n)+2 > fs.geo.journalLen {
		return fmt.Errorf("extfs: transaction of %d blocks exceeds journal", n)
	}
	homes := make([]uint64, 0, n)
	for b := range fs.touched {
		homes = append(homes, b)
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i] < homes[j] })
	le := binary.LittleEndian
	desc := make([]byte, blockSize)
	le.PutUint32(desc[0:], uint32(n))
	for i, h := range homes {
		le.PutUint64(desc[4+8*i:], h)
	}
	if err := fs.disk.Write(fs.geo.journalBlk+1, desc); err != nil {
		return err
	}
	for i, h := range homes {
		if err := fs.disk.Write(fs.geo.journalBlk+2+uint64(i), fs.touched[h]); err != nil {
			return err
		}
		fs.JournalBlk++
	}
	fs.disk.Flush()
	fs.jseq++
	if err := fs.writeJSB(1, uint32(n)); err != nil {
		return err
	}
	fs.disk.Flush()
	// Checkpoint: write home locations, then clear the commit mark.
	for _, h := range homes {
		if err := fs.disk.Write(h, fs.touched[h]); err != nil {
			return err
		}
	}
	fs.disk.Flush()
	if err := fs.writeJSB(0, 0); err != nil {
		return err
	}
	fs.disk.Flush()
	fs.TxCommits++
	fs.begin()
	return nil
}

func (fs *FS) writeJSB(committed uint32, n uint32) error {
	jsb := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint32(jsb[0:], jMagic)
	le.PutUint32(jsb[4:], committed)
	le.PutUint64(jsb[8:], fs.jseq)
	le.PutUint32(jsb[16:], n)
	return fs.disk.Write(fs.geo.journalBlk, jsb)
}

func (fs *FS) replay() error {
	jsb := make([]byte, blockSize)
	if err := fs.disk.Read(fs.geo.journalBlk, jsb); err != nil {
		return err
	}
	le := binary.LittleEndian
	if le.Uint32(jsb[0:]) != jMagic {
		return nil // fresh journal, nothing recorded yet
	}
	fs.jseq = le.Uint64(jsb[8:])
	if le.Uint32(jsb[4:]) == 0 {
		return nil
	}
	n := le.Uint32(jsb[16:])
	if uint64(n)+2 > fs.geo.journalLen {
		return fmt.Errorf("%w: journal tx of %d blocks", ErrCorrupt, n)
	}
	desc := make([]byte, blockSize)
	if err := fs.disk.Read(fs.geo.journalBlk+1, desc); err != nil {
		return err
	}
	if le.Uint32(desc[0:]) != n {
		return fmt.Errorf("%w: journal descriptor mismatch", ErrCorrupt)
	}
	img := make([]byte, blockSize)
	for i := uint32(0); i < n; i++ {
		home := le.Uint64(desc[4+8*i:])
		if home >= fs.geo.nblocks {
			return fmt.Errorf("%w: journal home %d", ErrCorrupt, home)
		}
		if err := fs.disk.Read(fs.geo.journalBlk+2+uint64(i), img); err != nil {
			return err
		}
		if err := fs.disk.Write(home, img); err != nil {
			return err
		}
	}
	fs.disk.Flush()
	if err := fs.writeJSB(0, 0); err != nil {
		return err
	}
	fs.disk.Flush()
	return nil
}

// ---- Bitmap allocation ----

// setBitmapBit sets/clears bit idx in the bitmap starting at block base.
func (fs *FS) setBitmapBit(base uint64, blkOff uint64, idx uint64, v bool) error {
	b := base + blkOff + idx/(8*blockSize)
	img, err := fs.txBlock(b)
	if err != nil {
		return err
	}
	bit := idx % (8 * blockSize)
	if v {
		img[bit/8] |= 1 << (bit % 8)
	} else {
		img[bit/8] &^= 1 << (bit % 8)
	}
	return nil
}

// testBitmapBit reads a bitmap bit through the transaction view.
func (fs *FS) testBitmapBit(base uint64, idx uint64) (bool, error) {
	b := base + idx/(8*blockSize)
	img, err := fs.txBlock(b)
	if err != nil {
		return false, err
	}
	bit := idx % (8 * blockSize)
	return img[bit/8]&(1<<(bit%8)) != 0, nil
}

// allocBlock finds and marks a free data block.
func (fs *FS) allocBlock() (uint64, error) {
	total := fs.geo.nblocks - fs.geo.dataStart
	for i := uint64(0); i < total; i++ {
		cand := fs.geo.dataStart + (fs.blkCur+i)%total
		used, err := fs.testBitmapBit(fs.geo.blkBmapBlk, cand)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.setBitmapBit(fs.geo.blkBmapBlk, 0, cand, true); err != nil {
				return 0, err
			}
			fs.blkCur = (fs.blkCur + i + 1) % total
			return cand, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) freeBlock(b uint64) error {
	return fs.setBitmapBit(fs.geo.blkBmapBlk, 0, b, false)
}

// allocInode finds and marks a free inode.
func (fs *FS) allocInode() (vfs.Ino, error) {
	for i := uint32(0); i < fs.geo.ninodes; i++ {
		cand := (fs.inoCur+i)%fs.geo.ninodes + 1
		if cand == rootIno {
			continue
		}
		used, err := fs.testBitmapBit(fs.geo.inoBmapBlk, uint64(cand))
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.setBitmapBit(fs.geo.inoBmapBlk, 0, uint64(cand), true); err != nil {
				return 0, err
			}
			fs.inoCur = cand % fs.geo.ninodes
			return vfs.Ino(cand), nil
		}
	}
	return 0, ErrNoInodes
}

// ---- Inodes ----

// inodeImage returns the mutable 256-byte inode record inside its table
// block's transaction image.
func (fs *FS) inodeImage(ino vfs.Ino) ([]byte, error) {
	if ino == 0 || uint32(ino) > fs.geo.ninodes {
		return nil, vfs.ErrNotExist
	}
	idx := uint64(ino) - 1
	blk := fs.geo.itableBlk + idx/inodesPerB
	img, err := fs.txBlock(blk)
	if err != nil {
		return nil, err
	}
	off := (idx % inodesPerB) * inodeSize
	return img[off : off+inodeSize], nil
}

// readInode reads an inode without joining the transaction.
func (fs *FS) readInode(ino vfs.Ino, buf []byte) ([]byte, error) {
	if ino == 0 || uint32(ino) > fs.geo.ninodes {
		return nil, vfs.ErrNotExist
	}
	idx := uint64(ino) - 1
	blk := fs.geo.itableBlk + idx/inodesPerB
	if img, ok := fs.touched[blk]; ok {
		off := (idx % inodesPerB) * inodeSize
		return img[off : off+inodeSize], nil
	}
	if err := fs.disk.Read(blk, buf); err != nil {
		return nil, err
	}
	off := (idx % inodesPerB) * inodeSize
	return buf[off : off+inodeSize], nil
}

func initInode(rec []byte, mode uint32, isDir bool) {
	for i := range rec {
		rec[i] = 0
	}
	le := binary.LittleEndian
	flags := uint32(0)
	if isDir {
		flags = 1
	}
	le.PutUint32(rec[iMode:], mode)
	le.PutUint32(rec[iFlags:], flags)
	le.PutUint32(rec[iNlink:], 1)
	le.PutUint64(rec[iMtime:], uint64(time.Now().UnixNano()))
}

func inodeIsDir(rec []byte) bool { return binary.LittleEndian.Uint32(rec[iFlags:])&1 != 0 }
func inodeSizeOf(rec []byte) uint64 {
	return binary.LittleEndian.Uint64(rec[iSize:])
}
func inodeLive(rec []byte) bool { return binary.LittleEndian.Uint32(rec[iNlink:]) > 0 }
