package extfs

import (
	"encoding/binary"
	"sort"
	"time"

	"github.com/aerie-fs/aerie/internal/vfs"
)

// Directory blocks hold fixed 64-byte slots: [u32 ino][u8 namelen][name].
// Slot ino 0 is free. Directory contents are metadata: modifications join
// the journal transaction.

// Root implements vfs.FileSystem.
func (fs *FS) Root() vfs.Ino { return rootIno }

// dirScan walks dir's slots, calling fn(blockIdx, slot, ino, name); fn
// returning false stops.
func (fs *FS) dirScan(dir vfs.Ino, fn func(blkIdx uint64, slot int, ino vfs.Ino, name string) bool) error {
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(dir, buf)
	if err != nil {
		return err
	}
	if !inodeLive(rec) {
		return vfs.ErrNotExist
	}
	if !inodeIsDir(rec) {
		return vfs.ErrNotDir
	}
	size := inodeSizeOf(rec)
	nblocks := (size + blockSize - 1) / blockSize
	le := binary.LittleEndian
	data := make([]byte, blockSize)
	for b := uint64(0); b < nblocks; b++ {
		phys, err := fs.mapBlock(dir, b, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		img, err := fs.readView(phys, data)
		if err != nil {
			return err
		}
		for s := 0; s < dirSlotsPer; s++ {
			off := s * dirSlot
			ino := vfs.Ino(le.Uint32(img[off:]))
			if ino == 0 {
				continue
			}
			nl := int(img[off+4])
			if nl > maxName {
				return ErrCorrupt
			}
			name := string(img[off+5 : off+5+nl])
			if !fn(b, s, ino, name) {
				return nil
			}
		}
	}
	return nil
}

// Lookup implements vfs.FileSystem.
func (fs *FS) Lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lookupLocked(dir, name)
}

func (fs *FS) lookupLocked(dir vfs.Ino, name string) (vfs.Ino, error) {
	var found vfs.Ino
	err := fs.dirScan(dir, func(_ uint64, _ int, ino vfs.Ino, n string) bool {
		if n == name {
			found = ino
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, vfs.ErrNotExist
	}
	return found, nil
}

// dirAddEntry inserts (name -> ino) into dir inside the current
// transaction, extending the directory by one block when full.
func (fs *FS) dirAddEntry(dir vfs.Ino, name string, ino vfs.Ino) error {
	if len(name) > maxName {
		return ErrNameLen
	}
	le := binary.LittleEndian
	rec, err := fs.inodeImage(dir)
	if err != nil {
		return err
	}
	size := inodeSizeOf(rec)
	nblocks := (size + blockSize - 1) / blockSize
	// Find a free slot.
	for b := uint64(0); b < nblocks; b++ {
		phys, err := fs.mapBlock(dir, b, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		img, err := fs.txBlock(phys)
		if err != nil {
			return err
		}
		for s := 0; s < dirSlotsPer; s++ {
			off := s * dirSlot
			if le.Uint32(img[off:]) == 0 {
				writeSlot(img, off, ino, name)
				return nil
			}
		}
	}
	// Extend by a block.
	phys, err := fs.mapBlock(dir, nblocks, true)
	if err != nil {
		return err
	}
	img := fs.txBlockZero(phys)
	writeSlot(img, 0, ino, name)
	le.PutUint64(rec[iSize:], (nblocks+1)*blockSize)
	return nil
}

func writeSlot(img []byte, off int, ino vfs.Ino, name string) {
	binary.LittleEndian.PutUint32(img[off:], uint32(ino))
	img[off+4] = byte(len(name))
	copy(img[off+5:], name)
}

// dirRemoveEntry clears name's slot inside the current transaction.
func (fs *FS) dirRemoveEntry(dir vfs.Ino, name string) (vfs.Ino, error) {
	var blkIdx uint64
	var slot int
	var victim vfs.Ino
	if err := fs.dirScan(dir, func(b uint64, s int, ino vfs.Ino, n string) bool {
		if n == name {
			blkIdx, slot, victim = b, s, ino
			return false
		}
		return true
	}); err != nil {
		return 0, err
	}
	if victim == 0 {
		return 0, vfs.ErrNotExist
	}
	phys, err := fs.mapBlock(dir, blkIdx, false)
	if err != nil {
		return 0, err
	}
	img, err := fs.txBlock(phys)
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint32(img[slot*dirSlot:], 0)
	return victim, nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(dir vfs.Ino, name string, mode uint32, isDir bool) (vfs.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.lookupLocked(dir, name); err == nil {
		return 0, vfs.ErrExist
	}
	fs.begin()
	ino, err := fs.allocInode()
	if err != nil {
		return 0, err
	}
	if err := fs.setBitmapBit(fs.geo.inoBmapBlk, 0, uint64(ino), true); err != nil {
		return 0, err
	}
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return 0, err
	}
	initInode(rec, mode, isDir)
	if err := fs.dirAddEntry(dir, name, ino); err != nil {
		return 0, err
	}
	if err := fs.commit(); err != nil {
		return 0, err
	}
	return ino, nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(dir vfs.Ino, name string, rmdir bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookupLocked(dir, name)
	if err != nil {
		return err
	}
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(ino, buf)
	if err != nil {
		return err
	}
	isDir := inodeIsDir(rec)
	if rmdir {
		if !isDir {
			return vfs.ErrNotDir
		}
		empty := true
		if err := fs.dirScan(ino, func(uint64, int, vfs.Ino, string) bool {
			empty = false
			return false
		}); err != nil {
			return err
		}
		if !empty {
			return vfs.ErrNotEmpty
		}
	} else if isDir {
		return vfs.ErrIsDir
	}
	fs.begin()
	if _, err := fs.dirRemoveEntry(dir, name); err != nil {
		return err
	}
	if err := fs.destroyInode(ino); err != nil {
		return err
	}
	return fs.commit()
}

func (fs *FS) destroyInode(ino vfs.Ino) error {
	if err := fs.freeFileBlocks(ino); err != nil {
		return err
	}
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(rec[iNlink:], 0)
	return fs.setBitmapBit(fs.geo.inoBmapBlk, 0, uint64(ino), false)
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.lookupLocked(sdir, sname); err != nil {
		return err
	}
	fs.begin()
	ino, err := fs.dirRemoveEntry(sdir, sname)
	if err != nil {
		return err
	}
	// Overwrite semantics.
	if old, err := fs.dirRemoveEntry(ddir, dname); err == nil {
		if err := fs.destroyInode(old); err != nil {
			return err
		}
	}
	if err := fs.dirAddEntry(ddir, dname, ino); err != nil {
		return err
	}
	return fs.commit()
}

// GetAttr implements vfs.FileSystem.
func (fs *FS) GetAttr(ino vfs.Ino) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(ino, buf)
	if err != nil {
		return vfs.Attr{}, err
	}
	if !inodeLive(rec) {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	le := binary.LittleEndian
	return vfs.Attr{
		Mode:  le.Uint32(rec[iMode:]),
		Size:  le.Uint64(rec[iSize:]),
		Nlink: le.Uint32(rec[iNlink:]),
		Mtime: int64(le.Uint64(rec[iMtime:])),
		IsDir: inodeIsDir(rec),
	}, nil
}

// SetMode implements vfs.FileSystem.
func (fs *FS) SetMode(ino vfs.Ino, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.begin()
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(rec[iMode:], mode)
	return fs.commit()
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(dir vfs.Ino) ([]vfs.NameIno, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []vfs.NameIno
	if err := fs.dirScan(dir, func(_ uint64, _ int, ino vfs.Ino, name string) bool {
		out = append(out, vfs.NameIno{Name: name, Ino: ino})
		return true
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadAt implements vfs.FileSystem.
func (fs *FS) ReadAt(ino vfs.Ino, p []byte, off uint64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(ino, buf)
	if err != nil {
		return 0, err
	}
	size := inodeSizeOf(rec)
	if off >= size {
		return 0, nil
	}
	if off+uint64(len(p)) > size {
		p = p[:size-off]
	}
	data := make([]byte, blockSize)
	read := 0
	for read < len(p) {
		cur := off + uint64(read)
		fileBlk := cur / blockSize
		inBlk := cur % blockSize
		chunk := int(blockSize - inBlk)
		if chunk > len(p)-read {
			chunk = len(p) - read
		}
		phys, err := fs.mapBlock(ino, fileBlk, false)
		if err != nil {
			return read, err
		}
		dst := p[read : read+chunk]
		if phys == 0 {
			for i := range dst {
				dst[i] = 0
			}
		} else {
			img, err := fs.readView(phys, data)
			if err != nil {
				return read, err
			}
			copy(dst, img[inBlk:inBlk+uint64(chunk)])
		}
		read += chunk
	}
	return read, nil
}

// WriteAt implements vfs.FileSystem: ordered-data journaling — data blocks
// are written and flushed to the device before the metadata transaction
// (allocations, size update) commits.
func (fs *FS) WriteAt(ino vfs.Ino, p []byte, off uint64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.begin()
	data := make([]byte, blockSize)
	written := 0
	for written < len(p) {
		cur := off + uint64(written)
		fileBlk := cur / blockSize
		inBlk := cur % blockSize
		chunk := int(blockSize - inBlk)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		phys, err := fs.mapBlock(ino, fileBlk, true)
		if err != nil {
			return written, err
		}
		if chunk == blockSize {
			if err := fs.disk.Write(phys, p[written:written+chunk]); err != nil {
				return written, err
			}
		} else {
			if err := fs.disk.Read(phys, data); err != nil {
				return written, err
			}
			copy(data[inBlk:], p[written:written+chunk])
			if err := fs.disk.Write(phys, data); err != nil {
				return written, err
			}
		}
		written += chunk
	}
	// Ordered mode: data reaches the device before the commit record.
	fs.disk.Flush()
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return written, err
	}
	le := binary.LittleEndian
	if end := off + uint64(written); end > inodeSizeOf(rec) {
		le.PutUint64(rec[iSize:], end)
	}
	le.PutUint64(rec[iMtime:], uint64(time.Now().UnixNano()))
	if err := fs.commit(); err != nil {
		return written, err
	}
	return written, nil
}

// Truncate implements vfs.FileSystem.
func (fs *FS) Truncate(ino vfs.Ino, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.begin()
	rec, err := fs.inodeImage(ino)
	if err != nil {
		return err
	}
	le := binary.LittleEndian
	old := inodeSizeOf(rec)
	if size == 0 && old > 0 {
		if err := fs.freeFileBlocks(ino); err != nil {
			return err
		}
	} else if size < old {
		// Partial truncate keeps blocks allocated (they are reclaimed at
		// unlink or truncate-to-zero, like several simple file systems)
		// but must zero the exposed tail so re-extension reads zeros.
		zero := make([]byte, blockSize)
		data := make([]byte, blockSize)
		for cur := size; cur < old; {
			fileBlk := cur / blockSize
			inBlk := cur % blockSize
			phys, err := fs.mapBlock(ino, fileBlk, false)
			if err != nil {
				return err
			}
			if phys != 0 {
				if inBlk == 0 {
					if err := fs.disk.Write(phys, zero); err != nil {
						return err
					}
				} else {
					if err := fs.disk.Read(phys, data); err != nil {
						return err
					}
					for i := inBlk; i < blockSize; i++ {
						data[i] = 0
					}
					if err := fs.disk.Write(phys, data); err != nil {
						return err
					}
				}
			}
			cur = (fileBlk + 1) * blockSize
		}
		fs.disk.Flush()
	}
	le.PutUint64(rec[iSize:], size)
	return fs.commit()
}

// Sync implements vfs.FileSystem: per-op journaling means metadata is
// already durable; this drains the device buffers.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.disk.Flush()
	return nil
}
