package extfs

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/aerie-fs/aerie/internal/blockdev"
)

func mkfs(t *testing.T, mode Mode, track bool) (*FS, *blockdev.Disk) {
	t.Helper()
	disk := blockdev.New(8192, nil, track)
	fs, err := Mkfs(disk, mode)
	if err != nil {
		t.Fatal(err)
	}
	return fs, disk
}

func TestMkfsAndRemount(t *testing.T) {
	for _, mode := range []Mode{Ext3, Ext4} {
		t.Run(mode.String(), func(t *testing.T) {
			fs, disk := mkfs(t, mode, false)
			ino, err := fs.Create(fs.Root(), "hello", 0644, false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(ino, []byte("persisted"), 0); err != nil {
				t.Fatal(err)
			}
			fs2, err := Mount(disk)
			if err != nil {
				t.Fatal(err)
			}
			if fs2.Mode() != mode {
				t.Fatalf("mode = %v", fs2.Mode())
			}
			got, err := fs2.Lookup(fs2.Root(), "hello")
			if err != nil || got != ino {
				t.Fatalf("lookup after remount: %v %v", got, err)
			}
			buf := make([]byte, 9)
			if _, err := fs2.ReadAt(got, buf, 0); err != nil || string(buf) != "persisted" {
				t.Fatalf("read after remount: %q %v", buf, err)
			}
		})
	}
}

// TestJournalCrashConsistency crashes the device at arbitrary points within
// a metadata-heavy run and verifies that remount always yields a file
// system where every pre-crash committed operation is visible and intact.
func TestJournalCrashConsistency(t *testing.T) {
	for _, mode := range []Mode{Ext3, Ext4} {
		t.Run(mode.String(), func(t *testing.T) {
			fs, disk := mkfs(t, mode, true)
			// Commit a batch of creates with content; each op's commit
			// makes it durable.
			var want []string
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("file-%02d", i)
				ino, err := fs.Create(fs.Root(), name, 0644, false)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fs.WriteAt(ino, []byte(name), 0); err != nil {
					t.Fatal(err)
				}
				want = append(want, name)
			}
			disk.Crash()
			fs2, err := Mount(disk)
			if err != nil {
				t.Fatalf("mount after crash: %v", err)
			}
			for _, name := range want {
				ino, err := fs2.Lookup(fs2.Root(), name)
				if err != nil {
					t.Fatalf("%s lost in crash: %v", name, err)
				}
				buf := make([]byte, len(name))
				if _, err := fs2.ReadAt(ino, buf, 0); err != nil || string(buf) != name {
					t.Fatalf("%s content after crash: %q %v", name, buf, err)
				}
			}
			// The recovered FS keeps working.
			if _, err := fs2.Create(fs2.Root(), "post-crash", 0644, false); err != nil {
				t.Fatalf("create after recovery: %v", err)
			}
		})
	}
}

func TestDeleteReclaimsBlocks(t *testing.T) {
	fs, _ := mkfs(t, Ext4, false)
	// Fill a large file, delete it, and make sure the space is reusable
	// repeatedly (no block leaks).
	payload := bytes.Repeat([]byte("x"), 1<<20)
	for round := 0; round < 12; round++ {
		ino, err := fs.Create(fs.Root(), "big", 0644, false)
		if err != nil {
			t.Fatalf("round %d create: %v", round, err)
		}
		if _, err := fs.WriteAt(ino, payload, 0); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		if err := fs.Unlink(fs.Root(), "big", false); err != nil {
			t.Fatalf("round %d unlink: %v", round, err)
		}
	}
}

func TestExt3IndirectBoundaries(t *testing.T) {
	fs, _ := mkfs(t, Ext3, false)
	ino, err := fs.Create(fs.Root(), "deep", 0644, false)
	if err != nil {
		t.Fatal(err)
	}
	// Write single bytes at direct, indirect, and double-indirect
	// boundaries.
	offsets := []uint64{
		0,
		11 * blockSize,               // last direct
		12 * blockSize,               // first indirect
		(12 + 511) * blockSize,       // last single-indirect
		(12 + 512) * blockSize,       // first double-indirect
		(12 + 512 + 700) * blockSize, // inside double-indirect
	}
	for i, off := range offsets {
		tag := []byte{byte(i + 1)}
		if _, err := fs.WriteAt(ino, tag, off); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	for i, off := range offsets {
		buf := make([]byte, 1)
		if _, err := fs.ReadAt(ino, buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("offset %d = %d, want %d", off, buf[0], i+1)
		}
	}
}

func TestExt4ExtentMerging(t *testing.T) {
	fs, _ := mkfs(t, Ext4, false)
	ino, err := fs.Create(fs.Root(), "seq", 0644, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential writes should coalesce into few extents rather than
	// spilling (this is ext4's layout advantage).
	payload := bytes.Repeat([]byte("s"), 64*blockSize)
	if _, err := fs.WriteAt(ino, payload, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	rec, err := fs.readInode(ino, buf)
	if err != nil {
		t.Fatal(err)
	}
	nIn := uint32(rec[e4NInline]) // low byte is enough for small counts
	nSp := uint32(rec[e4NSpill])
	if nSp != 0 || nIn > 3 {
		t.Fatalf("sequential write fragmented: inline=%d spill=%d", nIn, nSp)
	}
}

func TestOutOfSpace(t *testing.T) {
	disk := blockdev.New(600, nil, false) // tiny disk
	fs, err := Mkfs(disk, Ext4)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create(fs.Root(), "hog", 0644, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), blockSize)
	var werr error
	for i := 0; i < 1000; i++ {
		if _, werr = fs.WriteAt(ino, payload, uint64(i)*blockSize); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("tiny disk never filled")
	}
}
