// Package flatfs implements FlatFS (§6.2): a specialized file-system
// interface for applications that store many small files in one directory
// (mail stores, proxy caches, wikis). It replaces the hierarchical
// namespace with a single flat collection mapping keys to single-extent
// mFiles, and replaces open/read/write/close with put/get/erase — a get or
// put locates the file and copies it in a single operation, with no open-
// file state.
//
// Locking (§6.2): a single lock covers the whole collection and
// fine-grained locks cover the hash-table buckets. Operations take the
// collection lock in intent mode (IS for get, IX for put/erase) plus the
// bucket lock (S or X) for their key, so independent keys proceed in
// parallel — the scalability fix for PXFS's single-directory bottleneck.
// An operation that would rehash the table (growth or tombstone GC)
// escalates to the whole-collection write lock first, because a rehash
// moves every bucket.
//
// FlatFS and PXFS share the same layout: the flat namespace is an ordinary
// collection (by default the volume root), which PXFS sees as a single
// global directory (§6.2 Discussion).
package flatfs

import (
	"errors"
	"fmt"
	"time"

	"github.com/aerie-fs/aerie/internal/fsproto"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/lockservice"
	"github.com/aerie-fs/aerie/internal/obs"
	"github.com/aerie-fs/aerie/internal/shard"
	"github.com/aerie-fs/aerie/internal/sobj"
)

// Errors.
var (
	ErrNotFound = errors.New("flatfs: key not found")
	ErrBadKey   = errors.New("flatfs: bad key")
)

// Options tunes a FlatFS instance.
type Options struct {
	// Namespace is the flat collection; zero means the volume root.
	Namespace sobj.OID
	// Perm is the mode for created files (all FlatFS files share
	// permissions, §6.2); default 0644.
	Perm uint32
	// GrowHeadroom is how close to the rehash threshold the table may get
	// before writes escalate to the whole-collection lock (default 8).
	GrowHeadroom uint32
}

// FS is a FlatFS client instance.
type FS struct {
	s    *libfs.Session
	ns   sobj.OID
	opts Options

	// Stats.
	Escalations int64

	// Metrics resolved once in New; all nil when observability is off.
	obsSink  *obs.Sink
	obsOp    *obs.Histogram
	obsPut   *obs.Histogram
	obsGet   *obs.Histogram
	obsErase *obs.Histogram
}

// New creates a FlatFS view over session s.
func New(s *libfs.Session, opts Options) *FS {
	if opts.Namespace == 0 {
		opts.Namespace = s.Root
	}
	if opts.Perm == 0 {
		opts.Perm = 0644
	}
	if opts.GrowHeadroom == 0 {
		opts.GrowHeadroom = 8
	}
	fs := &FS{s: s, ns: opts.Namespace, opts: opts}
	sink := s.Obs()
	fs.obsSink = sink
	fs.obsOp = sink.Histogram("flatfs.op")
	fs.obsPut = sink.Histogram("flatfs.op.put")
	fs.obsGet = sink.Histogram("flatfs.op.get")
	fs.obsErase = sink.Histogram("flatfs.op.erase")
	return fs
}

// observe records one completed operation (see pxfs.FS.observe for the
// defer idiom; disabled observability makes this a single branch).
func (fs *FS) observe(op string, h *obs.Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	d := time.Since(t0)
	h.Observe(int64(d))
	fs.obsOp.Observe(int64(d))
	fs.obsSink.Trace("flatfs", op, t0, d)
}

// Session returns the underlying libFS session.
func (fs *FS) Session() *libfs.Session { return fs.s }

// Namespace returns the flat collection's OID (shard 0's on a sharded
// volume; see nsFor).
func (fs *FS) Namespace() sobj.OID { return fs.ns }

// nsFor returns the namespace collection holding key. On a sharded volume
// using the default (root) namespace, keys hash across the shards' root
// collections — every operation on a key is then a single-shard batch on
// that key's shard, and independent keys on different shards contend on
// nothing at all. A custom namespace lives on one shard and is used as-is.
func (fs *FS) nsFor(key []byte) sobj.OID {
	if n := fs.s.Shards(); n > 1 && fs.opts.Namespace == fs.s.Root {
		return fs.s.ShardRoot(shard.Bucket(key, n))
	}
	return fs.ns
}

// namespaces lists every collection this instance stores keys in.
func (fs *FS) namespaces() []sobj.OID {
	n := fs.s.Shards()
	if n <= 1 || fs.opts.Namespace != fs.s.Root {
		return []sobj.OID{fs.ns}
	}
	out := make([]sobj.OID, n)
	for i := range out {
		out[i] = fs.s.ShardRoot(i)
	}
	return out
}

func checkKey(key string) error {
	if key == "" || len(key) > sobj.MaxKeyLen {
		return fmt.Errorf("%w: %d bytes", ErrBadKey, len(key))
	}
	return nil
}

// lockWrite acquires the locks for a mutating operation: normally the
// collection intent-write lock plus the key's bucket lock in write mode;
// when the table is near a rehash, the whole-collection write lock
// (hierarchical, so it covers the files too).
func (fs *FS) lockWrite(ns sobj.OID, key []byte) (cover uint64, keyArg []byte, unlock func(), err error) {
	// The grow check and bucket-lock derivation walk the live table; with a
	// pipelined window our own earlier batches may be mid-apply into it.
	fs.s.ReadBarrier()
	col, err := sobj.OpenCollection(fs.s.Mem, ns)
	if err != nil {
		return 0, nil, nil, err
	}
	grow, err := col.NeedsGrow(fs.opts.GrowHeadroom + uint32(fs.s.StagedInserts(ns)))
	if err != nil {
		return 0, nil, nil, err
	}
	nsLock := ns.Lock()
	if grow {
		fs.Escalations++
		if err := fs.s.Clerk.Acquire(nsLock, lockservice.X, true); err != nil {
			return 0, nil, nil, err
		}
		return nsLock, nil, func() { fs.s.Clerk.Release(nsLock, lockservice.X) }, nil
	}
	if err := fs.s.Clerk.Acquire(nsLock, lockservice.IX, false); err != nil {
		return 0, nil, nil, err
	}
	// The bucket lock is derived from the current table, which cannot
	// move while we hold IX (a rehash needs X).
	bl, err := col.BucketLock(key)
	if err != nil {
		fs.s.Clerk.Release(nsLock, lockservice.IX)
		return 0, nil, nil, err
	}
	if err := fs.s.Clerk.Acquire(bl, lockservice.X, false); err != nil {
		fs.s.Clerk.Release(nsLock, lockservice.IX)
		return 0, nil, nil, err
	}
	return bl, key, func() {
		fs.s.Clerk.Release(bl, lockservice.X)
		fs.s.Clerk.Release(nsLock, lockservice.IX)
	}, nil
}

// Put stores data under key, creating or overwriting the file in a single
// operation.
func (fs *FS) Put(key string, data []byte) error {
	defer fs.observe("put", fs.obsPut, fs.obsOp.StartTimer())
	if err := checkKey(key); err != nil {
		return err
	}
	kb := []byte(key)
	ns := fs.nsFor(kb)
	cover, keyArg, unlock, err := fs.lockWrite(ns, kb)
	if err != nil {
		return err
	}
	defer unlock()
	oid, found, err := fs.s.DirLookup(ns, kb)
	if err != nil {
		return err
	}
	if found {
		if len(data) > 0 {
			if _, err := fs.s.FileWriteKeyed(oid, data, 0, cover, keyArg); err != nil {
				return err
			}
		}
		// Overwrite semantics: the file is exactly data.
		return fs.s.FileSetSizeKeyed(oid, uint64(len(data)), cover, keyArg)
	}
	capacity := uint64(len(data))
	if capacity < 64 {
		capacity = 64
	}
	// The file is staged on its namespace's shard, so the create+write+
	// insert triple stays a single-shard batch.
	oid, err = fs.s.CreateMFileSingleStagedOn(fs.s.ShardOf(ns), fs.opts.Perm, capacity)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := fs.s.FileWriteKeyed(oid, data, 0, cover, keyArg); err != nil {
			return err
		}
	}
	if keyArg != nil {
		return fs.s.DirInsertFlat(ns, kb, oid, cover)
	}
	return fs.s.DirInsert(ns, kb, oid, cover)
}

// Get returns the contents stored under key as a fresh buffer. Prefer
// GetInto on hot paths: the paper's get copies the file directly into an
// application buffer (§6.2), and allocating per call costs more than the
// copy itself.
func (fs *FS) Get(key string) ([]byte, error) {
	return fs.GetInto(key, nil)
}

// GetInto returns the contents stored under key, reusing buf's storage when
// it is large enough: locate the file in memory and copy it to the
// application's buffer in one operation (§6.2).
func (fs *FS) GetInto(key string, buf []byte) ([]byte, error) {
	defer fs.observe("get", fs.obsGet, fs.obsOp.StartTimer())
	if err := checkKey(key); err != nil {
		return nil, err
	}
	kb := []byte(key)
	ns := fs.nsFor(kb)
	nsLock := ns.Lock()
	if err := fs.s.Clerk.Acquire(nsLock, lockservice.IS, false); err != nil {
		return nil, err
	}
	defer fs.s.Clerk.Release(nsLock, lockservice.IS)
	fs.s.ReadBarrier() // bucket derivation reads the live table
	col, err := sobj.OpenCollection(fs.s.Mem, ns)
	if err != nil {
		return nil, err
	}
	bl, err := col.BucketLock(kb)
	if err != nil {
		return nil, err
	}
	if err := fs.s.Clerk.Acquire(bl, lockservice.S, false); err != nil {
		return nil, err
	}
	defer fs.s.Clerk.Release(bl, lockservice.S)
	oid, found, err := fs.s.DirLookup(ns, kb)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	size, err := fs.s.FileSize(oid)
	if err != nil {
		return nil, err
	}
	if uint64(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := fs.s.FileRead(oid, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Erase removes key and reclaims its file's storage.
func (fs *FS) Erase(key string) error {
	defer fs.observe("erase", fs.obsErase, fs.obsOp.StartTimer())
	if err := checkKey(key); err != nil {
		return err
	}
	kb := []byte(key)
	ns := fs.nsFor(kb)
	cover, keyArg, unlock, err := fs.lockWrite(ns, kb)
	if err != nil {
		return err
	}
	defer unlock()
	victim, found, err := fs.s.DirLookup(ns, kb)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if keyArg != nil {
		return fs.s.DirRemoveFlat(ns, kb, cover, victim)
	}
	return fs.s.DirRemove(ns, kb, cover, victim)
}

// Has reports whether key exists.
func (fs *FS) Has(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	kb := []byte(key)
	_, found, err := fs.s.DirLookup(fs.nsFor(kb), kb)
	return found, err
}

// Keys lists all keys (whole-namespace read lock, per shard namespace).
func (fs *FS) Keys() ([]string, error) {
	var keys []string
	for _, ns := range fs.namespaces() {
		nsLock := ns.Lock()
		if err := fs.s.Clerk.Acquire(nsLock, lockservice.S, false); err != nil {
			return nil, err
		}
		err := fs.s.DirIterate(ns, func(key []byte, _ sobj.OID) error {
			keys = append(keys, string(key))
			return nil
		})
		fs.s.Clerk.Release(nsLock, lockservice.S)
		if err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// Count returns the number of stored keys (live entries plus this client's
// staged inserts).
func (fs *FS) Count() (int, error) {
	n := 0
	for _, ns := range fs.namespaces() {
		if err := fs.s.DirIterate(ns, func([]byte, sobj.OID) error {
			n++
			return nil
		}); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Sync ships buffered metadata updates.
func (fs *FS) Sync() error { return fs.s.Sync() }

// Statfs reports volume-wide space and object accounting: total and free
// bytes, bytes held by in-flight admission reservations, and the live
// object count.
func (fs *FS) Statfs() (fsproto.StatfsReply, error) { return fs.s.Statfs() }
