package flatfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/aerie-fs/aerie/internal/core"
	"github.com/aerie-fs/aerie/internal/libfs"
	"github.com/aerie-fs/aerie/internal/pxfs"
)

func newSys(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.New(core.Options{
		ArenaSize:      64 << 20,
		Lease:          time.Second,
		AcquireTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func newFlat(t *testing.T, sys *core.System, uid uint32) *FS {
	t.Helper()
	s, err := sys.NewSession(libfs.Config{UID: uid, BatchLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return New(s, Options{})
}

func TestPutGetEraseRoundTrip(t *testing.T) {
	fs := newFlat(t, newSys(t), 1000)
	if err := fs.Put("msg:1", []byte("hello flat world")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("msg:1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello flat world" {
		t.Fatalf("get = %q", got)
	}
	if err := fs.Erase("msg:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("msg:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after erase: %v", err)
	}
	if err := fs.Erase("msg:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double erase: %v", err)
	}
}

func TestPutOverwriteGrowAndShrink(t *testing.T) {
	fs := newFlat(t, newSys(t), 1000)
	if err := fs.Put("k", []byte("short")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("grow "), 10000) // outgrows the first extent
	if err := fs.Put("k", big); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("k")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after grow: %d bytes, err %v", len(got), err)
	}
	if err := fs.Put("k", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Get("k")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("after shrink: %q, err %v", got, err)
	}
}

func TestEmptyValueAndBadKeys(t *testing.T) {
	fs := newFlat(t, newSys(t), 1000)
	if err := fs.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty get: %q %v", got, err)
	}
	if err := fs.Put("", []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	long := make([]byte, 500)
	if err := fs.Put(string(long), []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("long key: %v", err)
	}
}

func TestManyKeysAcrossRehash(t *testing.T) {
	fs := newFlat(t, newSys(t), 1000)
	const n = 500 // crosses several growth escalations
	for i := 0; i < n; i++ {
		if err := fs.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("value %d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.Escalations == 0 {
		t.Fatal("growth never escalated to the collection lock")
	}
	for i := 0; i < n; i += 17 {
		got, err := fs.Get(fmt.Sprintf("key-%04d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(got) != fmt.Sprintf("value %d", i) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
	keys, err := fs.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("keys = %d, want %d", len(keys), n)
	}
}

func TestHasAndCount(t *testing.T) {
	fs := newFlat(t, newSys(t), 1000)
	_ = fs.Put("a", []byte("1"))
	_ = fs.Put("b", []byte("2"))
	if ok, _ := fs.Has("a"); !ok {
		t.Fatal("missing a")
	}
	if ok, _ := fs.Has("zz"); ok {
		t.Fatal("phantom key")
	}
	if n, _ := fs.Count(); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestTwoClientsShareFlatNamespace(t *testing.T) {
	sys := newSys(t)
	a := newFlat(t, sys, 1000)
	b := newFlat(t, sys, 1001)
	if err := a.Put("from-a", []byte("A")); err != nil {
		t.Fatal(err)
	}
	// b's access revokes a's locks, shipping the update.
	got, err := b.Get("from-a")
	if err != nil || string(got) != "A" {
		t.Fatalf("b get: %q %v", got, err)
	}
	if err := b.Put("from-a", []byte("B was here")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Get("from-a")
	if err != nil || string(got) != "B was here" {
		t.Fatalf("a reread: %q %v", got, err)
	}
}

func TestConcurrentPutsDistinctKeys(t *testing.T) {
	// Threads within one client writing distinct keys proceed under
	// bucket locks (the §6.2 scalability mechanism).
	fs := newFlat(t, newSys(t), 1000)
	// Preload so the table is big enough that keys spread over buckets.
	for i := 0; i < 64; i++ {
		if err := fs.Put(fmt.Sprintf("pre-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := fs.Put(k, []byte(k)); err != nil {
					errs <- err
					return
				}
				got, err := fs.Get(k)
				if err != nil || string(got) != k {
					errs <- fmt.Errorf("get %s = %q %v", k, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("w%d-k%d", w, i)
			if got, err := fs.Get(k); err != nil || string(got) != k {
				t.Fatalf("final get %s: %q %v", k, got, err)
			}
		}
	}
}

func TestFlatAndPXFSShareLayout(t *testing.T) {
	// §6.2: the flat namespace appears to PXFS as a single global
	// directory; both interfaces access the same files.
	sys := newSys(t)
	s, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	flat := New(s, Options{})
	px := pxfs.New(s, pxfs.Options{})

	if err := flat.Put("crossover.txt", []byte("seen by both")); err != nil {
		t.Fatal(err)
	}
	if err := flat.Sync(); err != nil {
		t.Fatal(err)
	}
	// PXFS reads the same file through open/read.
	f, err := px.Open("/crossover.txt", pxfs.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := f.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	if string(buf) != "seen by both" {
		t.Fatalf("pxfs view: %q", buf)
	}
	_ = f.Close()
	// And PXFS-created files are gettable through FlatFS.
	pf, err := px.Create("/from-pxfs.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Write([]byte("posix file")); err != nil {
		t.Fatal(err)
	}
	_ = pf.Close()
	got, err := flat.Get("from-pxfs.txt")
	if err != nil || string(got) != "posix file" {
		t.Fatalf("flat view of pxfs file: %q %v", got, err)
	}
}

// TestCrashRecoveryFlat mirrors the PXFS crash test for the specialized
// interface: synced puts survive a machine crash byte-for-byte, unsynced
// churn vanishes cleanly, and fsck finds a consistent volume.
func TestCrashRecoveryFlat(t *testing.T) {
	sys, err := core.New(core.Options{
		ArenaSize:        64 << 20,
		TrackPersistence: true,
		Lease:            time.Second,
		AcquireTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSession(libfs.Config{UID: 1000, BatchLimit: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(s, Options{})
	durable := map[string][]byte{}
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("key-%02d", i%25)
		v := bytes.Repeat([]byte{byte(i)}, (i%40+1)*100)
		if err := fs.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		durable[k] = v
		if i%7 == 0 {
			if err := fs.Erase(k); err != nil {
				t.Fatal(err)
			}
			delete(durable, k)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced churn to be discarded by the crash.
	for i := 0; i < 10; i++ {
		_ = fs.Put(fmt.Sprintf("unsynced-%d", i), []byte("gone"))
	}
	if err := sys.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.TFS.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks != rep.RepairedBlocks {
		t.Fatalf("fsck: %v", rep)
	}
	s2, err := sys.NewSession(libfs.Config{UID: 1001})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fs2 := New(s2, Options{})
	for k, want := range durable {
		got, err := fs2.Get(k)
		if err != nil {
			t.Fatalf("synced key %s lost: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s corrupted after crash", k)
		}
	}
	n, err := fs2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(durable) {
		t.Fatalf("count after crash = %d, want %d", n, len(durable))
	}
}
