//go:build unix

package faultinject

import (
	"os"
	"syscall"
)

// killSelf delivers SIGKILL to this process: the unblockable, uncatchable
// signal, so nothing — not defers, not signal handlers, not atexit — runs
// after it. The final select covers the sliver between sending the signal
// and the kernel tearing the process down.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}
