package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Hit("x"); err != nil {
		t.Fatalf("nil injector Hit = %v", err)
	}
	if got := inj.TotalHits(); got != 0 {
		t.Fatalf("nil injector TotalHits = %d", got)
	}
	inj.Disable()
	inj.Enable()
}

func TestCountsAndPoints(t *testing.T) {
	inj := New()
	for i := 0; i < 3; i++ {
		if err := inj.Hit("a"); err != nil {
			t.Fatalf("Hit(a) = %v", err)
		}
	}
	if err := inj.Hit("b"); err != nil {
		t.Fatalf("Hit(b) = %v", err)
	}
	if got := inj.TotalHits(); got != 4 {
		t.Fatalf("TotalHits = %d, want 4", got)
	}
	c := inj.Counts()
	if c["a"] != 3 || c["b"] != 1 {
		t.Fatalf("Counts = %v", c)
	}
	pts := inj.Points()
	if len(pts) != 2 || pts[0] != "a" || pts[1] != "b" {
		t.Fatalf("Points = %v", pts)
	}
}

func TestFailAtNthHit(t *testing.T) {
	boom := errors.New("boom")
	inj := New()
	inj.FailAt("p", 3, boom)
	for n := 1; n <= 5; n++ {
		err := inj.Hit("p")
		if n == 3 {
			if !errors.Is(err, boom) {
				t.Fatalf("hit %d: err = %v, want boom", n, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: err = %v, want nil", n, err)
		}
	}
}

func TestFailEveryHitDefaultsErrInjected(t *testing.T) {
	inj := New()
	inj.FailAt("p", 0, nil)
	for n := 0; n < 3; n++ {
		if err := inj.Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", n, err)
		}
	}
	if err := inj.Hit("other"); err != nil {
		t.Fatalf("other point: err = %v", err)
	}
}

func TestCrashAtRecoveredByRun(t *testing.T) {
	inj := New()
	inj.CrashAt("p", 2)
	var reached int
	crash, err := Run(func() error {
		for n := 0; n < 10; n++ {
			if e := inj.Hit("p"); e != nil {
				return e
			}
			reached++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run err = %v", err)
	}
	if crash == nil {
		t.Fatal("Run crash = nil, want crash")
	}
	if crash.Point != "p" || crash.PointHit != 2 || crash.Seq != 2 {
		t.Fatalf("crash = %+v", crash)
	}
	if reached != 1 {
		t.Fatalf("reached = %d, want 1 (second hit crashed)", reached)
	}
	if crash.Error() == "" {
		t.Fatal("crash.Error empty")
	}
}

func TestCrashAtGlobalOrdinal(t *testing.T) {
	inj := New()
	inj.CrashAtGlobal(3)
	var seen []string
	crash, err := Run(func() error {
		for _, p := range []string{"a", "b", "c", "d"} {
			if e := inj.Hit(p); e != nil {
				return e
			}
			seen = append(seen, p)
		}
		return nil
	})
	if err != nil || crash == nil {
		t.Fatalf("crash=%v err=%v", crash, err)
	}
	if crash.Point != "c" || crash.Seq != 3 {
		t.Fatalf("crash = %+v, want point c at global 3", crash)
	}
	if len(seen) != 2 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRunPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_, _ = Run(func() error { panic("unrelated") })
}

func TestRunPassesThroughError(t *testing.T) {
	boom := errors.New("boom")
	crash, err := Run(func() error { return boom })
	if crash != nil || !errors.Is(err, boom) {
		t.Fatalf("crash=%v err=%v", crash, err)
	}
}

func TestDisableStopsCountingAndFiring(t *testing.T) {
	inj := New()
	inj.CrashAt("p", 1)
	inj.Disable()
	if err := inj.Hit("p"); err != nil {
		t.Fatalf("disabled Hit = %v", err)
	}
	if inj.TotalHits() != 0 {
		t.Fatalf("disabled hit counted: %d", inj.TotalHits())
	}
	inj.Enable()
	crash, _ := Run(func() error { return inj.Hit("p") })
	if crash == nil {
		t.Fatal("re-enabled injector did not crash")
	}
}

func TestClearRulesKeepsCounters(t *testing.T) {
	inj := New()
	inj.FailAt("p", 0, nil)
	if err := inj.Hit("p"); err == nil {
		t.Fatal("armed rule did not fire")
	}
	inj.ClearRules()
	if err := inj.Hit("p"); err != nil {
		t.Fatalf("cleared rule still fires: %v", err)
	}
	if inj.Counts()["p"] != 2 {
		t.Fatalf("counters reset by ClearRules: %v", inj.Counts())
	}
}

func TestDelayAt(t *testing.T) {
	inj := New()
	inj.DelayAt("p", 1, 20*time.Millisecond)
	start := time.Now()
	if err := inj.Hit("p"); err != nil {
		t.Fatalf("Hit = %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestRecordTrace(t *testing.T) {
	inj := New()
	inj.Record()
	_ = inj.Hit("a")
	_ = inj.Hit("b")
	_ = inj.Hit("a")
	tr := inj.Trace()
	want := []string{"a", "b", "a"}
	if len(tr) != len(want) {
		t.Fatalf("trace = %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace = %v, want %v", tr, want)
		}
	}
}

func TestSeedDelaysDeterministicFiring(t *testing.T) {
	// Sub-microsecond sleeps are unobservable; assert determinism
	// indirectly: two injectors with the same seed consume the RNG
	// identically across the same hit sequence without error or panic.
	a, b := New(), New()
	a.SeedDelays(7, 0.5, time.Nanosecond)
	b.SeedDelays(7, 0.5, time.Nanosecond)
	for n := 0; n < 128; n++ {
		if err := a.Hit("p"); err != nil {
			t.Fatalf("a hit %d: %v", n, err)
		}
		if err := b.Hit("p"); err != nil {
			t.Fatalf("b hit %d: %v", n, err)
		}
	}
	if a.TotalHits() != b.TotalHits() {
		t.Fatalf("hits diverge: %d vs %d", a.TotalHits(), b.TotalHits())
	}
}

func TestConcurrentHits(t *testing.T) {
	inj := New()
	inj.FailAt("p", 500, nil)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures int
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 125; n++ {
				if err := inj.Hit("p"); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if inj.TotalHits() != 1000 {
		t.Fatalf("TotalHits = %d, want 1000", inj.TotalHits())
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want exactly 1", failures)
	}
}

func TestKillAtFiresAtOrdinal(t *testing.T) {
	inj := New()
	fired := 0
	inj.SetKillFn(func() { fired++ })
	inj.KillAt("p", 2)
	if err := inj.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("kill fired at hit 1, armed for 2")
	}
	if err := inj.Hit("other"); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("kill fired on the wrong point")
	}
	if err := inj.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("kill fired %d times at the armed hit, want 1", fired)
	}
	if err := inj.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("kill re-fired past its ordinal (%d)", fired)
	}
}

func TestKillDisabledInjector(t *testing.T) {
	inj := New()
	fired := 0
	inj.SetKillFn(func() { fired++ })
	inj.KillAt("p", 1)
	inj.Disable()
	_ = inj.Hit("p")
	if fired != 0 {
		t.Fatal("disabled injector killed")
	}
}
