//go:build !unix

package faultinject

import "os"

// killSelf on platforms without SIGKILL: exit with the conventional
// 128+9 status so parents still see "killed".
func killSelf() {
	os.Exit(137)
}
